// Rollover: upgrade a whole mini-cluster 2%-at-a-time while queries keep
// running, rendering the Figure 8 dashboard. Runs the shared-memory path
// and the disk-recovery baseline back to back and prints the comparison,
// then extrapolates both to production scale with the calibrated simulator.
//
// Usage:
//
//	go run ./examples/rollover [-machines 4] [-leaves 8] [-rows 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"scuba"
)

func main() {
	machines := flag.Int("machines", 4, "machines in the mini-cluster")
	leaves := flag.Int("leaves", 8, "leaf servers per machine")
	rows := flag.Int("rows", 200000, "rows to ingest before the rollover")
	batch := flag.Float64("batch", 0.125, "fraction of leaves restarted per batch")
	flag.Parse()

	workDir, err := os.MkdirTemp("", "scuba-rollover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            *machines,
		LeavesPerMachine:    *leaves,
		ShmDir:              workDir,
		DiskRoot:            workDir + "/disk",
		Namespace:           "rollover",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d machines x %d leaves = %d leaf servers\n",
		*machines, *leaves, c.Size())

	// Load data through the tailer placement path.
	placer := scuba.NewPlacer(c.Targets(), 42)
	gen := scuba.ServiceLogs(42, time.Now().Unix()-7200)
	for placed := 0; placed < *rows; placed += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d rows across the cluster\n\n", *rows)

	agg := c.NewAggregator()
	countQ := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}

	runOne := func(useShm bool, version int) *scuba.RolloverReport {
		name := "disk"
		if useShm {
			name = "shared memory"
		}
		fmt.Printf("=== rollover via %s ===\n", name)
		rep, err := c.Rollover(scuba.RolloverConfig{
			BatchFraction: *batch,
			UseShm:        useShm,
			TargetVersion: version,
			OnBatch: func(b int, s scuba.ClusterSnapshot) {
				// The Figure 8 dashboard, one line per batch.
				total := s.OldVersion + s.RollingOver + s.NewVersion
				bar := func(n int, ch string) string {
					return strings.Repeat(ch, n*40/total)
				}
				fmt.Printf("batch %2d |%s%s%s| %s\n", b,
					bar(s.NewVersion, "#"), bar(s.RollingOver, "~"), bar(s.OldVersion, "."),
					s.String())
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := agg.Query(countQ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("done in %v (%d batches, min availability %.1f%%); "+
			"recoveries: %d memory / %d disk; rows visible: %.0f\n\n",
			rep.Duration.Round(time.Millisecond), rep.Batches,
			100*rep.MinAvailability, rep.MemoryRecoveries, rep.DiskRecoveries,
			res.Rows(countQ)[0].Values[0])
		return rep
	}

	shmRep := runOne(true, 2)
	diskRep := runOne(false, 3)

	fmt.Printf("mini-cluster speedup (shm vs disk): %.1fx\n\n",
		diskRep.Duration.Seconds()/shmRep.Duration.Seconds())

	// Extrapolate to the paper's scale with the calibrated model.
	p := scuba.DefaultSimParams()
	simDisk := p.SimulateRollover(false)
	simShm := p.SimulateRollover(true)
	fmt.Println("=== production-scale extrapolation (100 machines x 8 leaves x 15 GB) ===")
	fmt.Printf("disk rollover:  %v   (paper: 10-12 hours)\n", simDisk.Total.Round(time.Minute))
	fmt.Printf("shm  rollover:  %v   (paper: under an hour)\n", simShm.Total.Round(time.Minute))
	fmt.Printf("weekly full availability: %.1f%% disk vs %.1f%% shm (paper: 93%% vs 99.5%%)\n",
		100*scuba.WeeklyFullAvailability(simDisk.Total),
		100*scuba.WeeklyFullAvailability(simShm.Total))
}
