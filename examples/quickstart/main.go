// Quickstart: run a single Scuba leaf server in-process, ingest a synthetic
// service-log workload, query it, then perform the paper's fast restart —
// shut the "old process" down through shared memory and bring a "new
// process" up from it — and show that the data and query results survived.
//
// Usage:
//
//	go run ./examples/quickstart [-rows 100000] [-dir /tmp/scuba-quickstart]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"scuba"
)

func main() {
	rows := flag.Int("rows", 100000, "rows to ingest")
	dir := flag.String("dir", "", "working directory (default: a temp dir)")
	flag.Parse()

	workDir := *dir
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "scuba-quickstart-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(workDir)
	}
	cfg := scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: workDir, Namespace: "quickstart"},
		DiskRoot:     filepath.Join(workDir, "disk"),
		DiskFormat:   scuba.FormatRow,
		MemoryBudget: 4 << 30,
	}

	// ---- "Old process": ingest and query ----
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaf started (recovery path: %s)\n", l.Recovery().Path)

	gen := scuba.ServiceLogs(42, time.Now().Unix()-3600)
	start := time.Now()
	if err := l.AddRows("service_logs", gen.NextBatch(*rows)); err != nil {
		log.Fatal(err)
	}
	st := l.Stats()
	fmt.Printf("ingested %d rows in %v (%d blocks, %d compressed bytes)\n",
		*rows, time.Since(start).Round(time.Millisecond), st.Blocks, st.Bytes)

	q := &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggCount},
			{Op: scuba.AggAvg, Column: "latency_ms"},
			{Op: scuba.AggP99, Column: "latency_ms"},
		},
		GroupBy: []string{"service"},
		Limit:   5,
	}
	res, err := l.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop services before restart:")
	fmt.Print(scuba.FormatResult(q, res.Rows(q)))

	// ---- The fast restart (Figures 6 and 7) ----
	fmt.Println("shutting down through shared memory...")
	info, err := l.Shutdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  copied %d tables, %d blocks, %.1f MB to shm in %v\n",
		info.Tables, info.Blocks, float64(info.BytesCopied)/(1<<20),
		info.Duration.Round(time.Millisecond))

	// ---- "New process": recover from shared memory ----
	l2, err := scuba.NewLeaf(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := l2.Start(); err != nil {
		log.Fatal(err)
	}
	rec := l2.Recovery()
	fmt.Printf("new process recovered via %s: %d blocks, %.1f MB in %v\n",
		rec.Path, rec.Blocks, float64(rec.BytesRestored)/(1<<20),
		rec.Duration.Round(time.Millisecond))

	res2, err := l2.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop services after restart (identical):")
	fmt.Print(scuba.FormatResult(q, res2.Rows(q)))
}
