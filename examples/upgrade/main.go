// Upgrade: a real cross-process software upgrade through shared memory —
// the paper's core scenario. The "old" process ingests data and exits
// cleanly through shared memory; a genuinely separate "new" process (this
// same binary re-executed, standing in for the upgraded build) maps the
// segments and recovers at memory speed. Crash the old process instead
// (-crash) and the new process falls back to the disk backup.
//
// Usage:
//
//	go run ./examples/upgrade                 # old + new process, shm path
//	go run ./examples/upgrade -crash          # old process crashes; disk path
//	go run ./examples/upgrade -rows 500000    # more data
//
// Internally the parent runs itself twice with -phase old / -phase new.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"scuba"
)

var (
	phase   = flag.String("phase", "", "internal: old | new")
	dir     = flag.String("dir", "", "shared working directory")
	rows    = flag.Int("rows", 200000, "rows to ingest")
	crash   = flag.Bool("crash", false, "crash the old process instead of a clean shutdown")
	workers = flag.Int("copy-workers", 0, "restart-path copy pool size (0 = NumCPU, 1 = serial)")
)

func config(workDir string) scuba.LeafConfig {
	return scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: workDir, Namespace: "upgrade"},
		DiskRoot:     workDir + "/disk",
		DiskFormat:   scuba.FormatRow,
		MemoryBudget: 4 << 30,
		CopyWorkers:  *workers,
	}
}

func main() {
	flag.Parse()
	switch *phase {
	case "old":
		runOld()
	case "new":
		runNew()
	default:
		orchestrate()
	}
}

// orchestrate runs the two phases as real separate OS processes.
func orchestrate() {
	workDir, err := os.MkdirTemp("", "scuba-upgrade-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	run := func(phase string) {
		cmd := exec.Command(self,
			"-phase", phase,
			"-dir", workDir,
			fmt.Sprintf("-rows=%d", *rows),
			fmt.Sprintf("-crash=%v", *crash),
			fmt.Sprintf("-copy-workers=%d", *workers),
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			// The crash variant exits non-zero on purpose.
			if phase == "old" && *crash {
				fmt.Printf("[orchestrator] old process died as requested: %v\n", err)
				return
			}
			log.Fatalf("phase %s: %v", phase, err)
		}
	}
	fmt.Println("[orchestrator] starting OLD process (version 1)")
	run("old")
	fmt.Println("[orchestrator] starting NEW process (version 2)")
	run("new")
}

func runOld() {
	l, err := scuba.NewLeaf(config(*dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Start(); err != nil {
		log.Fatal(err)
	}
	gen := scuba.ServiceLogs(7, time.Now().Unix()-3600)
	if err := l.AddRows("service_logs", gen.NextBatch(*rows)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[old pid %d] ingested %d rows\n", os.Getpid(), *rows)

	// Keep a disk backup either way (normal async write-behind).
	if err := l.SealAll(); err != nil {
		log.Fatal(err)
	}
	if _, err := l.SyncToDisk(); err != nil {
		log.Fatal(err)
	}

	if *crash {
		fmt.Printf("[old pid %d] simulating a crash: exiting without shutdown\n", os.Getpid())
		os.Exit(3) // no valid bit was ever set; shm is unusable
	}
	info, err := l.Shutdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[old pid %d] clean shutdown: %.1f MB to shared memory in %v with %d copy workers\n",
		os.Getpid(), float64(info.BytesCopied)/(1<<20), info.Duration.Round(time.Millisecond),
		info.Workers)
	printPerTable(os.Getpid(), "copied out", info.PerTable)
}

func runNew() {
	start := time.Now()
	l, err := scuba.NewLeaf(config(*dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Start(); err != nil {
		log.Fatal(err)
	}
	rec := l.Recovery()
	fmt.Printf("[new pid %d] recovered via %s: %d blocks, %.1f MB in %v with %d copy workers\n",
		os.Getpid(), rec.Path, rec.Blocks, float64(rec.BytesRestored)/(1<<20),
		rec.Duration.Round(time.Millisecond), rec.Workers)
	printPerTable(os.Getpid(), "copied in", rec.PerTable)

	q := &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	res, err := l.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	rowsOut := res.Rows(q)
	count := 0.0
	if len(rowsOut) > 0 {
		count = rowsOut[0].Values[0]
	}
	fmt.Printf("[new pid %d] query sees %.0f rows; total restart wall time %v\n",
		os.Getpid(), count, time.Since(start).Round(time.Millisecond))
}

// printPerTable shows which worker carried each table through the copy.
func printPerTable(pid int, verb string, stats []scuba.TableCopyStat) {
	for _, st := range stats {
		fmt.Printf("[pid %d]   %s %q: worker %d, %d blocks, %.1f MB in %v\n",
			pid, verb, st.Table, st.Worker, st.Blocks, float64(st.Bytes)/(1<<20),
			st.Duration.Round(time.Millisecond))
	}
}
