// Monitoring: the use case from the paper's introduction — engineers use
// Scuba to detect user-facing errors, and "even 10 minutes is a long
// downtime for the critical applications that rely on Scuba". This example
// runs a live error-monitoring pipeline (Scribe -> tailers -> leaves ->
// aggregator), injects an error spike, and shows the detector noticing it.
// Mid-stream it restarts a leaf through shared memory to demonstrate that
// monitoring barely blips: queries return partial results while the leaf is
// down for milliseconds, then full results again.
//
// Usage:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"scuba"
)

const table = "error_events"

func main() {
	workDir, err := os.MkdirTemp("", "scuba-monitoring-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            2,
		LeavesPerMachine:    4,
		ShmDir:              workDir,
		DiskRoot:            workDir + "/disk",
		Namespace:           "monitoring",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}

	bus := scuba.NewBus(0)
	placer := scuba.NewPlacer(c.Targets(), 7)
	tl := scuba.NewTailer(scuba.TailerConfig{Category: table, BatchRows: 500}, bus, placer, 0)
	agg := c.NewAggregator()

	now := time.Now().Unix()
	gen := scuba.ErrorEvents(3, now-600)

	produce := func(n int, spike bool) {
		for i := 0; i < n; i++ {
			row := gen.Next()
			if spike {
				// An incident: one product starts throwing timeouts.
				row.Cols["product"] = scuba.String("android")
				row.Cols["error"] = scuba.String("timeout")
				row.Cols["severity"] = scuba.Int64(3)
			}
			payload, err := scuba.EncodeRow(row)
			if err != nil {
				log.Fatal(err)
			}
			bus.Append(table, payload)
		}
		if _, err := tl.DrainOnce(); err != nil {
			log.Fatal(err)
		}
	}

	errorRate := func() (map[string]float64, float64) {
		q := &scuba.Query{
			Table: table, From: 0, To: 1 << 40,
			Filters:      []scuba.Filter{{Column: "severity", Op: scuba.OpGe, Int: 3}},
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
			GroupBy:      []string{"product", "error"},
			Limit:        3,
		}
		res, err := agg.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		out := make(map[string]float64)
		for _, r := range res.Rows(q) {
			out[r.Key[0]+"/"+r.Key[1]] = r.Values[0]
		}
		return out, res.Coverage()
	}

	fmt.Println("baseline traffic...")
	produce(20000, false)
	base, cov := errorRate()
	fmt.Printf("  severe errors by product/error (coverage %.0f%%): %v\n\n", cov*100, base)

	fmt.Println("restarting one leaf through shared memory mid-stream...")
	rep, err := c.Node(0).Restart(scuba.RestartOptions{UseShm: true, NewVersion: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  leaf 0 restarted via %s in %v\n",
		rep.Recovery.Path, rep.Total.Round(time.Millisecond))
	produce(5000, false)
	_, covDuring := errorRate()
	fmt.Printf("  monitoring kept working (coverage %.0f%% during/after the restart)\n\n", covDuring*100)

	fmt.Println("injecting an incident: android timeouts...")
	produce(8000, true)
	after, cov2 := errorRate()
	fmt.Printf("  severe errors by product/error (coverage %.0f%%):\n", cov2*100)
	for k, v := range after {
		fmt.Printf("    %-24s %8.0f\n", k, v)
	}
	spike := after["android/timeout"]
	if spike > 4*maxValue(base) {
		fmt.Printf("\nALERT: android/timeout at %.0f severe errors — %.1fx the baseline peak\n",
			spike, spike/maxValue(base))
	} else {
		fmt.Println("\nno alert (unexpected — spike not visible)")
	}

	// The dashboard panel behind the alert: severe errors per 10 minutes.
	series := &scuba.Query{
		Table: table, From: 0, To: 1 << 40,
		TimeBucketSeconds: 600,
		Filters:           []scuba.Filter{{Column: "severity", Op: scuba.OpGe, Int: 3}},
		Aggregations:      []scuba.Aggregation{{Op: scuba.AggCount}},
	}
	res, err := agg.Query(series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsevere errors per 10-minute bucket (the spike is the incident):")
	rows := res.Rows(series)
	peak := 1.0
	for _, r := range rows {
		if r.Values[0] > peak {
			peak = r.Values[0]
		}
	}
	for _, r := range rows {
		bar := int(r.Values[0] / peak * 40)
		fmt.Printf("  %-12s %6.0f %s\n", r.Key[0], r.Values[0], strings.Repeat("#", bar))
	}
}

func maxValue(m map[string]float64) float64 {
	mx := 1.0
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}
