package scuba_test

// The §5 availability invariant as a test: while a rolling restart upgrades
// every real scubad process in the cluster, a continuous query load must
// keep answering — with shard coverage never below 1 − BatchFraction (and,
// with R=2 replicas and a conflict-aware batch picker, in practice never
// below 100%) and every result byte-identical to the pre-rollover baseline.

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"scuba"
)

// buildScubadBinary compiles scubad once per test into a temp dir.
func buildScubadBinary(t *testing.T) string {
	t.Helper()
	bin, err := scuba.BuildScubad(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// startRolloverCluster boots machines x leavesPer scubad subprocesses with
// R=2 shard routing and loads rows of service_logs through the dual-writing
// placer.
func startRolloverCluster(t *testing.T, machines, leavesPer, rows int, opts ...func(*scuba.ProcConfig)) *scuba.ProcCluster {
	t.Helper()
	cfg := scuba.ProcConfig{
		BinPath:          buildScubadBinary(t),
		Machines:         machines,
		LeavesPerMachine: leavesPer,
		Replication:      2,
		WorkDir:          t.TempDir(),
		Namespace:        "avail",
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	pc, err := scuba.StartProcCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)

	placer := pc.NewShardedPlacer()
	gen := scuba.ServiceLogs(7, 1700000000)
	for sent := 0; sent < rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			t.Fatal(err)
		}
	}
	if st := placer.Stats(); st.MissedCopies != 0 {
		t.Fatalf("%d replica copies missed while loading a healthy cluster", st.MissedCopies)
	}
	return pc
}

func rolloverQuery() *scuba.Query {
	return &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}},
		GroupBy:      []string{"service"}}
}

// runRolloverAvailability is the keystone body, parameterized so CI's smoke
// job can run a smaller cluster than the full 16-leaf drill.
func runRolloverAvailability(t *testing.T, machines, leavesPer int, batchFraction float64, rows int) {
	pc := startRolloverCluster(t, machines, leavesPer, rows)
	n := machines * leavesPer
	q := rolloverQuery()
	agg := pc.AggClient()

	baseline, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ShardCoverage() != 1 {
		t.Fatalf("baseline shard coverage %d/%d", baseline.ShardsAnswered, baseline.ShardsTotal)
	}
	baseRows := baseline.Rows(q)
	if len(baseRows) == 0 {
		t.Fatal("baseline returned no rows")
	}

	probe := scuba.StartAvailabilityProbe(agg, scuba.ProbeConfig{
		Query: q,
		Check: func(res *scuba.Result) error {
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				return errors.New("result drifted from baseline")
			}
			return nil
		},
	})
	rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction: batchFraction,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
		Tables:        []string{"service_logs"},
	})
	avail := probe.Stop()
	if err != nil {
		t.Fatalf("rollover: %v", err)
	}

	// Every process restarted through shared memory; none were left behind.
	if rep.MemoryRecoveries != n {
		t.Errorf("memory recoveries = %d, want %d (report: %+v)", rep.MemoryRecoveries, n, rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("quarantined leaves: %v", rep.Quarantined)
	}

	// The availability invariant: queries kept answering, none were wrong,
	// and coverage never dropped below 1 − BatchFraction. (With replicas
	// and the conflict-aware batch picker it should in fact stay at 1.)
	if avail.Queries == 0 {
		t.Fatal("no queries completed during the rollover")
	}
	if avail.Errors != 0 {
		t.Errorf("%d of %d queries failed during the rollover", avail.Errors, avail.Queries)
	}
	if avail.Wrong != 0 {
		t.Errorf("%d of %d queries returned non-baseline results", avail.Wrong, avail.Queries)
	}
	floor := 1 - batchFraction
	if avail.MinShardCoverage < floor {
		t.Errorf("min shard coverage %.3f below the 1-BatchFraction floor %.3f",
			avail.MinShardCoverage, floor)
	}
	t.Logf("%d leaves, %d queries during rollover (%v): min shard coverage %.1f%%, min leaf coverage %.1f%%, p50 %v, p99 %v",
		n, avail.Queries, rep.Duration.Round(time.Millisecond),
		100*avail.MinShardCoverage, 100*avail.MinLeafCoverage, avail.P50, avail.P99)

	// Steady state afterwards: the shard map is fully ACTIVE and queries
	// are byte-identical at full coverage.
	_, statuses, _, err := agg.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != scuba.ShardActive {
			t.Errorf("leaf %d ended the rollover %v", i, st)
		}
	}
	after, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.ShardCoverage() != 1 {
		t.Errorf("post-rollover shard coverage %d/%d", after.ShardsAnswered, after.ShardsTotal)
	}
	if !reflect.DeepEqual(after.Rows(q), baseRows) {
		t.Error("post-rollover result differs from baseline")
	}
}

// TestRolloverAvailability is the full drill: 4 machines x 4 leaf
// subprocesses, R=2, 25% of leaves restarting per batch under continuous
// query load.
func TestRolloverAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 16-subprocess rollover drill")
	}
	runRolloverAvailability(t, 4, 4, 0.25, 20000)
}

// TestRolloverAvailabilitySmoke is the 2x2 variant CI's rollover-smoke job
// runs on every push.
func TestRolloverAvailabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess rollover smoke")
	}
	runRolloverAvailability(t, 2, 2, 0.25, 5000)
}

// TestRolloverDiskPathAvailability: even with shared memory disabled (the
// §4.1 baseline, every restart paying disk recovery), replicas keep shard
// coverage at the floor and results correct — only latency suffers.
func TestRolloverDiskPathAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess rollover drill")
	}
	// WAL off: this drill measures the pre-WAL disk-translate baseline, and
	// with a log present even a disk-drained replacement would recover via
	// WAL replay instead.
	pc := startRolloverCluster(t, 2, 2, 5000, func(cfg *scuba.ProcConfig) { cfg.DisableWAL = true })
	q := rolloverQuery()
	agg := pc.AggClient()
	baseline, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := baseline.Rows(q)

	// Let the write-behind sync finish so disk recovery is complete: the
	// disk path's correctness depends on the backup, not on shm.
	time.Sleep(time.Second)

	probe := scuba.StartAvailabilityProbe(agg, scuba.ProbeConfig{
		Query: q,
		Check: func(res *scuba.Result) error {
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				return errors.New("result drifted from baseline")
			}
			return nil
		},
	})
	rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction: 0.25,
		UseShm:        false,
		KillTimeout:   time.Minute,
		Tables:        []string{"service_logs"},
	})
	avail := probe.Stop()
	if err != nil {
		t.Fatalf("rollover: %v", err)
	}
	if rep.DiskRecoveries != len(pc.Leaves()) {
		t.Errorf("disk recoveries = %d, want %d", rep.DiskRecoveries, len(pc.Leaves()))
	}
	if avail.Wrong != 0 {
		t.Errorf("%d queries returned non-baseline results on the disk path", avail.Wrong)
	}
	if avail.MinShardCoverage < 0.75 {
		t.Errorf("min shard coverage %.3f below floor 0.75", avail.MinShardCoverage)
	}
	t.Logf("disk-path rollover: %v, min coverage %.1f%%, p99 %v",
		rep.Duration.Round(time.Millisecond), 100*avail.MinShardCoverage, avail.P99)
}
