package scuba_test

// Crash drills against the real daemon: ActCrash faults kill the process
// with os.Exit mid-restart-path, which no in-process test can exercise. The
// contract under test is the paper's §4.3 invariant — a crash at ANY point
// before the valid bit commits leaves the shm backup unusable, and the next
// process must come up from the disk backup with the full dataset.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"scuba"
)

func TestDaemonCrashDuringShutdownRecoversFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess crash drill")
	}
	bin := filepath.Join(t.TempDir(), "scubad")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scubad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scubad: %v\n%s", err, out)
	}

	// Crash at the first copy-out block write, and crash at the valid-bit
	// commit after all data copied: both must leave the valid bit unset.
	// With one table, Shutdown's metadata writes are initial(1) +
	// registration(2, after the table synced to disk and copied) +
	// commit(3), so after=2 lands the crash exactly on the commit — the
	// worst case, where the shm backup is complete but uncommitted.
	for _, site := range []string{"shm.copy_out=crash", "shm.commit=crash;after=2"} {
		t.Run(site, func(t *testing.T) {
			workDir := t.TempDir()
			addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
			startDaemon := func(faultSpec string) *exec.Cmd {
				args := []string{
					"-id", "0",
					"-addr", addr,
					"-shm-dir", workDir,
					"-namespace", "chaos",
					"-disk-root", filepath.Join(workDir, "disk"),
					"-sync-interval", "100ms",
				}
				if faultSpec != "" {
					args = append(args, "-fault", faultSpec)
				}
				cmd := exec.Command(bin, args...)
				cmd.Stdout = os.Stderr
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					t.Fatalf("starting scubad: %v", err)
				}
				return cmd
			}
			waitReady := func(c *scuba.Client) {
				deadline := time.Now().Add(10 * time.Second)
				for time.Now().Before(deadline) {
					if err := c.Ping(); err == nil {
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
				t.Fatal("daemon did not become ready")
			}

			// The doomed process: the armed site only fires on the restart
			// path, so it serves normally until the shutdown RPC.
			doomed := startDaemon(site)
			client := scuba.DialLeaf(addr)
			defer client.Close()
			waitReady(client)

			gen := scuba.ServiceLogs(23, 1700000000)
			const rows = 20000
			for sent := 0; sent < rows; sent += 5000 {
				if err := client.AddRows("service_logs", gen.NextBatch(5000)); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
			// Let the write-behind sync flush everything to the disk backup
			// (100ms interval; nothing new is written after this point).
			time.Sleep(1200 * time.Millisecond)

			// The shutdown RPC crashes the process mid-drain; the client sees
			// a transport error, never a clean response.
			if _, err := client.Shutdown(true); err == nil {
				t.Fatal("shutdown RPC succeeded despite injected crash")
			}
			if err := waitExit(doomed, 10*time.Second); err != nil {
				t.Fatalf("crashed daemon did not exit: %v", err)
			}

			// The replacement, no faults: the valid bit never committed, so
			// it must take the disk path and still serve the full dataset.
			next := startDaemon("")
			defer func() {
				next.Process.Signal(os.Interrupt) //nolint:errcheck
				waitExit(next, 10*time.Second)    //nolint:errcheck
			}()
			client2 := scuba.DialLeaf(addr)
			defer client2.Close()
			waitReady(client2)

			q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
				Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
			res, err := client2.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Rows(q)
			if len(got) == 0 || got[0].Values[0] != rows {
				t.Fatalf("rows after crash recovery = %v, want %d", got, rows)
			}
		})
	}
}

// TestDaemonCrashDuringIngestWAL is the tentpole's durability drill: a
// WAL-enabled daemon is killed at every stage of the write-ahead path —
// kill -9 mid-AddRows burst, injected crashes inside WAL append, WAL fsync,
// snapshot write, WAL truncation, and WAL replay itself — and in every case
// the replacement must serve every acked row with no half-applied batch.
// The per-batch latency sums pin content, not just counts: the recovered
// prefix must be byte-for-byte the batches the client sent.
func TestDaemonCrashDuringIngestWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess crash drills")
	}
	bin, err := scuba.BuildScubad(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 500

	scenarios := []struct {
		name string
		// fault arms the doomed (first) process; "" means the test kills it
		// raw, SIGKILL mid-burst.
		fault string
		// replayFault arms the SECOND process, crashing it mid-recovery; a
		// third, clean process must then recover everything.
		replayFault string
	}{
		{name: "kill9-mid-burst"},
		{name: "wal-append", fault: "wal.append=crash;after=8"},
		{name: "wal-sync", fault: "wal.sync=crash;after=8"},
		{name: "snap-write", fault: "snap.write=crash"},
		{name: "wal-truncate", fault: "wal.truncate=crash"},
		{name: "wal-replay", replayFault: "wal.replay=crash"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			workDir := t.TempDir()
			addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
			httpAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
			startDaemon := func(faultSpec string) *exec.Cmd {
				args := []string{
					"-id", "0",
					"-addr", addr,
					"-http", httpAddr,
					"-shm-dir", workDir,
					"-namespace", "chaos-wal-" + sc.name,
					"-disk-root", filepath.Join(workDir, "disk"),
					"-sync-interval", "100ms",
					"-wal-dir", filepath.Join(workDir, "wal"),
					"-wal-sync", "0", // fsync inline: every ack is durable
					"-snapshot-interval", "100ms",
				}
				if faultSpec != "" {
					args = append(args, "-fault", faultSpec)
				}
				cmd := exec.Command(bin, args...)
				cmd.Stdout = os.Stderr
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					t.Fatalf("starting scubad: %v", err)
				}
				return cmd
			}
			waitReady := func(c *scuba.Client) {
				deadline := time.Now().Add(15 * time.Second)
				for time.Now().Before(deadline) {
					if err := c.Ping(); err == nil {
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
				t.Fatal("daemon did not become ready")
			}

			doomed := startDaemon(sc.fault)
			client := scuba.DialLeaf(addr)
			defer client.Close()
			waitReady(client)

			// Send batches one at a time (so WAL order == send order) and
			// track each batch's latency_ms sum. batchSums[i] is only
			// meaningful for batches that were sent, acked or not.
			gen := scuba.ServiceLogs(47, 1700000000)
			var batchSums []int64
			acked := 0
			sendOne := func() error {
				batch := gen.NextBatch(batchSize)
				var sum int64
				for _, r := range batch {
					sum += r.Cols["latency_ms"].Int
				}
				batchSums = append(batchSums, sum)
				if err := client.AddRows("service_logs", batch); err != nil {
					return err
				}
				acked++
				return nil
			}

			switch {
			case sc.fault != "":
				// Ingest until the armed fault kills the process mid-call
				// (append/sync sites), or until the background snapshot pass
				// kills it (snap/truncate sites) and sends start failing.
				deadline := time.Now().Add(15 * time.Second)
				for time.Now().Before(deadline) {
					if err := sendOne(); err != nil {
						break
					}
					time.Sleep(30 * time.Millisecond)
				}
				if acked == len(batchSums) {
					t.Fatal("armed fault never fired: every batch acked")
				}
			default:
				// Clean burst first, then — for the raw-kill drill — SIGKILL
				// arrives mid-burst from outside; for the replay drill the
				// process dies before recovery instead.
				for i := 0; i < 10; i++ {
					if err := sendOne(); err != nil {
						t.Fatalf("load: %v", err)
					}
				}
				if sc.replayFault == "" {
					killed := make(chan struct{})
					go func() {
						defer close(killed)
						time.Sleep(50 * time.Millisecond)
						doomed.Process.Kill() //nolint:errcheck
					}()
					for {
						if err := sendOne(); err != nil {
							break
						}
					}
					<-killed
				} else {
					doomed.Process.Kill() //nolint:errcheck
				}
			}
			if err := waitExit(doomed, 20*time.Second); err != nil {
				t.Fatalf("doomed daemon did not exit: %v", err)
			}

			if sc.replayFault != "" {
				// The replacement crashes mid-replay; recovery must be
				// restartable from scratch.
				mid := startDaemon(sc.replayFault)
				if err := waitExit(mid, 20*time.Second); err != nil {
					t.Fatalf("mid-recovery crash daemon did not exit: %v", err)
				}
			}

			next := startDaemon("")
			defer func() {
				next.Process.Signal(os.Interrupt) //nolint:errcheck
				waitExit(next, 10*time.Second)    //nolint:errcheck
			}()
			client2 := scuba.DialLeaf(addr)
			defer client2.Close()
			waitReady(client2)

			q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
				Aggregations: []scuba.Aggregation{
					{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}}}
			res, err := client2.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			rows := res.Rows(q)
			if len(rows) == 0 {
				t.Fatal("no rows after crash recovery")
			}
			count := int(rows[0].Values[0])
			// Zero acked-row loss, and no half-applied batch: the survivors
			// are an exact prefix of the batches sent (a final batch that was
			// durable but never acked may legally appear).
			if count%batchSize != 0 {
				t.Fatalf("recovered %d rows: not a whole number of %d-row batches", count, batchSize)
			}
			n := count / batchSize
			if n < acked {
				t.Fatalf("recovered %d batches, %d were acked: acked rows lost", n, acked)
			}
			if n > len(batchSums) {
				t.Fatalf("recovered %d batches, only %d were ever sent", n, len(batchSums))
			}
			var wantSum int64
			for _, s := range batchSums[:n] {
				wantSum += s
			}
			if got := int64(rows[0].Values[1]); got != wantSum {
				t.Fatalf("sum(latency_ms) = %d, want %d: recovered rows are not the sent prefix", got, wantSum)
			}
			if path := debugRecoveryPath(t, httpAddr); path != "wal" {
				t.Errorf("recovery path = %q, want wal", path)
			}
		})
	}
}

// debugRecoveryPath reads the replacement's /debug/recovery, as the rollover
// orchestrator does.
func debugRecoveryPath(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/debug/recovery")
	if err != nil {
		t.Fatalf("GET /debug/recovery: %v", err)
	}
	defer resp.Body.Close()
	var dump struct {
		Recovery struct {
			Path string
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /debug/recovery: %v", err)
	}
	return dump.Recovery.Path
}

// TestRolloverKillNineMidBatch is the sharded-rollover chaos drill: a leaf
// is kill -9'd after its batch was flipped to DRAINING but before its
// shutdown RPC lands. The orchestrator must not hang — the crashed leaf's
// shm backup is invalid, so its replacement takes the disk path while
// replicas keep its shards serving — and the rollover either completes
// (MaxDiskFallback disabled) or aborts at the canary guard.
func TestRolloverKillNineMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos drill")
	}
	bin, err := scuba.BuildScubad(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	start := func(t *testing.T, disableWAL bool) (*scuba.ProcCluster, *scuba.Query, []scuba.ResultRow) {
		t.Helper()
		pc, err := scuba.StartProcCluster(scuba.ProcConfig{
			BinPath:          bin,
			Machines:         2,
			LeavesPerMachine: 2,
			Replication:      2,
			WorkDir:          t.TempDir(),
			Namespace:        "chaos-roll",
			DisableWAL:       disableWAL,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pc.Close)
		placer := pc.NewShardedPlacer()
		gen := scuba.ServiceLogs(31, 1700000000)
		for sent := 0; sent < 5000; sent += 1000 {
			if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
				t.Fatal(err)
			}
		}
		// A kill -9 victim recovers only what disk holds: raise the
		// durability barrier (seal + sync every leaf) before any violence,
		// like a production orchestrator does before maintenance.
		if err := pc.FlushAll(); err != nil {
			t.Fatal(err)
		}
		q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}},
			GroupBy:      []string{"service"}}
		baseline, err := pc.AggClient().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if baseline.ShardCoverage() != 1 {
			t.Fatalf("baseline coverage %d/%d", baseline.ShardsAnswered, baseline.ShardsTotal)
		}
		return pc, q, baseline.Rows(q)
	}
	killDraining := func(t *testing.T, pc *scuba.ProcCluster, addr string) {
		t.Helper()
		for _, l := range pc.Leaves() {
			if l.Addr == addr {
				if err := l.Kill(); err != nil {
					t.Errorf("kill -9 %s: %v", addr, err)
				}
				return
			}
		}
		t.Errorf("no leaf at %s", addr)
	}

	t.Run("completes", func(t *testing.T) {
		pc, q, baseRows := start(t, false)
		var victim string
		probe := scuba.StartAvailabilityProbe(pc.AggClient(), scuba.ProbeConfig{
			Query: q,
			Check: func(res *scuba.Result) error {
				if !reflect.DeepEqual(res.Rows(q), baseRows) {
					return errors.New("result drifted from baseline")
				}
				return nil
			},
		})
		rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
			BatchFraction: 0.25,
			UseShm:        true,
			KillTimeout:   time.Minute,
			Tables:        []string{"service_logs"},
			OnBatch: func(b int, draining []string) {
				// kill -9 the second batch's leaf right after its DRAINING
				// flip: the shutdown RPC finds a corpse.
				if b == 1 {
					victim = draining[0]
					killDraining(t, pc, victim)
				}
			},
		})
		avail := probe.Stop()
		if err != nil {
			t.Fatalf("rollover did not complete: %v", err)
		}
		if len(rep.Quarantined) != 0 {
			t.Errorf("quarantined leaves: %v", rep.Quarantined)
		}
		// Crash-path parity: the kill -9 victim's replacement comes back via
		// snapshot images + WAL replay, not the slow disk translate.
		if rep.WALRecoveries != 1 || rep.MemoryRecoveries != len(pc.Leaves())-1 {
			t.Errorf("recoveries = %d memory / %d wal / %d disk, want %d / 1 / 0",
				rep.MemoryRecoveries, rep.WALRecoveries, rep.DiskRecoveries, len(pc.Leaves())-1)
		}
		foundVictim := false
		for _, r := range rep.Restarts {
			if r.Addr == victim {
				foundVictim = true
				if !r.Crashed || r.RecoveryPath != "wal" {
					t.Errorf("victim restart = %+v, want Crashed via wal", r)
				}
			} else if r.Crashed || r.RecoveryPath != "memory" {
				t.Errorf("bystander restart = %+v, want clean shm recovery", r)
			}
		}
		if !foundVictim {
			t.Error("victim's restart missing from the report")
		}
		// Replicas kept the victim's shards serving the §5 invariant.
		if avail.Wrong != 0 {
			t.Errorf("%d queries returned non-baseline results", avail.Wrong)
		}
		if avail.MinShardCoverage < 0.75 {
			t.Errorf("min shard coverage %.3f below the 1-BatchFraction floor", avail.MinShardCoverage)
		}
		after, err := pc.AggClient().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if after.ShardCoverage() != 1 || !reflect.DeepEqual(after.Rows(q), baseRows) {
			t.Errorf("post-chaos coverage %d/%d or drifted result",
				after.ShardsAnswered, after.ShardsTotal)
		}
	})

	t.Run("aborts at MaxDiskFallback", func(t *testing.T) {
		// WAL off: the canary guard exists for the pre-WAL world where a
		// crashed leaf's only road back is the disk translate.
		pc, q, baseRows := start(t, true)
		rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
			BatchFraction: 0.25,
			UseShm:        true,
			KillTimeout:   time.Minute,
			// A single disk fallback among the first batch's restarts trips
			// the canary guard immediately.
			MaxDiskFallback: 0.1,
			Tables:          []string{"service_logs"},
			OnBatch: func(b int, draining []string) {
				if b == 0 {
					killDraining(t, pc, draining[0])
				}
			},
		})
		if !errors.Is(err, scuba.ErrRolloverAborted) {
			t.Fatalf("err = %v, want ErrRolloverAborted", err)
		}
		if !rep.Aborted || rep.Batches != 1 || rep.DiskRecoveries != 1 {
			t.Errorf("report = %+v, want aborted after 1 batch with 1 disk recovery", rep)
		}
		// The aborted rollover is still a healthy cluster: the victim came
		// back from disk, everyone else never restarted.
		after, err := pc.AggClient().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if after.ShardCoverage() != 1 || !reflect.DeepEqual(after.Rows(q), baseRows) {
			t.Errorf("post-abort coverage %d/%d or drifted result",
				after.ShardsAnswered, after.ShardsTotal)
		}
	})
}
