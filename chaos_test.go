package scuba_test

// Crash drills against the real daemon: ActCrash faults kill the process
// with os.Exit mid-restart-path, which no in-process test can exercise. The
// contract under test is the paper's §4.3 invariant — a crash at ANY point
// before the valid bit commits leaves the shm backup unusable, and the next
// process must come up from the disk backup with the full dataset.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"scuba"
)

func TestDaemonCrashDuringShutdownRecoversFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess crash drill")
	}
	bin := filepath.Join(t.TempDir(), "scubad")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scubad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scubad: %v\n%s", err, out)
	}

	// Crash at the first copy-out block write, and crash at the valid-bit
	// commit after all data copied: both must leave the valid bit unset.
	// With one table, Shutdown's metadata writes are initial(1) +
	// registration(2, after the table synced to disk and copied) +
	// commit(3), so after=2 lands the crash exactly on the commit — the
	// worst case, where the shm backup is complete but uncommitted.
	for _, site := range []string{"shm.copy_out=crash", "shm.commit=crash;after=2"} {
		t.Run(site, func(t *testing.T) {
			workDir := t.TempDir()
			addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
			startDaemon := func(faultSpec string) *exec.Cmd {
				args := []string{
					"-id", "0",
					"-addr", addr,
					"-shm-dir", workDir,
					"-namespace", "chaos",
					"-disk-root", filepath.Join(workDir, "disk"),
					"-sync-interval", "100ms",
				}
				if faultSpec != "" {
					args = append(args, "-fault", faultSpec)
				}
				cmd := exec.Command(bin, args...)
				cmd.Stdout = os.Stderr
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					t.Fatalf("starting scubad: %v", err)
				}
				return cmd
			}
			waitReady := func(c *scuba.Client) {
				deadline := time.Now().Add(10 * time.Second)
				for time.Now().Before(deadline) {
					if err := c.Ping(); err == nil {
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
				t.Fatal("daemon did not become ready")
			}

			// The doomed process: the armed site only fires on the restart
			// path, so it serves normally until the shutdown RPC.
			doomed := startDaemon(site)
			client := scuba.DialLeaf(addr)
			defer client.Close()
			waitReady(client)

			gen := scuba.ServiceLogs(23, 1700000000)
			const rows = 20000
			for sent := 0; sent < rows; sent += 5000 {
				if err := client.AddRows("service_logs", gen.NextBatch(5000)); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
			// Let the write-behind sync flush everything to the disk backup
			// (100ms interval; nothing new is written after this point).
			time.Sleep(1200 * time.Millisecond)

			// The shutdown RPC crashes the process mid-drain; the client sees
			// a transport error, never a clean response.
			if _, err := client.Shutdown(true); err == nil {
				t.Fatal("shutdown RPC succeeded despite injected crash")
			}
			if err := waitExit(doomed, 10*time.Second); err != nil {
				t.Fatalf("crashed daemon did not exit: %v", err)
			}

			// The replacement, no faults: the valid bit never committed, so
			// it must take the disk path and still serve the full dataset.
			next := startDaemon("")
			defer func() {
				next.Process.Signal(os.Interrupt) //nolint:errcheck
				waitExit(next, 10*time.Second)    //nolint:errcheck
			}()
			client2 := scuba.DialLeaf(addr)
			defer client2.Close()
			waitReady(client2)

			q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
				Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
			res, err := client2.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Rows(q)
			if len(got) == 0 || got[0].Values[0] != rows {
				t.Fatalf("rows after crash recovery = %v, want %d", got, rows)
			}
		})
	}
}
