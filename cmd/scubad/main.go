// Command scubad runs one Scuba leaf server as a daemon: it recovers its
// data (from shared memory after a clean upgrade, from disk otherwise),
// serves add/query/stats RPCs over TCP, runs background disk sync and
// expiration, and exits when it receives a shutdown RPC or SIGTERM — after
// copying its tables to shared memory so its replacement restarts fast.
//
// A software upgrade is simply:
//
//	scuba-cli -addr :8001 shutdown     # old binary drains to /dev/shm, exits
//	scubad-new -id 0 -addr :8001 ...   # new binary recovers at memory speed
//
// Usage:
//
//	scubad -id 0 -addr 127.0.0.1:8001 -shm-dir /dev/shm -disk-root /var/lib/scuba
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scuba"
)

func main() {
	var (
		id         = flag.Int("id", 0, "leaf ID (fixes the shared memory metadata location)")
		addr       = flag.String("addr", "127.0.0.1:8001", "listen address")
		shmDir     = flag.String("shm-dir", "/dev/shm", "shared memory directory (tmpfs)")
		namespace  = flag.String("namespace", "scuba", "shared memory namespace")
		diskRoot   = flag.String("disk-root", "./scuba-data", "disk backup root ('' disables)")
		columnar   = flag.Bool("columnar", false, "use the columnar disk format (§6 future work)")
		noShm      = flag.Bool("no-memory-recovery", false, "always recover from disk")
		budget     = flag.Int64("memory-budget", 8<<30, "data budget in bytes, reported to tailers")
		maxAge     = flag.Int64("max-age", 0, "expire rows older than this many seconds (0 = keep)")
		maxBytes   = flag.Int64("max-bytes", 0, "per-table compressed byte cap (0 = no cap)")
		workers    = flag.Int("copy-workers", 0, "restart-path copy pool size (0 = NumCPU, 1 = serial)")
		syncEvery  = flag.Duration("sync-interval", 5*time.Second, "disk write-behind interval")
		expireEach = flag.Duration("expire-interval", time.Minute, "expiration sweep interval")
	)
	flag.Parse()

	format := scuba.FormatRow
	if *columnar {
		format = scuba.FormatColumnar
	}
	cfg := scuba.LeafConfig{
		ID:                    *id,
		Shm:                   scuba.ShmOptions{Dir: *shmDir, Namespace: *namespace},
		DiskRoot:              *diskRoot,
		DiskFormat:            format,
		MemoryBudget:          *budget,
		Table:                 scuba.TableOptions{MaxAgeSeconds: *maxAge, MaxBytes: *maxBytes},
		DisableMemoryRecovery: *noShm,
		CopyWorkers:           *workers,
	}
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := l.Start(); err != nil {
		log.Fatal(err)
	}
	rec := l.Recovery()
	log.Printf("scubad leaf %d up in %v (recovery: %s, %d blocks, %.1f MB, %d copy workers)",
		*id, time.Since(start).Round(time.Millisecond), rec.Path, rec.Blocks,
		float64(rec.BytesRestored)/(1<<20), rec.Workers)
	logPerTable("restored", rec.PerTable)

	srv, err := scuba.NewServer(l, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", srv.Addr())

	// Background maintenance: asynchronous disk sync (§4.1) + expiration.
	maint := l.StartMaintenance(scuba.MaintenanceConfig{
		SyncInterval:   *syncEvery,
		ExpireInterval: *expireEach,
		OnError:        func(err error) { log.Printf("maintenance: %v", err) },
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	select {
	case info := <-srv.ShutdownRequested():
		// A shutdown RPC already drained the leaf (to shm or disk).
		maint.Stop()
		log.Printf("shutdown RPC: %d tables, %d blocks, %.1f MB in %v (shm=%v, %d copy workers); exiting",
			info.Tables, info.Blocks, float64(info.BytesCopied)/(1<<20),
			info.Duration.Round(time.Millisecond), info.ToShm, info.Workers)
		logPerTable("copied", info.PerTable)
		srv.Close()
	case sig := <-sigs:
		// A signal is a *planned* stop: drain through shared memory so the
		// replacement process restarts fast (a crash never gets here, and
		// the valid bit stays unset for it).
		maint.Stop()
		log.Printf("signal %v: copying to shared memory before exit", sig)
		srv.Close()
		info, err := l.Shutdown()
		if err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("drained %.1f MB to shared memory in %v with %d copy workers; exiting",
			float64(info.BytesCopied)/(1<<20), info.Duration.Round(time.Millisecond), info.Workers)
		logPerTable("copied", info.PerTable)
	}
	if m := srv.Metrics().String(); m != "" {
		log.Printf("final metrics:\n%s", m)
	}
	fmt.Println("scubad: bye")
}

// logPerTable prints the per-table copy breakdown of a restart-path half.
func logPerTable(verb string, stats []scuba.TableCopyStat) {
	for _, st := range stats {
		log.Printf("  %s %q: worker %d, %d blocks, %.1f MB in %v",
			verb, st.Table, st.Worker, st.Blocks, float64(st.Bytes)/(1<<20),
			st.Duration.Round(time.Millisecond))
	}
}
