// Command scubad runs one Scuba leaf server as a daemon: it recovers its
// data (from shared memory after a clean upgrade, from disk otherwise),
// serves add/query/stats RPCs over TCP, runs background disk sync and
// expiration, and exits when it receives a shutdown RPC or SIGTERM — after
// copying its tables to shared memory so its replacement restarts fast.
//
// A software upgrade is simply:
//
//	scuba-cli -addr :8001 shutdown     # old binary drains to /dev/shm, exits
//	scubad-new -id 0 -addr :8001 ...   # new binary recovers at memory speed
//
// Usage:
//
//	scubad -id 0 -addr 127.0.0.1:8001 -shm-dir /dev/shm -disk-root /var/lib/scuba
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scuba"
)

func main() {
	var (
		id         = flag.Int("id", 0, "leaf ID (fixes the shared memory metadata location)")
		addr       = flag.String("addr", "127.0.0.1:8001", "listen address")
		shmDir     = flag.String("shm-dir", "/dev/shm", "shared memory directory (tmpfs)")
		namespace  = flag.String("namespace", "scuba", "shared memory namespace")
		diskRoot   = flag.String("disk-root", "./scuba-data", "disk backup root ('' disables)")
		columnar   = flag.Bool("columnar", false, "use the columnar disk format (§6 future work)")
		noShm      = flag.Bool("no-memory-recovery", false, "always recover from disk")
		budget     = flag.Int64("memory-budget", 8<<30, "data budget in bytes, reported to tailers")
		maxAge     = flag.Int64("max-age", 0, "expire rows older than this many seconds (0 = keep)")
		maxBytes   = flag.Int64("max-bytes", 0, "per-table compressed byte cap (0 = no cap)")
		workers    = flag.Int("copy-workers", 0, "restart-path copy pool size (0 = NumCPU, 1 = serial)")
		instantOn  = flag.Bool("instant-on", false, "serve queries zero-copy from mmap'd shm on restart; copy-in happens in the background")
		promoteWk  = flag.Int("promote-workers", 0, "background promotion pool size for -instant-on (0 = NumCPU)")
		scanWork   = flag.Int("scan-workers", 0, "per-query sealed-block scan pool size (0 = GOMAXPROCS, 1 = serial)")
		decCache   = flag.Int64("decode-cache-bytes", 64<<20, "per-table decoded-column cache budget in bytes (0 disables)")
		syncEvery  = flag.Duration("sync-interval", 5*time.Second, "disk write-behind interval")
		expireEach = flag.Duration("expire-interval", time.Minute, "expiration sweep interval")
		walDir     = flag.String("wal-dir", "", "write-ahead log root for crash-path parity ('' disables the WAL)")
		walSync    = flag.Duration("wal-sync", 2*time.Millisecond, "WAL group-commit fsync interval (0 = fsync inline on every append)")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Second, "incremental snapshot + WAL truncation interval")
		httpAddr   = flag.String("http", "", "observability listen address serving /metrics, /debug/recovery and /debug/pprof ('' disables)")
		telemetry  = flag.Duration("telemetry-interval", 0, "self-telemetry period: snapshot this leaf's metrics into __system tables (0 disables)")
		profEvery  = flag.Duration("profile-interval", time.Minute, "continuous profiler steady cadence: capture a CPU window + heap delta into __system.profiles this often (0 disables the profiler)")
		profBudget = flag.Duration("profile-restart-budget", time.Second, "restart phase duration that triggers an anomaly profile capture")
		profMutex  = flag.Bool("profile-contention", false, "enable mutex/block profiling so /debug/pprof/mutex and /debug/pprof/block return real data")
		faultSpec  = flag.String("fault", "", "arm fault-injection points for chaos testing, e.g. 'shm.copy_in=corrupt;count=1,disk.read=delay:50ms' (see internal/fault)")
	)
	flag.Parse()
	if *faultSpec != "" {
		if err := scuba.ArmFaults(*faultSpec); err != nil {
			log.Fatalf("scubad: -fault: %v", err)
		}
		log.Printf("fault injection armed: %s", scuba.DescribeFaults())
	}

	// One registry for everything this process observes (restart phases,
	// query latency, RPC counters) and one flight recorder in its own shm
	// segment, which survives crashes and the leaf's own segment sweep.
	reg := scuba.NewMetricsRegistry()
	reg.EnableRuntimeMetrics()
	reg.EnableProcessMetrics()
	if *profMutex {
		scuba.EnableContentionProfiling()
	}
	fr, err := scuba.OpenFlightRecorder(*id, scuba.FlightRecorderOptions{
		Dir: *shmDir, Namespace: *namespace,
	})
	if err != nil {
		log.Printf("flight recorder unavailable (continuing without): %v", err)
	}
	if prev := fr.Previous(); len(prev) > 0 {
		sum := scuba.SummarizeFlightEvents(prev)
		if sum.Failed {
			log.Printf("previous run recorded a failure in phase %q: %s", sum.FailurePhase, sum.FailureDetail)
		} else {
			log.Printf("previous run's last recorded phase: %q (%d events)", sum.LastPhase, sum.Events)
		}
	}
	ob := scuba.NewObserver(reg, fr)
	ob.Event(scuba.FlightNote, "process.start", fmt.Sprintf("scubad leaf %d", *id))

	format := scuba.FormatRow
	if *columnar {
		format = scuba.FormatColumnar
	}
	// The profiler variable is captured by the leaf's restart hook before
	// the profiler exists: Start() fires the hook, and a slow recovery
	// should profile itself. ObserveRestartPhase is nil-safe, so a restart
	// finishing before (or without) a profiler just skips the capture.
	var prof *scuba.ContinuousProfiler
	cfg := scuba.LeafConfig{
		ID:                    *id,
		Shm:                   scuba.ShmOptions{Dir: *shmDir, Namespace: *namespace},
		DiskRoot:              *diskRoot,
		DiskFormat:            format,
		MemoryBudget:          *budget,
		Table:                 scuba.TableOptions{MaxAgeSeconds: *maxAge, MaxBytes: *maxBytes},
		DisableMemoryRecovery: *noShm,
		CopyWorkers:           *workers,
		InstantOn:             *instantOn,
		PromoteWorkers:        *promoteWk,
		ScanWorkers:           *scanWork,
		DecodeCacheBytes:      *decCache,
		WALDir:                *walDir,
		WALSyncInterval:       *walSync,
		Metrics:               reg,
		Obs:                   ob,
		OnRestartPhase: func(phase string, path scuba.RecoveryPath, d time.Duration) {
			prof.ObserveRestartPhase(phase, string(path), d, *profBudget)
		},
	}
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Self-telemetry (Scuba-on-Scuba): this leaf's own metrics and
	// flight-recorder events become rows in its __system tables, ingested
	// through the same AddRows path user data takes — and therefore
	// queryable through any aggregator and preserved across restarts by
	// the shared-memory path. A crashed predecessor's recovered recorder
	// events land in __system.recorder instead of only in the boot log.
	// The sink exists before Start so restart-anomaly profiles have a
	// delivery path; rows enqueued mid-recovery drain once the leaf is
	// ALIVE. With -telemetry-interval 0 but the profiler on, the sink runs
	// delivery-only (no metric snapshots).
	var sink *scuba.TelemetrySink
	if *telemetry > 0 || *profEvery > 0 {
		interval := *telemetry
		if interval <= 0 {
			interval = -1
		}
		sink = scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
			Emit:            l.AddRows,
			Source:          *addr,
			Registry:        reg,
			MetricsInterval: interval,
			OnError:         func(err error) { log.Printf("telemetry: %v", err) },
		})
		defer sink.Close()
	}
	if *profEvery > 0 {
		prof = scuba.NewProfiler(scuba.ProfilerConfig{
			Sink:          sink,
			Source:        *addr,
			Registry:      reg,
			Interval:      *profEvery,
			RestartBudget: *profBudget,
		})
		defer prof.Close()
		log.Printf("continuous profiler on: %v cadence into %s", *profEvery, scuba.SystemProfilesTable)
	}

	start := time.Now()
	if err := l.Start(); err != nil {
		log.Fatal(err)
	}
	rec := l.Recovery()
	log.Printf("scubad leaf %d up in %v (recovery: %s, %d blocks, %.1f MB, %d copy workers)",
		*id, time.Since(start).Round(time.Millisecond), rec.Path, rec.Blocks,
		float64(rec.BytesRestored)/(1<<20), rec.Workers)
	logPerTable("restored", rec.PerTable)
	logSlowest("restored", rec.PerTable)

	srv, err := scuba.NewServerOn(l, *addr, reg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", srv.Addr())

	// A crashed predecessor's recovered recorder events land in
	// __system.recorder instead of only in the boot log.
	if *telemetry > 0 {
		if prev := fr.Previous(); len(prev) > 0 {
			sink.RecordRecorderEvents("previous", prev)
		}
		sink.RecordRecorderEvents("current", fr.Events())
	}

	if *httpAddr != "" {
		hs, err := scuba.StartObsHTTP(*httpAddr, scuba.ObsHandler(scuba.ObsHandlerConfig{
			Registry: reg,
			Recorder: fr,
			Recovery: func() any { return l.Recovery() },
		}))
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		log.Printf("observability on http://%s (/metrics /debug/recovery /debug/pprof)", hs.Addr())
	}

	// Background maintenance: asynchronous disk sync (§4.1) + expiration.
	maint := l.StartMaintenance(scuba.MaintenanceConfig{
		SyncInterval:     *syncEvery,
		ExpireInterval:   *expireEach,
		SnapshotInterval: *snapEvery,
		OnError:          func(err error) { log.Printf("maintenance: %v", err) },
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	select {
	case info := <-srv.ShutdownRequested():
		// A shutdown RPC already drained the leaf (to shm or disk).
		maint.Stop()
		logShutdown("shutdown RPC", info)
		srv.Close()
	case sig := <-sigs:
		// A signal is a *planned* stop: drain through shared memory so the
		// replacement process restarts fast (a crash never gets here, and
		// the valid bit stays unset for it).
		maint.Stop()
		log.Printf("signal %v: copying to shared memory before exit", sig)
		srv.Close()
		info, err := l.Shutdown()
		if err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		logShutdown("signal shutdown", info)
	}
	if m := reg.String(); m != "" {
		log.Printf("final metrics:\n%s", m)
	}
	ob.Event(scuba.FlightNote, "process.exit", "clean exit")
	fr.Close()
	fmt.Println("scubad: bye")
}

// logShutdown prints a ShutdownInfo symmetrically to the recovery log line
// at startup: totals, workers, the per-table breakdown, and the slowest
// table (the one that bounds the restart, §4.2).
func logShutdown(how string, info scuba.ShutdownInfo) {
	log.Printf("%s: %d tables, %d blocks, %.1f MB in %v (shm=%v, %d copy workers); exiting",
		how, info.Tables, info.Blocks, float64(info.BytesCopied)/(1<<20),
		info.Duration.Round(time.Millisecond), info.ToShm, info.Workers)
	logPerTable("copied", info.PerTable)
	logSlowest("copied", info.PerTable)
}

// logPerTable prints the per-table copy breakdown of a restart-path half.
func logPerTable(verb string, stats []scuba.TableCopyStat) {
	for _, st := range stats {
		log.Printf("  %s %q: worker %d, %d blocks, %.1f MB in %v",
			verb, st.Table, st.Worker, st.Blocks, float64(st.Bytes)/(1<<20),
			st.Duration.Round(time.Millisecond))
	}
}

// logSlowest names the table whose copy took longest.
func logSlowest(verb string, stats []scuba.TableCopyStat) {
	if len(stats) == 0 {
		return
	}
	slow := stats[0]
	for _, st := range stats[1:] {
		if st.Duration > slow.Duration {
			slow = st
		}
	}
	log.Printf("  slowest %s table: %q (%v, %.1f MB on worker %d)",
		verb, slow.Table, slow.Duration.Round(time.Millisecond),
		float64(slow.Bytes)/(1<<20), slow.Worker)
}
