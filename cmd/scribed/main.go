// Command scribed runs the Scribe message bus as a standalone daemon
// (Figure 1): products append log events to categories; tailer daemons pull
// them out and push batches into leaf servers.
//
// Usage:
//
//	scribed -addr 127.0.0.1:7001 -retain 1048576
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"scuba/internal/scribe"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7001", "listen address")
		retain = flag.Int("retain", 1<<20, "messages retained per category")
	)
	flag.Parse()

	srv, err := scribe.NewServer(scribe.NewBus(*retain), *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scribed listening on %s (retain %d msgs/category)", srv.Addr(), *retain)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	srv.Close()
	log.Println("scribed: bye")
}
