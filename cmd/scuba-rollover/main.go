// Command scuba-rollover drives a system-wide software upgrade (§4.5),
// either against an in-process mini-cluster (-mode live, measuring the real
// implementation) or with the calibrated production-scale model (-mode sim,
// reproducing the paper's hour-scale numbers). Both render the Figure 8
// dashboard: old version / rolling over / new version.
//
// Usage:
//
//	scuba-rollover -mode live -machines 4 -leaves 8 -rows 400000 -path shm
//	scuba-rollover -mode sim  -path both
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"scuba"
	"scuba/internal/sim"
)

func main() {
	var (
		mode     = flag.String("mode", "live", "live (real mini-cluster) or sim (paper-scale model)")
		machines = flag.Int("machines", 4, "machines (live mode)")
		leaves   = flag.Int("leaves", 8, "leaves per machine (live mode)")
		rows     = flag.Int("rows", 200000, "rows to preload (live mode)")
		path     = flag.String("path", "both", "shm, disk, or both")
		batch    = flag.Float64("batch", 0.02, "fraction of leaves per batch")
	)
	flag.Parse()

	switch *mode {
	case "live":
		runLive(*machines, *leaves, *rows, *batch, *path)
	case "sim":
		runSim(*batch, *path)
	case "canary":
		runCanary(*machines, *leaves, *rows)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// runCanary demonstrates §6's experimental-deployment workflow: put an
// experimental build on a handful of leaves, check the data is intact,
// revert, check again — all through shared memory, seconds per step.
func runCanary(machines, leaves, rows int) {
	workDir, err := os.MkdirTemp("", "scuba-canary-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines: machines, LeavesPerMachine: leaves,
		ShmDir: workDir, DiskRoot: workDir + "/disk",
		Namespace: "canary", MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, time.Now().Unix()-3600)
	for sent := 0; sent < rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	agg := c.NewAggregator()
	count := func() float64 {
		q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
		res, err := agg.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		return res.Rows(q)[0].Values[0]
	}
	fmt.Printf("cluster of %d leaves, %.0f rows; canarying leaves 0 and 1\n", c.Size(), count())

	start := time.Now()
	can, err := c.StartCanary(scuba.CanaryConfig{Nodes: []int{0, 1}, Version: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experimental v99 on 2 leaves in %v (recoveries: %s, %s); rows still %.0f\n",
		time.Since(start).Round(time.Millisecond),
		can.Deploy[0].Recovery.Path, can.Deploy[1].Recovery.Path, count())

	start = time.Now()
	if _, err := can.Revert(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverted to v1 in %v; rows still %.0f\n",
		time.Since(start).Round(time.Millisecond), count())
	fmt.Println("(§6: \"we can add more logging, test bug fixes, and try new software designs — and then revert\")")
}

func wantPath(path, which string) bool { return path == which || path == "both" }

func runLive(machines, leaves, rows int, batch float64, path string) {
	workDir, err := os.MkdirTemp("", "scuba-rollover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            machines,
		LeavesPerMachine:    leaves,
		ShmDir:              workDir,
		DiskRoot:            workDir + "/disk",
		Namespace:           "rollover",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, time.Now().Unix()-7200)
	for sent := 0; sent < rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("live cluster: %d leaves, %d rows preloaded\n\n", c.Size(), rows)

	version := 2
	var durations = map[string]time.Duration{}
	for _, p := range []struct {
		name   string
		useShm bool
	}{{"shm", true}, {"disk", false}} {
		if !wantPath(path, p.name) {
			continue
		}
		fmt.Printf("--- %s rollover, %d%% per batch ---\n", p.name, int(batch*100))
		rep, err := c.Rollover(scuba.RolloverConfig{
			BatchFraction: batch,
			UseShm:        p.useShm,
			TargetVersion: version,
			OnBatch: func(b int, s scuba.ClusterSnapshot) {
				fmt.Printf("  batch %3d  %s\n", b, s)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		durations[p.name] = rep.Duration
		fmt.Printf("%s rollover: %v, %d batches, min availability %.1f%%, %d memory / %d disk recoveries\n\n",
			p.name, rep.Duration.Round(time.Millisecond), rep.Batches,
			100*rep.MinAvailability, rep.MemoryRecoveries, rep.DiskRecoveries)
		version++
	}
	if d1, ok1 := durations["shm"]; ok1 {
		if d2, ok2 := durations["disk"]; ok2 {
			fmt.Printf("shm speedup over disk: %.1fx\n", d2.Seconds()/d1.Seconds())
		}
	}
}

func runSim(batch float64, path string) {
	p := scuba.DefaultSimParams()
	p.BatchFraction = batch
	fmt.Printf("simulated cluster: %d machines x %d leaves x %.0f GB (paper scale)\n\n",
		p.Machines, p.LeavesPerMachine, p.DataPerLeafGB)

	for _, which := range []struct {
		name   string
		useShm bool
		paper  string
	}{
		{"shm", true, "paper: 2-3 min/server, <1 h rollover"},
		{"disk", false, "paper: 2.5-3 h/server, 10-12 h rollover"},
	} {
		if !wantPath(path, which.name) {
			continue
		}
		rep := p.SimulateRollover(which.useShm)
		fmt.Printf("--- %s (%s) ---\n", which.name, which.paper)
		fmt.Printf("per-machine restart: %s   rollover: %s in %d batches   "+
			"min availability: %.1f%%   weekly full availability: %.1f%%\n",
			sim.FormatDuration(p.MachineRestartTime(which.useShm)),
			sim.FormatDuration(rep.Total), rep.Batches,
			100*rep.MinAvailability, 100*scuba.WeeklyFullAvailability(rep.Total))
		// A compact Figure 8: ten evenly spaced dashboard lines.
		step := len(rep.Timeline) / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(rep.Timeline); i += step {
			pt := rep.Timeline[i]
			total := pt.OldVersion + pt.RollingOver + pt.NewVersion
			w := 50
			bar := strings.Repeat("#", pt.NewVersion*w/total) +
				strings.Repeat("~", pt.RollingOver*w/total)
			bar += strings.Repeat(".", w-len(bar))
			fmt.Printf("  %8s |%s| old=%d rolling=%d new=%d\n",
				sim.FormatDuration(pt.Elapsed), bar, pt.OldVersion, pt.RollingOver, pt.NewVersion)
		}
		fmt.Println()
	}
}
