// Command scuba-rollover drives a system-wide software upgrade (§4.5):
// against real scubad subprocesses with replica-backed shard routing
// (-mode real, the production procedure end to end with a live availability
// timeline), against an in-process mini-cluster (-mode live, measuring the
// restart path itself), or with the calibrated production-scale model
// (-mode sim, reproducing the paper's hour-scale numbers). All render the
// Figure 8 dashboard: old version / rolling over / new version.
//
// Usage:
//
//	scuba-rollover -mode real -machines 4 -leaves 4 -rows 100000 -replication 2
//	scuba-rollover -mode live -machines 4 -leaves 8 -rows 400000 -path shm
//	scuba-rollover -mode sim  -path both
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"strings"
	"time"

	"scuba"
	"scuba/internal/sim"
)

func main() {
	var (
		mode        = flag.String("mode", "live", "real (scubad subprocesses), live (in-process mini-cluster), sim (paper-scale model), or canary")
		machines    = flag.Int("machines", 4, "machines (real/live modes)")
		leaves      = flag.Int("leaves", 8, "leaves per machine (real/live modes)")
		rows        = flag.Int("rows", 200000, "rows to preload (real/live modes)")
		path        = flag.String("path", "both", "shm, disk, or both (real mode uses shm unless -path disk)")
		batch       = flag.Float64("batch", 0.02, "fraction of leaves per batch")
		replication = flag.Int("replication", 2, "owners per shard (real mode)")
		numShards   = flag.Int("shards", 0, "shards per table (real mode; 0 = default)")
		bin         = flag.String("bin", "", "scubad binary (real mode; '' builds it)")
		killAfter   = flag.Duration("kill-timeout", 3*time.Minute, "per-leaf drain deadline before kill -9 (real mode)")
		maxDisk     = flag.Float64("max-disk-fallback", 0, "abort when this fraction of restarts disk-recover (real mode; 0 disables)")
		verbose     = flag.Bool("v", false, "forward subprocess logs to stderr (real mode)")
	)
	flag.Parse()

	switch *mode {
	case "real":
		runReal(realConfig{
			machines: *machines, leaves: *leaves, rows: *rows,
			batch: *batch, useShm: *path != "disk",
			replication: *replication, numShards: *numShards,
			bin: *bin, killTimeout: *killAfter, maxDiskFallback: *maxDisk,
			verbose: *verbose,
		})
	case "live":
		runLive(*machines, *leaves, *rows, *batch, *path)
	case "sim":
		runSim(*batch, *path)
	case "canary":
		runCanary(*machines, *leaves, *rows)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

type realConfig struct {
	machines, leaves, rows int
	batch                  float64
	useShm                 bool
	replication, numShards int
	bin                    string
	killTimeout            time.Duration
	maxDiskFallback        float64
	verbose                bool
}

// runReal is the production rollover procedure end to end: real scubad
// processes, dual-written shards, drain-to-shm RPCs, kill timeouts,
// /debug/recovery polling, and shard-map flips through the aggregator's
// admin RPCs — with a probe measuring live availability the whole way.
func runReal(cfg realConfig) {
	workDir, err := os.MkdirTemp("", "scuba-real-rollover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	binPath := cfg.bin
	if binPath == "" {
		fmt.Println("building scubad...")
		binPath, err = scuba.BuildScubad(workDir)
		if err != nil {
			log.Fatal(err)
		}
	}
	var logs = os.Stderr
	if !cfg.verbose {
		logs = nil
	}
	start := time.Now()
	pc, err := scuba.StartProcCluster(scuba.ProcConfig{
		BinPath:          binPath,
		Machines:         cfg.machines,
		LeavesPerMachine: cfg.leaves,
		Replication:      cfg.replication,
		NumShards:        cfg.numShards,
		WorkDir:          workDir,
		Namespace:        "real-rollover",
		Logs:             logs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	n := cfg.machines * cfg.leaves
	fmt.Printf("%d scubad processes up in %v (%d machines x %d leaves, R=%d), aggregator at %s\n",
		n, time.Since(start).Round(time.Millisecond), cfg.machines, cfg.leaves,
		cfg.replication, pc.AggAddr())

	placer := pc.NewShardedPlacer()
	gen := scuba.ServiceLogs(1, time.Now().Unix()-7200)
	for sent := 0; sent < cfg.rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	st := placer.Stats()
	fmt.Printf("loaded %d rows as %d batches (%d replica copies, %d missed)\n",
		st.RowsPlaced, st.Batches, st.Copies, st.MissedCopies)

	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}},
		GroupBy:      []string{"service"}}
	aggCli := pc.AggClient()
	baseline, err := aggCli.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseRows := baseline.Rows(q)
	fmt.Printf("baseline: %d/%d shards, %d result groups\n\n",
		baseline.ShardsAnswered, baseline.ShardsTotal, len(baseRows))

	probe := scuba.StartAvailabilityProbe(aggCli, scuba.ProbeConfig{
		Query: q,
		Check: func(res *scuba.Result) error {
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				return errors.New("result drifted from baseline")
			}
			return nil
		},
	})

	which := "shm"
	if !cfg.useShm {
		which = "disk"
	}
	fmt.Printf("--- %s rollover, %d%% per batch, MaxPerMachine=1 ---\n", which, int(cfg.batch*100))
	rep, err := pc.ProcRollover(scuba.ProcRolloverConfig{
		BatchFraction:   cfg.batch,
		MaxPerMachine:   1,
		UseShm:          cfg.useShm,
		KillTimeout:     cfg.killTimeout,
		MaxDiskFallback: cfg.maxDiskFallback,
		Tables:          []string{"service_logs"},
		OnBatch: func(b int, draining []string) {
			fmt.Printf("  batch %2d: draining %s\n", b, strings.Join(draining, " "))
		},
	})
	avail := probe.Stop()
	if err != nil {
		fmt.Printf("rollover stopped: %v\n", err)
	}
	fmt.Printf("\nrollover: %v, %d batches, %d memory / %d mixed / %d disk recoveries, %d quarantined\n",
		rep.Duration.Round(time.Millisecond), rep.Batches,
		rep.MemoryRecoveries, rep.MixedRecoveries, rep.DiskRecoveries, len(rep.Quarantined))

	fmt.Printf("\navailability during rollover (%d queries, %d errors, %d wrong):\n",
		avail.Queries, avail.Errors, avail.Wrong)
	fmt.Printf("  shard coverage: min %.1f%%   leaf coverage: min %.1f%%\n",
		100*avail.MinShardCoverage, 100*avail.MinLeafCoverage)
	fmt.Printf("  query latency: p50 %v  p99 %v\n",
		avail.P50.Round(time.Microsecond), avail.P99.Round(time.Microsecond))
	step := len(avail.Points) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(avail.Points); i += step {
		pt := avail.Points[i]
		w := 40
		bar := strings.Repeat("#", int(pt.ShardCoverage*float64(w)))
		bar += strings.Repeat(".", w-len(bar))
		fmt.Printf("  %8s |%s| shards %5.1f%%  leaves %5.1f%%  %v\n",
			pt.Elapsed.Round(time.Millisecond), bar,
			100*pt.ShardCoverage, 100*pt.LeafCoverage, pt.Latency.Round(time.Microsecond))
	}
}

// runCanary demonstrates §6's experimental-deployment workflow: put an
// experimental build on a handful of leaves, check the data is intact,
// revert, check again — all through shared memory, seconds per step.
func runCanary(machines, leaves, rows int) {
	workDir, err := os.MkdirTemp("", "scuba-canary-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines: machines, LeavesPerMachine: leaves,
		ShmDir: workDir, DiskRoot: workDir + "/disk",
		Namespace: "canary", MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, time.Now().Unix()-3600)
	for sent := 0; sent < rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	agg := c.NewAggregator()
	count := func() float64 {
		q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
		res, err := agg.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		return res.Rows(q)[0].Values[0]
	}
	fmt.Printf("cluster of %d leaves, %.0f rows; canarying leaves 0 and 1\n", c.Size(), count())

	start := time.Now()
	can, err := c.StartCanary(scuba.CanaryConfig{Nodes: []int{0, 1}, Version: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experimental v99 on 2 leaves in %v (recoveries: %s, %s); rows still %.0f\n",
		time.Since(start).Round(time.Millisecond),
		can.Deploy[0].Recovery.Path, can.Deploy[1].Recovery.Path, count())

	start = time.Now()
	if _, err := can.Revert(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverted to v1 in %v; rows still %.0f\n",
		time.Since(start).Round(time.Millisecond), count())
	fmt.Println("(§6: \"we can add more logging, test bug fixes, and try new software designs — and then revert\")")
}

func wantPath(path, which string) bool { return path == which || path == "both" }

func runLive(machines, leaves, rows int, batch float64, path string) {
	workDir, err := os.MkdirTemp("", "scuba-rollover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            machines,
		LeavesPerMachine:    leaves,
		ShmDir:              workDir,
		DiskRoot:            workDir + "/disk",
		Namespace:           "rollover",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, time.Now().Unix()-7200)
	for sent := 0; sent < rows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("live cluster: %d leaves, %d rows preloaded\n\n", c.Size(), rows)

	version := 2
	var durations = map[string]time.Duration{}
	for _, p := range []struct {
		name   string
		useShm bool
	}{{"shm", true}, {"disk", false}} {
		if !wantPath(path, p.name) {
			continue
		}
		fmt.Printf("--- %s rollover, %d%% per batch ---\n", p.name, int(batch*100))
		rep, err := c.Rollover(scuba.RolloverConfig{
			BatchFraction: batch,
			UseShm:        p.useShm,
			TargetVersion: version,
			OnBatch: func(b int, s scuba.ClusterSnapshot) {
				fmt.Printf("  batch %3d  %s\n", b, s)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		durations[p.name] = rep.Duration
		fmt.Printf("%s rollover: %v, %d batches, min availability %.1f%%, %d memory / %d disk recoveries\n\n",
			p.name, rep.Duration.Round(time.Millisecond), rep.Batches,
			100*rep.MinAvailability, rep.MemoryRecoveries, rep.DiskRecoveries)
		version++
	}
	if d1, ok1 := durations["shm"]; ok1 {
		if d2, ok2 := durations["disk"]; ok2 {
			fmt.Printf("shm speedup over disk: %.1fx\n", d2.Seconds()/d1.Seconds())
		}
	}
}

func runSim(batch float64, path string) {
	p := scuba.DefaultSimParams()
	p.BatchFraction = batch
	fmt.Printf("simulated cluster: %d machines x %d leaves x %.0f GB (paper scale)\n\n",
		p.Machines, p.LeavesPerMachine, p.DataPerLeafGB)

	for _, which := range []struct {
		name   string
		useShm bool
		paper  string
	}{
		{"shm", true, "paper: 2-3 min/server, <1 h rollover"},
		{"disk", false, "paper: 2.5-3 h/server, 10-12 h rollover"},
	} {
		if !wantPath(path, which.name) {
			continue
		}
		rep := p.SimulateRollover(which.useShm)
		fmt.Printf("--- %s (%s) ---\n", which.name, which.paper)
		fmt.Printf("per-machine restart: %s   rollover: %s in %d batches   "+
			"min availability: %.1f%%   weekly full availability: %.1f%%\n",
			sim.FormatDuration(p.MachineRestartTime(which.useShm)),
			sim.FormatDuration(rep.Total), rep.Batches,
			100*rep.MinAvailability, 100*scuba.WeeklyFullAvailability(rep.Total))
		// A compact Figure 8: ten evenly spaced dashboard lines.
		step := len(rep.Timeline) / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(rep.Timeline); i += step {
			pt := rep.Timeline[i]
			total := pt.OldVersion + pt.RollingOver + pt.NewVersion
			w := 50
			bar := strings.Repeat("#", pt.NewVersion*w/total) +
				strings.Repeat("~", pt.RollingOver*w/total)
			bar += strings.Repeat(".", w-len(bar))
			fmt.Printf("  %8s |%s| old=%d rolling=%d new=%d\n",
				sim.FormatDuration(pt.Elapsed), bar, pt.OldVersion, pt.RollingOver, pt.NewVersion)
		}
		fmt.Println()
	}
}
