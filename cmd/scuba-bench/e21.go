package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"scuba"
)

// ---- E21: crash-recovery time — snapshot + WAL replay vs disk translate ----

// e21Cell is one tail-length measurement in BENCH_e21.json.
type e21Cell struct {
	TailPct     int     `json:"tail_pct"`
	TailRows    int     `json:"tail_rows"`
	WALMillis   float64 `json:"wal_ms"`
	DiskMillis  float64 `json:"disk_ms"`
	Speedup     float64 `json:"speedup"`
	ReplayRows  int64   `json:"replayed_rows"`
	SnapBlocks  int     `json:"snapshot_blocks"`
	CountChecks bool    `json:"count_checks"`
}

type e21Report struct {
	Rows    int       `json:"rows"`
	Cells   []e21Cell `json:"cells"`
	Pass5x  bool      `json:"pass_5x"`
	BestFat float64   `json:"best_speedup"`
}

// runE21 measures the tentpole of the crash-path-parity work: after a crash
// (no shm, valid bit unset), recovery by columnar snapshot images + WAL tail
// replay versus the old full row-format disk translate, over the same data.
// The WAL tail length is the lever: at 0% everything is snapshot-covered
// (pure image load), and each extra point of tail pays row-at-a-time replay.
// The acceptance bar is the issue's: snapshot+replay at least 5x faster than
// the translate.
func runE21() error {
	// Below ~a million rows the fixed Start cost (shm scan, flight
	// recorder, table bring-up) dominates both paths and the comparison
	// measures overhead, not recovery.
	totalRows := *rowsFlag
	if totalRows < 1000000 {
		totalRows = 1000000
	}

	rep := e21Report{Rows: totalRows}
	fmt.Printf("%8s | %10s %10s %8s\n", "tail", "wal", "disk", "speedup")

	for _, tailPct := range []int{0, 10, 25} {
		cell, err := e21Cell1(totalRows, tailPct)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Printf("%7d%% | %8.1fms %8.1fms %7.1fx\n",
			tailPct, cell.WALMillis, cell.DiskMillis, cell.Speedup)
		if cell.Speedup > rep.BestFat {
			rep.BestFat = cell.Speedup
		}
	}
	rep.Pass5x = rep.BestFat >= 5

	verdict := "PASS"
	if !rep.Pass5x {
		verdict = "FAIL"
	}
	fmt.Printf("\ncrash recovery via snapshots+WAL: best speedup %.1fx over the disk translate [%s, bar is 5x]\n",
		rep.BestFat, verdict)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e21.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e21.json")
	fmt.Println("paper §4.3: a crashed leaf pays the full disk translate; the WAL + incremental")
	fmt.Println("columnar snapshots give crashes the same near-translate-free restart as upgrades")
	return nil
}

// e21Cell1 builds one dataset with (100-tailPct)% of rows snapshot-covered
// and tailPct% only in the WAL, crashes the leaf, and times both recovery
// paths over identical data.
func e21Cell1(totalRows, tailPct int) (e21Cell, error) {
	cell := e21Cell{TailPct: tailPct, TailRows: totalRows * tailPct / 100}
	baseRows := totalRows - cell.TailRows

	dir, err := os.MkdirTemp("", "scuba-e21-")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(dir)
	cfg := scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: dir, Namespace: "e21"},
		DiskRoot:     dir + "/disk",
		MemoryBudget: 8 << 30,
		WALDir:       dir + "/wal",
		// Inline fsync: acks are durable and no flusher goroutine outlives
		// the "crashed" (abandoned) leaf objects below.
		WALSyncInterval: 0,
	}

	load := func(l *scuba.Leaf, gen *scuba.Workload, rows int) error {
		for sent := 0; sent < rows; sent += 10000 {
			n := rows - sent
			if n > 10000 {
				n = 10000
			}
			if err := l.AddRows("service_logs", gen.NextBatch(n)); err != nil {
				return err
			}
		}
		return nil
	}
	count := func(l *scuba.Leaf) (int, error) {
		q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
		res, err := l.Query(q)
		if err != nil {
			return 0, err
		}
		rows := res.Rows(q)
		if len(rows) == 0 {
			return 0, nil
		}
		return int(rows[0].Values[0]), nil
	}

	// Build: base rows sealed, snapshotted, and synced to disk; tail rows
	// sealed and synced but NOT snapshotted, so they live only in the WAL
	// as far as crash recovery is concerned. Both paths see all the rows.
	l0, err := scuba.NewLeaf(cfg)
	if err != nil {
		return cell, err
	}
	if err := l0.Start(); err != nil {
		return cell, err
	}
	gen := scuba.ServiceLogs(21, 1700000000)
	if err := load(l0, gen, baseRows); err != nil {
		return cell, err
	}
	if err := l0.SealAll(); err != nil {
		return cell, err
	}
	if n, err := l0.SnapshotPass(); err != nil {
		return cell, err
	} else {
		cell.SnapBlocks = n
	}
	if err := load(l0, gen, cell.TailRows); err != nil {
		return cell, err
	}
	if err := l0.SealAll(); err != nil {
		return cell, err
	}
	if _, err := l0.SyncToDisk(); err != nil {
		return cell, err
	}
	// Crash: l0 is abandoned — no shutdown, no valid bit.

	// Path A: snapshot images + WAL tail replay.
	l1, err := scuba.NewLeaf(cfg)
	if err != nil {
		return cell, err
	}
	start := time.Now()
	if err := l1.Start(); err != nil {
		return cell, err
	}
	cell.WALMillis = float64(time.Since(start).Microseconds()) / 1000
	info := l1.Recovery()
	if string(info.Path) != "wal" {
		return cell, fmt.Errorf("e21: crash recovery took path %q, want wal", info.Path)
	}
	cell.ReplayRows = info.WALRowsReplayed
	got, err := count(l1)
	if err != nil {
		return cell, err
	}
	if got != totalRows {
		return cell, fmt.Errorf("e21: WAL recovery served %d rows, want %d", got, totalRows)
	}
	// WAL recovery wiped the stale disk backup; rewrite it so the disk
	// baseline below recovers the same dataset.
	if err := l1.SealAll(); err != nil {
		return cell, err
	}
	if _, err := l1.SyncToDisk(); err != nil {
		return cell, err
	}
	// Crash again.

	// Path B: the pre-WAL baseline — full row-format disk translate.
	diskCfg := cfg
	diskCfg.WALDir = ""
	l2, err := scuba.NewLeaf(diskCfg)
	if err != nil {
		return cell, err
	}
	start = time.Now()
	if err := l2.Start(); err != nil {
		return cell, err
	}
	cell.DiskMillis = float64(time.Since(start).Microseconds()) / 1000
	if string(l2.Recovery().Path) != "disk" {
		return cell, fmt.Errorf("e21: baseline recovery took path %q, want disk", l2.Recovery().Path)
	}
	got, err = count(l2)
	if err != nil {
		return cell, err
	}
	if got != totalRows {
		return cell, fmt.Errorf("e21: disk recovery served %d rows, want %d", got, totalRows)
	}
	cell.CountChecks = true
	if cell.WALMillis > 0 {
		cell.Speedup = cell.DiskMillis / cell.WALMillis
	}
	return cell, nil
}
