package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scuba"
	"scuba/internal/aggregator"
	"scuba/internal/column"
	"scuba/internal/disk"
	"scuba/internal/fault"
	"scuba/internal/layout"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/sim"
	"scuba/internal/tailer"
	"scuba/internal/workload"
)

// bench is the shared scaffolding: temp dirs cleaned at exit.
type bench struct {
	dir string
}

func newBench() (*bench, func()) {
	dir, err := os.MkdirTemp("", "scuba-bench-")
	if err != nil {
		panic(err)
	}
	return &bench{dir: dir}, func() { os.RemoveAll(dir) }
}

func (b *bench) leafConfig(id int, format scuba.DiskFormat) scuba.LeafConfig {
	return scuba.LeafConfig{
		ID:           id,
		Shm:          scuba.ShmOptions{Dir: filepath.Join(b.dir, "shm"), Namespace: "bench"},
		DiskRoot:     filepath.Join(b.dir, "disk"),
		DiskFormat:   format,
		MemoryBudget: 8 << 30,
	}
}

func (b *bench) newLeaf(id int, format scuba.DiskFormat) (*scuba.Leaf, error) {
	if err := os.MkdirAll(filepath.Join(b.dir, "shm"), 0o755); err != nil {
		return nil, err
	}
	l, err := scuba.NewLeaf(b.leafConfig(id, format))
	if err != nil {
		return nil, err
	}
	return l, l.Start()
}

// loadLeaf fills a leaf with the service-log workload and seals it.
func loadLeaf(l *scuba.Leaf, rows int) (int64, error) {
	gen := scuba.ServiceLogs(42, 1700000000)
	const batch = 10000
	for sent := 0; sent < rows; sent += batch {
		n := batch
		if sent+n > rows {
			n = rows - sent
		}
		if err := l.AddRows("service_logs", gen.NextBatch(n)); err != nil {
			return 0, err
		}
	}
	if err := l.SealAll(); err != nil {
		return 0, err
	}
	return l.Stats().Bytes, nil
}

// ---- E1: restart from disk vs shared memory ----

func runE1() error {
	fmt.Printf("%10s %12s | %12s %12s %12s | %12s %10s\n",
		"rows", "data", "disk read", "disk total", "translate%", "shm restore", "speedup")
	var lastDisk, lastShm time.Duration
	var lastBytes int64
	for _, rows := range []int{*rowsFlag / 4, *rowsFlag / 2, *rowsFlag} {
		b, cleanup := newBench()
		// Disk path: clean shutdown to disk, restart translating row files.
		l, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		bytes, err := loadLeaf(l, rows)
		if err != nil {
			cleanup()
			return err
		}
		if _, err := l.ShutdownToDisk(); err != nil {
			cleanup()
			return err
		}
		readOnly := rawReadTime(filepath.Join(b.dir, "disk"))
		l2, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		diskDur := l2.Recovery().Duration

		// Shm path on the same data.
		if _, err := l2.Shutdown(); err != nil {
			cleanup()
			return err
		}
		l3, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		if l3.Recovery().Path != scuba.RecoveryMemory {
			cleanup()
			return fmt.Errorf("expected memory recovery, got %v", l3.Recovery().Path)
		}
		shmDur := l3.Recovery().Duration
		translatePct := 100 * (1 - readOnly.Seconds()/diskDur.Seconds())
		fmt.Printf("%10d %12s | %12v %12v %11.0f%% | %12v %9.1fx\n",
			rows, mb(bytes), readOnly.Round(time.Millisecond), diskDur.Round(time.Millisecond),
			translatePct, shmDur.Round(time.Millisecond), diskDur.Seconds()/shmDur.Seconds())
		lastDisk, lastShm, lastBytes = diskDur, shmDur, bytes
		cleanup()
	}

	// Extrapolate the largest run to paper scale with the calibrated model.
	p := sim.DefaultParams().Calibrate(lastBytes, lastDisk, lastShm)
	fmt.Printf("\ncalibrated to measured rates: one 120 GB machine restarts in %s from disk, %s from shm\n",
		sim.FormatDuration(p.MachineRestartTime(false)), sim.FormatDuration(p.MachineRestartTime(true)))
	fmt.Println("paper: 2.5-3 hours from disk (20-25 min of it raw reads), 2-3 minutes from shared memory")
	return nil
}

// rawReadTime measures only the file reads of a disk recovery.
func rawReadTime(root string) time.Duration {
	start := time.Now()
	var total int64
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error { //nolint:errcheck
		if err != nil || info.IsDir() {
			return nil
		}
		b, err := os.ReadFile(path)
		if err == nil {
			total += int64(len(b))
		}
		return nil
	})
	_ = total
	return time.Since(start)
}

// ---- E2: shutdown to shared memory ----

func runE2() error {
	fmt.Printf("%10s %12s | %14s %14s %12s\n", "rows", "data", "shutdown(shm)", "copy rate", "tables")
	for _, rows := range []int{*rowsFlag / 4, *rowsFlag / 2, *rowsFlag} {
		b, cleanup := newBench()
		l, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		if _, err := loadLeaf(l, rows); err != nil {
			cleanup()
			return err
		}
		info, err := l.Shutdown()
		if err != nil {
			cleanup()
			return err
		}
		rate := float64(info.BytesCopied) / (1 << 20) / info.Duration.Seconds()
		fmt.Printf("%10d %12s | %14v %11.0f MB/s %12d\n",
			rows, mb(info.BytesCopied), info.Duration.Round(time.Millisecond), rate, info.Tables)
		cleanup()
	}
	fmt.Println("paper: the leaf copies its data to shared memory and exits in 3-4 seconds (10-15 GB)")
	return nil
}

// ---- E3: full-cluster rollover ----

func runE3() error {
	// Live mini-cluster measurement.
	b, cleanup := newBench()
	defer cleanup()
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines: 4, LeavesPerMachine: 4,
		ShmDir: filepath.Join(b.dir, "shm"), DiskRoot: filepath.Join(b.dir, "disk"),
		Namespace: "bench", MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(b.dir, "shm"), 0o755); err != nil {
		return err
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, 1700000000)
	for sent := 0; sent < *rowsFlag; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			return err
		}
	}
	var live = map[bool]time.Duration{}
	version := 2
	for _, useShm := range []bool{true, false} {
		rep, err := c.Rollover(scuba.RolloverConfig{BatchFraction: 0.125, UseShm: useShm, TargetVersion: version})
		if err != nil {
			return err
		}
		live[useShm] = rep.Duration
		version++
	}
	fmt.Printf("live 16-leaf cluster, %d rows: shm rollover %v, disk rollover %v (%.1fx)\n",
		*rowsFlag, live[true].Round(time.Millisecond), live[false].Round(time.Millisecond),
		live[false].Seconds()/live[true].Seconds())

	// Paper-scale simulation.
	p := sim.DefaultParams()
	simShm, simDisk := p.SimulateRollover(true), p.SimulateRollover(false)
	fmt.Printf("simulated 100x8 cluster at 2%%/batch: shm %s, disk %s (%.1fx)\n",
		sim.FormatDuration(simShm.Total), sim.FormatDuration(simDisk.Total),
		simDisk.Total.Seconds()/simShm.Total.Seconds())
	fmt.Println("paper: under an hour with shared memory (incl. ~40 min deployment overhead) vs 10-12 hours from disk")
	return nil
}

// ---- E4: Figure 8 dashboard / availability ----

func runE4() error {
	p := sim.DefaultParams()
	rep := p.SimulateRollover(true)
	fmt.Printf("%10s %8s %8s %8s %10s\n", "elapsed", "old", "rolling", "new", "available")
	step := len(rep.Timeline) / 8
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rep.Timeline); i += step {
		pt := rep.Timeline[i]
		fmt.Printf("%10s %8d %8d %8d %9.1f%%\n",
			sim.FormatDuration(pt.Elapsed), pt.OldVersion, pt.RollingOver, pt.NewVersion, 100*pt.Available)
	}
	fmt.Printf("min availability %.1f%%, mean %.2f%% (paper/Figure 8: 98%% of data stays available)\n",
		100*rep.MinAvailability, 100*rep.MeanAvailability)
	return nil
}

// ---- E5: weekly availability ----

func runE5() error {
	p := sim.DefaultParams()
	disk := p.SimulateRollover(false).Total
	mem := p.SimulateRollover(true).Total
	fmt.Printf("%-22s %14s %22s\n", "path", "rollover", "weekly full availability")
	fmt.Printf("%-22s %14s %21.1f%%\n", "disk recovery", sim.FormatDuration(disk), 100*sim.WeeklyFullAvailability(disk))
	fmt.Printf("%-22s %14s %21.1f%%\n", "shared memory", sim.FormatDuration(mem), 100*sim.WeeklyFullAvailability(mem))
	fmt.Println("paper: 93% -> 99.5%")
	return nil
}

// ---- E6: restart parallelism ----

func runE6() error {
	fmt.Println("live measurement: restart k loaded leaves concurrently in one process")
	fmt.Printf("%4s %16s %18s\n", "k", "wall time", "per-leaf mean")
	for _, k := range []int{1, 2, 4, 8} {
		b, cleanup := newBench()
		leaves := make([]*scuba.Leaf, k)
		for i := range leaves {
			l, err := b.newLeaf(i, scuba.FormatRow)
			if err != nil {
				cleanup()
				return err
			}
			if _, err := loadLeaf(l, *rowsFlag/4); err != nil {
				cleanup()
				return err
			}
			if _, err := l.Shutdown(); err != nil {
				cleanup()
				return err
			}
			leaves[i] = l
		}
		start := time.Now()
		var wg sync.WaitGroup
		var totalNs atomic.Int64
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l, err := b.newLeaf(i, scuba.FormatRow)
				if err != nil {
					panic(err)
				}
				totalNs.Add(int64(l.Recovery().Duration))
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		fmt.Printf("%4d %16v %18v\n", k, wall.Round(time.Millisecond),
			(time.Duration(totalNs.Load()) / time.Duration(k)).Round(time.Millisecond))
		cleanup()
	}

	p := sim.DefaultParams()
	fmt.Println("\nsimulated at paper scale (per-leaf restart time):")
	fmt.Printf("%4s %22s %22s\n", "k", "k leaves, 1 machine", "k leaves, k machines")
	for _, k := range []int{1, 2, 4, 8} {
		same, spread := p.ParallelismSweep(true, k)
		fmt.Printf("%4d %22s %22s\n", k, sim.FormatDuration(same), sim.FormatDuration(spread))
	}
	fmt.Println("paper: restarting one leaf per machine gives each leaf the full machine's bandwidth (§2, §6)")
	return nil
}

// ---- E7: compression ----

func runE7() error {
	// Per-column detail on the service-log table, then totals for every
	// workload table (overall ratio depends on workload entropy; the paper's
	// ~30x is on production data dominated by low-cardinality columns).
	if err := compressionDetail(workload.ServiceLogs(42, 1700000000)); err != nil {
		return err
	}
	fmt.Printf("\n%-16s %12s %12s %8s\n", "table", "raw", "encoded", "ratio")
	for _, gen := range []*workload.Generator{
		workload.ServiceLogs(42, 1700000000),
		workload.ErrorEvents(42, 1700000000),
		workload.AdsRevenue(42, 1700000000),
	} {
		raw, enc, err := compressionTotals(gen)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %12d %12d %7.1fx\n", gen.Table, raw, enc, float64(raw)/float64(enc))
	}
	fmt.Println("paper: compression reduces row block columns by a factor of about 30, >=2 methods per column")
	return nil
}

func sealFullBlock(gen *workload.Generator) (*rowblock.RowBlock, error) {
	builder := rowblock.NewBuilder(1700000000)
	for _, r := range gen.NextBatch(rowblock.MaxRows) {
		if err := builder.AddRow(r); err != nil {
			return nil, err
		}
	}
	return builder.Seal()
}

// columnRawSize computes an honest uncompressed size for one column.
func columnRawSize(rb *rowblock.RowBlock, i int) (int64, error) {
	f := rb.Schema()[i]
	switch f.Type {
	case layout.TypeInt64, layout.TypeTime, layout.TypeFloat64:
		return int64(rb.Rows() * 8), nil
	}
	col, err := column.Decode(rb.Column(i))
	if err != nil {
		return 0, err
	}
	var rawSize int64
	switch c := col.(type) {
	case *column.StringColumn:
		for j := 0; j < c.Len(); j++ {
			rawSize += int64(len(c.Value(j)))
		}
	case *column.StringSetColumn:
		for j := 0; j < c.Len(); j++ {
			for _, s := range c.Value(j) {
				rawSize += int64(len(s)) + 1
			}
		}
	}
	return rawSize, nil
}

func compressionDetail(gen *workload.Generator) error {
	rb, err := sealFullBlock(gen)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %-16s %12s %12s %8s\n", "column", "type", "pipeline", "raw", "encoded", "ratio")
	var rawTotal, encTotal int64
	for i, f := range rb.Schema() {
		rbc := rb.Column(i)
		rawSize, err := columnRawSize(rb, i)
		if err != nil {
			return err
		}
		enc := int64(rbc.Size())
		rawTotal += rawSize
		encTotal += enc
		fmt.Printf("%-14s %-10s %-16s %12d %12d %7.1fx\n",
			f.Name, f.Type, rbc.Code(), rawSize, enc, float64(rawSize)/float64(enc))
	}
	fmt.Printf("%-14s %-10s %-16s %12d %12d %7.1fx\n", "TOTAL", "", "", rawTotal, encTotal,
		float64(rawTotal)/float64(encTotal))
	return nil
}

func compressionTotals(gen *workload.Generator) (raw, enc int64, err error) {
	rb, err := sealFullBlock(gen)
	if err != nil {
		return 0, 0, err
	}
	for i := range rb.Schema() {
		rawSize, err := columnRawSize(rb, i)
		if err != nil {
			return 0, 0, err
		}
		raw += rawSize
		enc += int64(rb.Column(i).Size())
	}
	return raw, enc, nil
}

// ---- E8: columnar disk format ----

func runE8() error {
	fmt.Printf("%-14s %14s %14s %10s\n", "disk format", "backup write", "recovery", "speedup")
	var rowDur time.Duration
	for _, format := range []scuba.DiskFormat{scuba.FormatRow, scuba.FormatColumnar} {
		b, cleanup := newBench()
		l, err := b.newLeaf(0, format)
		if err != nil {
			cleanup()
			return err
		}
		if _, err := loadLeaf(l, *rowsFlag); err != nil {
			cleanup()
			return err
		}
		wStart := time.Now()
		if _, err := l.ShutdownToDisk(); err != nil {
			cleanup()
			return err
		}
		writeDur := time.Since(wStart)
		l2, err := b.newLeaf(0, format)
		if err != nil {
			cleanup()
			return err
		}
		rec := l2.Recovery().Duration
		speedup := "-"
		if format == scuba.FormatRow {
			rowDur = rec
		} else if rec > 0 {
			speedup = fmt.Sprintf("%.1fx", rowDur.Seconds()/rec.Seconds())
		}
		fmt.Printf("%-14v %14v %14v %10s\n", disk.Format(format),
			writeDur.Round(time.Millisecond), rec.Round(time.Millisecond), speedup)
		cleanup()
	}
	fmt.Println("paper (§6): using the shared memory format as the disk format should speed up disk recovery significantly")
	return nil
}

// ---- E9: crash-safety fault injection ----

func runE9() error {
	type faultCase struct {
		name   string
		inject func(m *shm.Manager, shmDir string) error
	}
	cases := []faultCase{
		{"crash (valid bit never set)", func(m *shm.Manager, _ string) error {
			// Simulated by skipping Shutdown entirely below.
			return nil
		}},
		{"interrupted restore (valid cleared)", func(m *shm.Manager, _ string) error {
			return m.Invalidate()
		}},
		{"layout version skew", func(m *shm.Manager, _ string) error {
			md, err := m.ReadMetadata()
			if err != nil {
				return err
			}
			md.Version++
			return m.WriteMetadata(md)
		}},
		{"corrupt segment payload", func(m *shm.Manager, dir string) error {
			entries, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if !e.IsDir() && len(e.Name()) > 0 && containsTbl(e.Name()) {
					path := filepath.Join(dir, e.Name())
					raw, err := os.ReadFile(path)
					if err != nil {
						return err
					}
					raw[len(raw)/2] ^= 0xff
					return os.WriteFile(path, raw, 0o644)
				}
			}
			return fmt.Errorf("no segment found")
		}},
	}
	fmt.Printf("%-36s %-10s %-10s %8s\n", "fault", "recovery", "data", "verdict")
	for i, fc := range cases {
		b, cleanup := newBench()
		l, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		if _, err := loadLeaf(l, 20000); err != nil {
			cleanup()
			return err
		}
		if _, err := l.SyncToDisk(); err != nil {
			cleanup()
			return err
		}
		if i != 0 { // case 0 is the crash: no clean shutdown at all
			if _, err := l.Shutdown(); err != nil {
				cleanup()
				return err
			}
		}
		m := shm.NewManager(0, shm.Options{Dir: filepath.Join(b.dir, "shm"), Namespace: "bench"})
		if err := fc.inject(m, filepath.Join(b.dir, "shm")); err != nil {
			cleanup()
			return err
		}
		l2, err := b.newLeaf(0, scuba.FormatRow)
		if err != nil {
			cleanup()
			return err
		}
		count, err := countRows(l2, "service_logs")
		if err != nil {
			cleanup()
			return err
		}
		verdict := "PASS"
		if l2.Recovery().Path == scuba.RecoveryMemory || count != 20000 {
			verdict = "FAIL"
		}
		fmt.Printf("%-36s %-10s %9.0f rows %8s\n", fc.name, l2.Recovery().Path, count, verdict)
		cleanup()
	}
	fmt.Println("paper: shared memory is never used after a crash; the valid bit and checksums route every fault to disk recovery")
	return nil
}

func containsTbl(name string) bool { return strings.Contains(name, "tbl-") }

func countRows(l *scuba.Leaf, table string) (float64, error) {
	q := &scuba.Query{Table: table, From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
	res, err := l.Query(q)
	if err != nil {
		return 0, err
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0, nil
	}
	return rows[0].Values[0], nil
}

// ---- E10: tailer placement ----

func runE10() error {
	b, cleanup := newBench()
	defer cleanup()
	const nLeaves = 16
	targets := make([]tailer.Target, nLeaves)
	leaves := make([]*scuba.Leaf, nLeaves)
	for i := range targets {
		l, err := b.newLeaf(i, scuba.FormatRow)
		if err != nil {
			return err
		}
		leaves[i] = l
		targets[i] = leafTarget{l}
	}
	placer := scuba.NewPlacer(targets, 99)
	gen := scuba.ServiceLogs(3, 1700000000)
	const batches = 2000
	for i := 0; i < batches; i++ {
		if _, err := placer.Place("service_logs", gen.NextBatch(50)); err != nil {
			return err
		}
	}
	st := placer.Stats()
	minC, maxC := st.PerTarget[0], st.PerTarget[0]
	for _, c := range st.PerTarget {
		minC, maxC = min(minC, c), max(maxC, c)
	}
	fmt.Printf("%d batches over %d equal leaves: per-leaf min %d, max %d (imbalance %.2fx)\n",
		batches, nLeaves, minC, maxC, float64(maxC)/float64(minC))
	fmt.Printf("decisions: both-alive %d, one-alive %d, retried %d, sent-to-recovery %d\n",
		st.BothAlive, st.OneAlive, st.RetriedPairs, st.SentToRecovery)
	fmt.Println("paper: tailers pick two random leaves and send to the one with more free memory (§2)")
	return nil
}

type leafTarget struct{ l *scuba.Leaf }

func (t leafTarget) Stats() (scuba.LeafStats, error) { return t.l.Stats(), nil }
func (t leafTarget) AddRows(table string, rows []scuba.Row) error {
	return t.l.AddRows(table, rows)
}

// ---- E11: query latency ----

func runE11() error {
	b, cleanup := newBench()
	defer cleanup()
	l, err := b.newLeaf(0, scuba.FormatRow)
	if err != nil {
		return err
	}
	bytes, err := loadLeaf(l, *rowsFlag*2)
	if err != nil {
		return err
	}
	qs := scuba.NewQueries(5, "service_logs", 1700000000, 1700000000+int64(*rowsFlag/2))
	const n = 50
	var total time.Duration
	var worst time.Duration
	for i := 0; i < n; i++ {
		q := qs.Next()
		start := time.Now()
		if _, err := l.Query(q); err != nil {
			return err
		}
		d := time.Since(start)
		total += d
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("%d mixed queries over %d rows (%s compressed): mean %v, worst %v\n",
		n, *rowsFlag*2, mb(bytes), (total / n).Round(time.Microsecond), worst.Round(time.Microsecond))
	fmt.Println("paper: queries typically run in under a second over GBs of data (§1)")
	return nil
}

// ---- E12: flat footprint ----

func runE12() error {
	b, cleanup := newBench()
	defer cleanup()
	l, err := b.newLeaf(0, scuba.FormatRow)
	if err != nil {
		return err
	}
	dataBytes, err := loadLeaf(l, *rowsFlag)
	if err != nil {
		return err
	}
	// Flush the disk backup first so the measurement isolates the
	// heap->shm copy; the disk flush pays the (allocating) row-format
	// translation and normally runs in the background long before a
	// planned shutdown.
	if _, err := l.SyncToDisk(); err != nil {
		return err
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Sample heap usage while the shutdown copies column by column.
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	if _, err := l.Shutdown(); err != nil {
		return err
	}
	close(stop)
	<-done

	growth := int64(peak.Load()) - int64(before.HeapAlloc)
	fmt.Printf("resident data %s; heap before shutdown %s; peak growth during copy %s (%.0f%% of data)\n",
		mb(dataBytes), mb(int64(before.HeapAlloc)), mb(growth),
		100*float64(growth)/float64(dataBytes))
	fmt.Println("paper: copying one row block column at a time keeps the total memory footprint nearly unchanged (§4.4)")
	return nil
}

// ---- E13: batch-fraction tradeoff ----

// runE13 sweeps the restart batch fraction in the paper-scale model: larger
// batches finish sooner but take more data offline at once, and once the
// batch no longer fits one-leaf-per-machine, contention makes every batch
// slower too. The paper's 2% sits on the knee of this curve.
func runE13() error {
	fmt.Printf("%8s | %12s %12s | %14s %14s\n",
		"batch", "shm total", "disk total", "min available", "weekly full")
	for _, frac := range []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.25} {
		p := sim.DefaultParams()
		p.BatchFraction = frac
		// Allow co-location for big batches so the sweep shows the
		// bandwidth-contention penalty, not just an orchestrator clamp.
		p.MaxPerMachine = p.LeavesPerMachine
		shm := p.SimulateRollover(true)
		dsk := p.SimulateRollover(false)
		fmt.Printf("%7.1f%% | %12s %12s | %13.1f%% %13.1f%%\n",
			frac*100,
			sim.FormatDuration(shm.Total), sim.FormatDuration(dsk.Total),
			100*shm.MinAvailability, 100*sim.WeeklyFullAvailability(shm.Total))
	}
	fmt.Println("paper: \"typically, we restart 2% of the leaf servers at a time\" (§4.5)")
	return nil
}

// ---- E14: restart copy worker sweep ----

// loadLeafTables spreads the workload over many tables so the restart copy
// pool has independent units of work.
func loadLeafTables(l *scuba.Leaf, tables, rowsPerTable int) (int64, error) {
	for t := 0; t < tables; t++ {
		gen := scuba.ServiceLogs(int64(t+1), 1700000000)
		name := fmt.Sprintf("service_logs_%02d", t)
		const batch = 10000
		for sent := 0; sent < rowsPerTable; sent += batch {
			n := batch
			if sent+n > rowsPerTable {
				n = rowsPerTable - sent
			}
			if err := l.AddRows(name, gen.NextBatch(n)); err != nil {
				return 0, err
			}
		}
	}
	if err := l.SealAll(); err != nil {
		return 0, err
	}
	return l.Stats().Bytes, nil
}

// runE14 sweeps Config.CopyWorkers over a multi-table leaf and reports one
// full shutdown+restore cycle per pool size, with the slowest table of each
// half (the critical path a wider pool hides).
func runE14() error {
	const tables = 16
	rowsPerTable := *rowsFlag / tables
	fmt.Printf("%8s | %12s %12s | %12s %12s | %8s | %s\n",
		"workers", "shutdown", "restore", "cycle", "data", "speedup", "slowest table out/in")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		b, cleanup := newBench()
		cfg := b.leafConfig(0, scuba.FormatRow)
		cfg.CopyWorkers = workers
		if err := os.MkdirAll(filepath.Join(b.dir, "shm"), 0o755); err != nil {
			cleanup()
			return err
		}
		l, err := scuba.NewLeaf(cfg)
		if err != nil {
			cleanup()
			return err
		}
		if err := l.Start(); err != nil {
			cleanup()
			return err
		}
		bytes, err := loadLeafTables(l, tables, rowsPerTable)
		if err != nil {
			cleanup()
			return err
		}
		if _, err := l.SyncToDisk(); err != nil {
			cleanup()
			return err
		}
		sinfo, err := l.Shutdown()
		if err != nil {
			cleanup()
			return err
		}
		nu, err := scuba.NewLeaf(cfg)
		if err != nil {
			cleanup()
			return err
		}
		if err := nu.Start(); err != nil {
			cleanup()
			return err
		}
		rec := nu.Recovery()
		if rec.Path != scuba.RecoveryMemory {
			cleanup()
			return fmt.Errorf("e14: recovery = %v", rec.Path)
		}
		cycle := sinfo.Duration + rec.Duration
		if workers == 1 {
			base = cycle
		}
		fmt.Printf("%8d | %12v %12v | %12v %12s | %7.2fx | %v / %v\n",
			workers, sinfo.Duration.Round(time.Millisecond), rec.Duration.Round(time.Millisecond),
			cycle.Round(time.Millisecond), mb(bytes), base.Seconds()/cycle.Seconds(),
			slowestTable(sinfo.PerTable).Round(time.Millisecond),
			slowestTable(rec.PerTable).Round(time.Millisecond))
		cleanup()
	}
	fmt.Printf("note: GOMAXPROCS=%d; true parallel speedup needs multiple cores — on one core the pool only overlaps blocking I/O\n",
		runtime.GOMAXPROCS(0))
	return nil
}

func slowestTable(stats []scuba.TableCopyStat) time.Duration {
	var worst time.Duration
	for _, st := range stats {
		if st.Duration > worst {
			worst = st.Duration
		}
	}
	return worst
}

func mb(b int64) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }

// runE15 breaks one shared-memory restart cycle into its Figure 6/7 phases
// using the phase-span observer: copy-out and the valid-bit commit on the
// way down, metadata map and copy-in on the way back up. The per-table
// histograms show the spread that the slowest table turns into wall time.
func runE15() error {
	const tables = 8
	rowsPerTable := *rowsFlag / tables
	b, cleanup := newBench()
	defer cleanup()
	if err := os.MkdirAll(filepath.Join(b.dir, "shm"), 0o755); err != nil {
		return err
	}
	reg := scuba.NewMetricsRegistry()
	cfg := b.leafConfig(0, scuba.FormatRow)
	cfg.Obs = scuba.NewObserver(reg, nil)
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		return err
	}
	if err := l.Start(); err != nil {
		return err
	}
	bytes, err := loadLeafTables(l, tables, rowsPerTable)
	if err != nil {
		return err
	}
	if _, err := l.SyncToDisk(); err != nil {
		return err
	}
	sinfo, err := l.Shutdown()
	if err != nil {
		return err
	}
	nu, err := scuba.NewLeaf(cfg)
	if err != nil {
		return err
	}
	if err := nu.Start(); err != nil {
		return err
	}
	rec := nu.Recovery()
	if rec.Path != scuba.RecoveryMemory {
		return fmt.Errorf("e15: recovery = %v", rec.Path)
	}
	cycle := sinfo.Duration + rec.Duration
	fmt.Printf("%d tables, %s, cycle %v (shutdown %v + restore %v)\n",
		tables, mb(bytes), cycle.Round(time.Millisecond),
		sinfo.Duration.Round(time.Millisecond), rec.Duration.Round(time.Millisecond))
	snap := reg.Snapshot()
	fmt.Printf("%-20s %12s %8s\n", "phase", "duration", "share")
	for _, phase := range []string{"restart.copy_out", "restart.commit", "restart.map", "restart.copy_in"} {
		st, ok := snap.Timers[phase]
		if !ok {
			return fmt.Errorf("e15: phase %q never observed", phase)
		}
		fmt.Printf("%-20s %12v %7.1f%%\n", phase,
			st.Total.Round(10*time.Microsecond), 100*st.Total.Seconds()/cycle.Seconds())
	}
	for _, h := range []string{"restart.copy_out.table_us", "restart.copy_in.table_us"} {
		hs, ok := snap.Histograms[h]
		if !ok {
			return fmt.Errorf("e15: histogram %q never observed", h)
		}
		fmt.Printf("%-26s n=%d p50=%v p95=%v p99=%v max=%v\n", h, hs.Count,
			time.Duration(hs.P50)*time.Microsecond, time.Duration(hs.P95)*time.Microsecond,
			time.Duration(hs.P99)*time.Microsecond, time.Duration(hs.Max)*time.Microsecond)
	}
	return nil
}

// ---- E16: query p99 during a hung-leaf brownout ----

// runE16 measures what the per-leaf query deadline buys: with 5% of leaves
// hung (injected SiteLeafQuery delay), an aggregator with no deadline drags
// every query's tail out to the hang, while a deadlined aggregator abandons
// the stragglers, keeps p99 near the healthy baseline, and reports the
// missing 5% honestly through coverage — the paper's availability posture
// (partial results over stuck queries) applied to query serving.
func runE16() error {
	const (
		leaves   = 20
		hungFrac = 0.05 // 1 of 20
		queries  = 40
		hang     = 300 * time.Millisecond
		deadline = 50 * time.Millisecond
	)
	rowsPerLeaf := *rowsFlag / (10 * leaves)
	if rowsPerLeaf < 500 {
		rowsPerLeaf = 500
	}
	b, cleanup := newBench()
	defer cleanup()
	defer fault.Reset()

	targets := make([]aggregator.LeafTarget, leaves)
	for i := 0; i < leaves; i++ {
		l, err := b.newLeaf(i, scuba.FormatRow)
		if err != nil {
			return err
		}
		if _, err := loadLeaf(l, rowsPerLeaf); err != nil {
			return err
		}
		targets[i] = l
	}
	agg := aggregator.New(targets)
	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}

	measure := func(label string) error {
		durs := make([]time.Duration, 0, queries)
		coverage := 0.0
		for i := 0; i < queries; i++ {
			t0 := time.Now()
			res, err := agg.Query(q)
			if err != nil {
				return err
			}
			durs = append(durs, time.Since(t0))
			coverage += res.Coverage()
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p50 := durs[len(durs)/2]
		p99 := durs[len(durs)*99/100]
		fmt.Printf("%-34s p50=%9v p99=%9v coverage=%5.1f%%\n", label,
			p50.Round(100*time.Microsecond), p99.Round(100*time.Microsecond),
			100*coverage/float64(queries))
		return nil
	}

	hungLeaves := int(hungFrac * leaves)
	agg.LeafTimeout = 0
	if err := measure("healthy, no deadline"); err != nil {
		return err
	}
	for i := 0; i < hungLeaves; i++ {
		fault.Arm(fault.Point{Site: fault.PerLeaf(fault.SiteLeafQuery, i),
			Action: fault.ActDelay, Delay: hang})
	}
	if err := measure(fmt.Sprintf("%d%% hung, no deadline", int(hungFrac*100))); err != nil {
		return err
	}
	agg.LeafTimeout = deadline
	if err := measure(fmt.Sprintf("%d%% hung, %v deadline", int(hungFrac*100), deadline)); err != nil {
		return err
	}
	fault.Reset()
	if err := measure("recovered, deadline kept"); err != nil {
		return err
	}
	fmt.Printf("paper: partial results keep Scuba available while leaves restart; the deadline\n" +
		"extends that posture to hung leaves (coverage reports what was abandoned)\n")
	return nil
}
