package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"scuba"
)

// ---- E20: self-telemetry (Scuba-on-Scuba) overhead on the scan path ----

// e20Cell is one (sink on/off) measurement in BENCH_e20.json.
type e20Cell struct {
	SinkEnabled bool    `json:"sink_enabled"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
}

type e20Report struct {
	Rows           int       `json:"rows"`
	Blocks         int       `json:"blocks"`
	Trials         int       `json:"trials"`
	SinkIntervalMS int       `json:"sink_interval_ms"`
	Cells          []e20Cell `json:"cells"`
	OverheadP50Pct float64   `json:"overhead_p50_pct"`
	Pass15Pct      bool      `json:"pass_15pct"`
}

// runE20 measures what the self-telemetry sink costs the queries it
// observes: the same sealed-block scan run with no sink, then with a sink
// self-ingesting the leaf's metric snapshots into its own __system tables
// every 5ms — three orders of magnitude more aggressive than the 15s
// production default, so the delta bounds the real tax. The acceptance bar
// is the bench gate's 15%: observing the cluster must never be the reason
// the cluster is slow.
func runE20() error {
	const blocks = 32
	const trials = 60
	const sinkInterval = 5 * time.Millisecond
	rowsPerBlock := *rowsFlag / blocks
	if rowsPerBlock < 100 {
		rowsPerBlock = 100
	}
	totalRows := rowsPerBlock * blocks

	dir, err := os.MkdirTemp("", "scuba-e20-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg := scuba.NewMetricsRegistry()
	l, err := scuba.NewLeaf(scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: dir, Namespace: "e20"},
		DiskRoot:     dir + "/disk",
		MemoryBudget: 8 << 30,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	if err := l.Start(); err != nil {
		return err
	}

	seq := int64(0)
	services := []string{"web", "api", "ads", "search"}
	for b := 0; b < blocks; b++ {
		rows := make([]scuba.Row, rowsPerBlock)
		for i := range rows {
			rows[i] = scuba.Row{
				Time: 1700000000 + seq,
				Cols: map[string]scuba.Value{
					"seq":        scuba.Int64(seq),
					"service":    scuba.String(services[seq%4]),
					"latency_ms": scuba.Float64(float64(seq%500) / 2),
				},
			}
			seq++
		}
		if err := l.AddRows("events", rows); err != nil {
			return err
		}
		if err := l.SealAll(); err != nil {
			return err
		}
	}

	q := &scuba.Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggAvg, Column: "latency_ms"}}}

	measure := func() (e20Cell, error) {
		durs := make([]time.Duration, 0, trials)
		for t := 0; t < trials; t++ {
			start := time.Now()
			if _, err := l.Query(q); err != nil {
				return e20Cell{}, err
			}
			durs = append(durs, time.Since(start))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return e20Cell{
			P50Micros: float64(durs[len(durs)/2].Microseconds()),
			P95Micros: float64(durs[len(durs)*95/100].Microseconds()),
		}, nil
	}

	rep := e20Report{Rows: totalRows, Blocks: blocks, Trials: trials,
		SinkIntervalMS: int(sinkInterval / time.Millisecond)}
	fmt.Printf("%6s | %12s %12s\n", "sink", "p50", "p95")

	off, err := measure()
	if err != nil {
		return err
	}
	off.SinkEnabled = false
	rep.Cells = append(rep.Cells, off)
	fmt.Printf("%6s | %10.0fµs %10.0fµs\n", "off", off.P50Micros, off.P95Micros)

	sink := scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
		Emit:            l.AddRows,
		Source:          "bench",
		Registry:        reg,
		MetricsInterval: sinkInterval,
	})
	on, err := measure()
	sink.Close()
	if err != nil {
		return err
	}
	on.SinkEnabled = true
	rep.Cells = append(rep.Cells, on)
	fmt.Printf("%6s | %10.0fµs %10.0fµs\n", "on", on.P50Micros, on.P95Micros)

	if off.P50Micros > 0 {
		rep.OverheadP50Pct = (on.P50Micros - off.P50Micros) / off.P50Micros * 100
	}
	rep.Pass15Pct = rep.OverheadP50Pct <= 15
	verdict := "PASS"
	if !rep.Pass15Pct {
		verdict = "FAIL"
	}
	fmt.Printf("\nself-telemetry p50 overhead: %+.1f%% at a %v snapshot interval [%s, bar is 15%%]\n",
		rep.OverheadP50Pct, sinkInterval, verdict)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e20.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e20.json")
	fmt.Println("paper: Facebook monitors Scuba with Scuba; self-observation only earns its keep")
	fmt.Println("if the telemetry pipeline costs the hot path nothing measurable")
	return nil
}
