package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// ---- E17: in-leaf query latency vs ScanWorkers × cache × selectivity ----

// e17Cell is one (workers, cache, selectivity) measurement in BENCH_e17.json.
type e17Cell struct {
	Workers       int     `json:"workers"`
	Cache         string  `json:"cache"` // "off" or "warm"
	Selectivity   string  `json:"selectivity"`
	P50Micros     float64 `json:"p50_us"`
	P95Micros     float64 `json:"p95_us"`
	BlocksScanned int64   `json:"blocks_scanned"`
	BlocksPruned  int64   `json:"blocks_pruned"`
}

type e17Report struct {
	Rows            int       `json:"rows"`
	Blocks          int       `json:"blocks"`
	Trials          int       `json:"trials"`
	Cells           []e17Cell `json:"cells"`
	SpeedupPointP50 float64   `json:"speedup_point_p50"` // serial/cold ÷ workers=4/warm
	SpeedupFullP50  float64   `json:"speedup_full_p50"`
	PassTwoX        bool      `json:"pass_2x"`
}

// runE17 measures the tentpole scan path: a 32-block table whose "seq"
// column rises monotonically (disjoint zone-map ranges per block), queried
// at three selectivities under every (workers, cache) combination. The
// acceptance bar is >=2x p50 on the selective point filter with
// ScanWorkers=4 + warm cache vs the serial/cold baseline.
func runE17() error {
	const blocks = 32
	const trials = 40
	rowsPerBlock := *rowsFlag / blocks
	if rowsPerBlock < 100 {
		rowsPerBlock = 100
	}
	totalRows := rowsPerBlock * blocks

	tbl := table.New("events", table.Options{})
	seq := int64(0)
	services := []string{"web", "api", "ads", "search"}
	for b := 0; b < blocks; b++ {
		rows := make([]rowblock.Row, rowsPerBlock)
		for i := range rows {
			rows[i] = rowblock.Row{
				Time: 1700000000 + seq,
				Cols: map[string]rowblock.Value{
					"seq":        rowblock.Int64Value(seq),
					"service":    rowblock.StringValue(services[seq%4]),
					"latency_ms": rowblock.Float64Value(float64(seq%500) / 2),
				},
			}
			seq++
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			return err
		}
		if err := tbl.SealActive(); err != nil {
			return err
		}
	}

	queries := []struct {
		selectivity string
		q           *query.Query
	}{
		{"point", &query.Query{Table: "events", From: 0, To: 1 << 40,
			Filters:      []query.Filter{{Column: "seq", Op: query.OpEq, Int: int64(totalRows / 2)}},
			Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggAvg, Column: "latency_ms"}}}},
		{"half", &query.Query{Table: "events", From: 0, To: 1 << 40,
			Filters:      []query.Filter{{Column: "seq", Op: query.OpGe, Int: int64(totalRows / 2)}},
			GroupBy:      []string{"service"},
			Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggAvg, Column: "latency_ms"}}}},
		{"full", &query.Query{Table: "events", From: 0, To: 1 << 40,
			GroupBy:      []string{"service"},
			Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggAvg, Column: "latency_ms"}}}},
	}

	rep := e17Report{Rows: totalRows, Blocks: blocks, Trials: trials}
	p50 := map[string]float64{} // "workers/cache/selectivity" -> µs
	fmt.Printf("%8s %6s %12s | %12s %12s | %8s %8s\n",
		"workers", "cache", "selectivity", "p50", "p95", "scanned", "pruned")
	for _, workers := range []int{1, 4} {
		for _, cache := range []string{"off", "warm"} {
			var dc *query.DecodeCache
			if cache == "warm" {
				dc = query.NewDecodeCache(256<<20, metrics.NewRegistry())
			}
			opts := query.ExecOptions{Workers: workers, Cache: dc}
			for _, qc := range queries {
				if dc != nil {
					// Warm: the steady state of a repeated dashboard panel.
					if _, err := query.ExecuteTableOpts(tbl, qc.q, opts); err != nil {
						return err
					}
				}
				durs := make([]time.Duration, 0, trials)
				var last *query.Result
				for t := 0; t < trials; t++ {
					start := time.Now()
					res, err := query.ExecuteTableOpts(tbl, qc.q, opts)
					if err != nil {
						return err
					}
					durs = append(durs, time.Since(start))
					last = res
				}
				sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
				cell := e17Cell{
					Workers: workers, Cache: cache, Selectivity: qc.selectivity,
					P50Micros:     float64(durs[len(durs)/2].Microseconds()),
					P95Micros:     float64(durs[len(durs)*95/100].Microseconds()),
					BlocksScanned: last.BlocksScanned,
					BlocksPruned:  last.BlocksPruned,
				}
				rep.Cells = append(rep.Cells, cell)
				p50[fmt.Sprintf("%d/%s/%s", workers, cache, qc.selectivity)] = cell.P50Micros
				fmt.Printf("%8d %6s %12s | %10.0fµs %10.0fµs | %8d %8d\n",
					workers, cache, qc.selectivity, cell.P50Micros, cell.P95Micros,
					cell.BlocksScanned, cell.BlocksPruned)
			}
		}
	}

	rep.SpeedupPointP50 = p50["1/off/point"] / p50["4/warm/point"]
	rep.SpeedupFullP50 = p50["1/off/full"] / p50["4/warm/full"]
	rep.PassTwoX = rep.SpeedupPointP50 >= 2
	verdict := "PASS"
	if !rep.PassTwoX {
		verdict = "FAIL"
	}
	fmt.Printf("\npoint-filter p50 speedup (workers=4+warm vs serial/cold): %.1fx [%s, bar is 2x]\n",
		rep.SpeedupPointP50, verdict)
	fmt.Printf("full-scan p50 speedup under the same configs: %.1fx (GOMAXPROCS bound)\n", rep.SpeedupFullP50)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e17.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e17.json")
	fmt.Println("paper: Scuba answers most queries in under a second over compressed columns (§2.1);")
	fmt.Println("zone maps + the decode cache keep the per-query decode cost off the hot path")
	return nil
}
