package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// ---- E18: tracing overhead on the hot query path ----

// e18Cell is one (selectivity, tracing) measurement in BENCH_e18.json.
type e18Cell struct {
	Selectivity string  `json:"selectivity"`
	Traced      bool    `json:"traced"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
}

type e18Report struct {
	Rows               int       `json:"rows"`
	Blocks             int       `json:"blocks"`
	Trials             int       `json:"trials"`
	Cells              []e18Cell `json:"cells"`
	OverheadFullP50Pct float64   `json:"overhead_full_p50_pct"`
	OverheadHalfP50Pct float64   `json:"overhead_half_p50_pct"`
	PassTwoPct         bool      `json:"pass_2pct"`
}

// runE18 measures what always-on tracing costs the hot path: the same
// sealed-block scans as E17, run untraced and traced (phase timing,
// ExecStats assembly, span stamping, tracer ring insert). The acceptance
// note is that p50 overhead stays under ~2% on the full scan — tracing must
// be cheap enough to leave on for every query, which is the whole point of
// a slow-query log that is populated before anyone asks.
func runE18() error {
	const blocks = 32
	const trials = 60
	rowsPerBlock := *rowsFlag / blocks
	if rowsPerBlock < 100 {
		rowsPerBlock = 100
	}
	totalRows := rowsPerBlock * blocks

	tbl := table.New("events", table.Options{})
	seq := int64(0)
	services := []string{"web", "api", "ads", "search"}
	for b := 0; b < blocks; b++ {
		rows := make([]rowblock.Row, rowsPerBlock)
		for i := range rows {
			rows[i] = rowblock.Row{
				Time: 1700000000 + seq,
				Cols: map[string]rowblock.Value{
					"seq":        rowblock.Int64Value(seq),
					"service":    rowblock.StringValue(services[seq%4]),
					"latency_ms": rowblock.Float64Value(float64(seq%500) / 2),
				},
			}
			seq++
		}
		if err := tbl.AddRows(rows, 1); err != nil {
			return err
		}
		if err := tbl.SealActive(); err != nil {
			return err
		}
	}

	queries := []struct {
		selectivity string
		q           *query.Query
	}{
		{"full", &query.Query{Table: "events", From: 0, To: 1 << 40,
			GroupBy:      []string{"service"},
			Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggAvg, Column: "latency_ms"}}}},
		{"half", &query.Query{Table: "events", From: 0, To: 1 << 40,
			Filters:      []query.Filter{{Column: "seq", Op: query.OpGe, Int: int64(totalRows / 2)}},
			GroupBy:      []string{"service"},
			Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggAvg, Column: "latency_ms"}}}},
	}

	// The traced arm carries everything a production traced query does:
	// a live tracer ring to insert into, a span context, and the ExecStats
	// block built off the result.
	tracer := obs.NewTracer(obs.TracerOptions{})
	opts := query.ExecOptions{Workers: 1}
	rep := e18Report{Rows: totalRows, Blocks: blocks, Trials: trials}
	p50 := map[string]float64{} // "selectivity/traced" -> µs
	fmt.Printf("%12s %7s | %12s %12s\n", "selectivity", "traced", "p50", "p95")
	for _, qc := range queries {
		for _, traced := range []bool{false, true} {
			durs := make([]time.Duration, 0, trials)
			for t := 0; t < trials; t++ {
				start := time.Now()
				res, err := query.ExecuteTableOpts(tbl, qc.q, opts)
				if err != nil {
					return err
				}
				if traced {
					tc := obs.TraceContext{TraceID: tracer.NewTraceID(), SpanID: obs.RandomID()}
					d := time.Since(start)
					exec := &obs.ExecStats{
						SpanID: tc.SpanID, Table: qc.q.Table, Recovery: "none",
						LatencyNanos: d.Nanoseconds(),
						DecodeNanos:  res.Phases.DecodeNanos, PruneNanos: res.Phases.PruneNanos,
						ScanNanos: res.Phases.ScanNanos, MergeNanos: res.Phases.MergeNanos,
						RowsScanned: res.RowsScanned, BlocksScanned: res.BlocksScanned,
						BlocksPruned: res.BlocksPruned,
					}
					tracer.Record(obs.Trace{
						TraceID: tc.TraceID, Query: "bench", Start: start,
						DurationNanos: d.Nanoseconds(), LeavesTotal: 1, LeavesAnswered: 1,
						Spans: []obs.LeafSpan{{SpanID: tc.SpanID, Leaf: "bench", Answered: true,
							RTTNanos: d.Nanoseconds(), Exec: exec}},
					})
				}
				durs = append(durs, time.Since(start))
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			cell := e18Cell{
				Selectivity: qc.selectivity, Traced: traced,
				P50Micros: float64(durs[len(durs)/2].Microseconds()),
				P95Micros: float64(durs[len(durs)*95/100].Microseconds()),
			}
			rep.Cells = append(rep.Cells, cell)
			p50[fmt.Sprintf("%s/%v", qc.selectivity, traced)] = cell.P50Micros
			fmt.Printf("%12s %7v | %10.0fµs %10.0fµs\n",
				qc.selectivity, traced, cell.P50Micros, cell.P95Micros)
		}
	}

	overhead := func(sel string) float64 {
		base := p50[sel+"/false"]
		if base == 0 {
			return 0
		}
		return (p50[sel+"/true"] - base) / base * 100
	}
	rep.OverheadFullP50Pct = overhead("full")
	rep.OverheadHalfP50Pct = overhead("half")
	// Laptop-scale medians jitter; judge the bar on the full scan, where the
	// fixed per-query tracing cost is smallest relative to real work.
	rep.PassTwoPct = rep.OverheadFullP50Pct <= 2
	verdict := "PASS"
	if !rep.PassTwoPct {
		verdict = "FAIL"
	}
	fmt.Printf("\ntracing p50 overhead: full scan %+.1f%% [%s, bar is ~2%%], half scan %+.1f%%\n",
		rep.OverheadFullP50Pct, verdict, rep.OverheadHalfP50Pct)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e18.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e18.json")
	fmt.Println("paper: Scuba's aggregators log per-query stats; the restart story only works in")
	fmt.Println("production if explaining a slow query costs nothing on the fast ones")
	return nil
}
