package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"scuba"
)

// ---- E23: continuous profiler overhead on the scan path ----

// e23Cell is one profiler setting in BENCH_e23.json.
type e23Cell struct {
	Mode       string  `json:"mode"` // off | production | continuous
	IntervalMS int     `json:"interval_ms"`
	WindowMS   int     `json:"window_ms"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	Captures   int64   `json:"captures"`
}

type e23Report struct {
	Rows                int       `json:"rows"`
	Blocks              int       `json:"blocks"`
	Trials              int       `json:"trials"`
	Cells               []e23Cell `json:"cells"`
	ProductionP50Pct    float64   `json:"production_overhead_p50_pct"`
	ContinuousP50Pct    float64   `json:"continuous_overhead_p50_pct"`
	PassProduction15Pct bool      `json:"pass_production_15pct"`
}

// runE23 measures what continuous profiling costs the queries it watches.
// The steady cadence ships a 5s CPU window every 60s — an ~8% sampling duty
// cycle — so the experiment runs the same sealed-block scan three ways: no
// profiler, a profiler at the production duty cycle (interval and window
// scaled down together so several captures land inside the measurement), and
// a worst-case profiler whose window never closes (50% duty, the clamp
// limit). The production cell is the one the fleet pays; the continuous cell
// bounds what a stuck anomaly storm could cost.
func runE23() error {
	const blocks = 32
	const trials = 80
	rowsPerBlock := *rowsFlag / blocks
	if rowsPerBlock < 100 {
		rowsPerBlock = 100
	}
	totalRows := rowsPerBlock * blocks

	dir, err := os.MkdirTemp("", "scuba-e23-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg := scuba.NewMetricsRegistry()
	l, err := scuba.NewLeaf(scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: dir, Namespace: "e23"},
		DiskRoot:     dir + "/disk",
		MemoryBudget: 8 << 30,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	if err := l.Start(); err != nil {
		return err
	}

	seq := int64(0)
	services := []string{"web", "api", "ads", "search"}
	for b := 0; b < blocks; b++ {
		rows := make([]scuba.Row, rowsPerBlock)
		for i := range rows {
			rows[i] = scuba.Row{
				Time: 1700000000 + seq,
				Cols: map[string]scuba.Value{
					"seq":        scuba.Int64(seq),
					"service":    scuba.String(services[seq%4]),
					"latency_ms": scuba.Float64(float64(seq%500) / 2),
				},
			}
			seq++
		}
		if err := l.AddRows("events", rows); err != nil {
			return err
		}
		if err := l.SealAll(); err != nil {
			return err
		}
	}

	q := &scuba.Query{Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggAvg, Column: "latency_ms"}}}

	measure := func() (e23Cell, error) {
		durs := make([]time.Duration, 0, trials)
		for t := 0; t < trials; t++ {
			start := time.Now()
			if _, err := l.Query(q); err != nil {
				return e23Cell{}, err
			}
			durs = append(durs, time.Since(start))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return e23Cell{
			P50Micros: float64(durs[len(durs)/2].Microseconds()),
			P95Micros: float64(durs[len(durs)*95/100].Microseconds()),
		}, nil
	}

	// countCaptures reads __system.profiles back out of the leaf itself:
	// the profiler's rows land in the same store it is profiling.
	countCaptures := func() (int64, error) {
		cq := &scuba.Query{Table: scuba.SystemProfilesTable, From: 0, To: 1 << 40,
			GroupBy:      []string{"capture"},
			Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
			Limit:        100000}
		res, err := l.Query(cq)
		if err != nil {
			return 0, err
		}
		return int64(len(res.Rows(cq))), nil
	}

	runCell := func(mode string, interval, window time.Duration) (e23Cell, error) {
		var cell e23Cell
		if interval > 0 {
			sink := scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
				Emit:            l.AddRows,
				Source:          "bench",
				Registry:        reg,
				MetricsInterval: -1, // delivery-only: isolate the profiler's own cost
			})
			prof := scuba.NewProfiler(scuba.ProfilerConfig{
				Sink:     sink,
				Source:   "bench",
				Registry: reg,
				Interval: interval,
				Window:   window,
			})
			before, err := countCaptures()
			if err != nil {
				prof.Close()
				sink.Close()
				return cell, err
			}
			time.Sleep(interval) // let the cadence engage before measuring
			cell, err = measure()
			prof.Close()
			sink.Close()
			if err != nil {
				return cell, err
			}
			after, err := countCaptures()
			if err != nil {
				return cell, err
			}
			cell.Captures = after - before
		} else {
			var err error
			cell, err = measure()
			if err != nil {
				return cell, err
			}
		}
		cell.Mode = mode
		cell.IntervalMS = int(interval / time.Millisecond)
		cell.WindowMS = int(window / time.Millisecond)
		return cell, nil
	}

	rep := e23Report{Rows: totalRows, Blocks: blocks, Trials: trials}
	fmt.Printf("%-12s %10s %9s | %12s %12s %9s\n",
		"profiler", "interval", "window", "p50", "p95", "captures")
	cells := []struct {
		mode             string
		interval, window time.Duration
	}{
		{"off", 0, 0},
		// Production duty cycle (5s window / 60s interval ≈ 8.3%), scaled
		// down 100x so multiple captures overlap the measurement.
		{"production", 600 * time.Millisecond, 50 * time.Millisecond},
		// Upper bound: the window clamp (interval/2) means the CPU profiler
		// runs half of all wall time — no real deployment looks like this.
		{"continuous", 100 * time.Millisecond, 50 * time.Millisecond},
	}
	for _, c := range cells {
		cell, err := runCell(c.mode, c.interval, c.window)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Printf("%-12s %10v %9v | %10.0fµs %10.0fµs %9d\n",
			cell.Mode, c.interval, c.window, cell.P50Micros, cell.P95Micros, cell.Captures)
	}

	off := rep.Cells[0].P50Micros
	if off > 0 {
		rep.ProductionP50Pct = (rep.Cells[1].P50Micros - off) / off * 100
		rep.ContinuousP50Pct = (rep.Cells[2].P50Micros - off) / off * 100
	}
	rep.PassProduction15Pct = rep.ProductionP50Pct <= 15
	verdict := "PASS"
	if !rep.PassProduction15Pct {
		verdict = "FAIL"
	}
	fmt.Printf("\nprofiler p50 overhead: %+.1f%% at the production duty cycle [%s, bar is 15%%], %+.1f%% when the window never closes\n",
		rep.ProductionP50Pct, verdict, rep.ContinuousP50Pct)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e23.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e23.json")
	fmt.Println("paper: the fleet profiles itself through the same Scuba tables it serves;")
	fmt.Println("always-on profiling only ships if the watched path cannot feel it")
	return nil
}
