package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"time"

	"scuba"
)

// ---- E22: instant-on restart — availability gap + query health during ----
// ---- background promotion, vs the copy-in barrier of E15             ----

type e22Report struct {
	Rows int `json:"rows"`

	// The copy-in barrier (the E15 restart): Start blocks on the full
	// shm-to-heap copy, so the first answer waits for all of it.
	CopyInStartMillis      float64 `json:"copyin_start_ms"`
	CopyInFirstQueryMillis float64 `json:"copyin_first_query_ms"`

	// Instant-on: Start returns after metadata + CRC validation; the gap is
	// Start + the first (correct) query, answered zero-copy from the mapping.
	InstantStartMillis      float64 `json:"instant_start_ms"`
	InstantFirstQueryMillis float64 `json:"instant_first_query_ms"`
	PromoteDrainMillis      float64 `json:"promote_drain_ms"`
	PromotedBlocks          int64   `json:"promoted_blocks"`

	// Query latency while promotion was actively copying blocks heap-side.
	DuringPromotionQueries int     `json:"during_promotion_queries"`
	QueryP50Micros         float64 `json:"query_p50_us"`
	QueryP99Micros         float64 `json:"query_p99_us"`
	// Baseline query latency on the copy-in leaf after its restore.
	BaselineP50Micros float64 `json:"baseline_query_p50_us"`
	BaselineP99Micros float64 `json:"baseline_query_p99_us"`

	// Every query during and after promotion returned the never-restarted
	// leaf's exact result.
	Identical bool `json:"identical_results"`

	// GapVsCopyIn is the first-correct-result ratio, informational at this
	// scale (the CI instant-on-smoke job enforces the <10% bar on recovery
	// durations, where query cost doesn't drown the restart signal).
	GapVsCopyIn float64 `json:"gap_fraction_of_copyin"`
	PassGap     bool    `json:"pass_gap_100ms"`
}

// runE22 measures the instant-on tentpole. One dataset, backed up to shm
// twice over identical bytes: once restored through the copy-in barrier
// (E15's path), once instant-on. The acceptance bars are the issue's:
// time-to-first-correct-result at most 100ms at 1M rows, and the gap under
// 10% of the copy-in restore, with byte-identical results during promotion.
func runE22() error {
	totalRows := *rowsFlag
	if totalRows < 1000000 {
		totalRows = 1000000
	}
	rep := e22Report{Rows: totalRows}

	dir, err := os.MkdirTemp("", "scuba-e22-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: dir, Namespace: "e22"},
		DiskRoot:     dir + "/disk",
		MemoryBudget: 8 << 30,
	}
	groupQ := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
		GroupBy: []string{"service"},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggCount},
			{Op: scuba.AggSum, Column: "latency_ms"},
			{Op: scuba.AggMax, Column: "latency_ms"},
		}}
	fingerprint := func(l *scuba.Leaf) ([]scuba.ResultRow, error) {
		res, err := l.Query(groupQ)
		if err != nil {
			return nil, err
		}
		return res.Rows(groupQ), nil
	}
	// The availability probe: the cheapest query that still proves the data
	// is all there and correct — a full-range count, checked exactly. The
	// heavy group-by above is the correctness fingerprint; using it for the
	// gap would measure aggregation cost, not restart availability.
	countQ := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
	countRows := func(l *scuba.Leaf) (int, error) {
		res, err := l.Query(countQ)
		if err != nil {
			return 0, err
		}
		rows := res.Rows(countQ)
		if len(rows) != 1 {
			return 0, fmt.Errorf("count query returned %d rows", len(rows))
		}
		return int(rows[0].Values[0]), nil
	}
	// Dashboard-shaped window queries for the during-promotion latency
	// sample: narrow enough to finish in single-digit milliseconds, so the
	// promotion window yields dozens of data points instead of one.
	const nWindows = 64
	startTime := int64(1700000000)

	// Build and capture the ground truth on a leaf that never restarts.
	l0, err := scuba.NewLeaf(cfg)
	if err != nil {
		return err
	}
	if err := l0.Start(); err != nil {
		return err
	}
	gen := scuba.ServiceLogs(22, startTime)
	for sent := 0; sent < totalRows; sent += 10000 {
		n := totalRows - sent
		if n > 10000 {
			n = 10000
		}
		if err := l0.AddRows("service_logs", gen.NextBatch(n)); err != nil {
			return err
		}
	}
	if err := l0.SealAll(); err != nil {
		return err
	}
	truth, err := fingerprint(l0)
	if err != nil {
		return err
	}
	winWidth := (gen.Now() - startTime) / nWindows
	if winWidth < 1 {
		winWidth = 1
	}
	winQ := func(i int) *scuba.Query {
		from := startTime + int64(i%nWindows)*winWidth
		return &scuba.Query{Table: "service_logs", From: from, To: from + winWidth - 1,
			GroupBy: []string{"service"},
			Aggregations: []scuba.Aggregation{
				{Op: scuba.AggCount},
				{Op: scuba.AggSum, Column: "latency_ms"},
			}}
	}
	winTruth := make([][]scuba.ResultRow, nWindows)
	for i := range winTruth {
		q := winQ(i)
		res, err := l0.Query(q)
		if err != nil {
			return err
		}
		winTruth[i] = res.Rows(q)
	}
	if _, err := l0.Shutdown(); err != nil {
		return err
	}

	// Cell A: the copy-in barrier. Start pays the full copy before serving.
	l1, err := scuba.NewLeaf(cfg)
	if err != nil {
		return err
	}
	begin := time.Now()
	if err := l1.Start(); err != nil {
		return err
	}
	rep.CopyInStartMillis = ms(time.Since(begin))
	if n, err := countRows(l1); err != nil {
		return err
	} else if n != totalRows {
		return fmt.Errorf("e22: copy-in restore counted %d rows, want %d", n, totalRows)
	}
	rep.CopyInFirstQueryMillis = ms(time.Since(begin))
	if p := l1.Recovery().Path; p != scuba.RecoveryMemory {
		return fmt.Errorf("e22: copy-in restore took path %q", p)
	}
	if got, err := fingerprint(l1); err != nil {
		return err
	} else if !reflect.DeepEqual(got, truth) {
		return fmt.Errorf("e22: copy-in restore diverged from ground truth")
	}
	baseLat := make([]time.Duration, 0, nWindows)
	for i := 0; i < nWindows; i++ {
		q := winQ(i)
		qb := time.Now()
		res, err := l1.Query(q)
		if err != nil {
			return err
		}
		baseLat = append(baseLat, time.Since(qb))
		if !reflect.DeepEqual(res.Rows(q), winTruth[i]) {
			return fmt.Errorf("e22: copy-in window %d diverged from ground truth", i)
		}
	}
	rep.BaselineP50Micros, rep.BaselineP99Micros = quantiles(baseLat)
	// Restore the backup for cell B over identical bytes.
	if _, err := l1.Shutdown(); err != nil {
		return err
	}

	// Cell B: instant-on availability gap. Start returns at validation; the
	// first correct full-range count is the time-to-first-correct-result.
	// Promotion runs on the default pool, exactly as production would.
	icfg := cfg
	icfg.InstantOn = true
	l2, err := scuba.NewLeaf(icfg)
	if err != nil {
		return err
	}
	begin = time.Now()
	if err := l2.Start(); err != nil {
		return err
	}
	rep.InstantStartMillis = ms(time.Since(begin))
	if n, err := countRows(l2); err != nil {
		return err
	} else if n != totalRows {
		return fmt.Errorf("e22: instant-on restore counted %d rows, want %d", n, totalRows)
	}
	gap := time.Since(begin)
	rep.InstantFirstQueryMillis = ms(gap)
	if p := l2.Recovery().Path; p != scuba.RecoveryShmView {
		return fmt.Errorf("e22: instant-on restore took path %q", p)
	}
	for l2.Recovery().ServedFromShm > 0 {
		if time.Since(begin) > 30*time.Second {
			return fmt.Errorf("e22: promotion never drained")
		}
		time.Sleep(time.Millisecond)
	}
	rep.PromoteDrainMillis = ms(time.Since(begin))
	rep.PromotedBlocks = l2.Recovery().PromotedBlocks
	identical := true
	if got, err := fingerprint(l2); err != nil {
		return err
	} else {
		identical = identical && reflect.DeepEqual(got, truth)
	}
	// Restore the backup once more for cell C.
	if _, err := l2.Shutdown(); err != nil {
		return err
	}

	// Cell C: query health during promotion. A single promote worker holds
	// the promotion window open while the main thread hammers window queries
	// against it; samples issued while blocks were still shm-resident are
	// the during-promotion latency distribution, and every answer — during
	// and after — must match the never-restarted leaf byte for byte.
	ccfg := icfg
	ccfg.PromoteWorkers = 1
	l3, err := scuba.NewLeaf(ccfg)
	if err != nil {
		return err
	}
	begin = time.Now()
	if err := l3.Start(); err != nil {
		return err
	}
	var during []time.Duration
	hammered, wrong := 0, 0
	for i := 0; ; i++ {
		promoting := l3.Recovery().ServedFromShm > 0
		if !promoting && hammered > 0 {
			break
		}
		if time.Since(begin) > 30*time.Second {
			return fmt.Errorf("e22: promotion never drained under query load")
		}
		q := winQ(i)
		qb := time.Now()
		res, err := l3.Query(q)
		if err != nil {
			return err
		}
		lat := time.Since(qb)
		hammered++
		if !reflect.DeepEqual(res.Rows(q), winTruth[i%nWindows]) {
			wrong++
		}
		if promoting {
			during = append(during, lat)
		}
	}
	rep.DuringPromotionQueries = len(during)
	rep.QueryP50Micros, rep.QueryP99Micros = quantiles(during)
	// The heavy fingerprint after the drain: the promoted heap blocks must
	// still answer byte-identically.
	if got, err := fingerprint(l3); err != nil {
		return err
	} else {
		identical = identical && reflect.DeepEqual(got, truth)
	}
	rep.Identical = identical && wrong == 0 && len(during) > 0

	if rep.CopyInFirstQueryMillis > 0 {
		rep.GapVsCopyIn = rep.InstantFirstQueryMillis / rep.CopyInFirstQueryMillis
	}
	rep.PassGap = rep.InstantFirstQueryMillis <= 100

	fmt.Printf("%-34s %10s\n", "", "time")
	fmt.Printf("%-34s %8.1fms\n", "copy-in Start (E15 barrier)", rep.CopyInStartMillis)
	fmt.Printf("%-34s %8.1fms\n", "copy-in first correct result", rep.CopyInFirstQueryMillis)
	fmt.Printf("%-34s %8.1fms\n", "instant-on Start", rep.InstantStartMillis)
	fmt.Printf("%-34s %8.1fms\n", "instant-on first correct result", rep.InstantFirstQueryMillis)
	fmt.Printf("%-34s %8.1fms  (%d blocks)\n", "promotion drained", rep.PromoteDrainMillis, rep.PromotedBlocks)
	fmt.Printf("query p50/p99 during promotion: %.0fus / %.0fus over %d queries (baseline after copy-in: %.0fus / %.0fus)\n",
		rep.QueryP50Micros, rep.QueryP99Micros, rep.DuringPromotionQueries,
		rep.BaselineP50Micros, rep.BaselineP99Micros)
	verdict := func(b bool) string {
		if b {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Printf("byte-identical results during promotion: %v [%s]\n", rep.Identical, verdict(rep.Identical))
	fmt.Printf("time to first correct result: %.1fms at %d rows [%s, bar is 100ms]\n",
		rep.InstantFirstQueryMillis, totalRows, verdict(rep.PassGap))
	fmt.Printf("gap is %.1f%% of the copy-in path's first result (CI smoke enforces <10%% on recovery durations)\n",
		rep.GapVsCopyIn*100)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_e22.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_e22.json")
	fmt.Println("paper §3: availability gates on the full shm-to-heap copy; serving zero-copy")
	fmt.Println("from the mapping moves that copy off the critical path into background promotion")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// quantiles returns the p50 and p99 of the latencies in microseconds.
func quantiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(s)-1))
		return float64(s[idx].Nanoseconds()) / 1000
	}
	return at(0.50), at(0.99)
}
