// Command scuba-bench regenerates every quantitative claim in "Fast
// Database Restarts at Facebook" (the paper has no numbered tables; its
// evaluation is the set of numbers in §1, §4 and §6 plus the Figure 8
// dashboard). Each experiment E1-E18 measures the real implementation at
// laptop scale and, where the claim is about production scale, extrapolates
// with the calibrated simulator. EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	scuba-bench -exp all
//	scuba-bench -exp e1 -rows 400000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"
)

var rowsFlag = flag.Int("rows", 200000, "base row count for the restart experiments")

type experiment struct {
	id   string
	desc string
	run  func() error
}

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e23) or 'all'")
	flag.Parse()

	experiments := []experiment{
		{"e1", "restart from disk vs shared memory (2.5-3 h vs 2-3 min; read is 20-25 min of the disk path)", runE1},
		{"e2", "shutdown to shared memory (3-4 s at production scale)", runE2},
		{"e3", "full-cluster rollover duration (10-12 h disk vs <1 h shm)", runE3},
		{"e4", "Figure 8 dashboard: availability during rollover (>=98%)", runE4},
		{"e5", "weekly availability (93% -> 99.5%)", runE5},
		{"e6", "restart parallelism: k leaves on 1 machine vs k machines", runE6},
		{"e7", "column compression (~30x, >=2 methods per column)", runE7},
		{"e8", "§6 future work: columnar disk format removes the translate cost", runE8},
		{"e9", "crash safety: every corrupted restore falls back to disk", runE9},
		{"e10", "tailer two-random-choice placement balance", runE10},
		{"e11", "query latency (subsecond over the full dataset)", runE11},
		{"e12", "flat memory footprint: one RBC at a time (§4.4)", runE12},
		{"e13", "batch-fraction tradeoff: why restart 2% at a time", runE13},
		{"e14", "parallel copy-out/copy-in: restart-path worker sweep", runE14},
		{"e15", "restart-phase breakdown: where the cycle time goes", runE15},
		{"e16", "query p99 during a 5%-hung-leaf brownout (per-leaf deadline)", runE16},
		{"e17", "in-leaf query latency: ScanWorkers x decode cache x selectivity (BENCH_e17.json)", runE17},
		{"e18", "tracing overhead on the hot query path (BENCH_e18.json)", runE18},
		{"e20", "self-telemetry sink overhead on the scan path (BENCH_e20.json)", runE20},
		{"e21", "crash recovery: snapshots + WAL replay vs disk translate (BENCH_e21.json)", runE21},
		{"e22", "instant-on restart: availability gap + query health during promotion (BENCH_e22.json)", runE22},
		{"e23", "continuous profiler overhead on the scan path (BENCH_e23.json)", runE23},
	}

	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", strings.ToUpper(e.id), e.desc)
		start := time.Now()
		if err := e.run(); err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Printf("[%s done in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
