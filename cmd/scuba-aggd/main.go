// Command scuba-aggd runs one Scuba aggregator server (§2, Figure 1): it
// distributes every query to all configured leaf servers and merges the
// partial results as they arrive, reporting coverage so dashboards can show
// how much data answered while leaves restart.
//
// Usage:
//
//	scuba-aggd -addr 127.0.0.1:9001 -leaves 127.0.0.1:8001,127.0.0.1:8002
//	scuba-cli -addrs 127.0.0.1:9001 query -table service_logs ...
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"scuba/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:9001", "listen address")
		leaves = flag.String("leaves", "", "comma-separated leaf addresses")
	)
	flag.Parse()
	if *leaves == "" {
		log.Fatal("scuba-aggd: -leaves is required")
	}
	var addrs []string
	for _, a := range strings.Split(*leaves, ",") {
		addrs = append(addrs, strings.TrimSpace(a))
	}
	srv, err := wire.NewAggServer(addrs, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scuba-aggd serving %d leaves on %s", len(addrs), srv.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	srv.Close()
	log.Println("scuba-aggd: bye")
}
