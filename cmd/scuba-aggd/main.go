// Command scuba-aggd runs one Scuba aggregator server (§2, Figure 1): it
// distributes every query to all configured leaf servers and merges the
// partial results as they arrive, reporting coverage so dashboards can show
// how much data answered while leaves restart.
//
// Usage:
//
//	scuba-aggd -addr 127.0.0.1:9001 -leaves 127.0.0.1:8001,127.0.0.1:8002
//	scuba-cli -addrs 127.0.0.1:9001 query -table service_logs ...
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"scuba/internal/aggregator"
	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/profile"
	"scuba/internal/rowblock"
	"scuba/internal/shard"
	"scuba/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9001", "listen address")
		leaves      = flag.String("leaves", "", "comma-separated leaf addresses")
		leafTimeout = flag.Duration("leaf-timeout", 10*time.Second, "abandon leaves slower than this per query; their data is reported missing from coverage (0 = wait forever)")
		faultSpec   = flag.String("fault", "", "arm fault-injection points for chaos testing, e.g. 'wire.read=delay:500ms;count=10' (see internal/fault)")
		httpAddr    = flag.String("http", "", "observability listen address serving /metrics, /debug/traces, /debug/slow and /debug/pprof ('' disables)")
		slowQuery   = flag.Duration("slow-query", 0, "queries at or above this duration land in the /debug/slow ring (0 = adaptive: slower than the running p99)")
		traceRing   = flag.Int("trace-ring", 64, "how many recent traces /debug/traces retains")
		replication = flag.Int("replication", 0, "shard replication factor R: each shard lives on R leaves and queries fail over to a replica while the primary restarts (0 = unsharded full fan-out)")
		numShards   = flag.Int("num-shards", 0, "shards per table under -replication (0 = 2x leaf count)")
		machineSpec = flag.String("machines", "", "comma-separated machine index per leaf (parallel to -leaves) so shard replicas land on distinct machines; '' = every leaf its own machine")
		scrapeEach  = flag.Duration("scrape-interval", 0, "cluster scrape period: pull every leaf's metrics snapshot into __system.leaf_metrics (0 disables)")
		telemetry   = flag.Duration("telemetry-interval", 0, "self-telemetry period: snapshot this aggregator's own metrics and sampled query traces into __system tables (0 disables)")
		profEvery   = flag.Duration("profile-interval", time.Minute, "continuous profiler steady cadence: capture a CPU window + heap delta into __system.profiles (0 disables; slow queries also trigger tagged captures)")
		profMutex   = flag.Bool("profile-contention", false, "enable mutex/block profiling so /debug/pprof/mutex and /debug/pprof/block return real data")
	)
	flag.Parse()
	if *leaves == "" {
		log.Fatal("scuba-aggd: -leaves is required")
	}
	if *faultSpec != "" {
		if err := fault.ArmSpec(*faultSpec); err != nil {
			log.Fatalf("scuba-aggd: -fault: %v", err)
		}
		log.Printf("fault injection armed: %s", fault.String())
	}
	var addrs []string
	for _, a := range strings.Split(*leaves, ",") {
		addrs = append(addrs, strings.TrimSpace(a))
	}
	reg := metrics.NewRegistry()
	reg.EnableRuntimeMetrics()
	reg.EnableProcessMetrics()
	if *profMutex {
		profile.EnableContention()
	}
	clients := make([]*wire.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = wire.Dial(a)
	}

	// Self-telemetry (Scuba-on-Scuba): the aggregator's own metric
	// snapshots and sampled trace summaries — plus the cluster scrape rows
	// below — are delivered into __system tables through the first leaf
	// that will take them, and served back out over the ordinary query
	// path. The sink refuses __system-table traces, so telemetry queries
	// never generate telemetry.
	var sink *obs.Sink
	if *scrapeEach > 0 || *telemetry > 0 || *profEvery > 0 {
		emit := func(table string, rows []rowblock.Row) error {
			var lastErr error
			for _, c := range clients {
				if err := c.AddRows(table, rows); err != nil {
					lastErr = err
					continue
				}
				return nil
			}
			return lastErr
		}
		snapEvery := *telemetry
		if snapEvery <= 0 {
			snapEvery = -1 // delivery-only: no self-snapshot loop
		}
		sink = obs.NewSink(obs.SinkConfig{
			Emit:            emit,
			Source:          *addr,
			Registry:        reg,
			MetricsInterval: snapEvery,
			OnError:         func(err error) { log.Printf("telemetry: %v", err) },
		})
		defer sink.Close()
	}
	// Continuous profiler: steady captures plus anomaly captures when a
	// slow query hits the trace ring, each tagged with the trace ID so
	// scuba-cli profile links back to the waterfall.
	var prof *profile.Profiler
	if *profEvery > 0 {
		prof = profile.New(profile.Config{
			Sink:     sink,
			Source:   *addr,
			Registry: reg,
			Interval: *profEvery,
		})
		defer prof.Close()
		log.Printf("continuous profiler on: %v cadence into %s", *profEvery, obs.SystemProfilesTable)
	}
	tracerOpts := obs.TracerOptions{
		Capacity:      *traceRing,
		SlowThreshold: *slowQuery,
		Metrics:       reg,
	}
	recordTrace := sink != nil && *telemetry > 0
	if recordTrace || prof != nil {
		tracerOpts.OnRecord = func(tr obs.Trace) {
			if recordTrace {
				sink.RecordTrace(tr)
			}
			prof.OnTrace(tr)
		}
	}
	tracer := obs.NewTracer(tracerOpts)
	targets := make([]aggregator.LeafTarget, len(addrs))
	for i := range clients {
		targets[i] = clients[i]
	}
	agg := aggregator.New(targets)
	agg.Metrics = reg
	agg.LeafTimeout = *leafTimeout
	agg.Tracer = tracer
	agg.Labels = addrs
	var router *shard.Router
	if *replication > 0 {
		var machines []int
		if *machineSpec != "" {
			for _, f := range strings.Split(*machineSpec, ",") {
				m, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					log.Fatalf("scuba-aggd: -machines: %v", err)
				}
				machines = append(machines, m)
			}
			if len(machines) != len(addrs) {
				log.Fatalf("scuba-aggd: -machines lists %d entries for %d leaves", len(machines), len(addrs))
			}
		}
		router = wire.ShardRouting(agg, addrs, machines, *replication, *numShards)
		log.Printf("shard routing on: %s", router.Map())
	}
	if *scrapeEach > 0 {
		scrapeTargets := make([]wire.ScrapeTarget, len(addrs))
		for i, a := range addrs {
			scrapeTargets[i] = wire.ScrapeTarget{Name: a, Client: clients[i]}
		}
		scraper := wire.StartScraper(wire.ScraperConfig{
			Leaves:   scrapeTargets,
			Sink:     sink,
			Router:   router,
			Interval: *scrapeEach,
			Source:   *addr,
			Registry: reg,
		})
		defer scraper.Stop()
		log.Printf("cluster scraper on: %d leaves into %s every %v", len(addrs), obs.SystemLeafMetricsTable, *scrapeEach)
	}
	srv, err := wire.NewAggServerOver(agg, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scuba-aggd serving %d leaves on %s (leaf timeout %v)", len(addrs), srv.Addr(), *leafTimeout)
	if *httpAddr != "" {
		hs, err := obs.StartHTTP(*httpAddr, obs.Handler(obs.HandlerConfig{Registry: reg, Tracer: tracer}))
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		log.Printf("observability on http://%s (/metrics /debug/traces /debug/slow /debug/pprof)", hs.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	srv.Close()
	log.Println("scuba-aggd: bye")
}
