// Command scuba-aggd runs one Scuba aggregator server (§2, Figure 1): it
// distributes every query to all configured leaf servers and merges the
// partial results as they arrive, reporting coverage so dashboards can show
// how much data answered while leaves restart.
//
// Usage:
//
//	scuba-aggd -addr 127.0.0.1:9001 -leaves 127.0.0.1:8001,127.0.0.1:8002
//	scuba-cli -addrs 127.0.0.1:9001 query -table service_logs ...
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"scuba/internal/aggregator"
	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9001", "listen address")
		leaves      = flag.String("leaves", "", "comma-separated leaf addresses")
		leafTimeout = flag.Duration("leaf-timeout", 10*time.Second, "abandon leaves slower than this per query; their data is reported missing from coverage (0 = wait forever)")
		faultSpec   = flag.String("fault", "", "arm fault-injection points for chaos testing, e.g. 'wire.read=delay:500ms;count=10' (see internal/fault)")
		httpAddr    = flag.String("http", "", "observability listen address serving /metrics, /debug/traces, /debug/slow and /debug/pprof ('' disables)")
		slowQuery   = flag.Duration("slow-query", 0, "queries at or above this duration land in the /debug/slow ring (0 = adaptive: slower than the running p99)")
		traceRing   = flag.Int("trace-ring", 64, "how many recent traces /debug/traces retains")
		replication = flag.Int("replication", 0, "shard replication factor R: each shard lives on R leaves and queries fail over to a replica while the primary restarts (0 = unsharded full fan-out)")
		numShards   = flag.Int("num-shards", 0, "shards per table under -replication (0 = 2x leaf count)")
		machineSpec = flag.String("machines", "", "comma-separated machine index per leaf (parallel to -leaves) so shard replicas land on distinct machines; '' = every leaf its own machine")
	)
	flag.Parse()
	if *leaves == "" {
		log.Fatal("scuba-aggd: -leaves is required")
	}
	if *faultSpec != "" {
		if err := fault.ArmSpec(*faultSpec); err != nil {
			log.Fatalf("scuba-aggd: -fault: %v", err)
		}
		log.Printf("fault injection armed: %s", fault.String())
	}
	var addrs []string
	for _, a := range strings.Split(*leaves, ",") {
		addrs = append(addrs, strings.TrimSpace(a))
	}
	reg := metrics.NewRegistry()
	reg.EnableRuntimeMetrics()
	tracer := obs.NewTracer(obs.TracerOptions{
		Capacity:      *traceRing,
		SlowThreshold: *slowQuery,
		Metrics:       reg,
	})
	targets := make([]aggregator.LeafTarget, len(addrs))
	for i, a := range addrs {
		targets[i] = wire.Dial(a)
	}
	agg := aggregator.New(targets)
	agg.Metrics = reg
	agg.LeafTimeout = *leafTimeout
	agg.Tracer = tracer
	agg.Labels = addrs
	if *replication > 0 {
		var machines []int
		if *machineSpec != "" {
			for _, f := range strings.Split(*machineSpec, ",") {
				m, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					log.Fatalf("scuba-aggd: -machines: %v", err)
				}
				machines = append(machines, m)
			}
			if len(machines) != len(addrs) {
				log.Fatalf("scuba-aggd: -machines lists %d entries for %d leaves", len(machines), len(addrs))
			}
		}
		r := wire.ShardRouting(agg, addrs, machines, *replication, *numShards)
		log.Printf("shard routing on: %s", r.Map())
	}
	srv, err := wire.NewAggServerOver(agg, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scuba-aggd serving %d leaves on %s (leaf timeout %v)", len(addrs), srv.Addr(), *leafTimeout)
	if *httpAddr != "" {
		hs, err := obs.StartHTTP(*httpAddr, obs.Handler(obs.HandlerConfig{Registry: reg, Tracer: tracer}))
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		log.Printf("observability on http://%s (/metrics /debug/traces /debug/slow /debug/pprof)", hs.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	srv.Close()
	log.Println("scuba-aggd: bye")
}
