// Command scuba-tailerd runs one Scuba tailer as a daemon (§2, Figure 1):
// it pulls one table's rows out of a remote scribed and, every N rows or t
// seconds, places the batch on a leaf server chosen by two-random-choice
// (more free memory wins; restarting leaves are avoided).
//
// The tailer checkpoints its Scribe offset, so restarting the tailer —
// tailers roll over for code upgrades too — neither replays nor loses data.
//
// Usage:
//
//	scuba-tailerd -scribe 127.0.0.1:7001 -category service_logs \
//	  -leaves 127.0.0.1:8001,127.0.0.1:8002 -checkpoint /var/lib/scuba/tailer.ckpt
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/scribe"
	"scuba/internal/tailer"
	"scuba/internal/wire"
)

func main() {
	var (
		scribeAddr = flag.String("scribe", "127.0.0.1:7001", "scribed address")
		category   = flag.String("category", "service_logs", "Scribe category to tail")
		tableName  = flag.String("table", "", "destination table (default: category name)")
		leaves     = flag.String("leaves", "", "comma-separated leaf addresses")
		checkpoint = flag.String("checkpoint", "", "offset checkpoint file ('' disables)")
		batchRows  = flag.Int("batch-rows", 1000, "flush every N rows")
		interval   = flag.Duration("interval", time.Second, "flush partial batches this often")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "placement randomness seed")
		httpAddr   = flag.String("http", "", "observability listen address serving /metrics and /debug/pprof ('' disables)")
	)
	flag.Parse()
	if *leaves == "" {
		log.Fatal("scuba-tailerd: -leaves is required")
	}

	reg := metrics.NewRegistry()
	reg.EnableRuntimeMetrics()
	if *httpAddr != "" {
		hs, err := obs.StartHTTP(*httpAddr, obs.Handler(obs.HandlerConfig{Registry: reg}))
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		log.Printf("observability on http://%s (/metrics /debug/pprof)", hs.Addr())
	}

	var targets []tailer.Target
	for _, a := range strings.Split(*leaves, ",") {
		targets = append(targets, wire.Dial(strings.TrimSpace(a)))
	}
	placer := tailer.NewPlacer(targets, *seed)

	src := scribe.Dial(*scribeAddr)
	defer src.Close()

	cfg := tailer.Config{
		Category:      *category,
		Table:         *tableName,
		BatchRows:     *batchRows,
		FlushInterval: *interval,
		Metrics:       reg,
	}
	if *checkpoint != "" {
		cfg.Checkpoint = tailer.NewCheckpoint(*checkpoint)
	}
	tl := tailer.New(cfg, src, placer, 0)
	log.Printf("scuba-tailerd pumping %q from %s to %d leaves (from offset %d)",
		*category, *scribeAddr, len(targets), 0)

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- tl.Run(stop) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("signal %v: draining", sig)
		close(stop)
		if err := <-done; err != nil {
			log.Fatalf("drain: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Fatalf("tailer: %v", err)
		}
	}
	st := placer.Stats()
	log.Printf("placed %d rows in %d batches (lost %d, bad %d); bye",
		st.RowsPlaced, st.Batches, tl.RowsLost, tl.RowsBad)
}
