// Command scuba-tailerd runs one Scuba tailer as a daemon (§2, Figure 1):
// it pulls one table's rows out of a remote scribed and, every N rows or t
// seconds, places the batch on a leaf server chosen by two-random-choice
// (more free memory wins; restarting leaves are avoided).
//
// The tailer checkpoints its Scribe offset, so restarting the tailer —
// tailers roll over for code upgrades too — neither replays nor loses data.
//
// Usage:
//
//	scuba-tailerd -scribe 127.0.0.1:7001 -category service_logs \
//	  -leaves 127.0.0.1:8001,127.0.0.1:8002 -checkpoint /var/lib/scuba/tailer.ckpt
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/profile"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
	"scuba/internal/tailer"
	"scuba/internal/wire"
)

func main() {
	var (
		scribeAddr = flag.String("scribe", "127.0.0.1:7001", "scribed address")
		category   = flag.String("category", "service_logs", "Scribe category to tail")
		tableName  = flag.String("table", "", "destination table (default: category name)")
		leaves     = flag.String("leaves", "", "comma-separated leaf addresses")
		checkpoint = flag.String("checkpoint", "", "offset checkpoint file ('' disables)")
		batchRows  = flag.Int("batch-rows", 1000, "flush every N rows")
		interval   = flag.Duration("interval", time.Second, "flush partial batches this often")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "placement randomness seed")
		httpAddr   = flag.String("http", "", "observability listen address serving /metrics and /debug/pprof ('' disables)")
		profEvery  = flag.Duration("profile-interval", time.Minute, "continuous profiler steady cadence: capture a CPU window + heap delta into __system.profiles via the leaves (0 disables)")
		profMutex  = flag.Bool("profile-contention", false, "enable mutex/block profiling so /debug/pprof/mutex and /debug/pprof/block return real data")
	)
	flag.Parse()
	if *leaves == "" {
		log.Fatal("scuba-tailerd: -leaves is required")
	}

	reg := metrics.NewRegistry()
	reg.EnableRuntimeMetrics()
	reg.EnableProcessMetrics()
	if *profMutex {
		profile.EnableContention()
	}
	if *httpAddr != "" {
		hs, err := obs.StartHTTP(*httpAddr, obs.Handler(obs.HandlerConfig{Registry: reg}))
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		log.Printf("observability on http://%s (/metrics /debug/pprof)", hs.Addr())
	}

	var targets []tailer.Target
	var clients []*wire.Client
	for _, a := range strings.Split(*leaves, ",") {
		c := wire.Dial(strings.TrimSpace(a))
		targets = append(targets, c)
		clients = append(clients, c)
	}
	placer := tailer.NewPlacer(targets, *seed)

	// Continuous profiler: the tailer has no local leaf, so its profile
	// rows go to the first leaf that accepts them, same as the
	// aggregator's telemetry.
	if *profEvery > 0 {
		sink := obs.NewSink(obs.SinkConfig{
			Emit: func(table string, rows []rowblock.Row) error {
				var lastErr error
				for _, c := range clients {
					if err := c.AddRows(table, rows); err != nil {
						lastErr = err
						continue
					}
					return nil
				}
				return lastErr
			},
			Source:          "tailer:" + *category,
			Registry:        reg,
			MetricsInterval: -1, // delivery-only
			OnError:         func(err error) { log.Printf("telemetry: %v", err) },
		})
		defer sink.Close()
		prof := profile.New(profile.Config{
			Sink:     sink,
			Source:   "tailer:" + *category,
			Registry: reg,
			Interval: *profEvery,
		})
		defer prof.Close()
		log.Printf("continuous profiler on: %v cadence into %s", *profEvery, obs.SystemProfilesTable)
	}

	src := scribe.Dial(*scribeAddr)
	defer src.Close()

	cfg := tailer.Config{
		Category:      *category,
		Table:         *tableName,
		BatchRows:     *batchRows,
		FlushInterval: *interval,
		Metrics:       reg,
	}
	if *checkpoint != "" {
		cfg.Checkpoint = tailer.NewCheckpoint(*checkpoint)
	}
	tl := tailer.New(cfg, src, placer, 0)
	log.Printf("scuba-tailerd pumping %q from %s to %d leaves (from offset %d)",
		*category, *scribeAddr, len(targets), 0)

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- tl.Run(stop) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("signal %v: draining", sig)
		close(stop)
		if err := <-done; err != nil {
			log.Fatalf("drain: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Fatalf("tailer: %v", err)
		}
	}
	st := placer.Stats()
	log.Printf("placed %d rows in %d batches (lost %d, bad %d); bye",
		st.RowsPlaced, st.Batches, tl.RowsLost, tl.RowsBad)
}
