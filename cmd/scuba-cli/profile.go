package main

// scuba-cli profile renders the continuous profiler's captures from the
// __system.profiles rows the daemons ingest about themselves, queried back
// through a live aggregator — the CPU/heap sibling of scuba-cli health.
// -top shows the hottest functions of the newest capture; -diff joins the
// two newest captures per-function (before/after a restart, or around an
// anomaly) and sorts by the flat-time swing.

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"time"

	"scuba"
)

func runProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	aggAddr := fs.String("agg", "127.0.0.1:9001", "aggregator address")
	window := fs.Duration("window", 15*time.Minute, "how far back to look for captures")
	top := fs.Int("top", 15, "how many functions to show")
	leafSrc := fs.String("leaf", "", "only captures from this source daemon (a leaf addr, the aggd addr, or tailer:<category>)")
	trigger := fs.String("trigger", "", "only captures with this trigger (interval, slow_query, restart, gc_pause)")
	diff := fs.Bool("diff", false, "diff the two newest captures (per-function flat-time swing) instead of one top table")
	fs.Parse(args) //nolint:errcheck

	c := scuba.DialLeaf(*aggAddr)
	defer c.Close()

	caps, err := listCaptures(c, *window, *leafSrc, *trigger)
	if err != nil {
		log.Fatal(err)
	}
	if len(caps) == 0 {
		fmt.Printf("no %s captures in the last %v — are the daemons running with -profile-interval?\n",
			scuba.SystemProfilesTable, *window)
		return
	}
	if *diff {
		// Diff wants comparable captures: same daemon, two points in time.
		newest := caps[0]
		var prev *capture
		for i := 1; i < len(caps); i++ {
			if caps[i].Source == newest.Source {
				prev = &caps[i]
				break
			}
		}
		if prev == nil {
			log.Fatalf("profile: only one capture from %s in the window, nothing to diff", newest.Source)
		}
		if err := renderDiff(c, *prev, newest, *top); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := renderTop(c, caps[0], *top); err != nil {
		log.Fatal(err)
	}
}

// capture identifies one profiler capture (all rows share the capture ID).
type capture struct {
	ID      string // end-of-window unix micros, as a string key
	TUS     int64
	Source  string
	Trigger string
	Detail  string
	TraceID int64
}

// listCaptures returns the window's captures, newest first.
func listCaptures(c *scuba.Client, window time.Duration, source, trigger string) ([]capture, error) {
	now := time.Now().Unix()
	q := &scuba.Query{
		Table:   scuba.SystemProfilesTable,
		From:    now - int64(window/time.Second),
		To:      now + 1,
		GroupBy: []string{"capture", "source", "trigger", "detail"},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggMax, Column: "t_us"},
			{Op: scuba.AggMax, Column: "trace_id"},
		},
		Limit: 10000,
	}
	if source != "" {
		q.Filters = append(q.Filters, scuba.Filter{Column: "source", Op: scuba.OpEq, Str: source})
	}
	if trigger != "" {
		q.Filters = append(q.Filters, scuba.Filter{Column: "trigger", Op: scuba.OpEq, Str: trigger})
	}
	res, err := c.Query(q)
	if err != nil {
		return nil, fmt.Errorf("querying %s: %w", scuba.SystemProfilesTable, err)
	}
	var caps []capture
	for _, row := range res.Rows(q) {
		caps = append(caps, capture{
			ID: row.Key[0], Source: row.Key[1], Trigger: row.Key[2], Detail: row.Key[3],
			TUS: int64(row.Values[0]), TraceID: int64(row.Values[1]),
		})
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].TUS > caps[j].TUS })
	return caps, nil
}

// funcRow is one function's numbers within a single capture.
type funcRow struct {
	Flat, Cum, Alloc, Inuse float64
}

// captureFunctions fetches a capture's per-function rows keyed by function
// name (the "(total)" row included).
func captureFunctions(c *scuba.Client, cap capture) (map[string]funcRow, error) {
	t := cap.TUS / 1e6
	q := &scuba.Query{
		Table:   scuba.SystemProfilesTable,
		From:    t - 1,
		To:      t + 2,
		GroupBy: []string{"function"},
		Filters: []scuba.Filter{{Column: "capture", Op: scuba.OpEq, Str: cap.ID}},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggMax, Column: "flat_ns"},
			{Op: scuba.AggMax, Column: "cum_ns"},
			{Op: scuba.AggMax, Column: "alloc_bytes"},
			{Op: scuba.AggMax, Column: "inuse_bytes"},
		},
		Limit: 10000,
	}
	res, err := c.Query(q)
	if err != nil {
		return nil, fmt.Errorf("querying capture %s: %w", cap.ID, err)
	}
	out := map[string]funcRow{}
	for _, row := range res.Rows(q) {
		out[row.Key[0]] = funcRow{
			Flat: row.Values[0], Cum: row.Values[1],
			Alloc: row.Values[2], Inuse: row.Values[3],
		}
	}
	return out, nil
}

func describeCapture(cap capture) string {
	when := time.UnixMicro(cap.TUS).Format("15:04:05.000")
	s := fmt.Sprintf("%s  %s  trigger=%s", when, cap.Source, cap.Trigger)
	if cap.TraceID != 0 {
		s += fmt.Sprintf("  trace=%d", cap.TraceID)
	}
	if cap.Detail != "" {
		s += "  " + cap.Detail
	}
	return s
}

func renderTop(c *scuba.Client, cap capture, top int) error {
	funcs, err := captureFunctions(c, cap)
	if err != nil {
		return err
	}
	total := funcs[scuba.ProfileTotalFunction]
	delete(funcs, scuba.ProfileTotalFunction)

	fmt.Printf("capture %s\n", describeCapture(cap))
	fmt.Printf("window total: %s CPU, %s allocated\n\n", ms(total.Flat), mbf(total.Alloc))
	names := sortedByFlat(funcs)
	fmt.Printf("%9s %6s %9s %9s %9s  %s\n", "flat", "flat%", "cum", "alloc", "inuse", "function")
	for i, fn := range names {
		if i >= top {
			break
		}
		r := funcs[fn]
		fmt.Printf("%9s %6s %9s %9s %9s  %s\n",
			ms(r.Flat), pct(r.Flat, total.Flat), ms(r.Cum), mbf(r.Alloc), mbf(r.Inuse), fn)
	}
	if len(names) == 0 {
		fmt.Println("(idle window: no CPU samples above threshold)")
	}
	return nil
}

func renderDiff(c *scuba.Client, before, after capture, top int) error {
	bf, err := captureFunctions(c, before)
	if err != nil {
		return err
	}
	af, err := captureFunctions(c, after)
	if err != nil {
		return err
	}
	bTotal, aTotal := bf[scuba.ProfileTotalFunction], af[scuba.ProfileTotalFunction]
	delete(bf, scuba.ProfileTotalFunction)
	delete(af, scuba.ProfileTotalFunction)

	fmt.Printf("before  %s\n", describeCapture(before))
	fmt.Printf("after   %s\n", describeCapture(after))
	fmt.Printf("window total: %s -> %s CPU (%s)\n\n",
		ms(bTotal.Flat), ms(aTotal.Flat), signedMS(aTotal.Flat-bTotal.Flat))

	seen := map[string]bool{}
	type delta struct {
		fn            string
		before, after float64
	}
	var deltas []delta
	for fn, r := range af {
		deltas = append(deltas, delta{fn: fn, before: bf[fn].Flat, after: r.Flat})
		seen[fn] = true
	}
	for fn, r := range bf {
		if !seen[fn] {
			deltas = append(deltas, delta{fn: fn, before: r.Flat, after: 0})
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		return math.Abs(deltas[i].after-deltas[i].before) > math.Abs(deltas[j].after-deltas[j].before)
	})
	fmt.Printf("%10s %9s %9s  %s\n", "Δflat", "before", "after", "function")
	for i, d := range deltas {
		if i >= top {
			break
		}
		fmt.Printf("%10s %9s %9s  %s\n", signedMS(d.after-d.before), ms(d.before), ms(d.after), d.fn)
	}
	if len(deltas) == 0 {
		fmt.Println("(both windows idle)")
	}
	return nil
}

func sortedByFlat(funcs map[string]funcRow) []string {
	names := make([]string, 0, len(funcs))
	for fn := range funcs {
		names = append(names, fn)
	}
	sort.Slice(names, func(i, j int) bool {
		if funcs[names[i]].Flat != funcs[names[j]].Flat {
			return funcs[names[i]].Flat > funcs[names[j]].Flat
		}
		return names[i] < names[j]
	})
	return names
}

// ms renders nanoseconds as milliseconds.
func ms(ns float64) string {
	return strconv.FormatFloat(ns/1e6, 'f', 1, 64) + "ms"
}

// signedMS is ms with an explicit sign, for diff columns.
func signedMS(ns float64) string {
	if ns >= 0 {
		return "+" + ms(ns)
	}
	return ms(ns)
}

// mbf renders bytes as megabytes (profile rows carry sampled bytes).
func mbf(b float64) string {
	return strconv.FormatFloat(b/(1<<20), 'f', 1, 64) + "M"
}
