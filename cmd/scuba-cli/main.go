// Command scuba-cli talks to running scubad leaves: it loads synthetic
// data, runs aggregation queries (fanned out over all leaves, Scuba-style),
// reports stats, and asks leaves to shut down cleanly for upgrades.
//
// Usage:
//
//	scuba-cli produce -scribe :7001 -category service_logs -rows 100000
//	scuba-cli -addrs :8001,:8002 load -table service_logs -rows 100000
//	scuba-cli -addrs :8001,:8002 query -table service_logs -group-by service -agg count,avg:latency_ms
//	scuba-cli -addrs :8001 stats
//	scuba-cli stats -http :8081            # scrape a daemon's /metrics + /debug/recovery
//	scuba-cli health -agg :9001 -watch 2s  # live cluster health from __system tables
//	scuba-cli profile -agg :9001 -top 15   # hottest functions from __system.profiles
//	scuba-cli trace -http :9091            # per-leaf waterfall of the latest query trace
//	scuba-cli -addrs :8001 shutdown [-disk]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"scuba"
	"scuba/internal/aggregator"
	"scuba/internal/scribe"
	"scuba/internal/tailer"
)

func main() {
	addrs := flag.String("addrs", "127.0.0.1:8001", "comma-separated leaf addresses")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: scuba-cli -addrs ... {load|query|stats|health|profile|trace|shutdown} [flags]")
		os.Exit(2)
	}

	var clients []*scuba.Client
	for _, a := range strings.Split(*addrs, ",") {
		clients = append(clients, scuba.DialLeaf(strings.TrimSpace(a)))
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "produce":
		runProduce(args)
	case "load":
		runLoad(clients, args)
	case "query":
		runQuery(clients, args)
	case "stats":
		runStats(clients, args)
	case "health":
		runHealth(args)
	case "profile":
		runProfile(args)
	case "trace":
		runTrace(args)
	case "shutdown":
		runShutdown(clients, args)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// runProduce appends synthetic rows to a remote scribed, standing in for
// the product log calls of Figure 1 (tailer daemons move them to leaves).
func runProduce(args []string) {
	fs := flag.NewFlagSet("produce", flag.ExitOnError)
	scribeAddr := fs.String("scribe", "127.0.0.1:7001", "scribed address")
	category := fs.String("category", "service_logs", "Scribe category")
	rows := fs.Int("rows", 100000, "rows to produce")
	seed := fs.Int64("seed", 42, "generator seed")
	fs.Parse(args) //nolint:errcheck

	gen := generatorFor(*category, *seed)
	c := scribe.Dial(*scribeAddr)
	defer c.Close()
	start := time.Now()
	for i := 0; i < *rows; i++ {
		payload, err := scuba.EncodeRow(gen.Next())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Append(*category, payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("produced %d rows to %q on %s in %v\n",
		*rows, *category, *scribeAddr, time.Since(start).Round(time.Millisecond))
}

func generatorFor(table string, seed int64) *scuba.Workload {
	switch table {
	case "error_events":
		return scuba.ErrorEvents(seed, time.Now().Unix()-3600)
	case "ads_revenue":
		return scuba.AdsRevenue(seed, time.Now().Unix()-3600)
	default:
		return scuba.ServiceLogs(seed, time.Now().Unix()-3600)
	}
}

func runLoad(clients []*scuba.Client, args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	tableName := fs.String("table", "service_logs", "table to load")
	rows := fs.Int("rows", 100000, "rows to load")
	seed := fs.Int64("seed", 42, "generator seed")
	fs.Parse(args) //nolint:errcheck

	gen := generatorFor(*tableName, *seed)

	targets := make([]tailer.Target, len(clients))
	for i, c := range clients {
		targets[i] = c
	}
	placer := scuba.NewPlacer(targets, *seed)
	start := time.Now()
	for sent := 0; sent < *rows; sent += 1000 {
		n := min(1000, *rows-sent)
		if _, err := placer.Place(*tableName, gen.NextBatch(n)); err != nil {
			log.Fatal(err)
		}
	}
	st := placer.Stats()
	fmt.Printf("loaded %d rows into %q across %d leaves in %v\n",
		st.RowsPlaced, *tableName, len(clients), time.Since(start).Round(time.Millisecond))
	for i, n := range st.PerTarget {
		fmt.Printf("  leaf %d: %d batches\n", i, n)
	}
}

func runQuery(clients []*scuba.Client, args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	tableName := fs.String("table", "service_logs", "table to query")
	from := fs.Int64("from", 0, "start of time range (unix seconds)")
	to := fs.Int64("to", 1<<40, "end of time range (unix seconds)")
	groupBy := fs.String("group-by", "", "comma-separated group-by columns")
	aggs := fs.String("agg", "count", "comma-separated aggs: count,sum:col,avg:col,min:col,max:col,p50:col,p90:col,p99:col,distinct:col")
	where := fs.String("where", "", "filter: col=value | col>value | col<value (one)")
	limit := fs.Int("limit", 20, "max groups")
	bucket := fs.Int64("bucket", 0, "time bucket in seconds (0 = no series)")
	fs.Parse(args) //nolint:errcheck

	q := &scuba.Query{Table: *tableName, From: *from, To: *to, Limit: *limit, TimeBucketSeconds: *bucket}
	if *groupBy != "" {
		q.GroupBy = strings.Split(*groupBy, ",")
	}
	for _, a := range strings.Split(*aggs, ",") {
		op, col, _ := strings.Cut(a, ":")
		agg := scuba.Aggregation{Column: col}
		switch op {
		case "count":
			agg.Op = scuba.AggCount
		case "sum":
			agg.Op = scuba.AggSum
		case "avg":
			agg.Op = scuba.AggAvg
		case "min":
			agg.Op = scuba.AggMin
		case "max":
			agg.Op = scuba.AggMax
		case "p50":
			agg.Op = scuba.AggP50
		case "p90":
			agg.Op = scuba.AggP90
		case "p99":
			agg.Op = scuba.AggP99
		case "distinct":
			agg.Op = scuba.AggCountDistinct
		default:
			log.Fatalf("unknown aggregation %q", op)
		}
		q.Aggregations = append(q.Aggregations, agg)
	}
	if *where != "" {
		f, err := parseFilter(*where)
		if err != nil {
			log.Fatal(err)
		}
		q.Filters = []scuba.Filter{f}
	}

	targets := make([]aggregator.LeafTarget, len(clients))
	for i, c := range clients {
		targets[i] = c
	}
	agg := aggregator.New(targets)
	start := time.Now()
	res, err := agg.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scuba.FormatResult(q, res.Rows(q)))
	fmt.Printf("\n%d/%d leaves answered (%.0f%% of data), %d rows scanned, %d blocks skipped, %v\n",
		res.LeavesAnswered, res.LeavesTotal, 100*res.Coverage(),
		res.RowsScanned, res.BlocksSkipped, time.Since(start).Round(time.Millisecond))
}

func parseFilter(s string) (scuba.Filter, error) {
	for _, op := range []struct {
		sym string
		op  scuba.Filter
	}{
		{">=", scuba.Filter{Op: scuba.OpGe}},
		{"<=", scuba.Filter{Op: scuba.OpLe}},
		{"!=", scuba.Filter{Op: scuba.OpNe}},
		{"=", scuba.Filter{Op: scuba.OpEq}},
		{">", scuba.Filter{Op: scuba.OpGt}},
		{"<", scuba.Filter{Op: scuba.OpLt}},
	} {
		if col, val, ok := strings.Cut(s, op.sym); ok {
			f := op.op
			f.Column = col
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				f.Int = n
				f.Float = float64(n)
			}
			f.Str = val
			return f, nil
		}
	}
	return scuba.Filter{}, fmt.Errorf("cannot parse filter %q", s)
}

func runStats(clients []*scuba.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	httpAddr := fs.String("http", "", "scrape a daemon's -http observability listener instead of the stats RPC")
	fs.Parse(args) //nolint:errcheck
	if *httpAddr != "" {
		scrapeObs(*httpAddr)
		return
	}
	fmt.Printf("%-6s %-16s %7s %8s %12s %14s %12s\n",
		"leaf", "state", "tables", "blocks", "rows", "bytes", "free")
	for i, c := range clients {
		st, err := c.Stats()
		if err != nil {
			fmt.Printf("%-6d unreachable: %v\n", i, err)
			continue
		}
		fmt.Printf("%-6d %-16s %7d %8d %12d %14d %12d\n",
			st.ID, st.State, st.Tables, st.Blocks, st.Rows, st.Bytes, st.FreeMemory)
	}
}

// scrapeObs fetches /metrics and /debug/recovery from a daemon's -http
// listener and pretty-prints the restart story: metrics first, then the
// previous run's outcome (the flight-recorder answer to "why did the last
// restart fall back to disk") and the current recovery state.
func scrapeObs(addr string) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, err := httpGet(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== metrics ==")
	fmt.Print(body)

	recBody, err := httpGet(base + "/debug/recovery")
	if err != nil {
		log.Fatal(err)
	}
	var dump scuba.RecoveryDump
	if err := json.Unmarshal([]byte(recBody), &dump); err != nil {
		log.Fatalf("bad /debug/recovery JSON: %v", err)
	}
	fmt.Println("== recovery ==")
	if dump.Recovery != nil {
		printRecovery(dump.Recovery)
	}
	if pr := dump.PreviousRun; pr != nil {
		if pr.Failed {
			fmt.Printf("previous run FAILED in phase %q: %s\n", pr.FailurePhase, pr.FailureDetail)
		} else {
			fmt.Printf("previous run: last phase %q (%d events)\n", pr.LastPhase, pr.Events)
		}
	} else {
		fmt.Println("previous run: no flight-recorder data")
	}
	if cr := dump.CurrentRun; cr != nil {
		fmt.Printf("current run: last phase %q (%d events)\n", cr.LastPhase, cr.Events)
		for _, ev := range dump.CurrentEvents {
			fmt.Printf("  %s %-5s %s %s\n", ev.Time().Format("15:04:05.000"), ev.KindName, ev.Phase, ev.Detail)
		}
	}
}

// printRecovery renders the /debug/recovery payload: the overall path, then
// — the degraded-recovery story — each quarantined table and where its data
// came from instead, so an operator can see at a glance which tables paid
// disk-recovery time and which came up empty.
func printRecovery(v any) {
	b, _ := json.Marshal(v) //nolint:errcheck
	var rec scuba.RecoveryInfo
	if err := json.Unmarshal(b, &rec); err != nil || rec.Path == "" {
		fmt.Printf("recovery: %s\n", b)
		return
	}
	fmt.Printf("recovery: path=%s tables=%d blocks=%d %.1f MB in %v (workers=%d quarantined=%d fellBack=%v)\n",
		rec.Path, rec.Tables, rec.Blocks, float64(rec.BytesRestored)/(1<<20),
		rec.Duration.Round(time.Millisecond), rec.Workers, rec.Quarantined, rec.FellBack)
	if rec.Path == scuba.RecoveryShmView || rec.ServedFromShm > 0 || rec.PromotedBlocks > 0 {
		fmt.Printf("  instant-on: %d blocks still served from shm, %d promoted to heap\n",
			rec.ServedFromShm, rec.PromotedBlocks)
	}
	for _, tr := range rec.PerTablePath {
		line := fmt.Sprintf("  table %-20q %s", tr.Table, tr.Path)
		if tr.Reason != "" {
			line += "  (" + tr.Reason + ")"
		}
		fmt.Println(line)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(b), nil
}

func runShutdown(clients []*scuba.Client, args []string) {
	fs := flag.NewFlagSet("shutdown", flag.ExitOnError)
	disk := fs.Bool("disk", false, "shut down without shared memory (disk-only)")
	fs.Parse(args) //nolint:errcheck
	for i, c := range clients {
		info, err := c.Shutdown(!*disk)
		if err != nil {
			log.Fatalf("leaf %d: %v", i, err)
		}
		fmt.Printf("leaf %d drained: %d tables, %d blocks, %.1f MB in %v (shm=%v)\n",
			i, info.Tables, info.Blocks, float64(info.BytesCopied)/(1<<20),
			info.Duration.Round(time.Millisecond), info.ToShm)
	}
}
