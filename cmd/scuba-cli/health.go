package main

// scuba-cli health renders live cluster health from the cluster's own
// self-telemetry: the __system.leaf_metrics rows the aggregator's scraper
// ingests, queried back through that same aggregator. There is no side
// channel — if health renders, the whole Scuba-on-Scuba loop (scrape →
// sink → leaf ingest → fan-out query) is working.

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"scuba"
)

func runHealth(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	aggAddr := fs.String("agg", "127.0.0.1:9001", "aggregator address (must run with -scrape-interval)")
	window := fs.Duration("window", 2*time.Minute, "how far back to look for telemetry rows")
	watch := fs.Duration("watch", 0, "top-style refresh period (0 = render once)")
	format := fs.String("format", "table", "output format: table or json (json implies -watch 0)")
	fs.Parse(args) //nolint:errcheck
	if *format != "table" && *format != "json" {
		log.Fatalf("health: -format %q (want table or json)", *format)
	}

	c := scuba.DialLeaf(*aggAddr)
	defer c.Close()

	if *format == "json" {
		rep, err := gatherHealth(c, *aggAddr, *window)
		if err != nil {
			log.Fatal(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(out, '\n')) //nolint:errcheck
		return
	}

	if *watch <= 0 {
		if err := renderHealth(os.Stdout, c, *aggAddr, *window); err != nil {
			log.Fatal(err)
		}
		return
	}
	for {
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err := renderHealth(os.Stdout, c, *aggAddr, *window); err != nil {
			fmt.Printf("health: %v\n", err)
		}
		fmt.Printf("\nrefreshing every %v (ctrl-c to stop)\n", *watch)
		time.Sleep(*watch)
	}
}

// leafHealth is the newest __system.leaf_metrics scrape for one leaf. The
// JSON tags shape `health -format json` output for scripts and dashboards.
type leafHealth struct {
	Leaf        string  `json:"leaf"`
	Status      string  `json:"status"`
	Recovery    string  `json:"recovery"`
	Rows        float64 `json:"rows"`
	Queries     float64 `json:"queries"`
	QueryErrors float64 `json:"query_errors"`
	CacheHits   float64 `json:"decode_cache_hits"`
	CacheMisses float64 `json:"decode_cache_misses"`
	FreeBytes   float64 `json:"free_bytes"`
	Quarantined bool    `json:"quarantined"`
}

// healthReport is the machine-readable form of the health screen.
type healthReport struct {
	Aggregator     string       `json:"aggregator"`
	GeneratedAt    int64        `json:"generated_at"`
	WindowSeconds  int64        `json:"window_seconds"`
	Leaves         []leafHealth `json:"leaves"`
	Active         int          `json:"active"`
	LeavesAnswered int          `json:"leaves_answered"`
	LeavesTotal    int          `json:"leaves_total"`
	Coverage       float64      `json:"coverage"`
	// TracedQueries/SlowQueries are -1 when aggregator telemetry is off.
	TracedQueries float64 `json:"traced_queries"`
	SlowQueries   float64 `json:"slow_queries"`
}

// gatherHealth pulls the newest per-leaf scrape rows and coverage counters —
// the shared source for both the table and JSON renderings.
func gatherHealth(c *scuba.Client, aggAddr string, window time.Duration) (*healthReport, error) {
	now := time.Now().Unix()
	from := now - int64(window/time.Second)

	q := &scuba.Query{
		Table:   scuba.SystemLeafMetricsTable,
		From:    from,
		To:      now + 1,
		GroupBy: []string{"leaf", "status", "recovery"},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggMax, Column: "rows"},
			{Op: scuba.AggMax, Column: "queries"},
			{Op: scuba.AggMax, Column: "query_errors"},
			{Op: scuba.AggMax, Column: "decode_cache_hits"},
			{Op: scuba.AggMax, Column: "decode_cache_misses"},
			{Op: scuba.AggMax, Column: "free_memory"},
			{Op: scuba.AggMax, Column: "quarantined"},
		},
		Limit: 10000,
	}
	res, err := c.Query(q)
	if err != nil {
		return nil, fmt.Errorf("querying %s through %s: %w", scuba.SystemLeafMetricsTable, aggAddr, err)
	}

	// A leaf whose status or recovery path changed inside the window shows
	// up once per combination; the scrape with the most queries observed is
	// the newest (counters are cumulative), so it wins.
	newest := map[string]leafHealth{}
	for _, row := range res.Rows(q) {
		h := leafHealth{
			Leaf: row.Key[0], Status: row.Key[1], Recovery: row.Key[2],
			Rows: row.Values[0], Queries: row.Values[1], QueryErrors: row.Values[2],
			CacheHits: row.Values[3], CacheMisses: row.Values[4], FreeBytes: row.Values[5],
			Quarantined: row.Values[6] > 0,
		}
		if prev, ok := newest[h.Leaf]; !ok || h.Queries >= prev.Queries {
			newest[h.Leaf] = h
		}
	}
	rep := &healthReport{
		Aggregator:     aggAddr,
		GeneratedAt:    now,
		WindowSeconds:  int64(window / time.Second),
		LeavesAnswered: res.LeavesAnswered,
		LeavesTotal:    res.LeavesTotal,
		Coverage:       res.Coverage(),
		TracedQueries:  -1,
		SlowQueries:    -1,
	}
	for _, h := range newest {
		rep.Leaves = append(rep.Leaves, h)
		if h.Status == "ACTIVE" {
			rep.Active++
		}
	}
	sort.Slice(rep.Leaves, func(i, j int) bool { return rep.Leaves[i].Leaf < rep.Leaves[j].Leaf })

	slow := maxMetric(c, from, now, "trace_slow")
	total := maxMetric(c, from, now, "trace_count")
	if !math.IsNaN(slow) && !math.IsNaN(total) {
		rep.TracedQueries = total
		rep.SlowQueries = slow
	}
	return rep, nil
}

func renderHealth(w *os.File, c *scuba.Client, aggAddr string, window time.Duration) error {
	rep, err := gatherHealth(c, aggAddr, window)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "cluster health via %s (window %v, %s)\n\n",
		aggAddr, window, time.Unix(rep.GeneratedAt, 0).Format("15:04:05"))
	if len(rep.Leaves) == 0 {
		fmt.Fprintf(w, "no %s rows in the last %v — is scuba-aggd running with -scrape-interval?\n",
			scuba.SystemLeafMetricsTable, window)
		return nil
	}

	fmt.Fprintf(w, "%-22s %-9s %-8s %12s %9s %7s %7s %9s\n",
		"leaf", "status", "recovery", "rows", "queries", "errors", "cache%", "free")
	for _, h := range rep.Leaves {
		note := ""
		if h.Quarantined {
			note = "  QUARANTINED"
		}
		fmt.Fprintf(w, "%-22s %-9s %-8s %12.0f %9.0f %7.0f %7s %9s%s\n",
			h.Leaf, h.Status, h.Recovery, h.Rows, h.Queries, h.QueryErrors,
			pct(h.CacheHits, h.CacheHits+h.CacheMisses), mb(h.FreeBytes), note)
	}

	// Shard/leaf coverage as this very query saw it: how much of the
	// cluster answered just now.
	fmt.Fprintf(w, "\nleaves: %d/%d active, %d/%d answered this query (%.0f%% of data)\n",
		rep.Active, len(rep.Leaves), rep.LeavesAnswered, rep.LeavesTotal, 100*rep.Coverage)

	// Slow-query rate from the aggregator's own metric snapshots (needs
	// scuba-aggd -telemetry-interval; silently n/a otherwise).
	if rep.TracedQueries >= 0 && rep.TracedQueries > 0 {
		fmt.Fprintf(w, "queries traced: %.0f, slow: %.0f (%s)\n",
			rep.TracedQueries, rep.SlowQueries, pct(rep.SlowQueries, rep.TracedQueries))
	} else {
		fmt.Fprintln(w, "slow-query rate: n/a (aggregator telemetry off)")
	}
	return nil
}

// maxMetric fetches the newest value of one counter from __system.metrics
// (cumulative, so max over the window is the latest sample). NaN when no
// rows matched.
func maxMetric(c *scuba.Client, from, to int64, name string) float64 {
	q := &scuba.Query{
		Table: scuba.SystemMetricsTable,
		From:  from,
		To:    to + 1,
		Filters: []scuba.Filter{
			{Column: "name", Op: scuba.OpEq, Str: name},
		},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggCount},
			{Op: scuba.AggMax, Column: "value"},
		},
	}
	res, err := c.Query(q)
	if err != nil {
		return math.NaN()
	}
	rows := res.Rows(q)
	if len(rows) == 0 || rows[0].Values[0] == 0 {
		return math.NaN()
	}
	return rows[0].Values[1]
}

func pct(num, den float64) string {
	if den <= 0 {
		return "-"
	}
	return strconv.FormatFloat(100*num/den, 'f', 1, 64) + "%"
}

func mb(b float64) string {
	return strconv.FormatFloat(b/(1<<20), 'f', 0, 64) + "M"
}
