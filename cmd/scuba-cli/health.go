package main

// scuba-cli health renders live cluster health from the cluster's own
// self-telemetry: the __system.leaf_metrics rows the aggregator's scraper
// ingests, queried back through that same aggregator. There is no side
// channel — if health renders, the whole Scuba-on-Scuba loop (scrape →
// sink → leaf ingest → fan-out query) is working.

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"scuba"
)

func runHealth(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	aggAddr := fs.String("agg", "127.0.0.1:9001", "aggregator address (must run with -scrape-interval)")
	window := fs.Duration("window", 2*time.Minute, "how far back to look for telemetry rows")
	watch := fs.Duration("watch", 0, "top-style refresh period (0 = render once)")
	fs.Parse(args) //nolint:errcheck

	c := scuba.DialLeaf(*aggAddr)
	defer c.Close()

	if *watch <= 0 {
		if err := renderHealth(os.Stdout, c, *aggAddr, *window); err != nil {
			log.Fatal(err)
		}
		return
	}
	for {
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err := renderHealth(os.Stdout, c, *aggAddr, *window); err != nil {
			fmt.Printf("health: %v\n", err)
		}
		fmt.Printf("\nrefreshing every %v (ctrl-c to stop)\n", *watch)
		time.Sleep(*watch)
	}
}

// leafHealth is the newest __system.leaf_metrics scrape for one leaf.
type leafHealth struct {
	leaf        string
	status      string
	recovery    string
	rows        float64
	queries     float64
	queryErrors float64
	hits        float64
	misses      float64
	freeBytes   float64
	quarantined bool
}

func renderHealth(w *os.File, c *scuba.Client, aggAddr string, window time.Duration) error {
	now := time.Now().Unix()
	from := now - int64(window/time.Second)

	q := &scuba.Query{
		Table:   scuba.SystemLeafMetricsTable,
		From:    from,
		To:      now + 1,
		GroupBy: []string{"leaf", "status", "recovery"},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggMax, Column: "rows"},
			{Op: scuba.AggMax, Column: "queries"},
			{Op: scuba.AggMax, Column: "query_errors"},
			{Op: scuba.AggMax, Column: "decode_cache_hits"},
			{Op: scuba.AggMax, Column: "decode_cache_misses"},
			{Op: scuba.AggMax, Column: "free_memory"},
			{Op: scuba.AggMax, Column: "quarantined"},
		},
		Limit: 10000,
	}
	res, err := c.Query(q)
	if err != nil {
		return fmt.Errorf("querying %s through %s: %w", scuba.SystemLeafMetricsTable, aggAddr, err)
	}

	// A leaf whose status or recovery path changed inside the window shows
	// up once per combination; the scrape with the most queries observed is
	// the newest (counters are cumulative), so it wins.
	newest := map[string]leafHealth{}
	for _, row := range res.Rows(q) {
		h := leafHealth{
			leaf: row.Key[0], status: row.Key[1], recovery: row.Key[2],
			rows: row.Values[0], queries: row.Values[1], queryErrors: row.Values[2],
			hits: row.Values[3], misses: row.Values[4], freeBytes: row.Values[5],
			quarantined: row.Values[6] > 0,
		}
		if prev, ok := newest[h.leaf]; !ok || h.queries >= prev.queries {
			newest[h.leaf] = h
		}
	}
	leaves := make([]leafHealth, 0, len(newest))
	for _, h := range newest {
		leaves = append(leaves, h)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].leaf < leaves[j].leaf })

	fmt.Fprintf(w, "cluster health via %s (window %v, %s)\n\n",
		aggAddr, window, time.Unix(now, 0).Format("15:04:05"))
	if len(leaves) == 0 {
		fmt.Fprintf(w, "no %s rows in the last %v — is scuba-aggd running with -scrape-interval?\n",
			scuba.SystemLeafMetricsTable, window)
		return nil
	}

	active := 0
	fmt.Fprintf(w, "%-22s %-9s %-8s %12s %9s %7s %7s %9s\n",
		"leaf", "status", "recovery", "rows", "queries", "errors", "cache%", "free")
	for _, h := range leaves {
		if h.status == "ACTIVE" {
			active++
		}
		note := ""
		if h.quarantined {
			note = "  QUARANTINED"
		}
		fmt.Fprintf(w, "%-22s %-9s %-8s %12.0f %9.0f %7.0f %7s %9s%s\n",
			h.leaf, h.status, h.recovery, h.rows, h.queries, h.queryErrors,
			pct(h.hits, h.hits+h.misses), mb(h.freeBytes), note)
	}

	// Shard/leaf coverage as this very query saw it: how much of the
	// cluster answered just now.
	fmt.Fprintf(w, "\nleaves: %d/%d active, %d/%d answered this query (%.0f%% of data)\n",
		active, len(leaves), res.LeavesAnswered, res.LeavesTotal, 100*res.Coverage())

	// Slow-query rate from the aggregator's own metric snapshots (needs
	// scuba-aggd -telemetry-interval; silently n/a otherwise).
	slow := maxMetric(c, from, now, "trace_slow")
	total := maxMetric(c, from, now, "trace_count")
	if !math.IsNaN(slow) && !math.IsNaN(total) && total > 0 {
		fmt.Fprintf(w, "queries traced: %.0f, slow: %.0f (%s)\n", total, slow, pct(slow, total))
	} else {
		fmt.Fprintln(w, "slow-query rate: n/a (aggregator telemetry off)")
	}
	return nil
}

// maxMetric fetches the newest value of one counter from __system.metrics
// (cumulative, so max over the window is the latest sample). NaN when no
// rows matched.
func maxMetric(c *scuba.Client, from, to int64, name string) float64 {
	q := &scuba.Query{
		Table: scuba.SystemMetricsTable,
		From:  from,
		To:    to + 1,
		Filters: []scuba.Filter{
			{Column: "name", Op: scuba.OpEq, Str: name},
		},
		Aggregations: []scuba.Aggregation{
			{Op: scuba.AggCount},
			{Op: scuba.AggMax, Column: "value"},
		},
	}
	res, err := c.Query(q)
	if err != nil {
		return math.NaN()
	}
	rows := res.Rows(q)
	if len(rows) == 0 || rows[0].Values[0] == 0 {
		return math.NaN()
	}
	return rows[0].Values[1]
}

func pct(num, den float64) string {
	if den <= 0 {
		return "-"
	}
	return strconv.FormatFloat(100*num/den, 'f', 1, 64) + "%"
}

func mb(b float64) string {
	return strconv.FormatFloat(b/(1<<20), 'f', 0, 64) + "M"
}
