package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"scuba"
)

// runTrace fetches traces from a scuba-aggd -http listener and renders one
// as a per-leaf waterfall: each span's round trip as a bar against the
// query's end-to-end duration, annotated with the leaf's dominant execution
// phase, recovery source, and work counters, with the slowest leaf called
// out at the bottom — the "why was this query slow" answer in one screen.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	httpAddr := fs.String("http", "127.0.0.1:9091", "scuba-aggd observability (-http) address")
	id := fs.Uint64("id", 0, "show the trace with this ID (0 = the most recent)")
	slow := fs.Bool("slow", false, "read the slow-query ring instead of recent traces")
	list := fs.Bool("list", false, "one line per retained trace instead of a waterfall")
	fs.Parse(args) //nolint:errcheck

	base := *httpAddr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := base + "/debug/traces"
	if *slow {
		url = base + "/debug/slow"
	}
	if *id != 0 {
		url = fmt.Sprintf("%s/debug/traces?id=%d", base, *id)
	}
	body, err := httpGet(url)
	if err != nil {
		log.Fatal(err)
	}
	var dump scuba.TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		log.Fatalf("bad trace JSON from %s: %v", url, err)
	}
	if len(dump.Traces) == 0 {
		fmt.Println("no traces retained (has a query run through this aggregator?)")
		return
	}
	if *list {
		for _, tr := range dump.Traces {
			flag := " "
			if tr.Slow {
				flag = "S"
			}
			fmt.Printf("%s %20d  %s  %9v  %d/%d leaves  %s\n",
				flag, tr.TraceID, tr.Start.Format("15:04:05.000"),
				time.Duration(tr.DurationNanos).Round(time.Microsecond),
				tr.LeavesAnswered, tr.LeavesTotal, tr.Query)
		}
		return
	}
	printWaterfall(dump.Traces[0])
}

func printWaterfall(tr scuba.Trace) {
	head := fmt.Sprintf("trace %d", tr.TraceID)
	if tr.Slow {
		head += "  (slow)"
	}
	fmt.Println(head)
	fmt.Printf("  query:    %s\n", tr.Query)
	fmt.Printf("  start:    %s   duration: %v   leaves: %d/%d answered\n",
		tr.Start.Format("15:04:05.000"),
		time.Duration(tr.DurationNanos).Round(time.Microsecond),
		tr.LeavesAnswered, tr.LeavesTotal)

	width := 0
	for _, sp := range tr.Spans {
		if len(sp.Leaf) > width {
			width = len(sp.Leaf)
		}
	}
	const barWidth = 32
	for _, sp := range tr.Spans {
		bar := renderBar(sp.RTTNanos, tr.DurationNanos, barWidth)
		line := fmt.Sprintf("  %-*s [%s] %9v",
			width, sp.Leaf, bar, time.Duration(sp.RTTNanos).Round(time.Microsecond))
		switch {
		case !sp.Answered:
			line += "  UNANSWERED"
			if sp.Err != "" {
				line += ": " + sp.Err
			}
		case sp.Exec != nil:
			line += "  " + execSummary(sp.Exec)
		}
		fmt.Println(line)
	}

	if slowest := tr.SlowestSpan(); slowest != nil {
		callout := fmt.Sprintf("  slowest leaf: %s (%v)",
			slowest.Leaf, time.Duration(slowest.RTTNanos).Round(time.Microsecond))
		if slowest.Exec != nil {
			if phase, v := slowest.Exec.DominantPhase(); phase != "" {
				callout += fmt.Sprintf(", dominant phase %s (%v)",
					phase, time.Duration(v).Round(time.Microsecond))
			}
		}
		fmt.Println(callout)
	}
}

// execSummary condenses one leaf's ExecStats to a single annotation:
// dominant phase with its share of the leaf's phase time, recovery source,
// and the work counters.
func execSummary(e *scuba.ExecStats) string {
	var parts []string
	if phase, v := e.DominantPhase(); phase != "" {
		total := e.DecodeNanos + e.PruneNanos + e.ScanNanos + e.MergeNanos
		parts = append(parts, fmt.Sprintf("%s %d%%", phase, 100*v/total))
	}
	if e.Recovery != "" {
		parts = append(parts, e.Recovery)
	}
	parts = append(parts, fmt.Sprintf("%d rows", e.RowsScanned))
	if e.BlocksPruned > 0 {
		parts = append(parts, fmt.Sprintf("%d/%d blocks pruned",
			e.BlocksPruned, e.BlocksPruned+e.BlocksScanned))
	}
	if e.CacheHits+e.CacheMisses > 0 {
		parts = append(parts, fmt.Sprintf("cache %d/%d", e.CacheHits, e.CacheHits+e.CacheMisses))
	}
	return strings.Join(parts, " · ")
}

func renderBar(rtt, total int64, width int) string {
	if total <= 0 {
		total = 1
	}
	n := int(rtt * int64(width) / total)
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
