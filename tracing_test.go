package scuba_test

// End-to-end distributed tracing: run two scubad leaves as real OS
// processes — one restarted through shared memory, one through disk, the
// disk one deliberately delayed with fault injection — put scuba-aggd in
// front, run queries over TCP, and read the assembled traces back from
// /debug/traces and /debug/slow. The per-leaf spans must explain where each
// leaf's data came from, where its time went, and which leaf made the query
// slow — and the numbers must agree with each leaf's own /metrics.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"scuba"
)

// metricCounter extracts "counter <name> <value>" from a /metrics dump
// (-1 when absent).
func metricCounter(body, name string) int64 {
	re := regexp.MustCompile(`(?m)^counter ` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		return -1
	}
	return v
}

func TestDistributedTracingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess integration test")
	}
	binDir := t.TempDir()
	leafBin := filepath.Join(binDir, "scubad")
	aggBin := filepath.Join(binDir, "scuba-aggd")
	for _, b := range []struct{ out, pkg string }{
		{leafBin, "./cmd/scubad"},
		{aggBin, "./cmd/scuba-aggd"},
	} {
		build := exec.Command("go", "build", "-o", b.out, b.pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	workDir := t.TempDir()
	type leafProc struct {
		id         int
		addr, http string
		extra      []string
		cmd        *exec.Cmd
	}
	leaves := []*leafProc{
		{id: 0, addr: fmt.Sprintf("127.0.0.1:%d", freePort(t)), http: fmt.Sprintf("127.0.0.1:%d", freePort(t))},
		{id: 1, addr: fmt.Sprintf("127.0.0.1:%d", freePort(t)), http: fmt.Sprintf("127.0.0.1:%d", freePort(t))},
	}
	startLeaf := func(lp *leafProc) {
		args := []string{
			"-id", strconv.Itoa(lp.id),
			"-addr", lp.addr,
			"-http", lp.http,
			"-shm-dir", workDir,
			"-namespace", "tracetest",
			"-disk-root", filepath.Join(workDir, fmt.Sprintf("disk%d", lp.id)),
		}
		args = append(args, lp.extra...)
		lp.cmd = exec.Command(leafBin, args...)
		lp.cmd.Stdout = os.Stderr
		lp.cmd.Stderr = os.Stderr
		if err := lp.cmd.Start(); err != nil {
			t.Fatalf("starting leaf %d: %v", lp.id, err)
		}
	}
	waitReady := func(addr string) {
		c := scuba.DialLeaf(addr)
		defer c.Close()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if err := c.Ping(); err == nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("daemon on %s did not become ready", addr)
	}

	// ---- boot both leaves, load, and restart them on different paths:
	// leaf 0 through shared memory, leaf 1 through disk with every query
	// delayed 200ms by fault injection (the "slow leaf").
	const rowsPerLeaf = 2000
	for _, lp := range leaves {
		startLeaf(lp)
		waitReady(lp.addr)
		c := scuba.DialLeaf(lp.addr)
		gen := scuba.ServiceLogs(int64(17+lp.id), 1700000000)
		if err := c.AddRows("service_logs", gen.NextBatch(rowsPerLeaf)); err != nil {
			t.Fatalf("load leaf %d: %v", lp.id, err)
		}
		if _, err := c.Shutdown(lp.id == 0); err != nil { // leaf 0 shm, leaf 1 disk
			t.Fatalf("shutdown leaf %d: %v", lp.id, err)
		}
		c.Close()
		if err := waitExit(lp.cmd, 10*time.Second); err != nil {
			t.Fatalf("leaf %d did not exit: %v", lp.id, err)
		}
	}
	leaves[1].extra = []string{"-fault", "leaf.query=delay:200ms"}
	for _, lp := range leaves {
		startLeaf(lp)
	}
	defer func() {
		for _, lp := range leaves {
			lp.cmd.Process.Signal(os.Interrupt) //nolint:errcheck
			waitExit(lp.cmd, 10*time.Second)    //nolint:errcheck
		}
	}()
	for _, lp := range leaves {
		waitReady(lp.addr)
	}

	// ---- aggregator over both, with a 100ms fixed slow-query threshold:
	// the delayed leaf guarantees every query is slow.
	aggAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	aggHTTP := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	agg := exec.Command(aggBin,
		"-addr", aggAddr,
		"-http", aggHTTP,
		"-leaves", leaves[0].addr+","+leaves[1].addr,
		"-slow-query", "100ms",
	)
	agg.Stdout = os.Stderr
	agg.Stderr = os.Stderr
	if err := agg.Start(); err != nil {
		t.Fatalf("starting scuba-aggd: %v", err)
	}
	defer func() {
		agg.Process.Signal(os.Interrupt) //nolint:errcheck
		waitExit(agg, 10*time.Second)    //nolint:errcheck
	}()
	waitReady(aggAddr)

	client := scuba.DialLeaf(aggAddr)
	defer client.Close()

	// Three queries: cold (decodes columns — cache misses), warm (same
	// query — cache hits), and one whose filter no row can match (zone maps
	// prune every sealed block).
	scanQ := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}}}
	pruneQ := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
		Filters:      []scuba.Filter{{Column: "latency_ms", Op: scuba.OpGt, Int: 1 << 40, Float: 1 << 40}}}
	for _, q := range []*scuba.Query{scanQ, scanQ, pruneQ} {
		res, err := client.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.LeavesAnswered != 2 {
			t.Fatalf("coverage %d/2 — delayed leaf must still answer", res.LeavesAnswered)
		}
	}

	// ---- read the traces back. Newest first: prune, warm, cold.
	var dump scuba.TraceDump
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+aggHTTP+"/debug/traces")), &dump); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v", err)
	}
	if dump.SlowThresholdNanos != (100 * time.Millisecond).Nanoseconds() {
		t.Errorf("slow_threshold_nanos = %d, want 100ms", dump.SlowThresholdNanos)
	}
	if len(dump.Traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(dump.Traces))
	}
	pruneT, warmT, coldT := dump.Traces[0], dump.Traces[1], dump.Traces[2]

	wantRecovery := map[string]string{
		leaves[0].addr: "memory",
		leaves[1].addr: "disk",
	}
	spanByLeaf := func(tr scuba.Trace) map[string]*scuba.ExecStats {
		t.Helper()
		if tr.TraceID == 0 || tr.LeavesTotal != 2 || tr.LeavesAnswered != 2 || len(tr.Spans) != 2 {
			t.Fatalf("trace incomplete: %+v", tr)
		}
		out := make(map[string]*scuba.ExecStats)
		for _, sp := range tr.Spans {
			if !sp.Answered || sp.Exec == nil || sp.SpanID == 0 || sp.Exec.SpanID != sp.SpanID {
				t.Fatalf("span not answered with exec stats: %+v", sp)
			}
			if sp.RTTNanos < sp.Exec.LatencyNanos {
				t.Errorf("leaf %s RTT %dns < leaf latency %dns", sp.Leaf, sp.RTTNanos, sp.Exec.LatencyNanos)
			}
			out[sp.Leaf] = sp.Exec
		}
		return out
	}

	// Cold trace: per-leaf phase timings, rows, recovery source, cache misses.
	var coldRows int64
	for addr, ex := range spanByLeaf(coldT) {
		if ex.Recovery != wantRecovery[addr] {
			t.Errorf("leaf %s recovery = %q, want %q", addr, ex.Recovery, wantRecovery[addr])
		}
		if ex.LatencyNanos <= 0 || ex.DecodeNanos <= 0 || ex.PruneNanos <= 0 || ex.ScanNanos <= 0 {
			t.Errorf("leaf %s cold phases missing: %+v", addr, ex)
		}
		if ex.CacheMisses <= 0 {
			t.Errorf("leaf %s cold query reported no cache misses: %+v", addr, ex)
		}
		coldRows += ex.RowsScanned
	}
	if coldRows != 2*rowsPerLeaf {
		t.Errorf("cold per-span rows sum = %d, want %d", coldRows, 2*rowsPerLeaf)
	}

	// Warm trace: the decode cache answered.
	for addr, ex := range spanByLeaf(warmT) {
		if ex.CacheHits <= 0 {
			t.Errorf("leaf %s warm query reported no cache hits: %+v", addr, ex)
		}
	}

	// Prune trace: zone maps rejected every sealed block on both leaves.
	for addr, ex := range spanByLeaf(pruneT) {
		if ex.BlocksPruned <= 0 {
			t.Errorf("leaf %s pruned no blocks: %+v", addr, ex)
		}
		if ex.RowsScanned != 0 {
			t.Errorf("leaf %s scanned %d rows past an impossible filter", addr, ex.RowsScanned)
		}
	}

	// The delayed leaf is the slowest span of every trace, at >= its 200ms
	// injected delay.
	for _, tr := range dump.Traces {
		sp := tr.SlowestSpan()
		if sp == nil || sp.Leaf != leaves[1].addr {
			t.Errorf("slowest span = %+v, want delayed leaf %s", sp, leaves[1].addr)
		} else if sp.RTTNanos < (200 * time.Millisecond).Nanoseconds() {
			t.Errorf("delayed leaf RTT = %v, want >= 200ms", time.Duration(sp.RTTNanos))
		}
		if !tr.Slow {
			t.Errorf("trace %d not marked slow despite the delayed leaf", tr.TraceID)
		}
	}

	// ---- /debug/slow: the delayed leaf landed every query in the slow log.
	var slow scuba.TraceDump
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+aggHTTP+"/debug/slow")), &slow); err != nil {
		t.Fatalf("bad /debug/slow JSON: %v", err)
	}
	if len(slow.Traces) != 3 {
		t.Fatalf("slow traces = %d, want 3", len(slow.Traces))
	}
	if slow.Traces[0].TraceID != pruneT.TraceID {
		t.Errorf("newest slow trace = %d, want %d", slow.Traces[0].TraceID, pruneT.TraceID)
	}

	// ---- cross-check against each leaf's own telemetry: the recovery path
	// in /debug/recovery and the counters in /metrics must agree with what
	// the spans reported.
	for _, lp := range leaves {
		var rec scuba.RecoveryDump
		if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+lp.http+"/debug/recovery")), &rec); err != nil {
			t.Fatalf("bad /debug/recovery JSON from leaf %d: %v", lp.id, err)
		}
		r, ok := rec.Recovery.(map[string]any)
		if !ok || r["Path"] != wantRecovery[lp.addr] {
			t.Errorf("leaf %d /debug/recovery path = %v, span said %q", lp.id, rec.Recovery, wantRecovery[lp.addr])
		}

		body := httpGetBody(t, "http://"+lp.http+"/metrics")
		ex := spanByLeaf(pruneT)[lp.addr]
		if got := metricCounter(body, "query_blocks_pruned"); got < ex.BlocksPruned {
			t.Errorf("leaf %d /metrics blocks_pruned = %d, span reported %d", lp.id, got, ex.BlocksPruned)
		}
		cold, warm := spanByLeaf(coldT)[lp.addr], spanByLeaf(warmT)[lp.addr]
		if got := metricCounter(body, "query_decode_cache_misses"); got < cold.CacheMisses {
			t.Errorf("leaf %d /metrics cache misses = %d, cold span reported %d", lp.id, got, cold.CacheMisses)
		}
		if got := metricCounter(body, "query_decode_cache_hits"); got < warm.CacheHits {
			t.Errorf("leaf %d /metrics cache hits = %d, warm span reported %d", lp.id, got, warm.CacheHits)
		}
		if !strings.Contains(body, "gauge runtime_goroutines") || !strings.Contains(body, "gauge runtime_heap_bytes") {
			t.Errorf("leaf %d /metrics missing runtime self-metrics:\n%s", lp.id, body)
		}
	}
	// The aggregator's own /metrics carry the trace counters.
	aggBody := httpGetBody(t, "http://"+aggHTTP+"/metrics")
	if got := metricCounter(aggBody, "trace_count"); got != 3 {
		t.Errorf("aggregator trace.count = %d, want 3", got)
	}
	if got := metricCounter(aggBody, "trace_slow"); got != 3 {
		t.Errorf("aggregator trace.slow = %d, want 3", got)
	}
	if got := metricCounter(aggBody, "query_slow"); got != 3 {
		t.Errorf("aggregator query.slow = %d, want 3", got)
	}
}
