package scuba_test

// The instant-on availability gate: a rolling restart with -instant-on must
// bring every scubad replacement back serving correct results in a small
// fraction of the copy-in barrier's time. CI's instant-on-smoke job runs
// this on every PR under -race; it is the enforcement half of experiment
// E22's availability-gap measurement.

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"scuba"
)

// instantOnSmokeRows is sized so the copy-in restore is long enough
// (milliseconds, more under -race) that the <10% ratio measures the
// restart paths and not fixed leaf-boot overhead or scheduler noise.
const instantOnSmokeRows = 1000000

func TestInstantOnRolloverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess instant-on smoke")
	}
	// Race-instrumented daemons: the promoter, scan pins, and view refcounts
	// run under the detector inside scubad itself, not just in this harness.
	raceBin, err := scuba.BuildScubadRace(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One promote worker keeps each replacement's promotion window open long
	// enough for the probe to catch queries mid-promotion.
	pc := startRolloverCluster(t, 1, 2, instantOnSmokeRows,
		func(cfg *scuba.ProcConfig) {
			cfg.BinPath = raceBin
			cfg.PromoteWorkers = 1
		})
	n := len(pc.Leaves())
	q := rolloverQuery()
	agg := pc.AggClient()

	baseline, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := baseline.Rows(q)
	if len(baseRows) == 0 {
		t.Fatal("baseline returned no rows")
	}

	roll := scuba.ProcRolloverConfig{
		BatchFraction: 0.5,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
		Tables:        []string{"service_logs"},
	}

	// Rollover 1: the copy-in barrier (E15's restart path). Each leaf's
	// recovery duration is the time Start spent restoring before the
	// process could serve — the denominator of the availability ratio.
	rep1, err := pc.ProcRollover(roll)
	if err != nil {
		t.Fatalf("copy-in rollover: %v", err)
	}
	if rep1.MemoryRecoveries != n {
		t.Fatalf("copy-in rollover: memory recoveries = %d, want %d (report: %+v)",
			rep1.MemoryRecoveries, n, rep1)
	}
	// The copy-in time is the restore's data-proportional part (the table
	// copy), not whole-Start: fixed leaf-boot costs (WAL open, disk store)
	// are identical on both paths and independent of data size, so at
	// production scale they vanish — at smoke scale they'd drown the signal.
	// Minimum over the leaves (every leaf holds all rows at R=2): restarts
	// happen one batch at a time, so each leaf measures the same restore and
	// noise (scheduler preemption, GC, the previous batch's background work
	// on a starved runner) can only inflate a sample. The min is the
	// standard noise-robust estimator of the intrinsic time on both sides
	// of the ratio.
	var copyIn time.Duration
	for _, l := range pc.Leaves() {
		rec, err := l.Recovery()
		if err != nil {
			t.Fatal(err)
		}
		d := rec.RestoreDuration()
		t.Logf("leaf %d copy-in restore %v", l.ID, d)
		if d <= 0 {
			t.Fatalf("leaf %d reported no copy-in restore duration", l.ID)
		}
		if copyIn == 0 || d < copyIn {
			copyIn = d
		}
	}

	// Rollover 2: instant-on over the same data, unprobed — the ratio
	// measurement. Like the E22 harness, the gap rollover and the probed
	// rollover are separate: a probe's race-instrumented scans timeslice
	// against a restoring leaf's validation on a small box and would turn a
	// ~250µs validation into scheduler noise.
	pc.SetInstantOn(true)
	roll.MaxAvailabilityGap = 30 * time.Second // sanity bound, not the gate
	rep2, err := pc.ProcRollover(roll)
	if err != nil {
		t.Fatalf("instant-on rollover: %v", err)
	}
	if rep2.ShmViewRecoveries != n {
		t.Fatalf("instant-on rollover: shm-view recoveries = %d, want %d (report: %+v)",
			rep2.ShmViewRecoveries, n, rep2)
	}
	waitPromotionDrained(t, pc)

	// Same statistic as copyIn: the fastest clean measurement of the
	// validation gap. (The later batch's validation can timeslice against
	// the earlier batch's background promotion on a starved runner — by
	// design promotion is backgrounded, but it pollutes that sample.)
	var gap time.Duration
	for _, l := range pc.Leaves() {
		rec, err := l.Recovery()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Path != string(scuba.RecoveryShmView) {
			t.Errorf("leaf %d recovered via %q, want shm-view", l.ID, rec.Path)
		}
		if rec.PromotedBlocks == 0 {
			t.Errorf("leaf %d promoted no blocks", l.ID)
		}
		d := rec.RestoreDuration()
		t.Logf("leaf %d instant-on restore %v", l.ID, d)
		if d <= 0 {
			t.Fatalf("leaf %d reported no instant-on restore duration", l.ID)
		}
		if gap == 0 || d < gap {
			gap = d
		}
	}

	// The gate's ratio half: the instant-on restore (validation only) under
	// 10% of the copy-in restore. The 10% contract assumes the validation
	// CRC can spread across ≥2 cores (checksumParallel) while the copy-in
	// decode stays serial per table — true on CI runners. A single-core box
	// runs the CRC serially, where the intrinsic asm-CRC-to-race-decode
	// ratio is already ~9%, so the gate falls back to 20% there rather than
	// asserting on scheduler noise.
	barDiv := time.Duration(10)
	if runtime.NumCPU() == 1 {
		barDiv = 5
	}
	if gap*barDiv >= copyIn {
		t.Errorf("instant-on restore %v is not <1/%d of the copy-in restore %v",
			gap, barDiv, copyIn)
	}

	// Rollover 3: instant-on again, under a continuous byte-identical query
	// probe that keeps running until every leaf's background promotion
	// drains — zero wrong results during restart, serving-from-shm,
	// promotion, and the handoff is the correctness half of the gate.
	probe := scuba.StartAvailabilityProbe(agg, scuba.ProbeConfig{
		Query: q,
		Check: func(res *scuba.Result) error {
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				return errors.New("result drifted from baseline")
			}
			return nil
		},
	})
	rep3, err := pc.ProcRollover(roll)
	if err != nil {
		probe.Stop()
		t.Fatalf("probed instant-on rollover: %v", err)
	}
	if rep3.ShmViewRecoveries != n {
		t.Fatalf("probed instant-on rollover: shm-view recoveries = %d, want %d (report: %+v)",
			rep3.ShmViewRecoveries, n, rep3)
	}
	waitPromotionDrained(t, pc)
	avail := probe.Stop()

	if avail.Queries == 0 {
		t.Fatal("no queries completed during the instant-on rollover")
	}
	if avail.Errors != 0 {
		t.Errorf("%d of %d queries failed during the instant-on rollover", avail.Errors, avail.Queries)
	}
	if avail.Wrong != 0 {
		t.Errorf("%d of %d queries returned non-baseline results during promotion", avail.Wrong, avail.Queries)
	}
	after, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Rows(q), baseRows) {
		t.Error("post-promotion result differs from baseline")
	}
	t.Logf("copy-in restore %v vs instant-on gap %v (%.1f%%); %d probe queries, %d wrong; max boot-to-ping gap %v",
		copyIn, gap, 100*float64(gap)/float64(copyIn), avail.Queries, avail.Wrong, rep3.MaxGap)
}

// waitPromotionDrained polls /debug/recovery until no leaf still serves any
// block from a mapped shm view.
func waitPromotionDrained(t *testing.T, pc *scuba.ProcCluster) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resident := int64(0)
		for _, l := range pc.Leaves() {
			rec, err := l.Recovery()
			if err != nil {
				t.Fatal(err)
			}
			resident += rec.ServedFromShm
		}
		if resident == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("promotion never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
