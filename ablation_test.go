// Ablation benchmarks for the design choices DESIGN.md calls out: the
// paper's two-random-choice placement, the copy-one-RBC-at-a-time shutdown,
// the estimate-then-grow segment sizing (Figure 6), and the LZ4 byte stage
// on top of the value transforms.
package scuba_test

import (
	"fmt"
	"testing"

	"scuba"
	"scuba/internal/codec"
	"scuba/internal/codec/lz4"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/tailer"
)

// BenchmarkAblationPlacement compares the paper's two-random-choice policy
// against uniform random placement on a heterogeneous cluster (half the
// leaves have twice the capacity). Two-choice balances *free memory* —
// bigger leaves deliberately absorb more data — so the reported metric is
// the relative spread of free memory, (max-min)/mean: lower is better.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, pol := range []struct {
		name   string
		policy tailer.Policy
	}{{"two-choice", tailer.PolicyTwoChoice}, {"random", tailer.PolicyRandom}} {
		b.Run(pol.name, func(b *testing.B) {
			var freeSpread float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := newBenchEnv(b)
				const n = 8
				targets := make([]tailer.Target, n)
				leaves := make([]*scuba.Leaf, n)
				for j := range targets {
					budget := int64(2 << 20)
					if j%2 == 0 {
						budget = 4 << 20 // heterogeneous capacity
					}
					l, err := scuba.NewLeaf(scuba.LeafConfig{
						ID:           j,
						Shm:          scuba.ShmOptions{Dir: e.dir, Namespace: "abl"},
						MemoryBudget: budget,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := l.Start(); err != nil {
						b.Fatal(err)
					}
					leaves[j] = l
					targets[j] = benchTarget{l}
				}
				placer := scuba.NewPlacer(targets, int64(i)+1)
				placer.Policy = pol.policy
				gen := scuba.ServiceLogs(7, 1700000000)
				b.StartTimer()
				for k := 0; k < 2000; k++ {
					if _, err := placer.Place("service_logs", gen.NextBatch(100)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for _, l := range leaves {
					if err := l.SealAll(); err != nil {
						b.Fatal(err)
					}
				}
				minF, maxF, sumF := int64(1<<62), int64(0), int64(0)
				for _, l := range leaves {
					free := l.Stats().FreeMemory
					minF, maxF, sumF = min(minF, free), max(maxF, free), sumF+free
				}
				if sumF > 0 {
					mean := float64(sumF) / float64(len(leaves))
					freeSpread = float64(maxF-minF) / mean
				}
				b.StartTimer()
			}
			b.ReportMetric(freeSpread, "free-spread")
		})
	}
}

// BenchmarkAblationCopyGranularity compares the shutdown copy done one
// column at a time (the paper's footprint-bounding choice, §4.4) against
// building the whole block image in one heap buffer first. Throughput is
// similar; the whole-buffer variant allocates the entire image on the heap,
// which is exactly what the paper cannot afford at 10-15 GB per leaf.
func BenchmarkAblationCopyGranularity(b *testing.B) {
	block := buildBigBlock(b, 65536)
	size := block.ImageSize()
	dst := make([]byte, size)

	b.Run("rbc-at-a-time", func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			w, err := block.NewImageWriter(dst)
			if err != nil {
				b.Fatal(err)
			}
			for !w.Done() {
				w.CopyColumn()
			}
		}
	})
	b.Run("whole-image-alloc", func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			img := block.AppendImage(nil) // allocates the full image
			copy(dst, img)
		}
	})
}

func buildBigBlock(b *testing.B, rows int) *rowblock.RowBlock {
	b.Helper()
	gen := scuba.ServiceLogs(42, 1700000000)
	builder := rowblock.NewBuilder(1700000000)
	for _, r := range gen.NextBatch(rows) {
		if err := builder.AddRow(r); err != nil {
			b.Fatal(err)
		}
	}
	rb, err := builder.Seal()
	if err != nil {
		b.Fatal(err)
	}
	return rb
}

// BenchmarkAblationSegmentEstimate measures Figure 6's estimate-then-grow
// against a perfectly sized segment: how much do the remap-and-grow cycles
// cost when the initial estimate is badly wrong?
func BenchmarkAblationSegmentEstimate(b *testing.B) {
	block := buildBigBlock(b, 65536)
	total := int64(block.ImageSize())
	for _, est := range []struct {
		name     string
		estimate int64
	}{
		{"exact", total},
		{"half", total / 2},
		{"tiny", 4096},
	} {
		b.Run(est.name, func(b *testing.B) {
			dir := b.TempDir()
			m := shm.NewManager(0, shm.Options{Dir: dir, Namespace: "abl"})
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				w, err := shm.CreateTableSegment(m, fmt.Sprintf("seg-%d", i%4), "t", est.estimate)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.WriteBlock(block, false); err != nil {
					b.Fatal(err)
				}
				if err := w.Finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLZ4Stage quantifies what the byte-level LZ4 stage buys on
// top of the value transforms ("at least two methods per column", §2.1).
func BenchmarkAblationLZ4Stage(b *testing.B) {
	// A realistic near-monotonic time column.
	times := make([]int64, 65536)
	ts := int64(1700000000)
	for i := range times {
		ts += int64(i % 3)
		times[i] = ts
	}
	transformed := codec.EncodeDeltaBPI64(nil, times)

	b.Run("delta-bitpack-only", func(b *testing.B) {
		b.SetBytes(int64(len(times) * 8))
		var size int
		for i := 0; i < b.N; i++ {
			size = len(codec.EncodeDeltaBPI64(nil, times))
		}
		b.ReportMetric(float64(len(times)*8)/float64(size), "ratio")
	})
	b.Run("delta-bitpack-lz4", func(b *testing.B) {
		b.SetBytes(int64(len(times) * 8))
		var size int
		for i := 0; i < b.N; i++ {
			comp, err := lz4.Compress(nil, transformed)
			if err != nil {
				b.Fatal(err)
			}
			size = len(comp)
		}
		b.ReportMetric(float64(len(times)*8)/float64(size), "ratio")
	})
	b.Run("lz4-only-no-transform", func(b *testing.B) {
		raw := make([]byte, 0, len(times)*8)
		for _, v := range times {
			raw = append(raw, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		b.SetBytes(int64(len(raw)))
		var size int
		for i := 0; i < b.N; i++ {
			comp, err := lz4.Compress(nil, raw)
			if err != nil {
				b.Fatal(err)
			}
			size = len(comp)
		}
		b.ReportMetric(float64(len(raw))/float64(size), "ratio")
	})
}
