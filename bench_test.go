// Benchmarks regenerating the paper's quantitative results (one bench per
// experiment in DESIGN.md §4; EXPERIMENTS.md records paper-vs-measured).
// Run: go test -bench=. -benchmem
package scuba_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scuba"
	"scuba/internal/tailer"
)

const benchRows = 100000

// TestMain lets CI measure what the continuous profiler costs the paths
// these benchmarks time: with SCUBA_BENCH_PROFILE=1 the whole benchmark run
// executes under a profiler at the production duty cycle (5s window / 60s
// interval, scaled 10x so short runs still span several capture windows),
// with the rows discarded. The bench gate compares BenchmarkScan* medians
// from a plain run against a profiled run.
func TestMain(m *testing.M) {
	if os.Getenv("SCUBA_BENCH_PROFILE") == "1" {
		sink := scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
			Emit:            func(string, []scuba.Row) error { return nil },
			Source:          "bench",
			MetricsInterval: -1,
		})
		prof := scuba.NewProfiler(scuba.ProfilerConfig{
			Sink:     sink,
			Source:   "bench",
			Interval: 6 * time.Second,
			Window:   500 * time.Millisecond,
		})
		code := m.Run()
		prof.Close()
		sink.Close()
		os.Exit(code)
	}
	os.Exit(m.Run())
}

type benchEnv struct {
	dir string
}

func newBenchEnv(b *testing.B) benchEnv {
	b.Helper()
	dir, err := os.MkdirTemp("", "scuba-bench-")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	return benchEnv{dir: dir}
}

func (e benchEnv) config(id int, format scuba.DiskFormat) scuba.LeafConfig {
	return scuba.LeafConfig{
		ID:           id,
		Shm:          scuba.ShmOptions{Dir: e.dir, Namespace: "bench"},
		DiskRoot:     filepath.Join(e.dir, "disk"),
		DiskFormat:   format,
		MemoryBudget: 8 << 30,
	}
}

func (e benchEnv) startLoaded(b *testing.B, id int, format scuba.DiskFormat, rows int) (*scuba.Leaf, int64) {
	b.Helper()
	l, err := scuba.NewLeaf(e.config(id, format))
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Start(); err != nil {
		b.Fatal(err)
	}
	gen := scuba.ServiceLogs(42, 1700000000)
	for sent := 0; sent < rows; sent += 10000 {
		n := min(10000, rows-sent)
		if err := l.AddRows("service_logs", gen.NextBatch(n)); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.SealAll(); err != nil {
		b.Fatal(err)
	}
	return l, l.Stats().Bytes
}

// ---- E1/E2: restart paths ----

// BenchmarkShutdownToShm measures Figure 6: copy every table to shared
// memory one RBC at a time and exit (paper: 3-4 s for 10-15 GB).
func BenchmarkShutdownToShm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		l, bytes := e.startLoaded(b, 0, scuba.FormatRow, benchRows)
		if _, err := l.SyncToDisk(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(bytes)
		b.StartTimer()
		if _, err := l.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestartFromShm measures Figure 7: the paper's 2-3 minute path.
func BenchmarkRestartFromShm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		l, bytes := e.startLoaded(b, 0, scuba.FormatRow, benchRows)
		if _, err := l.Shutdown(); err != nil {
			b.Fatal(err)
		}
		nu, err := scuba.NewLeaf(e.config(0, scuba.FormatRow))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(bytes)
		b.StartTimer()
		if err := nu.Start(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if nu.Recovery().Path != scuba.RecoveryMemory {
			b.Fatalf("recovery = %v", nu.Recovery().Path)
		}
		b.StartTimer()
	}
}

// BenchmarkRestartFirstQuery measures the instant-on availability gap: from
// replacement Start through the first correct query answer, served zero-copy
// from the mmap'd shm backup while background promotion is still running.
// Compare against BenchmarkRestartFromShm, which pays the full copy-in
// before Start returns.
func BenchmarkRestartFirstQuery(b *testing.B) {
	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 62,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		l, bytes := e.startLoaded(b, 0, scuba.FormatRow, benchRows)
		if _, err := l.Shutdown(); err != nil {
			b.Fatal(err)
		}
		cfg := e.config(0, scuba.FormatRow)
		cfg.InstantOn = true
		nu, err := scuba.NewLeaf(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(bytes)
		b.StartTimer()
		if err := nu.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := nu.Query(q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if nu.Recovery().Path != scuba.RecoveryShmView {
			b.Fatalf("recovery = %v", nu.Recovery().Path)
		}
		if _, err := nu.ShutdownToDisk(); err != nil { // stops the promoter
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkRestartFromDisk measures the baseline: read the row-format
// backup and translate it to the memory format (the paper's 2.5-3 h path).
func BenchmarkRestartFromDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		l, bytes := e.startLoaded(b, 0, scuba.FormatRow, benchRows)
		if _, err := l.ShutdownToDisk(); err != nil {
			b.Fatal(err)
		}
		nu, err := scuba.NewLeaf(e.config(0, scuba.FormatRow))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(bytes)
		b.StartTimer()
		if err := nu.Start(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestartFromDiskColumnar measures E8, the §6 future work: the shm
// block format used as the disk format, removing the translate cost.
func BenchmarkRestartFromDiskColumnar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		l, bytes := e.startLoaded(b, 0, scuba.FormatColumnar, benchRows)
		if _, err := l.ShutdownToDisk(); err != nil {
			b.Fatal(err)
		}
		nu, err := scuba.NewLeaf(e.config(0, scuba.FormatColumnar))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(bytes)
		b.StartTimer()
		if err := nu.Start(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3/E4: rollover ----

// BenchmarkRolloverShm upgrades a live 16-leaf mini-cluster through shared
// memory, 2 leaves per batch.
func BenchmarkRolloverShm(b *testing.B) {
	benchmarkRollover(b, true)
}

// BenchmarkRolloverDisk is the disk-recovery rollover baseline.
func BenchmarkRolloverDisk(b *testing.B) {
	benchmarkRollover(b, false)
}

func benchmarkRollover(b *testing.B, useShm bool) {
	version := 2
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := newBenchEnv(b)
		c, err := scuba.NewCluster(scuba.ClusterConfig{
			Machines: 4, LeavesPerMachine: 4,
			ShmDir: e.dir, DiskRoot: filepath.Join(e.dir, "disk"),
			Namespace: "bench", MemoryBudgetPerLeaf: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		placer := scuba.NewPlacer(c.Targets(), 1)
		gen := scuba.ServiceLogs(1, 1700000000)
		for sent := 0; sent < benchRows; sent += 1000 {
			if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		rep, err := c.Rollover(scuba.RolloverConfig{
			BatchFraction: 0.125, UseShm: useShm, TargetVersion: version,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		version++
		if rep.MinAvailability < 0.8 {
			b.Fatalf("availability dropped to %v", rep.MinAvailability)
		}
		b.StartTimer()
	}
}

// BenchmarkRolloverSim runs the paper-scale discrete-event model (E3-E5);
// the interesting output is the reported metrics, not ns/op.
func BenchmarkRolloverSim(b *testing.B) {
	p := scuba.DefaultSimParams()
	var shmH, diskH float64
	for i := 0; i < b.N; i++ {
		shmH = p.SimulateRollover(true).Total.Hours()
		diskH = p.SimulateRollover(false).Total.Hours()
	}
	b.ReportMetric(shmH, "shm-hours")
	b.ReportMetric(diskH, "disk-hours")
	b.ReportMetric(diskH/shmH, "speedup")
}

// ---- E6: parallel restarts ----

func BenchmarkParallelRestart(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("leaves=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := newBenchEnv(b)
				for id := 0; id < k; id++ {
					l, _ := e.startLoaded(b, id, scuba.FormatRow, benchRows/4)
					if _, err := l.Shutdown(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for id := 0; id < k; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						l, err := scuba.NewLeaf(e.config(id, scuba.FormatRow))
						if err != nil {
							panic(err)
						}
						if err := l.Start(); err != nil {
							panic(err)
						}
					}(id)
				}
				wg.Wait()
			}
		})
	}
}

// ---- E14: restart copy worker sweep ----

// BenchmarkShutdownRestoreWorkers sweeps the restart-path copy pool over a
// multi-table leaf: each iteration is one full shutdown+restore cycle. The
// per-table copy is pure memory bandwidth, so wall clock should drop as
// workers are added until the memory bus saturates.
func BenchmarkShutdownRestoreWorkers(b *testing.B) {
	const tables = 16
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := newBenchEnv(b)
				cfg := e.config(0, scuba.FormatRow)
				cfg.CopyWorkers = workers
				l, err := scuba.NewLeaf(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := l.Start(); err != nil {
					b.Fatal(err)
				}
				for t := 0; t < tables; t++ {
					gen := scuba.ServiceLogs(int64(t+1), 1700000000)
					if err := l.AddRows(fmt.Sprintf("service_logs_%02d", t), gen.NextBatch(benchRows/8)); err != nil {
						b.Fatal(err)
					}
				}
				if err := l.SealAll(); err != nil {
					b.Fatal(err)
				}
				if _, err := l.SyncToDisk(); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(l.Stats().Bytes)
				b.StartTimer()
				if _, err := l.Shutdown(); err != nil {
					b.Fatal(err)
				}
				nu, err := scuba.NewLeaf(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := nu.Start(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if nu.Recovery().Path != scuba.RecoveryMemory {
					b.Fatalf("recovery = %v", nu.Recovery().Path)
				}
				b.StartTimer()
			}
		})
	}
}

// ---- E7: compression ----

// BenchmarkCompressionRatio seals one full row block of service logs and
// reports the compression ratio the paper discusses (§2.1).
func BenchmarkCompressionRatio(b *testing.B) {
	gen := scuba.ServiceLogs(42, 1700000000)
	rows := gen.NextBatch(65536)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := benchEnv{dir: b.TempDir()}
		l, err := scuba.NewLeaf(e.config(0, scuba.FormatRow))
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Start(); err != nil {
			b.Fatal(err)
		}
		if err := l.AddRows("service_logs", rows); err != nil {
			b.Fatal(err)
		}
		if err := l.SealAll(); err != nil {
			b.Fatal(err)
		}
		raw := int64(65536 * 60) // ~60 raw bytes per row in this workload
		ratio = float64(raw) / float64(l.Stats().Bytes)
	}
	b.ReportMetric(ratio, "ratio")
}

// ---- E10: tailer placement ----

func BenchmarkTailerPlacement(b *testing.B) {
	e := newBenchEnv(b)
	const nLeaves = 8
	targets := make([]tailer.Target, nLeaves)
	for i := range targets {
		l, _ := e.startLoaded(b, i, scuba.FormatRow, 0)
		targets[i] = benchTarget{l}
	}
	placer := scuba.NewPlacer(targets, 99)
	gen := scuba.ServiceLogs(3, 1700000000)
	batch := gen.NextBatch(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placer.Place("service_logs", batch); err != nil {
			b.Fatal(err)
		}
	}
}

type benchTarget struct{ l *scuba.Leaf }

func (t benchTarget) Stats() (scuba.LeafStats, error) { return t.l.Stats(), nil }
func (t benchTarget) AddRows(table string, rows []scuba.Row) error {
	return t.l.AddRows(table, rows)
}

// ---- E11: queries ----

func BenchmarkQueryCount(b *testing.B) {
	benchmarkQuery(b, &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	})
}

func BenchmarkQueryGroupBy(b *testing.B) {
	benchmarkQuery(b, &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggAvg, Column: "latency_ms"}},
		GroupBy:      []string{"service"},
	})
}

func BenchmarkQueryFiltered(b *testing.B) {
	benchmarkQuery(b, &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Filters:      []scuba.Filter{{Column: "status", Op: scuba.OpGe, Int: 500}},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggP99, Column: "latency_ms"}},
		GroupBy:      []string{"host"},
		Limit:        10,
	})
}

// BenchmarkQueryTimePruned measures the min/max-time block skip (§2.1): a
// narrow window touches one block no matter how large the table is.
func BenchmarkQueryTimePruned(b *testing.B) {
	benchmarkQuery(b, &scuba.Query{
		Table: "service_logs", From: 1700000000, To: 1700000010,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
	})
}

func benchmarkQuery(b *testing.B, q *scuba.Query) {
	e := newBenchEnv(b)
	l, bytes := e.startLoaded(b, 0, scuba.FormatRow, benchRows*2)
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ingest ----

func BenchmarkIngest(b *testing.B) {
	e := newBenchEnv(b)
	l, _ := e.startLoaded(b, 0, scuba.FormatRow, 0)
	gen := scuba.ServiceLogs(42, 1700000000)
	batch := gen.NextBatch(1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AddRows("service_logs", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddRowsWAL measures the ingest path with the write-ahead log on:
// each 1000-row batch is framed, CRC'd, appended, and fsynced before the ack
// (WALSyncInterval 0 — the worst-case durable configuration; group commit
// amortizes the fsync in production). Gated against BenchmarkIngest-style
// regressions in CI: the WAL must stay a bounded tax on AddRows.
func BenchmarkAddRowsWAL(b *testing.B) {
	e := newBenchEnv(b)
	cfg := e.config(0, scuba.FormatRow)
	cfg.WALDir = filepath.Join(e.dir, "wal")
	cfg.WALSyncInterval = 0
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Start(); err != nil {
		b.Fatal(err)
	}
	gen := scuba.ServiceLogs(42, 1700000000)
	batch := gen.NextBatch(1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AddRows("service_logs", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregatorFanOut measures a grouped query fanned out over a
// 16-leaf aggregator — the per-query cost users see on dashboards.
func BenchmarkAggregatorFanOut(b *testing.B) {
	e := newBenchEnv(b)
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines: 4, LeavesPerMachine: 4,
		ShmDir: e.dir, DiskRoot: filepath.Join(e.dir, "disk"),
		Namespace: "bench", MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	placer := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ServiceLogs(1, 1700000000)
	for sent := 0; sent < benchRows; sent += 1000 {
		if _, err := placer.Place("service_logs", gen.NextBatch(1000)); err != nil {
			b.Fatal(err)
		}
	}
	agg := c.NewAggregator()
	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggP99, Column: "latency_ms"}},
		GroupBy:      []string{"service"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := agg.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.LeavesAnswered != 16 {
			b.Fatalf("answered = %d", res.LeavesAnswered)
		}
	}
}

// BenchmarkTimeSeriesQuery measures the dashboard time-series panel shape:
// per-minute error counts over the whole dataset.
func BenchmarkTimeSeriesQuery(b *testing.B) {
	benchmarkQuery(b, &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		TimeBucketSeconds: 60,
		Filters:           []scuba.Filter{{Column: "status", Op: scuba.OpGe, Int: 500}},
		Aggregations:      []scuba.Aggregation{{Op: scuba.AggCount}},
	})
}

// ---- E17: in-leaf scan path (parallel workers, zone maps, decode cache) ----

const scanBenchBlocks = 16

// scanBenchLeaf loads one table as scanBenchBlocks sealed blocks whose "seq"
// column increases monotonically, so every block's zone map covers a disjoint
// range and a point filter can prune all but one block.
func scanBenchLeaf(b *testing.B, workers int, cacheBytes int64) *scuba.Leaf {
	return scanBenchLeafReg(b, workers, cacheBytes, nil)
}

// scanBenchLeafReg is scanBenchLeaf with a metrics registry attached, for
// the self-telemetry overhead pair (E20).
func scanBenchLeafReg(b *testing.B, workers int, cacheBytes int64, reg *scuba.MetricsRegistry) *scuba.Leaf {
	b.Helper()
	e := newBenchEnv(b)
	cfg := e.config(0, scuba.FormatRow)
	cfg.ScanWorkers = workers
	cfg.DecodeCacheBytes = cacheBytes
	cfg.Metrics = reg
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Start(); err != nil {
		b.Fatal(err)
	}
	per := benchRows / scanBenchBlocks
	seq := int64(0)
	services := []string{"web", "api", "ads", "search"}
	for blk := 0; blk < scanBenchBlocks; blk++ {
		rows := make([]scuba.Row, per)
		for i := range rows {
			rows[i] = scuba.Row{
				Time: 1700000000 + seq,
				Cols: map[string]scuba.Value{
					"seq":        scuba.Int64(seq),
					"service":    scuba.String(services[seq%4]),
					"latency_ms": scuba.Float64(float64(seq%500) / 2),
				},
			}
			seq++
		}
		if err := l.AddRows("events", rows); err != nil {
			b.Fatal(err)
		}
		if err := l.SealAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(benchRows))
	return l
}

func scanQueryFull() *scuba.Query {
	return &scuba.Query{
		Table: "events", From: 0, To: 1 << 40,
		GroupBy:      []string{"service"},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggAvg, Column: "latency_ms"}},
	}
}

func scanQueryPoint() *scuba.Query {
	return &scuba.Query{
		Table: "events", From: 0, To: 1 << 40,
		Filters:      []scuba.Filter{{Column: "seq", Op: scuba.OpEq, Int: benchRows / 2}},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggAvg, Column: "latency_ms"}},
	}
}

// BenchmarkScanSerialCold is the pre-feature baseline shape: one worker, no
// decode cache, full-table group-by.
func BenchmarkScanSerialCold(b *testing.B) {
	l := scanBenchLeaf(b, 1, 0)
	q := scanQueryFull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanParallel sweeps the scan worker pool over the same
// full-table query (speedup needs >1 core; on one core it should only
// add bounded overhead).
func BenchmarkScanParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			l := scanBenchLeaf(b, workers, 0)
			q := scanQueryFull()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanWarmCache repeats the full-table query against a warm
// decoded-column cache — the repeated-dashboard case the cache exists for.
func BenchmarkScanWarmCache(b *testing.B) {
	l := scanBenchLeaf(b, 1, 256<<20)
	q := scanQueryFull()
	if _, err := l.Query(q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanTraced runs the full-table query through the traced entry
// point — phase timing, ExecStats assembly and span echo included. Compare
// against BenchmarkScanSerialCold: the delta is the tracing overhead on the
// hot path, and it must stay in the noise (the ~2% acceptance bar in
// EXPERIMENTS.md E18).
func BenchmarkScanTraced(b *testing.B) {
	l := scanBenchLeaf(b, 1, 0)
	q := scanQueryFull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := scuba.TraceContext{TraceID: uint64(i + 1), SpanID: uint64(i + 1)}
		if _, _, err := l.QueryTraced(q, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E20: self-telemetry (Scuba-on-Scuba) overhead on the scan path ----

// BenchmarkScanSinkDisabled is the control half of the E20 pair: the same
// leaf and metrics registry as the enabled variant, but no telemetry sink.
func BenchmarkScanSinkDisabled(b *testing.B) {
	l := scanBenchLeafReg(b, 1, 0, scuba.NewMetricsRegistry())
	q := scanQueryFull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanSinkEnabled runs the same scan while a telemetry sink
// self-ingests the leaf's metric snapshots into its own __system tables
// every 5ms — three orders of magnitude more aggressive than the 15s
// production default, so the measured delta over BenchmarkScanSinkDisabled
// bounds the real tax (the E20 acceptance bar in EXPERIMENTS.md).
func BenchmarkScanSinkEnabled(b *testing.B) {
	reg := scuba.NewMetricsRegistry()
	l := scanBenchLeafReg(b, 1, 0, reg)
	sink := scuba.NewTelemetrySink(scuba.TelemetrySinkConfig{
		Emit:            l.AddRows,
		Source:          "bench",
		Registry:        reg,
		MetricsInterval: 5 * time.Millisecond,
	})
	defer sink.Close()
	q := scanQueryFull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanZonePruned runs a point filter whose zone maps prove all but
// one block can't match; the decode skip is the win being measured.
func BenchmarkScanZonePruned(b *testing.B) {
	l := scanBenchLeaf(b, 1, 0)
	q := scanQueryPoint()
	res, err := l.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	if res.BlocksPruned != scanBenchBlocks-1 {
		b.Fatalf("pruned %d of %d blocks", res.BlocksPruned, scanBenchBlocks)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
