// Package scuba is a Go reproduction of the system described in "Fast
// Database Restarts at Facebook" (SIGMOD 2014): Scuba, a distributed
// in-memory column-store analytics database, together with the paper's
// contribution — restarting a database server in minutes instead of hours
// by staging its in-memory state through shared memory across planned
// process restarts.
//
// The package is a facade over the implementation packages:
//
//   - Leaf servers (ingest, query, expire, restart): NewLeaf / Leaf.
//   - Shared memory restart: Leaf.Shutdown + a fresh Leaf.Start recover the
//     full dataset at memory speed; crashes fall back to the disk backup.
//   - Clusters (machines x 8 leaves) with tailer placement, aggregator
//     fan-out and 2%-at-a-time rollovers: NewCluster / Cluster.Rollover.
//   - The query model: Query, Filter, Aggregation, Result.
//   - A discrete-event simulator calibrated to the paper's production
//     numbers: SimParams / DefaultSimParams.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	l, _ := scuba.NewLeaf(scuba.LeafConfig{ID: 0, DiskRoot: "/var/lib/scuba"})
//	_ = l.Start()
//	_ = l.AddRows("events", []scuba.Row{{
//		Time: time.Now().Unix(),
//		Cols: map[string]scuba.Value{"service": scuba.String("web")},
//	}})
//	res, _ := l.Query(&scuba.Query{
//		Table: "events", From: 0, To: 1 << 40,
//		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
//	})
//
// Upgrading without losing memory state:
//
//	info, _ := l.Shutdown() // copy to shared memory, set valid bit, exit
//	// ... exec the new binary; in the new process:
//	l2, _ := scuba.NewLeaf(sameConfig)
//	_ = l2.Start() // restores from shared memory in memory-copy time
package scuba

import (
	"scuba/internal/aggregator"
	"scuba/internal/cluster"
	"scuba/internal/disk"
	"scuba/internal/fault"
	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/profile"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/scribe"
	"scuba/internal/shard"
	"scuba/internal/shm"
	"scuba/internal/sim"
	"scuba/internal/table"
	"scuba/internal/tailer"
	"scuba/internal/wire"
	"scuba/internal/workload"
)

// Data model.
type (
	// Row is one ingested event: a unix timestamp plus named columns.
	Row = rowblock.Row
	// Value is one cell of a row.
	Value = rowblock.Value
	// Schema describes one row block's columns.
	Schema = rowblock.Schema
	// Field is one schema entry.
	Field = rowblock.Field
)

// Typed cell constructors.
var (
	Int64   = rowblock.Int64Value
	Float64 = rowblock.Float64Value
	String  = rowblock.StringValue
	Set     = rowblock.SetValue
)

// Leaf servers.
type (
	// Leaf is one Scuba leaf server.
	Leaf = leaf.Leaf
	// LeafConfig configures a leaf.
	LeafConfig = leaf.Config
	// LeafState is the Figure 5 state machine position.
	LeafState = leaf.State
	// LeafStats summarizes a leaf for placement and dashboards.
	LeafStats = leaf.Stats
	// RecoveryInfo reports how a leaf came up.
	RecoveryInfo = leaf.RecoveryInfo

	RecoveryPath = leaf.RecoveryPath
	// ShutdownInfo reports what a clean shutdown did.
	ShutdownInfo = leaf.ShutdownInfo
	// TableCopyStat is one table's share of a restart-path copy.
	TableCopyStat = leaf.TableCopyStat
	// TableRecovery is one table's recovery path within a mixed restore.
	TableRecovery = leaf.TableRecovery
	// ShmOptions configures the shared memory directory and namespace.
	ShmOptions = shm.Options
	// TableOptions sets per-table retention.
	TableOptions = table.Options
	// DiskFormat selects the backup encoding.
	DiskFormat = disk.Format
)

// NewLeaf creates a leaf server in INIT; call Start to recover and serve.
func NewLeaf(cfg LeafConfig) (*Leaf, error) { return leaf.New(cfg) }

// Disk formats.
const (
	// FormatRow is the default row-oriented backup; recovery pays the
	// paper's translate cost (hours at production scale).
	FormatRow = disk.FormatRow
	// FormatColumnar stores the shared-memory block format on disk — the
	// paper's §6 future work; recovery is nearly translate-free.
	FormatColumnar = disk.FormatColumnar
)

// Recovery paths.
const (
	RecoveryNone   = leaf.RecoveryNone
	RecoveryMemory = leaf.RecoveryMemory
	RecoveryDisk   = leaf.RecoveryDisk
	// RecoveryMixed: the shm restore succeeded for most tables but one or
	// more corrupt segments were quarantined and reloaded from disk.
	RecoveryMixed = leaf.RecoveryMixed
	// RecoveryShmView: instant-on restore — the leaf serves zero-copy from
	// read-only shm mappings while background promotion copies blocks
	// heap-side.
	RecoveryShmView = leaf.RecoveryShmView
	// RecoveryWAL: crash recovery via incremental columnar snapshots plus
	// write-ahead-log tail replay — crash-path parity with the shm restart.
	RecoveryWAL = leaf.RecoveryWAL
)

// Queries.
type (
	// Query is an aggregation query with a required time range.
	Query = query.Query
	// Filter is one column predicate.
	Filter = query.Filter
	// Aggregation names one output: operator over column.
	Aggregation = query.Aggregation
	// Order overrides the default result ordering.
	Order = query.Order
	// Result is a (possibly partial) mergeable query result.
	Result = query.Result
	// ResultRow is one finalized output row.
	ResultRow = query.Row
)

// Aggregation operators.
const (
	AggCount = query.AggCount
	AggSum   = query.AggSum
	AggMin   = query.AggMin
	AggMax   = query.AggMax
	AggAvg   = query.AggAvg
	AggP50   = query.AggP50
	AggP90   = query.AggP90
	AggP99   = query.AggP99
	// AggCountDistinct counts distinct values of a column exactly.
	AggCountDistinct = query.AggCountDistinct
)

// Filter operators.
const (
	OpEq       = query.OpEq
	OpNe       = query.OpNe
	OpLt       = query.OpLt
	OpLe       = query.OpLe
	OpGt       = query.OpGt
	OpGe       = query.OpGe
	OpContains = query.OpContains
)

// FormatResult renders finalized result rows as an aligned text table.
var FormatResult = query.Format

// Clusters.
type (
	// Cluster is machines x leaves with rollover orchestration.
	Cluster = cluster.Cluster
	// ClusterConfig describes a cluster.
	ClusterConfig = cluster.Config
	// ClusterNode is one leaf slot.
	ClusterNode = cluster.Node
	// RolloverConfig drives a system-wide upgrade.
	RolloverConfig = cluster.RolloverConfig
	// RolloverReport summarizes a completed rollover.
	RolloverReport = cluster.RolloverReport
	// RestartOptions control one node restart.
	RestartOptions = cluster.RestartOptions
	// ClusterSnapshot is one Figure 8 dashboard sample.
	ClusterSnapshot = cluster.Snapshot
	// Canary is an experimental deployment on a handful of leaves (§6),
	// revertible through shared memory.
	Canary = cluster.Canary
	// CanaryConfig selects the canaried nodes and version.
	CanaryConfig = cluster.CanaryConfig
)

// NewCluster creates and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ErrRolloverAborted is returned (wrapped) when RolloverConfig.MaxDiskFallback
// stops a rollover because too many restarted leaves fell back to disk.
var ErrRolloverAborted = cluster.ErrRolloverAborted

// Sharding: a rendezvous-hashed shard map (R owners per shard, replicas on
// distinct machines) routes queries to only the leaves owning a table's
// shards, tailers dual-write each batch to every owner, and a rollover
// flips draining leaves out of the map so their shards serve from replicas.
type (
	// ShardMap assigns each (table, shard) to R leaves.
	ShardMap = shard.Map
	// ShardLeaf is one routable leaf (name + machine) in a shard map.
	ShardLeaf = shard.Leaf
	// ShardRouter is a shard map plus live per-leaf statuses.
	ShardRouter = shard.Router
	// ShardStatus is a leaf's routing state (active/draining/down).
	ShardStatus = shard.Status
	// ShardedPlacer dual-writes each batch to every owner of its shard.
	ShardedPlacer = tailer.ShardedPlacer
	// ShardedPlacerStats counts batches, copies, and missed replicas.
	ShardedPlacerStats = tailer.ShardedPlacerStats
)

// Shard routing statuses.
const (
	ShardActive   = shard.StatusActive
	ShardDraining = shard.StatusDraining
	ShardDown     = shard.StatusDown
)

var (
	// NewShardMap builds a rendezvous-hashed map over the leaves.
	NewShardMap = shard.NewMap
	// NewShardRouter wraps a map with live statuses.
	NewShardRouter = shard.NewRouter
	// DecodeShardMap decodes a map fetched over the wire (Client.ShardMap).
	DecodeShardMap = shard.Decode
	// PhysicalTable names shard s of a logical table on a leaf ("T@s").
	PhysicalTable = shard.PhysicalTable
	// NewShardedPlacer builds a dual-writing placer over targets.
	NewShardedPlacer = tailer.NewShardedPlacer
	// ShardRouting turns on shard routing for an aggregator over its leaf
	// addresses; see wire.ShardRouting.
	ShardRouting = wire.ShardRouting
)

// Subprocess clusters: real scubad OS processes orchestrated the way the
// production rollover script works — shutdown-to-shm RPC, process-exit
// waits with kill -9 timeouts, /debug/recovery polling, and shard-map flips
// through the aggregator's admin RPCs — plus a live availability probe.
type (
	// ProcCluster is a cluster of scubad subprocesses with one
	// shard-routing aggregator server over them.
	ProcCluster = cluster.ProcCluster
	// ProcConfig describes a subprocess cluster.
	ProcConfig = cluster.ProcConfig
	// ProcLeaf is one subprocess leaf slot (the identity outlives the
	// process).
	ProcLeaf = cluster.ProcLeaf
	// ProcRolloverConfig drives a subprocess rollover.
	ProcRolloverConfig = cluster.ProcRolloverConfig
	// ProcRolloverReport summarizes one, including quarantined leaves.
	ProcRolloverReport = cluster.ProcRolloverReport
	// ProcRestart records one subprocess restart.
	ProcRestart = cluster.ProcRestart
	// AvailabilityProbe measures live coverage and latency during a
	// rollover.
	AvailabilityProbe = cluster.AvailabilityProbe
	// ProbeConfig sets the probe's query, cadence, and correctness check.
	ProbeConfig = cluster.ProbeConfig
	// AvailabilityReport is the probe's timeline plus summary statistics.
	AvailabilityReport = cluster.AvailabilityReport
	// AvailabilityPoint is one probe sample.
	AvailabilityPoint = cluster.AvailabilityPoint
)

var (
	// BuildScubad compiles the scubad daemon for StartProcCluster.
	BuildScubad = cluster.BuildScubad
	// BuildScubadRace compiles it with the race detector, for drills that
	// should instrument the daemon's own restart concurrency.
	BuildScubadRace = cluster.BuildScubadRace
	// StartProcCluster boots the subprocess leaves and their aggregator.
	StartProcCluster = cluster.StartProcCluster
	// StartAvailabilityProbe begins a continuous query probe.
	StartAvailabilityProbe = cluster.StartProbe
)

// Fault injection (chaos testing): deterministic fault points threaded
// through the restart, disk, wire, and query paths, zero-cost when disarmed.
// Arm them per-test or with the daemons' -fault flag; see internal/fault for
// the site list and the DESIGN.md §8 failure model they exercise.
var (
	// ArmFaults arms one or more points from a spec string, e.g.
	// "shm.copy_in=corrupt;count=1,disk.read=delay:50ms".
	ArmFaults = fault.ArmSpec
	// ResetFaults disarms every fault point.
	ResetFaults = fault.Reset
	// FaultSites lists the registered injection sites.
	FaultSites = fault.Sites
	// DescribeFaults renders the currently armed points.
	DescribeFaults = fault.String
)

// Ingestion pipeline.
type (
	// Bus is the simulated Scribe message bus.
	Bus = scribe.Bus
	// Tailer pumps one Scribe category into the cluster.
	Tailer = tailer.Tailer
	// TailerConfig configures a tailer.
	TailerConfig = tailer.Config
	// Placer implements two-random-choice batch placement.
	Placer = tailer.Placer
	// PlacerTarget is a leaf as seen by a tailer.
	PlacerTarget = tailer.Target
	// Aggregator fans queries out to leaves and merges partial results.
	Aggregator = aggregator.Aggregator
)

// NewBus creates a Scribe-like bus retaining up to retain messages per
// category (0 = default).
func NewBus(retain int) *Bus { return scribe.NewBus(retain) }

// ScribeServer exposes a bus over TCP (run by cmd/scribed); ScribeClient
// satisfies the same Source interface tailers consume in-process.
type (
	ScribeServer = scribe.Server
	ScribeClient = scribe.Client
)

// NewScribeServer serves a bus on addr.
func NewScribeServer(bus *Bus, addr string) (*ScribeServer, error) {
	return scribe.NewServer(bus, addr)
}

// DialScribe connects to a remote scribed.
func DialScribe(addr string) *ScribeClient { return scribe.Dial(addr) }

// TailerCheckpoint persists a tailer's offset across tailer restarts.
type TailerCheckpoint = tailer.Checkpoint

// NewTailerCheckpoint names the checkpoint file.
var NewTailerCheckpoint = tailer.NewCheckpoint

// NewPlacer creates a two-random-choice placer.
var NewPlacer = tailer.NewPlacer

// NewTailer creates a tailer over a bus and placer.
var NewTailer = tailer.New

// EncodeRow and DecodeRow convert rows to and from Scribe payloads.
var (
	EncodeRow = tailer.EncodeRow
	DecodeRow = tailer.DecodeRow
)

// Networking.
type (
	// Server exposes a leaf over TCP.
	Server = wire.Server
	// AggServer exposes an aggregator over TCP (one per machine, Figure 1).
	AggServer = wire.AggServer
	// Client talks to a remote leaf or aggregator; it satisfies both the
	// tailer target and aggregator target interfaces.
	Client = wire.Client
)

// NewServer serves a leaf on addr.
func NewServer(l *Leaf, addr string) (*Server, error) { return wire.NewServer(l, addr) }

// NewServerOn serves a leaf on addr with a caller-owned metrics registry, so
// the daemon's /metrics endpoint shows RPC counters and query latency
// histograms next to its restart-phase timers.
func NewServerOn(l *Leaf, addr string, reg *MetricsRegistry) (*Server, error) {
	return wire.NewServerOn(l, addr, reg)
}

// NewAggServer serves an aggregator over the given leaf addresses.
func NewAggServer(leafAddrs []string, addr string) (*AggServer, error) {
	return wire.NewAggServer(leafAddrs, addr)
}

// NewAggServerOn is NewAggServer with a caller-owned metrics registry wired
// into the aggregator's fan-out instrumentation.
func NewAggServerOn(leafAddrs []string, addr string, reg *MetricsRegistry) (*AggServer, error) {
	return wire.NewAggServerOn(leafAddrs, addr, reg)
}

// DialLeaf connects to a remote leaf (or aggregator) server.
func DialLeaf(addr string) *Client { return wire.Dial(addr) }

// Background maintenance.
type (
	// Maintainer runs a leaf's background disk sync and expiration loop.
	Maintainer = leaf.Maintainer
	// MaintenanceConfig tunes the loop intervals.
	MaintenanceConfig = leaf.MaintenanceConfig
)

// Placement policies (tailer ablation knob).
const (
	PolicyTwoChoice = tailer.PolicyTwoChoice
	PolicyRandom    = tailer.PolicyRandom
)

// Simulation of production scale.
type (
	// SimParams parameterize the discrete-event cluster model.
	SimParams = sim.Params
	// SimReport summarizes one simulated rollover.
	SimReport = sim.Report
)

// DefaultSimParams returns the paper-calibrated cluster model (100 machines
// x 8 leaves x 15 GB).
var DefaultSimParams = sim.DefaultParams

// WeeklyFullAvailability converts a rollover duration into the fraction of
// a week with 100% of data available (the paper's 93% vs 99.5%).
var WeeklyFullAvailability = sim.WeeklyFullAvailability

// Observability: phase-span timers on /metrics plus a crash-surviving
// flight recorder in shared memory (its own segment, namespace "<ns>-obs",
// so the leaf's segment sweep never deletes it). Every daemon takes an
// -http flag and serves /metrics, /debug/recovery and /debug/pprof through
// ObsHandler; a nil Observer or FlightRecorder is a valid no-op.
type (
	// MetricsRegistry is a named counter/gauge/timer/histogram registry.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a whole registry.
	MetricsSnapshot = metrics.Snapshot
	// Observer ties phase spans to a registry and a flight recorder.
	Observer = obs.Observer
	// FlightRecorder is the crash-surviving event ring in shared memory.
	FlightRecorder = obs.Recorder
	// FlightRecorderOptions configure the recorder segment location.
	FlightRecorderOptions = obs.RecorderOptions
	// FlightEvent is one recorded lifecycle event.
	FlightEvent = obs.Event
	// FlightRunSummary condenses one run's events (last phase, failure).
	FlightRunSummary = obs.RunSummary
	// ObsHandlerConfig wires a daemon's sinks into the HTTP mux.
	ObsHandlerConfig = obs.HandlerConfig
	// ObsHTTPServer is one daemon's observability listener.
	ObsHTTPServer = obs.HTTPServer
	// RecoveryDump is the /debug/recovery JSON shape.
	RecoveryDump = obs.RecoveryDump
)

// Tracing: the aggregator stamps every query with a trace ID and per-leaf
// span IDs, the wire envelope (protocol v2) carries the context, each leaf
// answers with an ExecStats report, and the assembled cross-leaf traces are
// served from bounded rings at /debug/traces and /debug/slow on scuba-aggd.
type (
	// TraceContext is the (trace ID, span ID) pair carried in request
	// envelopes; the zero value means untraced.
	TraceContext = obs.TraceContext
	// ExecStats is one leaf's per-query execution report.
	ExecStats = obs.ExecStats
	// LeafSpan is one leaf's slot in an assembled trace.
	LeafSpan = obs.LeafSpan
	// Trace is one query's assembled cross-leaf trace.
	Trace = obs.Trace
	// Tracer assembles traces and retains the recent and slow rings.
	Tracer = obs.Tracer
	// TracerOptions configure ring sizes and the slow threshold.
	TracerOptions = obs.TracerOptions
	// TraceDump is the /debug/traces and /debug/slow JSON shape.
	TraceDump = obs.TraceDump
	// PhaseTimes is a query execution's per-phase time breakdown.
	PhaseTimes = query.PhaseTimes
)

// Tracing constructors.
var (
	// NewTracer creates a tracer (zero options: 64-trace ring, 32-slow
	// ring, adaptive p99 slow threshold).
	NewTracer = obs.NewTracer
	// NewTraceSpanID mints a random nonzero trace or span ID.
	NewTraceSpanID = obs.RandomID
)

// WireProtocolVersion is the RPC envelope version this build speaks
// (version 2 added trace context; old frames still decode).
const WireProtocolVersion = wire.ProtocolVersion

// Flight-recorder event kinds.
const (
	FlightBegin = obs.EventBegin
	FlightEnd   = obs.EventEnd
	FlightFail  = obs.EventFail
	FlightNote  = obs.EventNote
)

// Observability constructors.
var (
	// NewMetricsRegistry creates an empty registry.
	NewMetricsRegistry = metrics.NewRegistry
	// NewObserver ties a registry and recorder together (either may be nil).
	NewObserver = obs.New
	// OpenFlightRecorder opens (or creates) a leaf's flight-recorder
	// segment, returning the previous run's events if any survived.
	OpenFlightRecorder = obs.OpenFlightRecorder
	// SummarizeFlightEvents condenses an event dump into a RunSummary.
	SummarizeFlightEvents = obs.Summarize
	// ObsHandler builds the /metrics + /debug/recovery + pprof mux.
	ObsHandler = obs.Handler
	// StartObsHTTP serves a handler on addr in the background.
	StartObsHTTP = obs.StartHTTP
)

// Self-telemetry (Scuba-on-Scuba): each daemon can ingest its own metric
// snapshots, trace summaries and flight-recorder events into reserved
// __system.* tables through the ordinary leaf path; an aggregator-side
// scraper pulls every leaf's snapshot into __system.leaf_metrics; and every
// /metrics endpoint speaks Prometheus text exposition via
// ?format=prometheus. System tables are plain leaf-local tables, so the
// telemetry rides the shared-memory restart path like any other data.
type (
	// TelemetrySink converts observability events into __system rows and
	// delivers them off the hot path.
	TelemetrySink = obs.Sink
	// TelemetrySinkConfig configures a sink's delivery and sampling.
	TelemetrySinkConfig = obs.SinkConfig
	// ClusterScraper is the aggregator-side loop pulling leaf snapshots.
	ClusterScraper = wire.Scraper
	// ClusterScraperConfig configures the scrape loop.
	ClusterScraperConfig = wire.ScraperConfig
	// ScrapeTarget is one leaf a cluster scraper pulls from.
	ScrapeTarget = wire.ScrapeTarget
)

// Self-telemetry constructors and helpers.
var (
	// NewTelemetrySink builds a sink (Emit is required; see SinkConfig).
	NewTelemetrySink = obs.NewSink
	// StartClusterScraper starts an aggregator-side scrape loop.
	StartClusterScraper = wire.StartScraper
	// IsSystemTable reports whether a table name is reserved telemetry.
	IsSystemTable = obs.IsSystemTable
	// CanonicalMetricName is the snake_case spelling shared by the metrics
	// dump, the Prometheus exposition and the __system.metrics rows.
	CanonicalMetricName = metrics.CanonicalName
	// TelemetrySnapshotRows flattens a metrics snapshot into rows.
	TelemetrySnapshotRows = obs.SnapshotRows
)

// Reserved self-telemetry table names.
const (
	SystemTablePrefix      = obs.SystemTablePrefix
	SystemMetricsTable     = obs.SystemMetricsTable
	SystemTracesTable      = obs.SystemTracesTable
	SystemRecorderTable    = obs.SystemRecorderTable
	SystemRolloverTable    = obs.SystemRolloverTable
	SystemLeafMetricsTable = obs.SystemLeafMetricsTable
	SystemProfilesTable    = obs.SystemProfilesTable
)

// Continuous profiling: every daemon runs a background sampler that folds
// short CPU-profile windows and heap deltas into top-N per-function rows in
// __system.profiles, with anomaly-triggered captures (slow query, restart
// phase over budget, GC-pause spike) tagged with the trace that tripped
// them.
type (
	// ContinuousProfiler is the per-daemon capture loop.
	ContinuousProfiler = profile.Profiler
	// ProfilerConfig configures cadence, windows, budgets and delivery.
	ProfilerConfig = profile.Config
	// PprofProfile is a decoded pprof protobuf (the in-repo decoder).
	PprofProfile = profile.Profile
)

// Continuous-profiling constructors and helpers.
var (
	// NewProfiler builds and starts a profiler (Sink is required).
	NewProfiler = profile.New
	// DecodePprof parses a (gzipped) pprof protobuf profile.
	DecodePprof = profile.Decode
	// EnableContentionProfiling turns on mutex/block profiling so
	// /debug/pprof/mutex and /debug/pprof/block return real data.
	EnableContentionProfiling = profile.EnableContention
)

// Capture triggers recorded in the __system.profiles "trigger" column, and
// the synthetic per-capture totals row.
const (
	ProfileTriggerInterval  = profile.TriggerInterval
	ProfileTriggerSlowQuery = profile.TriggerSlowQuery
	ProfileTriggerRestart   = profile.TriggerRestart
	ProfileTriggerGCPause   = profile.TriggerGCPause
	ProfileTotalFunction    = profile.TotalFunction
)

// Workload generators.
type (
	// Workload generates synthetic rows for one table.
	Workload = workload.Generator
	// WorkloadQueries generates a realistic query mix.
	WorkloadQueries = workload.Queries
)

// Generators for the workloads the paper's introduction motivates.
var (
	ServiceLogs = workload.ServiceLogs
	ErrorEvents = workload.ErrorEvents
	AdsRevenue  = workload.AdsRevenue
	NewQueries  = workload.NewQueries
)
