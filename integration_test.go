package scuba_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"scuba"
)

// TestDaemonUpgradeCycle is the paper's scenario against the real daemon:
// build scubad, run it as a separate OS process, load data over TCP, issue
// the shutdown RPC (the process drains to shared memory files and exits),
// start a second process on the same identity, and verify it recovered from
// shared memory with all data intact.
func TestDaemonUpgradeCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess integration test")
	}
	bin := filepath.Join(t.TempDir(), "scubad")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scubad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scubad: %v\n%s", err, out)
	}

	workDir := t.TempDir()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	startDaemon := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "0",
			"-addr", addr,
			"-shm-dir", workDir,
			"-namespace", "itest",
			"-disk-root", filepath.Join(workDir, "disk"),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting scubad: %v", err)
		}
		return cmd
	}
	waitReady := func(c *scuba.Client) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if err := c.Ping(); err == nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatal("daemon did not become ready")
	}

	// ---- old process ----
	oldProc := startDaemon()
	client := scuba.DialLeaf(addr)
	defer client.Close()
	waitReady(client)

	gen := scuba.ServiceLogs(11, 1700000000)
	const rows = 50000
	for sent := 0; sent < rows; sent += 5000 {
		if err := client.AddRows("service_logs", gen.NextBatch(5000)); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	q := &scuba.Query{Table: "service_logs", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggSum, Column: "latency_ms"}},
		GroupBy:      []string{"service"}}
	before, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	beforeRows := before.Rows(q)
	if len(beforeRows) == 0 {
		t.Fatal("no data before upgrade")
	}

	info, err := client.Shutdown(true)
	if err != nil {
		t.Fatalf("shutdown RPC: %v", err)
	}
	if !info.ToShm || info.BytesCopied == 0 {
		t.Fatalf("shutdown info = %+v", info)
	}
	if err := waitExit(oldProc, 10*time.Second); err != nil {
		t.Fatalf("old daemon did not exit: %v", err)
	}

	// ---- new process (the "upgraded binary") ----
	newProc := startDaemon()
	defer func() {
		newProc.Process.Signal(os.Interrupt) //nolint:errcheck
		waitExit(newProc, 10*time.Second)    //nolint:errcheck
	}()
	client2 := scuba.DialLeaf(addr)
	defer client2.Close()
	waitReady(client2)

	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows == 0 {
		t.Fatal("new daemon has no rows: memory recovery failed")
	}
	after, err := client2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	afterRows := after.Rows(q)
	if len(afterRows) != len(beforeRows) {
		t.Fatalf("groups %d -> %d across upgrade", len(beforeRows), len(afterRows))
	}
	for i := range beforeRows {
		for j := range beforeRows[i].Values {
			if beforeRows[i].Values[j] != afterRows[i].Values[j] {
				t.Errorf("group %v value %d: %v -> %v",
					beforeRows[i].Key, j, beforeRows[i].Values[j], afterRows[i].Values[j])
			}
		}
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		_ = err // non-zero exits are fine; we only need the process gone
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill() //nolint:errcheck
		return fmt.Errorf("timeout after %v", timeout)
	}
}

// TestPipelineEndToEnd drives the full Figure 1 data flow in-process:
// products log to Scribe, tailers place batches on cluster leaves with
// two-random-choice, aggregators answer queries — while a rollover upgrades
// every leaf mid-stream.
func TestPipelineEndToEnd(t *testing.T) {
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            2,
		LeavesPerMachine:    4,
		ShmDir:              t.TempDir(),
		DiskRoot:            t.TempDir(),
		Namespace:           "e2e",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := scuba.NewBus(0)
	placer := scuba.NewPlacer(c.Targets(), 5)
	tl := scuba.NewTailer(scuba.TailerConfig{Category: "error_events", BatchRows: 250}, bus, placer, 0)
	agg := c.NewAggregator()

	gen := scuba.ErrorEvents(9, 1700000000)
	produce := func(n int) {
		for i := 0; i < n; i++ {
			payload, err := scuba.EncodeRow(gen.Next())
			if err != nil {
				t.Fatal(err)
			}
			bus.Append("error_events", payload)
		}
		if _, err := tl.DrainOnce(); err != nil {
			t.Fatal(err)
		}
	}

	produce(10000)
	q := &scuba.Query{Table: "error_events", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}},
		GroupBy:      []string{"product"}}
	res, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range res.Rows(q) {
		total += r.Values[0]
	}
	if total != 10000 {
		t.Fatalf("count before rollover = %v", total)
	}

	// Upgrade the whole cluster while more data streams in.
	rep, err := c.Rollover(scuba.RolloverConfig{BatchFraction: 0.25, UseShm: true, TargetVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskRecoveries != 0 {
		t.Errorf("unexpected disk recoveries: %d", rep.DiskRecoveries)
	}
	produce(5000)

	res2, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, r := range res2.Rows(q) {
		total += r.Values[0]
	}
	if total != 15000 {
		t.Fatalf("count after rollover = %v", total)
	}
	if res2.Coverage() != 1 {
		t.Errorf("coverage = %v", res2.Coverage())
	}
}
