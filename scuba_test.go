package scuba_test

import (
	"testing"

	"scuba"
)

// TestPublicAPIRoundTrip exercises the facade end to end: ingest through
// the public constructors, query, restart through shared memory, query
// again.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := scuba.LeafConfig{
		ID:           0,
		Shm:          scuba.ShmOptions{Dir: t.TempDir(), Namespace: "api-test"},
		DiskRoot:     t.TempDir(),
		DiskFormat:   scuba.FormatRow,
		MemoryBudget: 1 << 30,
	}
	l, err := scuba.NewLeaf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}

	gen := scuba.ServiceLogs(1, 1700000000)
	if err := l.AddRows("service_logs", gen.NextBatch(5000)); err != nil {
		t.Fatal(err)
	}

	q := &scuba.Query{
		Table: "service_logs", From: 0, To: 1 << 40,
		Filters:      []scuba.Filter{{Column: "status", Op: scuba.OpGe, Int: 500}},
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}, {Op: scuba.AggP99, Column: "latency_ms"}},
		GroupBy:      []string{"service"},
		Limit:        5,
	}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Rows(q)
	if len(before) == 0 {
		t.Fatal("no error rows found in workload")
	}
	if out := scuba.FormatResult(q, before); out == "" {
		t.Error("empty formatted result")
	}

	info, err := l.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if !info.ToShm || info.BytesCopied == 0 {
		t.Errorf("shutdown info = %+v", info)
	}

	l2, err := scuba.NewLeaf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Start(); err != nil {
		t.Fatal(err)
	}
	if l2.Recovery().Path != scuba.RecoveryMemory {
		t.Fatalf("recovery path = %v", l2.Recovery().Path)
	}
	res2, err := l2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	after := res2.Rows(q)
	if len(after) != len(before) {
		t.Fatalf("groups %d -> %d across restart", len(before), len(after))
	}
	for i := range before {
		if before[i].Values[0] != after[i].Values[0] {
			t.Errorf("group %d count %v -> %v", i, before[i].Values[0], after[i].Values[0])
		}
	}
}

func TestPublicClusterAndSim(t *testing.T) {
	c, err := scuba.NewCluster(scuba.ClusterConfig{
		Machines:            2,
		LeavesPerMachine:    2,
		ShmDir:              t.TempDir(),
		DiskRoot:            t.TempDir(),
		Namespace:           "api-test",
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := scuba.NewPlacer(c.Targets(), 1)
	gen := scuba.ErrorEvents(2, 1000)
	for i := 0; i < 10; i++ {
		if _, err := p.Place("error_events", gen.NextBatch(100)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Rollover(scuba.RolloverConfig{BatchFraction: 0.25, UseShm: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemoryRecoveries != 4 {
		t.Errorf("memory recoveries = %d", rep.MemoryRecoveries)
	}
	q := &scuba.Query{Table: "error_events", From: 0, To: 1 << 40,
		Aggregations: []scuba.Aggregation{{Op: scuba.AggCount}}}
	res, err := c.NewAggregator().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 1000 {
		t.Errorf("count = %v", rows[0].Values[0])
	}

	// The calibrated simulator is reachable from the facade.
	params := scuba.DefaultSimParams()
	disk := params.SimulateRollover(false)
	mem := params.SimulateRollover(true)
	if disk.Total <= mem.Total {
		t.Errorf("disk %v should exceed shm %v", disk.Total, mem.Total)
	}
	if a := scuba.WeeklyFullAvailability(disk.Total); a > 0.95 {
		t.Errorf("disk weekly availability = %v", a)
	}
}
