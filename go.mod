module scuba

go 1.22
