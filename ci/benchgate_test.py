#!/usr/bin/env python3
"""Unit tests for benchgate.py, focused on the no-baseline neutral path: a
PR that adds a benchmark under the gate has no merge-base numbers to
compare against, and the gate must exit 0 with a clear message — not crash
on a missing file and not fail the PR.

Run directly (python3 ci/benchgate_test.py) or via unittest discovery.
"""

import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import benchgate  # noqa: E402

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "benchgate.py")


def bench_output(named_ns):
    lines = []
    for name, ns in named_ns.items():
        for factor in (0.98, 1.0, 1.02):
            lines.append(f"{name}-4  100  {ns * factor:.0f} ns/op  8 B/op")
    return "\n".join(lines)


def run_gate(base_path, head_path, *extra):
    return subprocess.run(
        [sys.executable, GATE, base_path, head_path, *extra],
        capture_output=True, text=True)


class CompareTest(unittest.TestCase):
    def test_regression_detected(self):
        base = bench_output({"BenchmarkScanA": 1000})
        head = bench_output({"BenchmarkScanA": 1300})
        fails, _, compared = benchgate.compare(base, head, 15.0, "BenchmarkScan")
        self.assertEqual(fails, ["BenchmarkScanA"])
        self.assertEqual(compared, 1)

    def test_new_benchmark_skipped_but_existing_still_gated(self):
        base = bench_output({"BenchmarkScanA": 1000})
        head = bench_output({"BenchmarkScanA": 1010, "BenchmarkScanNew": 50})
        fails, lines, compared = benchgate.compare(base, head, 15.0, "BenchmarkScan")
        self.assertEqual(fails, [])
        self.assertEqual(compared, 1)
        self.assertTrue(any("no baseline" in l for l in lines))

    def test_empty_baseline_is_neutral(self):
        head = bench_output({"BenchmarkRestartFirstQuery": 500})
        fails, _, compared = benchgate.compare("", head, 15.0, "BenchmarkRestart")
        self.assertEqual(fails, [])
        self.assertEqual(compared, 0)


class CLITest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, text):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            f.write(text)
        return path

    def test_benchmark_missing_from_base_exits_zero(self):
        # The merge-base ran fine but predates the gated benchmark.
        base = self.write("base.txt", bench_output({"BenchmarkScanA": 1000}))
        head = self.write("head.txt", bench_output(
            {"BenchmarkScanA": 1000, "BenchmarkRestartFirstQuery": 500}))
        res = run_gate(base, head, "--filter", "BenchmarkRestartFirstQuery")
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)
        self.assertIn("no baseline benchmark found", res.stdout)

    def test_missing_base_file_exits_zero(self):
        # The base bench step failed entirely (|| true): no file at all.
        head = self.write("head.txt", bench_output({"BenchmarkRestartFirstQuery": 500}))
        res = run_gate(os.path.join(self.dir.name, "nope.txt"), head,
                       "--filter", "BenchmarkRestartFirstQuery")
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)
        self.assertIn("no baseline benchmark found", res.stdout)

    def test_regression_still_fails_the_gate(self):
        base = self.write("base.txt", bench_output({"BenchmarkScanA": 1000}))
        head = self.write("head.txt", bench_output({"BenchmarkScanA": 1300}))
        res = run_gate(base, head, "--filter", "BenchmarkScan")
        self.assertEqual(res.returncode, 1, res.stdout + res.stderr)
        self.assertIn("REGRESSION", res.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
