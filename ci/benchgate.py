#!/usr/bin/env python3
"""Benchmark regression gate for the scan-path benchmarks.

Compares two `go test -bench` outputs (base = merge-base, head = PR) and
fails if any scan benchmark's median ns/op regressed by more than the
threshold. Benchmarks missing from the base (i.e. added by the PR) are
skipped: a new benchmark has no baseline to regress against.

Usage:
    benchgate.py BASE.txt HEAD.txt [--threshold 15] [--filter PREFIX]
    benchgate.py --self-test

The self-test feeds the comparator synthetic outputs with a known 20%
regression and a known no-op, and exits non-zero unless the gate fails the
former and passes the latter — run it in CI before trusting the gate.
"""

import argparse
import re
import statistics
import sys

BENCH_LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op")


def parse(text):
    """Return {bench name: [ns/op, ...]} for every benchmark line."""
    out = {}
    for line in text.splitlines():
        m = BENCH_LINE.match(line.strip())
        if m:
            out.setdefault(m.group(1), []).append(float(m.group(2)))
    return out


def medians(samples):
    return {name: statistics.median(vals) for name, vals in samples.items()}


def compare(base_text, head_text, threshold_pct, name_filter):
    """Return (failures, report_lines, compared).

    A failure is a >threshold regression; compared counts head benchmarks
    that actually had a baseline to regress against.
    """
    base = medians(parse(base_text))
    head = medians(parse(head_text))
    failures = []
    lines = []
    compared = 0
    for name in sorted(head):
        if name_filter and not name.startswith(name_filter):
            continue
        if name not in base:
            lines.append(f"  {name}: new benchmark (no baseline), skipped")
            continue
        compared += 1
        delta = 100.0 * (head[name] - base[name]) / base[name]
        verdict = "ok"
        if delta > threshold_pct:
            verdict = f"REGRESSION (> {threshold_pct:.0f}%)"
            failures.append(name)
        lines.append(
            f"  {name}: {base[name]:.0f} -> {head[name]:.0f} ns/op "
            f"({delta:+.1f}%) {verdict}"
        )
    if not lines:
        lines.append("  (no matching benchmarks in head output)")
    return failures, lines, compared


def self_test(threshold_pct):
    def fake(named_ns):
        # Three -count samples per benchmark, slight spread around the median.
        out = []
        for name, ns in named_ns.items():
            for factor in (0.98, 1.0, 1.02):
                out.append(f"{name}-4  100  {ns * factor:.0f} ns/op  8 B/op")
        return "\n".join(out)

    base = fake({"BenchmarkScanSerialCold": 1000000, "BenchmarkScanZonePruned": 50000})
    regressed = fake({"BenchmarkScanSerialCold": 1200000, "BenchmarkScanZonePruned": 50000})
    unchanged = fake({"BenchmarkScanSerialCold": 1010000, "BenchmarkScanZonePruned": 49000})
    added = fake({"BenchmarkScanSerialCold": 1000000, "BenchmarkScanBrandNew": 77})

    fails, _, _ = compare(base, regressed, threshold_pct, "BenchmarkScan")
    if fails != ["BenchmarkScanSerialCold"]:
        print(f"self-test: gate MISSED a 20% regression (failures={fails})")
        return 1
    fails, _, _ = compare(base, unchanged, threshold_pct, "BenchmarkScan")
    if fails:
        print(f"self-test: gate false-positived on a 1% change ({fails})")
        return 1
    fails, _, _ = compare(base, added, threshold_pct, "BenchmarkScan")
    if fails:
        print(f"self-test: gate failed a benchmark with no baseline ({fails})")
        return 1
    fails, _, compared = compare("", added, threshold_pct, "BenchmarkScan")
    if fails or compared != 0:
        print(f"self-test: empty baseline was not neutral (fails={fails}, compared={compared})")
        return 1
    print("self-test: gate fails the injected regression and passes the rest")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base", nargs="?", help="bench output at the merge-base")
    ap.add_argument("head", nargs="?", help="bench output at the PR head")
    ap.add_argument("--threshold", type=float, default=15.0, help="max allowed median regression, percent")
    ap.add_argument("--filter", default="BenchmarkScan", help="only gate benchmarks with this prefix")
    ap.add_argument("--self-test", action="store_true", help="verify the gate catches a synthetic regression")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.threshold))
    if not args.base or not args.head:
        ap.error("base and head files are required (or use --self-test)")

    # A merge-base that predates a benchmark produces an empty or missing
    # baseline file (the base bench step is `|| true`). That is a normal
    # state for a PR adding its own benchmark under the gate, not an error:
    # stay neutral instead of crashing or failing the PR.
    base_text = ""
    try:
        with open(args.base) as f:
            base_text = f.read()
    except OSError:
        print(f"benchgate: base file {args.base!r} unreadable, treating as empty baseline")
    with open(args.head) as f:
        head_text = f.read()
    failures, lines, compared = compare(base_text, head_text, args.threshold, args.filter)
    print(f"benchgate: comparing medians, threshold {args.threshold:.0f}%, filter {args.filter!r}")
    print("\n".join(lines))
    if failures:
        print(f"benchgate: FAIL — {len(failures)} benchmark(s) regressed: {', '.join(failures)}")
        sys.exit(1)
    if compared == 0:
        print("benchgate: NEUTRAL — no baseline benchmark found at the merge-base "
              "for this filter (benchmark added by this PR); nothing to gate")
        sys.exit(0)
    print("benchgate: PASS")


if __name__ == "__main__":
    main()
