package scuba_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end (real processes for the
// upgrade example) and checks the output markers that prove the headline
// behaviour happened — examples are documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping example subprocesses")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "quickstart",
			args: []string{"run", "./examples/quickstart", "-rows", "20000"},
			want: []string{
				"recovered via memory",
				"top services after restart",
			},
		},
		{
			name: "upgrade",
			args: []string{"run", "./examples/upgrade", "-rows", "20000"},
			want: []string{
				"clean shutdown",
				"recovered via memory",
				"query sees 20000 rows",
			},
		},
		{
			name: "upgrade-crash",
			args: []string{"run", "./examples/upgrade", "-rows", "20000", "-crash"},
			want: []string{
				"simulating a crash",
				"recovered via disk",
				"query sees 20000 rows",
			},
		},
		{
			name: "rollover",
			args: []string{"run", "./examples/rollover", "-machines", "2", "-leaves", "4", "-rows", "20000"},
			want: []string{
				"rollover via shared memory",
				"recoveries: 8 memory / 0 disk",
				"rows visible: 20000",
				"weekly full availability",
			},
		},
		{
			name: "monitoring",
			args: []string{"run", "./examples/monitoring"},
			want: []string{
				"restarted via memory",
				"ALERT: android/timeout",
				"severe errors per 10-minute bucket",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q\n%s", want, out)
				}
			}
		})
	}
}
