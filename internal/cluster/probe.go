package cluster

import (
	"sort"
	"sync"
	"time"

	"scuba/internal/query"
)

// Querier is anything that answers queries: an in-process aggregator, a
// wire client pointed at an aggregator server, or a leaf client.
type Querier interface {
	Query(q *query.Query) (*query.Result, error)
}

// ProbeConfig drives an AvailabilityProbe.
type ProbeConfig struct {
	// Query is issued continuously until Stop.
	Query *query.Query
	// Interval between queries (default 10ms).
	Interval time.Duration
	// Check, when non-nil, validates each successful result (e.g. against a
	// byte-identical baseline); failures count as Wrong.
	Check func(*query.Result) error
}

// AvailabilityPoint is one probe sample: what fraction of the table was
// answerable at that moment, and how long the query took.
type AvailabilityPoint struct {
	Elapsed       time.Duration
	ShardCoverage float64
	LeafCoverage  float64
	Latency       time.Duration
}

// AvailabilityReport is the probe's timeline plus its summary statistics —
// the live version of the paper's Figure 8 availability view.
type AvailabilityReport struct {
	Points  []AvailabilityPoint
	Queries int
	// Errors counts queries that failed outright; Wrong counts successful
	// queries whose result failed ProbeConfig.Check.
	Errors int
	Wrong  int
	// MinShardCoverage / MinLeafCoverage are the worst moments observed
	// (1 when no successful query was recorded).
	MinShardCoverage float64
	MinLeafCoverage  float64
	P50, P99         time.Duration
}

// AvailabilityProbe issues one query in a loop and records the coverage and
// latency timeline. Start with StartProbe, stop (and collect) with Stop.
type AvailabilityProbe struct {
	cfg    ProbeConfig
	target Querier
	stop   chan struct{}
	done   chan struct{}

	mu  sync.Mutex
	rep AvailabilityReport
}

// StartProbe begins probing target with cfg.Query until Stop is called.
func StartProbe(target Querier, cfg ProbeConfig) *AvailabilityProbe {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	p := &AvailabilityProbe{
		cfg:    cfg,
		target: target,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.rep.MinShardCoverage = 1
	p.rep.MinLeafCoverage = 1
	go p.run()
	return p
}

func (p *AvailabilityProbe) run() {
	defer close(p.done)
	begin := time.Now()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		qStart := time.Now()
		res, err := p.target.Query(p.cfg.Query)
		lat := time.Since(qStart)

		p.mu.Lock()
		p.rep.Queries++
		if err != nil {
			p.rep.Errors++
		} else {
			pt := AvailabilityPoint{
				Elapsed:       time.Since(begin),
				ShardCoverage: res.ShardCoverage(),
				LeafCoverage:  res.Coverage(),
				Latency:       lat,
			}
			p.rep.Points = append(p.rep.Points, pt)
			if pt.ShardCoverage < p.rep.MinShardCoverage {
				p.rep.MinShardCoverage = pt.ShardCoverage
			}
			if pt.LeafCoverage < p.rep.MinLeafCoverage {
				p.rep.MinLeafCoverage = pt.LeafCoverage
			}
			if p.cfg.Check != nil && p.cfg.Check(res) != nil {
				p.rep.Wrong++
			}
		}
		p.mu.Unlock()

		select {
		case <-p.stop:
			return
		case <-time.After(p.cfg.Interval):
		}
	}
}

// Stop ends the probe and returns its report with percentiles computed.
func (p *AvailabilityProbe) Stop() AvailabilityReport {
	close(p.stop)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	lats := make([]time.Duration, 0, len(p.rep.Points))
	for _, pt := range p.rep.Points {
		lats = append(lats, pt.Latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p.rep.P50 = percentile(lats, 0.50)
	p.rep.P99 = percentile(lats, 0.99)
	return p.rep
}

// percentile returns the q-th percentile of sorted durations (0 when empty).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
