package cluster

import (
	"fmt"
	"testing"
	"time"

	"scuba/internal/disk"
	"scuba/internal/leaf"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/tailer"
)

func newCluster(t *testing.T, machines, leavesPerMachine int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Machines:            machines,
		LeavesPerMachine:    leavesPerMachine,
		ShmDir:              t.TempDir(),
		DiskRoot:            t.TempDir(),
		Namespace:           "test",
		Format:              disk.FormatRow,
		MemoryBudgetPerLeaf: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loadCluster spreads rows across all nodes via a tailer placer.
func loadCluster(t *testing.T, c *Cluster, totalRows int) {
	t.Helper()
	p := tailer.NewPlacer(c.Targets(), 42)
	const batch = 100
	for sent := 0; sent < totalRows; sent += batch {
		rows := make([]rowblock.Row, batch)
		for i := range rows {
			rows[i] = rowblock.Row{Time: int64(1000 + sent + i), Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", (sent+i)%3)),
			}}
		}
		if _, err := p.Place("events", rows); err != nil {
			t.Fatal(err)
		}
	}
}

func totalCount(t *testing.T, c *Cluster) (float64, *query.Result) {
	t.Helper()
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := c.NewAggregator().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0, res
	}
	return rows[0].Values[0], res
}

func TestClusterBasics(t *testing.T) {
	c := newCluster(t, 2, 4)
	if c.Size() != 8 {
		t.Fatalf("size = %d", c.Size())
	}
	loadCluster(t, c, 2000)
	got, res := totalCount(t, c)
	if got != 2000 {
		t.Errorf("count = %v", got)
	}
	if res.Coverage() != 1 {
		t.Errorf("coverage = %v", res.Coverage())
	}
	snap := c.Snapshot(2)
	if snap.OldVersion != 8 || snap.NewVersion != 0 || snap.RollingOver != 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestSingleNodeRestartShm(t *testing.T) {
	c := newCluster(t, 1, 4)
	loadCluster(t, c, 1000)
	before, _ := totalCount(t, c)

	rep, err := c.Node(0).Restart(RestartOptions{UseShm: true, NewVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.Path != leaf.RecoveryMemory {
		t.Errorf("recovery = %v", rep.Recovery.Path)
	}
	if c.Node(0).Version() != 2 {
		t.Errorf("version = %d", c.Node(0).Version())
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v across restart", before, after)
	}
}

func TestSingleNodeRestartDisk(t *testing.T) {
	c := newCluster(t, 1, 2)
	loadCluster(t, c, 500)
	before, _ := totalCount(t, c)
	rep, err := c.Node(0).Restart(RestartOptions{UseShm: false, NewVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.Path != leaf.RecoveryDisk && rep.Recovery.Path != leaf.RecoveryNone {
		t.Errorf("recovery = %v", rep.Recovery.Path)
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v across restart", before, after)
	}
}

func TestKilledLeafRestartsFromDisk(t *testing.T) {
	c := newCluster(t, 1, 2)
	loadCluster(t, c, 500)
	before, _ := totalCount(t, c)
	rep, err := c.Node(0).Restart(RestartOptions{UseShm: true, NewVersion: 2, ForceKill: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Killed {
		t.Error("not marked killed")
	}
	if rep.Recovery.Path == leaf.RecoveryMemory {
		t.Error("killed leaf recovered from shared memory")
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v", before, after)
	}
}

func TestQueriesDuringRestartArePartial(t *testing.T) {
	c := newCluster(t, 2, 2)
	loadCluster(t, c, 1000)
	// Take one node down manually (shutdown without restart).
	l := c.Node(3).current()
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	c.Node(3).mu.Lock()
	c.Node(3).leaf = nil
	c.Node(3).mu.Unlock()

	got, res := totalCount(t, c)
	if res.LeavesAnswered != 3 || res.LeavesTotal != 4 {
		t.Errorf("coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
	if got >= 1000 {
		t.Errorf("count = %v, expected partial", got)
	}
	snap := c.Snapshot(1)
	if snap.RollingOver != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestRolloverShm(t *testing.T) {
	c := newCluster(t, 4, 4) // 16 leaves
	loadCluster(t, c, 4000)
	before, _ := totalCount(t, c)

	var minAvail = 1.0
	rep, err := c.Rollover(RolloverConfig{
		BatchFraction: 0.125, // 2 leaves per batch
		UseShm:        true,
		TargetVersion: 2,
		OnBatch: func(_ int, s Snapshot) {
			if s.AvailableFraction < minAvail {
				minAvail = s.AvailableFraction
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 8 {
		t.Errorf("batches = %d", rep.Batches)
	}
	if rep.MemoryRecoveries+rep.DiskRecoveries != 16 {
		t.Errorf("recoveries = %d + %d", rep.MemoryRecoveries, rep.DiskRecoveries)
	}
	if rep.DiskRecoveries > 0 {
		t.Errorf("disk recoveries during shm rollover: %d", rep.DiskRecoveries)
	}
	// Everything upgraded and alive.
	snap := c.Snapshot(2)
	if snap.NewVersion != 16 || snap.RollingOver != 0 || snap.OldVersion != 0 {
		t.Errorf("final snapshot = %+v", snap)
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v across rollover", before, after)
	}
	if len(rep.Timeline) != 8 {
		t.Errorf("timeline = %d points", len(rep.Timeline))
	}
	if rep.MinAvailability < 0.8 {
		t.Errorf("min availability = %v", rep.MinAvailability)
	}
}

func TestRolloverDiskBaseline(t *testing.T) {
	c := newCluster(t, 2, 4)
	loadCluster(t, c, 2000)
	before, _ := totalCount(t, c)
	rep, err := c.Rollover(RolloverConfig{
		BatchFraction: 0.25,
		UseShm:        false,
		TargetVersion: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemoryRecoveries != 0 {
		t.Errorf("memory recoveries in disk rollover: %d", rep.MemoryRecoveries)
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v", before, after)
	}
}

func TestRolloverOneLeafPerMachinePerBatch(t *testing.T) {
	// §2: restart leaves on distinct machines so each gets full bandwidth.
	c := newCluster(t, 4, 4)
	// Batch of 4 = 25%: must be one per machine, not 4 on machine 0.
	pending := make([]*Node, len(c.nodes))
	copy(pending, c.nodes)
	batch, rest := pickBatch(pending, 4, 1, func(n *Node) int { return n.Machine }, nil)
	if len(batch) != 4 {
		t.Fatalf("batch size = %d", len(batch))
	}
	machines := map[int]bool{}
	for _, n := range batch {
		if machines[n.Machine] {
			t.Errorf("two leaves of machine %d in one batch", n.Machine)
		}
		machines[n.Machine] = true
	}
	if len(rest) != 12 {
		t.Errorf("rest = %d", len(rest))
	}
}

func TestRolloverDefaultsTwoPercent(t *testing.T) {
	c := newCluster(t, 2, 2)
	loadCluster(t, c, 100)
	rep, err := c.Rollover(RolloverConfig{UseShm: true})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.02*4) = 1 per batch -> 4 batches.
	if rep.Batches != 4 {
		t.Errorf("batches = %d", rep.Batches)
	}
	// Default target version bumps 1 -> 2.
	if got := c.Snapshot(2); got.NewVersion != 4 {
		t.Errorf("snapshot = %+v", got)
	}
}

func TestIngestContinuesDuringRollover(t *testing.T) {
	c := newCluster(t, 2, 4)
	loadCluster(t, c, 800)
	p := tailer.NewPlacer(c.Targets(), 7)

	stop := make(chan struct{})
	rowsAdded := make(chan int, 1)
	go func() {
		added := 0
		for {
			select {
			case <-stop:
				rowsAdded <- added
				return
			default:
				rows := []rowblock.Row{{Time: time.Now().Unix(), Cols: map[string]rowblock.Value{
					"service": rowblock.StringValue("live"),
				}}}
				if _, err := p.Place("events", rows); err == nil {
					added++
				}
			}
		}
	}()
	if _, err := c.Rollover(RolloverConfig{BatchFraction: 0.25, UseShm: true, TargetVersion: 2}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	added := <-rowsAdded
	if added == 0 {
		t.Error("no rows ingested during rollover")
	}
	got, _ := totalCount(t, c)
	if got != float64(800+added) {
		t.Errorf("count = %v, want %d", got, 800+added)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{OldVersion: 3, RollingOver: 1, NewVersion: 4, AvailableFraction: 0.875}
	if got := s.String(); got != "old=3 rolling=1 new=4 available=87.5%" {
		t.Errorf("String = %q", got)
	}
}
