package cluster

import (
	"testing"
	"time"

	"scuba/internal/rowblock"
)

func TestAvailabilityReportRows(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	rep := &AvailabilityReport{
		Points: []AvailabilityPoint{
			{Elapsed: 1 * time.Second, ShardCoverage: 1, LeafCoverage: 1, Latency: 2 * time.Millisecond},
			{Elapsed: 2 * time.Second, ShardCoverage: 0.75, LeafCoverage: 0.5, Latency: 5 * time.Millisecond},
		},
		Queries:          40,
		Errors:           1,
		MinShardCoverage: 0.75,
		MinLeafCoverage:  0.5,
		P50:              2 * time.Millisecond,
		P99:              5 * time.Millisecond,
	}
	rows := rep.Rows("drill", start)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 2 points + summary", len(rows))
	}
	if got := rows[0].Cols["event"].Str; got != "probe" {
		t.Errorf("event = %q", got)
	}
	if got := rows[0].Time; got != start.Unix()+1 {
		t.Errorf("point time = %d, want start+1s", got)
	}
	if got := rows[1].Cols["shard_coverage"].Float; got != 0.75 {
		t.Errorf("shard_coverage = %v", got)
	}
	sum := rows[2]
	if sum.Cols["event"].Str != "probe_summary" {
		t.Fatalf("summary event = %q", sum.Cols["event"].Str)
	}
	if sum.Cols["queries"].Int != 40 || sum.Cols["errors"].Int != 1 {
		t.Errorf("summary counts = %+v", sum.Cols)
	}
	if sum.Cols["min_leaf_coverage"].Float != 0.5 {
		t.Errorf("min_leaf_coverage = %v", sum.Cols["min_leaf_coverage"].Float)
	}
	if sum.Time != start.Unix()+2 {
		t.Errorf("summary time = %d", sum.Time)
	}
}

func TestProcRolloverReportRows(t *testing.T) {
	start := time.Unix(1_700_000_100, 0)
	rep := &ProcRolloverReport{
		Duration: 4 * time.Second,
		Batches:  2,
		Restarts: []ProcRestart{
			{Leaf: 0, Addr: "a:1", RecoveryPath: "memory", Duration: time.Second},
			{Leaf: 1, Addr: "a:2", RecoveryPath: "disk", Killed: true, Duration: 2 * time.Second},
			{Leaf: 2, Addr: "a:3", Err: "never ready", Duration: time.Second},
		},
		MemoryRecoveries: 1,
		DiskRecoveries:   1,
		Quarantined:      []int{2},
	}
	rows := rep.Rows("drill", start)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 3 restarts + summary", len(rows))
	}
	byLeaf := map[int64]rowblock.Row{}
	for _, r := range rows[:3] {
		if r.Cols["event"].Str != "restart" {
			t.Fatalf("event = %q", r.Cols["event"].Str)
		}
		byLeaf[r.Cols["leaf"].Int] = r
	}
	if r := byLeaf[1]; r.Cols["recovery"].Str != "disk" || r.Cols["killed"].Int != 1 {
		t.Errorf("leaf 1 row = %+v", r.Cols)
	}
	if r := byLeaf[2]; r.Cols["error"].Str != "never ready" {
		t.Errorf("leaf 2 row = %+v", r.Cols)
	}
	sum := rows[3]
	if sum.Cols["event"].Str != "rollover_summary" {
		t.Fatalf("summary event = %q", sum.Cols["event"].Str)
	}
	if sum.Cols["batches"].Int != 2 || sum.Cols["restarts"].Int != 3 ||
		sum.Cols["disk_recoveries"].Int != 1 || sum.Cols["quarantined"].Int != 1 {
		t.Errorf("summary = %+v", sum.Cols)
	}
	if sum.Time != start.Unix()+4 {
		t.Errorf("summary time = %d", sum.Time)
	}
}
