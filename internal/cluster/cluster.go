// Package cluster wires leaf servers into a Scuba cluster: machines running
// eight leaf servers each (§2), tailer placement targets, an aggregator
// fan-out, and the system-wide rollover procedure (§4.5) with its dashboard
// (Figure 8).
//
// Running eight leaves per machine matters for recovery: leaves restart one
// per machine at a time, so N times as many machines participate in a
// rollover and contribute their disk and memory bandwidth, while only 2% of
// data is offline (§2, §6).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"scuba/internal/aggregator"
	"scuba/internal/disk"
	"scuba/internal/leaf"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shard"
	"scuba/internal/shm"
	"scuba/internal/table"
	"scuba/internal/tailer"
)

// Config describes a cluster.
type Config struct {
	Machines         int
	LeavesPerMachine int // the paper runs 8
	// ShmDir and DiskRoot are shared across all leaves (per-leaf files are
	// namespaced by leaf ID).
	ShmDir    string
	DiskRoot  string
	Namespace string
	Format    disk.Format
	Table     table.Options
	// MemoryBudgetPerLeaf feeds tailer placement.
	MemoryBudgetPerLeaf int64
	// Clock injects virtual time into leaves (nil = wall clock).
	Clock func() int64
	// Replication, when > 0, turns on shard mode: the cluster owns a shard
	// map (R owners per shard, replicas on distinct machines), NewAggregator
	// routes by shard, NewShardedPlacer dual-writes, and Rollover flips
	// draining leaves in the router so their shards serve from replicas.
	Replication int
	// NumShards is the per-table shard count under Replication (0 = 2x the
	// leaf count).
	NumShards int
	// InstantOn makes every leaf restart serve zero-copy from its mmap'd shm
	// backup while background promotion copies blocks heap-side.
	InstantOn bool
	// PromoteWorkers sizes the instant-on promotion pool (0 = NumCPU).
	PromoteWorkers int
}

// Node is one leaf slot: the process comes and goes across restarts, the
// slot (machine, position, shm location, disk directory) stays.
type Node struct {
	Machine  int
	Slot     int
	GlobalID int

	cfg Config

	mu      sync.Mutex
	leaf    *leaf.Leaf
	version int
}

// Cluster is a set of nodes.
type Cluster struct {
	cfg    Config
	nodes  []*Node
	router *shard.Router // non-nil in shard mode (Config.Replication > 0)
}

// New creates and starts a cluster at software version 1.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines <= 0 || cfg.LeavesPerMachine <= 0 {
		return nil, errors.New("cluster: machines and leaves per machine must be positive")
	}
	c := &Cluster{cfg: cfg}
	for m := 0; m < cfg.Machines; m++ {
		for s := 0; s < cfg.LeavesPerMachine; s++ {
			n := &Node{
				Machine:  m,
				Slot:     s,
				GlobalID: m*cfg.LeavesPerMachine + s,
				cfg:      cfg,
				version:  1,
			}
			if err := n.start(); err != nil {
				return nil, err
			}
			c.nodes = append(c.nodes, n)
		}
	}
	if cfg.Replication > 0 {
		leaves := make([]shard.Leaf, len(c.nodes))
		for i, n := range c.nodes {
			leaves[i] = shard.Leaf{Name: n.Name(), Machine: n.Machine}
		}
		c.router = shard.NewRouter(shard.NewMap(leaves, cfg.Replication, cfg.NumShards))
	}
	return c, nil
}

// Name is the node's routing identity in the shard map.
func (n *Node) Name() string { return fmt.Sprintf("node%d", n.GlobalID) }

func (n *Node) leafConfig() leaf.Config {
	return leaf.Config{
		ID:             n.GlobalID,
		Shm:            shm.Options{Dir: n.cfg.ShmDir, Namespace: n.cfg.Namespace},
		DiskRoot:       n.cfg.DiskRoot,
		DiskFormat:     n.cfg.Format,
		Table:          n.cfg.Table,
		MemoryBudget:   n.cfg.MemoryBudgetPerLeaf,
		Clock:          n.cfg.Clock,
		InstantOn:      n.cfg.InstantOn,
		PromoteWorkers: n.cfg.PromoteWorkers,
	}
}

func (n *Node) start() error {
	l, err := leaf.New(n.leafConfig())
	if err != nil {
		return err
	}
	if err := l.Start(); err != nil {
		return err
	}
	n.mu.Lock()
	n.leaf = l
	n.mu.Unlock()
	return nil
}

// current returns the live leaf process (nil between shutdown and restart).
func (n *Node) current() *leaf.Leaf {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaf
}

// Version returns the node's software version.
func (n *Node) Version() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Stats implements tailer.Target.
func (n *Node) Stats() (leaf.Stats, error) {
	l := n.current()
	if l == nil {
		return leaf.Stats{ID: n.GlobalID, State: leaf.StateExit}, nil
	}
	return l.Stats(), nil
}

// AddRows implements tailer.Target.
func (n *Node) AddRows(tableName string, rows []rowblock.Row) error {
	l := n.current()
	if l == nil {
		return leaf.ErrNotAlive
	}
	return l.AddRows(tableName, rows)
}

// Query implements aggregator.LeafTarget.
func (n *Node) Query(q *query.Query) (*query.Result, error) {
	l := n.current()
	if l == nil {
		return nil, leaf.ErrNotAlive
	}
	return l.Query(q)
}

// QueryShards implements aggregator.ShardTarget: the node serves the named
// shards of the table from its per-shard physical tables.
func (n *Node) QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	l := n.current()
	if l == nil {
		return nil, nil, leaf.ErrNotAlive
	}
	return l.QueryShards(q, shards, tc)
}

// RestartReport records one node's restart.
type RestartReport struct {
	Node     int
	Shutdown leaf.ShutdownInfo
	Recovery leaf.RecoveryInfo
	Killed   bool
	Total    time.Duration
}

// RestartOptions control one node restart.
type RestartOptions struct {
	// UseShm selects the fast path; false forces the disk-only baseline.
	UseShm bool
	// NewVersion stamps the replacement process's software version.
	NewVersion int
	// KillTimeout bounds the shutdown. The rollover script waits in a loop
	// for the leaf process to die and kills it after 3 minutes (§4.3); a
	// killed leaf's shared memory backup is discarded and the new process
	// restarts from disk. Zero disables the guard.
	KillTimeout time.Duration
	// ForceKill simulates a leaf that missed the deadline (tests and the
	// kill-path experiments).
	ForceKill bool
}

// Restart performs shutdown + replacement start on this node, implementing
// the per-leaf step of the system-wide rollover (§4.5).
func (n *Node) Restart(opts RestartOptions) (RestartReport, error) {
	begin := time.Now()
	rep := RestartReport{Node: n.GlobalID}
	l := n.current()
	if l == nil {
		return rep, errors.New("cluster: node has no live process")
	}

	type shutdownResult struct {
		info leaf.ShutdownInfo
		err  error
	}
	done := make(chan shutdownResult, 1)
	go func() {
		var info leaf.ShutdownInfo
		var err error
		if opts.UseShm {
			info, err = l.Shutdown()
		} else {
			info, err = l.ShutdownToDisk()
		}
		done <- shutdownResult{info, err}
	}()

	killed := opts.ForceKill
	var sres shutdownResult
	if opts.KillTimeout > 0 {
		select {
		case sres = <-done:
		case <-time.After(opts.KillTimeout):
			killed = true
			sres = <-done // the old process is reaped either way
		}
	} else {
		sres = <-done
	}
	if sres.err != nil {
		return rep, sres.err
	}
	rep.Shutdown = sres.info
	rep.Killed = killed

	n.mu.Lock()
	n.leaf = nil
	n.mu.Unlock()

	if killed && opts.UseShm {
		// A killed leaf cannot be trusted to have completed its backup;
		// discard it so the new process restarts from disk (§4.3).
		m := shm.NewManager(n.GlobalID, shm.Options{Dir: n.cfg.ShmDir, Namespace: n.cfg.Namespace})
		if err := m.Invalidate(); err != nil {
			return rep, err
		}
	}

	if err := n.start(); err != nil {
		return rep, err
	}
	n.mu.Lock()
	if opts.NewVersion > 0 {
		n.version = opts.NewVersion
	}
	rep.Recovery = n.leaf.Recovery()
	n.mu.Unlock()
	rep.Total = time.Since(begin)
	return rep, nil
}

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns one node by global ID.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Size returns the number of leaves.
func (c *Cluster) Size() int { return len(c.nodes) }

// Targets adapts all nodes for a tailer placer.
func (c *Cluster) Targets() []tailer.Target {
	out := make([]tailer.Target, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n
	}
	return out
}

// NewAggregator builds a query aggregator over all nodes. In shard mode it
// routes by the cluster's shard map and reports per-shard coverage.
func (c *Cluster) NewAggregator() *aggregator.Aggregator {
	targets := make([]aggregator.LeafTarget, len(c.nodes))
	labels := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		targets[i] = n
		labels[i] = n.Name()
	}
	a := aggregator.New(targets)
	a.Labels = labels
	a.Router = c.router
	return a
}

// Router exposes the shard router (nil outside shard mode) for status flips
// and write planning.
func (c *Cluster) Router() *shard.Router { return c.router }

// NewShardedPlacer builds a dual-writing placer over all nodes (shard mode
// only).
func (c *Cluster) NewShardedPlacer() *tailer.ShardedPlacer {
	if c.router == nil {
		return nil
	}
	return tailer.NewShardedPlacer(c.Targets(), c.router)
}

// Snapshot counts nodes by dashboard category (Figure 8).
type Snapshot struct {
	OldVersion  int
	RollingOver int
	NewVersion  int
	// AvailableFraction is the share of leaves answering queries; with data
	// spread evenly it is the share of data available (98% during a 2%
	// rollover).
	AvailableFraction float64
}

// Snapshot classifies every node against targetVersion.
func (c *Cluster) Snapshot(targetVersion int) Snapshot {
	var s Snapshot
	alive := 0
	for _, n := range c.nodes {
		st, _ := n.Stats()
		switch {
		case st.State == leaf.StateAlive && n.Version() >= targetVersion:
			s.NewVersion++
			alive++
		case st.State == leaf.StateAlive:
			s.OldVersion++
			alive++
		default:
			s.RollingOver++
			if st.State == leaf.StateDiskRecovery {
				alive++ // serving partial results while recovering
			}
		}
	}
	if len(c.nodes) > 0 {
		s.AvailableFraction = float64(alive) / float64(len(c.nodes))
	}
	return s
}

// String renders a snapshot as one dashboard line.
func (s Snapshot) String() string {
	return fmt.Sprintf("old=%d rolling=%d new=%d available=%.1f%%",
		s.OldVersion, s.RollingOver, s.NewVersion, 100*s.AvailableFraction)
}
