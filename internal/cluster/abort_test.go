package cluster

// The rollover canary guard: when restarted leaves can't read their shm
// backups and a wave of them falls back to disk recovery, the rollover must
// stop instead of dragging the whole cluster through it (§4.5).

import (
	"errors"
	"testing"

	"scuba/internal/fault"
	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/rowblock"
)

func TestRolloverAbortsOnDiskFallbackWave(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()

	c := newCluster(t, 4, 2) // 8 leaves
	loadCluster(t, c, 1600)

	// Every restarted leaf hits a metadata read error and falls back to
	// disk — the "new build can't read old segments" scenario.
	if err := fault.ArmSpec("shm.map=error"); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	rec, err := obs.OpenFlightRecorder(0, obs.RecorderOptions{Dir: t.TempDir(), Namespace: "test-rollover"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	rep, err := c.Rollover(RolloverConfig{
		BatchFraction:   0.25, // 2 leaves per batch
		UseShm:          true,
		TargetVersion:   2,
		MaxDiskFallback: 0.25,
		Metrics:         reg,
		Obs:             obs.New(reg, rec),
	})
	fault.Reset()
	if !errors.Is(err, ErrRolloverAborted) {
		t.Fatalf("err = %v, want ErrRolloverAborted", err)
	}
	if !rep.Aborted {
		t.Error("report not marked aborted")
	}
	// The first batch disk-recovers 100% > 25%, so exactly one batch ran.
	if rep.Batches != 1 || rep.DiskRecoveries != 2 {
		t.Errorf("batches = %d, disk recoveries = %d (want 1, 2)", rep.Batches, rep.DiskRecoveries)
	}
	if got := reg.Counter("rollover.aborts").Value(); got != 1 {
		t.Errorf("rollover.aborts = %d", got)
	}
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EventFail && ev.Phase == "rollover.abort" {
			found = true
		}
	}
	if !found {
		t.Error("no rollover.abort event in flight recorder")
	}

	// The untouched majority keeps serving: only the aborted batch's leaves
	// went through a restart, and those recovered from disk with full data.
	got, res := totalCount(t, c)
	if got != 1600 || res.Coverage() != 1 {
		t.Errorf("count = %v coverage = %v after abort", got, res.Coverage())
	}
}

func TestRolloverDiskFallbackGuardDisabledByDefault(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()

	c := newCluster(t, 2, 2)
	loadCluster(t, c, 400)
	if err := fault.ArmSpec("shm.map=error"); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Rollover(RolloverConfig{
		BatchFraction: 0.25,
		UseShm:        true,
		TargetVersion: 2,
	})
	fault.Reset()
	if err != nil {
		t.Fatalf("zero MaxDiskFallback must not abort: %v", err)
	}
	if rep.DiskRecoveries != 4 || rep.Aborted {
		t.Errorf("report = %+v", rep)
	}
	got, _ := totalCount(t, c)
	if got != 400 {
		t.Errorf("count = %v after disk-fallback rollover", got)
	}
}

func TestRolloverCountsMixedRecoveries(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()

	// Two tables per leaf so a single corrupt segment degrades a restore to
	// "mixed" rather than all the way to disk.
	c := newCluster(t, 2, 2)
	for _, n := range c.Nodes() {
		addNodeRows(t, n, "errors", 50)
		addNodeRows(t, n, "events", 50)
	}

	// One corrupted block in the first restarted leaf: it quarantines one
	// table and reports a mixed recovery — degraded, but not a disk
	// fallback, so the guard must not trip.
	if err := fault.ArmSpec("shm.copy_in=corrupt;count=1"); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Rollover(RolloverConfig{
		BatchFraction:   0.25, // 1 leaf per batch
		UseShm:          true,
		TargetVersion:   2,
		MaxDiskFallback: 0.25,
	})
	fault.Reset()
	if err != nil {
		t.Fatalf("mixed recoveries tripped the disk-fallback guard: %v", err)
	}
	if rep.MixedRecoveries != 1 {
		t.Errorf("mixed recoveries = %d, report = %+v", rep.MixedRecoveries, rep)
	}
	if rep.DiskRecoveries != 0 {
		t.Errorf("disk recoveries = %d", rep.DiskRecoveries)
	}
	var mixed *RestartReport
	for i := range rep.Restarts {
		if rep.Restarts[i].Recovery.Path == leaf.RecoveryMixed {
			mixed = &rep.Restarts[i]
		}
	}
	if mixed == nil || mixed.Recovery.Quarantined != 1 {
		t.Fatalf("no mixed restart with one quarantined table: %+v", rep.Restarts)
	}
	got, _ := totalCount(t, c)
	if got != 200 {
		t.Errorf("count = %v after mixed-recovery rollover, want 200", got)
	}
}

func addNodeRows(t *testing.T, n *Node, tableName string, count int) {
	t.Helper()
	rows := make([]rowblock.Row, count)
	for i := range rows {
		rows[i] = rowblock.Row{Time: int64(1000 + i), Cols: map[string]rowblock.Value{
			"service": rowblock.StringValue("svc"),
		}}
	}
	if err := n.AddRows(tableName, rows); err != nil {
		t.Fatal(err)
	}
}
