package cluster

import (
	"errors"
	"testing"

	"scuba/internal/leaf"
)

func TestCanaryDeployAndRevert(t *testing.T) {
	c := newCluster(t, 2, 4)
	loadCluster(t, c, 2000)
	before, _ := totalCount(t, c)

	can, err := c.StartCanary(CanaryConfig{Nodes: []int{1, 5}, Version: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range can.Deploy {
		if rep.Recovery.Path != leaf.RecoveryMemory {
			t.Errorf("node %d deployed via %v", rep.Node, rep.Recovery.Path)
		}
	}
	if c.Node(1).Version() != 42 || c.Node(5).Version() != 42 {
		t.Error("canary nodes not on experimental version")
	}
	if c.Node(0).Version() != 1 {
		t.Error("non-canary node changed version")
	}
	mid, _ := totalCount(t, c)
	if mid != before {
		t.Errorf("count %v -> %v during canary", before, mid)
	}

	reverts, err := can.Revert()
	if err != nil {
		t.Fatal(err)
	}
	if len(reverts) != 2 {
		t.Fatalf("reverted %d nodes", len(reverts))
	}
	for _, rep := range reverts {
		if rep.Recovery.Path != leaf.RecoveryMemory {
			t.Errorf("node %d reverted via %v", rep.Node, rep.Recovery.Path)
		}
	}
	if c.Node(1).Version() != 1 || c.Node(5).Version() != 1 {
		t.Error("canary nodes not reverted")
	}
	after, _ := totalCount(t, c)
	if after != before {
		t.Errorf("count %v -> %v after revert", before, after)
	}
	// Double revert is rejected.
	if _, err := can.Revert(); err == nil {
		t.Error("second revert succeeded")
	}
}

func TestCanaryPromote(t *testing.T) {
	c := newCluster(t, 2, 2)
	loadCluster(t, c, 500)
	can, err := c.StartCanary(CanaryConfig{Nodes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if can.Version() != 2 {
		t.Errorf("auto version = %d", can.Version())
	}
	rep, err := can.Promote(RolloverConfig{BatchFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskRecoveries != 0 {
		t.Errorf("disk recoveries during promote: %d", rep.DiskRecoveries)
	}
	snap := c.Snapshot(2)
	if snap.NewVersion != 4 {
		t.Errorf("snapshot after promote = %+v", snap)
	}
	// Promote after revert is rejected.
	can2, err := c.StartCanary(CanaryConfig{Nodes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := can2.Revert(); err != nil {
		t.Fatal(err)
	}
	if _, err := can2.Promote(RolloverConfig{}); err == nil {
		t.Error("promote after revert succeeded")
	}
}

func TestCanaryValidation(t *testing.T) {
	c := newCluster(t, 1, 2)
	if _, err := c.StartCanary(CanaryConfig{}); !errors.Is(err, ErrCanaryNodes) {
		t.Errorf("empty nodes: %v", err)
	}
	if _, err := c.StartCanary(CanaryConfig{Nodes: []int{99}}); !errors.Is(err, ErrCanaryNodes) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := c.StartCanary(CanaryConfig{Nodes: []int{-1}}); !errors.Is(err, ErrCanaryNodes) {
		t.Errorf("negative: %v", err)
	}
}
