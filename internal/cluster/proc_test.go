package cluster

// Quarantine-path unit test for the subprocess orchestrator: when a
// replacement process cannot start, the rollover must not hang or abort —
// the slot is marked DOWN in the shard map, listed in the report, and its
// shards keep serving from replicas. Package-internal because sabotaging
// the binary path mid-rollover reaches into ProcCluster's config.

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shard"
)

func TestProcRolloverQuarantinesUnstartableReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess quarantine drill")
	}
	bin, err := BuildScubad(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := StartProcCluster(ProcConfig{
		BinPath:          bin,
		Machines:         2,
		LeavesPerMachine: 1,
		Replication:      2,
		WorkDir:          t.TempDir(),
		Namespace:        "quarantine",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)

	placer := pc.NewShardedPlacer()
	rows := make([]rowblock.Row, 500)
	for i := range rows {
		rows[i] = rowblock.Row{Time: int64(1000 + i), Cols: map[string]rowblock.Value{
			"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%3)),
		}}
	}
	if _, err := placer.Place("events", rows); err != nil {
		t.Fatal(err)
	}

	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}},
		GroupBy:      []string{"service"}}
	baseline, err := pc.AggClient().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ShardCoverage() != 1 {
		t.Fatalf("baseline coverage %d/%d", baseline.ShardsAnswered, baseline.ShardsTotal)
	}
	baseRows := baseline.Rows(q)

	// Sabotage the first batch's replacement: exec fails instantly, so the
	// quarantine path triggers without waiting out the ready timeout. Later
	// batches get the real binary back and must restart cleanly.
	good := pc.cfg.BinPath
	rep, err := pc.ProcRollover(ProcRolloverConfig{
		BatchFraction: 0.5,
		MaxPerMachine: 1,
		UseShm:        true,
		KillTimeout:   time.Minute,
		Tables:        []string{"events"},
		OnBatch: func(batch int, _ []string) {
			if batch == 0 {
				pc.cfg.BinPath = filepath.Join(t.TempDir(), "no-such-scubad")
			} else {
				pc.cfg.BinPath = good
			}
		},
	})
	if err != nil {
		t.Fatalf("a quarantine must not fail the rollover: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want exactly one leaf", rep.Quarantined)
	}
	victim := rep.Quarantined[0]
	if !pc.Leaf(victim).Quarantined() {
		t.Errorf("leaf %d not marked quarantined on its slot", victim)
	}
	if rep.MemoryRecoveries != 1 {
		t.Errorf("memory recoveries = %d, want 1 (the healthy batch)", rep.MemoryRecoveries)
	}
	for _, r := range rep.Restarts {
		if r.Leaf == victim && r.Err == "" {
			t.Errorf("victim restart %+v carries no error", r)
		}
	}

	// The dead slot is DOWN in the shard map; with R=2 over two machines the
	// surviving leaf owns every shard, so coverage and results hold.
	_, statuses, _, err := pc.AggClient().ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if statuses[victim] != shard.StatusDown {
		t.Errorf("quarantined leaf %d status = %v, want DOWN", victim, statuses[victim])
	}
	after, err := pc.AggClient().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.ShardCoverage() != 1 {
		t.Errorf("post-quarantine coverage %d/%d, want full from replicas",
			after.ShardsAnswered, after.ShardsTotal)
	}
	if !reflect.DeepEqual(after.Rows(q), baseRows) {
		t.Error("post-quarantine result differs from baseline")
	}
}
