// ProcCluster runs a cluster of real scubad OS processes and rolls them
// over the way the production script does (§4.3, §4.5): drain a leaf with
// the shutdown-to-shm RPC, wait for the process to die (kill -9 after a
// timeout), start the replacement binary on the same identity, and confirm
// recovery through /debug/recovery — while a shard-routing aggregator flips
// the drained leaves out of the map so their shards serve from replicas.
//
// The in-process Cluster measures the restart path itself; ProcCluster adds
// everything a process boundary adds — exec, ports, kill signals, crashed
// subprocesses, and recovery state observable only over HTTP.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"scuba/internal/aggregator"
	"scuba/internal/obs"
	"scuba/internal/shard"
	"scuba/internal/shm"
	"scuba/internal/tailer"
	"scuba/internal/wire"
)

// BuildScubad compiles the scubad daemon into dir and returns the binary
// path. It builds by package path, so it works from any directory inside
// the module.
func BuildScubad(dir string) (string, error) {
	return buildScubad(dir, false)
}

// BuildScubadRace compiles scubad with the race detector, so rollover
// drills exercise the daemon's own restart concurrency — the instant-on
// promoter against live scans, most of all — under instrumentation, not
// just the test harness.
func BuildScubadRace(dir string) (string, error) {
	return buildScubad(dir, true)
}

func buildScubad(dir string, race bool) (string, error) {
	bin := dir + "/scubad"
	args := []string{"build"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "scuba/cmd/scubad")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("cluster: building scubad: %w\n%s", err, out)
	}
	return bin, nil
}

// ProcConfig describes a subprocess cluster.
type ProcConfig struct {
	// BinPath is the scubad binary (see BuildScubad).
	BinPath          string
	Machines         int
	LeavesPerMachine int
	// Replication is the owners-per-shard count (default 2); NumShards the
	// per-table shard count (0 = the shard map's default).
	Replication int
	NumShards   int
	// WorkDir holds shared memory segments and disk backups for all leaves.
	WorkDir   string
	Namespace string
	// Logs receives subprocess stdout/stderr (nil = discarded).
	Logs io.Writer
	// ReadyTimeout bounds how long a starting leaf may take to answer Ping
	// (default 30s; covers disk recovery of test-sized datasets).
	ReadyTimeout time.Duration
	// SyncInterval is each leaf's disk write-behind interval (default
	// 200ms, fast so a crashed leaf's disk backup is near-current).
	SyncInterval time.Duration
	// DisableWAL turns off the per-leaf write-ahead log. By default every
	// leaf runs with -wal-dir under WorkDir, so a crashed (kill -9) leaf's
	// replacement recovers via snapshot images + WAL replay instead of the
	// full disk translate.
	DisableWAL bool
	// SnapshotInterval is each leaf's incremental-snapshot + WAL-truncation
	// period (default 200ms, matching SyncInterval's test-speed default).
	SnapshotInterval time.Duration
	// ScrapeInterval, when positive, runs an aggregator-side cluster
	// scraper that pulls every leaf's metrics snapshot into
	// __system.leaf_metrics on this period.
	ScrapeInterval time.Duration
	// TelemetryInterval, when positive, turns on each scubad's
	// self-telemetry sink (its -telemetry-interval flag): metric snapshots
	// and flight-recorder events flow into that leaf's __system tables.
	TelemetryInterval time.Duration
	// ProfileInterval, when positive, sets each scubad's continuous
	// profiler cadence (its -profile-interval flag); steady and
	// anomaly-triggered captures land in __system.profiles. Zero leaves
	// the daemon's default (one minute, effectively idle at test scale).
	ProfileInterval time.Duration
	// InstantOn starts every leaf with -instant-on: a restarting leaf serves
	// queries zero-copy from its mmap'd shm backup as soon as validation
	// passes, and the copy-in runs as background promotion.
	InstantOn bool
	// PromoteWorkers is each leaf's -promote-workers (0 = NumCPU).
	PromoteWorkers int
}

// ProcLeaf is one leaf slot of a subprocess cluster: the OS process comes
// and goes across restarts, the identity (ID, machine, addresses, shm
// metadata location, disk directory) stays.
type ProcLeaf struct {
	ID       int
	Machine  int
	Addr     string // RPC address; also the leaf's name in the shard map
	HTTPAddr string // observability mux (/debug/recovery)

	mu          sync.Mutex
	cmd         *exec.Cmd
	exited      chan error
	client      *wire.Client
	quarantined bool
}

// Client returns the leaf's RPC client (persistent across restarts: stale
// pooled connections fail fast and redial the replacement process).
func (l *ProcLeaf) Client() *wire.Client { return l.client }

// Quarantined reports whether a rollover gave up on this leaf.
func (l *ProcLeaf) Quarantined() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quarantined
}

// Kill sends SIGKILL to the leaf's current process (chaos drills: the
// process gets no chance to drain, so its shm backup stays invalid).
func (l *ProcLeaf) Kill() error {
	l.mu.Lock()
	cmd := l.cmd
	l.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return errors.New("cluster: leaf has no live process")
	}
	return cmd.Process.Kill()
}

// waitExit blocks until the current process exits (any exit status counts:
// the process only needs to be gone).
func (l *ProcLeaf) waitExit(timeout time.Duration) error {
	l.mu.Lock()
	exited := l.exited
	l.mu.Unlock()
	if exited == nil {
		return nil
	}
	select {
	case <-exited:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("cluster: leaf %d process still running after %v", l.ID, timeout)
	}
}

// recoveryPath asks the replacement process which recovery path it took
// ("memory", "mixed", "wal", "disk") via /debug/recovery — the same endpoint
// the production rollover script polls.
func (l *ProcLeaf) recoveryPath() string {
	resp, err := http.Get("http://" + l.HTTPAddr + "/debug/recovery")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var dump struct {
		Recovery struct {
			Path string
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return ""
	}
	return dump.Recovery.Path
}

// ProcRecovery is the slice of a leaf's /debug/recovery answer that restart
// tooling acts on.
type ProcRecovery struct {
	Path     string
	Duration time.Duration
	// PerTable breaks the restore down by table; on an instant-on restart a
	// table's Duration is its view validation (metadata + CRC) time, on a
	// copy-in restart the full shm-to-heap copy.
	PerTable []struct {
		Table    string
		Duration time.Duration
	}
	ServedFromShm  int64 `json:"served_from_shm"`
	PromotedBlocks int64 `json:"promoted_blocks"`
}

// RestoreDuration returns the longest single-table restore within the
// recovery — the data-proportional part of the availability gap, net of
// fixed leaf-boot costs that both restart paths pay identically.
func (r ProcRecovery) RestoreDuration() time.Duration {
	var d time.Duration
	for _, t := range r.PerTable {
		if t.Duration > d {
			d = t.Duration
		}
	}
	return d
}

// Recovery fetches the leaf's live /debug/recovery state: which path the
// last restart took, how long recovery ran before the leaf could serve, and
// — during an instant-on restart — how many blocks are still shm-resident.
func (l *ProcLeaf) Recovery() (ProcRecovery, error) {
	resp, err := http.Get("http://" + l.HTTPAddr + "/debug/recovery")
	if err != nil {
		return ProcRecovery{}, err
	}
	defer resp.Body.Close()
	var dump struct {
		Recovery ProcRecovery `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return ProcRecovery{}, err
	}
	return dump.Recovery, nil
}

// ProcCluster is a set of scubad subprocesses plus one shard-routing
// aggregator server over them.
type ProcCluster struct {
	cfg     ProcConfig
	leaves  []*ProcLeaf
	router  *shard.Router
	aggSrv  *wire.AggServer
	aggCli  *wire.Client
	sink    *obs.Sink
	scraper *wire.Scraper
}

// StartProcCluster builds the leaf processes and the aggregator. The caller
// must Close the cluster (which kills every subprocess).
func StartProcCluster(cfg ProcConfig) (*ProcCluster, error) {
	if cfg.BinPath == "" {
		return nil, errors.New("cluster: ProcConfig.BinPath is required (see BuildScubad)")
	}
	if cfg.Machines <= 0 || cfg.LeavesPerMachine <= 0 {
		return nil, errors.New("cluster: machines and leaves per machine must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Namespace == "" {
		cfg.Namespace = "proc"
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 200 * time.Millisecond
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 200 * time.Millisecond
	}
	pc := &ProcCluster{cfg: cfg}
	n := cfg.Machines * cfg.LeavesPerMachine
	ports, err := freeLoopbackAddrs(2 * n)
	if err != nil {
		return nil, err
	}
	for id := 0; id < n; id++ {
		l := &ProcLeaf{ID: id, Machine: id / cfg.LeavesPerMachine,
			Addr: ports[2*id], HTTPAddr: ports[2*id+1]}
		l.client = wire.Dial(l.Addr)
		if err := pc.startLeaf(l); err != nil {
			pc.Close()
			return nil, err
		}
		pc.leaves = append(pc.leaves, l)
	}
	for _, l := range pc.leaves {
		if err := pc.waitReady(l); err != nil {
			pc.Close()
			return nil, err
		}
	}

	addrs := make([]string, n)
	machines := make([]int, n)
	for i, l := range pc.leaves {
		addrs[i] = l.Addr
		machines[i] = l.Machine
	}
	srv, err := wire.NewAggServer(addrs, "127.0.0.1:0")
	if err != nil {
		pc.Close()
		return nil, err
	}
	pc.aggSrv = srv
	pc.router = wire.ShardRouting(srv.Aggregator(), addrs, machines, cfg.Replication, cfg.NumShards)
	pc.aggCli = wire.Dial(srv.Addr())
	if cfg.ScrapeInterval > 0 {
		// The scraper's sink delivers into the cluster itself: rows go to
		// the first live leaf, whence every aggregator query finds them.
		pc.sink = obs.NewSink(obs.SinkConfig{
			Emit:            pc.emitSystemRows,
			Source:          "aggd",
			MetricsInterval: -1, // the scraper drives delivery
		})
		targets := make([]wire.ScrapeTarget, len(pc.leaves))
		for i, l := range pc.leaves {
			targets[i] = wire.ScrapeTarget{Name: l.Addr, Client: l.client}
		}
		pc.scraper = wire.StartScraper(wire.ScraperConfig{
			Leaves:   targets,
			Sink:     pc.sink,
			Router:   pc.router,
			Interval: cfg.ScrapeInterval,
		})
	}
	return pc, nil
}

// Scraper exposes the cluster scraper (nil unless ScrapeInterval was set);
// tests use ScrapeOnce for a deterministic pull.
func (pc *ProcCluster) Scraper() *wire.Scraper { return pc.scraper }

// startLeaf execs a scubad process on the leaf's fixed identity.
func (pc *ProcCluster) startLeaf(l *ProcLeaf) error {
	args := []string{
		"-id", strconv.Itoa(l.ID),
		"-addr", l.Addr,
		"-http", l.HTTPAddr,
		"-shm-dir", pc.cfg.WorkDir,
		"-namespace", pc.cfg.Namespace,
		"-disk-root", pc.cfg.WorkDir + "/disk",
		"-sync-interval", pc.cfg.SyncInterval.String(),
	}
	if !pc.cfg.DisableWAL {
		args = append(args,
			"-wal-dir", pc.cfg.WorkDir+"/wal",
			"-snapshot-interval", pc.cfg.SnapshotInterval.String(),
		)
	}
	if pc.cfg.TelemetryInterval > 0 {
		args = append(args, "-telemetry-interval", pc.cfg.TelemetryInterval.String())
	}
	if pc.cfg.ProfileInterval > 0 {
		args = append(args, "-profile-interval", pc.cfg.ProfileInterval.String())
	}
	if pc.cfg.InstantOn {
		args = append(args, "-instant-on")
		if pc.cfg.PromoteWorkers > 0 {
			args = append(args, "-promote-workers", strconv.Itoa(pc.cfg.PromoteWorkers))
		}
	}
	cmd := exec.Command(pc.cfg.BinPath, args...)
	if pc.cfg.Logs != nil {
		cmd.Stdout = pc.cfg.Logs
		cmd.Stderr = pc.cfg.Logs
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: starting leaf %d: %w", l.ID, err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	l.mu.Lock()
	l.cmd = cmd
	l.exited = exited
	l.mu.Unlock()
	return nil
}

// waitReady polls Ping until the leaf's server answers. scubad listens only
// after recovery completes, so a successful Ping means the leaf is serving
// its recovered data.
func (pc *ProcCluster) waitReady(l *ProcLeaf) error {
	deadline := time.Now().Add(pc.cfg.ReadyTimeout)
	for time.Now().Before(deadline) {
		if err := l.client.Ping(); err == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: leaf %d (%s) not ready after %v", l.ID, l.Addr, pc.cfg.ReadyTimeout)
}

// Leaves returns all leaf slots.
func (pc *ProcCluster) Leaves() []*ProcLeaf { return pc.leaves }

// Leaf returns one leaf slot by ID.
func (pc *ProcCluster) Leaf(id int) *ProcLeaf { return pc.leaves[id] }

// SetInstantOn flips whether leaves spawned from here on boot with
// -instant-on. Running processes keep their flags until their next restart;
// a rollover respawns every leaf, so flipping this between two rollovers
// compares the copy-in barrier and the instant-on path over identical data.
func (pc *ProcCluster) SetInstantOn(on bool) { pc.cfg.InstantOn = on }

// Router exposes the aggregator's shard router.
func (pc *ProcCluster) Router() *shard.Router { return pc.router }

// AggAddr is the aggregator server's address.
func (pc *ProcCluster) AggAddr() string { return pc.aggSrv.Addr() }

// AggClient is a client of the aggregator: queries, plus the SetLeafStatus
// and ShardMap admin RPCs the rollover drives.
func (pc *ProcCluster) AggClient() *wire.Client { return pc.aggCli }

// Aggregator exposes the in-process aggregator behind the cluster's RPC
// server, so tests can attach a tracer (and through it the continuous
// profiler's slow-query hook) to the real query path.
func (pc *ProcCluster) Aggregator() *aggregator.Aggregator { return pc.aggSrv.Aggregator() }

// FlushAll raises the durability barrier on every live leaf: seal and sync
// everything to disk, so even a kill -9 from here on loses nothing.
func (pc *ProcCluster) FlushAll() error {
	for _, l := range pc.leaves {
		if l.Quarantined() {
			continue
		}
		if err := l.client.Flush(); err != nil {
			return fmt.Errorf("cluster: flushing leaf %d: %w", l.ID, err)
		}
	}
	return nil
}

// NewShardedPlacer builds a dual-writing placer over the leaf RPC clients,
// sharing the aggregator's router so reads and writes agree on ownership.
func (pc *ProcCluster) NewShardedPlacer() *tailer.ShardedPlacer {
	targets := make([]tailer.Target, len(pc.leaves))
	for i, l := range pc.leaves {
		targets[i] = l.client
	}
	return tailer.NewShardedPlacer(targets, pc.router)
}

// Close kills every subprocess and releases sockets. Safe on a
// partially-started cluster.
func (pc *ProcCluster) Close() {
	pc.scraper.Stop()
	pc.sink.Close()
	for _, l := range pc.leaves {
		l.Kill()                    //nolint:errcheck
		l.waitExit(5 * time.Second) //nolint:errcheck
		l.client.Close()            //nolint:errcheck
	}
	if pc.aggCli != nil {
		pc.aggCli.Close() //nolint:errcheck
	}
	if pc.aggSrv != nil {
		pc.aggSrv.Close() //nolint:errcheck
	}
}

// ProcRolloverConfig drives a subprocess rollover. The zero value restarts
// 2% of leaves per batch through shared memory.
type ProcRolloverConfig struct {
	// BatchFraction is the share of leaves restarted at once (default 0.02).
	BatchFraction float64
	// MaxPerMachine bounds concurrent restarts on one machine (default 1,
	// §4.2: each restarting leaf gets its machine's full bandwidth).
	MaxPerMachine int
	// UseShm selects the fast path; false is the disk-recovery baseline.
	UseShm bool
	// KillTimeout bounds each leaf's drain; a leaf still alive after it is
	// SIGKILLed and its shm backup discarded, so the replacement recovers
	// from disk (§4.3; default 3 minutes, the paper's script timeout).
	KillTimeout time.Duration
	// MaxDiskFallback aborts when more than this fraction of restarted
	// leaves disk-recover (0 disables) — the §4.5 canary guard.
	MaxDiskFallback float64
	// Tables lists tables whose shard coverage batches must preserve: the
	// picker never drains every owner of any of their shards at once.
	Tables []string
	// OnBatch, if set, is called with the batch's leaf addresses after they
	// are flipped to DRAINING and before any shutdown RPC — the hook chaos
	// drills use to kill a leaf mid-batch.
	OnBatch func(batch int, draining []string)
	// MaxAvailabilityGap, when positive, aborts the rollover if any restarted
	// leaf takes longer than this from replacement exec to first successful
	// Ping (scubad only listens once recovery completes, so a Ping answer
	// means queries are being served). This is the instant-on gate: a leaf
	// that blocks availability on its full copy-in blows the budget.
	MaxAvailabilityGap time.Duration
}

// ProcRestart records one subprocess restart.
type ProcRestart struct {
	Leaf int
	Addr string
	// Killed: the drain missed KillTimeout and the process was SIGKILLed.
	Killed bool
	// Crashed: the shutdown RPC failed because the process was already dead
	// (or died mid-drain) — the replacement recovers from disk.
	Crashed bool
	// RecoveryPath is the replacement's /debug/recovery answer.
	RecoveryPath string
	// Gap is the availability gap: replacement exec to first successful Ping.
	Gap time.Duration
	// Err is set when the slot was quarantined (replacement never ready).
	Err      string
	Duration time.Duration
}

// ProcRolloverReport summarizes a subprocess rollover.
type ProcRolloverReport struct {
	Duration time.Duration
	Batches  int
	Restarts []ProcRestart
	// Recovery paths taken by successful restarts. WALRecoveries counts
	// replacements that came back via snapshot images + WAL replay (crashed
	// or killed leaves whose log survived).
	MemoryRecoveries int
	MixedRecoveries  int
	DiskRecoveries   int
	WALRecoveries    int
	// ShmViewRecoveries counts replacements that came up instant-on, serving
	// zero-copy from the shm backup while promotion ran in the background.
	ShmViewRecoveries int
	// MaxGap is the largest availability gap any successful restart paid.
	MaxGap time.Duration
	// Quarantined leaves were left DOWN: their replacement process never
	// became ready, so their shards keep serving from replicas.
	Quarantined []int
	// Aborted is set when the MaxDiskFallback guard stopped the rollover.
	Aborted bool
}

// ProcRollover upgrades every live leaf, BatchFraction at a time: flip the
// batch to DRAINING in the shard map (queries move to replicas), drain each
// leaf to shared memory over RPC, restart its process, confirm recovery,
// and flip it back to ACTIVE. A leaf whose replacement never answers is
// quarantined DOWN rather than hanging the rollover.
func (pc *ProcCluster) ProcRollover(cfg ProcRolloverConfig) (*ProcRolloverReport, error) {
	if cfg.BatchFraction <= 0 {
		cfg.BatchFraction = 0.02
	}
	if cfg.MaxPerMachine <= 0 {
		cfg.MaxPerMachine = 1
	}
	if cfg.KillTimeout <= 0 {
		cfg.KillTimeout = 3 * time.Minute
	}
	var pending []*ProcLeaf
	for _, l := range pc.leaves {
		if !l.Quarantined() {
			pending = append(pending, l)
		}
	}
	batchSize := int(math.Ceil(cfg.BatchFraction * float64(len(pending))))
	if batchSize < 1 {
		batchSize = 1
	}
	var veto func(chosen []*ProcLeaf, l *ProcLeaf) bool
	if len(cfg.Tables) > 0 {
		veto = shardConflictVeto(pc.router, cfg.Tables, func(l *ProcLeaf) string { return l.Addr })
	}

	begin := time.Now()
	report := &ProcRolloverReport{}
	restarted := 0
	for batchNum := 0; len(pending) > 0; batchNum++ {
		var batch []*ProcLeaf
		batch, pending = pickBatch(pending, batchSize, cfg.MaxPerMachine,
			func(l *ProcLeaf) int { return l.Machine }, veto)

		// Drain the whole batch in the shard map first, through the same
		// admin RPC an external orchestrator would use, so no new query
		// routes to a leaf about to exit.
		draining := make([]string, len(batch))
		for i, l := range batch {
			draining[i] = l.Addr
			if err := pc.aggCli.SetLeafStatus(l.Addr, shard.StatusDraining); err != nil {
				return report, fmt.Errorf("cluster: draining %s: %w", l.Addr, err)
			}
		}
		if cfg.OnBatch != nil {
			cfg.OnBatch(batchNum, draining)
		}

		reps := make([]ProcRestart, len(batch))
		var wg sync.WaitGroup
		for i, l := range batch {
			wg.Add(1)
			go func(i int, l *ProcLeaf) {
				defer wg.Done()
				reps[i] = pc.restartLeaf(l, cfg)
			}(i, l)
		}
		wg.Wait()

		for _, rep := range reps {
			report.Restarts = append(report.Restarts, rep)
			if rep.Err != "" {
				report.Quarantined = append(report.Quarantined, rep.Leaf)
				continue
			}
			restarted++
			switch rep.RecoveryPath {
			case "memory":
				report.MemoryRecoveries++
			case "mixed":
				report.MixedRecoveries++
			case "disk":
				report.DiskRecoveries++
			case "wal":
				report.WALRecoveries++
			case "shm-view":
				report.ShmViewRecoveries++
			}
			if rep.Gap > report.MaxGap {
				report.MaxGap = rep.Gap
			}
			if cfg.MaxAvailabilityGap > 0 && rep.Gap > cfg.MaxAvailabilityGap {
				report.Aborted = true
				report.Duration = time.Since(begin)
				sortRestarts(report.Restarts)
				return report, fmt.Errorf("%w: leaf %d availability gap %v exceeds budget %v",
					ErrRolloverAborted, rep.Leaf, rep.Gap, cfg.MaxAvailabilityGap)
			}
		}
		report.Batches++

		// The canary guard (§4.5): a wave of disk fallbacks means the new
		// binary cannot read the old shm segments — stop before the rest of
		// the cluster pays disk-recovery time.
		if cfg.MaxDiskFallback > 0 && restarted > 0 {
			frac := float64(report.DiskRecoveries) / float64(restarted)
			if frac > cfg.MaxDiskFallback {
				report.Aborted = true
				report.Duration = time.Since(begin)
				sortRestarts(report.Restarts)
				return report, fmt.Errorf("%w: %d of %d restarted leaves (%.0f%%) fell back to disk recovery, limit %.0f%%: stopping after batch %d with %d leaves pending",
					ErrRolloverAborted, report.DiskRecoveries, restarted, frac*100,
					cfg.MaxDiskFallback*100, batchNum, len(pending))
			}
		}
	}
	report.Duration = time.Since(begin)
	sortRestarts(report.Restarts)
	return report, nil
}

func sortRestarts(rs []ProcRestart) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Leaf < rs[j].Leaf })
}

// restartLeaf is the per-leaf step the production script runs: shutdown RPC
// (drain to shm), wait for the process to die (SIGKILL past the timeout),
// start the replacement on the same identity, wait for it to serve, read
// its recovery path, and put it back in the shard map. A failure leaves the
// slot quarantined DOWN.
func (pc *ProcCluster) restartLeaf(l *ProcLeaf, cfg ProcRolloverConfig) ProcRestart {
	rep := ProcRestart{Leaf: l.ID, Addr: l.Addr}
	start := time.Now()

	drained := make(chan error, 1)
	go func() {
		_, err := l.client.Shutdown(cfg.UseShm)
		drained <- err
	}()
	select {
	case err := <-drained:
		if err != nil {
			// The process crashed before (or during) the drain: make sure
			// it is gone and restart from whatever the disk backup holds.
			rep.Crashed = true
			l.Kill() //nolint:errcheck
		}
	case <-time.After(cfg.KillTimeout):
		rep.Killed = true
		l.Kill() //nolint:errcheck
	}
	if err := l.waitExit(10 * time.Second); err != nil {
		l.Kill()                     //nolint:errcheck
		l.waitExit(10 * time.Second) //nolint:errcheck
	}
	if rep.Killed && cfg.UseShm {
		// A killed leaf cannot be trusted to have completed its backup;
		// discard it so the replacement restarts from disk (§4.3).
		m := shm.NewManager(l.ID, shm.Options{Dir: pc.cfg.WorkDir, Namespace: pc.cfg.Namespace})
		if err := m.Invalidate(); err != nil {
			rep.Err = err.Error()
		}
	}

	quarantine := func(err error) ProcRestart {
		rep.Err = err.Error()
		rep.Duration = time.Since(start)
		l.mu.Lock()
		l.quarantined = true
		l.mu.Unlock()
		pc.aggCli.SetLeafStatus(l.Addr, shard.StatusDown) //nolint:errcheck
		return rep
	}
	bootBegin := time.Now()
	if err := pc.startLeaf(l); err != nil {
		return quarantine(err)
	}
	if err := pc.waitReady(l); err != nil {
		return quarantine(err)
	}
	rep.Gap = time.Since(bootBegin)
	rep.RecoveryPath = l.recoveryPath()
	if err := pc.aggCli.SetLeafStatus(l.Addr, shard.StatusActive); err != nil {
		return quarantine(err)
	}
	rep.Duration = time.Since(start)
	return rep
}

// freeLoopbackAddrs reserves n distinct loopback ports by holding all n
// listeners open before releasing any — releasing one at a time lets the
// kernel hand the same port out twice. The ports stay the leaves'
// identities across restarts, like a production leaf's fixed service port.
func freeLoopbackAddrs(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
