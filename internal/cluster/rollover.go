package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/shard"
)

// RolloverConfig drives a system-wide software upgrade (§4.5).
type RolloverConfig struct {
	// BatchFraction is the share of leaves restarted at once; the paper
	// typically restarts 2% at a time to keep 98% of data available.
	BatchFraction float64
	// UseShm selects the fast path; false is the disk-recovery baseline.
	UseShm bool
	// TargetVersion stamps upgraded processes.
	TargetVersion int
	// KillTimeout per leaf (see RestartOptions.KillTimeout).
	KillTimeout time.Duration
	// MaxPerMachine bounds concurrent restarts on one machine. The paper
	// restarts one leaf per machine at a time so the full machine's memory
	// (or disk) bandwidth goes to each restarting leaf (§2, §4.2, §6).
	MaxPerMachine int
	// WaitForRecovery requires each batch's leaves to be fully ALIVE (disk
	// recovery included) before the next batch starts. The rollover script
	// detects that a leaf is done with recovery and then initiates
	// rollover for the next one (§4.5).
	WaitForRecovery bool
	// MaxDiskFallback aborts the rollover when more than this fraction of
	// restarted leaves fall back to full disk recovery (0 disables the
	// guard). A healthy shm rollover disk-recovers almost never; a wave of
	// disk fallbacks means the new build can't read the old segments (a
	// layout-version mistake, a corrupting bug) and finishing the rollover
	// would pay hours of disk recovery cluster-wide — stopping early
	// mirrors the canary's intent (§4.5). Only meaningful with UseShm.
	MaxDiskFallback float64
	// Tables lists the tables whose shard coverage each batch must preserve
	// (shard mode only): the batch picker never drains every owner of any
	// shard of a listed table at once, so queries on those tables keep full
	// coverage through the rollover. A node that conflicts with the current
	// batch is deferred to a later one. Empty = no conflict filtering; the
	// coverage floor is then 1 - BatchFraction instead of 1.
	Tables []string
	// Obs, when non-nil, records abort decisions in the flight recorder so
	// a post-mortem shows why the rollover stopped.
	Obs *obs.Observer
	// OnBatch, if set, is called with a dashboard snapshot after every
	// batch (Figure 8).
	OnBatch func(batch int, snap Snapshot)
	// Metrics, when non-nil, receives rollover instrumentation: the
	// rollover.batch timer, rollover.restarts counter, the
	// rollover.recovery.memory / rollover.recovery.disk path counters, and
	// a rollover.min_availability_bp gauge (basis points of data available
	// at the worst moment so far).
	Metrics *metrics.Registry
}

// TimelinePoint is one dashboard sample (Figure 8).
type TimelinePoint struct {
	Elapsed time.Duration
	Batch   int
	Snap    Snapshot
}

// RolloverReport summarizes a completed rollover.
type RolloverReport struct {
	Duration time.Duration
	Batches  int
	Restarts []RestartReport
	Timeline []TimelinePoint
	// MinAvailability is the lowest data availability observed.
	MinAvailability float64
	// MemoryRecoveries, MixedRecoveries, and DiskRecoveries count recovery
	// paths taken (mixed = some tables quarantined to disk).
	MemoryRecoveries int
	MixedRecoveries  int
	DiskRecoveries   int
	// ShmViewRecoveries counts instant-on restarts: the node came back
	// serving zero-copy from its shm backup.
	ShmViewRecoveries int
	// Aborted is set when the MaxDiskFallback guard stopped the rollover.
	Aborted bool
}

// ErrRolloverAborted is returned (wrapped) when the MaxDiskFallback guard
// stops a rollover.
var ErrRolloverAborted = errors.New("cluster: rollover aborted")

// Rollover upgrades every node, BatchFraction at a time, at most
// MaxPerMachine per machine concurrently within a batch.
func (c *Cluster) Rollover(cfg RolloverConfig) (*RolloverReport, error) {
	if cfg.BatchFraction <= 0 {
		cfg.BatchFraction = 0.02
	}
	if cfg.MaxPerMachine <= 0 {
		cfg.MaxPerMachine = 1
	}
	if cfg.TargetVersion == 0 {
		cfg.TargetVersion = c.maxVersion() + 1
	}
	batchSize := int(math.Ceil(cfg.BatchFraction * float64(len(c.nodes))))
	if batchSize < 1 {
		batchSize = 1
	}

	begin := time.Now()
	report := &RolloverReport{MinAvailability: 1}
	pending := make([]*Node, len(c.nodes))
	copy(pending, c.nodes)

	restarted := 0
	for batchNum := 0; len(pending) > 0; batchNum++ {
		batchStart := time.Now()
		batch, rest := pickBatch(pending, batchSize, cfg.MaxPerMachine,
			func(n *Node) int { return n.Machine }, c.batchConflictFilter(cfg.Tables))
		pending = rest

		// The dashboard view while this batch is in flight (Figure 8):
		// the batch's leaves are rolling over, everything else serves.
		during := Snapshot{
			OldVersion:        len(rest),
			RollingOver:       len(batch),
			NewVersion:        restarted,
			AvailableFraction: 1 - float64(len(batch))/float64(len(c.nodes)),
		}
		if during.AvailableFraction < report.MinAvailability {
			report.MinAvailability = during.AvailableFraction
		}
		if cfg.OnBatch != nil {
			cfg.OnBatch(batchNum, during)
		}

		// Shard mode: flip the batch to DRAINING before any shutdown, so
		// queries racing the restart fail over to replicas instead of
		// hitting a dead process (the tentpole's availability mechanism).
		if c.router != nil {
			for _, n := range batch {
				c.router.SetStatusByName(n.Name(), shard.StatusDraining) //nolint:errcheck
			}
		}

		var mu sync.Mutex
		var firstErr error
		var wg sync.WaitGroup
		for _, n := range batch {
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				rep, err := n.Restart(RestartOptions{
					UseShm:      cfg.UseShm,
					NewVersion:  cfg.TargetVersion,
					KillTimeout: cfg.KillTimeout,
				})
				if c.router != nil {
					// Back in the map the moment its recovery finished (or
					// DOWN if the restart failed outright).
					st := shard.StatusActive
					if err != nil {
						st = shard.StatusDown
					}
					c.router.SetStatusByName(n.Name(), st) //nolint:errcheck
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("cluster: restarting node %d: %w", n.GlobalID, err)
					return
				}
				report.Restarts = append(report.Restarts, rep)
				switch rep.Recovery.Path {
				case "memory":
					report.MemoryRecoveries++
					if cfg.Metrics != nil {
						cfg.Metrics.Counter("rollover.recovery.memory").Add(1)
					}
				case "mixed":
					report.MixedRecoveries++
					if cfg.Metrics != nil {
						cfg.Metrics.Counter("rollover.recovery.mixed").Add(1)
					}
				case "disk":
					report.DiskRecoveries++
					if cfg.Metrics != nil {
						cfg.Metrics.Counter("rollover.recovery.disk").Add(1)
					}
				case "shm-view":
					report.ShmViewRecoveries++
					if cfg.Metrics != nil {
						cfg.Metrics.Counter("rollover.recovery.shm_view").Add(1)
					}
				}
			}(n)
		}
		wg.Wait()
		if firstErr != nil {
			return report, firstErr
		}

		restarted += len(batch)
		snap := c.Snapshot(cfg.TargetVersion)
		if snap.AvailableFraction < report.MinAvailability {
			report.MinAvailability = snap.AvailableFraction
		}
		report.Timeline = append(report.Timeline, TimelinePoint{
			Elapsed: time.Since(begin), Batch: batchNum, Snap: snap,
		})
		report.Batches++
		if r := cfg.Metrics; r != nil {
			r.Timer("rollover.batch").Observe(time.Since(batchStart))
			r.Counter("rollover.restarts").Add(int64(len(batch)))
			r.Gauge("rollover.min_availability_bp").Set(int64(report.MinAvailability * 10000))
		}
		// The canary guard (§4.5): too many disk fallbacks means the new
		// build cannot read the old segments — stop before the rest of the
		// cluster pays hours of disk recovery.
		if cfg.MaxDiskFallback > 0 && restarted > 0 {
			frac := float64(report.DiskRecoveries) / float64(restarted)
			if frac > cfg.MaxDiskFallback {
				report.Aborted = true
				report.Duration = time.Since(begin)
				msg := fmt.Sprintf("%d of %d restarted leaves (%.0f%%) fell back to disk recovery, limit %.0f%%: stopping after batch %d with %d leaves pending",
					report.DiskRecoveries, restarted, frac*100, cfg.MaxDiskFallback*100, batchNum, len(pending))
				cfg.Obs.Event(obs.EventFail, "rollover.abort", msg)
				if cfg.Metrics != nil {
					cfg.Metrics.Counter("rollover.aborts").Add(1)
				}
				return report, fmt.Errorf("%w: %s", ErrRolloverAborted, msg)
			}
		}
		_ = cfg.WaitForRecovery // Restart is synchronous: recovery completed
	}
	report.Duration = time.Since(begin)
	sort.Slice(report.Restarts, func(i, j int) bool {
		return report.Restarts[i].Node < report.Restarts[j].Node
	})
	return report, nil
}

// pickBatch selects up to batchSize nodes, at most perMachine per machine,
// preferring to spread across machines so each restarting leaf gets its
// whole machine's bandwidth (§2: "16 leaf servers on 16 machines"). canAdd
// (nil = always) additionally vetoes nodes that would break shard coverage
// alongside the nodes already chosen; vetoed nodes are deferred to a later
// batch, after the current batch's leaves are ACTIVE again. Generic over the
// node type so the in-process Cluster and the subprocess ProcCluster share
// one batch policy.
func pickBatch[N any](pending []N, batchSize, perMachine int, machineOf func(N) int, canAdd func(chosen []N, n N) bool) (batch, rest []N) {
	used := make(map[int]int)
	var deferred []N
	for _, n := range pending {
		if len(batch) < batchSize && used[machineOf(n)] < perMachine &&
			(canAdd == nil || canAdd(batch, n)) {
			batch = append(batch, n)
			used[machineOf(n)]++
		} else {
			deferred = append(deferred, n)
		}
	}
	if len(batch) == 0 && len(pending) > 0 {
		// Every pending node conflicts on its own (R=1, or replicas already
		// down): restart one anyway so the rollover terminates — coverage
		// dips to the replica-less floor for that batch.
		return pending[:1:1], append([]N(nil), pending[1:]...)
	}
	return batch, deferred
}

// shardConflictVeto builds a pickBatch veto from a shard router: draining the
// candidate alongside the chosen batch must leave every shard of every listed
// table with at least one ACTIVE owner.
func shardConflictVeto[N any](r *shard.Router, tables []string, nameOf func(N) string) func(chosen []N, n N) bool {
	return func(chosen []N, n N) bool {
		m := r.Map()
		status := r.Status()
		mark := func(node N) {
			if i := m.LeafIndex(nameOf(node)); i >= 0 && i < len(status) {
				status[i] = shard.StatusDraining
			}
		}
		for _, b := range chosen {
			mark(b)
		}
		mark(n)
		for _, tbl := range tables {
			for s := 0; s < m.NumShards; s++ {
				served := false
				for _, o := range m.Owners(tbl, s) {
					if o < len(status) && status[o] == shard.StatusActive {
						served = true
						break
					}
				}
				if !served {
					return false
				}
			}
		}
		return true
	}
}

// batchConflictFilter is shardConflictVeto over the in-process cluster's
// router; nil when not sharded or no tables are listed.
func (c *Cluster) batchConflictFilter(tables []string) func(chosen []*Node, n *Node) bool {
	if c.router == nil || len(tables) == 0 {
		return nil
	}
	return shardConflictVeto(c.router, tables, (*Node).Name)
}

func (c *Cluster) maxVersion() int {
	v := 0
	for _, n := range c.nodes {
		if nv := n.Version(); nv > v {
			v = nv
		}
	}
	return v
}
