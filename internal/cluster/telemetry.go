package cluster

// Telemetry persistence: rollover drills and availability probes used to
// print their timelines and throw them away. Here those reports become
// __system.rollover rows ingested through the ordinary leaf path, so the
// coverage dips and recovery paths of a restart drill are queryable through
// the same aggregator the drill was exercising — and, because __system
// tables are plain leaf tables, the history itself survives the next
// restart through shared memory.

import (
	"errors"
	"time"

	"scuba/internal/obs"
	"scuba/internal/rowblock"
)

// Rows converts a probe report into __system.rollover rows: one
// event="probe" row per observation (the coverage/latency timeline) plus a
// closing event="probe_summary" row. start anchors the timeline's absolute
// timestamps; source labels who ran the probe.
func (r *AvailabilityReport) Rows(source string, start time.Time) []rowblock.Row {
	rows := make([]rowblock.Row, 0, len(r.Points)+1)
	for _, pt := range r.Points {
		rows = append(rows, rowblock.Row{
			Time: start.Add(pt.Elapsed).Unix(),
			Cols: map[string]rowblock.Value{
				"source":         rowblock.StringValue(source),
				"event":          rowblock.StringValue("probe"),
				"elapsed_us":     rowblock.Int64Value(pt.Elapsed.Microseconds()),
				"shard_coverage": rowblock.Float64Value(pt.ShardCoverage),
				"leaf_coverage":  rowblock.Float64Value(pt.LeafCoverage),
				"latency_us":     rowblock.Int64Value(pt.Latency.Microseconds()),
			},
		})
	}
	end := start
	if n := len(r.Points); n > 0 {
		end = start.Add(r.Points[n-1].Elapsed)
	}
	rows = append(rows, rowblock.Row{
		Time: end.Unix(),
		Cols: map[string]rowblock.Value{
			"source":             rowblock.StringValue(source),
			"event":              rowblock.StringValue("probe_summary"),
			"queries":            rowblock.Int64Value(int64(r.Queries)),
			"errors":             rowblock.Int64Value(int64(r.Errors)),
			"wrong":              rowblock.Int64Value(int64(r.Wrong)),
			"min_shard_coverage": rowblock.Float64Value(r.MinShardCoverage),
			"min_leaf_coverage":  rowblock.Float64Value(r.MinLeafCoverage),
			"p50_us":             rowblock.Int64Value(r.P50.Microseconds()),
			"p99_us":             rowblock.Int64Value(r.P99.Microseconds()),
		},
	})
	return rows
}

// Rows converts a rollover report into __system.rollover rows: one
// event="restart" row per leaf restart plus a closing
// event="rollover_summary" row. start is when the rollover began.
func (r *ProcRolloverReport) Rows(source string, start time.Time) []rowblock.Row {
	rows := make([]rowblock.Row, 0, len(r.Restarts)+1)
	elapsed := time.Duration(0)
	for _, rs := range r.Restarts {
		// Restarts are sorted by leaf, not wall clock; stamping each row
		// with the running sum keeps timestamps inside the drill window
		// without claiming per-restart ordering the report doesn't record.
		elapsed += rs.Duration
		killed, crashed := int64(0), int64(0)
		if rs.Killed {
			killed = 1
		}
		if rs.Crashed {
			crashed = 1
		}
		rows = append(rows, rowblock.Row{
			Time: start.Add(elapsed).Unix(),
			Cols: map[string]rowblock.Value{
				"source":      rowblock.StringValue(source),
				"event":       rowblock.StringValue("restart"),
				"leaf":        rowblock.Int64Value(int64(rs.Leaf)),
				"addr":        rowblock.StringValue(rs.Addr),
				"recovery":    rowblock.StringValue(rs.RecoveryPath),
				"killed":      rowblock.Int64Value(killed),
				"crashed":     rowblock.Int64Value(crashed),
				"error":       rowblock.StringValue(rs.Err),
				"duration_us": rowblock.Int64Value(rs.Duration.Microseconds()),
			},
		})
	}
	aborted := int64(0)
	if r.Aborted {
		aborted = 1
	}
	rows = append(rows, rowblock.Row{
		Time: start.Add(r.Duration).Unix(),
		Cols: map[string]rowblock.Value{
			"source":            rowblock.StringValue(source),
			"event":             rowblock.StringValue("rollover_summary"),
			"batches":           rowblock.Int64Value(int64(r.Batches)),
			"restarts":          rowblock.Int64Value(int64(len(r.Restarts))),
			"memory_recoveries": rowblock.Int64Value(int64(r.MemoryRecoveries)),
			"mixed_recoveries":  rowblock.Int64Value(int64(r.MixedRecoveries)),
			"disk_recoveries":   rowblock.Int64Value(int64(r.DiskRecoveries)),
			"wal_recoveries":    rowblock.Int64Value(int64(r.WALRecoveries)),
			"quarantined":       rowblock.Int64Value(int64(len(r.Quarantined))),
			"aborted":           rowblock.Int64Value(aborted),
			"duration_us":       rowblock.Int64Value(r.Duration.Microseconds()),
		},
	})
	return rows
}

// PersistRollover writes a rollover report's timeline into
// __system.rollover via the first live leaf. The rows land in a plain
// leaf-local table, so every aggregator query for __system.rollover finds
// them regardless of shard routing.
func (pc *ProcCluster) PersistRollover(rep *ProcRolloverReport, source string, start time.Time) error {
	return pc.persistSystemRows(rep.Rows(source, start))
}

// PersistAvailability writes a probe report's coverage timeline into
// __system.rollover alongside the restart events it was measuring.
func (pc *ProcCluster) PersistAvailability(rep *AvailabilityReport, source string, start time.Time) error {
	return pc.persistSystemRows(rep.Rows(source, start))
}

func (pc *ProcCluster) persistSystemRows(rows []rowblock.Row) error {
	if len(rows) == 0 {
		return nil
	}
	return pc.emitSystemRows(obs.SystemRolloverTable, rows)
}

// emitSystemRows is the cluster-side sink Emit: deliver telemetry rows to
// the first live leaf that will take them.
func (pc *ProcCluster) emitSystemRows(table string, rows []rowblock.Row) error {
	var lastErr error
	for _, l := range pc.leaves {
		if l.Quarantined() {
			continue
		}
		if err := l.Client().AddRows(table, rows); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no live leaf to persist telemetry")
	}
	return lastErr
}
