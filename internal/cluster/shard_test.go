package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"scuba/internal/disk"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shard"
)

func newShardedCluster(t *testing.T, machines, leavesPerMachine, replication, numShards int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Machines:            machines,
		LeavesPerMachine:    leavesPerMachine,
		ShmDir:              t.TempDir(),
		DiskRoot:            t.TempDir(),
		Namespace:           "test",
		Format:              disk.FormatRow,
		MemoryBudgetPerLeaf: 1 << 30,
		Replication:         replication,
		NumShards:           numShards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loadSharded dual-writes rows through the cluster's sharded placer.
func loadSharded(t *testing.T, c *Cluster, totalRows int) {
	t.Helper()
	p := c.NewShardedPlacer()
	const batch = 50
	for sent := 0; sent < totalRows; sent += batch {
		rows := make([]rowblock.Row, batch)
		for i := range rows {
			rows[i] = rowblock.Row{Time: int64(1000 + sent + i), Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", (sent+i)%3)),
			}}
		}
		if _, err := p.Place("events", rows); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedClusterRolloverKeepsFullCoverage is the in-process version of
// the keystone: continuous queries during an R=2 rollover see 100% shard
// coverage and byte-identical results the whole way — the restarting
// primaries' shards serve from replicas.
func TestShardedClusterRolloverKeepsFullCoverage(t *testing.T) {
	c := newShardedCluster(t, 4, 2, 2, 16)
	loadSharded(t, c, 1000)
	agg := c.NewAggregator()
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}},
		GroupBy:      []string{"service"}}
	baseline, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ShardsAnswered != 16 {
		t.Fatalf("baseline coverage %d/16", baseline.ShardsAnswered)
	}
	baseRows := baseline.Rows(q)

	stop := make(chan struct{})
	var wrong, partial, queries atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := agg.Query(q)
			if err != nil {
				continue
			}
			queries.Add(1)
			if res.ShardCoverage() < 1 {
				partial.Add(1)
			}
			if !reflect.DeepEqual(res.Rows(q), baseRows) {
				wrong.Add(1)
			}
		}
	}()

	rep, err := c.Rollover(RolloverConfig{BatchFraction: 0.25, UseShm: true, MaxPerMachine: 1, Tables: []string{"events"}})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemoryRecoveries != c.Size() {
		t.Fatalf("memory recoveries = %d, want %d", rep.MemoryRecoveries, c.Size())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the rollover")
	}
	if p := partial.Load(); p != 0 {
		t.Fatalf("%d of %d queries saw partial shard coverage despite R=2", p, queries.Load())
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d of %d queries returned wrong results during rollover", w, queries.Load())
	}
	// The router must end with every leaf ACTIVE again.
	for i, st := range c.Router().Status() {
		if st != shard.StatusActive {
			t.Fatalf("leaf %d ended the rollover %v", i, st)
		}
	}
}

// TestShardedRolloverMarksFailedNodeDown: a node whose restart fails is left
// DOWN in the router so queries don't route to its corpse.
func TestShardedRolloverMarksFailedNodeDown(t *testing.T) {
	c := newShardedCluster(t, 2, 1, 2, 4)
	// Sabotage node 1: kill its process outside the rollover, so Restart
	// errors ("no live process").
	n := c.Node(1)
	n.mu.Lock()
	n.leaf = nil
	n.mu.Unlock()
	_, err := c.Rollover(RolloverConfig{BatchFraction: 1, MaxPerMachine: 1, UseShm: true})
	if err == nil {
		t.Fatal("rollover of a dead node should error")
	}
	sts := c.Router().Status()
	if sts[c.Node(1).GlobalID] != shard.StatusDown {
		t.Fatalf("failed node status = %v, want DOWN", sts[1])
	}
	// Queries still answer from the live replica at full coverage.
	res, qerr := c.NewAggregator().Query(&query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if res.ShardCoverage() < 1 {
		t.Fatalf("coverage %v with one DOWN node under R=2", res.ShardCoverage())
	}
}
