package cluster

import (
	"errors"
	"fmt"
	"time"
)

// Canary deployments are the paper's §6 observation made operational:
// "this fast rollover path allows us to deploy experimental software builds
// on a handful of machines, which we could not do if it took longer. We can
// add more logging, test bug fixes, and try new software designs — and then
// revert the changes if we wish."
//
// A canary restarts a chosen subset of leaves onto an experimental version
// through shared memory (seconds of unavailability per leaf), and Revert
// restarts the same leaves back — again through shared memory, so trying an
// experiment costs two fast restarts instead of two disk recoveries.

// CanaryConfig selects the experimental deployment.
type CanaryConfig struct {
	// Nodes are the global IDs of the leaves to move to the experimental
	// build ("a handful of machines").
	Nodes []int
	// Version identifies the experimental build.
	Version int
	// KillTimeout guards each restart like a normal rollover.
	KillTimeout time.Duration
}

// Canary tracks an in-flight experimental deployment.
type Canary struct {
	cluster     *Cluster
	cfg         CanaryConfig
	baseVersion int
	Deploy      []RestartReport
	reverted    bool
}

// ErrCanaryNodes rejects empty or out-of-range node selections.
var ErrCanaryNodes = errors.New("cluster: invalid canary node selection")

// StartCanary restarts the selected nodes onto the experimental version.
func (c *Cluster) StartCanary(cfg CanaryConfig) (*Canary, error) {
	if len(cfg.Nodes) == 0 {
		return nil, ErrCanaryNodes
	}
	for _, id := range cfg.Nodes {
		if id < 0 || id >= len(c.nodes) {
			return nil, fmt.Errorf("%w: node %d of %d", ErrCanaryNodes, id, len(c.nodes))
		}
	}
	if cfg.Version == 0 {
		cfg.Version = c.maxVersion() + 1
	}
	can := &Canary{cluster: c, cfg: cfg, baseVersion: c.nodes[cfg.Nodes[0]].Version()}
	for _, id := range cfg.Nodes {
		rep, err := c.nodes[id].Restart(RestartOptions{
			UseShm:      true,
			NewVersion:  cfg.Version,
			KillTimeout: cfg.KillTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: canary deploy on node %d: %w", id, err)
		}
		can.Deploy = append(can.Deploy, rep)
	}
	return can, nil
}

// Nodes returns the canaried node IDs.
func (can *Canary) Nodes() []int { return can.cfg.Nodes }

// Version returns the experimental version.
func (can *Canary) Version() int { return can.cfg.Version }

// Revert restarts the canaried leaves back onto the base version, again
// through shared memory: no data is lost in either direction.
func (can *Canary) Revert() ([]RestartReport, error) {
	if can.reverted {
		return nil, errors.New("cluster: canary already reverted")
	}
	var reports []RestartReport
	for _, id := range can.cfg.Nodes {
		rep, err := can.cluster.nodes[id].Restart(RestartOptions{
			UseShm:      true,
			NewVersion:  can.baseVersion,
			KillTimeout: can.cfg.KillTimeout,
		})
		if err != nil {
			return reports, fmt.Errorf("cluster: canary revert on node %d: %w", id, err)
		}
		reports = append(reports, rep)
	}
	can.reverted = true
	return reports, nil
}

// Promote rolls the experimental version out to the rest of the cluster
// (the canary succeeded), using the normal batched rollover.
func (can *Canary) Promote(cfg RolloverConfig) (*RolloverReport, error) {
	if can.reverted {
		return nil, errors.New("cluster: cannot promote a reverted canary")
	}
	cfg.TargetVersion = can.cfg.Version
	cfg.UseShm = true
	return can.cluster.Rollover(cfg)
}
