package wire

import (
	"strings"
	"testing"

	"scuba/internal/query"
)

func TestAggServerFansOutOverWire(t *testing.T) {
	// Two leaf servers over TCP, one aggregator server over TCP on top.
	s0, _, _ := newServer(t, 0)
	s1, _, _ := newServer(t, 1)
	loader0, loader1 := Dial(s0.Addr()), Dial(s1.Addr())
	defer loader0.Close()
	defer loader1.Close()
	if err := loader0.AddRows("events", mkRows(300, 0)); err != nil {
		t.Fatal(err)
	}
	if err := loader1.AddRows("events", mkRows(200, 5000)); err != nil {
		t.Fatal(err)
	}

	agg, err := NewAggServer([]string{s0.Addr(), s1.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	c := Dial(agg.Addr())
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}},
		GroupBy:      []string{"service"}}
	res, err := c.QueryVia(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 1 || rows[0].Values[0] != 500 {
		t.Fatalf("rows = %v", rows)
	}
	if res.LeavesTotal != 2 || res.LeavesAnswered != 2 {
		t.Errorf("coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
}

func TestAggServerPartialWhenLeafGone(t *testing.T) {
	s0, _, _ := newServer(t, 0)
	loader := Dial(s0.Addr())
	defer loader.Close()
	if err := loader.AddRows("events", mkRows(100, 0)); err != nil {
		t.Fatal(err)
	}
	// The second "leaf" address points nowhere.
	agg, err := NewAggServer([]string{s0.Addr(), "127.0.0.1:1"}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c := Dial(agg.Addr())
	defer c.Close()
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := c.QueryVia(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 1 || res.LeavesTotal != 2 {
		t.Errorf("coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 100 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
}

func TestAggServerRejectsNonQuery(t *testing.T) {
	s0, _, _ := newServer(t, 0)
	agg, err := NewAggServer([]string{s0.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c := Dial(agg.Addr())
	defer c.Close()
	if _, err := c.Stats(); err == nil || !strings.Contains(err.Error(), "does not handle") {
		t.Errorf("stats via aggregator: %v", err)
	}
	// Invalid queries come back as remote errors, not hangs.
	if _, err := c.QueryVia(&query.Query{}); err == nil {
		t.Error("invalid query accepted")
	}
}
