package wire

import (
	"reflect"
	"strings"
	"testing"

	"scuba/internal/aggregator"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/shard"
)

// TestShardQueryOverWire checks the shard-scoped query RPC: a leaf storing
// per-shard physical tables answers exactly the requested shards, and a
// shard it never ingested contributes an empty partial instead of an error.
func TestShardQueryOverWire(t *testing.T) {
	_, c, _ := newServer(t, 0)
	for _, s := range []int{0, 1, 2} {
		if err := c.AddRows(shard.PhysicalTable("events", s), mkRows(100, int64(1000*s))); err != nil {
			t.Fatal(err)
		}
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, exec, err := c.QueryShards(q, []int{0, 2, 7}, obs.TraceContext{TraceID: 1, SpanID: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	// Shards 0 and 2 hold 100 rows each; shard 7 was never ingested.
	if len(rows) != 1 || rows[0].Values[0] != 200 {
		t.Fatalf("rows = %v, want one group of 200", rows)
	}
	if exec == nil || exec.ShardsServed != 3 || exec.Table != "events" {
		t.Fatalf("exec = %+v, want ShardsServed=3 Table=events", exec)
	}
	if exec.SpanID != 2 {
		t.Fatalf("exec.SpanID = %d, want 2", exec.SpanID)
	}
}

// TestAggServerShardAdminRPCs drives the rollover orchestrator's RPCs: flip
// a leaf's status by name, read the map and statuses back, and get clean
// errors for unknown leaves and non-sharded aggregators.
func TestAggServerShardAdminRPCs(t *testing.T) {
	_, lc, _ := newServer(t, 0)
	agg := aggregator.New([]aggregator.LeafTarget{lc})
	ShardRouting(agg, []string{"leafA"}, []int{0}, 1, 4)
	as, err := NewAggServerOver(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	c := Dial(as.Addr())
	defer c.Close()

	if err := c.SetLeafStatus("leafA", shard.StatusDraining); err != nil {
		t.Fatal(err)
	}
	m, sts, ver, err := c.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Leaves) != 1 || m.Leaves[0].Name != "leafA" || m.NumShards != 4 {
		t.Fatalf("map = %s", m)
	}
	if len(sts) != 1 || sts[0] != shard.StatusDraining {
		t.Fatalf("statuses = %v, want [DRAINING]", sts)
	}
	if ver == 0 {
		t.Fatal("router version still 0 after a mutation")
	}
	if err := c.SetLeafStatus("nosuch", shard.StatusDown); err == nil || !strings.Contains(err.Error(), "no leaf") {
		t.Fatalf("unknown leaf err = %v", err)
	}

	// A non-sharded aggregator rejects admin RPCs explicitly.
	plain, err := NewAggServerOver(aggregator.New([]aggregator.LeafTarget{lc}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pc := Dial(plain.Addr())
	defer pc.Close()
	if err := pc.SetLeafStatus("leafA", shard.StatusDraining); err == nil || !strings.Contains(err.Error(), "not shard-routing") {
		t.Fatalf("non-sharded err = %v", err)
	}
}

// TestEndToEndShardedQueryOverWire is the full distributed path: four leaf
// processes behind a sharded aggregator server, data dual-written per the
// map, then byte-identical results with full shard coverage before and
// after draining a leaf (its shards served by replicas).
func TestEndToEndShardedQueryOverWire(t *testing.T) {
	const numLeaves, numShards = 4, 8
	addrs := make([]string, numLeaves)
	clients := make([]*Client, numLeaves)
	for i := 0; i < numLeaves; i++ {
		s, c, _ := newServer(t, i)
		addrs[i] = s.Addr()
		clients[i] = c
	}
	targets := make([]aggregator.LeafTarget, numLeaves)
	for i, c := range clients {
		targets[i] = c
	}
	agg := aggregator.New(targets)
	machines := []int{0, 0, 1, 1}
	router := ShardRouting(agg, addrs, machines, 2, numShards)
	agg.Labels = addrs
	as, err := NewAggServerOver(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()

	// Dual-write each shard's rows to every owner, as the tailer would.
	m := router.Map()
	for s := 0; s < numShards; s++ {
		rows := mkRows(50, int64(10000*s))
		for _, o := range m.Owners("events", s) {
			if err := clients[o].AddRows(shard.PhysicalTable("events", s), rows); err != nil {
				t.Fatal(err)
			}
		}
	}

	ac := Dial(as.Addr())
	defer ac.Close()
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}},
		GroupBy:      []string{"service"}}
	baseline, err := ac.QueryVia(q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ShardsAnswered != numShards {
		t.Fatalf("baseline coverage %d/%d", baseline.ShardsAnswered, baseline.ShardsTotal)
	}
	if rows := baseline.Rows(q); len(rows) != 1 || rows[0].Values[0] != float64(numShards*50) {
		t.Fatalf("baseline rows = %v", rows)
	}

	// Drain leaf 1 via the admin RPC: replicas must keep the answer
	// byte-identical at full coverage.
	if err := ac.SetLeafStatus(addrs[1], shard.StatusDraining); err != nil {
		t.Fatal(err)
	}
	drained, err := ac.QueryVia(q)
	if err != nil {
		t.Fatal(err)
	}
	if drained.ShardsAnswered != numShards {
		t.Fatalf("drained coverage %d/%d, want full via replicas", drained.ShardsAnswered, drained.ShardsTotal)
	}
	if !reflect.DeepEqual(baseline.Rows(q), drained.Rows(q)) {
		t.Fatalf("drained result diverged:\n  baseline %v\n  drained  %v", baseline.Rows(q), drained.Rows(q))
	}
}
