package wire

import (
	"bytes"
	"encoding/gob"
	"flag"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scuba/internal/query"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata")

// v1Request and v1Response are the pre-trace (protocol version 1) envelope
// shapes, reconstructed as local types. Gob matches struct fields by name,
// so these stand in exactly for frames produced by a v1 binary: no Version,
// no Trace, no Exec.
type v1Request struct {
	Kind   Kind
	Table  string
	Query  *query.Query
	UseShm bool
}

type v1Response struct {
	Err    string
	Result *query.WireResult
}

// v1QueryRequest is the canonical v1 frame pinned by the golden fixture. It
// deliberately avoids maps (row columns, distinct sets) so the gob encoding
// is byte-deterministic.
func v1QueryRequest() *v1Request {
	return &v1Request{
		Kind:  KindQuery,
		Table: "events",
		Query: &query.Query{
			Table: "events",
			From:  1000,
			To:    2000,
			Aggregations: []query.Aggregation{
				{Op: query.AggCount},
				{Op: query.AggSum, Column: "lat"},
			},
			GroupBy: []string{"service"},
		},
	}
}

func v1QueryResponse() *v1Response {
	return &v1Response{
		Result: &query.WireResult{
			Groups: []query.WireGroup{{
				Key:  []string{"web"},
				Aggs: []*query.AggState{{Count: 500, Sum: 12345, Min: 1, Max: 99}},
			}},
			RowsScanned:   500,
			BlocksScanned: 2,
		},
	}
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// golden returns the pinned v1 frame bytes, regenerating them under
// -update. The comparison is decode-level, not byte-level: gob assigns type
// IDs from a process-global counter, so the same value encodes to different
// (equally valid, self-describing) bytes depending on what was encoded
// earlier in the process. What old binaries guarantee — and what the
// fixture pins — is that these exact captured bytes keep decoding.
func golden(t *testing.T, name string, canonical any) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gobBytes(t, canonical), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestGoldenV1Frames proves a current binary still decodes pre-trace
// envelope bytes: the request's trace fields come back zero (the query runs
// untraced) and the response's Exec comes back nil — no error in either
// direction.
func TestGoldenV1Frames(t *testing.T) {
	reqRaw := golden(t, "frame-v1-request.golden", v1QueryRequest())
	respRaw := golden(t, "frame-v1-response.golden", v1QueryResponse())

	var req Request
	if err := gob.NewDecoder(bytes.NewReader(reqRaw)).Decode(&req); err != nil {
		t.Fatalf("decoding v1 request with current code: %v", err)
	}
	if req.Version != 0 || req.Trace.TraceID != 0 || req.Trace.SpanID != 0 {
		t.Fatalf("v1 request decoded with nonzero trace fields: %+v", req)
	}
	if req.Kind != KindQuery || req.Query == nil || req.Query.Table != "events" {
		t.Fatalf("v1 request payload mangled: %+v", req)
	}

	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(respRaw)).Decode(&resp); err != nil {
		t.Fatalf("decoding v1 response with current code: %v", err)
	}
	if resp.Exec != nil {
		t.Fatalf("v1 response decoded with Exec = %+v, want nil", resp.Exec)
	}
	if resp.Result == nil || resp.Result.RowsScanned != 500 {
		t.Fatalf("v1 response payload mangled: %+v", resp)
	}

	// The fixture itself must round-trip through the v1 shapes unchanged —
	// a corrupted or regenerated-with-drift fixture fails here.
	var oldReq v1Request
	if err := gob.NewDecoder(bytes.NewReader(reqRaw)).Decode(&oldReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&oldReq, v1QueryRequest()) {
		t.Fatalf("fixture request = %+v, want %+v", &oldReq, v1QueryRequest())
	}
	var oldResp v1Response
	if err := gob.NewDecoder(bytes.NewReader(respRaw)).Decode(&oldResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&oldResp, v1QueryResponse()) {
		t.Fatalf("fixture response = %+v, want %+v", &oldResp, v1QueryResponse())
	}
}

// TestV2FramesDecodeAsV1 proves the reverse direction: a v2 frame carrying
// trace context still decodes under the v1 struct shapes (gob skips unknown
// fields), so an old server simply ignores a new client's trace — the bump
// is additive, not a fork.
func TestV2FramesDecodeAsV1(t *testing.T) {
	req := &Request{Kind: KindQuery, Table: "events", Query: v1QueryRequest().Query}
	req.Version = ProtocolVersion
	req.Trace.TraceID, req.Trace.SpanID = 7, 8
	var old v1Request
	if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, req))).Decode(&old); err != nil {
		t.Fatalf("v1 shape rejecting v2 request: %v", err)
	}
	if old.Kind != KindQuery || old.Query == nil {
		t.Fatalf("v2 request lost payload under v1 shape: %+v", old)
	}
}

// TestShardFrameDecodesAsV1 extends the additive-envelope proof to the shard
// fields: a shard-scoped query frame and a leaf-status admin frame both
// decode under the v1 struct shapes without error, so the shard rollout can
// be mixed-version. (A v1 leaf would answer the whole logical table for a
// shard-scoped query — which is why shard routing requires shard-capable
// leaves — but the envelope itself never forks.)
func TestShardFrameDecodesAsV1(t *testing.T) {
	req := &Request{Kind: KindQuery, Query: v1QueryRequest().Query,
		Version: ProtocolVersion, Shards: []int{0, 3, 5}}
	var old v1Request
	if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, req))).Decode(&old); err != nil {
		t.Fatalf("v1 shape rejecting sharded request: %v", err)
	}
	if old.Kind != KindQuery || old.Query == nil {
		t.Fatalf("sharded request lost payload under v1 shape: %+v", old)
	}
	admin := &Request{Kind: KindLeafStatus, LeafName: "127.0.0.1:9", LeafStatus: 1, Version: ProtocolVersion}
	if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, admin))).Decode(&old); err != nil {
		t.Fatalf("v1 shape rejecting admin frame: %v", err)
	}
}

// TestOldClientAgainstNewServer drives a live server with raw v1 frames
// over TCP — exactly what a not-yet-upgraded aggregator does during a
// rolling restart — and expects a correct answer, untraced.
func TestOldClientAgainstNewServer(t *testing.T) {
	s, c, _ := newServer(t, 0)
	if err := c.AddRows("events", mkRows(500, 1000)); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(v1QueryRequest()); err != nil {
		t.Fatal(err)
	}
	var resp v1Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("new server errored on v1 client: %s", resp.Err)
	}
	res := query.Import(resp.Result)
	q := v1QueryRequest().Query
	rows := res.Rows(q)
	if len(rows) != 1 || rows[0].Values[0] != 500 {
		t.Fatalf("v1 client got wrong result: %v", rows)
	}
}

// FuzzEnvelopeDecode throws arbitrary bytes at the request decoder — the
// server's first contact with the network — expecting errors, never panics.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(gobBytesF(f, v1QueryRequest()))
	f.Add(gobBytesF(f, &Request{Kind: KindPing, Version: ProtocolVersion}))
	traced := &Request{Kind: KindQuery, Query: v1QueryRequest().Query, Version: ProtocolVersion}
	traced.Trace.TraceID, traced.Trace.SpanID = 1, 2
	f.Add(gobBytesF(f, traced))
	f.Add(gobBytesF(f, &Request{Kind: KindQuery, Query: v1QueryRequest().Query,
		Version: ProtocolVersion, Shards: []int{0, 1}}))
	f.Add(gobBytesF(f, &Request{Kind: KindLeafStatus, LeafName: "l", LeafStatus: 2, Version: ProtocolVersion}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
			return
		}
		_ = req.Kind.String()
	})
}

func gobBytesF(f *testing.F, v any) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
