package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"scuba/internal/aggregator"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/shard"
)

// AggServer exposes an aggregator over TCP: each machine runs one
// aggregator server next to its eight leaf servers (§2, Figure 1). Clients
// send ordinary query requests; the aggregator distributes them to every
// leaf and merges the partial results.
type AggServer struct {
	agg *aggregator.Aggregator
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewAggServer starts an aggregator server over the given leaf addresses.
func NewAggServer(leafAddrs []string, addr string) (*AggServer, error) {
	return NewAggServerOn(leafAddrs, addr, nil)
}

// NewAggServerOn is NewAggServer with a caller-owned metrics registry wired
// into the aggregator (nil leaves it uninstrumented), so the daemon's
// /metrics endpoint shows query latency and fan-out coverage.
func NewAggServerOn(leafAddrs []string, addr string, reg *metrics.Registry) (*AggServer, error) {
	targets := make([]aggregator.LeafTarget, len(leafAddrs))
	for i, a := range leafAddrs {
		// The registry rides into each leaf client so retry storms during a
		// rollover land in wire.retries / wire.retry_exhausted.
		targets[i] = DialOptions(a, Options{Metrics: reg})
	}
	agg := aggregator.New(targets)
	agg.Metrics = reg
	agg.Labels = append([]string(nil), leafAddrs...)
	return NewAggServerOver(agg, addr)
}

// NewAggServerOver serves an existing aggregator (tests inject in-process
// leaves this way).
func NewAggServerOver(agg *aggregator.Aggregator, addr string) (*AggServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: aggregator listen: %w", err)
	}
	s := &AggServer{agg: agg, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *AggServer) Addr() string { return s.ln.Addr().String() }

// Aggregator returns the underlying aggregator so callers can tune fan-out
// behavior (e.g. LeafTimeout) before traffic arrives.
func (s *AggServer) Aggregator() *aggregator.Aggregator { return s.agg }

func (s *AggServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *AggServer) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp Response
		switch req.Kind {
		case KindPing:
		case KindQuery:
			res, err := s.agg.QueryTraced(req.Query, req.Trace)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Result = res.Export()
				if req.Trace.TraceID != 0 {
					// In an aggregator tree the upstream's span for this
					// server covers the whole subtree: report the summed
					// phases of every leaf below (no single recovery source).
					resp.Exec = &obs.ExecStats{
						SpanID:        req.Trace.SpanID,
						Table:         req.Query.Table,
						DecodeNanos:   res.Phases.DecodeNanos,
						PruneNanos:    res.Phases.PruneNanos,
						ScanNanos:     res.Phases.ScanNanos,
						MergeNanos:    res.Phases.MergeNanos,
						RowsScanned:   res.RowsScanned,
						BlocksScanned: res.BlocksScanned,
						BlocksPruned:  res.BlocksPruned,
						BlocksSkipped: res.BlocksSkipped,
						CacheHits:     res.CacheHits,
						CacheMisses:   res.CacheMisses,
					}
				}
			}
		case KindLeafStatus:
			if s.agg.Router == nil {
				resp.Err = "wire: aggregator is not shard-routing"
			} else if err := s.agg.Router.SetStatusByName(req.LeafName, shard.Status(req.LeafStatus)); err != nil {
				resp.Err = err.Error()
			}
		case KindShardMap:
			if s.agg.Router == nil {
				resp.Err = "wire: aggregator is not shard-routing"
			} else if b, err := s.agg.Router.Map().Encode(); err != nil {
				resp.Err = err.Error()
			} else {
				resp.ShardMap = b
				for _, st := range s.agg.Router.Status() {
					resp.LeafStatuses = append(resp.LeafStatuses, uint8(st))
				}
				resp.MapVersion = s.agg.Router.Version()
			}
		default:
			resp.Err = fmt.Sprintf("wire: aggregator does not handle request kind %d", req.Kind)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *AggServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// QueryVia sends one query to a remote aggregator and returns the merged
// result. It is what CLIs and dashboards use instead of fanning out to
// leaves themselves.
func (c *Client) QueryVia(q *query.Query) (*query.Result, error) {
	return c.Query(q) // same request shape; the server side differs
}

// ShardRouting builds a shard router over the aggregator's leaves and turns
// on shard routing: leaf i is named leafAddrs[i] (the routing identity the
// rollover orchestrator flips statuses by) on machine machines[i] (nil =
// every leaf on its own machine). Call before traffic arrives.
func ShardRouting(agg *aggregator.Aggregator, leafAddrs []string, machines []int, replication, numShards int) *shard.Router {
	leaves := make([]shard.Leaf, len(leafAddrs))
	for i, a := range leafAddrs {
		m := i
		if i < len(machines) {
			m = machines[i]
		}
		leaves[i] = shard.Leaf{Name: a, Machine: m}
	}
	r := shard.NewRouter(shard.NewMap(leaves, replication, numShards))
	agg.Router = r
	return r
}

// SetLeafStatus asks a shard-routing aggregator to flip one leaf's status —
// the rollover orchestrator's drain/reactivate RPC.
func (c *Client) SetLeafStatus(leafName string, st shard.Status) error {
	_, err := c.Call(&Request{Kind: KindLeafStatus, LeafName: leafName, LeafStatus: uint8(st)})
	return err
}

// ShardMap fetches a shard-routing aggregator's map and live per-leaf
// statuses (index-parallel to the map's leaves) plus the router version.
func (c *Client) ShardMap() (*shard.Map, []shard.Status, int64, error) {
	resp, err := c.Call(&Request{Kind: KindShardMap})
	if err != nil {
		return nil, nil, 0, err
	}
	m, err := shard.Decode(resp.ShardMap)
	if err != nil {
		return nil, nil, 0, err
	}
	sts := make([]shard.Status, len(resp.LeafStatuses))
	for i, b := range resp.LeafStatuses {
		sts[i] = shard.Status(b)
	}
	return m, sts, resp.MapVersion, nil
}
