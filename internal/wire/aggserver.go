package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"scuba/internal/aggregator"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
)

// AggServer exposes an aggregator over TCP: each machine runs one
// aggregator server next to its eight leaf servers (§2, Figure 1). Clients
// send ordinary query requests; the aggregator distributes them to every
// leaf and merges the partial results.
type AggServer struct {
	agg *aggregator.Aggregator
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewAggServer starts an aggregator server over the given leaf addresses.
func NewAggServer(leafAddrs []string, addr string) (*AggServer, error) {
	return NewAggServerOn(leafAddrs, addr, nil)
}

// NewAggServerOn is NewAggServer with a caller-owned metrics registry wired
// into the aggregator (nil leaves it uninstrumented), so the daemon's
// /metrics endpoint shows query latency and fan-out coverage.
func NewAggServerOn(leafAddrs []string, addr string, reg *metrics.Registry) (*AggServer, error) {
	targets := make([]aggregator.LeafTarget, len(leafAddrs))
	for i, a := range leafAddrs {
		targets[i] = Dial(a)
	}
	agg := aggregator.New(targets)
	agg.Metrics = reg
	agg.Labels = append([]string(nil), leafAddrs...)
	return NewAggServerOver(agg, addr)
}

// NewAggServerOver serves an existing aggregator (tests inject in-process
// leaves this way).
func NewAggServerOver(agg *aggregator.Aggregator, addr string) (*AggServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: aggregator listen: %w", err)
	}
	s := &AggServer{agg: agg, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *AggServer) Addr() string { return s.ln.Addr().String() }

// Aggregator returns the underlying aggregator so callers can tune fan-out
// behavior (e.g. LeafTimeout) before traffic arrives.
func (s *AggServer) Aggregator() *aggregator.Aggregator { return s.agg }

func (s *AggServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *AggServer) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp Response
		switch req.Kind {
		case KindPing:
		case KindQuery:
			res, err := s.agg.QueryTraced(req.Query, req.Trace)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Result = res.Export()
				if req.Trace.TraceID != 0 {
					// In an aggregator tree the upstream's span for this
					// server covers the whole subtree: report the summed
					// phases of every leaf below (no single recovery source).
					resp.Exec = &obs.ExecStats{
						SpanID:        req.Trace.SpanID,
						Table:         req.Query.Table,
						DecodeNanos:   res.Phases.DecodeNanos,
						PruneNanos:    res.Phases.PruneNanos,
						ScanNanos:     res.Phases.ScanNanos,
						MergeNanos:    res.Phases.MergeNanos,
						RowsScanned:   res.RowsScanned,
						BlocksScanned: res.BlocksScanned,
						BlocksPruned:  res.BlocksPruned,
						BlocksSkipped: res.BlocksSkipped,
						CacheHits:     res.CacheHits,
						CacheMisses:   res.CacheMisses,
					}
				}
			}
		default:
			resp.Err = fmt.Sprintf("wire: aggregator does not handle request kind %d", req.Kind)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *AggServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// QueryVia sends one query to a remote aggregator and returns the merged
// result. It is what CLIs and dashboards use instead of fanning out to
// leaves themselves.
func (c *Client) QueryVia(q *query.Query) (*query.Result, error) {
	return c.Query(q) // same request shape; the server side differs
}
