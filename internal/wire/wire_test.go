package wire

import (
	"strings"
	"sync"
	"testing"

	"scuba/internal/aggregator"
	"scuba/internal/disk"
	"scuba/internal/leaf"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/tailer"
)

func newServer(t *testing.T, id int) (*Server, *Client, *leaf.Leaf) {
	t.Helper()
	l, err := leaf.New(leaf.Config{
		ID:           id,
		Shm:          shm.Options{Dir: t.TempDir(), Namespace: "test"},
		DiskRoot:     t.TempDir(),
		DiskFormat:   disk.FormatRow,
		MemoryBudget: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(l, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := Dial(s.Addr())
	t.Cleanup(func() { c.Close() })
	return s, c, l
}

func mkRows(n int, start int64) []rowblock.Row {
	rows := make([]rowblock.Row, n)
	for i := range rows {
		rows[i] = rowblock.Row{Time: start + int64(i), Cols: map[string]rowblock.Value{
			"service": rowblock.StringValue("web"),
			"lat":     rowblock.Int64Value(int64(i)),
		}}
	}
	return rows
}

func TestPing(t *testing.T) {
	_, c, _ := newServer(t, 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndQueryOverWire(t *testing.T) {
	_, c, _ := newServer(t, 0)
	if err := c.AddRows("events", mkRows(500, 1000)); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{
			{Op: query.AggCount},
			{Op: query.AggSum, Column: "lat"},
			{Op: query.AggP90, Column: "lat"},
		},
		GroupBy: []string{"service"}}
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 1 || rows[0].Values[0] != 500 {
		t.Fatalf("rows = %v", rows)
	}
	wantSum := float64(499*500) / 2
	if rows[0].Values[1] != wantSum {
		t.Errorf("sum = %v, want %v", rows[0].Values[1], wantSum)
	}
	if rows[0].Values[2] <= 0 {
		t.Errorf("p90 = %v", rows[0].Values[2])
	}
}

func TestStatsOverWire(t *testing.T) {
	_, c, _ := newServer(t, 5)
	if err := c.AddRows("events", mkRows(10, 0)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 5 || st.State != leaf.StateAlive || st.Tables != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestErrorsPropagate(t *testing.T) {
	_, c, _ := newServer(t, 0)
	bad := &query.Query{Table: "", From: 0, To: 1}
	if _, err := c.Query(bad); err == nil || !strings.Contains(err.Error(), "table required") {
		t.Errorf("err = %v", err)
	}
}

func TestShutdownRPC(t *testing.T) {
	s, c, l := newServer(t, 0)
	if err := c.AddRows("events", mkRows(100, 1000)); err != nil {
		t.Fatal(err)
	}
	info, err := c.Shutdown(true)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ToShm || info.Tables != 1 {
		t.Errorf("info = %+v", info)
	}
	select {
	case got := <-s.ShutdownRequested():
		if got.Tables != 1 {
			t.Errorf("channel info = %+v", got)
		}
	default:
		t.Error("shutdown not signalled to owner")
	}
	if l.State() != leaf.StateExit {
		t.Errorf("leaf state = %v", l.State())
	}
	// Requests after shutdown fail with a remote error.
	if err := c.AddRows("events", mkRows(1, 0)); err == nil {
		t.Error("add after shutdown succeeded")
	}
}

func TestServerMetrics(t *testing.T) {
	s, c, _ := newServer(t, 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRows("events", mkRows(25, 0)); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	c.Query(&query.Query{}) //nolint:errcheck // deliberately invalid

	reg := s.Metrics()
	if reg.Counter("rpc.ping").Value() != 1 {
		t.Errorf("ping count = %d", reg.Counter("rpc.ping").Value())
	}
	if reg.Counter("rows.added").Value() != 25 {
		t.Errorf("rows.added = %d", reg.Counter("rows.added").Value())
	}
	if reg.Counter("rpc.query").Value() != 2 {
		t.Errorf("query count = %d", reg.Counter("rpc.query").Value())
	}
	if reg.Counter("rpc.errors").Value() != 1 {
		t.Errorf("errors = %d", reg.Counter("rpc.errors").Value())
	}
	if reg.Timer("query.latency").Stats().Count != 1 {
		t.Errorf("latency observations = %d", reg.Timer("query.latency").Stats().Count)
	}
}

func TestClientReconnects(t *testing.T) {
	s, c, _ := newServer(t, 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Kill the connection server-side; the next call must redial.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	for try := 0; try < 3; try++ {
		if err = c.Ping(); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("client did not recover: %v", err)
	}
}

func TestWireTargetsComposeWithTailerAndAggregator(t *testing.T) {
	// The networked client slots into the same placement and fan-out
	// machinery as in-process leaves.
	_, c0, _ := newServer(t, 0)
	_, c1, _ := newServer(t, 1)
	p := tailer.NewPlacer([]tailer.Target{c0, c1}, 11)
	for i := 0; i < 20; i++ {
		if _, err := p.Place("events", mkRows(50, int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	agg := aggregator.New([]aggregator.LeafTarget{c0, c1})
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := agg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 1000 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
	if res.LeavesAnswered != 2 {
		t.Errorf("answered = %d", res.LeavesAnswered)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _, _ := newServer(t, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := Dial(s.Addr())
			defer c.Close()
			for i := 0; i < 20; i++ {
				if err := c.AddRows("events", mkRows(10, int64(w*1000+i*10))); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := Dial(s.Addr())
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows+int64(st.Blocks) == 0 && st.Tables != 1 {
		t.Errorf("stats = %+v", st)
	}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 8*20*10 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
}
