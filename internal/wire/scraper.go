package wire

// The cluster scraper is the aggregator half of Scuba-on-Scuba: a loop that
// periodically pulls every ACTIVE leaf's metrics snapshot, recovery report
// and stats over the KindMetrics admin RPC, flattens them into one
// __system.leaf_metrics row per leaf, and hands the rows to the
// self-telemetry sink — which ingests them back into the cluster. Operators
// then ask the cluster about itself: per-leaf recovery sources, decode-cache
// hit rates, ingest volume, all over the same query path user tables use.

import (
	"sync"
	"time"

	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/rowblock"
	"scuba/internal/shard"
)

// ScrapeTarget is one leaf the scraper pulls from.
type ScrapeTarget struct {
	// Name is the leaf's identity in rows and in the shard map (its
	// address in a distributed deployment).
	Name string
	// Client is an open wire client to the leaf.
	Client *Client
}

// ScraperConfig configures a cluster scraper.
type ScraperConfig struct {
	// Leaves are the scrape targets. Required.
	Leaves []ScrapeTarget
	// Sink receives the __system.leaf_metrics rows. Required.
	Sink *obs.Sink
	// Router, when non-nil, contributes each leaf's live status (scrapes
	// skip DOWN leaves) and the map version — the shard-coverage state of
	// the cluster at scrape time.
	Router *shard.Router
	// Interval is the scrape period (default 15s).
	Interval time.Duration
	// Source labels the rows (default "aggd").
	Source string
	// Registry, when non-nil, receives scrape.count and scrape.errors.
	Registry *metrics.Registry
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Scraper is a running cluster-scrape loop.
type Scraper struct {
	cfg  ScraperConfig
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	scrapes *metrics.Counter
	errors  *metrics.Counter
}

// StartScraper validates the config and starts the loop. Panics without
// leaves or a sink — a scraper with nothing to pull or nowhere to deliver is
// a programming error.
func StartScraper(cfg ScraperConfig) *Scraper {
	if len(cfg.Leaves) == 0 || cfg.Sink == nil {
		panic("wire: ScraperConfig needs Leaves and a Sink")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Source == "" {
		cfg.Source = "aggd"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Scraper{cfg: cfg, done: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		s.scrapes = reg.Counter("scrape.count")
		s.errors = reg.Counter("scrape.errors")
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Stop terminates the loop. Idempotent.
func (s *Scraper) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

func (s *Scraper) loop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.ScrapeOnce()
		case <-s.done:
			return
		}
	}
}

// ScrapeOnce pulls every routable leaf now and enqueues the resulting
// __system.leaf_metrics rows, returning how many leaves answered. Exported
// so tests and smoke scripts can force a deterministic scrape.
func (s *Scraper) ScrapeOnce() int {
	var statuses []shard.Status
	var version int64
	if s.cfg.Router != nil {
		statuses = s.cfg.Router.Status()
		version = s.cfg.Router.Version()
	}
	now := s.cfg.Clock().Unix()
	var rows []rowblock.Row
	for i, t := range s.cfg.Leaves {
		status := shard.StatusActive
		if i < len(statuses) {
			status = statuses[i]
		}
		if status == shard.StatusDown {
			continue // unroutable; don't hammer a dead address
		}
		snap, rec, st, err := t.Client.MetricsSnapshot()
		if err != nil {
			if s.errors != nil {
				s.errors.Add(1)
			}
			continue
		}
		rows = append(rows, leafMetricsRow(s.cfg.Source, t.Name, status, version, now, snap, rec, st))
	}
	if s.scrapes != nil {
		s.scrapes.Add(1)
	}
	s.cfg.Sink.RecordRows(obs.SystemLeafMetricsTable, rows)
	return len(rows)
}

// leafMetricsRow flattens one leaf's scrape into a row. Counter columns use
// the canonical metric spelling so dashboards match the Prometheus names.
func leafMetricsRow(source, leafName string, status shard.Status, mapVersion, now int64,
	snap metrics.Snapshot, rec leaf.RecoveryInfo, st leaf.Stats) rowblock.Row {
	counter := func(name string) int64 { return snap.Counters[name] }
	gauge := func(name string) int64 { return snap.Gauges[name].Value }
	cols := map[string]rowblock.Value{
		"source":      rowblock.StringValue(source),
		"leaf":        rowblock.StringValue(leafName),
		"status":      rowblock.StringValue(status.String()),
		"map_version": rowblock.Int64Value(mapVersion),
		"recovery":    rowblock.StringValue(string(rec.Path)),
		"quarantined": rowblock.Int64Value(int64(rec.Quarantined)),
		"tables":      rowblock.Int64Value(int64(st.Tables)),
		"blocks":      rowblock.Int64Value(int64(st.Blocks)),
		"rows":        rowblock.Int64Value(st.Rows),
		"bytes":       rowblock.Int64Value(st.Bytes),
		"free_memory": rowblock.Int64Value(st.FreeMemory),
		// Cumulative counters; rates fall out of time-bucketed queries.
		"rows_added":          rowblock.Int64Value(counter("rows.added")),
		"queries":             rowblock.Int64Value(counter("query.exec.count")),
		"query_errors":        rowblock.Int64Value(counter("query.exec.errors")),
		"rpc_errors":          rowblock.Int64Value(counter("rpc.errors")),
		"blocks_pruned":       rowblock.Int64Value(counter("query.blocks_pruned")),
		"decode_cache_hits":   rowblock.Int64Value(counter("query.decode_cache.hits")),
		"decode_cache_misses": rowblock.Int64Value(counter("query.decode_cache.misses")),
		"heap_bytes":          rowblock.Int64Value(gauge("runtime.heap_bytes")),
		"goroutines":          rowblock.Int64Value(gauge("runtime.goroutines")),
	}
	return rowblock.Row{Time: now, Cols: cols}
}
