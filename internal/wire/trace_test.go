package wire

import (
	"testing"
	"time"

	"scuba/internal/aggregator"
	"scuba/internal/fault"
	"scuba/internal/obs"
	"scuba/internal/query"
)

func countQuery() *query.Query {
	return &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
}

// TestTraceOverWire runs a traced query through an aggregator over wire
// clients and checks the assembled trace: one span per leaf, each answered
// with an ExecStats whose span ID echoes the one the aggregator stamped.
func TestTraceOverWire(t *testing.T) {
	s0, c0, _ := newServer(t, 83)
	s1, c1, _ := newServer(t, 84)
	_ = s1
	if err := c0.AddRows("events", mkRows(100, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddRows("events", mkRows(50, 1000)); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(obs.TracerOptions{})
	agg := aggregator.New([]aggregator.LeafTarget{c0, c1})
	agg.Tracer = tracer
	agg.Labels = []string{s0.Addr(), s1.Addr()}

	res, err := agg.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(countQuery())[0].Values[0]; got != 150 {
		t.Fatalf("count = %v, want 150", got)
	}

	traces := tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID == 0 || tr.LeavesTotal != 2 || tr.LeavesAnswered != 2 {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	var rows int64
	for _, sp := range tr.Spans {
		if !sp.Answered || sp.Exec == nil {
			t.Fatalf("span not answered with exec stats: %+v", sp)
		}
		if sp.Exec.SpanID != sp.SpanID {
			t.Fatalf("leaf echoed span %d into slot %d", sp.Exec.SpanID, sp.SpanID)
		}
		if sp.Exec.Recovery == "" || sp.Exec.Table != "events" {
			t.Fatalf("exec stats incomplete: %+v", sp.Exec)
		}
		if sp.RTTNanos < sp.Exec.LatencyNanos {
			t.Fatalf("rtt %d < leaf latency %d", sp.RTTNanos, sp.Exec.LatencyNanos)
		}
		rows += sp.Exec.RowsScanned
	}
	if rows != 150 {
		t.Fatalf("summed per-span rows = %d, want 150", rows)
	}
	if tr.Spans[0].Leaf != s0.Addr() || tr.Spans[1].Leaf != s1.Addr() {
		t.Fatalf("span labels = %q/%q, want server addresses", tr.Spans[0].Leaf, tr.Spans[1].Leaf)
	}
}

// TestTraceStableAcrossRetries pins the satellite guarantee: a retried
// idempotent RPC re-sends the same span ID, so the assembled trace has
// exactly one span per leaf — no duplicates — and that span carries the
// answering attempt's stats.
func TestTraceStableAcrossRetries(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	_, c, _ := newServer(t, 85)
	if err := c.AddRows("events", mkRows(100, 1000)); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(obs.TracerOptions{})
	agg := aggregator.New([]aggregator.LeafTarget{c})
	agg.Tracer = tracer

	// The first read of the query response fails at the transport; the
	// retry answers. (AddRows above already consumed nothing: the fault is
	// armed after ingest.)
	fault.Arm(fault.Point{Site: fault.SiteWireRead, Action: fault.ActError, Count: 1})
	c.opts.RetryBase = time.Millisecond
	c.opts.RetryMax = 4 * time.Millisecond

	if _, err := agg.Query(countQuery()); err != nil {
		t.Fatal(err)
	}
	if got := fault.Hits(fault.SiteWireRead); got != 2 {
		t.Fatalf("wire.read hits = %d, want 2 (one failure + one success)", got)
	}

	traces := tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 1 {
		t.Fatalf("retried RPC produced %d spans, want 1: %+v", len(tr.Spans), tr.Spans)
	}
	sp := tr.Spans[0]
	if !sp.Answered || sp.Exec == nil {
		t.Fatalf("retried span unanswered: %+v", sp)
	}
	if sp.Exec.SpanID != sp.SpanID {
		t.Fatalf("answering attempt carried span %d, aggregator stamped %d", sp.Exec.SpanID, sp.SpanID)
	}
	if sp.Exec.RowsScanned != 100 {
		t.Fatalf("exec rows = %d, want 100", sp.Exec.RowsScanned)
	}
}

// TestAggServerPropagatesTrace checks the aggregator-tree path: a traced
// query sent to an AggServer keeps the parent's trace ID and answers with
// subtree-summed exec stats.
func TestAggServerPropagatesTrace(t *testing.T) {
	s, c, _ := newServer(t, 86)
	if err := c.AddRows("events", mkRows(100, 1000)); err != nil {
		t.Fatal(err)
	}
	as, err := NewAggServer([]string{s.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()

	up := Dial(as.Addr())
	defer up.Close()
	tc := obs.TraceContext{TraceID: obs.RandomID(), SpanID: obs.RandomID()}
	res, exec, err := up.QueryTraced(countQuery(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(countQuery())[0].Values[0]; got != 100 {
		t.Fatalf("count = %v, want 100", got)
	}
	if exec == nil || exec.SpanID != tc.SpanID {
		t.Fatalf("aggserver exec = %+v, want span %d echoed", exec, tc.SpanID)
	}
	if exec.RowsScanned != 100 {
		t.Fatalf("subtree rows = %d, want 100", exec.RowsScanned)
	}
}
