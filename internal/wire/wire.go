// Package wire is the RPC protocol between Scuba processes: tailers and
// aggregators talk to leaf servers over TCP (Figure 1). The protocol is a
// persistent connection carrying gob-encoded request/response pairs; the
// client side implements the tailer.Target and aggregator.LeafTarget
// interfaces so in-process and networked deployments are interchangeable.
//
// The shutdown RPC is how the rollover script asks a leaf to exit cleanly
// through shared memory (§4.3); the script then waits for the process to
// die and kills it after a timeout.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"scuba/internal/fault"
	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/rowblock"
)

// ProtocolVersion is the envelope version this build speaks. Version 2
// added trace context to Request and ExecStats to Response. The encoding is
// gob, which matches struct fields by name and omits zero values, so the
// version number is informational rather than a gate: a v2 server answers a
// v1 client (trace fields decode as zero — the query runs untraced) and a
// v1 server ignores a v2 client's trace fields. Golden-frame tests pin both
// directions.
const ProtocolVersion = 2

// Kind tags a request.
type Kind uint8

func (k Kind) String() string {
	switch k {
	case KindPing:
		return "ping"
	case KindAddRows:
		return "add"
	case KindQuery:
		return "query"
	case KindStats:
		return "stats"
	case KindShutdown:
		return "shutdown"
	case KindLeafStatus:
		return "leafstatus"
	case KindShardMap:
		return "shardmap"
	case KindFlush:
		return "flush"
	case KindMetrics:
		return "metrics"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request kinds. KindLeafStatus and KindShardMap are aggregator admin RPCs
// (v2-additive: gob carries the Kind by value, and an old server answers an
// unknown kind with an explicit error rather than misbehaving): the rollover
// orchestrator flips leaf statuses and reads shard coverage through them.
const (
	KindPing Kind = iota + 1
	KindAddRows
	KindQuery
	KindStats
	KindShutdown
	KindLeafStatus
	KindShardMap
	// KindFlush seals every table's in-progress block and syncs all blocks
	// to the disk backup — the durability barrier an orchestrator raises
	// before doing anything that could kill the process uncleanly
	// (v2-additive).
	KindFlush
	// KindMetrics returns the leaf daemon's full metrics snapshot plus its
	// recovery report — the admin RPC behind the aggregator's cluster
	// scraper, which turns every ACTIVE leaf's snapshot into
	// __system.leaf_metrics rows (v2-additive).
	KindMetrics
)

// Request is one RPC request.
type Request struct {
	Kind  Kind
	Table string
	Rows  []rowblock.Row
	Query *query.Query
	// UseShm selects the shared memory shutdown path (vs disk-only).
	UseShm bool
	// Version is the sender's ProtocolVersion (0 = pre-versioning client).
	Version uint8
	// Trace carries the query's trace context (v2+; zero = untraced).
	Trace obs.TraceContext
	// Shards scopes a query to these shards of its table (v2-additive: gob
	// omits the empty slice, and a pre-shard server decodes it as nil — it
	// would answer the whole logical table, which is why a shard-routing
	// aggregator must only be pointed at shard-capable leaves). Non-empty
	// only under shard routing.
	Shards []int
	// LeafName/LeafStatus are the KindLeafStatus payload: flip the named
	// leaf to this shard.Status in the aggregator's router (v2-additive).
	LeafName   string
	LeafStatus uint8
}

// Response is one RPC response.
type Response struct {
	Err      string
	Stats    *leaf.Stats
	Result   *query.WireResult
	Shutdown *leaf.ShutdownInfo
	// Exec is the leaf's execution report for a traced query (v2+; nil for
	// untraced queries and pre-trace servers).
	Exec *obs.ExecStats
	// ShardMap is the aggregator's encoded shard map (shard.Map.Encode) and
	// LeafStatuses the router's per-leaf statuses, index-parallel to the
	// map's leaves; MapVersion counts router mutations. KindShardMap only
	// (v2-additive).
	ShardMap     []byte
	LeafStatuses []uint8
	MapVersion   int64
	// Metrics and Recovery are the KindMetrics payload: the leaf daemon's
	// registry snapshot and its last-start recovery report (v2-additive;
	// nil from older servers, which answer the unknown kind with an error).
	Metrics  *metrics.Snapshot
	Recovery *leaf.RecoveryInfo
}

// Server exposes one leaf over TCP.
type Server struct {
	leaf *leaf.Leaf
	ln   net.Listener
	reg  *metrics.Registry

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan leaf.ShutdownInfo
}

// NewServer starts serving the leaf on addr (use "127.0.0.1:0" to pick a
// free port) with a private metrics registry. The returned server must be
// Closed.
func NewServer(l *leaf.Leaf, addr string) (*Server, error) {
	return NewServerOn(l, addr, nil)
}

// NewServerOn is NewServer with a caller-owned registry (nil creates a
// private one), so a daemon's /metrics endpoint shows the RPC counters and
// query latency histograms alongside its restart-phase timers.
func NewServerOn(l *leaf.Leaf, addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		leaf:     l,
		ln:       ln,
		reg:      reg,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan leaf.ShutdownInfo, 1),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics exposes the server's request counters and timers: rpc.<kind>
// counters, rpc.errors, rows.added, and the query.latency timer.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ShutdownRequested delivers the shutdown info once a shutdown RPC has
// completed; the owning process exits after receiving it.
func (s *Server) ShutdownRequested() <-chan leaf.ShutdownInfo { return s.shutdown }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Kind == KindShutdown && resp.Err == "" {
			// Tell the owner the leaf is drained; it will exit.
			select {
			case s.shutdown <- *resp.Shutdown:
			default:
			}
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	s.reg.Counter("rpc." + req.Kind.String()).Add(1)
	switch req.Kind {
	case KindPing:
		return &Response{}
	case KindAddRows:
		if err := s.leaf.AddRows(req.Table, req.Rows); err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		s.reg.Counter("rows.added").Add(int64(len(req.Rows)))
		return &Response{}
	case KindQuery:
		start := time.Now()
		var res *query.Result
		var exec *obs.ExecStats
		var err error
		switch {
		case len(req.Shards) > 0:
			res, exec, err = s.leaf.QueryShards(req.Query, req.Shards, req.Trace)
		case req.Trace.TraceID != 0:
			res, exec, err = s.leaf.QueryTraced(req.Query, req.Trace)
		default:
			res, err = s.leaf.Query(req.Query)
		}
		if err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		d := time.Since(start)
		s.reg.Timer("query.latency").Observe(d)
		s.reg.Histogram("query.latency_hist").ObserveDurationExemplar(d, req.Trace.TraceID)
		return &Response{Result: res.Export(), Exec: exec}
	case KindStats:
		st := s.leaf.Stats()
		return &Response{Stats: &st}
	case KindMetrics:
		snap := s.reg.Snapshot()
		rec := s.leaf.Recovery()
		st := s.leaf.Stats()
		return &Response{Metrics: &snap, Recovery: &rec, Stats: &st}
	case KindShutdown:
		var info leaf.ShutdownInfo
		var err error
		if req.UseShm {
			info, err = s.leaf.Shutdown()
		} else {
			info, err = s.leaf.ShutdownToDisk()
		}
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Shutdown: &info}
	case KindFlush:
		if err := s.leaf.SealAll(); err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		if _, err := s.leaf.SyncToDisk(); err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		return &Response{}
	default:
		return &Response{Err: fmt.Sprintf("wire: unknown request kind %d", req.Kind)}
	}
}

// Close stops accepting and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// Options bound how long a client waits on the network. The zero value
// means "use the defaults" — every field has a production-safe default, so
// plain Dial never hangs forever on a SIGSTOP'd or partitioned leaf.
type Options struct {
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// RPCTimeout bounds each attempt's encode+decode via a connection
	// deadline (default 60s). Negative disables deadlines (tests that
	// deliberately park a call use this).
	RPCTimeout time.Duration
	// MaxRetries is how many times an idempotent request is retried after
	// the first attempt fails on a transport error (default 3).
	MaxRetries int
	// RetryBase is the first backoff delay; each retry doubles it
	// (default 25ms).
	RetryBase time.Duration
	// RetryMax caps the backoff delay (default 1s).
	RetryMax time.Duration
	// MaxIdle is how many healthy connections the client keeps pooled for
	// reuse (default 2). Concurrent callers beyond the pool dial extra
	// connections rather than queueing behind a slow RPC.
	MaxIdle int
	// Metrics, when set, receives client-side retry counters: wire.retries
	// (every retried attempt) and wire.retry_exhausted (calls that failed
	// after the last retry). Retry storms during a rollover are invisible
	// in server-side counters — the server never saw the failed attempts.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.RPCTimeout == 0 {
		o.RPCTimeout = 60 * time.Second
	}
	if o.RPCTimeout < 0 {
		o.RPCTimeout = 0
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	if o.MaxIdle <= 0 {
		o.MaxIdle = 2
	}
	return o
}

// clientConn is one gob session. Encoders and decoders are stateful, so a
// connection is owned by exactly one in-flight call at a time.
type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Client talks to one leaf server. Safe for concurrent use: each in-flight
// call owns a pooled connection, so a slow RPC on one goroutine no longer
// serializes and starves concurrent callers. Every attempt runs under a
// deadline, and idempotent requests retry with capped exponential backoff
// plus jitter (leaves come and go across restarts).
type Client struct {
	addr string
	opts Options

	mu   sync.Mutex
	idle []*clientConn
}

// Dial creates a client with default Options; connections are established
// lazily.
func Dial(addr string) *Client { return DialOptions(addr, Options{}) }

// DialOptions is Dial with explicit deadline/retry configuration.
func DialOptions(addr string, opts Options) *Client {
	return &Client{addr: addr, opts: opts.withDefaults()}
}

// acquire pops a pooled connection or dials a new one under DialTimeout.
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	if err := fault.Inject(fault.SiteWireDial); err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// release returns a healthy connection to the pool (or closes it when the
// pool is full).
func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if len(c.idle) < c.opts.MaxIdle {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// Call performs one RPC. Idempotent requests (ping, query, stats) are
// retried on transport errors with capped exponential backoff plus jitter —
// a stale connection to a leaf that restarted fails fast and the retry
// lands on the replacement process. Mutating requests are never retried: a
// timed-out AddRows may have been applied.
func (c *Client) Call(req *Request) (*Response, error) {
	if req.Version == 0 {
		req.Version = ProtocolVersion
	}
	retries := 0
	if idempotent(req.Kind) {
		retries = c.opts.MaxRetries
	}
	var resp *Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.callOnce(req)
		if err == nil || attempt >= retries {
			break
		}
		if c.opts.Metrics != nil {
			c.opts.Metrics.Counter("wire.retries").Add(1)
		}
		time.Sleep(backoff(c.opts, attempt))
	}
	if err != nil {
		if c.opts.Metrics != nil && retries > 0 {
			c.opts.Metrics.Counter("wire.retry_exhausted").Add(1)
		}
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

// backoff is the delay before retry attempt+1: RetryBase doubled per
// attempt, capped at RetryMax, with the upper half jittered so a thundering
// herd of clients retrying against one restarting leaf spreads out.
func backoff(o Options, attempt int) time.Duration {
	d := o.RetryBase
	for i := 0; i < attempt && d < o.RetryMax; i++ {
		d *= 2
	}
	if d > o.RetryMax {
		d = o.RetryMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func idempotent(k Kind) bool {
	// Status flips are absolute (not increments) and flushing twice is a
	// no-op, so retrying either is safe.
	return k == KindPing || k == KindQuery || k == KindStats ||
		k == KindLeafStatus || k == KindShardMap || k == KindFlush ||
		k == KindMetrics
}

// callOnce runs one attempt on its own connection under RPCTimeout. A
// transport error closes the connection; an application error (Response.Err)
// leaves it healthy and pooled.
func (c *Client) callOnce(req *Request) (*Response, error) {
	cc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	if c.opts.RPCTimeout > 0 {
		if err := cc.conn.SetDeadline(time.Now().Add(c.opts.RPCTimeout)); err != nil {
			cc.conn.Close()
			return nil, err
		}
	}
	if err := fault.Inject(fault.SiteWireWrite); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("wire: write to %s: %w", c.addr, err)
	}
	if err := cc.enc.Encode(req); err != nil {
		cc.conn.Close()
		return nil, err
	}
	if err := fault.Inject(fault.SiteWireRead); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("wire: read from %s: %w", c.addr, err)
	}
	var resp Response
	if err := cc.dec.Decode(&resp); err != nil {
		cc.conn.Close()
		return nil, err
	}
	if c.opts.RPCTimeout > 0 {
		if err := cc.conn.SetDeadline(time.Time{}); err != nil {
			cc.conn.Close()
			return nil, err
		}
	}
	c.release(cc)
	return &resp, nil
}

// Close drops all pooled connections. The client stays usable; the next
// call re-dials.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.conn.Close()
	}
	return nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Call(&Request{Kind: KindPing})
	return err
}

// AddRows implements tailer.Target.
func (c *Client) AddRows(table string, rows []rowblock.Row) error {
	_, err := c.Call(&Request{Kind: KindAddRows, Table: table, Rows: rows})
	return err
}

// Stats implements tailer.Target.
func (c *Client) Stats() (leaf.Stats, error) {
	resp, err := c.Call(&Request{Kind: KindStats})
	if err != nil {
		return leaf.Stats{}, err
	}
	return *resp.Stats, nil
}

// Query implements aggregator.LeafTarget.
func (c *Client) Query(q *query.Query) (*query.Result, error) {
	resp, err := c.Call(&Request{Kind: KindQuery, Query: q})
	if err != nil {
		return nil, err
	}
	return query.Import(resp.Result), nil
}

// QueryTraced implements aggregator.TracedTarget: the trace context rides
// the request envelope and the leaf's ExecStats ride the response. The span
// ID was stamped by the aggregator before the first attempt, so a retried
// RPC re-sends the same context and the trace never grows duplicate spans.
func (c *Client) QueryTraced(q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	resp, err := c.Call(&Request{Kind: KindQuery, Query: q, Trace: tc})
	if err != nil {
		return nil, nil, err
	}
	return query.Import(resp.Result), resp.Exec, nil
}

// QueryShards implements aggregator.ShardTarget: the shard list rides the
// request envelope and the leaf merges its per-shard physical tables into
// one partial result. Retries reuse the same span ID, like QueryTraced.
func (c *Client) QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	resp, err := c.Call(&Request{Kind: KindQuery, Query: q, Shards: shards, Trace: tc})
	if err != nil {
		return nil, nil, err
	}
	return query.Import(resp.Result), resp.Exec, nil
}

// MetricsSnapshot fetches the leaf daemon's registry snapshot, recovery
// report and stats in one RPC — the cluster scraper's per-leaf pull.
func (c *Client) MetricsSnapshot() (metrics.Snapshot, leaf.RecoveryInfo, leaf.Stats, error) {
	resp, err := c.Call(&Request{Kind: KindMetrics})
	if err != nil {
		return metrics.Snapshot{}, leaf.RecoveryInfo{}, leaf.Stats{}, err
	}
	var snap metrics.Snapshot
	if resp.Metrics != nil {
		snap = *resp.Metrics
	}
	var rec leaf.RecoveryInfo
	if resp.Recovery != nil {
		rec = *resp.Recovery
	}
	var st leaf.Stats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return snap, rec, st, nil
}

// Flush asks the leaf to seal its in-progress blocks and sync everything to
// the disk backup — after it returns, a kill -9 loses nothing the disk
// can't restore.
func (c *Client) Flush() error {
	_, err := c.Call(&Request{Kind: KindFlush})
	return err
}

// Shutdown asks the leaf to exit cleanly (through shared memory when
// useShm), returning the shutdown report.
func (c *Client) Shutdown(useShm bool) (leaf.ShutdownInfo, error) {
	resp, err := c.Call(&Request{Kind: KindShutdown, UseShm: useShm})
	if err != nil {
		return leaf.ShutdownInfo{}, err
	}
	return *resp.Shutdown, nil
}
