// Package wire is the RPC protocol between Scuba processes: tailers and
// aggregators talk to leaf servers over TCP (Figure 1). The protocol is a
// persistent connection carrying gob-encoded request/response pairs; the
// client side implements the tailer.Target and aggregator.LeafTarget
// interfaces so in-process and networked deployments are interchangeable.
//
// The shutdown RPC is how the rollover script asks a leaf to exit cleanly
// through shared memory (§4.3); the script then waits for the process to
// die and kills it after a timeout.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/query"
	"scuba/internal/rowblock"
)

// Kind tags a request.
type Kind uint8

func (k Kind) String() string {
	switch k {
	case KindPing:
		return "ping"
	case KindAddRows:
		return "add"
	case KindQuery:
		return "query"
	case KindStats:
		return "stats"
	case KindShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request kinds.
const (
	KindPing Kind = iota + 1
	KindAddRows
	KindQuery
	KindStats
	KindShutdown
)

// Request is one RPC request.
type Request struct {
	Kind  Kind
	Table string
	Rows  []rowblock.Row
	Query *query.Query
	// UseShm selects the shared memory shutdown path (vs disk-only).
	UseShm bool
}

// Response is one RPC response.
type Response struct {
	Err      string
	Stats    *leaf.Stats
	Result   *query.WireResult
	Shutdown *leaf.ShutdownInfo
}

// Server exposes one leaf over TCP.
type Server struct {
	leaf *leaf.Leaf
	ln   net.Listener
	reg  *metrics.Registry

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan leaf.ShutdownInfo
}

// NewServer starts serving the leaf on addr (use "127.0.0.1:0" to pick a
// free port) with a private metrics registry. The returned server must be
// Closed.
func NewServer(l *leaf.Leaf, addr string) (*Server, error) {
	return NewServerOn(l, addr, nil)
}

// NewServerOn is NewServer with a caller-owned registry (nil creates a
// private one), so a daemon's /metrics endpoint shows the RPC counters and
// query latency histograms alongside its restart-phase timers.
func NewServerOn(l *leaf.Leaf, addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		leaf:     l,
		ln:       ln,
		reg:      reg,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan leaf.ShutdownInfo, 1),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics exposes the server's request counters and timers: rpc.<kind>
// counters, rpc.errors, rows.added, and the query.latency timer.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ShutdownRequested delivers the shutdown info once a shutdown RPC has
// completed; the owning process exits after receiving it.
func (s *Server) ShutdownRequested() <-chan leaf.ShutdownInfo { return s.shutdown }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Kind == KindShutdown && resp.Err == "" {
			// Tell the owner the leaf is drained; it will exit.
			select {
			case s.shutdown <- *resp.Shutdown:
			default:
			}
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	s.reg.Counter("rpc." + req.Kind.String()).Add(1)
	switch req.Kind {
	case KindPing:
		return &Response{}
	case KindAddRows:
		if err := s.leaf.AddRows(req.Table, req.Rows); err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		s.reg.Counter("rows.added").Add(int64(len(req.Rows)))
		return &Response{}
	case KindQuery:
		start := time.Now()
		res, err := s.leaf.Query(req.Query)
		if err != nil {
			s.reg.Counter("rpc.errors").Add(1)
			return &Response{Err: err.Error()}
		}
		d := time.Since(start)
		s.reg.Timer("query.latency").Observe(d)
		s.reg.Histogram("query.latency_hist").ObserveDuration(d)
		return &Response{Result: res.Export()}
	case KindStats:
		st := s.leaf.Stats()
		return &Response{Stats: &st}
	case KindShutdown:
		var info leaf.ShutdownInfo
		var err error
		if req.UseShm {
			info, err = s.leaf.Shutdown()
		} else {
			info, err = s.leaf.ShutdownToDisk()
		}
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Shutdown: &info}
	default:
		return &Response{Err: fmt.Sprintf("wire: unknown request kind %d", req.Kind)}
	}
}

// Close stops accepting and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// Client talks to one leaf server. Safe for concurrent use; requests are
// serialized over a single connection and the connection is re-dialed on
// error (leaves come and go across restarts).
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial creates a client; the connection is established lazily.
func Dial(addr string) *Client { return &Client{addr: addr} }

func (c *Client) ensureLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Call performs one RPC. Read-only requests (ping, query, stats) are
// retried once on a transport error: a stale connection to a leaf that
// restarted since the last call fails exactly once, and the retry lands on
// the replacement process. Mutating requests are never retried — a timed-out
// AddRows may have been applied.
func (c *Client) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.callLocked(req)
	if err != nil && idempotent(req.Kind) {
		resp, err = c.callLocked(req)
	}
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

func idempotent(k Kind) bool {
	return k == KindPing || k == KindQuery || k == KindStats
}

func (c *Client) callLocked(req *Request) (*Response, error) {
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	if err := c.enc.Encode(req); err != nil {
		c.dropLocked()
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropLocked()
		return nil, err
	}
	return &resp, nil
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
	return nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Call(&Request{Kind: KindPing})
	return err
}

// AddRows implements tailer.Target.
func (c *Client) AddRows(table string, rows []rowblock.Row) error {
	_, err := c.Call(&Request{Kind: KindAddRows, Table: table, Rows: rows})
	return err
}

// Stats implements tailer.Target.
func (c *Client) Stats() (leaf.Stats, error) {
	resp, err := c.Call(&Request{Kind: KindStats})
	if err != nil {
		return leaf.Stats{}, err
	}
	return *resp.Stats, nil
}

// Query implements aggregator.LeafTarget.
func (c *Client) Query(q *query.Query) (*query.Result, error) {
	resp, err := c.Call(&Request{Kind: KindQuery, Query: q})
	if err != nil {
		return nil, err
	}
	return query.Import(resp.Result), nil
}

// Shutdown asks the leaf to exit cleanly (through shared memory when
// useShm), returning the shutdown report.
func (c *Client) Shutdown(useShm bool) (leaf.ShutdownInfo, error) {
	resp, err := c.Call(&Request{Kind: KindShutdown, UseShm: useShm})
	if err != nil {
		return leaf.ShutdownInfo{}, err
	}
	return *resp.Shutdown, nil
}
