package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/query"
)

// blackholeListener accepts connections and never responds — the TCP-level
// equivalent of a SIGSTOP'd leaf. Before the deadline work, a Call against
// it blocked forever.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			t.Cleanup(func() { conn.Close() })
		}
	}()
	return ln
}

func TestRPCTimeoutUnwedgesHungServer(t *testing.T) {
	ln := blackholeListener(t)
	c := DialOptions(ln.Addr().String(), Options{
		RPCTimeout: 100 * time.Millisecond,
		MaxRetries: 1,
		RetryBase:  time.Millisecond,
		RetryMax:   2 * time.Millisecond,
	})
	defer c.Close()

	start := time.Now()
	err := c.Ping()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ping against a hung server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	// Two attempts (1 + 1 retry) at 100ms each plus slack.
	if elapsed > 2*time.Second {
		t.Fatalf("ping took %v; deadline did not bound the call", elapsed)
	}
}

func TestDialTimeoutBoundsConnect(t *testing.T) {
	// A port from TEST-NET that drops SYNs on most setups; even when it
	// RSTs instead, the call must come back quickly either way.
	c := DialOptions("192.0.2.1:9", Options{
		DialTimeout: 100 * time.Millisecond,
		MaxRetries:  1,
		RetryBase:   time.Millisecond,
	})
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping to a blackhole address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v, want bounded by DialTimeout", elapsed)
	}
}

// TestSlowRPCDoesNotStarveConcurrentCallers pins the satellite fix: the old
// client held c.mu across encode/decode, so one slow query serialized every
// other caller of the same client. Now each in-flight call owns its own
// pooled connection.
func TestSlowRPCDoesNotStarveConcurrentCallers(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	_, c, _ := newServer(t, 80)

	// Queries stall 300ms server-side; pings are instant.
	fault.Arm(fault.Point{Site: fault.SiteLeafQuery, Action: fault.ActDelay, Delay: 300 * time.Millisecond})

	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	queryDone := make(chan error, 1)
	go func() {
		_, err := c.Query(q)
		queryDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the slow query occupy its conn

	start := time.Now()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("ping waited %v behind a slow query on the same client", elapsed)
	}
	if err := <-queryDone; err != nil {
		t.Fatal(err)
	}
}

func TestIdempotentRetryWithBackoff(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	_, c, _ := newServer(t, 81)

	// First two reads fail at the transport; the third succeeds. Default
	// MaxRetries(3) must absorb both failures.
	fault.Arm(fault.Point{Site: fault.SiteWireRead, Action: fault.ActError, Count: 2})
	c.opts.RetryBase = time.Millisecond
	c.opts.RetryMax = 4 * time.Millisecond
	if err := c.Ping(); err != nil {
		t.Fatalf("ping with 2 injected transport errors = %v", err)
	}
	if got := fault.Hits(fault.SiteWireRead); got != 3 {
		t.Fatalf("wire.read hits = %d, want 3 (two failures + success)", got)
	}
}

// TestRetryCountersInRegistry pins the client-side retry observability:
// every retried attempt bumps wire.retries, and a call that fails after its
// last retry bumps wire.retry_exhausted — signals no server-side counter can
// provide, because the server never saw the failed attempts.
func TestRetryCountersInRegistry(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	_, c, _ := newServer(t, 84)

	reg := metrics.NewRegistry()
	c.opts.Metrics = reg
	c.opts.RetryBase = time.Millisecond
	c.opts.RetryMax = 4 * time.Millisecond

	// Two transport failures, then success: two retries, none exhausted.
	fault.Arm(fault.Point{Site: fault.SiteWireRead, Action: fault.ActError, Count: 2})
	if err := c.Ping(); err != nil {
		t.Fatalf("ping with 2 injected transport errors = %v", err)
	}
	if got := reg.Counter("wire.retries").Value(); got != 2 {
		t.Errorf("wire.retries = %d, want 2", got)
	}
	if got := reg.Counter("wire.retry_exhausted").Value(); got != 0 {
		t.Errorf("wire.retry_exhausted = %d, want 0", got)
	}

	// Every attempt fails: MaxRetries more retries, one exhaustion.
	fault.Reset()
	fault.Arm(fault.Point{Site: fault.SiteWireRead, Action: fault.ActError})
	if err := c.Ping(); err == nil {
		t.Fatal("ping with all attempts failing succeeded")
	}
	if got := reg.Counter("wire.retries").Value(); got != 2+int64(c.opts.MaxRetries) {
		t.Errorf("wire.retries = %d, want %d", got, 2+c.opts.MaxRetries)
	}
	if got := reg.Counter("wire.retry_exhausted").Value(); got != 1 {
		t.Errorf("wire.retry_exhausted = %d, want 1", got)
	}

	// A mutation is never retried, so its failure counts in neither.
	fault.Reset()
	fault.Arm(fault.Point{Site: fault.SiteWireWrite, Action: fault.ActError, Count: 1})
	if err := c.AddRows("events", mkRows(1, 0)); err == nil {
		t.Fatal("AddRows with injected transport error succeeded")
	}
	if got := reg.Counter("wire.retries").Value(); got != 2+int64(c.opts.MaxRetries) {
		t.Errorf("wire.retries after mutation failure = %d (mutation was retried?)", got)
	}
	if got := reg.Counter("wire.retry_exhausted").Value(); got != 1 {
		t.Errorf("wire.retry_exhausted after mutation failure = %d", got)
	}
}

func TestMutatingRequestsNeverRetry(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	_, c, _ := newServer(t, 82)

	fault.Arm(fault.Point{Site: fault.SiteWireWrite, Action: fault.ActError, Count: 1})
	if err := c.AddRows("events", mkRows(1, 0)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("AddRows = %v, want the injected error surfaced (no retry)", err)
	}
	if got := fault.Hits(fault.SiteWireWrite); got != 1 {
		t.Fatalf("wire.write hits = %d, want exactly 1 (no retry of a mutation)", got)
	}
}

func TestBackoffIsCappedAndJittered(t *testing.T) {
	o := Options{RetryBase: 25 * time.Millisecond, RetryMax: 100 * time.Millisecond}.withDefaults()
	for attempt := 0; attempt < 8; attempt++ {
		for i := 0; i < 50; i++ {
			d := backoff(o, attempt)
			if d > o.RetryMax {
				t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, d, o.RetryMax)
			}
			if d < o.RetryBase/2 {
				t.Fatalf("attempt %d: backoff %v below base/2", attempt, d)
			}
		}
	}
}

func TestPoolReusesConnections(t *testing.T) {
	_, c, _ := newServer(t, 83)

	// Count dials with the fault registry's hit counter on wire.dial (After
	// is huge, so the point never actually fires).
	t.Cleanup(fault.Reset)
	fault.Reset()
	fault.Arm(fault.Point{Site: fault.SiteWireDial, Action: fault.ActError, After: 1 << 30})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := c.Ping(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// 4 concurrent goroutines, 40 calls total: at most a handful of dials,
	// nowhere near one per call.
	if d := fault.Hits(fault.SiteWireDial); d > 8 {
		t.Fatalf("40 calls used %d dials; pooling is not reusing connections", d)
	}
}
