// Package fault is a deterministic fault-point registry for injecting the
// failures the paper's design exists to survive: hung leaves, dropped
// connections, corrupt shared memory segments, crashes mid-copy (§1, §4.2,
// §4.5). Production code declares named sites at the exact places failures
// happen in the wild — shared memory map/copy/commit, disk backup reads,
// wire transport dial/read/write, leaf query execution — and tests (or a
// chaos run via `scubad -fault`) arm actions against those sites.
//
// The registry is zero-cost when disabled: every site check is a single
// atomic load that fails fast while nothing is armed, so the hooks stay in
// the hot paths permanently instead of living behind build tags or
// test-only function pointers.
//
// Actions are deterministic by construction — a site fires in call order,
// gated by After (skip the first N hits) and Count (fire at most N times),
// and corruption flips fixed bytes — so the fault-matrix regression suite
// can assert exact recovery behavior run after run.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what an armed fault point does when its site is hit.
type Action uint8

// Actions.
const (
	// ActError makes the site return Point.Err (ErrInjected by default).
	ActError Action = iota + 1
	// ActDelay makes the site sleep for Point.Delay before continuing —
	// the SIGSTOP'd-leaf / network-brownout simulation.
	ActDelay
	// ActCorrupt flips bytes in the site's buffer (only sites that pass
	// data through CorruptBytes honor it; Inject treats it as a no-op).
	ActCorrupt
	// ActCrash hard-exits the process at the site — no deferred cleanup,
	// no recover, exactly like a kill -9 at the worst moment.
	ActCrash
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	case ActCrash:
		return "crash"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ErrInjected is the default error returned by sites armed with ActError.
var ErrInjected = errors.New("fault: injected failure")

// Fault sites. Every site marks a place the paper names as a failure point;
// DESIGN.md §8 maps each to its expected recovery behavior.
const (
	// SiteShmMap is the shared memory metadata read plus segment open —
	// Figure 7's "map the shared memory segments".
	SiteShmMap = "shm.map"
	// SiteShmCommit is every leaf-metadata write, including the valid-bit
	// commit of Figure 6 (target the commit itself with After).
	SiteShmCommit = "shm.commit"
	// SiteShmCopyOut is the per-block heap-to-shm copy of Figure 6.
	SiteShmCopyOut = "shm.copy_out"
	// SiteShmCopyIn is the per-block shm-to-heap copy of Figure 7.
	SiteShmCopyIn = "shm.copy_in"
	// SiteShmView is the instant-on mapped-view open: metadata + CRC
	// validation before the leaf starts serving zero-copy from the mapping.
	SiteShmView = "shm.view"
	// SitePromoteCopy is the per-block background promotion copy that moves
	// a shm-resident block heap-side while queries keep running.
	SitePromoteCopy = "promote.copy"
	// SiteDiskRead is the disk backup read that recovery falls back to.
	SiteDiskRead = "disk.read"
	// SiteWireDial is the client-side TCP dial to a leaf or aggregator.
	SiteWireDial = "wire.dial"
	// SiteWireWrite is the client-side request encode.
	SiteWireWrite = "wire.write"
	// SiteWireRead is the client-side response decode.
	SiteWireRead = "wire.read"
	// SiteLeafQuery is leaf-local query execution (arm with ActDelay for a
	// hung leaf, ActError for a failing one). Leaves also check the
	// per-leaf variant PerLeaf(SiteLeafQuery, id) so chaos runs can brown
	// out a fraction of a cluster.
	SiteLeafQuery = "leaf.query"
	// SiteWALAppend is the WAL record write on the ingest path, before the
	// batch is acknowledged (also a CorruptBytes hook over the framed
	// record, so chaos runs can exercise torn-tail handling).
	SiteWALAppend = "wal.append"
	// SiteWALSync is the group-commit fsync acked appends wait on.
	SiteWALSync = "wal.sync"
	// SiteWALTruncate is the post-snapshot deletion of covered WAL segments.
	SiteWALTruncate = "wal.truncate"
	// SiteWALReplay is the per-segment read during crash recovery.
	SiteWALReplay = "wal.replay"
	// SiteSnapWrite is the incremental snapshot of a newly sealed block
	// (also a CorruptBytes hook over the block image).
	SiteSnapWrite = "snap.write"
)

// Sites lists every base site name, sorted, for -fault validation and docs.
func Sites() []string {
	s := []string{
		SiteShmMap, SiteShmCommit, SiteShmCopyOut, SiteShmCopyIn,
		SiteShmView, SitePromoteCopy,
		SiteDiskRead, SiteWireDial, SiteWireWrite, SiteWireRead,
		SiteLeafQuery,
		SiteWALAppend, SiteWALSync, SiteWALTruncate, SiteWALReplay,
		SiteSnapWrite,
	}
	sort.Strings(s)
	return s
}

// PerLeaf derives the per-leaf variant of a site ("leaf.query.3"), so a
// fault can target one leaf out of a cluster sharing the process.
func PerLeaf(site string, id int) string { return site + "." + strconv.Itoa(id) }

// Point is one armed fault.
type Point struct {
	// Site names the fault point (a Site* constant or a PerLeaf variant).
	Site string
	// Action selects what happens when the site fires.
	Action Action
	// Err overrides ErrInjected for ActError.
	Err error
	// Delay is the sleep for ActDelay.
	Delay time.Duration
	// After skips the first After hits of the site (0 fires immediately).
	// Hits are counted per arming, so re-arming resets the gate.
	After int
	// Count fires the action at most Count times (0 = every hit).
	Count int
}

type state struct {
	p     Point
	hits  int // site evaluations since arming
	fired int // times the action ran
}

var (
	// armed gates every site check: a single atomic load that is zero while
	// nothing is armed, keeping disabled fault points free on hot paths.
	armed atomic.Int64

	mu     sync.Mutex
	points = make(map[string]*state)
)

// Enabled reports whether any fault point is armed. Call it to guard
// clusters of per-leaf site checks.
func Enabled() bool { return armed.Load() > 0 }

// Arm installs (or replaces) the fault point for p.Site.
func Arm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[p.Site]; !ok {
		armed.Add(1)
	}
	points[p.Site] = &state{p: p}
}

// Disarm removes the fault point for site, if armed.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armed.Add(-1)
	}
}

// Reset disarms everything. Tests defer it after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	if n := len(points); n > 0 {
		armed.Add(-int64(n))
	}
	points = make(map[string]*state)
}

// Hits returns how many times the site has been evaluated since it was
// armed (0 when not armed) — tests assert a site was actually reached.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := points[site]; ok {
		return st.hits
	}
	return 0
}

// take evaluates a site hit and returns the point if the action should
// fire now. wantCorrupt selects whether ActCorrupt points fire (they fire
// only through CorruptBytes, never through Inject).
func take(site string, wantCorrupt bool) (Point, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := points[site]
	if !ok {
		return Point{}, false
	}
	if (st.p.Action == ActCorrupt) != wantCorrupt {
		return Point{}, false
	}
	st.hits++
	if st.hits <= st.p.After {
		return Point{}, false
	}
	if st.p.Count > 0 && st.fired >= st.p.Count {
		return Point{}, false
	}
	st.fired++
	return st.p, true
}

// Inject evaluates a fault site: it returns an error for ActError, sleeps
// for ActDelay, exits the process for ActCrash, and is a no-op for
// unarmed sites and ActCorrupt (which fires through CorruptBytes). The
// disabled path is one atomic load.
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	p, fire := take(site, false)
	if !fire {
		return nil
	}
	switch p.Action {
	case ActError:
		if p.Err != nil {
			return p.Err
		}
		return fmt.Errorf("%w at %s", ErrInjected, site)
	case ActDelay:
		time.Sleep(p.Delay)
	case ActCrash:
		fmt.Fprintf(os.Stderr, "fault: hard crash injected at %s\n", site)
		os.Exit(137)
	}
	return nil
}

// CorruptBytes flips bytes of b in place when site is armed with
// ActCorrupt, reporting whether it did. The flip is deterministic — XOR
// 0xA5 at the middle byte and the first byte — so corrupted images are
// reproducible across runs.
func CorruptBytes(site string, b []byte) bool {
	if armed.Load() == 0 || len(b) == 0 {
		return false
	}
	if _, fire := take(site, true); !fire {
		return false
	}
	b[len(b)/2] ^= 0xA5
	b[0] ^= 0xA5
	return true
}

// ArmSpec arms fault points from a flag value: comma-separated
// "site=action" items, each optionally carrying an action argument and
// after/count modifiers separated by semicolons:
//
//	leaf.query=delay:500ms
//	shm.commit=error;after=4
//	shm.copy_out=crash
//	shm.copy_in=corrupt;count=1,wire.read=error:connection reset
//
// Unknown sites and malformed actions are errors, so chaos-run typos fail
// loudly at daemon start instead of silently injecting nothing.
func ArmSpec(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		p, err := parsePoint(item)
		if err != nil {
			return err
		}
		Arm(p)
	}
	return nil
}

func parsePoint(item string) (Point, error) {
	site, rest, ok := strings.Cut(item, "=")
	if !ok {
		return Point{}, fmt.Errorf("fault: %q is not site=action", item)
	}
	site = strings.TrimSpace(site)
	if !knownSite(site) {
		return Point{}, fmt.Errorf("fault: unknown site %q (known: %s)", site, strings.Join(Sites(), " "))
	}
	p := Point{Site: site}
	parts := strings.Split(rest, ";")
	action, arg, _ := strings.Cut(strings.TrimSpace(parts[0]), ":")
	switch action {
	case "error":
		p.Action = ActError
		if arg != "" {
			p.Err = fmt.Errorf("%w: %s", ErrInjected, arg)
		}
	case "delay":
		p.Action = ActDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Point{}, fmt.Errorf("fault: delay at %s needs a duration: %v", site, err)
		}
		p.Delay = d
	case "corrupt":
		p.Action = ActCorrupt
	case "crash":
		p.Action = ActCrash
	default:
		return Point{}, fmt.Errorf("fault: unknown action %q at %s (error|delay:dur|corrupt|crash)", action, site)
	}
	for _, mod := range parts[1:] {
		key, val, _ := strings.Cut(strings.TrimSpace(mod), "=")
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return Point{}, fmt.Errorf("fault: modifier %q at %s needs a non-negative integer", mod, site)
		}
		switch key {
		case "after":
			p.After = n
		case "count":
			p.Count = n
		default:
			return Point{}, fmt.Errorf("fault: unknown modifier %q at %s (after=N|count=N)", key, site)
		}
	}
	return p, nil
}

// knownSite accepts base sites and their per-leaf variants.
func knownSite(site string) bool {
	for _, s := range Sites() {
		if site == s {
			return true
		}
		if strings.HasPrefix(site, s+".") {
			if _, err := strconv.Atoi(site[len(s)+1:]); err == nil {
				return true
			}
		}
	}
	return false
}

// String describes the armed points, sorted by site, for daemon logs.
func String() string {
	mu.Lock()
	defer mu.Unlock()
	if len(points) == 0 {
		return "none"
	}
	var sites []string
	for site := range points {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var b strings.Builder
	for i, site := range sites {
		if i > 0 {
			b.WriteString(", ")
		}
		st := points[site]
		fmt.Fprintf(&b, "%s=%s", site, st.p.Action)
		if st.p.Action == ActDelay {
			fmt.Fprintf(&b, ":%v", st.p.Delay)
		}
		if st.p.After > 0 {
			fmt.Fprintf(&b, ";after=%d", st.p.After)
		}
		if st.p.Count > 0 {
			fmt.Fprintf(&b, ";count=%d", st.p.Count)
		}
	}
	return b.String()
}
