package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("registry armed at start")
	}
	if err := Inject(SiteShmMap); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
	b := []byte{1, 2, 3}
	if CorruptBytes(SiteShmCopyIn, b) {
		t.Fatal("unarmed CorruptBytes fired")
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatal("unarmed CorruptBytes modified the buffer")
	}
}

func TestErrorAfterCount(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm(Point{Site: SiteDiskRead, Action: ActError, After: 2, Count: 1})
	for i := 0; i < 2; i++ {
		if err := Inject(SiteDiskRead); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Inject(SiteDiskRead); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 = %v, want ErrInjected", err)
	}
	if err := Inject(SiteDiskRead); err != nil {
		t.Fatalf("count=1 exceeded: %v", err)
	}
	if got := Hits(SiteDiskRead); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
}

func TestCustomError(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	boom := errors.New("boom")
	Arm(Point{Site: SiteWireRead, Action: ActError, Err: boom})
	if err := Inject(SiteWireRead); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	Disarm(SiteWireRead)
	if Enabled() {
		t.Fatal("still enabled after Disarm")
	}
	if err := Inject(SiteWireRead); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
}

func TestDelay(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm(Point{Site: SiteLeafQuery, Action: ActDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Inject(SiteLeafQuery); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
}

func TestCorruptIsDeterministicAndScoped(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm(Point{Site: SiteShmCopyIn, Action: ActCorrupt, Count: 1})
	// Inject must not consume a corrupt point (it fires via CorruptBytes).
	if err := Inject(SiteShmCopyIn); err != nil {
		t.Fatal(err)
	}
	a := []byte{0, 0, 0, 0}
	if !CorruptBytes(SiteShmCopyIn, a) {
		t.Fatal("armed CorruptBytes did not fire")
	}
	if a[0] != 0xA5 || a[2] != 0xA5 {
		t.Fatalf("corruption pattern = %v, want deterministic 0xA5 flips", a)
	}
	if CorruptBytes(SiteShmCopyIn, a) {
		t.Fatal("count=1 corrupt fired twice")
	}
}

func TestPerLeafSites(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm(Point{Site: PerLeaf(SiteLeafQuery, 3), Action: ActError})
	if err := Inject(SiteLeafQuery); err != nil {
		t.Fatalf("base site fired for per-leaf arming: %v", err)
	}
	if err := Inject(PerLeaf(SiteLeafQuery, 2)); err != nil {
		t.Fatalf("leaf 2 fired for leaf 3's fault: %v", err)
	}
	if err := Inject(PerLeaf(SiteLeafQuery, 3)); !errors.Is(err, ErrInjected) {
		t.Fatalf("leaf 3 = %v, want ErrInjected", err)
	}
}

func TestArmSpec(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	err := ArmSpec("leaf.query=delay:50ms, shm.commit=error;after=4;count=2, shm.copy_in=corrupt, leaf.query.7=error:hung leaf")
	if err != nil {
		t.Fatal(err)
	}
	got := String()
	for _, want := range []string{"leaf.query=delay:50ms", "shm.commit=error;after=4;count=2", "shm.copy_in=corrupt", "leaf.query.7=error"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
	if err := Inject(PerLeaf(SiteLeafQuery, 7)); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("leaf.query.7 = %v", err)
	}
}

func TestArmSpecRejectsBadInput(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	for _, spec := range []string{
		"nope.site=error",
		"leaf.query",
		"leaf.query=explode",
		"leaf.query=delay",
		"leaf.query=delay:xyz",
		"shm.map=error;while=3",
		"shm.map=error;after=-1",
		"leaf.query.x=error",
	} {
		if err := ArmSpec(spec); err == nil {
			t.Errorf("ArmSpec(%q) accepted", spec)
		}
		Reset()
	}
}
