package leaf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
)

// instantConfig is env.config with the instant-on restore enabled.
func (e env) instantConfig(id int) Config {
	cfg := e.config(id)
	cfg.InstantOn = true
	return cfg
}

// queryFingerprint runs a grouped multi-aggregate query and returns its full
// result as a canonical string, so tests can assert byte-identical answers
// across restarts and promotion states rather than just matching counts.
func queryFingerprint(t *testing.T, l *Leaf, tableName string) string {
	t.Helper()
	q := &query.Query{
		Table: tableName, From: 0, To: 1 << 40,
		GroupBy: []string{"service"},
		Aggregations: []query.Aggregation{
			{Op: query.AggCount},
			{Op: query.AggSum, Column: "latency"},
			{Op: query.AggMax, Column: "latency"},
		},
	}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Rows(q))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitPromoted polls until every shm-resident block has been promoted to the
// heap (ServedFromShm reaches zero).
func waitPromoted(t *testing.T, l *Leaf) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l.Recovery().ServedFromShm == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("promotion never drained: %+v", l.Recovery())
}

// segmentFiles lists this namespace's segment files still on "tmpfs"
// (excluding the flight recorder's, which lives outside the restore).
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.Contains(e.Name(), "tbl-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestInstantOnRestartCycle(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	// Several sealed blocks per table so promotion has real work.
	for i := 0; i < 3; i++ {
		ingest(t, old, "events", 400, int64(1000+400*i))
		ingest(t, old, "errors", 200, int64(5000+200*i))
		if err := old.SealAll(); err != nil {
			t.Fatal(err)
		}
	}
	wantEvents := queryFingerprint(t, old, "events")
	wantErrors := queryFingerprint(t, old, "errors")
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}

	nu := startLeaf(t, e.instantConfig(0))
	defer nu.stopPromoter()
	rec := nu.Recovery()
	if rec.Path != RecoveryShmView {
		t.Fatalf("recovery path = %v (%+v)", rec.Path, rec)
	}
	if rec.Tables != 2 || rec.Blocks == 0 {
		t.Errorf("recovery = %+v", rec)
	}
	// Metadata is consumed at restore time: a crash mid-promotion must go to
	// WAL/disk, never to a half-consumed backup.
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if _, err := m.ReadMetadata(); err == nil {
		t.Error("metadata still present after instant-on restore")
	}
	// Results are correct immediately, while blocks are still shm-resident.
	if got := queryFingerprint(t, nu, "events"); got != wantEvents {
		t.Errorf("events during promotion:\ngot  %s\nwant %s", got, wantEvents)
	}
	if got := queryFingerprint(t, nu, "errors"); got != wantErrors {
		t.Errorf("errors during promotion:\ngot  %s\nwant %s", got, wantErrors)
	}

	waitPromoted(t, nu)
	if rec := nu.Recovery(); rec.PromotedBlocks == 0 {
		t.Errorf("no promoted blocks recorded: %+v", rec)
	}
	// Identical again once everything is heap-side...
	if got := queryFingerprint(t, nu, "events"); got != wantEvents {
		t.Errorf("events after promotion:\ngot  %s\nwant %s", got, wantEvents)
	}
	// ...and the drained segments delete their files.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if files := segmentFiles(t, e.shmDir); len(files) == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("segment files still present after promotion: %v", files)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The promoted leaf shuts down to shm and restarts like any other.
	if _, err := nu.Shutdown(); err != nil {
		t.Fatal(err)
	}
	third := startLeaf(t, e.config(0))
	if third.Recovery().Path != RecoveryMemory {
		t.Fatalf("post-promotion restart = %+v", third.Recovery())
	}
	if got := queryFingerprint(t, third, "events"); got != wantEvents {
		t.Errorf("events after second restart:\ngot  %s\nwant %s", got, wantEvents)
	}
}

func TestInstantOnIngestAfterRestore(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 300, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.instantConfig(0))
	defer nu.stopPromoter()
	// New rows land in fresh builders beside the shm-resident blocks.
	ingest(t, nu, "events", 50, 9000)
	if got := countRows(t, nu, "events"); got != 350 {
		t.Errorf("count = %v, want 350", got)
	}
}

// TestInstantOnViewFaultDegradesToEagerCopy arms the shm.view fault site:
// every view open fails, so each table degrades to the eager copy-in and the
// leaf reports the plain memory path — same data, no instant-on.
func TestInstantOnViewFaultDegradesToEagerCopy(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 500, 1000)
	want := queryFingerprint(t, old, "events")
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}

	t.Cleanup(fault.Reset)
	if err := fault.ArmSpec(fault.SiteShmView + "=error"); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.instantConfig(0))
	fault.Reset()
	rec := nu.Recovery()
	if rec.Path != RecoveryMemory {
		t.Fatalf("recovery path = %v, want %v (degraded eager copy): %+v", rec.Path, RecoveryMemory, rec)
	}
	if rec.ServedFromShm != 0 {
		t.Errorf("served_from_shm = %d after degradation", rec.ServedFromShm)
	}
	if got := queryFingerprint(t, nu, "events"); got != want {
		t.Errorf("degraded restore:\ngot  %s\nwant %s", got, want)
	}
}

// TestInstantOnPromotionFaultKeepsServingFromShm arms promote.copy: every
// promotion attempt fails, blocks stay shm-resident, and queries keep
// answering correctly from the mapping.
func TestInstantOnPromotionFaultKeepsServingFromShm(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 500, 1000)
	want := queryFingerprint(t, old, "events")
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}

	t.Cleanup(fault.Reset)
	if err := fault.ArmSpec(fault.SitePromoteCopy + "=error"); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.instantConfig(0))
	defer nu.stopPromoter()
	rec := nu.Recovery()
	if rec.Path != RecoveryShmView || rec.ServedFromShm == 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	// Give the (failing) promoter time to try every block, then verify the
	// blocks are all still shm-resident and still correct.
	time.Sleep(50 * time.Millisecond)
	if rec := nu.Recovery(); rec.ServedFromShm == 0 || rec.PromotedBlocks != 0 {
		t.Errorf("blocks moved despite armed promote.copy: %+v", rec)
	}
	if got := queryFingerprint(t, nu, "events"); got != want {
		t.Errorf("shm-resident serve:\ngot  %s\nwant %s", got, want)
	}
}

// TestInstantOnScanPinsViewAcrossExpiry is the refcount race: a scan
// snapshots a shm-resident block, then retention expires that block (and
// promotion finishes everything else) while the scan is still reading. The
// segment must stay mapped — and its file alive — until the scan drains,
// and only then unmap and delete.
func TestInstantOnScanPinsViewAcrossExpiry(t *testing.T) {
	e := newEnv(t)
	clock := int64(10_000)
	cfg := e.config(0)
	cfg.Clock = func() int64 { return clock }
	cfg.Table = table.Options{MaxAgeSeconds: 1 << 30}
	old := startLeaf(t, cfg)
	ingest(t, old, "events", 400, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}

	nucfg := cfg
	nucfg.InstantOn = true
	// Park promotion so the block under test stays shm-resident until expiry
	// gets to it.
	t.Cleanup(fault.Reset)
	if err := fault.ArmSpec(fault.SitePromoteCopy + "=error"); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, nucfg)
	defer nu.stopPromoter()

	nu.mu.Lock()
	tbl := nu.tables["events"]
	nu.mu.Unlock()
	if tbl == nil || tbl.ForeignBlocks() == 0 {
		t.Fatalf("no shm-resident blocks to pin")
	}
	src := tbl.Blocks()[0].Source()
	if src == nil {
		t.Fatal("block has no source")
	}
	view := src.(*shm.MappedView)

	scanning := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		scanDone <- tbl.ScanBlocks(0, 1<<40, func([]*rowblock.RowBlock) error {
			close(scanning)
			<-release
			return nil
		})
	}()
	<-scanning

	// Expire everything: the rows are ancient relative to the advanced clock.
	clock += 1 << 31
	if _, err := tbl.Expire(clock); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Blocks()); got != 0 {
		t.Fatalf("expiry left %d blocks", got)
	}
	// The scan still pins the view: mapped, refs held, file on disk.
	if view.Refs() == 0 {
		t.Fatal("view drained while a scan still reads it")
	}
	if files := segmentFiles(t, e.shmDir); len(files) == 0 {
		t.Fatal("segment file deleted while a scan still reads it")
	}

	close(release)
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for view.Refs() != 0 || len(segmentFiles(t, e.shmDir)) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("view not reclaimed after scan drained: refs=%d files=%v",
				view.Refs(), segmentFiles(t, e.shmDir))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestInstantOnCrashMidPromotionRecovers abandons an instant-on leaf without
// any shutdown (the in-process stand-in for kill -9 while promotion still
// has shm-resident blocks). The metadata's valid bit was consumed at restore
// time, so the replacement must come up via the normal crash paths with
// nothing lost and no stale segment files.
func TestInstantOnCrashMidPromotionRecovers(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.WALDir = filepath.Join(e.diskDir, "wal")
	old := startLeaf(t, cfg)
	ingest(t, old, "events", 600, 1000)
	want := queryFingerprint(t, old, "events")
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}

	t.Cleanup(fault.Reset)
	if err := fault.ArmSpec(fault.SitePromoteCopy + "=error"); err != nil {
		t.Fatal(err)
	}
	crashCfg := cfg
	crashCfg.InstantOn = true
	crashed := startLeaf(t, crashCfg)
	if rec := crashed.Recovery(); rec.Path != RecoveryShmView || rec.ServedFromShm == 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	crashed.stopPromoter()
	fault.Reset()
	// No shutdown: the "process" dies here with every block still in shm.

	repl := startLeaf(t, cfg)
	rec := repl.Recovery()
	if rec.Path != RecoveryWAL && rec.Path != RecoveryDisk {
		t.Fatalf("replacement path = %v, want wal or disk: %+v", rec.Path, rec)
	}
	if got := queryFingerprint(t, repl, "events"); got != want {
		t.Errorf("post-crash recovery:\ngot  %s\nwant %s", got, want)
	}
}

// TestInstantOnEmptyLeaf exercises a restore with zero tables and checks the
// first-query availability-gap timer fires exactly once.
func TestInstantOnEmptyLeaf(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	cfg := e.instantConfig(0)
	cfg.Metrics = metrics.NewRegistry()
	nu := startLeaf(t, cfg)
	if got := countRows(t, nu, "missing"); got != 0 {
		t.Errorf("count = %v", got)
	}
	if got := countRows(t, nu, "missing"); got != 0 {
		t.Errorf("count = %v", got)
	}
	if n := cfg.Metrics.Timer(obs.TimerFirstQueryGap).Stats().Count; n != 1 {
		t.Errorf("first_query_gap observations = %d, want exactly 1", n)
	}
}

// TestSegmentGenerationNames: copy-out names segments with a generation
// suffix so consecutive backups never truncate a mapped file.
func TestSegmentGenerationNames(t *testing.T) {
	for _, tc := range []struct {
		gen  int64
		want string
	}{
		{0, shm.SegmentNameForTable("x")},
		{-1, shm.SegmentNameForTable("x")},
		{42, shm.SegmentNameForTable("x") + ".g42"},
	} {
		if got := shm.SegmentNameForTableGen("x", tc.gen); got != tc.want {
			t.Errorf("SegmentNameForTableGen(x, %d) = %q, want %q", tc.gen, got, tc.want)
		}
	}
}
