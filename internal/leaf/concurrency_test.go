package leaf

// Concurrency harness for the parallel restart path: serial/parallel
// equivalence, worker fault injection on both halves, and a
// shutdown-while-ingesting hammer meant to run under -race.

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata")

// seedTables ingests a deterministic pseudo-random dataset of 8 tables.
// Each batch seals into its own block, and the first row of every batch
// carries only the "latency" column so the builder registers columns one at
// a time — that makes the sealed block images byte-deterministic across
// leaves fed the same seed.
func seedTables(t *testing.T, l *Leaf, seed int64) map[string]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[string]int)
	for ti := 0; ti < 8; ti++ {
		name := fmt.Sprintf("tbl-%02d", ti)
		batches := 1 + rng.Intn(4)
		for b := 0; b < batches; b++ {
			n := 20 + rng.Intn(200)
			rows := make([]rowblock.Row, n)
			for i := range rows {
				cols := map[string]rowblock.Value{
					"latency": rowblock.Int64Value(int64(rng.Intn(1000))),
				}
				if i > 0 {
					cols["service"] = rowblock.StringValue(fmt.Sprintf("svc-%d", rng.Intn(6)))
				}
				rows[i] = rowblock.Row{Time: int64(rng.Intn(1 << 20)), Cols: cols}
			}
			if err := l.AddRows(name, rows); err != nil {
				t.Fatal(err)
			}
			if err := l.SealAll(); err != nil {
				t.Fatal(err)
			}
			counts[name] += n
		}
	}
	return counts
}

// tableImages serializes every sealed block of every table.
func tableImages(t *testing.T, l *Leaf) map[string][][]byte {
	t.Helper()
	out := make(map[string][][]byte)
	for _, name := range l.Tables() {
		var imgs [][]byte
		for _, rb := range l.Table(name).Blocks() {
			imgs = append(imgs, rb.AppendImage(nil))
		}
		out[name] = imgs
	}
	return out
}

// checkPerTable asserts the stat breakdown is sorted, covers every table
// once, and sums to the given totals.
func checkPerTable(t *testing.T, what string, stats []TableCopyStat, tables, blocks int, bytesTotal int64) {
	t.Helper()
	if len(stats) != tables {
		t.Fatalf("%s: %d per-table stats, want %d", what, len(stats), tables)
	}
	var sumBlocks int
	var sumBytes int64
	for i, st := range stats {
		if i > 0 && stats[i-1].Table >= st.Table {
			t.Errorf("%s: stats not sorted: %q before %q", what, stats[i-1].Table, st.Table)
		}
		sumBlocks += st.Blocks
		sumBytes += st.Bytes
	}
	if sumBlocks != blocks || sumBytes != bytesTotal {
		t.Errorf("%s: per-table sums %d blocks / %d bytes, totals say %d / %d",
			what, sumBlocks, sumBytes, blocks, bytesTotal)
	}
}

// TestParallelRestartMatchesSerial is the equivalence property test: a full
// shutdown+restore cycle with an N-worker pool must restore row blocks
// byte-for-byte identical to the 1-worker (serial) cycle over the same
// deterministic dataset.
func TestParallelRestartMatchesSerial(t *testing.T) {
	const seed = 0xC0FFEE
	fixedClock := func() int64 { return 1_700_000_000 }

	run := func(workers int) (map[string][][]byte, ShutdownInfo, RecoveryInfo) {
		e := newEnv(t)
		cfg := e.config(0)
		cfg.CopyWorkers = workers
		cfg.Clock = fixedClock
		l := startLeaf(t, cfg)
		seedTables(t, l, seed)
		sinfo, err := l.Shutdown()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		nu := startLeaf(t, cfg)
		rec := nu.Recovery()
		if rec.Path != RecoveryMemory {
			t.Fatalf("workers=%d: recovery = %+v", workers, rec)
		}
		return tableImages(t, nu), sinfo, rec
	}

	base, baseShut, baseRec := run(1)
	if baseShut.Workers != 1 || baseRec.Workers != 1 {
		t.Fatalf("serial cycle ran with %d/%d workers", baseShut.Workers, baseRec.Workers)
	}
	for _, workers := range []int{2, 4, 8} {
		imgs, sinfo, rec := run(workers)
		if sinfo.Workers != workers {
			t.Errorf("shutdown ran with %d workers, want %d", sinfo.Workers, workers)
		}
		checkPerTable(t, fmt.Sprintf("shutdown w=%d", workers), sinfo.PerTable,
			sinfo.Tables, sinfo.Blocks, sinfo.BytesCopied)
		checkPerTable(t, fmt.Sprintf("restore w=%d", workers), rec.PerTable,
			rec.Tables, rec.Blocks, rec.BytesRestored)
		if len(imgs) != len(base) {
			t.Fatalf("workers=%d restored %d tables, serial %d", workers, len(imgs), len(base))
		}
		for name, want := range base {
			got, ok := imgs[name]
			if !ok {
				t.Errorf("workers=%d: table %q missing", workers, name)
				continue
			}
			if len(got) != len(want) {
				t.Errorf("workers=%d: %q has %d blocks, serial %d", workers, name, len(got), len(want))
				continue
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Errorf("workers=%d: %q block %d differs from serial image", workers, name, i)
				}
			}
		}
	}
}

// TestWorkerFailureDuringShutdown kills one copy worker mid-table and checks
// the whole shutdown rolls back: no metadata, no orphaned segments of any
// table (including ones whose writers had already finished — the satellite
// regression), and the next start serves full results from disk.
func TestWorkerFailureDuringShutdown(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 4
	l := startLeaf(t, cfg)
	for i := 0; i < 6; i++ {
		ingest(t, l, fmt.Sprintf("t%d", i), 200+10*i, int64(1000*i))
	}
	boom := errors.New("boom")
	l.copyBlockHook = func(tbl string, block int) error {
		if tbl == "t3" && block == 1 {
			return boom
		}
		return nil
	}
	if _, err := l.Shutdown(); !errors.Is(err, boom) {
		t.Fatalf("shutdown err = %v, want injected fault", err)
	}
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if _, err := m.ReadMetadata(); !errors.Is(err, shm.ErrNoMetadata) {
		t.Errorf("metadata survived failed shutdown: %v", err)
	}
	entries, err := os.ReadDir(e.shmDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		var names []string
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Errorf("orphaned shm files after failed shutdown: %v", names)
	}
	nu := startLeaf(t, e.config(0))
	rec := nu.Recovery()
	if rec.Path != RecoveryDisk {
		t.Fatalf("recovery = %+v, want disk", rec)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("t%d", i)
		if got, want := countRows(t, nu, name), float64(200+10*i); got != want {
			t.Errorf("%s count = %v, want %v", name, got, want)
		}
	}
}

// TestWorkerFailureDuringRestore kills the restore of one table; the leaf
// must quarantine exactly that table to the disk path, restore the other
// five from shared memory, report a mixed recovery, and serve full results
// for every table — including the quarantined one — with no leftover shm.
func TestWorkerFailureDuringRestore(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 4
	old := startLeaf(t, cfg)
	for i := 0; i < 6; i++ {
		ingest(t, old, fmt.Sprintf("t%d", i), 150+i, int64(1000*i))
	}
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	nu.restoreBlockHook = func(tbl string, block int) error {
		if tbl == "t2" {
			return boom
		}
		return nil
	}
	if err := nu.Start(); err != nil {
		t.Fatal(err)
	}
	rec := nu.Recovery()
	if rec.Path != RecoveryMixed || rec.FellBack {
		t.Fatalf("recovery = %+v, want mixed (no whole-restore fallback)", rec)
	}
	if rec.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1: %+v", rec.Quarantined, rec.PerTablePath)
	}
	for _, tr := range rec.PerTablePath {
		want := RecoveryMemory
		if tr.Table == "t2" {
			want = RecoveryDisk
		}
		if tr.Path != want {
			t.Errorf("table %s path = %s (%s), want %s", tr.Table, tr.Path, tr.Reason, want)
		}
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("t%d", i)
		if got, want := countRows(t, nu, name), float64(150+i); got != want {
			t.Errorf("%s count = %v, want %v", name, got, want)
		}
	}
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if _, err := m.ReadMetadata(); !errors.Is(err, shm.ErrNoMetadata) {
		t.Errorf("metadata survived restore: %v", err)
	}
}

// TestShutdownWhileIngesting hammers a parallel shutdown with concurrent
// ingest (run it under -race). Every AddRows either succeeds — and its rows
// must survive the restart — or is rejected with the state-machine errors;
// nothing is silently dropped.
func TestShutdownWhileIngesting(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 4
	l := startLeaf(t, cfg)
	const ingesters = 4
	for g := 0; g < ingesters; g++ {
		ingest(t, l, fmt.Sprintf("t%d", g), 50, 0)
	}
	var accepted [ingesters]int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g)
			for batch := int64(0); ; batch++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := make([]rowblock.Row, 20)
				for i := range rows {
					rows[i] = rowblock.Row{Time: batch*100 + int64(i), Cols: map[string]rowblock.Value{
						"v": rowblock.Int64Value(int64(i)),
					}}
				}
				if err := l.AddRows(name, rows); err != nil {
					if !errors.Is(err, ErrNotAlive) && !errors.Is(err, table.ErrNotAccepting) {
						t.Errorf("add error: %v", err)
					}
					return
				}
				atomic.AddInt64(&accepted[g], 20)
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond) // let the ingesters race the shutdown
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	nu := startLeaf(t, e.config(0))
	if nu.Recovery().Path != RecoveryMemory {
		t.Fatalf("recovery = %+v", nu.Recovery())
	}
	for g := 0; g < ingesters; g++ {
		name := fmt.Sprintf("t%d", g)
		want := float64(50 + atomic.LoadInt64(&accepted[g]))
		if got := countRows(t, nu, name); got != want {
			t.Errorf("%s count = %v, want %v", name, got, want)
		}
	}
}

// TestCopyWorkerDefaultsAndClamp checks CopyWorkers resolution through the
// reported info: explicit pools clamp to the table count, and the 0 default
// resolves to at least one worker.
func TestCopyWorkerDefaultsAndClamp(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 8
	l := startLeaf(t, cfg)
	ingest(t, l, "only", 30, 0)
	ingest(t, l, "pair", 30, 0)
	info, err := l.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if info.Workers != 2 {
		t.Errorf("shutdown workers = %d, want clamp to 2 tables", info.Workers)
	}
	nu := startLeaf(t, e.config(0)) // CopyWorkers 0: NumCPU, clamped to 2
	rec := nu.Recovery()
	if rec.Workers < 1 || rec.Workers > 2 {
		t.Errorf("restore workers = %d, want 1..2", rec.Workers)
	}
}

// TestShutdownPublishesWorkerMetrics checks the per-worker gauges appear in
// the configured registry for both halves of the cycle.
func TestShutdownPublishesWorkerMetrics(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 2
	cfg.Metrics = metrics.NewRegistry()
	l := startLeaf(t, cfg)
	ingest(t, l, "a", 100, 0)
	ingest(t, l, "b", 100, 0)
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	out := cfg.Metrics.String()
	for _, want := range []string{"leaf0_shutdown_worker0_bytes", "leaf0_shutdown_worker1_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing gauge %s in:\n%s", want, out)
		}
	}
	nu, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nu.Start(); err != nil {
		t.Fatal(err)
	}
	out = cfg.Metrics.String()
	if !strings.Contains(out, "leaf0_restore_worker0_bytes") {
		t.Errorf("missing restore gauges in:\n%s", out)
	}
}

// TestGoldenMetadataFixture pins the on-disk metadata encoding for the
// current LayoutVersion to a golden fixture: the encoding may only change
// together with a version bump, because a restoring binary decides
// shm-vs-disk by decoding exactly these bytes.
func TestGoldenMetadataFixture(t *testing.T) {
	canonical := &shm.Metadata{
		Valid:   true,
		Version: shm.LayoutVersion,
		Created: 1_700_000_000,
		Segments: []shm.SegmentInfo{
			{Table: "events", Segment: shm.SegmentNameForTable("events")},
			{Table: "perf metrics", Segment: shm.SegmentNameForTable("perf metrics")},
			{Table: "errors", Segment: shm.SegmentNameForTable("errors")},
		},
	}
	dir := t.TempDir()
	m := shm.NewManager(0, shm.Options{Dir: dir, Namespace: "test"})
	if err := m.WriteMetadata(canonical); err != nil {
		t.Fatal(err)
	}
	// The metadata location is the hard-coded per-leaf path of §4.2.
	metaPath := filepath.Join(dir, "test-leaf0-meta")
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", fmt.Sprintf("metadata-v%d.golden", shm.LayoutVersion))
	if *updateGolden {
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("metadata encoding changed for layout version %d (got %d bytes, golden %d); bump shm.LayoutVersion instead of changing the encoding in place",
			shm.LayoutVersion, len(raw), len(want))
	}
	// The golden bytes must decode to exactly the canonical struct.
	if err := os.WriteFile(metaPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	md, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(md, canonical) {
		t.Fatalf("golden decode = %+v, want %+v", md, canonical)
	}
}

// TestParallelShutdownMetadataRoundTrips checks metadata written by a
// multi-worker shutdown: valid, current version, exactly one segment per
// table, and stable under a ReadMetadata/WriteMetadata round-trip.
func TestParallelShutdownMetadataRoundTrips(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 4
	l := startLeaf(t, cfg)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, n := range names {
		ingest(t, l, n, 60+i, int64(100*i))
	}
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	md, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !md.Valid || md.Version != shm.LayoutVersion {
		t.Fatalf("metadata = %+v", md)
	}
	// Workers register segments in completion order, so compare as a set.
	if len(md.Segments) != len(names) {
		t.Fatalf("segments = %+v", md.Segments)
	}
	seen := make(map[string]string)
	for _, s := range md.Segments {
		seen[s.Table] = s.Segment
	}
	for _, n := range names {
		// Copy-out names segments tbl-<name>.g<generation> so a new backup
		// never truncates a file a previous generation's view still maps.
		if !strings.HasPrefix(seen[n], shm.SegmentNameForTable(n)+".g") {
			t.Errorf("table %q mapped to segment %q", n, seen[n])
		}
	}
	if err := m.WriteMetadata(md); err != nil {
		t.Fatal(err)
	}
	again, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, md) {
		t.Fatalf("round-trip changed metadata:\ngot  %+v\nwant %+v", again, md)
	}
}
