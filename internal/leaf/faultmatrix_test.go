package leaf

import (
	"fmt"
	"testing"

	"scuba/internal/fault"
	"scuba/internal/query"
)

// TestFaultMatrix is the keystone regression suite for DESIGN.md §8: for
// every fault site × action combination on the restart path, the leaf must
// converge to serving, query results must equal an unfaulted run, and the
// recovery path must be exactly what the failure model predicts. Crash
// actions need a real process and live in the e2e subprocess tests.
//
// CopyWorkers is pinned to 1 so hit ordering is deterministic: tables copy
// in sorted name order (t0, t1, t2), and Shutdown's metadata writes are
// initial(1) + one registration per table (2-4) + commit(5).
func TestFaultMatrix(t *testing.T) {
	const tables = 3
	counts := [tables]int{120, 140, 160}

	cases := []struct {
		name string
		// spec is armed before the faulted stage and disarmed after it.
		spec  string
		stage string // "shutdown" or "restore"
		// wantShutdownErr: the faulted Shutdown must fail (the next start
		// then disk-recovers with full data).
		wantShutdownErr bool
		wantPath        RecoveryPath
		wantQuarantined int
		wantFellBack    bool
		// lostTables expect zero rows (quarantine reload also failed).
		lostTables map[string]bool
	}{
		{
			name: "copy_out error fails shutdown, disk recovers all",
			spec: "shm.copy_out=error", stage: "shutdown",
			wantShutdownErr: true, wantPath: RecoveryDisk,
		},
		{
			name: "initial metadata write error fails shutdown, disk recovers all",
			spec: "shm.commit=error;count=1", stage: "shutdown",
			wantShutdownErr: true, wantPath: RecoveryDisk,
		},
		{
			name: "valid-bit commit error fails shutdown, disk recovers all",
			spec: "shm.commit=error;after=4", stage: "shutdown",
			wantShutdownErr: true, wantPath: RecoveryDisk,
		},
		{
			name: "copy_out delay only slows shutdown, memory restore",
			spec: "shm.copy_out=delay:2ms;count=3", stage: "shutdown",
			wantPath: RecoveryMemory,
		},
		{
			name: "copy_out corruption detected at restore, one table quarantined",
			spec: "shm.copy_out=corrupt;count=1", stage: "shutdown",
			wantPath: RecoveryMixed, wantQuarantined: 1,
		},
		{
			name: "metadata read error falls back whole restore to disk",
			spec: "shm.map=error;count=1", stage: "restore",
			wantPath: RecoveryDisk, wantFellBack: true,
		},
		{
			name: "one segment map error quarantines only that table",
			spec: "shm.map=error;after=1;count=1", stage: "restore",
			wantPath: RecoveryMixed, wantQuarantined: 1,
		},
		{
			name: "copy_in error quarantines only that table",
			spec: "shm.copy_in=error;count=1", stage: "restore",
			wantPath: RecoveryMixed, wantQuarantined: 1,
		},
		{
			name: "copy_in corruption caught by block checksums, quarantined",
			spec: "shm.copy_in=corrupt;count=1", stage: "restore",
			wantPath: RecoveryMixed, wantQuarantined: 1,
		},
		{
			name: "copy_in delay only slows restore, memory restore",
			spec: "shm.copy_in=delay:2ms;count=3", stage: "restore",
			wantPath: RecoveryMemory,
		},
		{
			name: "quarantine reload hits disk error: table lost, leaf still serves",
			spec: "shm.copy_in=error;count=1, disk.read=error;count=1", stage: "restore",
			wantPath: RecoveryMixed, wantQuarantined: 1,
			lostTables: map[string]bool{"t0": true},
		},
		{
			name: "every table quarantined: per-table disk path, no fallback",
			spec: "shm.copy_in=error;count=3", stage: "restore",
			wantPath: RecoveryDisk, wantQuarantined: 3,
		},
	}

	// Unfaulted baseline: per-table count and latency sum after a clean
	// shutdown/restore cycle. Every faulted run must reproduce these
	// exactly (minus tables deliberately lost).
	baseCount := make(map[string]float64)
	baseSum := make(map[string]float64)
	{
		e := newEnv(t)
		cfg := e.config(0)
		cfg.CopyWorkers = 1
		l := startLeaf(t, cfg)
		for i := 0; i < tables; i++ {
			ingest(t, l, fmt.Sprintf("t%d", i), counts[i], int64(1000*i))
		}
		if _, err := l.Shutdown(); err != nil {
			t.Fatal(err)
		}
		nu := startLeaf(t, cfg)
		if nu.Recovery().Path != RecoveryMemory {
			t.Fatalf("baseline recovery = %+v", nu.Recovery())
		}
		for i := 0; i < tables; i++ {
			name := fmt.Sprintf("t%d", i)
			baseCount[name], baseSum[name] = countAndSum(t, nu, name)
		}
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Cleanup(fault.Reset)
			fault.Reset()
			e := newEnv(t)
			cfg := e.config(0)
			cfg.CopyWorkers = 1
			l := startLeaf(t, cfg)
			for i := 0; i < tables; i++ {
				ingest(t, l, fmt.Sprintf("t%d", i), counts[i], int64(1000*i))
			}

			if tc.stage == "shutdown" {
				if err := fault.ArmSpec(tc.spec); err != nil {
					t.Fatal(err)
				}
			}
			_, err := l.Shutdown()
			if tc.stage == "shutdown" {
				fault.Reset()
			}
			if tc.wantShutdownErr != (err != nil) {
				t.Fatalf("shutdown err = %v, want failure=%v", err, tc.wantShutdownErr)
			}

			if tc.stage == "restore" {
				if err := fault.ArmSpec(tc.spec); err != nil {
					t.Fatal(err)
				}
			}
			nu, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The acceptance bar: Start never fails outright — every
			// injected fault converges to a serving leaf.
			if err := nu.Start(); err != nil {
				t.Fatalf("Start under fault %q = %v", tc.spec, err)
			}
			fault.Reset()

			if st := nu.State(); st != StateAlive {
				t.Fatalf("leaf state = %v, want alive", st)
			}
			rec := nu.Recovery()
			if rec.Path != tc.wantPath {
				t.Fatalf("recovery path = %s, want %s (%+v)", rec.Path, tc.wantPath, rec)
			}
			if rec.Quarantined != tc.wantQuarantined {
				t.Fatalf("quarantined = %d, want %d (%+v)", rec.Quarantined, tc.wantQuarantined, rec.PerTablePath)
			}
			if rec.FellBack != tc.wantFellBack {
				t.Fatalf("fellBack = %v, want %v", rec.FellBack, tc.wantFellBack)
			}

			for i := 0; i < tables; i++ {
				name := fmt.Sprintf("t%d", i)
				gotCount, gotSum := countAndSum(t, nu, name)
				wantCount, wantSum := baseCount[name], baseSum[name]
				if tc.lostTables[name] {
					wantCount, wantSum = 0, 0
				}
				if gotCount != wantCount || gotSum != wantSum {
					t.Errorf("%s: count/sum = %v/%v, want %v/%v",
						name, gotCount, gotSum, wantCount, wantSum)
				}
			}
		})
	}
}

func countAndSum(t *testing.T, l *Leaf, tableName string) (count, sum float64) {
	t.Helper()
	q := &query.Query{Table: tableName, From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{
			{Op: query.AggCount},
			{Op: query.AggSum, Column: "latency"},
		}}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0, 0
	}
	return rows[0].Values[0], rows[0].Values[1]
}
