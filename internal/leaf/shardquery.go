package leaf

import (
	"time"

	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/shard"
)

// QueryShards runs q against the named shards of its logical table, stored
// leaf-side as physical tables (shard.PhysicalTable), and merges the
// per-shard partials into one result. A shard this leaf has never ingested
// contributes an empty partial — the same semantics as querying an unknown
// table — so a replica that owns a shard but hasn't received data for it
// answers cleanly rather than erroring.
//
// The execution report is the shard-routing analogue of QueryTraced's:
// phase times and work counters sum across shards, Table stays the logical
// name, ShardsServed records the fan-in, and Recovery collapses to "mixed"
// when the shards recovered from different sources.
func (l *Leaf) QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	start := time.Now()
	merged := query.NewResult()
	recovery := ""
	for _, s := range shards {
		sq := *q
		sq.Table = shard.PhysicalTable(q.Table, s)
		res, err := l.Query(&sq)
		if err != nil {
			return nil, nil, err
		}
		merged.Merge(res)
		src := l.tableRecoverySource(sq.Table)
		switch {
		case recovery == "":
			recovery = src
		case recovery != src:
			recovery = "mixed"
		}
	}
	stats := &obs.ExecStats{
		SpanID:        tc.SpanID,
		Table:         q.Table,
		Recovery:      recovery,
		LatencyNanos:  time.Since(start).Nanoseconds(),
		DecodeNanos:   merged.Phases.DecodeNanos,
		PruneNanos:    merged.Phases.PruneNanos,
		ScanNanos:     merged.Phases.ScanNanos,
		MergeNanos:    merged.Phases.MergeNanos,
		RowsScanned:   merged.RowsScanned,
		BlocksScanned: merged.BlocksScanned,
		BlocksPruned:  merged.BlocksPruned,
		BlocksSkipped: merged.BlocksSkipped,
		CacheHits:     merged.CacheHits,
		CacheMisses:   merged.CacheMisses,
		ShardsServed:  len(shards),
	}
	return merged, stats, nil
}
