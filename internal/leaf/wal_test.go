package leaf

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/query"
	"scuba/internal/rowblock"
)

// walEnv extends env with the WAL directory that survives crashes.
type walEnv struct {
	env
	walDir string
}

func newWALEnv(t *testing.T) walEnv {
	t.Helper()
	return walEnv{env: newEnv(t), walDir: t.TempDir()}
}

func (e walEnv) config(id int) Config {
	cfg := e.env.config(id)
	cfg.WALDir = e.walDir
	// Inline fsync in tests: deterministic, and no flusher goroutine to leak
	// from "crashed" (abandoned) leaf objects.
	cfg.WALSyncInterval = 0
	return cfg
}

// groupedResult runs a grouped aggregation and returns its rendered rows —
// the byte-identical-results oracle for crash drills.
func groupedResult(t *testing.T, l *Leaf, tableName string) []query.Row {
	t.Helper()
	q := &query.Query{Table: tableName, From: 0, To: 1 << 40,
		GroupBy: []string{"service"},
		Aggregations: []query.Aggregation{
			{Op: query.AggCount},
			{Op: query.AggSum, Column: "latency"},
			{Op: query.AggMax, Column: "latency"},
		}}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows(q)
}

// TestWALCrashRecovery is the tentpole's keystone: snapshot images + WAL
// tail replay bring back every acked row — sealed, snapshotted, and the
// unsealed tail alike — with query results identical to pre-crash.
func TestWALCrashRecovery(t *testing.T) {
	e := newWALEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 3000, 1000)
	ingest(t, old, "errors", 500, 2000)
	// Seal and snapshot the first wave, truncating the WAL behind it.
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if n, err := old.SnapshotPass(); err != nil || n != 2 {
		t.Fatalf("SnapshotPass = %d, %v", n, err)
	}
	// Second wave stays in the WAL tail (and partly in unsealed builders).
	ingest(t, old, "events", 700, 5000)
	wantEvents := groupedResult(t, old, "events")
	wantErrors := groupedResult(t, old, "errors")

	// Crash: no shutdown, no valid bit. The new process recovers from the
	// WAL, not the disk translate.
	l := startLeaf(t, e.config(0))
	info := l.Recovery()
	if info.Path != RecoveryWAL {
		t.Fatalf("recovery path = %v, want wal (%+v)", info.Path, info)
	}
	if info.SnapshotBlocks != 2 {
		t.Errorf("SnapshotBlocks = %d, want 2", info.SnapshotBlocks)
	}
	if info.WALRowsReplayed != 700 {
		t.Errorf("WALRowsReplayed = %d, want 700", info.WALRowsReplayed)
	}
	if got := countRows(t, l, "events"); got != 3700 {
		t.Fatalf("events count = %v, want 3700", got)
	}
	if got := groupedResult(t, l, "events"); !reflect.DeepEqual(got, wantEvents) {
		t.Errorf("events results differ after crash recovery:\n got %+v\nwant %+v", got, wantEvents)
	}
	if got := groupedResult(t, l, "errors"); !reflect.DeepEqual(got, wantErrors) {
		t.Errorf("errors results differ after crash recovery:\n got %+v\nwant %+v", got, wantErrors)
	}
	if src := l.tableRecoverySource("events"); src != "wal" {
		t.Errorf("recovery source = %q, want wal", src)
	}

	// The recovered leaf keeps ingesting and survives a second crash: the
	// reconciled cursor and rewritten disk backup must both line up.
	ingest(t, l, "events", 300, 9000)
	want2 := groupedResult(t, l, "events")
	l2 := startLeaf(t, e.config(0))
	if p := l2.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("second crash recovery path = %v, want wal", p)
	}
	if got := countRows(t, l2, "events"); got != 4000 {
		t.Fatalf("events count after second crash = %v, want 4000", got)
	}
	if got := groupedResult(t, l2, "events"); !reflect.DeepEqual(got, want2) {
		t.Errorf("results differ after second crash recovery")
	}
}

// TestWALCorruptionFallsBackToDisk: mid-log corruption degrades that table
// to the disk translate instead of failing the leaf.
func TestWALCorruptionFallsBackToDisk(t *testing.T) {
	e := newWALEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 2000, 1000)
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	ingest(t, old, "events", 500, 5000)

	// Flip a byte in the middle of the first WAL segment.
	tdir := filepath.Join(e.walDir, "leaf0", "events")
	entries, err := os.ReadDir(tdir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, ent := range entries {
		if !strings.HasPrefix(ent.Name(), "wal-") {
			continue
		}
		path := filepath.Join(tdir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[30] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no WAL segment found to corrupt")
	}

	l := startLeaf(t, e.config(0))
	info := l.Recovery()
	if info.Path != RecoveryDisk {
		t.Fatalf("recovery path = %v, want disk (%+v)", info.Path, info)
	}
	var tr *TableRecovery
	for i := range info.PerTablePath {
		if info.PerTablePath[i].Table == "events" {
			tr = &info.PerTablePath[i]
		}
	}
	if tr == nil || tr.Reason == "" {
		t.Fatalf("per-table path missing fallback reason: %+v", info.PerTablePath)
	}
	// The synced rows survive; the WAL tail behind the corruption is lost
	// (pre-WAL durability for this one table).
	if got := countRows(t, l, "events"); got != 2000 {
		t.Fatalf("events count = %v, want 2000 synced rows", got)
	}
}

// TestWALResetAfterCleanRestart: a clean shm restart resets the old log
// (it no longer mirrors memory); after the next snapshot pass, crash
// recovery is WAL-backed again with nothing lost.
func TestWALResetAfterCleanRestart(t *testing.T) {
	e := newWALEnv(t)
	first := startLeaf(t, e.config(0))
	ingest(t, first, "events", 1200, 1000)
	if _, err := first.Shutdown(); err != nil {
		t.Fatal(err)
	}

	second := startLeaf(t, e.config(0))
	if p := second.Recovery().Path; p != RecoveryMemory {
		t.Fatalf("clean restart path = %v, want memory", p)
	}
	ingest(t, second, "events", 300, 5000)
	if err := second.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := second.SnapshotPass(); err != nil {
		t.Fatal(err)
	}
	ingest(t, second, "events", 50, 9000)
	want := groupedResult(t, second, "events")

	third := startLeaf(t, e.config(0))
	if p := third.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("crash-after-clean-restart path = %v, want wal", p)
	}
	if got := countRows(t, third, "events"); got != 1550 {
		t.Fatalf("events count = %v, want 1550", got)
	}
	if got := groupedResult(t, third, "events"); !reflect.DeepEqual(got, want) {
		t.Errorf("results differ after crash recovery")
	}
}

// TestWALQuarantineOnRejectedBatch: a batch the table rejects mid-apply
// (type conflict) quarantines the table's log; crash recovery takes the
// disk path for it instead of trusting drifted row indexes.
func TestWALQuarantineOnRejectedBatch(t *testing.T) {
	e := newWALEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 1000, 1000)
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	// Seed the active builder so "latency" is registered as int64 there; a
	// string value then conflicts and the batch dies mid-apply, after its
	// WAL record was already written.
	ingest(t, old, "events", 10, 4000)
	bad := []rowblock.Row{{Time: 5000, Cols: map[string]rowblock.Value{
		"latency": rowblock.StringValue("oops"),
	}}}
	if err := old.AddRows("events", bad); err == nil {
		t.Fatal("conflicting batch unexpectedly accepted")
	}
	if !old.WAL().Quarantined("events") {
		t.Fatal("rejected batch did not quarantine the table's log")
	}

	l := startLeaf(t, e.config(0))
	info := l.Recovery()
	if info.Path != RecoveryDisk {
		t.Fatalf("recovery path = %v, want disk (%+v)", info.Path, info)
	}
	if got := countRows(t, l, "events"); got != 1000 {
		t.Fatalf("events count = %v, want 1000", got)
	}
	// The reset cleared the quarantine: the WAL is trustworthy again.
	if l.WAL().Quarantined("events") {
		t.Fatal("quarantine survived recovery reset")
	}
	ingest(t, l, "events", 40, 9000)
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.SnapshotPass(); err != nil {
		t.Fatal(err)
	}
	l3 := startLeaf(t, e.config(0))
	if p := l3.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("post-reset crash recovery path = %v, want wal", p)
	}
	if got := countRows(t, l3, "events"); got != 1040 {
		t.Fatalf("events count = %v, want 1040", got)
	}
}

// TestWALConcurrentIngestCrashRecovery hammers one table from many
// goroutines under group commit, with snapshot passes racing the ingest —
// the production shape the wire server produces (one goroutine per
// connection). The per-table ingest lock must keep WAL record order equal
// to table apply order, or a snapshot watermark falling between two
// reordered batches makes replay duplicate one and drop the other.
func TestWALConcurrentIngestCrashRecovery(t *testing.T) {
	e := newWALEnv(t)
	cfg := e.config(0)
	cfg.WALSyncInterval = time.Millisecond // group commit, not inline fsync
	old := startLeaf(t, cfg)

	const (
		writers   = 16
		batches   = 150
		batchRows = 4
	)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]rowblock.Row, batchRows)
				for i := range rows {
					// Globally unique latency values: any duplicated or lost
					// batch shifts the sum, not just the count.
					rows[i] = rowblock.Row{
						Time: int64(1000 + g),
						Cols: map[string]rowblock.Value{
							"service": rowblock.StringValue(fmt.Sprintf("svc-%d", g%4)),
							"latency": rowblock.Int64Value(int64(g*1000000 + b*1000 + i)),
						},
					}
				}
				if err := old.AddRows("events", rows); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	// Snapshot passes race the ingest, moving the watermark through the
	// middle of the concurrent batches.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-snapDone:
				return
			default:
			}
			old.SealAll()      //nolint:errcheck
			old.SnapshotPass() //nolint:errcheck
		}
	}()
	wg.Wait()
	snapDone <- struct{}{}
	<-snapDone
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	want := groupedResult(t, old, "events")
	// Stop the abandoned leaf's flusher; its WAL files stay for the crash.
	if err := old.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	l := startLeaf(t, e.config(0))
	if p := l.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("recovery path = %v, want wal (%+v)", p, l.Recovery())
	}
	if got := countRows(t, l, "events"); got != writers*batches*batchRows {
		t.Fatalf("row count = %v, want %d", got, writers*batches*batchRows)
	}
	if got := groupedResult(t, l, "events"); !reflect.DeepEqual(got, want) {
		t.Errorf("results differ after concurrent-ingest crash recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestWALSyncFailureQuarantines: an fsync failure leaves the un-synced
// record bytes mid-segment, so the log can never be trusted again — the
// table must be durably quarantined (batch acked under the degraded
// pre-WAL model), not left with the cursor ahead of the applied rows.
func TestWALSyncFailureQuarantines(t *testing.T) {
	t.Cleanup(fault.Reset)
	e := newWALEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 1000, 1000)
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	if err := fault.ArmSpec("wal.sync=error;count=1"); err != nil {
		t.Fatal(err)
	}
	// The batch is still acked: WAL coverage is waived by the quarantine,
	// exactly like appends to an already-quarantined table.
	ingest(t, l, "events", 10, 5000)
	fault.Reset()
	if !l.WAL().Quarantined("events") {
		t.Fatal("fsync failure did not quarantine the table's log")
	}
	if _, err := os.Stat(filepath.Join(e.walDir, "leaf0", "events", "quarantined")); err != nil {
		t.Fatalf("quarantine marker not persisted: %v", err)
	}
	// Later batches keep flowing under the degraded model.
	ingest(t, l, "events", 10, 6000)

	// Crash: recovery must take the disk path — the WAL stopped mirroring
	// memory at the failed fsync.
	nu := startLeaf(t, e.config(0))
	if p := nu.Recovery().Path; p != RecoveryDisk {
		t.Fatalf("recovery path = %v, want disk (%+v)", p, nu.Recovery())
	}
	if got := countRows(t, nu, "events"); got != 1000 {
		t.Fatalf("row count = %v, want the 1000 synced rows", got)
	}
}

// TestWALRecoveryAfterSnapshotsExpire: when retention has expired every
// snapshot image below the watermark, replay must still seal rows at their
// true global indexes (the watermark carries the base), or the rebuilt
// log and watermark disagree with the table and the NEXT crash loses the
// fast path.
func TestWALRecoveryAfterSnapshotsExpire(t *testing.T) {
	e := newWALEnv(t)
	now := int64(2000)
	cfg := e.config(0)
	cfg.Table.MaxAgeSeconds = 1000
	cfg.Clock = func() int64 { return now }
	l := startLeaf(t, cfg)
	ingest(t, l, "events", 1000, 100) // times 100..1099
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.SnapshotPass(); err != nil {
		t.Fatal(err)
	}
	// Age everything out: heap blocks and snapshot images both expire.
	now = 5000
	if _, err := l.ExpireAll(now); err != nil {
		t.Fatal(err)
	}
	ingest(t, l, "events", 300, 4990)

	l2cfg := e.config(0)
	l2cfg.Table.MaxAgeSeconds = 1000
	l2cfg.Clock = cfg.Clock
	l2 := startLeaf(t, l2cfg)
	if p := l2.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("recovery path = %v, want wal (%+v)", p, l2.Recovery())
	}
	if got := countRows(t, l2, "events"); got != 300 {
		t.Fatalf("row count = %v, want 300", got)
	}
	// The replayed rows must have sealed at their true global indexes: a
	// snapshot pass and a second crash keep the WAL path (a misaligned base
	// would wedge the watermark above the images forever).
	if err := l2.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.SnapshotPass(); err != nil {
		t.Fatal(err)
	}
	l3 := startLeaf(t, l2cfg)
	if p := l3.Recovery().Path; p != RecoveryWAL {
		t.Fatalf("second crash recovery path = %v, want wal (%+v)", p, l3.Recovery())
	}
	if got := countRows(t, l3, "events"); got != 300 {
		t.Fatalf("row count after second crash = %v, want 300", got)
	}
}

// TestWALDisabledLeavesBehaviorUnchanged guards the default: no WALDir, no
// WAL state, crashes recover from disk exactly as before.
func TestWALDisabledLeavesBehaviorUnchanged(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 800, 1000)
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	l := startLeaf(t, e.config(0))
	if p := l.Recovery().Path; p != RecoveryDisk {
		t.Fatalf("recovery path = %v, want disk", p)
	}
	if l.WAL() != nil {
		t.Fatal("WAL open without WALDir")
	}
}
