package leaf

// Parallel copy-out/copy-in for the restart path. The paper's restart time
// is dominated by raw memory copying between heap and shared memory (§4.2),
// and that copy parallelizes across tables: each worker owns one table at a
// time, drains its row blocks into (or out of) that table's own segment,
// and the only cross-worker state — segment registration in the leaf
// metadata — is serialized under a mutex. The valid bit is still written
// exactly once, by the caller, after every worker has succeeded, so the
// commit point of Figure 6 is unchanged. On the copy-out side any worker
// error cancels the rest through a context and a failed shutdown removes
// every segment it created (no orphans). The copy-in side degrades per
// table instead: each table restores or fails on its own, and the caller
// quarantines the failures to disk recovery while installing the rest.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"scuba/internal/obs"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
)

// TableCopyStat is one table's share of a shutdown copy-out or a restore
// copy-in: which worker carried it and how much moved. ShutdownInfo and
// RecoveryInfo report one entry per table, sorted by table name.
type TableCopyStat struct {
	Table    string
	Worker   int
	Blocks   int
	Bytes    int64
	Duration time.Duration
}

// copyWorkers resolves Config.CopyWorkers for a pool over the given number
// of jobs: 0 means runtime.NumCPU(), 1 preserves the serial behavior, and
// the pool never exceeds the job count.
func (l *Leaf) copyWorkers(jobs int) int {
	w := l.cfg.CopyWorkers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// recordCopyWorker publishes one worker's copy volume and busy time as
// gauges (leaf<ID>.<phase>.worker<k>.bytes / .busy_us).
func (l *Leaf) recordCopyWorker(phase string, worker int, bytes int64, busy time.Duration) {
	r := l.cfg.Metrics
	if r == nil {
		return
	}
	prefix := fmt.Sprintf("leaf%d.%s.worker%d.", l.cfg.ID, phase, worker)
	r.Gauge(prefix + "bytes").Set(bytes)
	r.Gauge(prefix + "busy_us").SetDuration(busy)
}

// recordTableCopy publishes one table's copy to the observer: a begin/end (or
// fail) event pair in the flight recorder — so a crash mid-copy pins down the
// table and block it died in — and the table's duration in a per-phase
// histogram (restart.copy_out.table_us / restart.copy_in.table_us) whose
// p50/p95/p99 show the per-table spread behind the whole-leaf span.
func (l *Leaf) recordTableCopy(half string, st TableCopyStat, err error) {
	o := l.cfg.Obs
	phase := obs.PerTablePhase(half, st.Table)
	if err != nil {
		o.Event(obs.EventFail, phase,
			fmt.Sprintf("worker %d, after %d blocks (%d bytes): %v", st.Worker, st.Blocks, st.Bytes, err))
		return
	}
	o.Event(obs.EventEnd, phase,
		fmt.Sprintf("worker %d, %d blocks, %d bytes in %v", st.Worker, st.Blocks, st.Bytes, st.Duration))
	if reg := o.Registry(); reg != nil {
		name := "restart.copy_out.table_us"
		switch half {
		case "copy-in":
			name = "restart.copy_in.table_us"
		case "view":
			name = "restart.view.table_us"
		}
		reg.Histogram(name).ObserveDuration(st.Duration)
	}
}

// copyOutAll fans the tables of a clean shutdown out to the copy worker
// pool — Figure 6's per-table loop, run concurrently. On any failure the
// context cancels the remaining workers, every segment writer created so
// far is aborted (a no-op for the already-finished ones), all of this
// leaf's shared memory is removed so a failed shutdown never leaves
// orphaned segments, and still-unsynced sealed blocks are flushed to disk
// best-effort so the next process's disk recovery misses nothing sealed.
// Returns per-table stats (sorted by name) and the worker count used.
func (l *Leaf) copyOutAll(tables []*table.Table, md *shm.Metadata) ([]TableCopyStat, int, error) {
	workers := l.copyWorkers(len(tables))
	if len(tables) == 0 {
		return nil, workers, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mdMu      sync.Mutex // serializes md.Segments append + metadata write
		statsMu   sync.Mutex
		stats     []TableCopyStat
		writersMu sync.Mutex
		writers   []*shm.TableSegmentWriter
		errMu     sync.Mutex
		firstErr  error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	track := func(w *shm.TableSegmentWriter) {
		writersMu.Lock()
		writers = append(writers, w)
		writersMu.Unlock()
	}
	// One generation stamp for the whole shutdown: segment files are named
	// tbl-<name>.g<gen> so this backup never O_TRUNCs a file an instant-on
	// view from the previous generation may still have mapped (truncating a
	// live mapping would SIGBUS every reader). Restore finds the segments by
	// the full names recorded in the metadata; stale generations are swept as
	// orphans.
	gen := time.Now().UnixNano()
	jobs := make(chan *table.Table)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			busy := time.Now()
			var bytes int64
			for tbl := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain the channel without copying
				}
				l.cfg.Obs.Event(obs.EventBegin, obs.PerTablePhase("copy-out", tbl.Name()),
					fmt.Sprintf("worker %d", worker))
				st, err := l.copyTableOut(ctx, tbl, md, &mdMu, track, gen)
				st.Worker = worker
				l.recordTableCopy("copy-out", st, err)
				if err != nil {
					fail(fmt.Errorf("leaf: shutdown copy of %q: %w", tbl.Name(), err))
					continue
				}
				bytes += st.Bytes
				statsMu.Lock()
				stats = append(stats, st)
				statsMu.Unlock()
			}
			l.recordCopyWorker("shutdown", worker, bytes, time.Since(busy))
		}(w)
	}
	for _, tbl := range tables {
		jobs <- tbl
	}
	close(jobs)
	wg.Wait()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Table < stats[j].Table })
	if firstErr != nil {
		for _, w := range writers {
			w.Abort() //nolint:errcheck // idempotent; finished writers no-op
		}
		l.shm.RemoveAll() //nolint:errcheck // valid bit never set; best effort
		l.flushBestEffort(tables)
		return stats, workers, firstErr
	}
	return stats, workers, nil
}

// copyTableOut runs one table through the Figure 6 backup steps: PREPARE,
// disk sync, COPY_TO_SHM, segment create + registration, block-at-a-time
// copy (releasing heap as it goes), Finish, DONE.
func (l *Leaf) copyTableOut(ctx context.Context, tbl *table.Table, md *shm.Metadata, mdMu *sync.Mutex, track func(*shm.TableSegmentWriter), gen int64) (TableCopyStat, error) {
	st := TableCopyStat{Table: tbl.Name()}
	start := time.Now()
	// PREPARE: reject new requests, kill deletes, wait for in-flight
	// adds/queries, seal pending rows (Figure 5c).
	if err := tbl.Prepare(); err != nil {
		return st, err
	}
	// Finish pending synchronization with the data on disk (§4.1).
	if l.store != nil {
		if _, err := l.store.SyncTable(tbl); err != nil {
			return st, err
		}
	}
	if err := tbl.Transition(table.StateCopyToShm); err != nil {
		return st, err
	}
	segName := shm.SegmentNameForTableGen(tbl.Name(), gen)
	// Figure 6: estimate size of table, create table segment.
	w, err := shm.CreateTableSegment(l.shm, segName, tbl.Name(), tbl.Bytes()+4096)
	if err != nil {
		return st, err
	}
	track(w)
	// Figure 6: add the table segment to the leaf metadata — the one
	// cross-worker mutation, serialized under the metadata mutex.
	mdMu.Lock()
	md.Segments = append(md.Segments, shm.SegmentInfo{Table: tbl.Name(), Segment: segName})
	err = l.shm.WriteMetadata(md)
	mdMu.Unlock()
	if err != nil {
		w.Abort() //nolint:errcheck
		return st, err
	}
	// Copy row blocks, deleting each from the heap as it lands.
	for {
		if err := ctx.Err(); err != nil { // another worker failed
			w.Abort() //nolint:errcheck
			return st, err
		}
		if h := l.copyBlockHook; h != nil {
			if err := h(tbl.Name(), st.Blocks); err != nil {
				w.Abort() //nolint:errcheck
				return st, err
			}
		}
		blocks, err := tbl.DropBlocksForShutdown(1)
		if err != nil {
			w.Abort() //nolint:errcheck
			return st, err
		}
		if len(blocks) == 0 {
			break
		}
		werr := w.WriteBlock(blocks[0], true)
		// An un-promoted shm-resident block just had its bytes copied into
		// the new generation's segment (or failed); either way it leaves the
		// table here, so release its residency reference on the old mapping.
		if src := blocks[0].Source(); src != nil {
			src.Release()
		}
		if werr != nil {
			w.Abort() //nolint:errcheck
			return st, werr
		}
		st.Blocks++
	}
	st.Bytes = w.BytesCopied
	if err := w.Finish(); err != nil {
		return st, err
	}
	if err := tbl.Transition(table.StateDone); err != nil {
		return st, err
	}
	st.Duration = time.Since(start)
	return st, nil
}

// flushBestEffort writes whatever blocks are still unsynced to the disk
// backup after a failed shutdown, ignoring errors: the valid bit was never
// set, so the next start disk-recovers, and every block that reaches disk
// here is a block not lost. Prepare seals the unsealed tail of tables the
// pool never reached (a no-op or error on tables already past PREPARE,
// which is fine — those synced before their copy began).
func (l *Leaf) flushBestEffort(tables []*table.Table) {
	if l.store == nil {
		return
	}
	for _, tbl := range tables {
		tbl.Prepare()          //nolint:errcheck
		l.store.SyncTable(tbl) //nolint:errcheck
	}
}

// copyInAll restores every segment named by the leaf metadata concurrently,
// symmetric to copyOutAll — except that one table's failure no longer
// cancels the rest. Each table restores (or fails) independently; the
// returned slices are index-aligned with segments, with errs[i] non-nil for
// tables the caller must quarantine to disk recovery. Restored tables are
// NOT installed in the leaf here: the caller decides table by table.
func (l *Leaf) copyInAll(segments []shm.SegmentInfo) (restored []*table.Table, stats []TableCopyStat, errs []error, workers int) {
	workers = l.copyWorkers(len(segments))
	if len(segments) == 0 {
		return nil, nil, nil, workers
	}
	restored = make([]*table.Table, len(segments))
	stats = make([]TableCopyStat, len(segments))
	errs = make([]error, len(segments))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			busy := time.Now()
			var bytes int64
			for idx := range jobs {
				si := segments[idx]
				l.cfg.Obs.Event(obs.EventBegin, obs.PerTablePhase("copy-in", si.Table),
					fmt.Sprintf("worker %d", worker))
				tbl, st, err := l.copyTableIn(si)
				st.Worker = worker
				stats[idx] = st // disjoint indices: no mutex needed
				l.recordTableCopy("copy-in", st, err)
				if err != nil {
					errs[idx] = err
					continue
				}
				restored[idx] = tbl
				bytes += st.Bytes
			}
			l.recordCopyWorker("restore", worker, bytes, time.Since(busy))
		}(w)
	}
	for i := range segments {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return restored, stats, errs, workers
}

// copyTableIn restores one table from its segment (Figure 7's per-table
// steps): open (which validates the payload CRC), drain blocks in reverse
// (truncating the segment as pages release), rebuild the block vector in
// original order, delete the segment. On failure the segment is left in
// place; the caller's final RemoveAll sweeps it with everything else.
func (l *Leaf) copyTableIn(si shm.SegmentInfo) (*table.Table, TableCopyStat, error) {
	st := TableCopyStat{Table: si.Table}
	start := time.Now()
	r, err := shm.OpenTableSegment(l.shm, si.Segment)
	if err != nil {
		return nil, st, fmt.Errorf("open segment: %w", err)
	}
	if r.TableName() != si.Table {
		// The name bytes sit outside the payload CRC; a mismatch against
		// the (CRC-guarded) metadata means the header rotted.
		r.Close(false) //nolint:errcheck
		return nil, st, fmt.Errorf("%w: segment names table %q, metadata says %q",
			shm.ErrSegCorrupt, r.TableName(), si.Table)
	}
	tbl := table.NewRecovering(si.Table, l.cfg.Table)
	if err := tbl.Transition(table.StateMemoryRecovery); err != nil {
		r.Close(false) //nolint:errcheck
		return nil, st, err
	}
	blocks := make([]*rowblock.RowBlock, 0, r.NumBlocks())
	for {
		if h := l.restoreBlockHook; h != nil {
			if err := h(si.Table, len(blocks)); err != nil {
				r.Close(false) //nolint:errcheck
				return nil, st, err
			}
		}
		rb, err := r.ReadBlock()
		if err != nil {
			r.Close(false) //nolint:errcheck
			return nil, st, err
		}
		if rb == nil {
			break
		}
		blocks = append(blocks, rb)
	}
	// ReadBlock drains in reverse; restore original order.
	for i := len(blocks) - 1; i >= 0; i-- {
		if err := tbl.RestoreBlock(blocks[i]); err != nil {
			r.Close(false) //nolint:errcheck
			return nil, st, err
		}
		st.Blocks++
		st.Bytes += blocks[i].Header().Size
	}
	// Figure 7: delete the table shared memory segment.
	if err := r.Close(true); err != nil {
		return nil, st, err
	}
	st.Duration = time.Since(start)
	return tbl, st, nil
}
