package leaf

// Crash-path parity (ROADMAP "Crash-path parity: WAL + incremental columnar
// snapshots"). Clean restarts ride shared memory; before this file, a crash
// paid the full row-format disk translate — minutes instead of seconds. Now
// every acked ingest batch is group-committed to a per-table write-ahead
// log first, sealed blocks are periodically written once as columnar RBK2
// snapshot images, and crash recovery becomes: load snapshot images + replay
// the WAL tail, fanned across tables on the same bounded worker pool the shm
// restore uses. Per-table failures (gap, corruption, quarantine) degrade
// that one table to the old disk translate; the rest still recover fast.
//
// Invariant: while a table is unquarantined, its WAL cursor equals its
// cumulative accepted-row count (sealed + unsealed), because AddRows appends
// to the WAL before applying to the table and a rejected batch quarantines
// the table. Record row indexes are therefore exact, which is what lets
// replay slice records that straddle the snapshot watermark.
//
// Known window: after a non-WAL restore (clean shm restart, disk recovery)
// the old log no longer matches memory, so it is reset and the watermark
// starts over at the restored row count with no images below it. Until the
// first snapshot pass images the restored blocks, a crash falls back to the
// disk translate for pre-restore rows — the pre-WAL durability model — and
// the post-restore WAL tail replays only if the disk backup happens to align
// (it is discarded otherwise, since disk expiry renumbers rows). The
// maintenance loop closes this window within one SnapshotInterval.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scuba/internal/obs"
	"scuba/internal/rowblock"
	"scuba/internal/table"
	"scuba/internal/wal"
)

// walTableResult is one table's crash-recovery outcome.
type walTableResult struct {
	stat TableCopyStat
	path TableRecovery
	// info accumulates per-worker so workers never share the caller's
	// RecoveryInfo; merged after the pool drains.
	info RecoveryInfo
}

// recoverCrash restores every table after an unclean exit: WAL tables via
// snapshot images + log replay in parallel, disk-only tables (and WAL
// failures) via the row-format translate. Sets info.Path.
func (l *Leaf) recoverCrash(info *RecoveryInfo) error {
	if l.wal == nil || !l.wal.HasState() {
		if err := l.recoverFromDisk(info); err != nil {
			return err
		}
		if info.Blocks > 0 {
			info.Path = RecoveryDisk
		}
		return nil
	}

	walTables, err := l.wal.Tables()
	if err != nil {
		return err
	}
	var diskTables []string
	if l.store != nil {
		if diskTables, err = l.store.Tables(); err != nil {
			return err
		}
	}
	seen := make(map[string]bool)
	var names []string
	for _, n := range append(walTables, diskTables...) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	hasWAL := make(map[string]bool, len(walTables))
	for _, n := range walTables {
		hasWAL[n] = true
	}

	workers := l.copyWorkers(len(names))
	info.Workers = workers
	results := make([]walTableResult, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = l.recoverTableCrash(names[idx], hasWAL[names[idx]])
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	walCount, diskCount := 0, 0
	for _, r := range results {
		info.Tables += r.info.Tables
		info.Blocks += r.info.Blocks
		info.BytesRestored += r.info.BytesRestored
		info.WALRecords += r.info.WALRecords
		info.WALRowsReplayed += r.info.WALRowsReplayed
		info.SnapshotBlocks += r.info.SnapshotBlocks
		if r.stat.Table != "" {
			info.PerTable = append(info.PerTable, r.stat)
		}
		info.PerTablePath = append(info.PerTablePath, r.path)
		switch r.path.Path {
		case RecoveryWAL:
			walCount++
		case RecoveryDisk:
			diskCount++
		}
	}
	sort.Slice(info.PerTable, func(i, j int) bool { return info.PerTable[i].Table < info.PerTable[j].Table })
	sort.Slice(info.PerTablePath, func(i, j int) bool { return info.PerTablePath[i].Table < info.PerTablePath[j].Table })
	switch {
	case walCount > 0 && diskCount == 0:
		info.Path = RecoveryWAL
	case walCount > 0:
		info.Path = RecoveryMixed
	case diskCount > 0:
		info.Path = RecoveryDisk
	}
	return nil
}

// recoverTableCrash brings one table back: snapshots + replay when the WAL
// covers it, the disk translate otherwise (quarantined log, gap between
// watermark and log tail, corruption — each a per-table degradation, never
// a whole-leaf failure).
func (l *Leaf) recoverTableCrash(name string, hasWAL bool) walTableResult {
	res := walTableResult{path: TableRecovery{Table: name, Path: RecoveryDisk}}
	if hasWAL && !l.wal.Quarantined(name) {
		st, err := l.recoverTableFromWAL(name, &res.info)
		if err == nil {
			res.stat = st
			res.path.Path = RecoveryWAL
			return res
		}
		l.cfg.Obs.Event(obs.EventFail, "restart.wal_fallback",
			fmt.Sprintf("table %q: WAL recovery failed, taking the disk translate: %v", name, err))
		res.path.Reason = err.Error()
		// Discard the half-restored table before the disk translate installs
		// a fresh one.
		l.mu.Lock()
		delete(l.tables, name)
		l.mu.Unlock()
	} else if hasWAL {
		res.path.Reason = "wal quarantined"
	}
	sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
	derr := l.recoverTableFromDisk(name, &res.info)
	sp.End(derr)
	if derr != nil {
		res.path.Path = RecoveryNone
		if res.path.Reason != "" {
			res.path.Reason += "; "
		}
		res.path.Reason += "disk reload failed: " + derr.Error()
		l.cfg.Obs.Event(obs.EventFail, "restart.wal_fallback",
			fmt.Sprintf("table %q lost: disk reload failed: %v", name, derr))
		return res
	}
	res.info.Tables++
	return res
}

// recoverTableFromWAL loads a table's snapshot images, replays the log tail
// through the normal ingest path, and reconciles the log cursor and the
// (now stale) disk backup. The table serves queries with partial results
// while it loads, exactly like the disk path.
func (l *Leaf) recoverTableFromWAL(name string, info *RecoveryInfo) (TableCopyStat, error) {
	st := TableCopyStat{Table: name}
	begin := time.Now()
	tbl := table.NewRecovering(name, l.cfg.Table)
	if err := tbl.Transition(table.StateDiskRecovery); err != nil {
		return st, err
	}
	l.mu.Lock()
	l.tables[name] = tbl
	l.mu.Unlock()
	l.attachCache(name, tbl)

	snapBlocks := 0
	w, err := l.wal.LoadSnapshots(name, func(rb *rowblock.RowBlock, start int64) error {
		if err := tbl.RestoreBlockAt(rb, start); err != nil {
			return err
		}
		snapBlocks++
		st.Blocks++
		st.Bytes += rb.Header().Size
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("snapshots: %w", err)
	}
	// With zero images (retention expired them all) the watermark alone
	// carries the table's row base; align sealedEnd so replayed rows seal at
	// their true global indexes. No-op when images were loaded.
	tbl.AlignSealedEnd(w)
	tbl.MarkSnapshottedThrough(w)
	info.SnapshotBlocks += snapBlocks
	info.Blocks += snapBlocks
	info.BytesRestored += st.Bytes

	recs, rows, pos, err := l.wal.ReplayFrom(name, w, func(batch []rowblock.Row) error {
		return tbl.AddRows(batch, l.cfg.Clock())
	})
	if err != nil {
		return st, fmt.Errorf("replay: %w", err)
	}
	info.WALRecords += recs
	info.WALRowsReplayed += rows
	info.Tables++
	if err := l.wal.SetCursor(name, pos); err != nil {
		return st, err
	}
	// The disk backup predates the crash and may be missing recently sealed
	// blocks; a plain re-sync would append fresh blocks after the stale ones
	// and duplicate rows. Wipe it — the restored blocks are deliberately
	// unsynced, so the next sync pass rewrites a complete backup.
	if l.store != nil {
		if err := l.store.RemoveTable(name); err != nil {
			return st, err
		}
	}
	st.Duration = time.Since(begin)
	return st, nil
}

// reconcileWAL runs at the end of every Start: tables that did NOT recover
// via the WAL (shm restore, disk translate, fresh) no longer match their old
// log, so each such table's log and snapshots are reset with the cursor at
// the restored row count. Only then do new appends flow to the log.
func (l *Leaf) reconcileWAL(info *RecoveryInfo) error {
	walRecovered := make(map[string]bool)
	for _, tr := range info.PerTablePath {
		if tr.Path == RecoveryWAL {
			walRecovered[tr.Table] = true
		}
	}
	walTables, err := l.wal.Tables()
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	names := append(walTables, l.Tables()...)
	for _, name := range names {
		if seen[name] || walRecovered[name] {
			continue
		}
		seen[name] = true
		var next int64
		if tbl := l.Table(name); tbl != nil {
			s := tbl.Stats()
			next = tbl.SealedEnd() + int64(s.Unsealed)
		}
		if err := l.wal.ResetTable(name, next); err != nil {
			return err
		}
	}
	l.walReady.Store(true)
	return nil
}

// SnapshotPass writes every sealed-but-unsnapshotted block as a snapshot
// image, advances the watermark, and truncates WAL segments the snapshots
// now cover. The maintenance loop calls it on SnapshotInterval; benchmarks
// and tests call it directly for deterministic coverage.
func (l *Leaf) SnapshotPass() (int, error) {
	if l.wal == nil {
		return 0, nil
	}
	written := 0
	for _, tbl := range l.tablesSorted() {
		name := tbl.Name()
		if l.wal.Quarantined(name) {
			continue
		}
		blocks, starts := tbl.UnsnappedBlocks()
		for i, rb := range blocks {
			if err := l.wal.WriteSnapshot(name, rb, starts[i]); err != nil {
				return written, err
			}
			tbl.MarkSnapshottedThrough(starts[i] + int64(rb.Rows()))
			written++
		}
		if len(blocks) == 0 {
			continue
		}
		last := len(blocks) - 1
		w := starts[last] + int64(blocks[last].Rows())
		if err := l.wal.SaveWatermark(name, w); err != nil {
			return written, err
		}
		if _, err := l.wal.Truncate(name, w); err != nil {
			return written, err
		}
	}
	return written, nil
}

// WAL returns the leaf's write-ahead log (nil when disabled); tests and the
// bench harness reach through for assertions.
func (l *Leaf) WAL() *wal.Log { return l.wal }
