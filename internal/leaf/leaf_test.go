package leaf

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"scuba/internal/disk"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
)

// env bundles the shared directories that survive "process" restarts.
type env struct {
	shmDir  string
	diskDir string
}

func newEnv(t *testing.T) env {
	t.Helper()
	return env{shmDir: t.TempDir(), diskDir: t.TempDir()}
}

func (e env) config(id int) Config {
	return Config{
		ID:           id,
		Shm:          shm.Options{Dir: e.shmDir, Namespace: "test"},
		DiskRoot:     e.diskDir,
		DiskFormat:   disk.FormatRow,
		MemoryBudget: 1 << 30,
	}
}

func startLeaf(t *testing.T, cfg Config) *Leaf {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	return l
}

func ingest(t *testing.T, l *Leaf, tableName string, n int, start int64) {
	t.Helper()
	rows := make([]rowblock.Row, n)
	for i := range rows {
		rows[i] = rowblock.Row{
			Time: start + int64(i),
			Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%4)),
				"latency": rowblock.Int64Value(int64(i % 100)),
			},
		}
	}
	if err := l.AddRows(tableName, rows); err != nil {
		t.Fatal(err)
	}
}

func countRows(t *testing.T, l *Leaf, tableName string) float64 {
	t.Helper()
	q := &query.Query{Table: tableName, From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Values[0]
}

func TestFreshStart(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	if l.State() != StateAlive {
		t.Fatalf("state = %v", l.State())
	}
	if l.Recovery().Path != RecoveryNone {
		t.Errorf("recovery = %+v", l.Recovery())
	}
	ingest(t, l, "events", 100, 1000)
	if got := countRows(t, l, "events"); got != 100 {
		t.Errorf("count = %v", got)
	}
}

func TestShmRestartCycle(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 1000, 1000)
	ingest(t, old, "errors", 500, 2000)

	info, err := old.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if old.State() != StateExit {
		t.Errorf("state = %v", old.State())
	}
	if info.Tables != 2 || !info.ToShm {
		t.Errorf("shutdown info = %+v", info)
	}
	if info.BytesCopied == 0 {
		t.Error("no bytes copied")
	}

	// "New process": fresh leaf over the same directories.
	nu := startLeaf(t, e.config(0))
	rec := nu.Recovery()
	if rec.Path != RecoveryMemory {
		t.Fatalf("recovery path = %v (%+v)", rec.Path, rec)
	}
	if rec.Tables != 2 {
		t.Errorf("recovered %d tables", rec.Tables)
	}
	if got := countRows(t, nu, "events"); got != 1000 {
		t.Errorf("events count = %v", got)
	}
	if got := countRows(t, nu, "errors"); got != 500 {
		t.Errorf("errors count = %v", got)
	}
	// Segments and metadata are gone (Figure 7 deletes them).
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if _, err := m.ReadMetadata(); !errors.Is(err, shm.ErrNoMetadata) {
		t.Errorf("metadata still present: %v", err)
	}
}

func TestShmRestartPreservesQueryResults(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 2000, 1000)

	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggSum, Column: "latency"}},
		GroupBy:      []string{"service"}}
	before, err := old.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := before.Rows(q)

	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.config(0))
	after, err := nu.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	gotRows := after.Rows(q)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("groups: %d vs %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if strings.Join(gotRows[i].Key, ",") != strings.Join(wantRows[i].Key, ",") {
			t.Errorf("row %d key mismatch", i)
		}
		for j := range wantRows[i].Values {
			if gotRows[i].Values[j] != wantRows[i].Values[j] {
				t.Errorf("row %d value %d: %v vs %v", i, j, gotRows[i].Values[j], wantRows[i].Values[j])
			}
		}
	}
}

func TestCrashRecoversFromDisk(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 800, 1000)
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: no shutdown, process vanishes. The valid bit was
	// never set, so the next start must use the disk backup.
	nu := startLeaf(t, e.config(0))
	rec := nu.Recovery()
	if rec.Path != RecoveryDisk {
		t.Fatalf("recovery path = %v", rec.Path)
	}
	if got := countRows(t, nu, "events"); got != 800 {
		t.Errorf("count = %v", got)
	}
}

func TestCrashLosesUnsyncedTail(t *testing.T) {
	// §4.1: losing a tiny amount of unsynced data on crash is acceptable.
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 500, 1000)
	if err := old.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	ingest(t, old, "events", 50, 5000) // unsealed, unsynced tail

	nu := startLeaf(t, e.config(0))
	if got := countRows(t, nu, "events"); got != 500 {
		t.Errorf("count = %v, want 500 (tail lost)", got)
	}
}

func TestCleanShutdownLosesNothing(t *testing.T) {
	// Clean shutdown seals and flushes in-progress rows before copying.
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 123, 1000) // stays unsealed
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.config(0))
	if got := countRows(t, nu, "events"); got != 123 {
		t.Errorf("count = %v", got)
	}
}

func TestMemoryRecoveryDisabled(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 300, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	cfg := e.config(0)
	cfg.DisableMemoryRecovery = true
	nu := startLeaf(t, cfg)
	rec := nu.Recovery()
	if rec.Path != RecoveryDisk {
		t.Fatalf("recovery path = %v", rec.Path)
	}
	if got := countRows(t, nu, "events"); got != 300 {
		t.Errorf("count = %v", got)
	}
	// Stale shm must have been freed.
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if _, err := m.ReadMetadata(); !errors.Is(err, shm.ErrNoMetadata) {
		t.Error("stale metadata not removed")
	}
}

func TestCorruptSegmentFallsBackToDisk(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 400, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the table segment payload.
	var segFile string
	entries, err := os.ReadDir(e.shmDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range entries {
		if strings.Contains(en.Name(), "tbl-") {
			segFile = filepath.Join(e.shmDir, en.Name())
		}
	}
	if segFile == "" {
		t.Fatal("no segment file found")
	}
	raw, err := os.ReadFile(segFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	nu := startLeaf(t, e.config(0))
	rec := nu.Recovery()
	// The single table is the corrupt one, so the whole recovery is a
	// quarantine: path disk, one quarantined table, no whole-restore
	// fallback (the metadata itself was fine).
	if rec.Path != RecoveryDisk || rec.Quarantined != 1 || rec.FellBack {
		t.Fatalf("recovery = %+v, want disk with 1 quarantined table", rec)
	}
	if len(rec.PerTablePath) != 1 || rec.PerTablePath[0].Path != RecoveryDisk || rec.PerTablePath[0].Reason == "" {
		t.Fatalf("per-table paths = %+v", rec.PerTablePath)
	}
	if got := countRows(t, nu, "events"); got != 400 {
		t.Errorf("count = %v", got)
	}
}

func TestVersionSkewFallsBackToDisk(t *testing.T) {
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 200, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Rewrite metadata with a different layout version, as if the new
	// binary changed the shm layout (§4.2).
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	md, err := m.ReadMetadata()
	if err != nil {
		t.Fatal(err)
	}
	md.Version = shm.LayoutVersion + 1
	if err := m.WriteMetadata(md); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.config(0))
	if nu.Recovery().Path != RecoveryDisk {
		t.Fatalf("recovery = %+v", nu.Recovery())
	}
	if got := countRows(t, nu, "events"); got != 200 {
		t.Errorf("count = %v", got)
	}
}

func TestInterruptedRestoreGoesToDiskNextTime(t *testing.T) {
	// Figure 7: the restore clears the valid bit before copying, so a
	// restore that dies mid-way leaves valid=false and the next start uses
	// disk.
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 100, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Manually clear the valid bit, emulating a restore that started and
	// then crashed.
	m := shm.NewManager(0, shm.Options{Dir: e.shmDir, Namespace: "test"})
	if err := m.Invalidate(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.config(0))
	if nu.Recovery().Path != RecoveryDisk {
		t.Fatalf("recovery = %+v", nu.Recovery())
	}
	if got := countRows(t, nu, "events"); got != 100 {
		t.Errorf("count = %v", got)
	}
}

func TestDoubleRestartCycle(t *testing.T) {
	// Two consecutive shm rollovers, with new data between them.
	e := newEnv(t)
	l1 := startLeaf(t, e.config(0))
	ingest(t, l1, "events", 100, 1000)
	if _, err := l1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	l2 := startLeaf(t, e.config(0))
	if l2.Recovery().Path != RecoveryMemory {
		t.Fatalf("first restart: %v", l2.Recovery().Path)
	}
	ingest(t, l2, "events", 50, 5000)
	if _, err := l2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	l3 := startLeaf(t, e.config(0))
	if l3.Recovery().Path != RecoveryMemory {
		t.Fatalf("second restart: %v", l3.Recovery().Path)
	}
	if got := countRows(t, l3, "events"); got != 150 {
		t.Errorf("count = %v", got)
	}
}

func TestRequestsRejectedAfterShutdown(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 10, 1000)
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := l.AddRows("events", []rowblock.Row{{Time: 1}}); !errors.Is(err, ErrNotAlive) {
		t.Errorf("add err = %v", err)
	}
	q := &query.Query{Table: "events", From: 0, To: 10,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	if _, err := l.Query(q); !errors.Is(err, ErrNotAlive) {
		t.Errorf("query err = %v", err)
	}
	if _, err := l.Shutdown(); err == nil {
		t.Error("double shutdown succeeded")
	}
}

func TestQueryMissingTable(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	q := &query.Query{Table: "ghost", From: 0, To: 10,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 0 {
		t.Error("missing table returned groups")
	}
}

func TestStats(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(3)
	cfg.MemoryBudget = 1 << 20
	l := startLeaf(t, cfg)
	ingest(t, l, "events", 1000, 1000)
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.ID != 3 || st.State != StateAlive || st.Tables != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Rows != 1000 || st.Bytes == 0 {
		t.Errorf("rows/bytes = %d/%d", st.Rows, st.Bytes)
	}
	if st.FreeMemory != cfg.MemoryBudget-st.Bytes {
		t.Errorf("free = %d", st.FreeMemory)
	}
}

func TestExpireAll(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.Table = table.Options{MaxAgeSeconds: 100}
	l := startLeaf(t, cfg)
	ingest(t, l, "events", 100, 1000)
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.SyncToDisk(); err != nil {
		t.Fatal(err)
	}
	dropped, err := l.ExpireAll(5000)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	if got := countRows(t, l, "events"); got != 0 {
		t.Errorf("count = %v", got)
	}
}

func TestDiskOnlyShutdownPath(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 250, 1000)
	info, err := l.ShutdownToDisk()
	if err != nil {
		t.Fatal(err)
	}
	if info.ToShm {
		t.Error("ToShm = true")
	}
	nu := startLeaf(t, e.config(0))
	if nu.Recovery().Path != RecoveryDisk {
		t.Fatalf("recovery = %v", nu.Recovery().Path)
	}
	if got := countRows(t, nu, "events"); got != 250 {
		t.Errorf("count = %v", got)
	}
}

func TestColumnarDiskFormatRecovery(t *testing.T) {
	// E8: the §6 future-work path — columnar disk format.
	e := newEnv(t)
	cfg := e.config(0)
	cfg.DiskFormat = disk.FormatColumnar
	l := startLeaf(t, cfg)
	ingest(t, l, "events", 600, 1000)
	if _, err := l.ShutdownToDisk(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, cfg)
	if nu.Recovery().Path != RecoveryDisk {
		t.Fatalf("recovery = %v", nu.Recovery().Path)
	}
	if got := countRows(t, nu, "events"); got != 600 {
		t.Errorf("count = %v", got)
	}
}

func TestShmOnlyNoDiskConfigured(t *testing.T) {
	// A leaf with no disk root still does shm rollovers; a crash then
	// loses everything (RecoveryNone), which the config explicitly allows.
	shmDir := t.TempDir()
	cfg := Config{ID: 0, Shm: shm.Options{Dir: shmDir, Namespace: "test"}}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	ingest(t, l, "events", 40, 1000)
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nu.Start(); err != nil {
		t.Fatal(err)
	}
	if nu.Recovery().Path != RecoveryMemory {
		t.Fatalf("recovery = %v", nu.Recovery().Path)
	}
	if got := countRows(t, nu, "events"); got != 40 {
		t.Errorf("count = %v", got)
	}
}

func TestGraduallyIncreasingPartialResultsDuringDiskRecovery(t *testing.T) {
	// §4.1: "While the new process starts answering queries as soon as it
	// comes up, it only returns (gradually increasing) partial results to
	// those queries until it completes recovery." Query concurrently with
	// Start and watch the visible row count grow monotonically to the full
	// dataset.
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	// Many blocks so recovery has visible intermediate states.
	for b := 0; b < 30; b++ {
		ingest(t, old, "events", 2000, int64(b*10000))
		if err := old.SealAll(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := old.ShutdownToDisk(); err != nil {
		t.Fatal(err)
	}

	nu, err := New(e.config(0))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan error, 1)
	go func() { started <- nu.Start() }()

	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	var observations []float64
	for {
		select {
		case err := <-started:
			if err != nil {
				t.Fatal(err)
			}
			// Final state: everything visible.
			if got := countRows(t, nu, "events"); got != 60000 {
				t.Fatalf("final count = %v", got)
			}
			prev := -1.0
			sawPartial := false
			for _, o := range observations {
				if o < prev {
					t.Fatalf("visible rows shrank: %v", observations)
				}
				if o > 0 && o < 60000 {
					sawPartial = true
				}
				prev = o
			}
			if !sawPartial {
				t.Skip("recovery too fast to observe partial results on this machine")
			}
			return
		default:
		}
		res, err := nu.Query(q)
		if err != nil {
			continue // INIT or MEMORY_RECOVERY moment: not accepting yet
		}
		rows := res.Rows(q)
		if len(rows) > 0 {
			observations = append(observations, rows[0].Values[0])
		}
	}
}

func TestManyTablesRestartCycle(t *testing.T) {
	// Scuba leaves hold a fraction of *hundreds* of tables (§4.4); the
	// shutdown loop runs per table, one segment each. Exercise the loop
	// with many tables of different schemas.
	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	const tables = 25
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("table-%02d", i)
		rows := make([]rowblock.Row, 40+i)
		for j := range rows {
			rows[j] = rowblock.Row{Time: int64(1000*i + j), Cols: map[string]rowblock.Value{
				fmt.Sprintf("col%d", i%5): rowblock.Int64Value(int64(j)),
			}}
		}
		if err := old.AddRows(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	info, err := old.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if info.Tables != tables {
		t.Fatalf("shutdown covered %d tables", info.Tables)
	}
	nu := startLeaf(t, e.config(0))
	if nu.Recovery().Path != RecoveryMemory || nu.Recovery().Tables != tables {
		t.Fatalf("recovery = %+v", nu.Recovery())
	}
	if got := len(nu.Tables()); got != tables {
		t.Fatalf("tables = %d", got)
	}
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("table-%02d", i)
		if got := countRows(t, nu, name); got != float64(40+i) {
			t.Errorf("%s count = %v, want %d", name, got, 40+i)
		}
	}
}

func TestConcurrentQueriesDuringShutdown(t *testing.T) {
	// Queries racing a shutdown either complete or get ErrNotAlive /
	// ErrNotAccepting — never a wrong answer, never a panic.
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 5000, 1000)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := &query.Query{Table: "events", From: 0, To: 1 << 40,
				Aggregations: []query.Aggregation{{Op: query.AggCount}}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := l.Query(q)
				if err != nil {
					if !errors.Is(err, ErrNotAlive) && !errors.Is(err, table.ErrNotAccepting) {
						t.Errorf("query error: %v", err)
					}
					return
				}
				if rows := res.Rows(q); len(rows) > 0 && rows[0].Values[0] != 5000 {
					t.Errorf("count = %v", rows[0].Values[0])
					return
				}
			}
		}()
	}
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

func TestLeafStateStringsAndTransitions(t *testing.T) {
	for s := StateInit; s <= StateExit; s++ {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
	legal := map[[2]State]bool{
		{StateInit, StateMemoryRecovery}:         true,
		{StateInit, StateDiskRecovery}:           true,
		{StateInit, StateAlive}:                  true,
		{StateMemoryRecovery, StateAlive}:        true,
		{StateMemoryRecovery, StateDiskRecovery}: true,
		{StateDiskRecovery, StateAlive}:          true,
		{StateAlive, StateCopyToShm}:             true,
		{StateCopyToShm, StateExit}:              true,
	}
	all := []State{StateInit, StateMemoryRecovery, StateDiskRecovery, StateAlive, StateCopyToShm, StateExit}
	for _, from := range all {
		for _, to := range all {
			if got := CanTransition(from, to); got != legal[[2]State{from, to}] {
				t.Errorf("CanTransition(%v, %v) = %v", from, to, got)
			}
		}
	}
	var e error = &ErrBadTransition{From: StateExit, To: StateAlive}
	if e.Error() == "" {
		t.Error("empty transition error")
	}
}
