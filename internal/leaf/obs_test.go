package leaf

// Observability of the restart path: phase spans must land as registry
// timers, per-table copies as flight-recorder events, and — the scenario the
// recorder exists for — a crash during copy-out must be diagnosable by the
// next process from the surviving ring.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"scuba/internal/metrics"
	"scuba/internal/obs"
)

func newObserver(t *testing.T, e env, id int) (*obs.Observer, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	rec, err := obs.OpenFlightRecorder(id, obs.RecorderOptions{Dir: e.shmDir, Namespace: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	return obs.New(reg, rec), reg
}

func TestRestartPhaseSpans(t *testing.T) {
	e := newEnv(t)

	cfg := e.config(0)
	ob, oldReg := newObserver(t, e, 0)
	cfg.Obs = ob
	old := startLeaf(t, cfg)
	ingest(t, old, "events", 300, 0)
	ingest(t, old, "errors", 100, 0)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.PhaseCopyOut, obs.PhaseCommit} {
		if st := oldReg.Timer(name).Stats(); st.Count != 1 {
			t.Errorf("timer %s count = %d, want 1", name, st.Count)
		}
	}
	if st := oldReg.Histogram("restart.copy_out.table_us").Stats(); st.Count != 2 {
		t.Errorf("copy-out table histogram count = %d, want 2", st.Count)
	}
	cfg.Obs.Recorder().Close()

	cfg2 := e.config(0)
	var newReg *metrics.Registry
	cfg2.Obs, newReg = newObserver(t, e, 0)
	nu := startLeaf(t, cfg2)
	if rec := nu.Recovery(); rec.Path != RecoveryMemory {
		t.Fatalf("recovery = %+v, want memory", rec)
	}
	for _, name := range []string{obs.PhaseMap, obs.PhaseCopyIn} {
		if st := newReg.Timer(name).Stats(); st.Count != 1 {
			t.Errorf("timer %s count = %d, want 1", name, st.Count)
		}
	}
	if st := newReg.Timer(obs.PhaseDiskRecovery).Stats(); st.Count != 0 {
		t.Errorf("disk recovery ran on the memory path: %+v", st)
	}
	if st := newReg.Histogram("restart.copy_in.table_us").Stats(); st.Count != 2 {
		t.Errorf("copy-in table histogram count = %d, want 2", st.Count)
	}
	// The whole lifecycle shows up in the registry text exposition.
	text := newReg.String()
	for _, want := range []string{"timer restart_map", "timer restart_copy_in", "histogram restart_copy_in_table_us"} {
		if !strings.Contains(text, want) {
			t.Errorf("registry text missing %q:\n%s", want, text)
		}
	}
	// And in the flight recorder: per-table begin/end events inside the span.
	events := cfg2.Obs.Recorder().Events()
	var sawTable bool
	for _, ev := range events {
		if ev.Phase == obs.PerTablePhase("copy-in", "events") && ev.Kind == obs.EventEnd {
			sawTable = true
		}
	}
	if !sawTable {
		t.Errorf("no copy-in:events end event in %+v", events)
	}
}

// TestCrashDuringCopyOutDiagnosis is the acceptance scenario: a copy worker
// faults mid-block during shutdown, the process "dies" (recorder never
// closed), and the next process reads the previous run's last recorded phase
// and the disk-fallback reason from the surviving ring.
func TestCrashDuringCopyOutDiagnosis(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.CopyWorkers = 2
	reg := metrics.NewRegistry()
	rec, err := obs.OpenFlightRecorder(0, obs.RecorderOptions{Dir: e.shmDir, Namespace: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.New(reg, rec)
	l := startLeaf(t, cfg)
	for i := 0; i < 4; i++ {
		ingest(t, l, fmt.Sprintf("t%d", i), 120, int64(1000*i))
	}
	boom := errors.New("injected mid-block fault")
	l.copyBlockHook = func(tbl string, block int) error {
		if tbl == "t2" && block == 0 {
			return boom
		}
		return nil
	}
	if _, err := l.Shutdown(); !errors.Is(err, boom) {
		t.Fatalf("shutdown err = %v, want injected fault", err)
	}
	// Crash: no Close. The ring lives in its own shm segment under the
	// "<ns>-obs" namespace, which the leaf's RemoveAll sweep does not touch.

	rec2, err := obs.OpenFlightRecorder(0, obs.RecorderOptions{Dir: e.shmDir, Namespace: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	prev := rec2.Previous()
	if len(prev) == 0 {
		t.Fatal("no previous-run events survived the failed shutdown")
	}
	sum := obs.Summarize(prev)
	if !sum.Failed {
		t.Fatalf("previous run not marked failed: %+v", sum)
	}
	if want := obs.PerTablePhase("copy-out", "t2"); sum.FailurePhase != want &&
		sum.FailurePhase != obs.PhaseCopyOut {
		t.Errorf("failure phase = %q, want %q (or the whole-leaf span)", sum.FailurePhase, want)
	}
	var tableFail bool
	for _, ev := range prev {
		if ev.Phase == obs.PerTablePhase("copy-out", "t2") && ev.Kind == obs.EventFail &&
			strings.Contains(ev.Detail, "injected mid-block fault") {
			tableFail = true
		}
	}
	if !tableFail {
		t.Errorf("no copy-out:t2 fail event with the fault reason in %+v", prev)
	}

	// The next process disk-recovers and records why.
	cfg2 := e.config(0)
	reg2 := metrics.NewRegistry()
	cfg2.Obs = obs.New(reg2, rec2)
	nu := startLeaf(t, cfg2)
	if rec := nu.Recovery(); rec.Path != RecoveryDisk {
		t.Fatalf("recovery = %+v, want disk", rec)
	}
	if st := reg2.Timer(obs.PhaseDiskRecovery).Stats(); st.Count != 1 {
		t.Errorf("disk recovery timer count = %d, want 1", st.Count)
	}
	var sawReason bool
	for _, ev := range rec2.Events() {
		if ev.Kind == obs.EventNote && ev.Phase == obs.PhaseMap &&
			strings.Contains(ev.Detail, "disk path") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Errorf("no disk-path note in current events %+v", rec2.Events())
	}
}
