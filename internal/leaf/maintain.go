package leaf

import (
	"time"
)

// MaintenanceConfig drives the background loop every deployed leaf runs:
// asynchronous disk sync (§4.1: "during normal operation, disk writes are
// asynchronous") and expiration of aged data (§2: leaves "delete data as it
// expires due to either age or size limits").
type MaintenanceConfig struct {
	// SyncInterval is how often unsynced sealed blocks are flushed to the
	// disk backup (default 5s).
	SyncInterval time.Duration
	// ExpireInterval is how often retention runs (default 1m).
	ExpireInterval time.Duration
	// SnapshotInterval is how often newly sealed blocks are written as
	// incremental snapshot images and the WAL truncated behind them
	// (default 5s). Ignored when the leaf has no WAL.
	SnapshotInterval time.Duration
	// OnError receives background errors (nil = dropped). Shutdown killing
	// an in-flight delete is not an error.
	OnError func(error)
}

// Maintainer owns a leaf's background loop.
type Maintainer struct {
	leaf *Leaf
	cfg  MaintenanceConfig
	stop chan struct{}
	done chan struct{}
}

// StartMaintenance launches the loop. Call Stop before (or after) shutting
// the leaf down; the loop also winds down by itself once the leaf stops
// accepting requests.
func (l *Leaf) StartMaintenance(cfg MaintenanceConfig) *Maintainer {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 5 * time.Second
	}
	if cfg.ExpireInterval <= 0 {
		cfg.ExpireInterval = time.Minute
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 5 * time.Second
	}
	m := &Maintainer{leaf: l, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go m.run()
	return m
}

func (m *Maintainer) run() {
	defer close(m.done)
	syncT := time.NewTicker(m.cfg.SyncInterval)
	expT := time.NewTicker(m.cfg.ExpireInterval)
	snapT := time.NewTicker(m.cfg.SnapshotInterval)
	defer syncT.Stop()
	defer expT.Stop()
	defer snapT.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-syncT.C:
			if m.leaf.State() != StateAlive {
				continue
			}
			if _, err := m.leaf.SyncToDisk(); err != nil {
				m.report(err)
			}
		case <-snapT.C:
			if m.leaf.State() != StateAlive {
				continue
			}
			if _, err := m.leaf.SnapshotPass(); err != nil {
				m.report(err)
			}
		case <-expT.C:
			if m.leaf.State() != StateAlive {
				continue
			}
			if _, err := m.leaf.ExpireAll(m.leaf.cfg.Clock()); err != nil {
				m.report(err)
			}
		}
	}
}

func (m *Maintainer) report(err error) {
	if m.cfg.OnError != nil {
		m.cfg.OnError(err)
	}
}

// Stop halts the loop and waits for it to finish.
func (m *Maintainer) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}
