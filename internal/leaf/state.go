package leaf

import "fmt"

// State is the leaf server state machine from Figure 5(a) and 5(b).
//
// Backup (5a):   ALIVE -> COPY_TO_SHM -> EXIT
// Restore (5b):  INIT -> MEMORY_RECOVERY | DISK_RECOVERY -> ALIVE
//
// INIT goes straight to DISK_RECOVERY when memory recovery is disabled, and
// MEMORY_RECOVERY falls back to DISK_RECOVERY on any exception.
type State uint8

// Leaf states.
const (
	StateInit State = iota
	StateMemoryRecovery
	StateDiskRecovery
	StateAlive
	StateCopyToShm
	StateExit
)

func (s State) String() string {
	switch s {
	case StateInit:
		return "INIT"
	case StateMemoryRecovery:
		return "MEMORY_RECOVERY"
	case StateDiskRecovery:
		return "DISK_RECOVERY"
	case StateAlive:
		return "ALIVE"
	case StateCopyToShm:
		return "COPY_TO_SHM"
	case StateExit:
		return "EXIT"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

var legalTransitions = map[State][]State{
	StateInit:           {StateMemoryRecovery, StateDiskRecovery, StateAlive},
	StateMemoryRecovery: {StateAlive, StateDiskRecovery}, // exception -> disk
	StateDiskRecovery:   {StateAlive},
	StateAlive:          {StateCopyToShm},
	StateCopyToShm:      {StateExit},
	StateExit:           nil,
}

// CanTransition reports whether from -> to is a legal edge of Figure 5(a/b).
func CanTransition(from, to State) bool {
	for _, s := range legalTransitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// ErrBadTransition wraps illegal leaf state transitions.
type ErrBadTransition struct {
	From, To State
}

func (e *ErrBadTransition) Error() string {
	return fmt.Sprintf("leaf: illegal transition %v -> %v", e.From, e.To)
}
