package leaf

import (
	"sync"
	"testing"

	"scuba/internal/metrics"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/table"
)

// TestDecodeCacheRace hammers one table with concurrent queries (which
// populate and read the decoded-column cache through the parallel scan
// pool), concurrent ingestion that seals new blocks, and concurrent
// expiration that fires the evict hook invalidating cache entries. Run
// under -race this pins the cache's synchronization; functionally it checks
// queries never observe decode errors or impossible counts.
func TestDecodeCacheRace(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.Metrics = metrics.NewRegistry()
	cfg.ScanWorkers = 4
	cfg.DecodeCacheBytes = 1 << 20 // small enough to force evictions
	cfg.Table = table.Options{MaxAgeSeconds: 1 << 40}
	l := startLeaf(t, cfg)

	const (
		writers    = 2
		readers    = 4
		iterations = 60
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(1000 + w*1_000_000)
			for i := 0; i < iterations; i++ {
				rows := make([]rowblock.Row, 200)
				for j := range rows {
					rows[j] = rowblock.Row{
						Time: base + int64(i*200+j),
						Cols: map[string]rowblock.Value{
							"service": rowblock.StringValue([]string{"web", "ads", "search"}[j%3]),
							"latency": rowblock.Int64Value(int64(j % 50)),
						},
					}
				}
				if err := l.AddRows("hot", rows); err != nil {
					t.Error(err)
					return
				}
				if err := l.SealAll(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var expireWG sync.WaitGroup
	expireWG.Add(1)
	go func() {
		defer expireWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// now far in the future relative to MaxAge never expires; use a
			// sliding cutoff that expires early blocks as writers advance.
			if _, err := l.ExpireAll(int64(1 << 41)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	queries := []*query.Query{
		{Table: "hot", From: 0, To: 1 << 40, Aggregations: []query.Aggregation{{Op: query.AggCount}}},
		{Table: "hot", From: 0, To: 1 << 40, GroupBy: []string{"service"},
			Aggregations: []query.Aggregation{{Op: query.AggAvg, Column: "latency"}}},
		{Table: "hot", From: 0, To: 1 << 40,
			Filters:      []query.Filter{{Column: "latency", Op: query.OpLt, Int: 10}},
			Aggregations: []query.Aggregation{{Op: query.AggCount}}},
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				q := queries[(r+i)%len(queries)]
				res, err := l.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				if res.RowsScanned < 0 {
					t.Errorf("negative rows scanned")
					return
				}
			}
		}(r)
	}

	// Wait for writers and readers, then stop the expirer.
	wg.Wait()
	close(stop)
	expireWG.Wait()

	// The table still answers correctly after the storm.
	res, err := l.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned == 0 && l.Table("hot").Rows() > 0 {
		t.Errorf("final query scanned nothing over a non-empty table")
	}
}
