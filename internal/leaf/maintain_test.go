package leaf

import (
	"testing"
	"time"

	"scuba/internal/table"
)

func TestMaintainerSyncsAndExpires(t *testing.T) {
	e := newEnv(t)
	cfg := e.config(0)
	cfg.Table = table.Options{MaxAgeSeconds: 100}
	// Virtual clock far in the future so everything ingested at small
	// timestamps is expired immediately.
	cfg.Clock = func() int64 { return 1 << 30 }
	l := startLeaf(t, cfg)
	ingest(t, l, "events", 100, 1000)
	if err := l.SealAll(); err != nil {
		t.Fatal(err)
	}

	m := l.StartMaintenance(MaintenanceConfig{
		SyncInterval:   5 * time.Millisecond,
		ExpireInterval: 5 * time.Millisecond,
	})
	defer m.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Blocks == 0 {
			return // expired by the background loop
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("maintenance never expired the data: %+v", l.Stats())
}

func TestMaintainerSurvivesShutdown(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 50, 1000)
	errs := make(chan error, 16)
	m := l.StartMaintenance(MaintenanceConfig{
		SyncInterval:   time.Millisecond,
		ExpireInterval: time.Millisecond,
		OnError:        func(err error) { errs <- err },
	})
	if _, err := l.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Give the loop a few ticks against the exited leaf, then stop.
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent
	select {
	case err := <-errs:
		t.Errorf("maintenance reported error after shutdown: %v", err)
	default:
	}
}

func TestMaintainerStopIsPrompt(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	m := l.StartMaintenance(MaintenanceConfig{SyncInterval: time.Hour, ExpireInterval: time.Hour})
	done := make(chan struct{})
	go func() {
		m.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked")
	}
}
