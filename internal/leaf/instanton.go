package leaf

// Instant-on restarts (ROADMAP "Instant-on restart"). The paper gates
// post-restart availability on the full copy-in of Figure 7 because a shm
// heap allocator was judged too invasive (§3); but the segment layout is
// one-memcpy-relocatable, so this path maps each table segment read-only,
// decodes every block image in place (zero-copy views), and flips the leaf
// ALIVE the moment metadata + CRC validation pass. The copy the paper
// blocked availability on still happens — as background promotion on a
// bounded worker pool, hottest tables first (per-table decode-cache hits as
// the heat signal), each block swapped for its heap clone without disturbing
// in-flight scans. Failures degrade per table: a view that won't validate
// falls back to the eager copy-in, and that failing too quarantines the
// table to disk recovery, exactly like the barrier path.
//
// Sealed blocks only: a clean shutdown seals every table's unsealed tail
// before copy-out (Figure 5c PREPARE), so by construction a segment never
// carries unsealed rows — the "unsealed tail copies in eagerly" rule is
// vacuously satisfied and new ingest starts fresh builders on the restored
// tables.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"scuba/internal/fault"
	"scuba/internal/obs"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
)

// viewTableResult is one table's instant-on restore outcome.
type viewTableResult struct {
	tbl  *table.Table
	view *shm.MappedView
	st   TableCopyStat
	path RecoveryPath // shm-view, or memory when degraded to eager copy-in
	err  error        // non-nil quarantines the table to disk recovery
}

// viewRestore is the instant-on variant of the post-valid-bit half of
// restoreFromShm: map views instead of copying, install tables that serve
// zero-copy from the mappings, degrade failures, and leave live segments on
// tmpfs until their last reader drains. The metadata is removed (not the
// segments): a crash mid-promotion must revert to WAL/disk recovery, never
// to a half-consumed backup.
func (l *Leaf) viewRestore(md *shm.Metadata, info *RecoveryInfo) error {
	vs := l.cfg.Obs.Start(obs.PhaseView)
	workers := l.copyWorkers(len(md.Segments))
	info.Workers = workers
	results := make([]viewTableResult, len(md.Segments))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range jobs {
				si := md.Segments[idx]
				l.cfg.Obs.Event(obs.EventBegin, obs.PerTablePhase("view", si.Table),
					fmt.Sprintf("worker %d", worker))
				results[idx] = l.viewTableIn(si)
				results[idx].st.Worker = worker
				l.recordTableCopy("view", results[idx].st, results[idx].err)
			}
		}(w)
	}
	for i := range md.Segments {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	vs.End(nil)

	l.mu.Lock()
	for i, si := range md.Segments {
		if results[i].err == nil {
			l.tables[si.Table] = results[i].tbl
		}
	}
	l.mu.Unlock()
	viewed := 0
	var liveSegments []string
	for i, si := range md.Segments {
		r := results[i]
		if r.err != nil {
			continue
		}
		l.attachCache(si.Table, r.tbl)
		info.Tables++
		info.Blocks += r.st.Blocks
		info.BytesRestored += r.st.Bytes
		info.PerTable = append(info.PerTable, r.st)
		info.PerTablePath = append(info.PerTablePath, TableRecovery{Table: si.Table, Path: r.path})
		if r.path == RecoveryShmView {
			viewed++
			info.ServedFromShm += int64(r.st.Blocks)
			liveSegments = append(liveSegments, r.view.SegmentName())
		}
	}
	sort.Slice(info.PerTable, func(i, j int) bool { return info.PerTable[i].Table < info.PerTable[j].Table })
	for i, si := range md.Segments {
		if results[i].err == nil {
			continue
		}
		info.Quarantined++
		l.cfg.Obs.Event(obs.EventFail, "restart.quarantine",
			fmt.Sprintf("table %q quarantined to disk: %v", si.Table, results[i].err))
		tr := TableRecovery{Table: si.Table, Path: RecoveryDisk, Reason: results[i].err.Error()}
		sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
		derr := l.recoverTableFromDisk(si.Table, info)
		sp.End(derr)
		if derr != nil {
			tr.Path = RecoveryNone
			tr.Reason += "; disk reload failed: " + derr.Error()
			l.cfg.Obs.Event(obs.EventFail, "restart.quarantine",
				fmt.Sprintf("table %q lost: disk reload failed: %v", si.Table, derr))
		} else {
			info.Tables++
		}
		info.PerTablePath = append(info.PerTablePath, tr)
	}
	sort.Slice(info.PerTablePath, func(i, j int) bool { return info.PerTablePath[i].Table < info.PerTablePath[j].Table })
	switch {
	case info.Quarantined == len(md.Segments) && len(md.Segments) > 0:
		info.Path = RecoveryDisk
	case info.Quarantined > 0:
		info.Path = RecoveryMixed
	case viewed > 0:
		info.Path = RecoveryShmView
	default:
		info.Path = RecoveryMemory
	}
	// The backup is consumed: drop the metadata so no future start can trust
	// it, and sweep every segment file except the live views' (eager and
	// empty tables already removed theirs; quarantined tables' files and any
	// previous generation's orphans go here). The live views delete their own
	// files when the last reference drains.
	if err := l.shm.RemoveMetadata(); err != nil {
		return err
	}
	l.shm.RemoveOtherSegments(liveSegments) //nolint:errcheck // best-effort sweep
	return nil
}

// viewTableIn opens one segment as a zero-copy view and builds its table.
// On any view failure (map error, CRC, name mismatch) the table degrades to
// the eager copy-in; both failing quarantines it to disk recovery.
func (l *Leaf) viewTableIn(si shm.SegmentInfo) viewTableResult {
	start := time.Now()
	res := viewTableResult{st: TableCopyStat{Table: si.Table}, path: RecoveryShmView}
	v, verr := shm.OpenTableSegmentView(l.shm, si.Segment)
	if verr == nil && v != nil && v.TableName() != si.Table {
		// The name bytes sit outside the payload CRC; a mismatch against the
		// (CRC-guarded) metadata means the header rotted.
		verr = fmt.Errorf("%w: segment names table %q, metadata says %q",
			shm.ErrSegCorrupt, v.TableName(), si.Table)
		v.Discard() //nolint:errcheck
		v = nil
	}
	if verr != nil {
		l.cfg.Obs.Event(obs.EventFail, obs.PerTablePhase("view", si.Table),
			"degrading to eager copy-in: "+verr.Error())
		tbl, st, cerr := l.copyTableIn(si)
		if cerr != nil {
			res.err = fmt.Errorf("view: %v; eager copy-in: %w", verr, cerr)
			return res
		}
		res.tbl, res.st, res.path = tbl, st, RecoveryMemory
		return res
	}
	tbl := table.NewRecovering(si.Table, l.cfg.Table)
	if err := tbl.Transition(table.StateMemoryRecovery); err != nil {
		if v != nil {
			v.Discard() //nolint:errcheck
		}
		res.err = err
		return res
	}
	if v == nil {
		// Zero-block segment: an empty table. Nothing to serve from shm, so
		// the file can go now.
		l.shm.RemoveSegment(si.Segment) //nolint:errcheck
		res.tbl, res.path = tbl, RecoveryMemory
		res.st.Duration = time.Since(start)
		return res
	}
	for _, rb := range v.Blocks() {
		if err := tbl.RestoreBlock(rb); err != nil {
			// Unreachable (the table is in MEMORY_RECOVERY); release every
			// residency reference so the mapping drains, and quarantine.
			rowblock.ReleaseSources(v.Blocks())
			res.err = err
			return res
		}
		res.st.Blocks++
		res.st.Bytes += rb.Header().Size
	}
	res.tbl, res.view = tbl, v
	res.st.Duration = time.Since(start)
	return res
}

// ---- Background promotion ----

// promoter drains shm-resident blocks heap-side after an instant-on
// restore: PromoteWorkers workers each repeatedly claim the hottest table's
// oldest foreign block, clone it to the heap (pinning the view across the
// copy), and swap the clone in under the table lock. Workers exit when no
// promotable block remains; stopPromoter cuts them short for shutdown.
type promoter struct {
	l    *Leaf
	stop chan struct{}
	wg   sync.WaitGroup

	mu sync.Mutex
	// claimed guards against two workers copying one block; failed parks
	// blocks whose promotion failed (injected fault, clone error) so workers
	// do not spin on them — the table just keeps serving those from shm.
	claimed map[*rowblock.RowBlock]bool
	failed  map[*rowblock.RowBlock]bool
}

// promoteWorkerCount resolves Config.PromoteWorkers like CopyWorkers.
func (l *Leaf) promoteWorkerCount() int {
	w := l.cfg.PromoteWorkers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

// startPromoter launches the background promotion pool. Called once per
// Start, after the leaf transitions ALIVE.
func (l *Leaf) startPromoter() {
	p := &promoter{
		l:       l,
		stop:    make(chan struct{}),
		claimed: make(map[*rowblock.RowBlock]bool),
		failed:  make(map[*rowblock.RowBlock]bool),
	}
	l.mu.Lock()
	l.promo = p
	l.mu.Unlock()
	n := l.promoteWorkerCount()
	sp := l.cfg.Obs.Start(obs.PhasePromote)
	promoteBegin := time.Now()
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run()
	}
	go func() {
		p.wg.Wait()
		sp.End(nil)
		if l.cfg.OnRestartPhase != nil {
			l.cfg.OnRestartPhase("promotion", RecoveryShmView, time.Since(promoteBegin))
		}
		l.cfg.Obs.Event(obs.EventNote, obs.PhasePromote,
			fmt.Sprintf("promotion drained: %d blocks heap-side", l.promoted.Load()))
	}()
}

// stopPromoter stops the pool and waits for in-flight promotions to land.
// Shutdown calls it before touching any table so no promotion races the
// copy-out. Safe when no promoter is running.
func (l *Leaf) stopPromoter() {
	l.mu.Lock()
	p := l.promo
	l.promo = nil
	l.mu.Unlock()
	if p != nil {
		close(p.stop)
		p.wg.Wait()
	}
}

func (p *promoter) run() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		tbl, rb := p.next()
		if rb == nil {
			return
		}
		if !p.l.promoteBlock(tbl, rb) {
			p.mu.Lock()
			p.failed[rb] = true
			p.mu.Unlock()
		}
		p.mu.Lock()
		delete(p.claimed, rb)
		p.mu.Unlock()
	}
}

// next claims the next block to promote: tables ranked hottest-first by
// their decode cache's hit count (ties broken by name for determinism),
// oldest block first within a table to match scan order.
func (p *promoter) next() (*table.Table, *rowblock.RowBlock) {
	l := p.l
	type cand struct {
		name string
		tbl  *table.Table
		heat int64
	}
	l.mu.Lock()
	cands := make([]cand, 0, len(l.tables))
	for name, tbl := range l.tables {
		cands = append(cands, cand{name: name, tbl: tbl, heat: l.caches[name].Hits()})
	}
	l.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat != cands[j].heat {
			return cands[i].heat > cands[j].heat
		}
		return cands[i].name < cands[j].name
	})
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cands {
		for _, rb := range c.tbl.Blocks() {
			if rb.Source() == nil || p.claimed[rb] || p.failed[rb] {
				continue
			}
			p.claimed[rb] = true
			return c.tbl, rb
		}
	}
	return nil, nil
}

// promoteBlock moves one shm-resident block heap-side: pin the view (it may
// be draining under concurrent expiry), clone, swap, release the table's
// residency reference. Returns false when the block could not be promoted —
// the table keeps serving it from shm, which is always safe.
func (l *Leaf) promoteBlock(tbl *table.Table, rb *rowblock.RowBlock) bool {
	src := rb.Source()
	if src == nil {
		return true // already heap-owned (promoted by someone else)
	}
	// Pin the mapping across the clone: expiry may pop the block and release
	// its residency reference at any moment, and the clone must never read
	// unmapped memory.
	if !src.Retain() {
		return false
	}
	defer src.Release()
	begin := time.Now()
	if err := fault.Inject(fault.SitePromoteCopy); err != nil {
		l.cfg.Obs.Event(obs.EventFail, obs.PhasePromote,
			fmt.Sprintf("table %q: promotion failed, block stays shm-resident: %v", tbl.Name(), err))
		return false
	}
	clone, err := rb.CloneToHeap()
	if err != nil {
		l.cfg.Obs.Event(obs.EventFail, obs.PhasePromote,
			fmt.Sprintf("table %q: promotion failed, block stays shm-resident: %v", tbl.Name(), err))
		return false
	}
	if !tbl.SwapBlock(rb, clone) {
		// The block left the table (expiry, shutdown) while we copied;
		// whoever removed it released its residency reference. Count the
		// attempt as handled — the block will not be seen again.
		return true
	}
	// The swap took the old block out of circulation; release its residency
	// reference (scans that snapshotted it still hold their own pins).
	rowblock.ReleaseSources([]*rowblock.RowBlock{rb})
	l.promoted.Add(1)
	if reg := l.cfg.Obs.Registry(); reg != nil {
		reg.Counter("restart.promoted_blocks").Add(1)
		reg.Histogram("restart.promote.block_us").ObserveDuration(time.Since(begin))
	}
	return true
}
