// Package leaf implements a Scuba leaf server (§2, §4). A leaf stores a
// fraction of most tables, ingests new rows, answers queries, expires old
// data, and — the contribution of the paper — restarts fast by staging its
// tables through shared memory across planned process restarts:
//
//   - Shutdown (Figure 6): copy every table from heap to shared memory one
//     row block column at a time, freeing heap as it goes, then set the
//     valid bit and exit.
//   - Restart (Figure 7): if the valid bit is set, clear it and copy the
//     data back to the heap, truncating and deleting segments as they
//     drain; otherwise recover from the disk backup.
//
// Crashes never recover from shared memory — the crash may have been caused
// by memory corruption — so the valid bit is only ever set by a completed
// clean shutdown and cleared the moment a restore begins.
package leaf

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scuba/internal/disk"
	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
	"scuba/internal/table"
	"scuba/internal/wal"
)

// Config configures a leaf server.
type Config struct {
	// ID is the leaf's identity on this machine; it fixes the shared
	// memory metadata location (§4.2). Machines run eight leaves, IDs 0-7.
	ID int
	// Shm configures the shared memory manager (directory, namespace).
	Shm shm.Options
	// DiskRoot is the backup directory root; empty disables disk backup
	// (useful in unit tests of the pure shm path).
	DiskRoot string
	// DiskFormat selects the backup encoding (row by default; columnar is
	// the §6 future-work variant).
	DiskFormat disk.Format
	// WALDir enables the per-table write-ahead log + incremental snapshot
	// store rooted there (a leaf<ID> subdirectory is created). Empty
	// disables the WAL: crashes pay the full disk translate, the pre-WAL
	// behavior.
	WALDir string
	// WALSyncInterval is the group-commit cadence: ingest batches block
	// until the next WAL fsync at most this far away. <=0 fsyncs on every
	// append (maximum durability, minimum throughput).
	WALSyncInterval time.Duration
	// Table sets default retention for new tables.
	Table table.Options
	// MemoryBudget is the nominal data capacity in bytes, reported to
	// tailers as free memory for placement decisions (§2).
	MemoryBudget int64
	// DisableMemoryRecovery forces disk recovery on start (Figure 5b's
	// "memory recovery disabled" edge).
	DisableMemoryRecovery bool
	// CopyWorkers bounds the worker pool that copies tables between heap
	// and shared memory on the restart path. The copy is pure memory
	// bandwidth (§4.2) and parallelizes across tables: 0 means
	// runtime.NumCPU(), 1 preserves the serial one-table-at-a-time
	// behavior.
	CopyWorkers int
	// ScanWorkers bounds the per-query worker pool that fans a table's
	// sealed blocks out during execution. 0 means runtime.GOMAXPROCS, 1
	// preserves the serial block-at-a-time scan.
	ScanWorkers int
	// InstantOn turns the shm restore from a barrier into serve-from-shm:
	// segments are mapped read-only, tables serve queries zero-copy from the
	// mappings the moment metadata + CRC validation pass, and blocks move
	// heap-side in the background in query-heat order. Off, the restore is
	// the paper's eager copy-in.
	InstantOn bool
	// PromoteWorkers bounds the background promotion pool that copies
	// shm-resident blocks heap-side after an instant-on restore. 0 resolves
	// like CopyWorkers (runtime.NumCPU()).
	PromoteWorkers int
	// DecodeCacheBytes budgets the per-table LRU of decoded columns that
	// lets repeated queries (dashboards) skip LZ4/dictionary decode. 0
	// disables the cache.
	DecodeCacheBytes int64
	// Metrics, when non-nil, receives per-worker copy gauges from Shutdown
	// and Start (leaf<ID>.shutdown.worker<k>.bytes / .busy_us and the
	// restore equivalents).
	Metrics *metrics.Registry
	// Obs, when non-nil, receives phase spans for the restart lifecycle
	// (restart.copy_out / .commit / .map / .copy_in / .disk_recovery timers
	// in its registry) and per-table begin/end/fail events in its flight
	// recorder. Point its registry at Metrics so /metrics shows both. A nil
	// Obs disables instrumentation at zero cost.
	Obs *obs.Observer
	// OnRestartPhase, when non-nil, observes each completed restart phase:
	// the recovery itself (phase "copy_in" for shm paths, "wal_replay" for
	// crash replay, "disk" for the backup translate) as Start returns, and
	// "promotion" when an instant-on promotion pool drains. The continuous
	// profiler hooks here to capture a tagged profile when a phase blows
	// its budget. Called from the restart path and the promoter's
	// completion goroutine — must not block.
	OnRestartPhase func(phase string, path RecoveryPath, d time.Duration)
	// Clock supplies unix seconds; nil means time.Now. Tests and the
	// cluster simulator inject virtual clocks.
	Clock func() int64
}

// RecoveryPath says how a leaf came up.
type RecoveryPath string

// Recovery paths.
const (
	RecoveryNone   RecoveryPath = "none"   // nothing to recover
	RecoveryMemory RecoveryPath = "memory" // restored from shared memory
	RecoveryDisk   RecoveryPath = "disk"   // restored from disk backup
	// RecoveryMixed means most tables restored from shared memory while the
	// ones whose segments failed validation were quarantined to the disk
	// path — only the damaged tables pay the translate cost.
	RecoveryMixed RecoveryPath = "mixed"
	// RecoveryWAL means the leaf came back from a crash via snapshot images
	// plus write-ahead-log replay — crash-path parity with the fast clean
	// restart, instead of the full disk translate.
	RecoveryWAL RecoveryPath = "wal"
	// RecoveryShmView means an instant-on restore: the leaf went ALIVE
	// serving queries zero-copy from mmap'd shm views after only metadata +
	// CRC validation, with the heap copy still running in the background.
	RecoveryShmView RecoveryPath = "shm-view"
)

// TableRecovery reports how one table came back during a mixed recovery.
type TableRecovery struct {
	Table string
	Path  RecoveryPath
	// Reason, for quarantined tables, says why the shm restore of this
	// table was rejected.
	Reason string `json:",omitempty"`
}

// RecoveryInfo reports what Start did, for dashboards and benchmarks.
type RecoveryInfo struct {
	Path          RecoveryPath
	Tables        int
	Blocks        int
	BytesRestored int64
	Duration      time.Duration
	// FellBack is set when memory recovery was attempted but an exception
	// sent the leaf to disk recovery (Figure 5b).
	FellBack bool
	// Workers is the copy pool size memory recovery ran with (0 when the
	// leaf recovered from disk or had nothing to restore).
	Workers int
	// PerTable breaks the restore down by table, sorted by table name.
	PerTable []TableCopyStat
	// PerTablePath says which path each table took (all "memory" on a clean
	// shm restore; a mix after quarantines), sorted by table name.
	PerTablePath []TableRecovery `json:",omitempty"`
	// Quarantined counts tables whose shm segments failed validation and
	// were re-read from disk instead.
	Quarantined int `json:",omitempty"`
	// WALRecords / WALRowsReplayed / SnapshotBlocks break a WAL recovery
	// down: how many log records and rows replayed, and how many columnar
	// snapshot images loaded ahead of the replay.
	WALRecords      int   `json:",omitempty"`
	WALRowsReplayed int64 `json:",omitempty"`
	SnapshotBlocks  int   `json:",omitempty"`
	// ServedFromShm counts blocks currently served zero-copy from mmap'd shm
	// views (instant-on); it drains toward zero as promotion moves blocks
	// heap-side. Recovery() reports the live value.
	ServedFromShm int64 `json:"served_from_shm"`
	// PromotedBlocks counts view blocks the background promoter has moved
	// heap-side since the last instant-on restore. Live value.
	PromotedBlocks int64 `json:"promoted_blocks"`
}

// ShutdownInfo reports what a clean shutdown did.
type ShutdownInfo struct {
	Tables      int
	Blocks      int
	BytesCopied int64
	Duration    time.Duration
	// ToShm is false when the leaf shut down without shared memory
	// (disk-only path).
	ToShm bool
	// Workers is the copy pool size the shutdown ran with (0 on the
	// disk-only path).
	Workers int
	// PerTable breaks the copy-out down by table, sorted by table name.
	PerTable []TableCopyStat
}

// ErrNotAlive is returned for requests while the leaf is restarting or has
// exited.
var ErrNotAlive = errors.New("leaf: not accepting requests in current state")

// Leaf is one leaf server.
type Leaf struct {
	cfg   Config
	shm   *shm.Manager
	store *disk.Store // nil when disk backup is disabled
	wal   *wal.Log    // nil when the WAL is disabled
	// walReady gates ingest-path WAL appends until Start has reconciled the
	// log cursors with whatever recovery restored; appends before that would
	// land at stale row indexes.
	walReady atomic.Bool

	mu     sync.Mutex
	state  State
	tables map[string]*table.Table
	// ingest holds one lock per table, spanning WAL record reservation and
	// the table apply in AddRows: WAL record order must equal table row
	// order or crash replay splices batches wrongly around the snapshot
	// watermark. The fsync wait happens outside the lock, so group commit
	// still batches concurrent appenders.
	ingest map[string]*sync.Mutex
	// caches holds each table's decoded-column cache (nil entries/absent
	// when Config.DecodeCacheBytes is 0). A table's cache is created when
	// the table is installed and its evict hook invalidates cache entries
	// as blocks expire or leave during shutdown copy-out.
	caches map[string]*query.DecodeCache

	recovery RecoveryInfo

	// promo is the background promotion pool after an instant-on restore
	// (nil otherwise); promoted counts blocks it has moved heap-side.
	promo    *promoter
	promoted atomic.Int64
	// restartBegin anchors the first-query availability-gap timer; the flag
	// arms it so exactly the first successful post-Start query observes it.
	restartBegin   time.Time
	firstQueryOpen atomic.Bool

	// copyBlockHook / restoreBlockHook are test-only fault-injection
	// points, called before each block copy with the table name and block
	// index; a non-nil return fails that worker's table mid-copy. Set them
	// before Shutdown/Start — workers read them without synchronization.
	copyBlockHook    func(table string, block int) error
	restoreBlockHook func(table string, block int) error
}

// New creates a leaf in INIT. Call Start to run recovery and go ALIVE.
func New(cfg Config) (*Leaf, error) {
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().Unix() }
	}
	l := &Leaf{
		cfg:    cfg,
		shm:    shm.NewManager(cfg.ID, cfg.Shm),
		state:  StateInit,
		tables: make(map[string]*table.Table),
		ingest: make(map[string]*sync.Mutex),
		caches: make(map[string]*query.DecodeCache),
	}
	if cfg.DiskRoot != "" {
		store, err := disk.NewStore(cfg.DiskRoot, cfg.ID, cfg.DiskFormat)
		if err != nil {
			return nil, err
		}
		l.store = store
	}
	if cfg.WALDir != "" {
		w, err := wal.Open(filepath.Join(cfg.WALDir, fmt.Sprintf("leaf%d", cfg.ID)), wal.Options{
			SyncInterval: cfg.WALSyncInterval,
			Metrics:      cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		l.wal = w
	}
	return l, nil
}

// ID returns the leaf's identity.
func (l *Leaf) ID() int { return l.cfg.ID }

// State returns the current leaf state.
func (l *Leaf) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Recovery returns what the last Start did. ServedFromShm and
// PromotedBlocks are live: an instant-on restore keeps promoting in the
// background, so dashboards polling /debug/recovery watch the residual shm
// residency drain to zero.
func (l *Leaf) Recovery() RecoveryInfo {
	l.mu.Lock()
	info := l.recovery
	tbls := make([]*table.Table, 0, len(l.tables))
	for _, t := range l.tables {
		tbls = append(tbls, t)
	}
	l.mu.Unlock()
	if info.Path == RecoveryShmView || info.ServedFromShm > 0 {
		var resident int64
		for _, t := range tbls {
			resident += int64(t.ForeignBlocks())
		}
		info.ServedFromShm = resident
		info.PromotedBlocks = l.promoted.Load()
	}
	return info
}

func (l *Leaf) transition(to State) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transitionLocked(to)
}

func (l *Leaf) transitionLocked(to State) error {
	if !CanTransition(l.state, to) {
		return &ErrBadTransition{From: l.state, To: to}
	}
	l.state = to
	return nil
}

// restartPhaseName maps a recovery path to the restart phase it spent its
// time in, for the OnRestartPhase hook.
func restartPhaseName(p RecoveryPath) string {
	switch p {
	case RecoveryMemory, RecoveryMixed, RecoveryShmView:
		return "copy_in"
	case RecoveryWAL:
		return "wal_replay"
	case RecoveryDisk:
		return "disk"
	default:
		return "start"
	}
}

// ---- Restore path (Figure 7) ----

// Start runs recovery and brings the leaf ALIVE. It implements the restore
// state machine of Figure 5(b) and the pseudocode of Figure 7.
func (l *Leaf) Start() error {
	begin := time.Now()
	l.restartBegin = begin
	l.firstQueryOpen.Store(true)
	info := RecoveryInfo{Path: RecoveryNone}

	tryMemory := !l.cfg.DisableMemoryRecovery
	if tryMemory {
		if err := l.transition(StateMemoryRecovery); err != nil {
			return err
		}
		ok, err := l.restoreFromShm(&info)
		if err != nil {
			// Exception during memory recovery: fall back to disk
			// (Figure 5b). Anything half-restored is discarded.
			l.cfg.Obs.Event(obs.EventNote, "restart.disk_fallback",
				"memory recovery failed, falling back to disk: "+err.Error())
			l.dropAllTables()
			l.shm.RemoveAll() //nolint:errcheck // best effort cleanup
			info = RecoveryInfo{Path: RecoveryNone, FellBack: true}
			if terr := l.transition(StateDiskRecovery); terr != nil {
				return terr
			}
			sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
			if derr := l.recoverCrash(&info); derr != nil {
				sp.End(derr)
				return fmt.Errorf("leaf: crash recovery after shm failure (%v): %w", err, derr)
			}
			sp.End(nil)
			if info.Path == RecoveryNone {
				info.Path = RecoveryDisk
			}
		} else if ok {
			// Path was set by restoreFromShm: memory on a clean restore,
			// mixed/disk when tables were quarantined.
		} else {
			// Valid bit unset — a crash, or a consumed backup. Free any
			// shared memory in use, then recover from the WAL (snapshot
			// images + log replay) when it has state, the disk backup
			// otherwise (Figure 7).
			l.shm.RemoveAll() //nolint:errcheck
			if terr := l.transition(StateDiskRecovery); terr != nil {
				return terr
			}
			sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
			if derr := l.recoverCrash(&info); derr != nil {
				sp.End(derr)
				return derr
			}
			sp.End(nil)
		}
	} else {
		if err := l.transition(StateDiskRecovery); err != nil {
			return err
		}
		l.cfg.Obs.Event(obs.EventNote, "restart.disk_fallback", "memory recovery disabled by config")
		l.shm.RemoveAll() //nolint:errcheck
		sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
		if err := l.recoverFromDisk(&info); err != nil {
			sp.End(err)
			return err
		}
		sp.End(nil)
		if info.Blocks > 0 {
			info.Path = RecoveryDisk
		}
	}

	if l.wal != nil {
		if err := l.reconcileWAL(&info); err != nil {
			return err
		}
	}
	info.Duration = time.Since(begin)
	if l.cfg.OnRestartPhase != nil {
		l.cfg.OnRestartPhase(restartPhaseName(info.Path), info.Path, info.Duration)
	}
	l.cfg.Obs.Event(obs.EventNote, "restart.recovered",
		fmt.Sprintf("path=%s tables=%d blocks=%d bytes=%d in %v",
			info.Path, info.Tables, info.Blocks, info.BytesRestored, info.Duration))
	l.mu.Lock()
	l.recovery = info
	for _, t := range l.tables {
		if t.State() != table.StateAlive {
			if err := t.Transition(table.StateAlive); err != nil {
				l.mu.Unlock()
				return err
			}
		}
	}
	err := l.transitionLocked(StateAlive)
	l.mu.Unlock()
	if err == nil && info.ServedFromShm > 0 {
		// Promotion starts only after the leaf is ALIVE: queries are already
		// being answered from the views, and the copy the paper blocked
		// availability on happens here, in the background.
		l.startPromoter()
	}
	return err
}

// restoreFromShm implements the happy path of Figure 7. It returns false
// when the valid bit is unset (caller reverts to disk recovery) and an error
// on metadata-level exceptions (caller falls back to full disk recovery).
// Per-table segment failures do NOT fail the restore: the damaged tables are
// quarantined to the disk path and info.Path reports mixed. On success it
// sets info.Path itself.
func (l *Leaf) restoreFromShm(info *RecoveryInfo) (bool, error) {
	ms := l.cfg.Obs.Start(obs.PhaseMap)
	md, err := l.shm.ReadMetadata()
	if errors.Is(err, shm.ErrNoMetadata) {
		ms.End(nil)
		l.cfg.Obs.Event(obs.EventNote, obs.PhaseMap, "no shm metadata: taking the disk path")
		return false, nil
	}
	if err != nil {
		ms.End(err)
		return false, err
	}
	if !md.Valid {
		ms.End(nil)
		l.cfg.Obs.Event(obs.EventNote, obs.PhaseMap,
			"valid bit unset (crash or consumed backup): taking the disk path")
		return false, nil
	}
	if md.Version != shm.LayoutVersion {
		// The shared memory layout changed between releases; the data is
		// unreadable by this binary. Disk recovery handles it (§4.2).
		ms.End(nil)
		l.cfg.Obs.Event(obs.EventNote, obs.PhaseMap,
			fmt.Sprintf("layout version skew (segment %d, binary %d): taking the disk path",
				md.Version, shm.LayoutVersion))
		return false, nil
	}
	// Set the valid bit to false first: if this code path is interrupted,
	// the next restart goes to disk recovery (Figure 7).
	md.Valid = false
	if err := l.shm.WriteMetadata(md); err != nil {
		ms.End(err)
		return false, err
	}
	ms.End(nil)
	if l.cfg.InstantOn {
		// Instant-on: map the segments read-only and serve zero-copy views
		// instead of blocking availability on the full copy-in; the copy
		// happens in the background after Start returns (startPromoter).
		if err := l.viewRestore(md, info); err != nil {
			return false, err
		}
		return true, nil
	}
	ci := l.cfg.Obs.Start(obs.PhaseCopyIn)
	restored, stats, errs, workers := l.copyInAll(md.Segments)
	info.Workers = workers
	ci.End(nil)
	// Install every table that restored cleanly; a corrupt or unreadable
	// segment quarantines only its own table to the disk path instead of
	// throwing away the whole shm restore.
	l.mu.Lock()
	for i, si := range md.Segments {
		if errs[i] == nil {
			l.tables[si.Table] = restored[i]
		}
	}
	l.mu.Unlock()
	for i, si := range md.Segments {
		if errs[i] == nil {
			l.attachCache(si.Table, restored[i])
		}
	}
	for i, st := range stats {
		if errs[i] != nil {
			continue
		}
		info.Tables++
		info.Blocks += st.Blocks
		info.BytesRestored += st.Bytes
		info.PerTable = append(info.PerTable, st)
		info.PerTablePath = append(info.PerTablePath, TableRecovery{Table: st.Table, Path: RecoveryMemory})
	}
	sort.Slice(info.PerTable, func(i, j int) bool { return info.PerTable[i].Table < info.PerTable[j].Table })
	for i, si := range md.Segments {
		if errs[i] == nil {
			continue
		}
		info.Quarantined++
		l.cfg.Obs.Event(obs.EventFail, "restart.quarantine",
			fmt.Sprintf("table %q quarantined to disk: %v", si.Table, errs[i]))
		tr := TableRecovery{Table: si.Table, Path: RecoveryDisk, Reason: errs[i].Error()}
		sp := l.cfg.Obs.Start(obs.PhaseDiskRecovery)
		derr := l.recoverTableFromDisk(si.Table, info)
		sp.End(derr)
		if derr != nil {
			// Best effort: the table is lost, but the leaf still serves
			// every other table (partial results, §1).
			tr.Path = RecoveryNone
			tr.Reason += "; disk reload failed: " + derr.Error()
			l.cfg.Obs.Event(obs.EventFail, "restart.quarantine",
				fmt.Sprintf("table %q lost: disk reload failed: %v", si.Table, derr))
		} else {
			info.Tables++
		}
		info.PerTablePath = append(info.PerTablePath, tr)
	}
	sort.Slice(info.PerTablePath, func(i, j int) bool { return info.PerTablePath[i].Table < info.PerTablePath[j].Table })
	switch {
	case info.Quarantined == 0:
		info.Path = RecoveryMemory
	case info.Quarantined < len(md.Segments):
		info.Path = RecoveryMixed
	default:
		info.Path = RecoveryDisk
	}
	// Figure 7: delete the metadata shared memory segment (and the segments
	// of quarantined tables along with it).
	if err := l.shm.RemoveAll(); err != nil {
		return false, err
	}
	return true, nil
}

// recoverTableFromDisk reloads a single quarantined table from the disk
// backup. Shutdown synced every sealed block before its shm copy began, so
// the backup is complete for any table that reached a finished segment.
func (l *Leaf) recoverTableFromDisk(name string, info *RecoveryInfo) error {
	if l.store == nil {
		return errors.New("leaf: no disk backup configured")
	}
	tbl := table.NewRecovering(name, l.cfg.Table)
	if err := tbl.Transition(table.StateDiskRecovery); err != nil {
		return err
	}
	l.mu.Lock()
	l.tables[name] = tbl
	l.mu.Unlock()
	l.attachCache(name, tbl)
	err := l.store.LoadTable(name, func(rb *rowblock.RowBlock) error {
		info.Blocks++
		info.BytesRestored += rb.Header().Size
		return tbl.RestoreBlock(rb)
	})
	if err != nil {
		// Drop the placeholder: an absent table answers queries with empty
		// partial results, the same as a leaf that never held it.
		l.mu.Lock()
		delete(l.tables, name)
		l.mu.Unlock()
		return err
	}
	return nil
}

// recoverFromDisk reads every table backup and translates it into memory.
func (l *Leaf) recoverFromDisk(info *RecoveryInfo) error {
	if l.store == nil {
		return nil
	}
	tables, err := l.store.Tables()
	if err != nil {
		return err
	}
	for _, name := range tables {
		tbl := table.NewRecovering(name, l.cfg.Table)
		if err := tbl.Transition(table.StateDiskRecovery); err != nil {
			return err
		}
		// Queries see the table (with gradually increasing partial
		// results) while it loads (§4.1).
		l.mu.Lock()
		l.tables[name] = tbl
		l.mu.Unlock()
		l.attachCache(name, tbl)
		err := l.store.LoadTable(name, func(rb *rowblock.RowBlock) error {
			info.Blocks++
			info.BytesRestored += rb.Header().Size
			return tbl.RestoreBlock(rb)
		})
		if err != nil {
			return fmt.Errorf("leaf: disk recovery of %q: %w", name, err)
		}
		info.Tables++
	}
	return nil
}

// attachCache creates (or reuses) the table's decoded-column cache and wires
// the table's evict hook to it, so blocks leaving the table (expiration,
// shutdown copy-out) drop their cached columns. No-op when the cache is
// disabled. Caller must not hold l.mu.
func (l *Leaf) attachCache(name string, tbl *table.Table) {
	if l.cfg.DecodeCacheBytes <= 0 {
		return
	}
	l.mu.Lock()
	c, ok := l.caches[name]
	if !ok {
		c = query.NewDecodeCache(l.cfg.DecodeCacheBytes, l.queryRegistry())
		l.caches[name] = c
	}
	l.mu.Unlock()
	tbl.SetEvictHook(c.InvalidateBlocks)
}

func (l *Leaf) dropAllTables() {
	l.mu.Lock()
	tables := l.tables
	l.tables = make(map[string]*table.Table)
	l.ingest = make(map[string]*sync.Mutex)
	l.caches = make(map[string]*query.DecodeCache)
	l.mu.Unlock()
	// Tables still holding shm-resident blocks (an instant-on restore that
	// failed partway, or a disk-bound shutdown before promotion drained)
	// release their residency references here so the mappings unmap once the
	// last in-flight scan finishes. The shm-backed Shutdown path drained all
	// blocks through DropBlocksForShutdown already, so this sees none.
	for _, t := range tables {
		rowblock.ReleaseSources(t.Blocks())
	}
}

// ---- Backup path (Figure 6) ----

// Shutdown performs a clean shutdown through shared memory, implementing
// Figure 6: flush to disk, copy every table to its segment (releasing heap
// as it goes) with a pool of Config.CopyWorkers workers, set the valid bit,
// and move the leaf to EXIT. After Shutdown returns the process can exec
// its replacement. On failure no shared memory survives — the next start
// recovers from disk.
func (l *Leaf) Shutdown() (ShutdownInfo, error) {
	begin := time.Now()
	info := ShutdownInfo{ToShm: true}
	// Stop background promotion before touching any table: a promotion
	// mid-copy must not race the copy-out's block drain.
	l.stopPromoter()
	if err := l.transition(StateCopyToShm); err != nil {
		return info, err
	}

	// Figure 6: create the leaf metadata with the valid bit false. It only
	// becomes true after every table is safely in shared memory.
	co := l.cfg.Obs.Start(obs.PhaseCopyOut)
	md := &shm.Metadata{Valid: false, Version: shm.LayoutVersion, Created: l.cfg.Clock()}
	if err := l.shm.WriteMetadata(md); err != nil {
		co.End(err)
		// The next start disk-recovers; make sure sealed-but-unsynced
		// blocks reach the backup and no stale shm survives.
		l.flushBestEffort(l.tablesSorted())
		l.shm.RemoveAll() //nolint:errcheck
		return info, err
	}

	stats, workers, err := l.copyOutAll(l.tablesSorted(), md)
	info.Workers = workers
	info.PerTable = stats
	for _, st := range stats {
		info.Tables++
		info.Blocks += st.Blocks
		info.BytesCopied += st.Bytes
	}
	if err != nil {
		co.End(err)
		return info, err
	}
	co.End(nil)

	// Figure 6: set valid bit to true — the commit point, written exactly
	// once, after every worker has finished.
	cm := l.cfg.Obs.Start(obs.PhaseCommit)
	md.Valid = true
	if err := l.shm.WriteMetadata(md); err != nil {
		cm.End(err)
		// The valid bit never landed, so the segments are unreachable by
		// the next start: free them and flush any disk stragglers (the
		// per-table copies already synced, so this is belt and braces).
		l.flushBestEffort(l.tablesSorted())
		l.shm.RemoveAll() //nolint:errcheck
		return info, err
	}
	cm.End(nil)
	l.dropAllTables()
	l.closeWAL()
	if err := l.transition(StateExit); err != nil {
		return info, err
	}
	info.Duration = time.Since(begin)
	return info, nil
}

// closeWAL flushes and closes the write-ahead log on the clean shutdown
// paths. The log files are intentionally left on disk: if the process
// crashes before (or during) the next restore, the WAL still covers
// everything the shm backup does.
func (l *Leaf) closeWAL() {
	if l.wal != nil {
		l.walReady.Store(false)
		l.wal.Close() //nolint:errcheck // shutdown teardown; appends already acked are synced
	}
}

// ShutdownToDisk performs a clean shutdown without shared memory: flush all
// tables to disk and exit. The next start recovers from disk. This is the
// pre-paper upgrade path and the baseline in every restart experiment.
func (l *Leaf) ShutdownToDisk() (ShutdownInfo, error) {
	begin := time.Now()
	info := ShutdownInfo{ToShm: false}
	l.stopPromoter()
	if err := l.transition(StateCopyToShm); err != nil {
		return info, err
	}
	for _, tbl := range l.tablesSorted() {
		if err := tbl.Prepare(); err != nil {
			return info, err
		}
		if l.store != nil {
			n, err := l.store.SyncTable(tbl)
			if err != nil {
				return info, err
			}
			info.Blocks += n
		}
		if err := tbl.Transition(table.StateCopyToShm); err != nil {
			return info, err
		}
		if err := tbl.Transition(table.StateDone); err != nil {
			return info, err
		}
		info.Tables++
	}
	// No shm data: make sure stale segments from older runs cannot be used.
	if err := l.shm.RemoveAll(); err != nil {
		return info, err
	}
	l.dropAllTables()
	l.closeWAL()
	if err := l.transition(StateExit); err != nil {
		return info, err
	}
	info.Duration = time.Since(begin)
	return info, nil
}

func (l *Leaf) tablesSorted() []*table.Table {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.tables))
	for name := range l.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*table.Table, len(names))
	for i, name := range names {
		out[i] = l.tables[name]
	}
	return out
}

// ---- Normal operation ----

// acceptingAdds mirrors §4.1/§4.3: adds flow while alive and during disk
// recovery; nothing is accepted during the seconds of memory recovery.
func (l *Leaf) acceptingAdds() bool {
	return l.state == StateAlive || l.state == StateDiskRecovery
}

// AddRows ingests a batch into a table, creating the table on first use.
func (l *Leaf) AddRows(tableName string, rows []rowblock.Row) error {
	l.mu.Lock()
	if !l.acceptingAdds() {
		st := l.state
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNotAlive, st)
	}
	tbl, ok := l.tables[tableName]
	if !ok {
		tbl = table.New(tableName, l.cfg.Table)
		l.tables[tableName] = tbl
	}
	useWAL := l.wal != nil && l.walReady.Load()
	var ing *sync.Mutex
	if useWAL {
		if ing = l.ingest[tableName]; ing == nil {
			ing = new(sync.Mutex)
			l.ingest[tableName] = ing
		}
	}
	l.mu.Unlock()
	if !ok {
		l.attachCache(tableName, tbl)
	}
	if !useWAL {
		return tbl.AddRows(rows, l.cfg.Clock())
	}
	// Log before apply, under the table's ingest lock: the lock makes WAL
	// record order equal table apply order (concurrent batches to one table
	// otherwise interleave the two differently, and crash replay would
	// splice them wrongly around the snapshot watermark). The durability
	// wait happens after the lock drops, so concurrent appenders still
	// share group-commit fsyncs.
	ing.Lock()
	commit, err := l.wal.Begin(tableName, rows)
	if err != nil {
		ing.Unlock()
		return err
	}
	err = tbl.AddRows(rows, l.cfg.Clock())
	ing.Unlock()
	if err != nil {
		// The table rejected the batch mid-apply: the log's row indexes no
		// longer mirror the table. Quarantine it, degrading that one table's
		// crash recovery to the disk translate until the next restart resets
		// its log. If even the quarantine marker cannot be persisted, the
		// WAL keeps nacking the table — surface that too.
		if qerr := l.wal.Quarantine(tableName); qerr != nil {
			return errors.Join(err, qerr)
		}
		return err
	}
	if commit == nil {
		// Quarantined log: the batch is applied but not WAL-covered; acked
		// under the degraded pre-WAL durability model (disk write-behind).
		return nil
	}
	return commit.Wait()
}

// Query executes a query against this leaf's fraction of the table. A leaf
// without the table returns an empty (not error) result, matching partial
// result semantics.
func (l *Leaf) Query(q *query.Query) (*query.Result, error) {
	if fault.Enabled() {
		if err := fault.Inject(fault.SiteLeafQuery); err != nil {
			return nil, err
		}
		if err := fault.Inject(fault.PerLeaf(fault.SiteLeafQuery, l.cfg.ID)); err != nil {
			return nil, err
		}
	}
	l.mu.Lock()
	if !l.acceptingAdds() { // queries gate the same way as adds at leaf level
		st := l.state
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrNotAlive, st)
	}
	tbl, ok := l.tables[q.Table]
	dc := l.caches[q.Table]
	l.mu.Unlock()
	if !ok {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		l.observeFirstQuery()
		return query.NewResult(), nil
	}
	opts := query.ExecOptions{Workers: l.cfg.ScanWorkers, Cache: dc}
	res, err := query.ExecuteTableObservedOpts(tbl, q, l.queryRegistry(), opts)
	if err == nil {
		l.observeFirstQuery()
	}
	return res, err
}

// observeFirstQuery records restart.first_query_gap exactly once per Start:
// the time from the restart's first instruction to the first successfully
// answered query. This is the availability gap the paper's restarts pay in
// full copy-in time and the instant-on path collapses to the view-open cost.
func (l *Leaf) observeFirstQuery() {
	if !l.firstQueryOpen.CompareAndSwap(true, false) {
		return
	}
	gap := time.Since(l.restartBegin)
	if reg := l.queryRegistry(); reg != nil {
		reg.Timer(obs.TimerFirstQueryGap).Observe(gap)
	}
	l.cfg.Obs.Event(obs.EventNote, obs.TimerFirstQueryGap, gap.String())
}

// RecoveryQuarantined is the recovery source QueryTraced reports for a
// table whose shm segment failed validation and was re-read from disk.
const RecoveryQuarantined = "quarantined"

// QueryTraced executes a query and additionally builds the structured
// execution report (per-phase timings, work accounting, recovery source)
// that the wire protocol ships back for the trace's leaf span. The span ID
// in tc is echoed so the aggregator can slot the report into its trace.
func (l *Leaf) QueryTraced(q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	start := time.Now()
	res, err := l.Query(q)
	if err != nil {
		return nil, nil, err
	}
	stats := &obs.ExecStats{
		SpanID:        tc.SpanID,
		Table:         q.Table,
		Recovery:      l.tableRecoverySource(q.Table),
		LatencyNanos:  time.Since(start).Nanoseconds(),
		DecodeNanos:   res.Phases.DecodeNanos,
		PruneNanos:    res.Phases.PruneNanos,
		ScanNanos:     res.Phases.ScanNanos,
		MergeNanos:    res.Phases.MergeNanos,
		RowsScanned:   res.RowsScanned,
		BlocksScanned: res.BlocksScanned,
		BlocksPruned:  res.BlocksPruned,
		BlocksSkipped: res.BlocksSkipped,
		CacheHits:     res.CacheHits,
		CacheMisses:   res.CacheMisses,
	}
	return res, stats, nil
}

// tableRecoverySource reports where a table's data came from on the last
// Start: the per-table path when a mixed recovery recorded one (with
// quarantined tables called out), else the leaf-wide path.
func (l *Leaf) tableRecoverySource(tableName string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, tr := range l.recovery.PerTablePath {
		if tr.Table != tableName {
			continue
		}
		if tr.Reason != "" {
			return RecoveryQuarantined
		}
		return string(tr.Path)
	}
	return string(l.recovery.Path)
}

// queryRegistry picks the registry query latencies land in: Config.Metrics
// when set, else the observer's (nil disables query metrics).
func (l *Leaf) queryRegistry() *metrics.Registry {
	if l.cfg.Metrics != nil {
		return l.cfg.Metrics
	}
	return l.cfg.Obs.Registry()
}

// SealAll force-seals in-progress builders on all tables (benchmarks use it
// to make data sizes deterministic).
func (l *Leaf) SealAll() error {
	for _, tbl := range l.tablesSorted() {
		if err := tbl.SealActive(); err != nil {
			return err
		}
	}
	return nil
}

// SyncToDisk writes unsynced blocks of all tables to the disk backup
// (asynchronous write-behind during normal operation, §4.1).
func (l *Leaf) SyncToDisk() (int, error) {
	if l.store == nil {
		return 0, nil
	}
	total := 0
	for _, tbl := range l.tablesSorted() {
		n, err := l.store.SyncTable(tbl)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ExpireAll applies retention to every table and the disk backup. Deletes
// killed by a concurrent shutdown are not errors (§ Figure 5c).
func (l *Leaf) ExpireAll(now int64) (int, error) {
	dropped := 0
	for _, tbl := range l.tablesSorted() {
		n, err := tbl.Expire(now)
		dropped += n
		if err != nil {
			if errors.Is(err, table.ErrDeletesKilled) || errors.Is(err, table.ErrNotAccepting) {
				return dropped, nil
			}
			return dropped, err
		}
		if l.store != nil && l.cfg.Table.MaxAgeSeconds > 0 {
			if _, err := l.store.ExpireTable(tbl.Name(), now-l.cfg.Table.MaxAgeSeconds); err != nil {
				return dropped, err
			}
		}
		if l.wal != nil && l.cfg.Table.MaxAgeSeconds > 0 {
			if _, err := l.wal.ExpireSnapshots(tbl.Name(), now-l.cfg.Table.MaxAgeSeconds); err != nil {
				return dropped, err
			}
		}
	}
	return dropped, nil
}

// Stats summarizes the leaf for tailers (placement) and dashboards.
type Stats struct {
	ID         int
	State      State
	Tables     int
	Blocks     int
	Rows       int64
	Bytes      int64
	FreeMemory int64
}

// Stats returns a snapshot. FreeMemory is the placement signal tailers ask
// two random leaves for (§2).
func (l *Leaf) Stats() Stats {
	l.mu.Lock()
	state := l.state
	tbls := make([]*table.Table, 0, len(l.tables))
	for _, t := range l.tables {
		tbls = append(tbls, t)
	}
	l.mu.Unlock()
	st := Stats{ID: l.cfg.ID, State: state, Tables: len(tbls)}
	for _, t := range tbls {
		ts := t.Stats()
		st.Blocks += ts.NumBlocks
		st.Rows += ts.Rows + int64(ts.Unsealed)
		// Unsealed rows count at their raw size: they occupy heap now and
		// will shrink when the block seals and compresses.
		st.Bytes += ts.Bytes + ts.UnsealedBytes
	}
	if l.cfg.MemoryBudget > 0 {
		st.FreeMemory = l.cfg.MemoryBudget - st.Bytes
		if st.FreeMemory < 0 {
			st.FreeMemory = 0
		}
	}
	return st
}

// Tables lists table names currently held by the leaf.
func (l *Leaf) Tables() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.tables))
	for name := range l.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Table returns a table by name (nil when absent); the cluster and tests
// reach through for assertions.
func (l *Leaf) Table(name string) *table.Table {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tables[name]
}
