package leaf

import (
	"testing"

	"scuba/internal/obs"
	"scuba/internal/query"
)

// TestQueryTracedReportsExecStats checks the leaf's per-query execution
// report: span echo, recovery source, phase timings and work counters all
// filled from one traced query.
func TestQueryTracedReportsExecStats(t *testing.T) {
	e := newEnv(t)
	l := startLeaf(t, e.config(0))
	ingest(t, l, "events", 300, 1000)

	tc := obs.TraceContext{TraceID: 11, SpanID: 22}
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
	res, exec, err := l.QueryTraced(q, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 300 {
		t.Fatalf("rows = %d, want 300", res.RowsScanned)
	}
	if exec.SpanID != 22 || exec.Table != "events" {
		t.Fatalf("exec identity wrong: %+v", exec)
	}
	if exec.Recovery != string(RecoveryNone) {
		t.Fatalf("fresh leaf recovery = %q, want %q", exec.Recovery, RecoveryNone)
	}
	if exec.LatencyNanos <= 0 || exec.ScanNanos <= 0 {
		t.Fatalf("timings missing: %+v", exec)
	}
	if exec.RowsScanned != 300 {
		t.Fatalf("exec rows = %d, want 300", exec.RowsScanned)
	}
}

// TestQueryTracedRecoverySources checks the recovery source across a
// restart: memory after a shm shutdown cycle, disk after a disk-only one.
func TestQueryTracedRecoverySources(t *testing.T) {
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}

	e := newEnv(t)
	old := startLeaf(t, e.config(0))
	ingest(t, old, "events", 100, 1000)
	if _, err := old.Shutdown(); err != nil {
		t.Fatal(err)
	}
	nu := startLeaf(t, e.config(0))
	_, exec, err := nu.QueryTraced(q, obs.TraceContext{TraceID: 1, SpanID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Recovery != string(RecoveryMemory) {
		t.Fatalf("after shm cycle recovery = %q, want %q", exec.Recovery, RecoveryMemory)
	}

	e2 := newEnv(t)
	old2 := startLeaf(t, e2.config(1))
	ingest(t, old2, "events", 100, 1000)
	if _, err := old2.ShutdownToDisk(); err != nil {
		t.Fatal(err)
	}
	nu2 := startLeaf(t, e2.config(1))
	_, exec2, err := nu2.QueryTraced(q, obs.TraceContext{TraceID: 3, SpanID: 4})
	if err != nil {
		t.Fatal(err)
	}
	if exec2.Recovery != string(RecoveryDisk) {
		t.Fatalf("after disk cycle recovery = %q, want %q", exec2.Recovery, RecoveryDisk)
	}

	// A table the per-table list knows nothing about falls back to the
	// leaf-wide path; a quarantine reason maps to "quarantined".
	nu2.mu.Lock()
	nu2.recovery.PerTablePath = append(nu2.recovery.PerTablePath,
		TableRecovery{Table: "damaged", Path: RecoveryDisk, Reason: "segment crc mismatch"})
	nu2.mu.Unlock()
	if got := nu2.tableRecoverySource("damaged"); got != RecoveryQuarantined {
		t.Fatalf("quarantined table source = %q, want %q", got, RecoveryQuarantined)
	}
	if got := nu2.tableRecoverySource("never-seen"); got != string(RecoveryDisk) {
		t.Fatalf("unknown table source = %q, want leaf-wide %q", got, RecoveryDisk)
	}
}
