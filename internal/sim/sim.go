// Package sim is a discrete-event model of a production-scale Scuba cluster
// (hundreds of machines, ~120 GB per machine). The real implementation in
// this repository runs at laptop scale; the simulator extrapolates the
// paper's hour-scale claims (§1, §4.5, §6) from per-machine throughput
// parameters, which can be calibrated from measurements of the real code.
//
// The model:
//
//   - Every machine runs LeavesPerMachine leaf servers holding DataPerLeafGB
//     each (§2: 8 leaves, 10-15 GB per leaf, 120 GB per machine).
//   - Recovery bandwidth is a per-machine resource: leaves restarting
//     concurrently on one machine share it, which is exactly why rollovers
//     restart one leaf per machine at a time (§2, §6). Memory bandwidth is
//     the critical resource for shm recovery, disk+CPU for disk recovery.
//   - A rollover proceeds in batches of BatchFraction of all leaves, at most
//     MaxPerMachine per machine; the next batch starts when the previous
//     batch's leaves finish recovery, plus a detection/initiation overhead
//     (§4.5). Deployment software adds a fixed overhead (§6: ~40 minutes).
//
// Time is virtual: a simulated 12-hour rollover takes microseconds to
// compute, which is what makes the weekly-availability experiment (E5)
// tractable.
package sim

import (
	"fmt"
	"math"
	"time"
)

// GB is one gigabyte in bytes.
const GB = float64(1 << 30)

// Params describe the simulated cluster and its calibrated rates.
type Params struct {
	Machines         int
	LeavesPerMachine int
	// DataPerLeafGB is each leaf's resident data (10-15 GB in the paper).
	DataPerLeafGB float64

	// DiskReadMachineMBps is the raw sequential read rate of one machine's
	// disk. The paper: reading 120 GB takes 20-25 minutes (~85-100 MB/s).
	DiskReadMachineMBps float64
	// DiskRecoverLeafMBps is the rate of one leaf reading AND translating
	// the disk format when it restarts alone on its machine (the rollover
	// case: ~20 MB/s, dominated by single-process translation CPU).
	DiskRecoverLeafMBps float64
	// DiskContention models how concurrent recoveries on one machine
	// degrade each other (disk seek thrash plus CPU sharing): a leaf
	// sharing its machine with k-1 other recovering leaves runs at
	// DiskRecoverLeafMBps / (1 + DiskContention*(k-1)). The paper's
	// all-eight-at-once number (120 GB in 2.5-3 h, ~12 MB/s aggregate)
	// calibrates this to ~1.7 — aggregate throughput with eight readers is
	// *lower* than one reader, which is why rollovers restart one leaf per
	// machine (§2).
	DiskContention float64
	// ShmLeafMBps is one leaf's restore rate from shared memory when alone
	// (a large memcpy approaches the machine's memory bandwidth).
	ShmLeafMBps float64
	// ShmContention is 1.0: memory bandwidth is shared evenly, so the
	// machine-level restore time is constant no matter how many of its
	// leaves restart at once ("memory bandwidth for a machine is constant,
	// no matter how many servers try to roll over", §3).
	ShmContention float64
	// ShmShutdownSeconds is the copy-to-shm-and-exit time (3-4 s, §4.3).
	ShmShutdownSeconds float64
	// DiskShutdownSeconds covers the disk-path clean shutdown (final sync).
	DiskShutdownSeconds float64
	// DetectSeconds is the per-batch overhead of detecting recovery
	// completion and initiating the next batch (§4.5).
	DetectSeconds float64
	// DeploymentOverheadMinutes is the fixed deployment-software overhead
	// (§6: about 40 minutes).
	DeploymentOverheadMinutes float64

	BatchFraction float64
	MaxPerMachine int
}

// DefaultParams returns a calibration matching the paper's cluster: 100
// machines x 8 leaves x 15 GB.
func DefaultParams() Params {
	return Params{
		Machines:                  100,
		LeavesPerMachine:          8,
		DataPerLeafGB:             15,
		DiskReadMachineMBps:       90, // 120 GB in ~22 min
		DiskRecoverLeafMBps:       20, // one leaf alone: 15 GB in ~13 min
		DiskContention:            1.7,
		ShmLeafMBps:               800, // memcpy-speed restore
		ShmContention:             1.0,
		ShmShutdownSeconds:        3.5,
		DiskShutdownSeconds:       10,
		DetectSeconds:             10,
		DeploymentOverheadMinutes: 40,
		BatchFraction:             0.02,
		MaxPerMachine:             1,
	}
}

// Calibrate rescales the single-leaf recovery rates from measured
// laptop-scale numbers (bytes restored and wall time for each path),
// preserving the shape of the real implementation's performance in the
// extrapolation.
func (p Params) Calibrate(dataBytes int64, diskRecovery, shmRecovery time.Duration) Params {
	if dataBytes > 0 && diskRecovery > 0 {
		p.DiskRecoverLeafMBps = float64(dataBytes) / (1 << 20) / diskRecovery.Seconds()
	}
	if dataBytes > 0 && shmRecovery > 0 {
		p.ShmLeafMBps = float64(dataBytes) / (1 << 20) / shmRecovery.Seconds()
	}
	return p
}

// LeafRestartTime returns how long one leaf takes to restart when
// `concurrentOnMachine` leaves of its machine restart at once — they share
// the machine's recovery bandwidth (E6).
func (p Params) LeafRestartTime(useShm bool, concurrentOnMachine int) time.Duration {
	if concurrentOnMachine < 1 {
		concurrentOnMachine = 1
	}
	k := float64(concurrentOnMachine)
	dataMB := p.DataPerLeafGB * GB / (1 << 20)
	var rate, shutdown float64
	if useShm {
		rate = p.ShmLeafMBps / (1 + p.ShmContention*(k-1))
		shutdown = p.ShmShutdownSeconds
	} else {
		rate = p.DiskRecoverLeafMBps / (1 + p.DiskContention*(k-1))
		shutdown = p.DiskShutdownSeconds
	}
	secs := shutdown + dataMB/rate
	return time.Duration(secs * float64(time.Second))
}

// MachineRestartTime returns how long a whole machine takes when all of its
// leaves restart at once (the paper's 2-3 minutes shm vs 2.5-3 hours disk).
func (p Params) MachineRestartTime(useShm bool) time.Duration {
	return p.LeafRestartTime(useShm, p.LeavesPerMachine)
}

// DiskReadTime returns the raw read time for one machine's data, without
// translation (the paper's 20-25 minutes) — the E1 split of read vs
// translate cost.
func (p Params) DiskReadTime() time.Duration {
	dataMB := p.DataPerLeafGB * float64(p.LeavesPerMachine) * GB / (1 << 20)
	return time.Duration(dataMB / p.DiskReadMachineMBps * float64(time.Second))
}

// TimelinePoint samples the rollover dashboard (Figure 8).
type TimelinePoint struct {
	Elapsed     time.Duration
	OldVersion  int
	RollingOver int
	NewVersion  int
	Available   float64
}

// Report summarizes one simulated rollover.
type Report struct {
	UseShm   bool
	Total    time.Duration
	Batches  int
	PerBatch time.Duration
	Timeline []TimelinePoint
	// MeanAvailability integrates data availability over the rollover.
	MeanAvailability float64
	// MinAvailability is the floor (≈ 1 - BatchFraction).
	MinAvailability float64
}

// SimulateRollover runs the full-cluster upgrade and returns its report.
func (p Params) SimulateRollover(useShm bool) *Report {
	total := p.Machines * p.LeavesPerMachine
	if p.BatchFraction <= 0 {
		p.BatchFraction = 0.02
	}
	if p.MaxPerMachine <= 0 {
		p.MaxPerMachine = 1
	}
	batchSize := int(math.Ceil(p.BatchFraction * float64(total)))
	if batchSize < 1 {
		batchSize = 1
	}
	// The orchestrator defers leaves beyond MaxPerMachine per machine to
	// later batches (like cluster.pickBatch), so the in-flight batch is
	// clamped; any remaining co-location shares machine bandwidth.
	if p.MaxPerMachine > 0 && batchSize > p.Machines*p.MaxPerMachine {
		batchSize = p.Machines * p.MaxPerMachine
	}
	perMachine := int(math.Ceil(float64(batchSize) / float64(p.Machines)))
	if perMachine < 1 {
		perMachine = 1
	}
	leafTime := p.LeafRestartTime(useShm, perMachine)
	batchTime := leafTime + time.Duration(p.DetectSeconds*float64(time.Second))

	rep := &Report{UseShm: useShm, PerBatch: batchTime, MinAvailability: 1}
	elapsed := time.Duration(p.DeploymentOverheadMinutes * float64(time.Minute))
	restarted := 0
	for restarted < total {
		n := batchSize
		if restarted+n > total {
			n = total - restarted
		}
		avail := 1 - float64(n)/float64(total)
		if avail < rep.MinAvailability {
			rep.MinAvailability = avail
		}
		rep.Timeline = append(rep.Timeline, TimelinePoint{
			Elapsed:     elapsed,
			OldVersion:  total - restarted - n,
			RollingOver: n,
			NewVersion:  restarted,
			Available:   avail,
		})
		elapsed += batchTime
		restarted += n
		rep.Batches++
	}
	rep.Timeline = append(rep.Timeline, TimelinePoint{
		Elapsed: elapsed, NewVersion: total, Available: 1,
	})
	rep.Total = elapsed

	// Mean availability while batches run (deployment overhead is fully
	// available: old code keeps serving).
	rollingTime := time.Duration(rep.Batches) * batchTime
	if rep.Total > 0 {
		unavailable := float64(batchSize) / float64(total)
		rep.MeanAvailability = 1 - unavailable*(rollingTime.Seconds()/rep.Total.Seconds())
	}
	return rep
}

// WeeklyFullAvailability returns the fraction of a week during which 100%
// of the data is available, given one rollover per week. The paper: 93%
// with 12-hour disk rollovers, 99.5% with shm (§1).
func WeeklyFullAvailability(rollover time.Duration) float64 {
	week := 7 * 24 * time.Hour
	if rollover >= week {
		return 0
	}
	return 1 - rollover.Seconds()/week.Seconds()
}

// ParallelismSweep compares restarting k leaves concurrently on one machine
// against k leaves on k machines (E6). It returns the time for each layout.
func (p Params) ParallelismSweep(useShm bool, k int) (sameMachine, spreadOut time.Duration) {
	return p.LeafRestartTime(useShm, k), p.LeafRestartTime(useShm, 1)
}

// FormatDuration renders a duration the way the experiment tables do.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
