package sim

import (
	"testing"
	"time"
)

// TestPaperHeadlineNumbers checks the calibrated model against every
// quantitative claim in the paper (§1, §4.3, §4.5, §6).
func TestPaperHeadlineNumbers(t *testing.T) {
	p := DefaultParams()

	// "Reading about 120 GB of data from disk takes 20-25 minutes."
	read := p.DiskReadTime()
	if read < 18*time.Minute || read > 28*time.Minute {
		t.Errorf("disk read = %v, paper says 20-25 min", read)
	}

	// "Reading that data ... and translating it ... takes 2.5-3 hours."
	disk := p.MachineRestartTime(false)
	if disk < 2*time.Hour+15*time.Minute || disk > 3*time.Hour+30*time.Minute {
		t.Errorf("disk machine restart = %v, paper says 2.5-3 h", disk)
	}

	// "About 2-3 minutes per server" with shared memory.
	mem := p.MachineRestartTime(true)
	if mem < 90*time.Second || mem > 4*time.Minute {
		t.Errorf("shm machine restart = %v, paper says 2-3 min", mem)
	}

	// ~4 orders of magnitude between query latency (subsecond) and disk
	// recovery; shm recovery buys back ~60x.
	speedup := disk.Seconds() / mem.Seconds()
	if speedup < 40 || speedup > 120 {
		t.Errorf("shm speedup = %.0fx, expected 40-120x", speedup)
	}
}

func TestRolloverDurations(t *testing.T) {
	p := DefaultParams()

	// "Typically we restart 2% of the leaf servers at a time, and the
	// entire rollover takes 10-12 hours to restart from disk."
	disk := p.SimulateRollover(false)
	if disk.Total < 9*time.Hour || disk.Total > 15*time.Hour {
		t.Errorf("disk rollover = %v, paper says 10-12 h", disk.Total)
	}

	// "The entire cluster upgrade time is now under an hour" + ~40 min of
	// deployment overhead (§6); allow a modest margin over 1h.
	mem := p.SimulateRollover(true)
	if mem.Total > 80*time.Minute {
		t.Errorf("shm rollover = %v, paper says about an hour", mem.Total)
	}
	if mem.Total < 40*time.Minute {
		t.Errorf("shm rollover = %v, cannot beat the deployment overhead", mem.Total)
	}

	// The shape that matters: an order of magnitude between the paths.
	if ratio := disk.Total.Seconds() / mem.Total.Seconds(); ratio < 8 {
		t.Errorf("rollover speedup = %.1fx, expected >=8x", ratio)
	}
}

func TestAvailabilityDuringRollover(t *testing.T) {
	p := DefaultParams()
	rep := p.SimulateRollover(true)
	// "98% of data online and available to queries" with 2% batches.
	if rep.MinAvailability < 0.975 || rep.MinAvailability >= 1 {
		t.Errorf("min availability = %v", rep.MinAvailability)
	}
	if rep.MeanAvailability < rep.MinAvailability {
		t.Errorf("mean %v < min %v", rep.MeanAvailability, rep.MinAvailability)
	}
	// 2% of 800 leaves = 16 per batch -> 50 batches.
	if rep.Batches != 50 {
		t.Errorf("batches = %d", rep.Batches)
	}
}

func TestWeeklyFullAvailability(t *testing.T) {
	// "100% of the data available only 93% of the time with a 12 hour
	// rollover once a week" -> 1 - 12/168 = 92.9%.
	if got := WeeklyFullAvailability(12 * time.Hour); got < 0.925 || got > 0.935 {
		t.Errorf("disk weekly availability = %v", got)
	}
	// "Scuba is now fully available 99.5% of the time" (≈1 h rollover).
	if got := WeeklyFullAvailability(time.Hour); got < 0.99 || got > 0.9965 {
		t.Errorf("shm weekly availability = %v", got)
	}
	if WeeklyFullAvailability(8*24*time.Hour) != 0 {
		t.Error("rollover longer than a week should give 0")
	}
}

func TestTimelineShape(t *testing.T) {
	// Figure 8: old decreases, new increases, rolling stays one batch.
	p := DefaultParams()
	rep := p.SimulateRollover(true)
	total := p.Machines * p.LeavesPerMachine
	prevNew := -1
	for i, pt := range rep.Timeline {
		if pt.OldVersion+pt.RollingOver+pt.NewVersion != total {
			t.Fatalf("point %d does not sum to %d: %+v", i, total, pt)
		}
		if pt.NewVersion < prevNew {
			t.Fatalf("new version count decreased at %d", i)
		}
		prevNew = pt.NewVersion
	}
	last := rep.Timeline[len(rep.Timeline)-1]
	if last.NewVersion != total || last.Available != 1 {
		t.Errorf("final point = %+v", last)
	}
	first := rep.Timeline[0]
	if first.NewVersion != 0 || first.RollingOver == 0 {
		t.Errorf("first point = %+v", first)
	}
}

func TestParallelismSweep(t *testing.T) {
	// E6: k leaves on one machine share bandwidth; k machines do not.
	p := DefaultParams()
	for _, k := range []int{2, 4, 8} {
		same, spread := p.ParallelismSweep(true, k)
		if same <= spread {
			t.Errorf("k=%d: same-machine %v should exceed spread %v", k, same, spread)
		}
		// Restart time scales roughly linearly with contention.
		ratio := same.Seconds() / spread.Seconds()
		if ratio < float64(k)/2 || ratio > float64(k)*2 {
			t.Errorf("k=%d: contention ratio %.1f implausible", k, ratio)
		}
	}
}

func TestCalibrate(t *testing.T) {
	p := DefaultParams()
	// 1 GiB restored in 2s disk, 0.1s shm.
	c := p.Calibrate(1<<30, 2*time.Second, 100*time.Millisecond)
	if c.DiskRecoverLeafMBps < 500 || c.DiskRecoverLeafMBps > 520 {
		t.Errorf("disk rate = %v", c.DiskRecoverLeafMBps)
	}
	if c.ShmLeafMBps < 10200 || c.ShmLeafMBps > 10300 {
		t.Errorf("shm rate = %v", c.ShmLeafMBps)
	}
	// Zero measurements leave defaults untouched.
	c2 := p.Calibrate(0, 0, 0)
	if c2.DiskRecoverLeafMBps != p.DiskRecoverLeafMBps {
		t.Error("calibrate with zeros changed rates")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		30 * time.Second:             "30.0s",
		90 * time.Second:             "1.5m",
		2*time.Hour + 30*time.Minute: "2.5h",
		100 * time.Millisecond:       "0.1s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestSmallClusterEdge(t *testing.T) {
	p := DefaultParams()
	p.Machines = 1
	p.LeavesPerMachine = 2
	p.BatchFraction = 0.5
	rep := p.SimulateRollover(true)
	if rep.Batches != 2 {
		t.Errorf("batches = %d", rep.Batches)
	}
	if rep.MinAvailability != 0.5 {
		t.Errorf("min availability = %v", rep.MinAvailability)
	}
}
