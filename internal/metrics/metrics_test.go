package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rows")
	c.Add(5)
	c.Add(3)
	if c.Value() != 8 {
		t.Errorf("value = %d", c.Value())
	}
	if r.Counter("rows") != c {
		t.Error("counter not reused")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("value = %d", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("free")
	g.Set(100)
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("value = %d", g.Value())
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("restart")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	st := tm.Stats()
	if st.Count != 2 || st.Min != 10*time.Millisecond || st.Max != 30*time.Millisecond {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean != 20*time.Millisecond || st.Total != 40*time.Millisecond {
		t.Errorf("mean/total = %v/%v", st.Mean, st.Total)
	}
}

func TestTimerTime(t *testing.T) {
	tm := &Timer{}
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if st := tm.Stats(); st.Count != 1 || st.Total < time.Millisecond {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(1)
	r.Gauge("busy").SetDuration(1500 * time.Microsecond)
	r.Timer("c.timer").Observe(time.Second)
	r.Histogram("d.hist").Observe(7)
	s := r.String()
	lines := strings.Split(s, "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	// Every line is type-tagged, and the lexical sort groups by type.
	// Rendered names are canonical snake_case even though registry keys
	// keep their dotted internal spellings.
	for _, want := range []string{
		"counter b_count 2",
		"gauge a_gauge 1",
		"gauge busy 1500us", // duration gauges carry a unit suffix
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing line %q in:\n%s", want, s)
		}
	}
	if !strings.HasPrefix(lines[0], "counter ") || !strings.HasPrefix(lines[4], "timer ") {
		t.Errorf("type grouping wrong: %q", s)
	}
	if !strings.Contains(s, "histogram d_hist count=1") {
		t.Errorf("histogram line missing: %q", s)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows").Add(10)
	r.Gauge("free").Set(99)
	r.Gauge("busy").SetDuration(250 * time.Microsecond)
	r.Timer("t").Observe(time.Millisecond)
	r.Histogram("h").ObserveDuration(2 * time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["rows"] != 10 {
		t.Errorf("counter = %d", snap.Counters["rows"])
	}
	if g := snap.Gauges["free"]; g.Value != 99 || g.Unit != "" {
		t.Errorf("gauge free = %+v", g)
	}
	if g := snap.Gauges["busy"]; g.Value != 250 || g.Unit != "us" {
		t.Errorf("gauge busy = %+v", g)
	}
	if ts := snap.Timers["t"]; ts.Count != 1 || ts.Total != time.Millisecond {
		t.Errorf("timer = %+v", ts)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || !hs.IsDuration || hs.Min != 2000 || hs.Max != 2000 {
		t.Errorf("histogram = %+v", hs)
	}
}

func TestGaugeDurationAndAdd(t *testing.T) {
	var g Gauge
	g.SetDuration(1500 * time.Microsecond)
	if got := g.Value(); got != 1500 {
		t.Errorf("SetDuration value = %d, want 1500", got)
	}
	g.Set(10)
	g.Add(5)
	g.Add(-3)
	if got := g.Value(); got != 12 {
		t.Errorf("Add value = %d, want 12", got)
	}
}
