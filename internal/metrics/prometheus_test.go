package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPrometheusCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows.added").Add(42)
	r.Gauge("free").Set(1000)
	r.Gauge("worker.busy").SetDuration(1500 * time.Microsecond)

	out := r.Prometheus()
	for _, want := range []string{
		"# TYPE scuba_rows_added counter\nscuba_rows_added 42\n",
		"# TYPE scuba_free gauge\nscuba_free 1000\n",
		// Duration gauges convert µs → float seconds and gain _seconds.
		"# TYPE scuba_worker_busy_seconds gauge\nscuba_worker_busy_seconds 0.0015\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusTimerSummary(t *testing.T) {
	r := NewRegistry()
	r.Timer("restart.copy_in").Observe(250 * time.Millisecond)
	r.Timer("restart.copy_in").Observe(750 * time.Millisecond)

	out := r.Prometheus()
	for _, want := range []string{
		"# TYPE scuba_restart_copy_in_seconds summary\n",
		"scuba_restart_copy_in_seconds_count 2\n",
		"scuba_restart_copy_in_seconds_sum 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("query.fanout")
	h.Observe(1) // bucket le=1
	h.Observe(3) // bucket le=3
	h.Observe(3)
	h.Observe(100) // bucket le=127

	out := r.Prometheus()
	for _, want := range []string{
		"# TYPE scuba_query_fanout histogram\n",
		`scuba_query_fanout_bucket{le="1"} 1`,
		`scuba_query_fanout_bucket{le="3"} 3`, // cumulative: 1 + 2
		`scuba_query_fanout_bucket{le="127"} 4`,
		`scuba_query_fanout_bucket{le="+Inf"} 4`,
		"scuba_query_fanout_sum 107",
		"scuba_query_fanout_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusDurationHistogramSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("query.latency_hist")
	h.ObserveDuration(100 * time.Microsecond) // 100µs → bucket le=127µs
	h.ObserveDuration(2 * time.Millisecond)   // 2000µs → bucket le=2047µs

	out := r.Prometheus()
	for _, want := range []string{
		"# TYPE scuba_query_latency_hist_seconds histogram\n",
		`scuba_query_latency_hist_seconds_bucket{le="0.000127"} 1`,
		`scuba_query_latency_hist_seconds_bucket{le="0.002047"} 2`,
		`scuba_query_latency_hist_seconds_bucket{le="+Inf"} 2`,
		"scuba_query_latency_hist_seconds_sum 0.0021\n",
		"scuba_query_latency_hist_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("z").Set(3)
	r.Histogram("h").Observe(5)
	if r.Prometheus() != r.Prometheus() {
		t.Fatal("exposition not byte-stable across identical snapshots")
	}
	if !strings.HasPrefix(r.Prometheus(), "# TYPE scuba_a counter") {
		t.Errorf("families not sorted:\n%s", r.Prometheus())
	}
}

// TestPrometheusRaces renders the exposition while writers are observing
// into every metric type; run under -race this pins snapshot-vs-observe
// safety for the new rendering path too.
func TestPrometheusRaces(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c").Add(1)
				r.Gauge("g").SetDuration(time.Millisecond)
				r.Timer("t").Observe(time.Microsecond)
				r.Histogram("h").ObserveDuration(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if out := r.Prometheus(); !strings.Contains(out, "scuba_c") {
			t.Errorf("missing counter in exposition")
			break
		}
	}
	close(stop)
	wg.Wait()
}
