package metrics

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo identifies the running binary on every /metrics surface:
// scuba_build_info{version,commit,go_version} 1 in the Prometheus
// exposition, an "info build" line in the text format.
type BuildInfo struct {
	Version   string
	Commit    string
	GoVersion string
}

// processSampler holds the start time behind the up.seconds gauge.
type processSampler struct {
	start time.Time
	build BuildInfo
}

// EnableProcessMetrics turns on process identity self-metrics:
//
//	up.seconds   gauge, seconds since this call (process start for daemons
//	             that call it from main), refreshed on every Snapshot
//	build_info   version / vcs commit / Go toolchain from the binary's
//	             embedded build info, constant for the process lifetime
//
// Version falls back to "unknown" for non-module builds and commit to
// "unknown" when the binary was built outside a VCS checkout (go test,
// plain go build of a dirty tree without stamping). Idempotent; the first
// call pins the start time.
func (r *Registry) EnableProcessMetrics() {
	bi := BuildInfo{Version: "unknown", Commit: "unknown", GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" && info.Main.Version != "(devel)" {
			bi.Version = info.Main.Version
		}
		if info.GoVersion != "" {
			bi.GoVersion = info.GoVersion
		}
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				bi.Commit = s.Value
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.process == nil {
		r.process = &processSampler{start: time.Now(), build: bi}
	}
}

// Build returns the build info captured by EnableProcessMetrics (zero value
// before the call).
func (r *Registry) Build() BuildInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.process == nil {
		return BuildInfo{}
	}
	return r.process.build
}

// sampleProcess refreshes up.seconds. Like sampleRuntime it must run
// outside r.mu (Gauge locks).
func (r *Registry) sampleProcess() {
	r.mu.Lock()
	ps := r.process
	r.mu.Unlock()
	if ps == nil {
		return
	}
	r.Gauge("up.seconds").Set(int64(time.Since(ps.start).Seconds()))
}
