package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PrometheusPrefix is prepended to every canonical metric name in the
// Prometheus exposition so scrape configs can select the whole family with
// one matcher.
const PrometheusPrefix = "scuba_"

// Prometheus renders the snapshot in the Prometheus text exposition format
// (text/plain; version=0.0.4):
//
//   - counters and plain gauges keep their integer values;
//   - duration gauges (SetDuration, stored in µs) become <name>_seconds
//     gauges in float seconds, per Prometheus base-unit convention;
//   - timers become <name>_seconds summaries (_count and _sum only — the
//     Timer keeps no distribution);
//   - histograms expose their power-of-two buckets as cumulative le-bound
//     buckets plus _sum and _count; duration histograms are converted from
//     µs to <name>_seconds with float le bounds.
//
// Every name is CanonicalName'd and prefixed with PrometheusPrefix, and
// families sort lexically so scrapes are byte-stable for equal snapshots.
//
// The output is OpenMetrics-compatible: histogram buckets whose most recent
// traced observation is known carry an exemplar ("# {trace_id=...} value
// timestamp" after the bucket value) and the exposition ends with "# EOF".
// Plain-Prometheus scrapers ignore both.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	if s.Build != nil {
		fam := PrometheusPrefix + "build_info"
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s{version=%q,commit=%q,go_version=%q} 1\n",
			fam, fam, s.Build.Version, s.Build.Commit, s.Build.GoVersion)
	}
	for _, name := range sortedKeys(s.Counters) {
		fam := PrometheusPrefix + CanonicalName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", fam, fam, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fam := PrometheusPrefix + CanonicalName(name)
		if g.Unit == "us" {
			fam += "_seconds"
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", fam, fam, promFloat(float64(g.Value)/1e6))
		} else {
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", fam, fam, g.Value)
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		st := s.Timers[name]
		fam := PrometheusPrefix + CanonicalName(name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", fam)
		fmt.Fprintf(&b, "%s_count %d\n", fam, st.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(st.Total.Seconds()))
	}
	for _, name := range sortedKeys(s.Histograms) {
		st := s.Histograms[name]
		fam := PrometheusPrefix + CanonicalName(name)
		if st.IsDuration {
			fam += "_seconds"
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		var cum int64
		for _, bk := range st.Buckets {
			cum += bk.Count
			le := strconv.FormatInt(bk.Le, 10)
			if st.IsDuration {
				le = promFloat(float64(bk.Le) / 1e6)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d", fam, le, cum)
			// OpenMetrics exemplar, in the family's base unit. The +Inf
			// bucket below stays exemplar-free by construction: it is a
			// synthesized total, not an observed bucket.
			if ex := bk.Exemplar; ex != nil {
				v := strconv.FormatInt(ex.Value, 10)
				if st.IsDuration {
					v = promFloat(float64(ex.Value) / 1e6)
				}
				fmt.Fprintf(&b, " # {trace_id=\"%d\"} %s %s",
					ex.TraceID, v, promFloat(float64(ex.UnixMicros)/1e6))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, st.Count)
		sum := strconv.FormatInt(st.Sum, 10)
		if st.IsDuration {
			sum = promFloat(float64(st.Sum) / 1e6)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", fam, sum)
		fmt.Fprintf(&b, "%s_count %d\n", fam, st.Count)
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// Prometheus renders the registry's current snapshot in Prometheus text
// exposition format.
func (r *Registry) Prometheus() string { return r.Snapshot().Prometheus() }

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
