package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Snapshot().Gauges["runtime.goroutines"]; ok {
		t.Fatal("runtime metrics present without EnableRuntimeMetrics")
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.EnableRuntimeMetrics()
	r.EnableRuntimeMetrics() // idempotent

	runtime.GC()
	runtime.GC()
	snap := r.Snapshot()

	if g := snap.Gauges["runtime.goroutines"]; g.Value < 1 {
		t.Fatalf("runtime.goroutines = %d, want >= 1", g.Value)
	}
	if g := snap.Gauges["runtime.heap_bytes"]; g.Value <= 0 {
		t.Fatalf("runtime.heap_bytes = %d, want > 0", g.Value)
	}
	h := snap.Histograms["runtime.gc_pause_hist"]
	if h.Count < 2 {
		t.Fatalf("gc_pause_hist count = %d, want >= 2 after two forced GCs", h.Count)
	}

	// A second snapshot must not re-observe the same pauses.
	before := h.Count
	after := r.Snapshot().Histograms["runtime.gc_pause_hist"]
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// Concurrent GCs can legitimately add pauses between snapshots; what is
	// forbidden is double counting: total observed never exceeds NumGC.
	if after.Count < before || after.Count > int64(ms.NumGC) {
		t.Fatalf("gc_pause_hist count went %d -> %d with NumGC=%d", before, after.Count, ms.NumGC)
	}

	out := r.String()
	for _, want := range []string{"gauge runtime_goroutines", "gauge runtime_heap_bytes", "histogram runtime_gc_pause_hist"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendering:\n%s", want, out)
		}
	}
}
