// Package metrics provides the small counter/gauge/timer registry used by
// the daemons, the rollover driver and the benchmark harness. It is not a
// general metrics system — just enough to print the dashboards and tables
// the experiments need, with no dependencies.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetDuration stores a duration in whole microseconds. The restart copy
// workers report per-worker busy time this way: sub-millisecond copies are
// common at test scale and would all round to zero in milliseconds.
func (g *Gauge) SetDuration(d time.Duration) { g.v.Store(d.Microseconds()) }

// Add adjusts the gauge by a delta (useful for high-water tracking under
// concurrent writers combined with Value polling).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a timer snapshot.
type TimerStats struct {
	Count          int64
	Total          time.Duration
	Min, Max, Mean time.Duration
}

// Stats snapshots the timer.
func (t *Timer) Stats() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TimerStats{Count: t.count, Total: t.total, Min: t.min, Max: t.max}
	if t.count > 0 {
		st.Mean = t.total / time.Duration(t.count)
	}
	return st
}

// Registry names a set of metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns (creating if needed) a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) a named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) a named timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// String renders all metrics sorted by name, one per line.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, t := range r.timers {
		st := t.Stats()
		lines = append(lines, fmt.Sprintf("%s count=%d total=%v mean=%v min=%v max=%v",
			name, st.Count, st.Total, st.Mean, st.Min, st.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
