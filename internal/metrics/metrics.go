// Package metrics provides the small counter/gauge/timer/histogram registry
// used by the daemons, the rollover driver and the benchmark harness. It is
// not a general metrics system — just enough to print the dashboards and
// tables the experiments need, and to back the /metrics HTTP exposition of
// every daemon, with no dependencies.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable value.
type Gauge struct {
	v atomic.Int64
	// duration marks gauges set via SetDuration so snapshots and text
	// output can render the microsecond value with a unit instead of as a
	// bare count.
	duration atomic.Bool
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetDuration stores a duration in whole microseconds. The restart copy
// workers report per-worker busy time this way: sub-millisecond copies are
// common at test scale and would all round to zero in milliseconds.
func (g *Gauge) SetDuration(d time.Duration) {
	g.duration.Store(true)
	g.v.Store(d.Microseconds())
}

// Add adjusts the gauge by a delta (useful for high-water tracking under
// concurrent writers combined with Value polling).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a timer snapshot.
type TimerStats struct {
	Count          int64
	Total          time.Duration
	Min, Max, Mean time.Duration
}

// Stats snapshots the timer.
func (t *Timer) Stats() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TimerStats{Count: t.count, Total: t.total, Min: t.min, Max: t.max}
	if t.count > 0 {
		st.Mean = t.total / time.Duration(t.count)
	}
	return st
}

// Registry names a set of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
	// runtime is non-nil once EnableRuntimeMetrics has been called; every
	// Snapshot then refreshes the runtime.* self-metrics first.
	runtime *runtimeSampler
	// process is non-nil once EnableProcessMetrics has been called; every
	// Snapshot then refreshes up.seconds and carries the build info.
	process *processSampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) a named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) a named timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns (creating if needed) a named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// GaugeValue is one gauge's snapshot. Unit is "us" for gauges set via
// SetDuration and "" otherwise.
type GaugeValue struct {
	Value int64
	Unit  string
}

// Snapshot is a point-in-time structured view of every metric in a
// registry, so tests and HTTP handlers consume typed values instead of
// parsing the text rendering.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeValue
	Timers     map[string]TimerStats
	Histograms map[string]HistogramStats
	// Build is the binary's identity, nil unless EnableProcessMetrics ran.
	Build *BuildInfo
}

// Snapshot captures every metric. Each value is internally consistent; the
// set as a whole is a best-effort snapshot under concurrent writers.
func (r *Registry) Snapshot() Snapshot {
	r.sampleRuntime()
	r.sampleProcess()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	timers := make(map[string]*Timer, len(r.timers))
	for name, t := range r.timers {
		timers[name] = t
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]GaugeValue, len(gauges)),
		Timers:     make(map[string]TimerStats, len(timers)),
		Histograms: make(map[string]HistogramStats, len(histograms)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		gv := GaugeValue{Value: g.Value()}
		if g.duration.Load() {
			gv.Unit = "us"
		}
		snap.Gauges[name] = gv
	}
	for name, t := range timers {
		snap.Timers[name] = t.Stats()
	}
	for name, h := range histograms {
		snap.Histograms[name] = h.Stats()
	}
	r.mu.Lock()
	if r.process != nil {
		b := r.process.build
		snap.Build = &b
	}
	r.mu.Unlock()
	return snap
}

// String renders all metrics one per line, each tagged with its type
// (counter|gauge|timer|histogram) and a unit suffix on duration gauges, so
// a reader can tell 1500 rows from 1500 microseconds. Names are rendered in
// their canonical snake_case form (CanonicalName), the same spelling the
// Prometheus exposition uses. Lines sort lexically, which groups metrics by
// type and then by name. This is also the default /metrics HTTP exposition
// format.
func (r *Registry) String() string {
	return r.Snapshot().String()
}

// String renders a snapshot in the registry text format.
func (s Snapshot) String() string {
	var lines []string
	if s.Build != nil {
		lines = append(lines, fmt.Sprintf("info build_info version=%s commit=%s go=%s",
			s.Build.Version, s.Build.Commit, s.Build.GoVersion))
	}
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", CanonicalName(name), v))
	}
	for name, g := range s.Gauges {
		if g.Unit != "" {
			lines = append(lines, fmt.Sprintf("gauge %s %d%s", CanonicalName(name), g.Value, g.Unit))
		} else {
			lines = append(lines, fmt.Sprintf("gauge %s %d", CanonicalName(name), g.Value))
		}
	}
	for name, st := range s.Timers {
		lines = append(lines, fmt.Sprintf("timer %s count=%d total=%v mean=%v min=%v max=%v",
			CanonicalName(name), st.Count, st.Total, st.Mean, st.Min, st.Max))
	}
	for name, st := range s.Histograms {
		if st.IsDuration {
			us := func(v int64) time.Duration { return time.Duration(v) * time.Microsecond }
			lines = append(lines, fmt.Sprintf("histogram %s count=%d p50=%v p95=%v p99=%v min=%v max=%v mean=%v",
				CanonicalName(name), st.Count, us(st.P50), us(st.P95), us(st.P99), us(st.Min), us(st.Max), us(st.Mean())))
		} else {
			lines = append(lines, fmt.Sprintf("histogram %s count=%d p50=%d p95=%d p99=%d min=%d max=%d mean=%d",
				CanonicalName(name), st.Count, st.P50, st.P95, st.P99, st.Min, st.Max, st.Mean()))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
