package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusEmptyRegistry pins the degenerate exposition: no families,
// but still a well-formed OpenMetrics document (just the EOF marker).
func TestPrometheusEmptyRegistry(t *testing.T) {
	r := NewRegistry()
	got := r.Prometheus()
	if got != "# EOF\n" {
		t.Fatalf("empty registry exposition = %q, want %q", got, "# EOF\n")
	}
	// An empty *snapshot* (no registry at all) renders the same.
	if got := (Snapshot{}).Prometheus(); got != "# EOF\n" {
		t.Fatalf("empty snapshot exposition = %q", got)
	}
}

// TestPrometheusScrapeObserveRace hammers every metric type (including the
// exemplar path) while scraping; run under -race this pins that a scrape
// never tears an observation.
func TestPrometheusScrapeObserveRace(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("race.counter").Add(1)
				r.Gauge("race.gauge").Set(int64(i))
				r.Timer("race.timer").Observe(time.Duration(i) * time.Microsecond)
				r.Histogram("race.hist").Observe(int64(i % 1000))
				r.Histogram("race.lat_hist").ObserveDurationExemplar(
					time.Duration(i%500)*time.Microsecond, uint64(w*1_000_000+i+1))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		out := r.Prometheus()
		if !strings.HasSuffix(out, "# EOF\n") {
			t.Fatalf("scrape not terminated:\n%s", out)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPrometheusBucketMonotonicity checks the histogram invariants every
// scraper assumes: cumulative bucket counts never decrease with le, the
// +Inf bucket equals _count, and le bounds strictly increase.
func TestPrometheusBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono.hist")
	for _, v := range []int64{0, 1, 1, 3, 7, 8, 100, 5000, 1 << 40} {
		h.Observe(v)
	}
	st := h.Stats()
	lastLe := int64(-1)
	for _, bk := range st.Buckets {
		if bk.Le <= lastLe {
			t.Fatalf("le bounds not increasing: %d after %d", bk.Le, lastLe)
		}
		lastLe = bk.Le
		if bk.Count <= 0 {
			t.Fatalf("empty bucket emitted: %+v", bk)
		}
	}

	out := r.Prometheus()
	var lastCum int64 = -1
	var buckets, infCum int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "scuba_mono_hist_bucket{") {
			continue
		}
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if val < lastCum {
			t.Fatalf("cumulative count decreased: %q after %d", line, lastCum)
		}
		lastCum = val
		buckets++
		if strings.Contains(line, `le="+Inf"`) {
			infCum = val
		}
	}
	if buckets < 2 {
		t.Fatalf("expected multiple bucket lines:\n%s", out)
	}
	if infCum != st.Count {
		t.Fatalf("+Inf bucket %d != count %d", infCum, st.Count)
	}
}

// TestPrometheusExemplars pins the OpenMetrics exemplar rendering: the
// traced bucket carries "# {trace_id=...}", the +Inf bucket never does, and
// untraced histograms render exemplar-free.
func TestPrometheusExemplars(t *testing.T) {
	r := NewRegistry()
	r.Histogram("plain.lat_hist").ObserveDuration(3 * time.Millisecond)
	h := r.Histogram("query.latency_hist")
	h.ObserveDurationExemplar(10*time.Millisecond, 0xabcdef) // traced
	h.ObserveDurationExemplar(20*time.Microsecond, 0)        // untraced: no exemplar

	st := h.Stats()
	var withEx int
	for _, bk := range st.Buckets {
		if bk.Exemplar != nil {
			withEx++
			if bk.Exemplar.TraceID != 0xabcdef {
				t.Fatalf("exemplar trace = %d", bk.Exemplar.TraceID)
			}
			if bk.Exemplar.Value != (10 * time.Millisecond).Microseconds() {
				t.Fatalf("exemplar value = %d", bk.Exemplar.Value)
			}
		}
	}
	if withEx != 1 {
		t.Fatalf("buckets with exemplars = %d, want 1", withEx)
	}

	out := r.Prometheus()
	want := `# {trace_id="` + strconv.FormatUint(0xabcdef, 10) + `"} 0.01 `
	if !strings.Contains(out, want) {
		t.Fatalf("no exemplar %q in:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="+Inf"`) && strings.Contains(line, "trace_id") {
			t.Fatalf("+Inf bucket carries an exemplar: %q", line)
		}
		if strings.HasPrefix(line, "scuba_plain_lat_hist") && strings.Contains(line, "trace_id") {
			t.Fatalf("untraced histogram grew an exemplar: %q", line)
		}
	}
	// A second traced observation in the same bucket replaces the exemplar
	// (last-write-wins).
	h.ObserveDurationExemplar(11*time.Millisecond, 77)
	if !strings.Contains(r.Prometheus(), `# {trace_id="77"}`) {
		t.Fatal("exemplar not replaced by newer trace")
	}
}
