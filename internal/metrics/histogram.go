package metrics

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Histogram accumulates non-negative int64 samples into power-of-two
// buckets: bucket i counts samples whose bit length is i, i.e. values in
// [2^(i-1), 2^i). The bucketing gives ~2x relative error on quantile
// estimates at any scale with a fixed 65-slot footprint — enough to tell a
// 100µs query from a 10ms one, which is what the restart and query
// dashboards need.
//
// Durations observed via ObserveDuration are stored as whole microseconds
// and flagged, so snapshots and the registry's text output render them as
// durations instead of bare counts.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64 // index = bits.Len64(value)
	// exemplars holds the most recent traced observation per bucket
	// (ObserveDurationExemplar). Last-write-wins is the standard exemplar
	// policy: the scrape wants *a* recent trace for the bucket, not all.
	exemplars [65]*Exemplar
	duration  bool
}

// Exemplar links one observation in a bucket to the distributed trace that
// produced it, exposed in OpenMetrics exemplar syntax on the Prometheus
// exposition so a dashboard can jump from a latency bucket straight to
// scuba-cli trace.
type Exemplar struct {
	// TraceID is the trace's ID, rendered in decimal to match the trace_id
	// column of __system.traces and the scuba-cli trace argument.
	TraceID uint64
	// Value is the observed sample in the histogram's native unit
	// (microseconds for duration histograms).
	Value int64
	// UnixMicros is when the observation happened.
	UnixMicros int64
}

// Observe records one sample. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
}

// ObserveDuration records a duration in whole microseconds and marks the
// histogram as duration-typed for rendering.
func (h *Histogram) ObserveDuration(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.duration = true
	if h.count == 0 || us < h.min {
		h.min = us
	}
	if us > h.max {
		h.max = us
	}
	h.count++
	h.sum += us
	h.buckets[bits.Len64(uint64(us))]++
}

// ObserveDurationExemplar records a duration like ObserveDuration and
// additionally attaches the trace ID as the bucket's exemplar. A zero
// traceID records the sample without an exemplar (untraced request).
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID uint64) {
	if traceID == 0 {
		h.ObserveDuration(d)
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	now := time.Now().UnixMicro()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.duration = true
	if h.count == 0 || us < h.min {
		h.min = us
	}
	if us > h.max {
		h.max = us
	}
	h.count++
	h.sum += us
	i := bits.Len64(uint64(us))
	h.buckets[i]++
	h.exemplars[i] = &Exemplar{TraceID: traceID, Value: us, UnixMicros: now}
}

// Time runs fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.ObserveDuration(time.Since(start))
}

// HistogramBucket is one occupied power-of-two bucket in a histogram
// snapshot. Le is the inclusive upper bound of the bucket (0 for the zero
// bucket, 2^i-1 for bucket i), matching Prometheus "le" semantics; Count is
// the number of samples in this bucket alone (not cumulative).
type HistogramBucket struct {
	Le    int64
	Count int64
	// Exemplar is the bucket's most recent traced observation, nil when no
	// traced request has landed in the bucket.
	Exemplar *Exemplar
}

// HistogramStats is a histogram snapshot. P50/P95/P99 are estimated from
// the bucket midpoints, clamped to the observed min/max. When IsDuration is
// set, every value field is in microseconds. Buckets lists the occupied
// buckets in ascending Le order so exposition formats can render the full
// distribution, not just point quantiles.
type HistogramStats struct {
	Count         int64
	Sum           int64
	Min, Max      int64
	P50, P95, P99 int64
	IsDuration    bool
	Buckets       []HistogramBucket
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistogramStats) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Stats snapshots the histogram.
func (h *Histogram) Stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStats{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		IsDuration: h.duration,
	}
	st.P50 = h.quantileLocked(0.50)
	st.P95 = h.quantileLocked(0.95)
	st.P99 = h.quantileLocked(0.99)
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := int64(0)
		switch {
		case i >= 63:
			// Bucket 63 spans up to 2^63-1 == MaxInt64 (bucket 64 is
			// unreachable for non-negative int64 samples).
			le = math.MaxInt64
		case i > 0:
			le = int64(1)<<i - 1
		}
		bk := HistogramBucket{Le: le, Count: c}
		if ex := h.exemplars[i]; ex != nil {
			cp := *ex
			bk.Exemplar = &cp
		}
		st.Buckets = append(st.Buckets, bk)
	}
	return st
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is 1-based: the sample such that rank samples are <= it.
	rank := int64(q*float64(h.count-1)) + 1
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			// Bucket i spans [2^(i-1), 2^i); report its midpoint, clamped
			// to the observed extremes so tiny sample counts stay honest.
			var lo, hi int64
			if i == 0 {
				lo, hi = 0, 0
			} else {
				lo = int64(1) << (i - 1)
				hi = lo<<1 - 1
			}
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}
