package metrics

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler holds the GC-pause cursor for a registry with runtime
// self-metrics enabled.
type runtimeSampler struct {
	mu        sync.Mutex
	lastNumGC uint32
}

// EnableRuntimeMetrics turns on Go runtime self-metrics: every Snapshot
// (and therefore every /metrics scrape and String render) first samples the
// runtime into
//
//	runtime.goroutines     gauge, current goroutine count
//	runtime.heap_bytes     gauge, live heap (MemStats.HeapAlloc)
//	runtime.gc_pause_hist  histogram of individual GC stop-the-world pauses
//
// Sampling on scrape rather than on a timer means an idle daemon costs
// nothing and a scraped one is always current. Idempotent.
func (r *Registry) EnableRuntimeMetrics() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runtime == nil {
		r.runtime = &runtimeSampler{}
	}
}

// sampleRuntime refreshes the runtime metrics. It must run outside r.mu
// (it reaches the registry through Gauge/Histogram, which lock).
func (r *Registry) sampleRuntime() {
	r.mu.Lock()
	rs := r.runtime
	r.mu.Unlock()
	if rs == nil {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("runtime.heap_bytes").Set(int64(ms.HeapAlloc))
	// PauseNs is a circular buffer of the last 256 pause durations; fold in
	// only the GCs that happened since the previous sample, and if more than
	// 256 did, take the 256 the runtime still remembers.
	h := r.Histogram("runtime.gc_pause_hist")
	start := rs.lastNumGC + 1
	if ms.NumGC > 255 && start < ms.NumGC-255 {
		start = ms.NumGC - 255
	}
	for i := start; i <= ms.NumGC && i > 0; i++ {
		h.ObserveDuration(time.Duration(ms.PauseNs[(i+255)%256]))
	}
	rs.lastNumGC = ms.NumGC
}
