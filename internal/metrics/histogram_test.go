package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	st := h.Stats()
	if st.Count != 6 {
		t.Errorf("count = %d", st.Count)
	}
	if st.Min != 0 || st.Max != 100 { // -5 clamps to 0
		t.Errorf("min/max = %d/%d", st.Min, st.Max)
	}
	if st.Sum != 110 {
		t.Errorf("sum = %d", st.Sum)
	}
	if st.IsDuration {
		t.Error("value histogram marked as duration")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples in [1, 100]: p50 should land near 64's bucket [32,63],
	// p99 near 100. Power-of-two buckets give ~2x resolution, so assert
	// ranges rather than exact values.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	st := h.Stats()
	if st.P50 < 32 || st.P50 > 64 {
		t.Errorf("p50 = %d, want within [32,64]", st.P50)
	}
	if st.P95 < 64 || st.P95 > 100 {
		t.Errorf("p95 = %d, want within [64,100]", st.P95)
	}
	if st.P99 < 64 || st.P99 > 100 {
		t.Errorf("p99 = %d, want within [64,100]", st.P99)
	}
	// Quantiles are clamped to observed extremes.
	if q := h.Quantile(0); q < 1 {
		t.Errorf("q0 = %d, want >= observed min", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %d, want clamped to max 100", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	st := h.Stats()
	if st.Count != 0 || st.P50 != 0 || st.P99 != 0 || st.Mean() != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	h.Time(func() {})
	st := h.Stats()
	if !st.IsDuration || st.Count != 2 || st.Max != 1500 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	st := h.Stats()
	// With one sample every quantile is that sample (midpoint clamps to
	// the observed min == max).
	if st.P50 != 1000 || st.P95 != 1000 || st.P99 != 1000 {
		t.Errorf("quantiles = %d/%d/%d, want 1000", st.P50, st.P95, st.P99)
	}
}

// TestObserveVsSnapshotRace drives concurrent Timer.Observe and
// Histogram.Observe against Snapshot readers; the race detector checks the
// locking, and the final counts check no observation is lost.
func TestObserveVsSnapshotRace(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 500
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // snapshot reader competing with every writer
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot().String()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				r.Timer("restart.copy_out").Observe(time.Duration(j) * time.Microsecond)
				r.Histogram("query.latency_hist").Observe(int64(i*perWriter + j))
				r.Histogram("query.latency_hist").Stats()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	snap := r.Snapshot()
	if got := snap.Timers["restart.copy_out"].Count; got != writers*perWriter {
		t.Errorf("timer count = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Histograms["query.latency_hist"].Count; got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
