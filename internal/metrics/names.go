package metrics

import "strings"

// CanonicalName maps an internal metric name to its stable snake_case form:
// lowercase, with every run of non-alphanumeric characters (dots, dashes,
// slashes, spaces) collapsed to a single underscore. Registry keys stay
// free-form — instrumentation sites keep their dotted names — but every
// rendered surface (Registry.String, the /metrics text format, Prometheus
// exposition, and the self-telemetry sink) goes through this one function,
// so dashboards and scrape configs see one spelling that does not drift
// when internal names do. The canonical set is pinned by TestCanonicalNames.
func CanonicalName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	lastUnderscore := false
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
			lastUnderscore = false
		default:
			if !lastUnderscore && b.Len() > 0 {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	out := strings.TrimSuffix(b.String(), "_")
	if out == "" {
		return "_"
	}
	return out
}
