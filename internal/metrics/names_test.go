package metrics

import "testing"

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"query.latency_hist":           "query_latency_hist",
		"query.decode_cache.hits":      "query_decode_cache_hits",
		"leaf0.shutdown.worker0.bytes": "leaf0_shutdown_worker0_bytes",
		"Already_Snake":                "already_snake",
		"a..b":                         "a_b",
		"a-b c/d":                      "a_b_c_d",
		".leading":                     "leading",
		"trailing.":                    "trailing",
		"":                             "_",
		"___":                          "_",
		"x":                            "x",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCanonicalNames pins the canonical spelling of every production metric
// name. Dashboards and scrape configs key on these; a change here is a
// breaking rename and must be deliberate. The test also proves the mapping
// stays collision-free: no two internal names may canonicalize to the same
// exposition name.
func TestCanonicalNames(t *testing.T) {
	pinned := map[string]string{
		// leaf query path
		"query.exec.count":             "query_exec_count",
		"query.exec.errors":            "query_exec_errors",
		"query.exec.latency":           "query_exec_latency",
		"query.exec.latency_hist":      "query_exec_latency_hist",
		"query.blocks_pruned":          "query_blocks_pruned",
		"query.decode_cache.bytes":     "query_decode_cache_bytes",
		"query.decode_cache.hits":      "query_decode_cache_hits",
		"query.decode_cache.misses":    "query_decode_cache_misses",
		"query.decode_cache.evictions": "query_decode_cache_evictions",
		// aggregator
		"query.count":            "query_count",
		"query.errors":           "query_errors",
		"query.latency":          "query_latency",
		"query.latency_hist":     "query_latency_hist",
		"query.fanout":           "query_fanout",
		"query.leaves_total":     "query_leaves_total",
		"query.leaves_answered":  "query_leaves_answered",
		"query.leaves_abandoned": "query_leaves_abandoned",
		"query.shards_total":     "query_shards_total",
		"query.shards_answered":  "query_shards_answered",
		"query.shards_unserved":  "query_shards_unserved",
		"query.slow":             "query_slow",
		// wire server
		"rpc.errors": "rpc_errors",
		"rpc.ping":   "rpc_ping",
		"rpc.query":  "rpc_query",
		"rows.added": "rows_added",
		// restart phases
		"restart.map":               "restart_map",
		"restart.copy_out":          "restart_copy_out",
		"restart.copy_out.table_us": "restart_copy_out_table_us",
		"restart.commit":            "restart_commit",
		"restart.copy_in":           "restart_copy_in",
		"restart.copy_in.table_us":  "restart_copy_in_table_us",
		"restart.disk":              "restart_disk",
		// rollover driver
		"rollover.batch":               "rollover_batch",
		"rollover.restarts":            "rollover_restarts",
		"rollover.aborts":              "rollover_aborts",
		"rollover.min_availability_bp": "rollover_min_availability_bp",
		"rollover.recovery.memory":     "rollover_recovery_memory",
		"rollover.recovery.mixed":      "rollover_recovery_mixed",
		"rollover.recovery.disk":       "rollover_recovery_disk",
		// tailer
		"tailer.drain":       "tailer_drain",
		"tailer.errors":      "tailer_errors",
		"tailer.rows_bad":    "tailer_rows_bad",
		"tailer.rows_lost":   "tailer_rows_lost",
		"tailer.rows_placed": "tailer_rows_placed",
		// tracing
		"trace.count": "trace_count",
		"trace.slow":  "trace_slow",
		// runtime self-metrics
		"runtime.goroutines":    "runtime_goroutines",
		"runtime.heap_bytes":    "runtime_heap_bytes",
		"runtime.gc_pause_hist": "runtime_gc_pause_hist",
		// self-telemetry sink
		"sink.rows":     "sink_rows",
		"sink.dropped":  "sink_dropped",
		"sink.errors":   "sink_errors",
		"scrape.count":  "scrape_count",
		"scrape.errors": "scrape_errors",
	}
	seen := make(map[string]string, len(pinned))
	for raw, want := range pinned {
		got := CanonicalName(raw)
		if got != want {
			t.Errorf("CanonicalName(%q) = %q, pinned %q", raw, got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("collision: %q and %q both canonicalize to %q", prev, raw, got)
		}
		seen[got] = raw
	}
}
