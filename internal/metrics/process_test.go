package metrics

import (
	"strings"
	"testing"
)

func TestProcessMetricsDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	snap := r.Snapshot()
	if snap.Build != nil {
		t.Fatalf("Build = %+v without EnableProcessMetrics", snap.Build)
	}
	if _, ok := snap.Gauges["up.seconds"]; ok {
		t.Fatal("up.seconds present without EnableProcessMetrics")
	}
	if !strings.Contains(r.Prometheus(), "# EOF") {
		t.Fatal("exposition missing # EOF terminator")
	}
	if strings.Contains(r.Prometheus(), "build_info") {
		t.Fatal("build_info rendered without EnableProcessMetrics")
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	r.EnableProcessMetrics()
	r.EnableProcessMetrics() // idempotent
	snap := r.Snapshot()
	if snap.Build == nil {
		t.Fatal("Build is nil after EnableProcessMetrics")
	}
	// A test binary has no module version or vcs stamp; the fields must
	// still be non-empty so the label set is stable.
	if snap.Build.Version == "" || snap.Build.Commit == "" || snap.Build.GoVersion == "" {
		t.Fatalf("Build has empty fields: %+v", snap.Build)
	}
	if !strings.HasPrefix(snap.Build.GoVersion, "go") {
		t.Fatalf("GoVersion = %q", snap.Build.GoVersion)
	}
	up, ok := snap.Gauges["up.seconds"]
	if !ok || up.Value < 0 {
		t.Fatalf("up.seconds = %+v ok=%v", up, ok)
	}
	if got := r.Build(); got != *snap.Build {
		t.Fatalf("Build() = %+v, snapshot %+v", got, *snap.Build)
	}

	prom := snap.Prometheus()
	if !strings.Contains(prom, "# TYPE scuba_build_info gauge") {
		t.Fatalf("no build_info TYPE line:\n%s", prom)
	}
	if !strings.Contains(prom, `scuba_build_info{version=`) || !strings.Contains(prom, `go_version="go`) {
		t.Fatalf("no build_info sample line:\n%s", prom)
	}
	if !strings.Contains(prom, "scuba_up_seconds ") {
		t.Fatalf("no scuba_up_seconds gauge:\n%s", prom)
	}
	if !strings.Contains(snap.String(), "info build_info version=") {
		t.Fatalf("text format missing build info line:\n%s", snap.String())
	}
}
