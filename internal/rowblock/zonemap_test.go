package rowblock

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scuba/internal/layout"
)

func TestSealStampsZoneMaps(t *testing.T) {
	rb := buildBlock(t, 100)
	zones := rb.ZoneMaps()
	if len(zones) != len(rb.Schema()) {
		t.Fatalf("zones = %d, schema = %d", len(zones), len(rb.Schema()))
	}

	tz := rb.ColumnZone(TimeColumn)
	if tz == nil || tz.Kind != ZoneInt {
		t.Fatalf("time zone = %+v", tz)
	}
	if tz.MinI != 1700000000 || tz.MaxI != 1700000099 {
		t.Errorf("time zone range [%d, %d]", tz.MinI, tz.MaxI)
	}

	lz := rb.ColumnZone("latency_ms")
	if lz == nil || lz.Kind != ZoneInt || lz.MinI != 10 || lz.MaxI != 59 {
		t.Errorf("latency zone = %+v", lz)
	}

	cz := rb.ColumnZone("cpu")
	if cz == nil || cz.Kind != ZoneFloat || cz.MinF != 0 || cz.MaxF != 49.5 {
		t.Errorf("cpu zone = %+v", cz)
	}

	sz := rb.ColumnZone("service")
	if sz == nil || sz.Kind != ZoneDict {
		t.Fatalf("service zone = %+v", sz)
	}
	for _, want := range []string{"svc-0", "svc-1", "svc-2"} {
		if !sz.MayContain(want) {
			t.Errorf("service zone excludes present value %q", want)
		}
	}
	if sz.MayContain("svc-7") && sz.MayContain("absent-value") && sz.MayContain("zzz") {
		t.Errorf("service zone admits every absent probe: filter is saturated or broken")
	}

	gz := rb.ColumnZone("tags")
	if gz == nil || gz.Kind != ZoneSetDict {
		t.Fatalf("tags zone = %+v", gz)
	}
	if !gz.MayContain("prod") || !gz.MayContain("tier0") || !gz.MayContain("tier1") {
		t.Errorf("tags zone excludes present members")
	}

	if rb.ColumnZone("no-such-column") != nil {
		t.Errorf("zone for absent column")
	}
}

func TestZoneMapNaNDisablesSummary(t *testing.T) {
	z := zoneOfFloats([]float64{1, nan(), 3})
	if z.Kind != ZoneNone {
		t.Errorf("NaN column zone = %+v", z)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestZoneMapRoundTrip(t *testing.T) {
	zones := []ZoneMap{
		{Kind: ZoneNone},
		{Kind: ZoneInt, MinI: -5, MaxI: 1 << 40},
		{Kind: ZoneFloat, MinF: -1.5, MaxF: 2.25},
		zoneOfStrings([]string{"a", "b", "c"}),
		zoneOfStringSets([][]string{{"x", "y"}, {"z"}}),
	}
	var buf []byte
	for _, z := range zones {
		before := len(buf)
		buf = appendZoneMap(buf, z)
		if got := len(buf) - before; got != zoneMapSize(z) {
			t.Errorf("kind %d: wrote %d bytes, zoneMapSize says %d", z.Kind, got, zoneMapSize(z))
		}
	}
	pos := 0
	for i, want := range zones {
		got, n, err := parseZoneMap(buf[pos:])
		if err != nil {
			t.Fatalf("parse zone %d: %v", i, err)
		}
		pos += n
		if got != want {
			t.Errorf("zone %d: got %+v want %+v", i, got, want)
		}
	}
	if pos != len(buf) {
		t.Errorf("parsed %d of %d bytes", pos, len(buf))
	}
}

func TestZoneMapParseCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{byte(ZoneInt)},              // truncated min/max
		{byte(ZoneDict), 1, 2},       // truncated bloom
		{99},                         // unknown kind
		{byte(ZoneSetDict), 0, 0, 0}, // truncated bloom
	}
	for i, b := range cases {
		if _, _, err := parseZoneMap(b); err == nil {
			t.Errorf("case %d: corrupt zone map accepted", i)
		}
	}
}

// TestImageV2RoundTripZones checks zone maps survive the image round trip.
func TestImageV2RoundTripZones(t *testing.T) {
	rb := buildBlock(t, 64)
	img := rb.AppendImage(nil)
	back, _, err := DecodeImage(img, true)
	if err != nil {
		t.Fatal(err)
	}
	want, got := rb.ZoneMaps(), back.ZoneMaps()
	if len(want) != len(got) {
		t.Fatalf("zones: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("zone %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestGoldenV1Image pins backward compatibility: an image written by the v1
// code (before zone maps existed) must decode with identical contents and no
// zone summaries, and the decoded rows must re-encode as a valid v2 image.
func TestGoldenV1Image(t *testing.T) {
	img, err := os.ReadFile(filepath.Join("testdata", "image-v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := DecodeImage(img, true)
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	if rb.Rows() != 64 {
		t.Fatalf("rows = %d", rb.Rows())
	}
	if len(rb.ZoneMaps()) != 0 {
		t.Errorf("v1 image decoded with %d zone maps", len(rb.ZoneMaps()))
	}
	for _, f := range rb.Schema() {
		if rb.ColumnZone(f.Name) != nil {
			t.Errorf("v1 image has a zone for %q", f.Name)
		}
	}

	// Contents must match the generator: times 1700000001+i, status
	// 200+(i%4)*100, latency i*1.5, service web/api by i%3, tags t<i%5>.
	times, err := rb.Times()
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if ts != 1700000001+int64(i) {
			t.Fatalf("time[%d] = %d", i, ts)
		}
	}
	status, err := rb.DecodeColumn("status")
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := status.(interface{ Len() int })
	if !ok || sc.Len() != 64 {
		t.Fatalf("status column: %T", status)
	}

	// The same rows re-sealed today produce a v2 image with zones; the v2
	// image must itself round-trip.
	img2 := rb.AppendImage(nil)
	if bytes.Equal(img, img2) {
		t.Fatalf("re-encoded image is still v1")
	}
	rb2, _, err := DecodeImage(img2, true)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if rb2.Rows() != rb.Rows() || rb2.Header().Size != rb.Header().Size {
		t.Errorf("re-encoded image changed contents")
	}
}

// TestZoneKindsCoverAllTypes pins that every column type seals a summary.
func TestZoneKindsCoverAllTypes(t *testing.T) {
	rb := buildBlock(t, 16)
	wantKinds := map[layout.ValueType]ZoneKind{
		layout.TypeTime:      ZoneInt,
		layout.TypeInt64:     ZoneInt,
		layout.TypeFloat64:   ZoneFloat,
		layout.TypeString:    ZoneDict,
		layout.TypeStringSet: ZoneSetDict,
	}
	for i, f := range rb.Schema() {
		if got := rb.ZoneMaps()[i].Kind; got != wantKinds[f.Type] {
			t.Errorf("column %q (%v): zone kind %d, want %d", f.Name, f.Type, got, wantKinds[f.Type])
		}
	}
}
