package rowblock

import "testing"

// FuzzDecodeImage feeds arbitrary bytes to the block-image parser: it must
// reject garbage with an error, never panic or over-read. Shared memory and
// disk contents pass through this parser on every restart.
func FuzzDecodeImage(f *testing.F) {
	b := NewBuilder(1)
	for i := 0; i < 100; i++ {
		b.AddRow(Row{Time: int64(i), Cols: map[string]Value{ //nolint:errcheck
			"s": StringValue("x"), "n": Int64Value(int64(i)),
		}})
	}
	rb, err := b.Seal()
	if err != nil {
		f.Fatal(err)
	}
	valid := rb.AppendImage(nil)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(nil))
	f.Add([]byte{0x52, 0x42, 0x4b, 0x31}) // bare magic
	f.Fuzz(func(t *testing.T, img []byte) {
		rb, _, err := DecodeImage(img, true)
		if err == nil && rb == nil {
			t.Fatal("nil block without error")
		}
		if err == nil {
			// A successfully parsed block must be internally consistent.
			if _, terr := rb.Times(); terr != nil {
				t.Fatalf("accepted block has broken time column: %v", terr)
			}
		}
	})
}
