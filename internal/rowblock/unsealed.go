package rowblock

import (
	"math"

	"scuba/internal/column"
	"scuba/internal/layout"
)

// UnsealedView is a read-only snapshot of a builder's in-progress rows, so
// queries see data the moment it is ingested, before the block seals and
// compresses. The snapshot copies the builder's column slices; subsequent
// AddRow calls do not affect it.
type UnsealedView struct {
	rows    int
	minTime int64
	maxTime int64
	times   []int64
	schema  Schema
	cols    map[string]column.Column
}

// Snapshot captures the builder's current rows. Returns nil when empty.
func (b *Builder) Snapshot() *UnsealedView {
	if len(b.times) == 0 {
		return nil
	}
	v := &UnsealedView{
		rows:   len(b.times),
		times:  append([]int64(nil), b.times...),
		schema: Schema{{Name: TimeColumn, Type: layout.TypeTime}},
		cols:   make(map[string]column.Column, len(b.names)+1),
	}
	v.minTime, v.maxTime = math.MaxInt64, math.MinInt64
	for _, t := range v.times {
		v.minTime = min(v.minTime, t)
		v.maxTime = max(v.maxTime, t)
	}
	v.cols[TimeColumn] = column.NewInt64(layout.TypeTime, v.times)
	for _, name := range b.names {
		cb := b.builders[name]
		var col column.Column
		var vt layout.ValueType
		switch cb.typ {
		case layout.TypeInt64, layout.TypeTime:
			vt = layout.TypeInt64
			col = column.NewInt64(layout.TypeInt64, append([]int64(nil), cb.ints...))
		case layout.TypeFloat64:
			vt = layout.TypeFloat64
			col = &column.Float64Column{Values: append([]float64(nil), cb.floats...)}
		case layout.TypeString:
			vt = layout.TypeString
			col = column.NewStringFromValues(cb.strs)
		case layout.TypeStringSet:
			vt = layout.TypeStringSet
			col = column.NewStringSetFromValues(cb.sets)
		}
		v.schema = append(v.schema, Field{Name: name, Type: vt})
		v.cols[name] = col
	}
	return v
}

// Rows returns the number of snapshot rows.
func (v *UnsealedView) Rows() int { return v.rows }

// Times returns the snapshot's time column.
func (v *UnsealedView) Times() ([]int64, error) { return v.times, nil }

// Overlaps reports whether the snapshot may contain rows in [from, to].
func (v *UnsealedView) Overlaps(from, to int64) bool {
	return v.minTime <= to && v.maxTime >= from
}

// Schema returns the snapshot schema.
func (v *UnsealedView) Schema() Schema { return v.schema }

// HasColumn reports whether the snapshot has the named column.
func (v *UnsealedView) HasColumn(name string) bool {
	_, ok := v.cols[name]
	return ok
}

// DecodeColumn returns the named column (already decoded — the snapshot is
// never compressed).
func (v *UnsealedView) DecodeColumn(name string) (column.Column, error) {
	if c, ok := v.cols[name]; ok {
		return c, nil
	}
	return nil, nil
}
