package rowblock

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"scuba/internal/layout"
)

// Zone maps are the C-Store-style lightweight per-column summaries stamped
// on a sealed row block: min/max for numeric columns and a small Bloom
// filter over the dictionary for string and string-set columns. Query
// execution evaluates Eq/Lt/Le/Gt/Ge (numeric) and Eq/Contains (dictionary)
// predicates against the summary and skips the whole block — no LZ4 decode,
// no per-row work — when the summary proves no row can match.
//
// Zone maps are computed once at Seal time from the raw builder values and
// persisted in the v2 block image. Blocks restored from v1 images (or the
// row-format disk backup) carry no zone maps and are always scanned.

// ZoneKind says what summary a column carries.
type ZoneKind uint8

// Zone kinds. ZoneNone means no summary: the block must be scanned.
const (
	ZoneNone ZoneKind = iota
	// ZoneInt summarizes an int64 (or time) column by [MinI, MaxI].
	ZoneInt
	// ZoneFloat summarizes a float64 column by [MinF, MaxF].
	ZoneFloat
	// ZoneDict summarizes a string column by a Bloom filter over its
	// dictionary entries.
	ZoneDict
	// ZoneSetDict is ZoneDict for a string-set column: the filter covers
	// every member of every row's set. A separate kind keeps pruning
	// type-aware — an equality predicate on a set column is an error, not a
	// prune, and vice versa for contains on a plain string column.
	ZoneSetDict
)

// zoneBloomBytes is the Bloom filter width: 256 bits comfortably covers the
// dictionaries of 65K-row blocks (low-cardinality by construction) at a
// false-positive rate that only costs an occasional unpruned block.
const zoneBloomBytes = 32

// ZoneMap is one column's summary.
type ZoneMap struct {
	Kind       ZoneKind
	MinI, MaxI int64
	MinF, MaxF float64
	Bloom      [zoneBloomBytes]byte
}

// bloomPositions derives two bit positions from one 64-bit FNV hash; two
// probes over 256 bits keep the filter simple and cheap to test.
func bloomPositions(s string) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	v := h.Sum64()
	bits := uint32(zoneBloomBytes * 8)
	return uint32(v) % bits, uint32(v>>32) % bits
}

func (z *ZoneMap) bloomAdd(s string) {
	a, b := bloomPositions(s)
	z.Bloom[a/8] |= 1 << (a % 8)
	z.Bloom[b/8] |= 1 << (b % 8)
}

// MayContain reports whether the dictionary may contain s. False means s is
// provably absent from every row of the block; true is only a maybe.
func (z *ZoneMap) MayContain(s string) bool {
	if z == nil || (z.Kind != ZoneDict && z.Kind != ZoneSetDict) {
		return true
	}
	a, b := bloomPositions(s)
	return z.Bloom[a/8]&(1<<(a%8)) != 0 && z.Bloom[b/8]&(1<<(b%8)) != 0
}

// zoneOfInts summarizes raw int64 values.
func zoneOfInts(values []int64) ZoneMap {
	z := ZoneMap{Kind: ZoneInt, MinI: math.MaxInt64, MaxI: math.MinInt64}
	for _, v := range values {
		z.MinI = min(z.MinI, v)
		z.MaxI = max(z.MaxI, v)
	}
	return z
}

// zoneOfFloats summarizes raw float64 values. NaNs disable the summary:
// NaN breaks the ordering the prune rules rely on.
func zoneOfFloats(values []float64) ZoneMap {
	z := ZoneMap{Kind: ZoneFloat, MinF: math.Inf(1), MaxF: math.Inf(-1)}
	for _, v := range values {
		if math.IsNaN(v) {
			return ZoneMap{Kind: ZoneNone}
		}
		z.MinF = math.Min(z.MinF, v)
		z.MaxF = math.Max(z.MaxF, v)
	}
	return z
}

// zoneOfStrings summarizes distinct string values (a dictionary or the raw
// value slice — duplicates only cost redundant bloom inserts).
func zoneOfStrings(values []string) ZoneMap {
	z := ZoneMap{Kind: ZoneDict}
	for _, s := range values {
		z.bloomAdd(s)
	}
	return z
}

// zoneOfStringSets summarizes every member of every row's set.
func zoneOfStringSets(values [][]string) ZoneMap {
	z := ZoneMap{Kind: ZoneSetDict}
	for _, set := range values {
		for _, s := range set {
			z.bloomAdd(s)
		}
	}
	return z
}

// ---- Serialization (the zone-map section of the v2 block image) ----
//
// Per column: u8 kind, then for ZoneInt/ZoneFloat two u64 (min, max; int64
// or IEEE-754 bits), for ZoneDict zoneBloomBytes of filter. ZoneNone has no
// payload. The section length is implied by the schema's column count.

func appendZoneMap(dst []byte, z ZoneMap) []byte {
	dst = append(dst, byte(z.Kind))
	switch z.Kind {
	case ZoneInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(z.MinI))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(z.MaxI))
	case ZoneFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(z.MinF))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(z.MaxF))
	case ZoneDict, ZoneSetDict:
		dst = append(dst, z.Bloom[:]...)
	}
	return dst
}

func zoneMapSize(z ZoneMap) int {
	switch z.Kind {
	case ZoneInt, ZoneFloat:
		return 1 + 16
	case ZoneDict, ZoneSetDict:
		return 1 + zoneBloomBytes
	default:
		return 1
	}
}

// parseZoneMap decodes one serialized zone map, returning the bytes used.
func parseZoneMap(b []byte) (ZoneMap, int, error) {
	if len(b) < 1 {
		return ZoneMap{}, 0, fmt.Errorf("%w: truncated zone map", ErrImageCorrupt)
	}
	z := ZoneMap{Kind: ZoneKind(b[0])}
	switch z.Kind {
	case ZoneNone:
		return z, 1, nil
	case ZoneInt, ZoneFloat:
		if len(b) < 17 {
			return ZoneMap{}, 0, fmt.Errorf("%w: truncated zone map", ErrImageCorrupt)
		}
		if z.Kind == ZoneInt {
			z.MinI = int64(binary.LittleEndian.Uint64(b[1:]))
			z.MaxI = int64(binary.LittleEndian.Uint64(b[9:]))
		} else {
			z.MinF = math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))
			z.MaxF = math.Float64frombits(binary.LittleEndian.Uint64(b[9:]))
		}
		return z, 17, nil
	case ZoneDict, ZoneSetDict:
		if len(b) < 1+zoneBloomBytes {
			return ZoneMap{}, 0, fmt.Errorf("%w: truncated zone map", ErrImageCorrupt)
		}
		copy(z.Bloom[:], b[1:1+zoneBloomBytes])
		return z, 1 + zoneBloomBytes, nil
	default:
		return ZoneMap{}, 0, fmt.Errorf("%w: zone map kind %d", ErrImageCorrupt, b[0])
	}
}

// ColumnZone returns the named column's zone map, or nil when the column is
// absent or the block carries no summary for it (v1 images, row-format
// restores). Callers must treat nil as "must scan".
func (b *RowBlock) ColumnZone(name string) *ZoneMap {
	i := b.schema.Index(name)
	if i < 0 || i >= len(b.zones) {
		return nil
	}
	if b.zones[i].Kind == ZoneNone {
		return nil
	}
	return &b.zones[i]
}

// ZoneMaps returns the per-column zone maps parallel to the schema (nil when
// the block carries none). Callers must not modify the slice.
func (b *RowBlock) ZoneMaps() []ZoneMap { return b.zones }

// sealZoneMap builds the summary for one column builder.
func (cb *colBuilder) sealZoneMap() ZoneMap {
	switch cb.typ {
	case layout.TypeInt64, layout.TypeTime:
		return zoneOfInts(cb.ints)
	case layout.TypeFloat64:
		return zoneOfFloats(cb.floats)
	case layout.TypeString:
		return zoneOfStrings(cb.strs)
	case layout.TypeStringSet:
		return zoneOfStringSets(cb.sets)
	default:
		return ZoneMap{Kind: ZoneNone}
	}
}
