package rowblock

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"scuba/internal/column"
	"scuba/internal/layout"
)

// buildBlock seals a small block with int, float, string and set columns.
func buildBlock(t *testing.T, rows int) *RowBlock {
	t.Helper()
	b := NewBuilder(1700000000)
	for i := 0; i < rows; i++ {
		err := b.AddRow(Row{
			Time: 1700000000 + int64(i),
			Cols: map[string]Value{
				"latency_ms": Int64Value(int64(10 + i%50)),
				"cpu":        Float64Value(float64(i) * 0.5),
				"service":    StringValue(fmt.Sprintf("svc-%d", i%3)),
				"tags":       SetValue("prod", fmt.Sprintf("tier%d", i%2)),
			},
		})
		if err != nil {
			t.Fatalf("AddRow %d: %v", i, err)
		}
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return rb
}

func TestBuilderSeal(t *testing.T) {
	rb := buildBlock(t, 100)
	h := rb.Header()
	if h.RowCount != 100 {
		t.Errorf("RowCount = %d", h.RowCount)
	}
	if h.MinTime != 1700000000 || h.MaxTime != 1700000099 {
		t.Errorf("time range [%d, %d]", h.MinTime, h.MaxTime)
	}
	if h.Created != 1700000000 {
		t.Errorf("Created = %d", h.Created)
	}
	if rb.NumColumns() != 5 { // time + 4 data columns
		t.Errorf("NumColumns = %d", rb.NumColumns())
	}
	if rb.Schema()[0].Name != TimeColumn {
		t.Errorf("first column = %q", rb.Schema()[0].Name)
	}
	var total int64
	for i := 0; i < rb.NumColumns(); i++ {
		total += int64(rb.Column(i).Size())
	}
	if total != h.Size {
		t.Errorf("header Size %d != sum of blobs %d", h.Size, total)
	}
}

func TestColumnValues(t *testing.T) {
	rb := buildBlock(t, 10)
	times, err := rb.Times()
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if ts != 1700000000+int64(i) {
			t.Errorf("time[%d] = %d", i, ts)
		}
	}
	col, err := rb.DecodeColumn("service")
	if err != nil {
		t.Fatal(err)
	}
	sc := col.(*column.StringColumn)
	for i := 0; i < 10; i++ {
		if want := fmt.Sprintf("svc-%d", i%3); sc.Value(i) != want {
			t.Errorf("service[%d] = %q, want %q", i, sc.Value(i), want)
		}
	}
	if _, err := rb.DecodeColumn("nope"); err == nil {
		t.Error("decoding missing column succeeded")
	}
}

func TestSparseColumnsBackfill(t *testing.T) {
	b := NewBuilder(1)
	// First row has only colA; colB appears at row 2; row 3 omits colA.
	if err := b.AddRow(Row{Time: 1, Cols: map[string]Value{"a": Int64Value(11)}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow(Row{Time: 2, Cols: map[string]Value{"a": Int64Value(22), "b": StringValue("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow(Row{Time: 3, Cols: map[string]Value{"b": StringValue("y")}}); err != nil {
		t.Fatal(err)
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	aCol, err := rb.DecodeColumn("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := aCol.(*column.Int64Column).Values; !reflect.DeepEqual(got, []int64{11, 22, 0}) {
		t.Errorf("a = %v", got)
	}
	bCol, err := rb.DecodeColumn("b")
	if err != nil {
		t.Fatal(err)
	}
	sc := bCol.(*column.StringColumn)
	if sc.Value(0) != "" || sc.Value(1) != "x" || sc.Value(2) != "y" {
		t.Errorf("b = %q %q %q", sc.Value(0), sc.Value(1), sc.Value(2))
	}
}

func TestTypeConflict(t *testing.T) {
	b := NewBuilder(1)
	if err := b.AddRow(Row{Time: 1, Cols: map[string]Value{"x": Int64Value(1)}}); err != nil {
		t.Fatal(err)
	}
	err := b.AddRow(Row{Time: 2, Cols: map[string]Value{"x": StringValue("oops")}})
	if !errors.Is(err, ErrTypeConflict) {
		t.Errorf("err = %v", err)
	}
	// The failed row must not have been committed.
	if b.Rows() != 1 {
		t.Errorf("Rows = %d after rejected row", b.Rows())
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rb.Rows() != 1 {
		t.Errorf("sealed rows = %d", rb.Rows())
	}
}

func TestReservedTimeName(t *testing.T) {
	b := NewBuilder(1)
	err := b.AddRow(Row{Time: 1, Cols: map[string]Value{"time": Int64Value(9)}})
	if !errors.Is(err, ErrReservedName) {
		t.Errorf("err = %v", err)
	}
}

func TestRowCap(t *testing.T) {
	b := NewBuilder(1)
	for i := 0; i < MaxRows; i++ {
		if err := b.AddRow(Row{Time: int64(i)}); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if !b.Full() {
		t.Error("builder not full at MaxRows")
	}
	if err := b.AddRow(Row{Time: 0}); !errors.Is(err, ErrFull) {
		t.Errorf("err = %v", err)
	}
}

func TestSealEmpty(t *testing.T) {
	if _, err := NewBuilder(1).Seal(); err == nil {
		t.Error("sealing empty builder succeeded")
	}
}

func TestOverlaps(t *testing.T) {
	rb := buildBlock(t, 10) // times 1700000000..1700000009
	cases := []struct {
		from, to int64
		want     bool
	}{
		{1700000000, 1700000009, true},
		{1699999990, 1699999999, false},
		{1700000010, 1700000020, false},
		{1700000005, 1700000005, true},
		{1699999999, 1700000000, true},
		{1700000009, 1700000100, true},
	}
	for _, c := range cases {
		if got := rb.Overlaps(c.from, c.to); got != c.want {
			t.Errorf("Overlaps(%d, %d) = %v", c.from, c.to, got)
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	rb := buildBlock(t, 500)
	img := rb.AppendImage(nil)
	if len(img) != rb.ImageSize() {
		t.Fatalf("image is %d bytes, ImageSize says %d", len(img), rb.ImageSize())
	}
	got, consumed, err := DecodeImage(img, true)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(img) {
		t.Errorf("consumed %d of %d", consumed, len(img))
	}
	if got.Header() != rb.Header() {
		t.Errorf("header: got %+v want %+v", got.Header(), rb.Header())
	}
	if !reflect.DeepEqual(got.Schema(), rb.Schema()) {
		t.Errorf("schema mismatch: %v vs %v", got.Schema(), rb.Schema())
	}
	wantTimes, _ := rb.Times()
	gotTimes, err := got.Times()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTimes, wantTimes) {
		t.Error("times differ after image round trip")
	}
}

func TestImageZeroCopy(t *testing.T) {
	rb := buildBlock(t, 50)
	img := rb.AppendImage(nil)
	got, _, err := DecodeImage(img, false)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy blobs must alias the image buffer.
	blob := got.Column(0).Blob()
	found := false
	for i := 0; i+len(blob) <= len(img); i++ {
		if &img[i] == &blob[0] {
			found = true
			break
		}
	}
	if !found {
		t.Error("zero-copy decode did not alias image buffer")
	}
}

func TestImageWriterIncremental(t *testing.T) {
	rb := buildBlock(t, 200)
	dst := make([]byte, rb.ImageSize())
	w, err := rb.NewImageWriter(dst)
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	for !w.Done() {
		n := w.CopyColumn()
		if n <= 0 {
			t.Fatal("CopyColumn returned 0 before Done")
		}
		// Simulate the shutdown path: release the heap column just copied.
		rb.ReleaseColumn(copies)
		copies++
	}
	if copies != rb.NumColumns() {
		t.Errorf("copied %d columns, want %d", copies, rb.NumColumns())
	}
	if !rb.Released() {
		t.Error("block not marked released")
	}
	if w.CopyColumn() != 0 {
		t.Error("CopyColumn after Done returned bytes")
	}
	// The streamed image must decode identically to AppendImage.
	got, _, err := DecodeImage(dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 200 {
		t.Errorf("rows = %d", got.Rows())
	}
}

func TestImageWriterShortBuffer(t *testing.T) {
	rb := buildBlock(t, 10)
	if _, err := rb.NewImageWriter(make([]byte, rb.ImageSize()-1)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDecodeImageCorrupt(t *testing.T) {
	rb := buildBlock(t, 100)
	img := rb.AppendImage(nil)

	if _, _, err := DecodeImage(img[:20], true); err == nil {
		t.Error("truncated image decoded")
	}
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xff
	if _, _, err := DecodeImage(bad, true); err == nil {
		t.Error("bad magic decoded")
	}
	// Corrupt a byte inside a column blob: the RBC checksum must catch it.
	bad2 := append([]byte(nil), img...)
	bad2[len(bad2)-20] ^= 0xff
	if _, _, err := DecodeImage(bad2, true); err == nil {
		t.Error("corrupt column decoded")
	}
}

func TestDecodeImageTrailingData(t *testing.T) {
	// Images are read out of larger segments; trailing bytes must be ignored
	// and the consumed count must be exact.
	rb := buildBlock(t, 30)
	img := rb.AppendImage(nil)
	padded := append(append([]byte(nil), img...), 0xde, 0xad, 0xbe, 0xef)
	got, consumed, err := DecodeImage(padded, true)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(img) {
		t.Errorf("consumed = %d, want %d", consumed, len(img))
	}
	if got.Rows() != 30 {
		t.Errorf("rows = %d", got.Rows())
	}
}

func TestFromColumnsValidation(t *testing.T) {
	rb := buildBlock(t, 10)
	hdr := rb.Header()
	schema := rb.Schema()
	cols := make([]*layout.RBC, rb.NumColumns())
	for i := range cols {
		cols[i] = rb.Column(i)
	}
	if _, err := FromColumns(hdr, schema, cols[:len(cols)-1]); err == nil {
		t.Error("mismatched column count accepted")
	}
	badHdr := hdr
	badHdr.RowCount = 99
	if _, err := FromColumns(badHdr, schema, cols); err == nil {
		t.Error("mismatched row count accepted")
	}
	badSchema := append(Schema(nil), schema...)
	badSchema[0].Name = "nottime"
	if _, err := FromColumns(hdr, badSchema, cols); err == nil {
		t.Error("missing time column accepted")
	}
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{{Name: "time"}, {Name: "a"}, {Name: "b"}}
	if s.Index("a") != 1 || s.Index("time") != 0 || s.Index("zz") != -1 {
		t.Errorf("Index results: %d %d %d", s.Index("a"), s.Index("time"), s.Index("zz"))
	}
}

func TestRawBytesGrows(t *testing.T) {
	b := NewBuilder(1)
	if err := b.AddRow(Row{Time: 1, Cols: map[string]Value{"s": StringValue("hello world")}}); err != nil {
		t.Fatal(err)
	}
	if b.RawBytes() < 8+11 {
		t.Errorf("RawBytes = %d", b.RawBytes())
	}
}

func TestByteCapSealsEarly(t *testing.T) {
	// §2.1: the row block is capped at 1 GB pre-compression even when it
	// holds fewer than 65K rows. Exercised here with a lowered cap.
	b := NewBuilder(1)
	b.SetByteCapForTest(1 << 12) // 4 KiB
	big := make([]byte, 512)
	for i := range big {
		big[i] = 'x'
	}
	rows := 0
	for !b.Full() {
		err := b.AddRow(Row{Time: int64(rows), Cols: map[string]Value{
			"payload": StringValue(string(big)),
		}})
		if err != nil {
			t.Fatal(err)
		}
		rows++
		if rows > MaxRows {
			t.Fatal("byte cap never triggered")
		}
	}
	if rows >= MaxRows {
		t.Fatalf("filled by rows (%d), not bytes", rows)
	}
	if err := b.AddRow(Row{Time: 0}); !errors.Is(err, ErrFull) {
		t.Errorf("err = %v", err)
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rb.Rows() != rows {
		t.Errorf("sealed rows = %d, want %d", rb.Rows(), rows)
	}
}
