package rowblock

import (
	"reflect"
	"testing"

	"scuba/internal/column"
	"scuba/internal/layout"
)

func TestSnapshotEmpty(t *testing.T) {
	b := NewBuilder(1)
	if v := b.Snapshot(); v != nil {
		t.Errorf("empty snapshot = %v", v)
	}
}

func TestSnapshotContents(t *testing.T) {
	b := NewBuilder(1)
	rows := []Row{
		{Time: 10, Cols: map[string]Value{"s": StringValue("a"), "i": Int64Value(1), "f": Float64Value(0.5), "set": SetValue("x")}},
		{Time: 30, Cols: map[string]Value{"s": StringValue("b"), "i": Int64Value(2), "f": Float64Value(1.5), "set": SetValue("x", "y")}},
		{Time: 20, Cols: map[string]Value{"s": StringValue("a"), "i": Int64Value(3), "f": Float64Value(2.5), "set": SetValue()}},
	}
	for _, r := range rows {
		if err := b.AddRow(r); err != nil {
			t.Fatal(err)
		}
	}
	v := b.Snapshot()
	if v.Rows() != 3 {
		t.Fatalf("Rows = %d", v.Rows())
	}
	times, err := v.Times()
	if err != nil || !reflect.DeepEqual(times, []int64{10, 30, 20}) {
		t.Fatalf("times = %v, %v", times, err)
	}
	if !v.Overlaps(15, 25) || v.Overlaps(31, 40) || v.Overlaps(0, 9) {
		t.Error("Overlaps wrong")
	}
	if !v.HasColumn("s") || v.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	if v.Schema()[0].Name != TimeColumn {
		t.Errorf("schema = %v", v.Schema())
	}

	sCol, err := v.DecodeColumn("s")
	if err != nil {
		t.Fatal(err)
	}
	sc := sCol.(*column.StringColumn)
	if sc.Value(0) != "a" || sc.Value(1) != "b" || sc.Value(2) != "a" {
		t.Error("string column wrong")
	}
	iCol, _ := v.DecodeColumn("i")
	if got := iCol.(*column.Int64Column).Values; !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Errorf("int column = %v", got)
	}
	fCol, _ := v.DecodeColumn("f")
	if got := fCol.(*column.Float64Column).Values; !reflect.DeepEqual(got, []float64{0.5, 1.5, 2.5}) {
		t.Errorf("float column = %v", got)
	}
	setCol, _ := v.DecodeColumn("set")
	ssc := setCol.(*column.StringSetColumn)
	if !ssc.Contains(1, "y") || ssc.Contains(2, "x") {
		t.Error("set column wrong")
	}
	if missing, err := v.DecodeColumn("ghost"); err != nil || missing != nil {
		t.Errorf("missing column = %v, %v", missing, err)
	}
	// The time column is reachable as a column too.
	tCol, _ := v.DecodeColumn(TimeColumn)
	if tCol.(*column.Int64Column).Type() != layout.TypeTime {
		t.Error("time column type wrong")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	b := NewBuilder(1)
	if err := b.AddRow(Row{Time: 1, Cols: map[string]Value{"i": Int64Value(1)}}); err != nil {
		t.Fatal(err)
	}
	v := b.Snapshot()
	// Rows added after the snapshot must not appear in it.
	if err := b.AddRow(Row{Time: 2, Cols: map[string]Value{"i": Int64Value(2)}}); err != nil {
		t.Fatal(err)
	}
	if v.Rows() != 1 {
		t.Errorf("snapshot grew to %d rows", v.Rows())
	}
	iCol, _ := v.DecodeColumn("i")
	if got := iCol.(*column.Int64Column).Values; len(got) != 1 || got[0] != 1 {
		t.Errorf("snapshot values = %v", got)
	}
}

func TestSnapshotMatchesSealedBlock(t *testing.T) {
	// A snapshot and the block sealed from the same builder must agree on
	// every value (the unsealed path takes no compression shortcuts).
	mk := func() *Builder {
		b := NewBuilder(7)
		for i := 0; i < 500; i++ {
			err := b.AddRow(Row{Time: int64(1000 + i), Cols: map[string]Value{
				"svc": StringValue([]string{"a", "b", "c"}[i%3]),
				"n":   Int64Value(int64(i * i)),
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	v := mk().Snapshot()
	rb, err := mk().Seal()
	if err != nil {
		t.Fatal(err)
	}
	vTimes, _ := v.Times()
	rbTimes, _ := rb.Times()
	if !reflect.DeepEqual(vTimes, rbTimes) {
		t.Error("times differ")
	}
	vN, _ := v.DecodeColumn("n")
	rbN, _ := rb.DecodeColumn("n")
	if !reflect.DeepEqual(vN.(*column.Int64Column).Values, rbN.(*column.Int64Column).Values) {
		t.Error("int values differ")
	}
	vS, _ := v.DecodeColumn("svc")
	rbS, _ := rb.DecodeColumn("svc")
	for i := 0; i < 500; i++ {
		if vS.(*column.StringColumn).Value(i) != rbS.(*column.StringColumn).Value(i) {
			t.Fatalf("string row %d differs", i)
		}
	}
}
