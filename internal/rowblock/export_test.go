package rowblock

// SetByteCapForTest lowers the 1 GB pre-compression cap so tests can
// exercise byte-triggered sealing without gigabytes of data.
func (b *Builder) SetByteCapForTest(n int64) { b.byteCap = n }
