// Package rowblock implements Scuba's row blocks (Figure 2). A row block
// holds up to 65,536 consecutively-arrived rows (capped at 1 GB of
// pre-compression data), organized as a header, a schema, and one row block
// column (RBC) per column. Different row blocks of the same table may have
// different schemas; rows that lack a column get that type's zero value.
//
// A sealed row block is immutable. Its header records the size in bytes, the
// row count, the minimum and maximum values of the required "time" column,
// and the block's creation timestamp; query processing uses min/max time to
// skip blocks without touching their columns (§2.1).
package rowblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"scuba/internal/column"
	"scuba/internal/layout"
)

// Capacity limits from the paper (§2.1): a row block contains 65,536 rows
// and is capped at 1 GB pre-compression even when not full.
const (
	MaxRows  = 65536
	MaxBytes = 1 << 30
)

// TimeColumn is the name of the required unix-timestamp column present in
// every row. Timestamps are event times, not unique (§2.1).
const TimeColumn = "time"

// Field is one column in a row block's schema.
type Field struct {
	Name string
	Type layout.ValueType
}

// Schema describes the columns of one row block: names and types (Figure 2).
type Schema []Field

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Value is one cell of a row. Exactly the field matching Type is meaningful.
type Value struct {
	Type  layout.ValueType
	Int   int64
	Float float64
	Str   string
	Set   []string
}

// Int64Value, Float64Value, StringValue and SetValue build typed cells.
func Int64Value(v int64) Value     { return Value{Type: layout.TypeInt64, Int: v} }
func Float64Value(v float64) Value { return Value{Type: layout.TypeFloat64, Float: v} }
func StringValue(v string) Value   { return Value{Type: layout.TypeString, Str: v} }
func SetValue(v ...string) Value   { return Value{Type: layout.TypeStringSet, Set: v} }

// Row is one ingested event: a required timestamp plus named columns.
type Row struct {
	Time int64
	Cols map[string]Value
}

// Header describes general properties of a row block (Figure 2).
type Header struct {
	Size     int64 // total bytes of all RBC blobs
	RowCount int
	MinTime  int64
	MaxTime  int64
	Created  int64 // when the row block was first created
}

// Source is the foreign memory a zero-copy block's RBC blobs alias — for
// instant-on restarts, a refcounted mmap'd shm segment view. Retain pins the
// memory for a reader and reports false when the source is already gone (the
// last reference dropped); Release undoes one Retain. A block with a nil
// source owns its memory outright.
type Source interface {
	Retain() bool
	Release()
}

// ReleaseSources drops the residency reference of every foreign-memory block
// in blocks (no-op for heap-owned blocks). Removers call it exactly once per
// block they take out of circulation — see the refcount discipline on
// shm.MappedView.
func ReleaseSources(blocks []*RowBlock) {
	for _, rb := range blocks {
		if rb != nil && rb.src != nil {
			rb.src.Release()
		}
	}
}

// RowBlock is a sealed, immutable block.
type RowBlock struct {
	hdr    Header
	schema Schema
	cols   []*layout.RBC // parallel to schema; nil after ReleaseColumn
	// zones holds per-column zone maps parallel to schema. Empty for blocks
	// restored from v1 images or the row-format disk backup: such blocks are
	// always scanned.
	zones []ZoneMap
	// src is non-nil while the RBC blobs alias foreign memory (a mapped shm
	// segment). Readers must hold a Retain on it across any column access.
	src Source
}

// SetSource marks the block's columns as aliasing foreign memory owned by s.
func (b *RowBlock) SetSource(s Source) { b.src = s }

// Source returns the foreign memory owner, or nil for heap-owned blocks.
func (b *RowBlock) Source() Source { return b.src }

// CloneToHeap deep-copies the block's RBC blobs into fresh heap memory and
// returns a source-free block with the same header, schema, and zone maps.
// The promotion path uses it to move a shm-resident block heap-side; the
// blobs were CRC-verified when the view decoded them, so the re-parse is
// trusted.
func (b *RowBlock) CloneToHeap() (*RowBlock, error) {
	cols := make([]*layout.RBC, len(b.cols))
	for i, c := range b.cols {
		if c == nil {
			return nil, fmt.Errorf("rowblock: cloning released column %d", i)
		}
		rbc, err := layout.ParseTrusted(append([]byte(nil), c.Blob()...))
		if err != nil {
			return nil, fmt.Errorf("rowblock: clone column %q: %w", b.schema[i].Name, err)
		}
		cols[i] = rbc
	}
	return &RowBlock{hdr: b.hdr, schema: b.schema, cols: cols, zones: b.zones}, nil
}

// Header returns the block header.
func (b *RowBlock) Header() Header { return b.hdr }

// Schema returns the block schema. Callers must not modify it.
func (b *RowBlock) Schema() Schema { return b.schema }

// NumColumns returns the number of columns.
func (b *RowBlock) NumColumns() int { return len(b.cols) }

// Rows returns the number of rows.
func (b *RowBlock) Rows() int { return b.hdr.RowCount }

// Column returns the i'th RBC, or nil if it has been released.
func (b *RowBlock) Column(i int) *layout.RBC { return b.cols[i] }

// HasColumn reports whether the named column is in the schema.
func (b *RowBlock) HasColumn(name string) bool { return b.schema.Index(name) >= 0 }

// ColumnByName returns the RBC for the named column, or nil.
func (b *RowBlock) ColumnByName(name string) *layout.RBC {
	if i := b.schema.Index(name); i >= 0 {
		return b.cols[i]
	}
	return nil
}

// DecodeColumn decodes the named column. Data stays compressed in memory;
// queries decode on demand.
func (b *RowBlock) DecodeColumn(name string) (column.Column, error) {
	rbc := b.ColumnByName(name)
	if rbc == nil {
		return nil, fmt.Errorf("rowblock: no column %q", name)
	}
	return column.Decode(rbc)
}

// Times decodes the required time column.
func (b *RowBlock) Times() ([]int64, error) {
	rbc := b.ColumnByName(TimeColumn)
	if rbc == nil {
		return nil, errors.New("rowblock: missing time column")
	}
	return column.DecodeInt64(rbc)
}

// Overlaps reports whether the block may contain rows in [from, to].
// Nearly all queries carry time predicates; this is the index (§2.1).
func (b *RowBlock) Overlaps(from, to int64) bool {
	return b.hdr.MinTime <= to && b.hdr.MaxTime >= from
}

// ReleaseColumn drops the i'th RBC so its heap memory can be reclaimed.
// Shutdown copies one RBC at a time into shared memory and releases each as
// it goes, keeping the process footprint flat (§4.4, Figure 6).
func (b *RowBlock) ReleaseColumn(i int) { b.cols[i] = nil }

// Released reports whether any column has been released; such a block is no
// longer queryable.
func (b *RowBlock) Released() bool {
	for _, c := range b.cols {
		if c == nil {
			return true
		}
	}
	return false
}

// Builder accumulates rows and seals them into a RowBlock.
type Builder struct {
	created  int64
	times    []int64
	names    []string // column order of first appearance
	builders map[string]*colBuilder
	rawBytes int64 // pre-compression size estimate, for the 1 GB cap
	byteCap  int64 // defaults to MaxBytes; tests lower it
}

type colBuilder struct {
	typ     layout.ValueType
	ints    []int64
	floats  []float64
	strs    []string
	sets    [][]string
	rowsLen int // number of rows appended so far (for backfill)
}

// NewBuilder returns a builder; created is the block creation timestamp.
func NewBuilder(created int64) *Builder {
	return &Builder{created: created, builders: make(map[string]*colBuilder), byteCap: MaxBytes}
}

// Rows returns the number of rows added so far.
func (b *Builder) Rows() int { return len(b.times) }

// RawBytes returns the pre-compression size estimate.
func (b *Builder) RawBytes() int64 { return b.rawBytes }

// Full reports whether the block has hit the row or byte cap. The byte cap
// means a block can seal with far fewer than 65K rows: "the row block is
// capped at 1 GB, pre-compression, even if there are fewer than 65K rows"
// (§2.1).
func (b *Builder) Full() bool {
	return len(b.times) >= MaxRows || b.rawBytes >= b.byteCap
}

// Errors returned by AddRow.
var (
	ErrFull         = errors.New("rowblock: block is full")
	ErrTypeConflict = errors.New("rowblock: column type conflict")
	ErrReservedName = errors.New("rowblock: 'time' is a reserved column name")
)

// AddRow appends one row. A column seen for the first time is backfilled
// with zero values for earlier rows; a row missing a known column gets the
// zero value.
func (b *Builder) AddRow(r Row) error {
	if b.Full() {
		return ErrFull
	}
	if _, ok := r.Cols[TimeColumn]; ok {
		return ErrReservedName
	}
	for name, v := range r.Cols {
		cb, ok := b.builders[name]
		if !ok {
			cb = &colBuilder{typ: v.Type}
			cb.backfill(len(b.times))
			b.builders[name] = cb
			b.names = append(b.names, name)
		}
		if cb.typ != v.Type {
			return fmt.Errorf("%w: column %q is %v, row has %v", ErrTypeConflict, name, cb.typ, v.Type)
		}
	}
	// Commit only after validation so a failed row leaves no partial state.
	b.times = append(b.times, r.Time)
	b.rawBytes += 8
	for name, cb := range b.builders {
		v, ok := r.Cols[name]
		if !ok {
			v = Value{Type: cb.typ}
		}
		b.rawBytes += cb.append(v)
	}
	return nil
}

func (cb *colBuilder) backfill(rows int) {
	for i := 0; i < rows; i++ {
		cb.append(Value{Type: cb.typ})
	}
}

// append stores one value and returns its pre-compression byte size.
func (cb *colBuilder) append(v Value) int64 {
	cb.rowsLen++
	switch cb.typ {
	case layout.TypeInt64, layout.TypeTime:
		cb.ints = append(cb.ints, v.Int)
		return 8
	case layout.TypeFloat64:
		cb.floats = append(cb.floats, v.Float)
		return 8
	case layout.TypeString:
		cb.strs = append(cb.strs, v.Str)
		return int64(len(v.Str)) + 1
	case layout.TypeStringSet:
		cb.sets = append(cb.sets, v.Set)
		n := int64(1)
		for _, s := range v.Set {
			n += int64(len(s)) + 1
		}
		return n
	default:
		panic(fmt.Sprintf("rowblock: bad column type %v", cb.typ))
	}
}

// Seal compresses all columns and returns the immutable block. The builder
// must not be reused afterwards.
func (b *Builder) Seal() (*RowBlock, error) {
	if len(b.times) == 0 {
		return nil, errors.New("rowblock: sealing empty block")
	}
	minT, maxT := int64(math.MaxInt64), int64(math.MinInt64)
	for _, t := range b.times {
		minT = min(minT, t)
		maxT = max(maxT, t)
	}
	schema := Schema{{Name: TimeColumn, Type: layout.TypeTime}}
	blobs := [][]byte{column.EncodeInt64(layout.TypeTime, b.times)}
	// Zone maps are stamped from the raw values before encoding, so the
	// query path can disprove predicates without decompressing anything.
	zones := []ZoneMap{zoneOfInts(b.times)}
	for _, name := range b.names {
		cb := b.builders[name]
		var blob []byte
		var vt layout.ValueType
		switch cb.typ {
		case layout.TypeInt64, layout.TypeTime:
			vt = layout.TypeInt64
			blob = column.EncodeInt64(layout.TypeInt64, cb.ints)
		case layout.TypeFloat64:
			vt = layout.TypeFloat64
			blob = column.EncodeFloat64(cb.floats)
		case layout.TypeString:
			vt = layout.TypeString
			blob = column.EncodeString(cb.strs)
		case layout.TypeStringSet:
			vt = layout.TypeStringSet
			blob = column.EncodeStringSet(cb.sets)
		}
		schema = append(schema, Field{Name: name, Type: vt})
		blobs = append(blobs, blob)
		zones = append(zones, cb.sealZoneMap())
	}
	var size int64
	cols := make([]*layout.RBC, len(blobs))
	for i, blob := range blobs {
		rbc, err := layout.ParseTrusted(blob)
		if err != nil {
			return nil, fmt.Errorf("rowblock: sealing column %q: %w", schema[i].Name, err)
		}
		cols[i] = rbc
		size += int64(len(blob))
	}
	return &RowBlock{
		hdr: Header{
			Size:     size,
			RowCount: len(b.times),
			MinTime:  minT,
			MaxTime:  maxT,
			Created:  b.created,
		},
		schema: schema,
		cols:   cols,
		zones:  zones,
	}, nil
}

// FromColumns assembles a sealed block directly from parsed RBCs; the disk
// and shm restore paths use it. The first schema entry must be the time
// column, and hdr.Size/RowCount must match the columns.
func FromColumns(hdr Header, schema Schema, cols []*layout.RBC) (*RowBlock, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("rowblock: %d schema fields, %d columns", len(schema), len(cols))
	}
	if len(schema) == 0 || schema[0].Name != TimeColumn {
		return nil, errors.New("rowblock: first column must be 'time'")
	}
	var size int64
	for i, c := range cols {
		if c.NumItems() != hdr.RowCount {
			return nil, fmt.Errorf("rowblock: column %q has %d items, header says %d rows",
				schema[i].Name, c.NumItems(), hdr.RowCount)
		}
		size += int64(c.Size())
	}
	if size != hdr.Size {
		return nil, fmt.Errorf("%w: header size %d, columns total %d", ErrImageCorrupt, hdr.Size, size)
	}
	return &RowBlock{hdr: hdr, schema: schema, cols: cols}, nil
}

// ---- Block image: the position-independent serialized form (Figure 4) ----
//
// Because the number and sizes of the RBCs are known when the image is
// allocated, the image lays out header, schema, zone maps, a column offset
// table, and then the RBC blobs contiguously — one less level of
// indirection than the heap layout.
//
//	u32  magic "RBK2" ("RBK1" for version-1 images, which have no zone maps)
//	u64  image size in bytes
//	u64  row count
//	i64  min time, max time, created
//	u32  number of columns
//	per column: u16 name length, name bytes, u8 type
//	per column: zone map (v2 only; u8 kind + kind-dependent payload)
//	per column: u64 offset of the RBC blob from the image base
//	RBC blobs, contiguous
//
// New images are always written in v2. v1 images (written before zone maps
// existed) still decode; their blocks simply carry no zone maps and are
// never pruned.

// ImageMagic identifies a version-1 serialized row block image (no zone
// maps). Readers accept it forever; writers no longer produce it.
const ImageMagic uint32 = 0x314b4252 // "RBK1"

// ImageMagicV2 identifies a version-2 image: v1 plus a per-column zone-map
// section between the schema and the offset table.
const ImageMagicV2 uint32 = 0x324b4252 // "RBK2"

// ErrImageCorrupt is returned for structurally invalid block images.
var ErrImageCorrupt = errors.New("rowblock: corrupt block image")

// imagePrefix serializes everything before the RBC blobs.
func (b *RowBlock) imagePrefix() []byte {
	var p []byte
	p = binary.LittleEndian.AppendUint32(p, ImageMagicV2)
	p = binary.LittleEndian.AppendUint64(p, 0) // image size, patched below
	p = binary.LittleEndian.AppendUint64(p, uint64(b.hdr.RowCount))
	p = binary.LittleEndian.AppendUint64(p, uint64(b.hdr.MinTime))
	p = binary.LittleEndian.AppendUint64(p, uint64(b.hdr.MaxTime))
	p = binary.LittleEndian.AppendUint64(p, uint64(b.hdr.Created))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b.schema)))
	for _, f := range b.schema {
		p = binary.LittleEndian.AppendUint16(p, uint16(len(f.Name)))
		p = append(p, f.Name...)
		p = append(p, byte(f.Type))
	}
	for i := range b.schema {
		p = appendZoneMap(p, b.zoneAt(i))
	}
	offsetTable := len(p)
	off := uint64(offsetTable + 8*len(b.cols))
	for _, c := range b.cols {
		p = binary.LittleEndian.AppendUint64(p, off)
		off += uint64(c.Size())
	}
	binary.LittleEndian.PutUint64(p[4:], off) // total image size
	return p
}

// zoneAt returns the i'th column's zone map (ZoneNone when the block
// carries no summaries, e.g. after a v1 or row-format restore).
func (b *RowBlock) zoneAt(i int) ZoneMap {
	if i >= len(b.zones) {
		return ZoneMap{Kind: ZoneNone}
	}
	return b.zones[i]
}

// ImageSize returns the serialized image size in bytes.
func (b *RowBlock) ImageSize() int {
	n := 4 + 8 + 8 + 8*3 + 4
	for _, f := range b.schema {
		n += 2 + len(f.Name) + 1
	}
	for i := range b.schema {
		n += zoneMapSize(b.zoneAt(i))
	}
	n += 8 * len(b.cols)
	for _, c := range b.cols {
		n += c.Size()
	}
	return n
}

// AppendImage serializes the whole block (prefix plus all columns).
func (b *RowBlock) AppendImage(dst []byte) []byte {
	dst = append(dst, b.imagePrefix()...)
	for _, c := range b.cols {
		dst = append(dst, c.Blob()...)
	}
	return dst
}

// ImageWriter streams a block image into a caller-provided buffer one column
// at a time, so shutdown can release each heap column right after copying it
// (Figure 6). The destination must be ImageSize() bytes.
type ImageWriter struct {
	block *RowBlock
	dst   []byte
	pos   int
	next  int // next column to copy
}

// NewImageWriter writes the prefix immediately and prepares column copies.
func (b *RowBlock) NewImageWriter(dst []byte) (*ImageWriter, error) {
	if len(dst) < b.ImageSize() {
		return nil, fmt.Errorf("rowblock: image needs %d bytes, have %d", b.ImageSize(), len(dst))
	}
	prefix := b.imagePrefix()
	copy(dst, prefix)
	return &ImageWriter{block: b, dst: dst, pos: len(prefix)}, nil
}

// CopyColumn copies the next RBC into the image and returns its size, or 0
// when all columns are done. The caller releases the heap column afterwards.
func (w *ImageWriter) CopyColumn() int {
	if w.next >= len(w.block.cols) {
		return 0
	}
	blob := w.block.cols[w.next].Blob()
	copy(w.dst[w.pos:], blob)
	w.pos += len(blob)
	w.next++
	return len(blob)
}

// Done reports whether every column has been copied.
func (w *ImageWriter) Done() bool { return w.next >= len(w.block.cols) }

// DecodeImage parses a block image. When copyBlobs is true the RBC bytes are
// copied into fresh heap allocations (the restore path: shared memory will
// be unmapped); when false the RBCs alias img (zero-copy reads). Column
// checksums are verified — images come from shm or disk.
func DecodeImage(img []byte, copyBlobs bool) (*RowBlock, int, error) {
	return decodeImage(img, copyBlobs, true)
}

// DecodeImageVerified parses a block image zero-copy, skipping the
// per-column checksum pass. Only for callers that have already verified a
// covering checksum over every image byte — the instant-on view, whose
// segment-wide payload CRC includes all column blobs. Skipping the second
// pass roughly halves the bytes touched before a restarted leaf can serve.
func DecodeImageVerified(img []byte) (*RowBlock, int, error) {
	return decodeImage(img, false, false)
}

func decodeImage(img []byte, copyBlobs, verifyCols bool) (*RowBlock, int, error) {
	if len(img) < 48 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrImageCorrupt, len(img))
	}
	magic := binary.LittleEndian.Uint32(img)
	if magic != ImageMagic && magic != ImageMagicV2 {
		return nil, 0, fmt.Errorf("%w: magic %08x", ErrImageCorrupt, magic)
	}
	size := binary.LittleEndian.Uint64(img[4:])
	if size > uint64(len(img)) || size < 48 {
		return nil, 0, fmt.Errorf("%w: image size %d, buffer %d", ErrImageCorrupt, size, len(img))
	}
	img = img[:size]
	hdr := Header{
		RowCount: int(binary.LittleEndian.Uint64(img[12:])),
		MinTime:  int64(binary.LittleEndian.Uint64(img[20:])),
		MaxTime:  int64(binary.LittleEndian.Uint64(img[28:])),
		Created:  int64(binary.LittleEndian.Uint64(img[36:])),
	}
	ncols := int(binary.LittleEndian.Uint32(img[44:]))
	pos := 48
	// A schema entry takes at least 3 bytes and each column needs an
	// 8-byte offset; reject counts the image cannot possibly hold before
	// allocating anything (untrusted input must not size allocations).
	if ncols < 0 || pos+11*ncols > len(img) {
		return nil, 0, fmt.Errorf("%w: %d columns in %d bytes", ErrImageCorrupt, ncols, len(img))
	}
	schema := make(Schema, 0, ncols)
	for i := 0; i < ncols; i++ {
		if pos+2 > len(img) {
			return nil, 0, fmt.Errorf("%w: truncated schema", ErrImageCorrupt)
		}
		nameLen := int(binary.LittleEndian.Uint16(img[pos:]))
		pos += 2
		if pos+nameLen+1 > len(img) {
			return nil, 0, fmt.Errorf("%w: truncated schema entry", ErrImageCorrupt)
		}
		name := string(img[pos : pos+nameLen])
		pos += nameLen
		vt := layout.ValueType(img[pos])
		pos++
		schema = append(schema, Field{Name: name, Type: vt})
	}
	var zones []ZoneMap
	if magic == ImageMagicV2 {
		zones = make([]ZoneMap, 0, ncols)
		for i := 0; i < ncols; i++ {
			z, used, err := parseZoneMap(img[pos:])
			if err != nil {
				return nil, 0, err
			}
			zones = append(zones, z)
			pos += used
		}
	}
	if pos+8*ncols > len(img) {
		return nil, 0, fmt.Errorf("%w: truncated offset table", ErrImageCorrupt)
	}
	offsets := make([]uint64, ncols)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint64(img[pos:])
		pos += 8
	}
	cols := make([]*layout.RBC, ncols)
	var total int64
	for i, off := range offsets {
		end := size
		if i+1 < ncols {
			end = offsets[i+1]
		}
		if off > end || end > size || off < uint64(pos) {
			return nil, 0, fmt.Errorf("%w: column %d offsets [%d,%d)", ErrImageCorrupt, i, off, end)
		}
		blob := img[off:end]
		if copyBlobs {
			blob = append([]byte(nil), blob...)
		}
		parse := layout.Parse
		if !verifyCols {
			parse = layout.ParseTrusted
		}
		rbc, err := parse(blob)
		if err != nil {
			return nil, 0, fmt.Errorf("rowblock: column %d (%s): %w", i, schema[i].Name, err)
		}
		cols[i] = rbc
		total += int64(rbc.Size())
	}
	hdr.Size = total
	rb, err := FromColumns(hdr, schema, cols)
	if err != nil {
		return nil, 0, err
	}
	rb.zones = zones
	return rb, int(size), nil
}
