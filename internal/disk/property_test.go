package disk

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"scuba/internal/column"
	"scuba/internal/rowblock"
)

// TestRowFormatProperty round-trips randomized blocks through the
// row-oriented disk format: the translate path (decode -> rows -> rebuild
// dictionaries -> re-encode) must reproduce every value exactly.
func TestRowFormatProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 20; trial++ {
		builder := rowblock.NewBuilder(rng.Int63n(1 << 40))
		rows := 1 + rng.Intn(300)
		for r := 0; r < rows; r++ {
			row := rowblock.Row{Time: rng.Int63n(1 << 40), Cols: map[string]rowblock.Value{}}
			if rng.Intn(3) > 0 {
				row.Cols["s"] = rowblock.StringValue(fmt.Sprintf("str-%d", rng.Intn(40)))
			}
			if rng.Intn(3) > 0 {
				row.Cols["i"] = rowblock.Int64Value(rng.Int63() - rng.Int63())
			}
			if rng.Intn(3) == 0 {
				row.Cols["f"] = rowblock.Float64Value(rng.NormFloat64() * 1e6)
			}
			if rng.Intn(4) == 0 {
				set := make([]string, rng.Intn(4))
				for j := range set {
					set[j] = fmt.Sprintf("tag%d", rng.Intn(8))
				}
				row.Cols["set"] = rowblock.SetValue(set...)
			}
			if err := builder.AddRow(row); err != nil {
				t.Fatal(err)
			}
		}
		orig, err := builder.Seal()
		if err != nil {
			t.Fatal(err)
		}

		data, err := encodeRowFormat(orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRowFormat(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Rows() != orig.Rows() {
			t.Fatalf("trial %d: rows %d != %d", trial, got.Rows(), orig.Rows())
		}
		gt, _ := got.Times()
		ot, _ := orig.Times()
		if !reflect.DeepEqual(gt, ot) {
			t.Fatalf("trial %d: times differ", trial)
		}
		for _, f := range orig.Schema() {
			if f.Name == rowblock.TimeColumn {
				continue
			}
			wantCol, err := orig.DecodeColumn(f.Name)
			if err != nil {
				t.Fatal(err)
			}
			gotCol, err := got.DecodeColumn(f.Name)
			if err != nil {
				t.Fatalf("trial %d column %q: %v", trial, f.Name, err)
			}
			switch wc := wantCol.(type) {
			case *column.Int64Column:
				if !reflect.DeepEqual(gotCol.(*column.Int64Column).Values, wc.Values) {
					t.Fatalf("trial %d column %q differs", trial, f.Name)
				}
			case *column.Float64Column:
				if !reflect.DeepEqual(gotCol.(*column.Float64Column).Values, wc.Values) {
					t.Fatalf("trial %d column %q differs", trial, f.Name)
				}
			case *column.StringColumn:
				gc := gotCol.(*column.StringColumn)
				for i := 0; i < wc.Len(); i++ {
					if gc.Value(i) != wc.Value(i) {
						t.Fatalf("trial %d column %q row %d differs", trial, f.Name, i)
					}
				}
			case *column.StringSetColumn:
				gc := gotCol.(*column.StringSetColumn)
				for i := 0; i < wc.Len(); i++ {
					a, b := append([]string(nil), gc.Value(i)...), append([]string(nil), wc.Value(i)...)
					sort.Strings(a)
					sort.Strings(b)
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("trial %d column %q row %d differs", trial, f.Name, i)
					}
				}
			}
		}
	}
}
