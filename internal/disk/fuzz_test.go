package disk

import (
	"testing"

	"scuba/internal/rowblock"
)

// FuzzDecodeRowFormat feeds arbitrary bytes to the row-format decoder — the
// code path every disk recovery runs over every backup file. It must reject
// garbage with an error, never panic or balloon memory.
func FuzzDecodeRowFormat(f *testing.F) {
	b := rowblock.NewBuilder(7)
	for i := 0; i < 50; i++ {
		b.AddRow(rowblock.Row{Time: int64(i), Cols: map[string]rowblock.Value{ //nolint:errcheck
			"s": rowblock.StringValue("x"),
			"n": rowblock.Int64Value(int64(i)),
			"f": rowblock.Float64Value(float64(i)),
			"t": rowblock.SetValue("a", "b"),
		}})
	}
	rb, err := b.Seal()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := encodeRowFormat(rb)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeRowFormat(data)
		if err == nil && got == nil {
			t.Fatal("nil block without error")
		}
		if err == nil {
			if _, terr := got.Times(); terr != nil {
				t.Fatalf("accepted block has broken time column: %v", terr)
			}
		}
	})
}
