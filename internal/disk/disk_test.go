package disk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"scuba/internal/column"
	"scuba/internal/rowblock"
)

func buildBlock(t *testing.T, rows int, startTime int64) *rowblock.RowBlock {
	t.Helper()
	b := rowblock.NewBuilder(startTime)
	for i := 0; i < rows; i++ {
		err := b.AddRow(rowblock.Row{
			Time: startTime + int64(i),
			Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%5)),
				"latency": rowblock.Int64Value(int64(i * 3)),
				"cpu":     rowblock.Float64Value(float64(i) / 7),
				"tags":    rowblock.SetValue("prod", fmt.Sprintf("shard%d", i%2)),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return rb
}

// verifyBlockContents checks that a recovered block holds the same logical
// rows as the original, independent of column order and re-encoding.
func verifyBlockContents(t *testing.T, got, want *rowblock.RowBlock) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("rows = %d, want %d", got.Rows(), want.Rows())
	}
	gt, err := got.Times()
	if err != nil {
		t.Fatal(err)
	}
	wt, _ := want.Times()
	if !reflect.DeepEqual(gt, wt) {
		t.Fatal("times differ")
	}
	for _, f := range want.Schema() {
		if f.Name == rowblock.TimeColumn {
			continue
		}
		gotCol, err := got.DecodeColumn(f.Name)
		if err != nil {
			t.Fatalf("column %q: %v", f.Name, err)
		}
		wantCol, _ := want.DecodeColumn(f.Name)
		switch wc := wantCol.(type) {
		case *column.Int64Column:
			if !reflect.DeepEqual(gotCol.(*column.Int64Column).Values, wc.Values) {
				t.Errorf("column %q values differ", f.Name)
			}
		case *column.Float64Column:
			if !reflect.DeepEqual(gotCol.(*column.Float64Column).Values, wc.Values) {
				t.Errorf("column %q values differ", f.Name)
			}
		case *column.StringColumn:
			gc := gotCol.(*column.StringColumn)
			for i := 0; i < wc.Len(); i++ {
				if gc.Value(i) != wc.Value(i) {
					t.Errorf("column %q row %d: %q != %q", f.Name, i, gc.Value(i), wc.Value(i))
					break
				}
			}
		case *column.StringSetColumn:
			gc := gotCol.(*column.StringSetColumn)
			for i := 0; i < wc.Len(); i++ {
				a, b := gc.Value(i), wc.Value(i)
				sort.Strings(a)
				sort.Strings(b)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("column %q row %d: %v != %v", f.Name, i, a, b)
					break
				}
			}
		}
	}
}

func bothFormats(t *testing.T, fn func(t *testing.T, f Format)) {
	t.Run("row", func(t *testing.T) { fn(t, FormatRow) })
	t.Run("columnar", func(t *testing.T) { fn(t, FormatColumnar) })
}

func TestWriteLoadRoundTrip(t *testing.T) {
	bothFormats(t, func(t *testing.T, f Format) {
		s, err := NewStore(t.TempDir(), 0, f)
		if err != nil {
			t.Fatal(err)
		}
		orig := []*rowblock.RowBlock{
			buildBlock(t, 200, 1000),
			buildBlock(t, 100, 2000),
		}
		for _, rb := range orig {
			if err := s.WriteBlock("events", rb); err != nil {
				t.Fatal(err)
			}
		}
		var got []*rowblock.RowBlock
		if err := s.LoadTable("events", func(rb *rowblock.RowBlock) error {
			got = append(got, rb)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("loaded %d blocks", len(got))
		}
		for i := range got {
			verifyBlockContents(t, got[i], orig[i])
		}
	})
}

func TestLoadMissingTable(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTable("nope", func(*rowblock.RowBlock) error { return nil }); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

func TestTables(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "weird/name"} {
		if err := s.WriteBlock(name, buildBlock(t, 10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Tables()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "weird/name", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tables = %v, want %v", got, want)
	}
}

func TestSequenceNumbersPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock("t", buildBlock(t, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock("t", buildBlock(t, 10, 200)); err != nil {
		t.Fatal(err)
	}
	// A fresh store (new process) must continue the sequence, not clobber.
	s2, err := NewStore(dir, 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteBlock("t", buildBlock(t, 10, 300)); err != nil {
		t.Fatal(err)
	}
	count := 0
	lastMax := int64(-1)
	if err := s2.LoadTable("t", func(rb *rowblock.RowBlock) error {
		count++
		if rb.Header().MaxTime <= lastMax {
			t.Errorf("blocks out of order: %d after %d", rb.Header().MaxTime, lastMax)
		}
		lastMax = rb.Header().MaxTime
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("loaded %d blocks", count)
	}
}

func TestExpireTable(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteBlock("t", buildBlock(t, 10, int64(i*1000))); err != nil {
			t.Fatal(err)
		}
	}
	// Blocks have max times 9, 1009, 2009. Cutoff 1500 removes two.
	removed, err := s.ExpireTable("t", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d", removed)
	}
	count := 0
	if err := s.LoadTable("t", func(*rowblock.RowBlock) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("remaining = %d", count)
	}
}

func TestDropOldest(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatColumnar)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.WriteBlock("t", buildBlock(t, 10, int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.DropOldest("t", 3)
	if err != nil || removed != 3 {
		t.Fatalf("removed %d, %v", removed, err)
	}
	var minTimes []int64
	if err := s.LoadTable("t", func(rb *rowblock.RowBlock) error {
		minTimes = append(minTimes, rb.Header().MinTime)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(minTimes) != 1 || minTimes[0] != 300 {
		t.Errorf("kept wrong blocks: %v", minTimes)
	}
}

func TestSyncTable(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	st := &stubSyncable{name: "t", blocks: []*rowblock.RowBlock{
		buildBlock(t, 20, 0), buildBlock(t, 20, 100),
	}}
	n, err := s.SyncTable(st)
	if err != nil || n != 2 {
		t.Fatalf("synced %d, %v", n, err)
	}
	if st.synced != 2 {
		t.Errorf("watermark = %d", st.synced)
	}
	// Second sync has nothing to do.
	n, err = s.SyncTable(st)
	if err != nil || n != 0 {
		t.Errorf("resync: %d, %v", n, err)
	}
}

type stubSyncable struct {
	name   string
	blocks []*rowblock.RowBlock
	synced int
}

func (s *stubSyncable) Name() string { return s.name }
func (s *stubSyncable) UnsyncedBlocks() []*rowblock.RowBlock {
	return s.blocks[s.synced:]
}
func (s *stubSyncable) MarkSynced(n int) { s.synced += n }

func TestRowFormatCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock("t", buildBlock(t, 50, 0)); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(s.Dir(), "t", "*.row"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip must be rejected by the CRC.
	for _, i := range []int{0, 5, 10, 30, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if err := os.WriteFile(files[0], bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadTable("t", func(*rowblock.RowBlock) error { return nil }); err == nil {
			t.Errorf("flip at %d accepted", i)
		}
	}
	// Truncation too.
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTable("t", func(*rowblock.RowBlock) error { return nil }); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestNoTornWrites(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0, FormatRow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock("t", buildBlock(t, 10, 0)); err != nil {
		t.Fatal(err)
	}
	tmps, err := filepath.Glob(filepath.Join(s.Dir(), "t", "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("temp files left: %v", tmps)
	}
}

func TestTableNameEncoding(t *testing.T) {
	cases := []string{"simple", "with space", "with/slash", "uniçode", "dots.and.things"}
	for _, name := range cases {
		if got := decodeTableName(encodeTableName(name)); got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
	}
	if encodeTableName("a/b") == encodeTableName("a_b") {
		t.Error("encoding collision")
	}
}

func TestFormatStrings(t *testing.T) {
	if FormatRow.String() != "row" || FormatColumnar.String() != "columnar" {
		t.Error("format names wrong")
	}
}
