// Package disk implements Scuba's on-disk backup (§4.1). Every leaf stores
// backups of all incoming data on local disk, so recovery is always possible
// even after a software or hardware crash. During normal operation writes
// are asynchronous; shutdown flushes whatever changed since the last
// synchronization point.
//
// Two formats are supported:
//
//   - FormatRow (default): a row-oriented format deliberately different from
//     the in-memory layout. Recovering from it must translate every row back
//     into column blocks — rebuild dictionaries, re-encode, re-compress.
//     This is the translation overhead the paper measures: reading 120 GB
//     takes 20-25 minutes, but reading plus translating takes 2.5-3 hours
//     (§1), so translation dominates disk recovery.
//
//   - FormatColumnar: the shared memory block-image format written straight
//     to disk. This is the paper's §6 future work ("we are planning to use
//     the shared memory format described in this paper as the disk format")
//     and removes nearly all of the translate cost (experiment E8).
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"scuba/internal/column"
	"scuba/internal/fault"
	"scuba/internal/layout"
	"scuba/internal/rowblock"
)

// Format selects the on-disk block encoding.
type Format uint8

// Backup formats.
const (
	FormatRow      Format = iota // row-oriented; recovery pays the translate cost
	FormatColumnar               // shm block images on disk (§6 future work)
)

func (f Format) String() string {
	if f == FormatColumnar {
		return "columnar"
	}
	return "row"
}

func (f Format) ext() string {
	if f == FormatColumnar {
		return ".col"
	}
	return ".row"
}

// Errors returned by the store.
var (
	ErrCorruptFile = errors.New("disk: corrupt backup file")
	ErrNoTable     = errors.New("disk: no such table backup")
)

// Store is one leaf's backup directory.
type Store struct {
	root   string
	leafID int
	format Format

	mu   sync.Mutex
	seqs map[string]int // next sequence number per table
}

// NewStore creates (if necessary) and opens the leaf's backup directory.
func NewStore(root string, leafID int, format Format) (*Store, error) {
	dir := filepath.Join(root, fmt.Sprintf("leaf%d", leafID))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create store: %w", err)
	}
	return &Store{root: dir, leafID: leafID, format: format, seqs: make(map[string]int)}, nil
}

// Format returns the store's block format.
func (s *Store) Format() Format { return s.format }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.root }

func (s *Store) tableDir(table string) string {
	return filepath.Join(s.root, encodeTableName(table))
}

// EncodeTableName makes a table name filesystem-safe and reversible. It is
// shared with the WAL, whose per-table directories use the same scheme.
func EncodeTableName(table string) string { return encodeTableName(table) }

// DecodeTableName reverses EncodeTableName.
func DecodeTableName(enc string) string { return decodeTableName(enc) }

// encodeTableName makes a table name filesystem-safe and reversible.
func encodeTableName(table string) string {
	var b strings.Builder
	for _, r := range table {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String()
}

func decodeTableName(enc string) string {
	var b strings.Builder
	for i := 0; i < len(enc); {
		if enc[i] == '%' && i+5 <= len(enc) {
			if v, err := strconv.ParseUint(enc[i+1:i+5], 16, 32); err == nil {
				b.WriteRune(rune(v))
				i += 5
				continue
			}
		}
		b.WriteByte(enc[i])
		i++
	}
	return b.String()
}

// blockFile describes one backup file, parsed from its name:
// block-<seq>-<maxtime><ext>.
type blockFile struct {
	seq     int
	maxTime int64
	name    string
}

func parseBlockFile(name, ext string) (blockFile, bool) {
	if !strings.HasPrefix(name, "block-") || !strings.HasSuffix(name, ext) {
		return blockFile{}, false
	}
	core := strings.TrimSuffix(strings.TrimPrefix(name, "block-"), ext)
	parts := strings.SplitN(core, "-", 2)
	if len(parts) != 2 {
		return blockFile{}, false
	}
	seq, err1 := strconv.Atoi(parts[0])
	maxT, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return blockFile{}, false
	}
	return blockFile{seq: seq, maxTime: maxT, name: name}, true
}

func (s *Store) listBlocks(table string) ([]blockFile, error) {
	entries, err := os.ReadDir(s.tableDir(table))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []blockFile
	for _, e := range entries {
		if bf, ok := parseBlockFile(e.Name(), s.format.ext()); ok {
			out = append(out, bf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// nextSeq returns a monotonically increasing sequence number for a table.
func (s *Store) nextSeq(table string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq, ok := s.seqs[table]; ok {
		s.seqs[table] = seq + 1
		return seq, nil
	}
	blocks, err := s.listBlocks(table)
	if err != nil {
		return 0, err
	}
	seq := 0
	if n := len(blocks); n > 0 {
		seq = blocks[n-1].seq + 1
	}
	s.seqs[table] = seq + 1
	return seq, nil
}

// WriteBlock persists one sealed row block. The write goes to a temp file
// and is renamed into place, so a crash never leaves a torn backup.
func (s *Store) WriteBlock(table string, rb *rowblock.RowBlock) error {
	if err := os.MkdirAll(s.tableDir(table), 0o755); err != nil {
		return fmt.Errorf("disk: table dir: %w", err)
	}
	seq, err := s.nextSeq(table)
	if err != nil {
		return err
	}
	var data []byte
	switch s.format {
	case FormatColumnar:
		data = rb.AppendImage(nil)
	default:
		data, err = encodeRowFormat(rb)
		if err != nil {
			return err
		}
	}
	name := fmt.Sprintf("block-%08d-%d%s", seq, rb.Header().MaxTime, s.format.ext())
	path := filepath.Join(s.tableDir(table), name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("disk: write block: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("disk: install block: %w", err)
	}
	return nil
}

// Tables lists tables with at least one backup block.
func (s *Store) Tables() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, decodeTableName(e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// LoadTable reads every backup block of a table in sequence order, decoding
// (and for FormatRow, translating) each into an in-memory row block. The
// per-block callback lets recovery interleave with other work.
func (s *Store) LoadTable(table string, fn func(*rowblock.RowBlock) error) error {
	if err := fault.Inject(fault.SiteDiskRead); err != nil {
		return fmt.Errorf("disk: load %s: %w", table, err)
	}
	blocks, err := s.listBlocks(table)
	if err != nil {
		return err
	}
	if blocks == nil {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	for _, bf := range blocks {
		data, err := os.ReadFile(filepath.Join(s.tableDir(table), bf.name))
		if err != nil {
			return fmt.Errorf("disk: read %s: %w", bf.name, err)
		}
		var rb *rowblock.RowBlock
		switch s.format {
		case FormatColumnar:
			rb, _, err = rowblock.DecodeImage(data, false)
		default:
			rb, err = decodeRowFormat(data)
		}
		if err != nil {
			return fmt.Errorf("disk: decode %s: %w", bf.name, err)
		}
		if err := fn(rb); err != nil {
			return err
		}
	}
	return nil
}

// ExpireTable removes backup blocks whose newest row is older than cutoff.
// Deletions deferred during shutdown are applied here after recovery.
func (s *Store) ExpireTable(table string, cutoff int64) (int, error) {
	blocks, err := s.listBlocks(table)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, bf := range blocks {
		if bf.maxTime >= cutoff {
			continue
		}
		if err := os.Remove(filepath.Join(s.tableDir(table), bf.name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// DropOldest removes the n oldest backup blocks of a table (size-based
// trimming mirrors in-memory size limits).
func (s *Store) DropOldest(table string, n int) (int, error) {
	blocks, err := s.listBlocks(table)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, bf := range blocks {
		if removed >= n {
			break
		}
		if err := os.Remove(filepath.Join(s.tableDir(table), bf.name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// RemoveAll deletes the entire leaf backup directory tree.
func (s *Store) RemoveAll() error { return os.RemoveAll(s.root) }

// RemoveTable deletes one table's backup and resets its sequence counter.
// WAL recovery calls this after a table replays successfully: the stale
// backup (missing recently sealed blocks) would otherwise duplicate rows
// when the next maintenance sync appended fresh blocks after it.
func (s *Store) RemoveTable(table string) error {
	s.mu.Lock()
	delete(s.seqs, table)
	s.mu.Unlock()
	return os.RemoveAll(s.tableDir(table))
}

// Syncable is the slice of a table the write-behind sync needs.
type Syncable interface {
	Name() string
	UnsyncedBlocks() []*rowblock.RowBlock
	MarkSynced(n int)
}

// SyncTable writes a table's unsynced blocks and advances its watermark,
// returning the number of blocks written. Only sections changed since the
// last synchronization point are written (§4.1).
func (s *Store) SyncTable(t Syncable) (int, error) {
	blocks := t.UnsyncedBlocks()
	for i, rb := range blocks {
		if err := s.WriteBlock(t.Name(), rb); err != nil {
			t.MarkSynced(i)
			return i, err
		}
	}
	t.MarkSynced(len(blocks))
	return len(blocks), nil
}

// ---- Row format ----
//
//	u32 magic "DRW1"; u32 version
//	u64 row count; i64 created
//	u16 ncols; per column: u16 name len, name, u8 type  (time first)
//	rows: per row, each column's value in schema order:
//	    int64/time   zigzag varint
//	    float64      8 bytes LE
//	    string       varint len + bytes
//	    string set   varint count + (varint len + bytes)*
//	u32 CRC-32C over everything before it

const rowMagic uint32 = 0x31575244 // "DRW1"
const rowVersion uint32 = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type decodedColumns struct {
	ints   [][]int64
	floats [][]float64
	strs   []*column.StringColumn
	sets   []*column.StringSetColumn
}

// encodeRowFormat decodes every column of the block (paying decompression)
// and re-serializes row by row.
func encodeRowFormat(rb *rowblock.RowBlock) ([]byte, error) {
	schema := rb.Schema()
	n := rb.Rows()
	hdr := rb.Header()

	cols := decodedColumns{
		ints:   make([][]int64, len(schema)),
		floats: make([][]float64, len(schema)),
		strs:   make([]*column.StringColumn, len(schema)),
		sets:   make([]*column.StringSetColumn, len(schema)),
	}
	for i, f := range schema {
		col, err := rb.DecodeColumn(f.Name)
		if err != nil {
			return nil, err
		}
		switch c := col.(type) {
		case *column.Int64Column:
			cols.ints[i] = c.Values
		case *column.Float64Column:
			cols.floats[i] = c.Values
		case *column.StringColumn:
			cols.strs[i] = c
		case *column.StringSetColumn:
			cols.sets[i] = c
		default:
			return nil, fmt.Errorf("disk: unsupported column %T", col)
		}
	}

	var b []byte
	b = binary.LittleEndian.AppendUint32(b, rowMagic)
	b = binary.LittleEndian.AppendUint32(b, rowVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	b = binary.LittleEndian.AppendUint64(b, uint64(hdr.Created))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(schema)))
	for _, f := range schema {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Name)))
		b = append(b, f.Name...)
		b = append(b, byte(f.Type))
	}
	for r := 0; r < n; r++ {
		for i, f := range schema {
			switch f.Type {
			case layout.TypeInt64, layout.TypeTime:
				b = binary.AppendUvarint(b, zigzag(cols.ints[i][r]))
			case layout.TypeFloat64:
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(cols.floats[i][r]))
			case layout.TypeString:
				s := cols.strs[i].Value(r)
				b = binary.AppendUvarint(b, uint64(len(s)))
				b = append(b, s...)
			case layout.TypeStringSet:
				set := cols.sets[i].Value(r)
				b = binary.AppendUvarint(b, uint64(len(set)))
				for _, s := range set {
					b = binary.AppendUvarint(b, uint64(len(s)))
					b = append(b, s...)
				}
			default:
				return nil, fmt.Errorf("disk: cannot serialize column type %v", f.Type)
			}
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable)), nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// decodeRowFormat translates a row-format file back into a column block:
// every row is re-ingested through a rowblock.Builder, rebuilding
// dictionaries and re-compressing every column. This is the CPU-intensive
// translation the paper describes (§1, §6).
func decodeRowFormat(data []byte) (*rowblock.RowBlock, error) {
	if len(data) < 4+4+8+8+2+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptFile, len(data))
	}
	body, want := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return nil, fmt.Errorf("%w: checksum", ErrCorruptFile)
	}
	if binary.LittleEndian.Uint32(body) != rowMagic {
		return nil, fmt.Errorf("%w: magic", ErrCorruptFile)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != rowVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorruptFile, v)
	}
	n := int(binary.LittleEndian.Uint64(body[8:]))
	created := int64(binary.LittleEndian.Uint64(body[16:]))
	ncols := int(binary.LittleEndian.Uint16(body[24:]))
	pos := 26
	schema := make(rowblock.Schema, 0, ncols)
	for i := 0; i < ncols; i++ {
		if pos+2 > len(body) {
			return nil, fmt.Errorf("%w: truncated schema", ErrCorruptFile)
		}
		l := int(binary.LittleEndian.Uint16(body[pos:]))
		pos += 2
		if pos+l+1 > len(body) {
			return nil, fmt.Errorf("%w: truncated schema entry", ErrCorruptFile)
		}
		schema = append(schema, rowblock.Field{
			Name: string(body[pos : pos+l]),
			Type: layout.ValueType(body[pos+l]),
		})
		pos += l + 1
	}
	if len(schema) == 0 || schema[0].Name != rowblock.TimeColumn {
		return nil, fmt.Errorf("%w: first column is not time", ErrCorruptFile)
	}

	readUvarint := func() (uint64, error) {
		v, used := binary.Uvarint(body[pos:])
		if used <= 0 {
			return 0, fmt.Errorf("%w: bad varint at %d", ErrCorruptFile, pos)
		}
		pos += used
		return v, nil
	}
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(body)-pos) < l {
			return "", fmt.Errorf("%w: string overruns file", ErrCorruptFile)
		}
		s := string(body[pos : pos+int(l)])
		pos += int(l)
		return s, nil
	}

	builder := rowblock.NewBuilder(created)
	for r := 0; r < n; r++ {
		row := rowblock.Row{Cols: make(map[string]rowblock.Value, ncols-1)}
		for i, f := range schema {
			switch f.Type {
			case layout.TypeInt64, layout.TypeTime:
				u, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if i == 0 {
					row.Time = unzigzag(u)
				} else {
					row.Cols[f.Name] = rowblock.Int64Value(unzigzag(u))
				}
			case layout.TypeFloat64:
				if pos+8 > len(body) {
					return nil, fmt.Errorf("%w: float overruns file", ErrCorruptFile)
				}
				row.Cols[f.Name] = rowblock.Float64Value(math.Float64frombits(binary.LittleEndian.Uint64(body[pos:])))
				pos += 8
			case layout.TypeString:
				s, err := readString()
				if err != nil {
					return nil, err
				}
				row.Cols[f.Name] = rowblock.StringValue(s)
			case layout.TypeStringSet:
				count, err := readUvarint()
				if err != nil {
					return nil, err
				}
				set := make([]string, 0, count)
				for j := uint64(0); j < count; j++ {
					s, err := readString()
					if err != nil {
						return nil, err
					}
					set = append(set, s)
				}
				row.Cols[f.Name] = rowblock.SetValue(set...)
			default:
				return nil, fmt.Errorf("%w: column type %v", ErrCorruptFile, f.Type)
			}
		}
		if err := builder.AddRow(row); err != nil {
			return nil, fmt.Errorf("disk: translating row %d: %w", r, err)
		}
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptFile, len(body)-pos)
	}
	return builder.Seal()
}
