package scribe

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAppendRead(t *testing.T) {
	b := NewBus(0)
	for i := 0; i < 10; i++ {
		off := b.Append("cat", []byte(fmt.Sprintf("msg-%d", i)))
		if off != int64(i) {
			t.Errorf("offset = %d, want %d", off, i)
		}
	}
	msgs, err := b.Read("cat", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("read %d messages", len(msgs))
	}
	for i, m := range msgs {
		if string(m.Payload) != fmt.Sprintf("msg-%d", i) || m.Offset != int64(i) {
			t.Errorf("msg %d = %q @%d", i, m.Payload, m.Offset)
		}
	}
	// Partial reads.
	msgs, err = b.Read("cat", 7, 2)
	if err != nil || len(msgs) != 2 || msgs[0].Offset != 7 {
		t.Errorf("partial read: %v, %v", msgs, err)
	}
	// Reading at the end returns nothing.
	msgs, err = b.Read("cat", 10, 5)
	if err != nil || len(msgs) != 0 {
		t.Errorf("end read: %v, %v", msgs, err)
	}
}

func TestEnd(t *testing.T) {
	b := NewBus(0)
	if b.End("c") != 0 {
		t.Error("empty End != 0")
	}
	b.Append("c", []byte("x"))
	b.Append("c", []byte("y"))
	if b.End("c") != 2 {
		t.Errorf("End = %d", b.End("c"))
	}
}

func TestRetentionDropsOldest(t *testing.T) {
	b := NewBus(5)
	for i := 0; i < 12; i++ {
		b.Append("c", []byte{byte(i)})
	}
	if _, err := b.Read("c", 0, 10); !errors.Is(err, ErrTooOld) {
		t.Errorf("err = %v", err)
	}
	msgs, err := b.Read("c", 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 || msgs[0].Offset != 7 {
		t.Errorf("msgs = %v", msgs)
	}
}

func TestTailerPoll(t *testing.T) {
	b := NewBus(0)
	for i := 0; i < 25; i++ {
		b.Append("c", []byte{byte(i)})
	}
	tl := b.NewTailer("c", 0)
	total := 0
	for {
		msgs, lost, err := tl.Poll(10)
		if err != nil || lost != 0 {
			t.Fatalf("poll: %v lost %d", err, lost)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 25 {
		t.Errorf("polled %d", total)
	}
	if tl.Offset() != 25 {
		t.Errorf("offset = %d", tl.Offset())
	}
	// New appends resume from the saved offset.
	b.Append("c", []byte("new"))
	msgs, _, err := tl.Poll(10)
	if err != nil || len(msgs) != 1 || string(msgs[0].Payload) != "new" {
		t.Errorf("resume: %v, %v", msgs, err)
	}
}

func TestTailerSkipsLostData(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Append("c", []byte{byte(i)})
	}
	tl := b.NewTailer("c", 0)
	msgs, lost, err := tl.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 6 {
		t.Errorf("lost = %d", lost)
	}
	if len(msgs) != 4 || msgs[0].Offset != 6 {
		t.Errorf("msgs = %v", msgs)
	}
}

func TestCategoriesIsolated(t *testing.T) {
	b := NewBus(0)
	b.Append("a", []byte("1"))
	b.Append("b", []byte("2"))
	msgs, err := b.Read("a", 0, 10)
	if err != nil || len(msgs) != 1 || string(msgs[0].Payload) != "1" {
		t.Errorf("category a: %v", msgs)
	}
	if len(b.Categories()) != 2 {
		t.Errorf("categories = %v", b.Categories())
	}
}

func TestConcurrentProducersAndTailers(t *testing.T) {
	b := NewBus(0)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b.Append("c", []byte("x"))
			}
		}()
	}
	var consumed int
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		tl := b.NewTailer("c", 0)
		for consumed < producers*perProducer {
			msgs, _, err := tl.Poll(64)
			if err != nil {
				t.Errorf("poll: %v", err)
				return
			}
			consumed += len(msgs)
		}
	}()
	wg.Wait()
	cwg.Wait()
	if consumed != producers*perProducer {
		t.Errorf("consumed %d", consumed)
	}
}
