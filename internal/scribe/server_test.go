package scribe

import (
	"errors"
	"fmt"
	"testing"
)

func newNetPair(t *testing.T, retain int) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(NewBus(retain), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := Dial(srv.Addr())
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestNetworkAppendRead(t *testing.T) {
	_, c := newNetPair(t, 0)
	for i := 0; i < 10; i++ {
		off, err := c.Append("cat", []byte(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Errorf("offset = %d", off)
		}
	}
	msgs, err := c.Read("cat", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 || string(msgs[0].Payload) != "m3" || msgs[0].Offset != 3 {
		t.Errorf("msgs = %v", msgs)
	}
	end, err := c.End("cat")
	if err != nil || end != 10 {
		t.Errorf("End = %d, %v", end, err)
	}
	oldest, err := c.Oldest("cat")
	if err != nil || oldest != 0 {
		t.Errorf("Oldest = %d, %v", oldest, err)
	}
}

func TestNetworkTooOldSkips(t *testing.T) {
	_, c := newNetPair(t, 3)
	for i := 0; i < 10; i++ {
		if _, err := c.Append("cat", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read("cat", 0, 5); !errors.Is(err, ErrTooOld) {
		t.Fatalf("err = %v", err)
	}
	// A tailer over the network client recovers via Oldest exactly like the
	// in-process one.
	tl := NewTailer(c, "cat", 0)
	msgs, lost, err := tl.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 7 || len(msgs) != 3 {
		t.Errorf("lost %d, msgs %d", lost, len(msgs))
	}
}

func TestNetworkTailerEndToEnd(t *testing.T) {
	_, c := newNetPair(t, 0)
	for i := 0; i < 100; i++ {
		if _, err := c.Append("cat", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tl := NewTailer(c, "cat", 0)
	total := 0
	for {
		msgs, _, err := tl.Poll(7)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 100 {
		t.Errorf("polled %d", total)
	}
}

func TestNetworkClientReconnects(t *testing.T) {
	srv, c := newNetPair(t, 0)
	if _, err := c.Append("cat", []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	// Reads retry transparently.
	var err error
	for try := 0; try < 3; try++ {
		if _, err = c.Read("cat", 0, 1); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("read did not recover: %v", err)
	}
}
