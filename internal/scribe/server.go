package scribe

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Server exposes a Bus over TCP so producers (product log calls) and tailer
// daemons in other processes share one Scribe, completing Figure 1 as real
// processes: products -> scribed -> tailerd -> leaf daemons.
//
// The protocol is the same gob request/response framing the rest of the
// system uses.
type Server struct {
	bus *Bus
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// op tags a scribe RPC.
type op uint8

const (
	opAppend op = iota + 1
	opRead
	opEnd
	opOldest
)

type request struct {
	Op       op
	Category string
	Payload  []byte
	Offset   int64
	Max      int
}

type response struct {
	Err    string
	TooOld bool // distinguishes ErrTooOld so clients can skip forward
	Offset int64
	Msgs   []Message
}

// NewServer serves the bus on addr.
func NewServer(bus *Bus, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scribe: listen: %w", err)
	}
	s := &Server{bus: bus, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case opAppend:
			resp.Offset = s.bus.Append(req.Category, req.Payload)
		case opRead:
			msgs, err := s.bus.Read(req.Category, req.Offset, req.Max)
			if errors.Is(err, ErrTooOld) {
				resp.TooOld = true
				resp.Err = err.Error()
			} else if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Msgs = msgs
			}
		case opEnd:
			resp.Offset = s.bus.End(req.Category)
		case opOldest:
			resp.Offset, _ = s.bus.Oldest(req.Category)
		default:
			resp.Err = fmt.Sprintf("scribe: unknown op %d", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// Client talks to a remote scribed. It satisfies Source, so tailers consume
// it exactly like an in-process Bus. Safe for concurrent use.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial creates a client; the connection is established lazily and re-dialed
// after transport errors.
func Dial(addr string) *Client { return &Client{addr: addr} }

var _ Source = (*Client)(nil)

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.callLocked(req)
	if err != nil {
		// All scribe ops except Append are idempotent; Append retries
		// could duplicate a message, which Scuba tolerates, but we stay
		// conservative and only retry reads.
		if req.Op == opAppend {
			return nil, err
		}
		resp, err = c.callLocked(req)
	}
	return resp, err
}

func (c *Client) callLocked(req *request) (*response, error) {
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
		c.enc = gob.NewEncoder(conn)
		c.dec = gob.NewDecoder(conn)
	}
	drop := func() {
		c.conn.Close()
		c.conn = nil
	}
	if err := c.enc.Encode(req); err != nil {
		drop()
		return nil, err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		drop()
		return nil, err
	}
	return &resp, nil
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	return nil
}

// Append adds one message and returns its offset.
func (c *Client) Append(category string, payload []byte) (int64, error) {
	resp, err := c.call(&request{Op: opAppend, Category: category, Payload: payload})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.Offset, nil
}

// Read implements Source.
func (c *Client) Read(category string, offset int64, max int) ([]Message, error) {
	resp, err := c.call(&request{Op: opRead, Category: category, Offset: offset, Max: max})
	if err != nil {
		return nil, err
	}
	if resp.TooOld {
		return nil, fmt.Errorf("%w: %s", ErrTooOld, strings.TrimPrefix(resp.Err, ErrTooOld.Error()+": "))
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Msgs, nil
}

// End returns the offset one past the newest message.
func (c *Client) End(category string) (int64, error) {
	resp, err := c.call(&request{Op: opEnd, Category: category})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.Offset, nil
}

// Oldest implements Source.
func (c *Client) Oldest(category string) (int64, error) {
	resp, err := c.call(&request{Op: opOldest, Category: category})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.Offset, nil
}
