// Package scribe simulates Scribe, the distributed messaging system that
// carries log data from Facebook products into Scuba (Figure 1). Data flows
// from log calls into Scribe categories; Scuba "tailer" processes pull each
// table's rows out of Scribe and push batches into leaf servers (§2).
//
// The simulation is an in-process, append-only, category-partitioned message
// bus with tailing readers identified by offset. It preserves the interface
// shape that matters to the reproduction: producers append rows, tailers
// consume in order with explicit offsets and can replay, and the bus retains
// a bounded window of messages.
package scribe

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one log event in a category.
type Message struct {
	Offset  int64
	Payload []byte
}

// Bus is an in-process Scribe: a set of named categories.
type Bus struct {
	mu         sync.Mutex
	categories map[string]*category
	// retain bounds how many messages a category keeps; older messages are
	// dropped (Scribe gives at-most-bounded buffering, not infinite replay).
	retain int
}

type category struct {
	mu    sync.Mutex
	cond  *sync.Cond
	base  int64 // offset of msgs[0]
	msgs  [][]byte
	limit int
}

// ErrTooOld is returned when a tailer asks for an offset that has been
// dropped by retention; the tailer must skip forward (data loss, which
// Scuba tolerates: it does not guarantee full query results).
var ErrTooOld = errors.New("scribe: offset before retention window")

// NewBus creates a bus retaining up to retain messages per category
// (0 means a large default).
func NewBus(retain int) *Bus {
	if retain <= 0 {
		retain = 1 << 20
	}
	return &Bus{categories: make(map[string]*category), retain: retain}
}

func (b *Bus) category(name string) *category {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.categories[name]
	if !ok {
		c = &category{limit: b.retain}
		c.cond = sync.NewCond(&c.mu)
		b.categories[name] = c
	}
	return c
}

// Append adds one message to a category and returns its offset.
func (b *Bus) Append(categoryName string, payload []byte) int64 {
	c := b.category(categoryName)
	c.mu.Lock()
	defer c.mu.Unlock()
	off := c.base + int64(len(c.msgs))
	c.msgs = append(c.msgs, payload)
	if len(c.msgs) > c.limit {
		drop := len(c.msgs) - c.limit
		c.msgs = c.msgs[drop:]
		c.base += int64(drop)
	}
	c.cond.Broadcast()
	return off
}

// Categories lists category names with at least one message ever appended.
func (b *Bus) Categories() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.categories))
	for name := range b.categories {
		out = append(out, name)
	}
	return out
}

// End returns the offset one past the newest message.
func (b *Bus) End(categoryName string) int64 {
	c := b.category(categoryName)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base + int64(len(c.msgs))
}

// Read returns up to max messages starting at offset, without blocking.
// It returns ErrTooOld (with the new minimum offset) when the offset has
// been dropped by retention.
func (b *Bus) Read(categoryName string, offset int64, max int) ([]Message, error) {
	c := b.category(categoryName)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readLocked(offset, max)
}

func (c *category) readLocked(offset int64, max int) ([]Message, error) {
	if offset < c.base {
		return nil, fmt.Errorf("%w: want %d, oldest %d", ErrTooOld, offset, c.base)
	}
	idx := int(offset - c.base)
	if idx >= len(c.msgs) {
		return nil, nil
	}
	end := idx + max
	if end > len(c.msgs) {
		end = len(c.msgs)
	}
	out := make([]Message, end-idx)
	for i := idx; i < end; i++ {
		out[i-idx] = Message{Offset: c.base + int64(i), Payload: c.msgs[i]}
	}
	return out, nil
}

// Oldest returns the offset of the oldest retained message (equal to End
// for an empty category).
func (b *Bus) Oldest(categoryName string) (int64, error) {
	c := b.category(categoryName)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base, nil
}

// Source is the read side of Scribe as tailers consume it. The in-process
// Bus and the network Client both satisfy it, so tailers run unchanged
// in-process and as standalone daemons.
type Source interface {
	Read(category string, offset int64, max int) ([]Message, error)
	Oldest(category string) (int64, error)
}

var _ Source = (*Bus)(nil)

// Tailer is a stateful reader of one category.
type Tailer struct {
	src      Source
	category string
	offset   int64
}

// NewTailer returns a tailer starting at the given offset (use 0 for the
// oldest retained data, or Bus.End for only-new data).
func (b *Bus) NewTailer(category string, offset int64) *Tailer {
	return NewTailer(b, category, offset)
}

// NewTailer builds a tailer over any Source.
func NewTailer(src Source, category string, offset int64) *Tailer {
	return &Tailer{src: src, category: category, offset: offset}
}

// Offset returns the tailer's next offset.
func (t *Tailer) Offset() int64 { return t.offset }

// Poll reads up to max messages and advances the offset. On ErrTooOld the
// tailer skips to the oldest retained message and reports how many were
// lost.
func (t *Tailer) Poll(max int) (msgs []Message, lost int64, err error) {
	msgs, err = t.src.Read(t.category, t.offset, max)
	if errors.Is(err, ErrTooOld) {
		oldest, oerr := t.src.Oldest(t.category)
		if oerr != nil {
			return nil, 0, oerr
		}
		lost = oldest - t.offset
		t.offset = oldest
		msgs, err = t.src.Read(t.category, t.offset, max)
	}
	if err != nil {
		return nil, lost, err
	}
	if len(msgs) > 0 {
		t.offset = msgs[len(msgs)-1].Offset + 1
	}
	return msgs, lost, nil
}
