// Package workload generates synthetic Scuba workloads shaped like the ones
// the paper's introduction motivates: service performance logs, user-facing
// error monitoring, and ads revenue events (§1 — "code regression analysis,
// bug report monitoring, ads revenue monitoring, and performance
// debugging"). Generators are deterministic given a seed, so experiments are
// reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"scuba/internal/query"
	"scuba/internal/rowblock"
)

// Generator produces rows for one table.
type Generator struct {
	Table string
	rng   *rand.Rand
	now   int64
	make  func(g *Generator) rowblock.Row

	services []string
	hosts    []string
	products []string
	errors   []string
}

func newGenerator(table string, seed, start int64, mk func(*Generator) rowblock.Row) *Generator {
	g := &Generator{Table: table, rng: rand.New(rand.NewSource(seed)), now: start, make: mk}
	for i := 0; i < 12; i++ {
		g.services = append(g.services, fmt.Sprintf("svc-%s", []string{
			"web", "ads", "search", "graph", "msg", "video", "photos", "events",
			"pay", "iap", "growth", "infra"}[i]))
	}
	for i := 0; i < 200; i++ {
		g.hosts = append(g.hosts, fmt.Sprintf("host-%03d.prn%d", i, i%4+1))
	}
	g.products = []string{"www", "android", "ios", "msite", "api"}
	g.errors = []string{"timeout", "oom", "5xx", "null_deref", "assert", "net_unreach"}
	return g
}

// ServiceLogs generates performance-debugging rows: service, host, status,
// latency and CPU metrics, plus tags.
func ServiceLogs(seed, start int64) *Generator {
	return newGenerator("service_logs", seed, start, func(g *Generator) rowblock.Row {
		status := int64(200)
		switch {
		case g.rng.Float64() < 0.02:
			status = 500
		case g.rng.Float64() < 0.05:
			status = 404
		}
		return rowblock.Row{
			Time: g.tick(),
			Cols: map[string]rowblock.Value{
				"service":    rowblock.StringValue(g.services[g.rng.Intn(len(g.services))]),
				"host":       rowblock.StringValue(g.hosts[g.rng.Intn(len(g.hosts))]),
				"status":     rowblock.Int64Value(status),
				"latency_ms": rowblock.Int64Value(int64(g.rng.ExpFloat64() * 40)),
				// Measurements arrive quantized (0.25 ms ticks), like real
				// profiler output; full-entropy mantissas would be
				// unrealistically incompressible.
				"cpu_ms": rowblock.Float64Value(math.Round(g.rng.ExpFloat64()*12*4) / 4),
				"tags":   rowblock.SetValue("prod", fmt.Sprintf("tier%d", g.rng.Intn(3))),
			},
		}
	})
}

// ErrorEvents generates the error-monitoring workload from the paper's
// introduction ("detecting user-facing errors").
func ErrorEvents(seed, start int64) *Generator {
	return newGenerator("error_events", seed, start, func(g *Generator) rowblock.Row {
		return rowblock.Row{
			Time: g.tick(),
			Cols: map[string]rowblock.Value{
				"product":  rowblock.StringValue(g.products[g.rng.Intn(len(g.products))]),
				"error":    rowblock.StringValue(g.errors[g.rng.Intn(len(g.errors))]),
				"severity": rowblock.Int64Value(int64(g.rng.Intn(4))),
				"host":     rowblock.StringValue(g.hosts[g.rng.Intn(len(g.hosts))]),
				"count":    rowblock.Int64Value(1 + int64(g.rng.ExpFloat64()*3)),
			},
		}
	})
}

// AdsRevenue generates revenue-monitoring rows.
func AdsRevenue(seed, start int64) *Generator {
	return newGenerator("ads_revenue", seed, start, func(g *Generator) rowblock.Row {
		return rowblock.Row{
			Time: g.tick(),
			Cols: map[string]rowblock.Value{
				"campaign":    rowblock.StringValue(fmt.Sprintf("camp-%04d", g.rng.Intn(2000))),
				"product":     rowblock.StringValue(g.products[g.rng.Intn(len(g.products))]),
				"impressions": rowblock.Int64Value(1 + int64(g.rng.ExpFloat64()*10)),
				"revenue_usd": rowblock.Float64Value(g.rng.ExpFloat64() * 0.02),
			},
		}
	})
}

// tick advances time: many events share a second (timestamps are not
// unique, §2.1).
func (g *Generator) tick() int64 {
	if g.rng.Float64() < 0.3 {
		g.now++
	}
	return g.now
}

// Now returns the generator's current timestamp.
func (g *Generator) Now() int64 { return g.now }

// Next returns one row.
func (g *Generator) Next() rowblock.Row { return g.make(g) }

// NextBatch returns n rows.
func (g *Generator) NextBatch(n int) []rowblock.Row {
	out := make([]rowblock.Row, n)
	for i := range out {
		out[i] = g.make(g)
	}
	return out
}

// Queries generates a realistic query mix over a generator's table: time
// windows of varying width, filters on low-cardinality columns, group-bys
// with counts and latency aggregates.
type Queries struct {
	rng   *rand.Rand
	table string
	from  int64
	to    int64
}

// NewQueries builds a query generator over [from, to].
func NewQueries(seed int64, table string, from, to int64) *Queries {
	return &Queries{rng: rand.New(rand.NewSource(seed)), table: table, from: from, to: to}
}

// Next produces one query.
func (qs *Queries) Next() *query.Query {
	span := qs.to - qs.from
	if span < 1 {
		span = 1
	}
	width := span / int64(1<<qs.rng.Intn(6)) // whole range down to 1/32
	start := qs.from + qs.rng.Int63n(span)
	q := &query.Query{
		Table:        qs.table,
		From:         start,
		To:           start + width,
		Aggregations: []query.Aggregation{{Op: query.AggCount}},
	}
	switch qs.rng.Intn(5) {
	case 0:
		q.GroupBy = []string{"service"}
		q.Aggregations = append(q.Aggregations, query.Aggregation{Op: query.AggAvg, Column: "latency_ms"})
	case 1:
		q.Filters = []query.Filter{{Column: "status", Op: query.OpGe, Int: 500}}
		q.GroupBy = []string{"host"}
		q.Limit = 10
	case 2:
		q.Aggregations = append(q.Aggregations,
			query.Aggregation{Op: query.AggP90, Column: "latency_ms"},
			query.Aggregation{Op: query.AggP99, Column: "latency_ms"})
	case 3:
		// A dashboard time-series panel: error count per minute.
		q.TimeBucketSeconds = 60
		q.Filters = []query.Filter{{Column: "status", Op: query.OpGe, Int: 500}}
	default:
		q.Filters = []query.Filter{{Column: "service", Op: query.OpEq, Str: "svc-web"}}
	}
	return q
}
