package workload

import (
	"testing"

	"scuba/internal/rowblock"
	"scuba/internal/table"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, mk := range []func(int64, int64) *Generator{ServiceLogs, ErrorEvents, AdsRevenue} {
		a, b := mk(42, 1000), mk(42, 1000)
		ra, rb := a.NextBatch(50), b.NextBatch(50)
		for i := range ra {
			if ra[i].Time != rb[i].Time {
				t.Fatalf("%s: nondeterministic times at %d", a.Table, i)
			}
			for k, v := range ra[i].Cols {
				w := rb[i].Cols[k]
				if v.Str != w.Str || v.Int != w.Int || v.Float != w.Float || len(v.Set) != len(w.Set) {
					t.Fatalf("%s: nondeterministic col %q at %d", a.Table, k, i)
				}
			}
		}
	}
}

func TestRowsIngestCleanly(t *testing.T) {
	for _, mk := range []func(int64, int64) *Generator{ServiceLogs, ErrorEvents, AdsRevenue} {
		g := mk(1, 1700000000)
		tbl := table.New(g.Table, table.Options{})
		if err := tbl.AddRows(g.NextBatch(500), 1); err != nil {
			t.Fatalf("%s: %v", g.Table, err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatalf("%s: %v", g.Table, err)
		}
		if tbl.Rows() != 500 {
			t.Errorf("%s: rows = %d", g.Table, tbl.Rows())
		}
	}
}

func TestTimesRoughlyChronological(t *testing.T) {
	g := ServiceLogs(7, 1000)
	rows := g.NextBatch(1000)
	prev := int64(0)
	for i, r := range rows {
		if r.Time < prev {
			t.Fatalf("time went backwards at %d", i)
		}
		prev = r.Time
	}
	if g.Now() <= 1000 {
		t.Error("clock did not advance")
	}
	if g.Now() >= 2000 {
		t.Error("clock advanced too fast (timestamps should repeat)")
	}
}

func TestQueriesValidAndVaried(t *testing.T) {
	qs := NewQueries(3, "service_logs", 1000, 2000)
	groupBys, filters := 0, 0
	for i := 0; i < 100; i++ {
		q := qs.Next()
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if q.From < 1000 || q.From > 2000 {
			t.Errorf("query %d from = %d", i, q.From)
		}
		if len(q.GroupBy) > 0 {
			groupBys++
		}
		if len(q.Filters) > 0 {
			filters++
		}
	}
	if groupBys == 0 || filters == 0 {
		t.Errorf("mix not varied: %d group-bys, %d filters", groupBys, filters)
	}
}

func TestServiceLogsShape(t *testing.T) {
	g := ServiceLogs(5, 0)
	row := g.Next()
	for _, col := range []string{"service", "host", "status", "latency_ms", "cpu_ms", "tags"} {
		if _, ok := row.Cols[col]; !ok {
			t.Errorf("missing column %q", col)
		}
	}
	if _, reserved := row.Cols[rowblock.TimeColumn]; reserved {
		t.Error("generator emitted reserved time column")
	}
}
