package aggregator

import (
	"testing"

	"scuba/internal/obs"
)

// A shard-routing aggregator must plan __system.* queries as a whole-table
// fan-out to every leaf: self-telemetry tables are leaf-local plain tables,
// so a shard-scoped plan would rewrite to physical "T@s" names no sink ever
// wrote and the telemetry would be invisible.
func TestSystemTableBypassesShardRouting(t *testing.T) {
	a, fakes, _ := shardedAgg(t, 4, 2, 8)

	// Sanity: a user table IS shard-routed (no whole-table calls).
	if _, err := a.Query(countQ("service_logs")); err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if f.full != 0 {
			t.Fatalf("leaf %d saw %d whole-table calls for a sharded user table", i, f.full)
		}
	}

	res, err := a.Query(countQ(obs.SystemLeafMetricsTable))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if f.full != 1 {
			t.Errorf("leaf %d whole-table calls = %d, want 1", i, f.full)
		}
	}
	// Unsharded semantics: per-leaf coverage, no shard accounting.
	if res.LeavesTotal != 4 || res.LeavesAnswered != 4 {
		t.Errorf("leaf coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
	if res.ShardsTotal != 0 || res.ShardsAnswered != 0 {
		t.Errorf("system table picked up shard accounting: %d/%d", res.ShardsAnswered, res.ShardsTotal)
	}
}
