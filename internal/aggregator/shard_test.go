package aggregator

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/shard"
)

// shardFake is a shard-capable fake leaf: it records every shard-scoped call
// and answers one row per shard so merges are checkable by count.
type shardFake struct {
	mu    sync.Mutex
	calls [][]int
	full  int // whole-table (non-shard) queries received
	delay time.Duration
	err   error
}

func (f *shardFake) Query(q *query.Query) (*query.Result, error) {
	f.mu.Lock()
	f.full++
	f.mu.Unlock()
	return query.NewResult(), nil
}

func (f *shardFake) QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	f.mu.Lock()
	f.calls = append(f.calls, append([]int(nil), shards...))
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.err != nil {
		return nil, nil, f.err
	}
	res := query.NewResult()
	res.RowsScanned = int64(len(shards)) // one row per shard, checkable after merge
	return res, &obs.ExecStats{Table: q.Table, ShardsServed: len(shards)}, nil
}

func (f *shardFake) shardsSeen() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var all []int
	for _, c := range f.calls {
		all = append(all, c...)
	}
	sort.Ints(all)
	return all
}

func shardedAgg(t *testing.T, n, replication, numShards int) (*Aggregator, []*shardFake, *shard.Router) {
	t.Helper()
	fakes := make([]*shardFake, n)
	targets := make([]LeafTarget, n)
	leaves := make([]shard.Leaf, n)
	labels := make([]string, n)
	for i := range fakes {
		fakes[i] = &shardFake{}
		targets[i] = fakes[i]
		leaves[i] = shard.Leaf{Name: fmt.Sprintf("leaf%d", i), Machine: i / 2}
		labels[i] = leaves[i].Name
	}
	r := shard.NewRouter(shard.NewMap(leaves, replication, numShards))
	a := New(targets)
	a.Router = r
	a.Labels = labels
	return a, fakes, r
}

func countQ(table string) *query.Query {
	return &query.Query{Table: table, From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
}

// TestShardRoutingOnlyOwners checks the tentpole routing invariant: each leaf
// receives exactly the shards the map assigns it, their union covers the
// table, and the merged result reports full shard coverage.
func TestShardRoutingOnlyOwners(t *testing.T) {
	a, fakes, r := shardedAgg(t, 4, 2, 8)
	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	asn := r.Assign("events")
	var covered int
	for i, f := range fakes {
		want := append([]int(nil), asn.PerLeaf[i]...)
		sort.Ints(want)
		got := f.shardsSeen()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("leaf%d served shards %v, assignment says %v", i, got, want)
		}
		if f.full != 0 {
			t.Fatalf("leaf%d got %d whole-table queries under shard routing", i, f.full)
		}
		covered += len(got)
	}
	if covered != 8 {
		t.Fatalf("shards covered = %d, want 8", covered)
	}
	if res.ShardsTotal != 8 || res.ShardsAnswered != 8 {
		t.Fatalf("coverage %d/%d, want 8/8", res.ShardsAnswered, res.ShardsTotal)
	}
	if res.ShardCoverage() != 1 {
		t.Fatalf("ShardCoverage = %v, want 1", res.ShardCoverage())
	}
	// One row per shard survived the merge — no double-counting.
	if res.RowsScanned != 8 {
		t.Fatalf("merged RowsScanned = %d, want 8", res.RowsScanned)
	}
}

// TestShardFailoverOnDraining drains one leaf and checks that no query ever
// reaches it while coverage stays complete: every one of its shards is served
// by a replica (R=2 over 4 machines).
func TestShardFailoverOnDraining(t *testing.T) {
	a, fakes, r := shardedAgg(t, 8, 2, 16)
	r.SetStatus(3, shard.StatusDraining)
	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	if got := fakes[3].shardsSeen(); len(got) != 0 {
		t.Fatalf("draining leaf3 was queried for shards %v", got)
	}
	if fakes[3].full != 0 {
		t.Fatalf("draining leaf3 got a whole-table query")
	}
	if res.ShardsAnswered != res.ShardsTotal || res.ShardsTotal != 16 {
		t.Fatalf("coverage %d/%d after drain, want 16/16", res.ShardsAnswered, res.ShardsTotal)
	}
	// Recover: after reactivation the primary serves again.
	r.SetStatus(3, shard.StatusActive)
	fakes[3].mu.Lock()
	fakes[3].calls = nil
	fakes[3].mu.Unlock()
	if _, err := a.Query(countQ("events")); err != nil {
		t.Fatal(err)
	}
	asn := r.Assign("events")
	if len(asn.PerLeaf[3]) > 0 && len(fakes[3].shardsSeen()) == 0 {
		t.Fatal("reactivated leaf3 owns shards but was not queried")
	}
}

// TestShardCoverageLossWithoutReplicas pins the replica-less floor: with R=1
// a drained leaf's shards are simply unserved, and the result, the trace, and
// the metrics all report the same partial coverage (the satellite-4
// reconciliation, shard edition).
func TestShardCoverageLossWithoutReplicas(t *testing.T) {
	a, _, r := shardedAgg(t, 4, 1, 12)
	a.Metrics = metrics.NewRegistry()
	a.Tracer = obs.NewTracer(obs.TracerOptions{})
	r.SetStatus(2, shard.StatusDraining)
	lost := len(r.Assign("events").PerLeaf[2]) // shards leaf2 would have served
	asn := r.Assign("events")
	if len(asn.Unserved) == 0 {
		t.Skip("leaf2 owns no shard of this table; hash moved them all elsewhere")
	}
	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	_ = lost
	if res.ShardsTotal != 12 {
		t.Fatalf("ShardsTotal = %d, want 12", res.ShardsTotal)
	}
	if res.ShardsAnswered != 12-len(asn.Unserved) {
		t.Fatalf("ShardsAnswered = %d, want %d", res.ShardsAnswered, 12-len(asn.Unserved))
	}
	snap := a.Metrics.Snapshot()
	if snap.Counters["query.shards_total"] != int64(res.ShardsTotal) ||
		snap.Counters["query.shards_answered"] != int64(res.ShardsAnswered) ||
		snap.Counters["query.shards_unserved"] != int64(len(asn.Unserved)) {
		t.Fatalf("metrics %d/%d/%d disagree with result %d/%d (unserved %d)",
			snap.Counters["query.shards_total"], snap.Counters["query.shards_answered"],
			snap.Counters["query.shards_unserved"], res.ShardsTotal, res.ShardsAnswered, len(asn.Unserved))
	}
	traces := a.Tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].ShardsTotal != res.ShardsTotal || traces[0].ShardsAnswered != res.ShardsAnswered {
		t.Fatalf("trace coverage %d/%d disagrees with result %d/%d",
			traces[0].ShardsAnswered, traces[0].ShardsTotal, res.ShardsAnswered, res.ShardsTotal)
	}
}

// TestCoverageReconciliationAbandonedLeaf is the satellite-4 regression test:
// one leaf is abandoned at the deadline, and the merged result, the recorded
// trace, and the metrics counters must all agree on leaf AND shard coverage —
// the dashboards and /debug/traces can never tell different stories.
func TestCoverageReconciliationAbandonedLeaf(t *testing.T) {
	a, fakes, r := shardedAgg(t, 4, 1, 8)
	a.Metrics = metrics.NewRegistry()
	a.Tracer = obs.NewTracer(obs.TracerOptions{})
	a.LeafTimeout = 50 * time.Millisecond
	slow := -1
	for i := range fakes {
		if len(r.Assign("events").PerLeaf[i]) > 0 {
			slow = i
			break
		}
	}
	if slow < 0 {
		t.Fatal("no leaf owns any shard")
	}
	fakes[slow].delay = 2 * time.Second
	slowShards := len(r.Assign("events").PerLeaf[slow])

	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	servingLeaves := len(r.Assign("events").PerLeaf)
	if res.LeavesTotal != servingLeaves || res.LeavesAnswered != servingLeaves-1 {
		t.Fatalf("leaf coverage %d/%d, want %d/%d", res.LeavesAnswered, res.LeavesTotal, servingLeaves-1, servingLeaves)
	}
	if res.ShardsAnswered != 8-slowShards {
		t.Fatalf("ShardsAnswered = %d, want %d (abandoned leaf held %d)", res.ShardsAnswered, 8-slowShards, slowShards)
	}

	traces := a.Tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.LeavesTotal != res.LeavesTotal || tr.LeavesAnswered != res.LeavesAnswered {
		t.Fatalf("trace leaves %d/%d != result %d/%d", tr.LeavesAnswered, tr.LeavesTotal, res.LeavesAnswered, res.LeavesTotal)
	}
	if tr.ShardsTotal != res.ShardsTotal || tr.ShardsAnswered != res.ShardsAnswered {
		t.Fatalf("trace shards %d/%d != result %d/%d", tr.ShardsAnswered, tr.ShardsTotal, res.ShardsAnswered, res.ShardsTotal)
	}
	answeredSpans, abandonedSpans := 0, 0
	for _, sp := range tr.Spans {
		if sp.Answered {
			answeredSpans++
		} else if sp.Err == "abandoned at leaf deadline" {
			abandonedSpans++
		}
	}
	if answeredSpans != res.LeavesAnswered {
		t.Fatalf("answered spans = %d, result says %d", answeredSpans, res.LeavesAnswered)
	}
	if abandonedSpans != 1 {
		t.Fatalf("abandoned spans = %d, want 1", abandonedSpans)
	}
	snap := a.Metrics.Snapshot()
	if snap.Counters["query.leaves_total"] != int64(res.LeavesTotal) ||
		snap.Counters["query.leaves_answered"] != int64(res.LeavesAnswered) ||
		snap.Counters["query.leaves_abandoned"] != 1 ||
		snap.Counters["query.shards_answered"] != int64(res.ShardsAnswered) {
		t.Fatalf("metrics disagree with result: %+v vs leaves %d/%d shards %d",
			snap.Counters, res.LeavesAnswered, res.LeavesTotal, res.ShardsAnswered)
	}
}

// TestShardSpansCarryShardLists checks traces label each leaf span with the
// shards it was asked for, so /debug/traces shows the routing decision.
func TestShardSpansCarryShardLists(t *testing.T) {
	a, _, r := shardedAgg(t, 4, 2, 8)
	a.Tracer = obs.NewTracer(obs.TracerOptions{})
	if _, err := a.Query(countQ("events")); err != nil {
		t.Fatal(err)
	}
	asn := r.Assign("events")
	tr := a.Tracer.Recent()[0]
	if len(tr.Spans) != len(asn.PerLeaf) {
		t.Fatalf("spans = %d, serving leaves = %d", len(tr.Spans), len(asn.PerLeaf))
	}
	for _, sp := range tr.Spans {
		if len(sp.Shards) == 0 {
			t.Fatalf("span %q has no shard list", sp.Leaf)
		}
	}
}

// TestShardRoutingNeedsShardTargets: routing to a target that cannot serve
// shard-scoped queries fails that leaf (erroring its span) rather than
// silently widening to a whole-table query.
func TestShardRoutingNeedsShardTargets(t *testing.T) {
	plain := &fakeLeafPlain{}
	a := New([]LeafTarget{plain})
	a.Router = shard.NewRouter(shard.NewMap([]shard.Leaf{{Name: "p", Machine: 0}}, 1, 4))
	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsAnswered != 0 || res.LeavesAnswered != 0 {
		t.Fatalf("non-shard target answered: %d/%d shards", res.ShardsAnswered, res.ShardsTotal)
	}
	if plain.calls != 0 {
		t.Fatal("plain target received a whole-table query under shard routing")
	}
}

// TestShardQueryFailoverOnDeadLeaf covers the routing race a rolling restart
// creates: a query planned before the drain flip hits a dead primary. The
// aggregator must re-fetch that slot's shards from replicas — shard coverage
// stays full, leaf coverage shows the dip, and the span records the failover.
func TestShardQueryFailoverOnDeadLeaf(t *testing.T) {
	a, fakes, r := shardedAgg(t, 4, 2, 8)
	a.Tracer = obs.NewTracer(obs.TracerOptions{})
	dead := -1
	for i := range fakes {
		if len(r.Assign("events").PerLeaf[i]) > 0 {
			dead = i
			break
		}
	}
	fakes[dead].err = fmt.Errorf("leaf restarting")
	deadShards := len(r.Assign("events").PerLeaf[dead])

	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsAnswered != 8 {
		t.Fatalf("shard coverage %d/8 after failover, want 8/8", res.ShardsAnswered)
	}
	if res.LeavesAnswered != res.LeavesTotal-1 {
		t.Fatalf("leaf coverage %d/%d, want the dead leaf unanswered", res.LeavesAnswered, res.LeavesTotal)
	}
	// All 8 shards' rows present exactly once (replicas answered the dead
	// leaf's shards, nobody double-counted).
	if res.RowsScanned != 8 {
		t.Fatalf("RowsScanned = %d, want 8", res.RowsScanned)
	}
	tr := a.Tracer.Recent()[0]
	if tr.ShardsAnswered != 8 || tr.LeavesAnswered != res.LeavesAnswered {
		t.Fatalf("trace coverage %d shards %d leaves disagrees with result", tr.ShardsAnswered, tr.LeavesAnswered)
	}
	found := false
	for _, sp := range tr.Spans {
		if strings.Contains(sp.Err, "failed over to replicas") {
			found = true
			if !strings.Contains(sp.Err, fmt.Sprintf("%d/%d shards", deadShards, deadShards)) {
				t.Fatalf("span failover note = %q, want %d/%d shards", sp.Err, deadShards, deadShards)
			}
		}
	}
	if !found {
		t.Fatal("no span records the failover")
	}
}

type fakeLeafPlain struct{ calls int }

func (f *fakeLeafPlain) Query(q *query.Query) (*query.Result, error) {
	f.calls++
	return query.NewResult(), nil
}

// hookShard lets a test fail specific QueryShards calls (by inspecting the
// requested shards) while delegating everything else to shardFake.
type hookShard struct {
	shardFake
	hook func(shards []int) error
}

func (h *hookShard) QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	if err := h.hook(shards); err != nil {
		return nil, nil, err
	}
	return h.shardFake.QueryShards(q, shards, tc)
}

// TestShardQueryFailoverRetriesRestartedOwner pins the multi-pass failover:
// a slow query straddles two rollover batches, so the primary's scan dies
// with the first restart and the replica's failover attempt dies with the
// second. By then the primary is back ACTIVE, and a re-plan against fresh
// shard-map status must recover the shards instead of reporting them
// missing.
func TestShardQueryFailoverRetriesRestartedOwner(t *testing.T) {
	leaves := []shard.Leaf{{Name: "leaf0", Machine: 0}, {Name: "leaf1", Machine: 1}}
	r := shard.NewRouter(shard.NewMap(leaves, 2, 4))
	asn := r.Assign("events")
	own1 := fmt.Sprint(append([]int(nil), asn.PerLeaf[1]...))

	var failed0, failed1 sync.Once
	var died0, died1 bool
	h0 := &hookShard{hook: func(shards []int) error {
		// The primary call dies (leaf killed mid-scan); later calls succeed
		// (the restarted process serves the restored data).
		var err error
		failed0.Do(func() { died0 = true; err = fmt.Errorf("leaf0 restarting") })
		return err
	}}
	h1 := &hookShard{hook: func(shards []int) error {
		// Fail only the failover fetch of leaf0's shards (the second batch
		// kills this leaf mid-scan too); its own primary slot succeeds.
		s := fmt.Sprint(shards)
		var err error
		if s != own1 {
			failed1.Do(func() { died1 = true; err = fmt.Errorf("leaf1 restarting") })
		}
		return err
	}}
	a := New([]LeafTarget{h0, h1})
	a.Router = r
	a.Labels = []string{"leaf0", "leaf1"}

	res, err := a.Query(countQ("events"))
	if err != nil {
		t.Fatal(err)
	}
	if !died0 || !died1 {
		t.Fatalf("harness bug: kill hooks fired = %v/%v, want both", died0, died1)
	}
	if res.ShardsAnswered != 4 {
		t.Fatalf("shard coverage %d/4 after double failover, want 4/4", res.ShardsAnswered)
	}
	// Every shard's rows present exactly once: the retried shards were not
	// double-merged with any earlier partial.
	if res.RowsScanned != 4 {
		t.Fatalf("RowsScanned = %d, want 4", res.RowsScanned)
	}
}
