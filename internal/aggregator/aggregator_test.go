package aggregator

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"scuba/internal/disk"
	"scuba/internal/leaf"
	"scuba/internal/metrics"
	"scuba/internal/query"
	"scuba/internal/rowblock"
	"scuba/internal/shm"
)

func newLeaf(t *testing.T, id int) *leaf.Leaf {
	t.Helper()
	l, err := leaf.New(leaf.Config{
		ID:         id,
		Shm:        shm.Options{Dir: t.TempDir(), Namespace: "test"},
		DiskRoot:   t.TempDir(),
		DiskFormat: disk.FormatRow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	return l
}

func ingest(t *testing.T, l *leaf.Leaf, n int, start int64) {
	t.Helper()
	rows := make([]rowblock.Row, n)
	for i := range rows {
		rows[i] = rowblock.Row{Time: start + int64(i), Cols: map[string]rowblock.Value{
			"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%2)),
			"v":       rowblock.Int64Value(1),
		}}
	}
	if err := l.AddRows("events", rows); err != nil {
		t.Fatal(err)
	}
}

func countQuery() *query.Query {
	return &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}}}
}

func TestFanOutMerge(t *testing.T) {
	leaves := make([]LeafTarget, 4)
	for i := range leaves {
		l := newLeaf(t, i)
		ingest(t, l, 100*(i+1), int64(i*1000))
		leaves[i] = l
	}
	a := New(leaves)
	q := countQuery()
	res, err := a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != 100+200+300+400 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
	if res.LeavesTotal != 4 || res.LeavesAnswered != 4 {
		t.Errorf("coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
	if res.Coverage() != 1 {
		t.Errorf("coverage = %v", res.Coverage())
	}
}

func TestPartialResultsWhenLeafDown(t *testing.T) {
	// The core availability property (§1): queries keep working with
	// partial results while leaves restart.
	l0, l1 := newLeaf(t, 0), newLeaf(t, 1)
	ingest(t, l0, 100, 0)
	ingest(t, l1, 100, 5000)
	if _, err := l1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	a := New([]LeafTarget{l0, l1})
	q := countQuery()
	res, err := a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != 100 {
		t.Errorf("count = %v, want only the live leaf's rows", rows[0].Values[0])
	}
	if res.LeavesAnswered != 1 || res.LeavesTotal != 2 {
		t.Errorf("coverage = %d/%d", res.LeavesAnswered, res.LeavesTotal)
	}
	if math.Abs(res.Coverage()-0.5) > 1e-9 {
		t.Errorf("coverage = %v", res.Coverage())
	}
}

func TestGroupByAcrossLeaves(t *testing.T) {
	l0, l1 := newLeaf(t, 0), newLeaf(t, 1)
	ingest(t, l0, 100, 0)
	ingest(t, l1, 100, 5000)
	a := New([]LeafTarget{l0, l1})
	q := &query.Query{Table: "events", From: 0, To: 1 << 40,
		Aggregations: []query.Aggregation{{Op: query.AggCount}, {Op: query.AggSum, Column: "v"}},
		GroupBy:      []string{"service"}}
	res, err := a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(q)
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if r.Values[0] != 100 || r.Values[1] != 100 {
			t.Errorf("group %v = %v", r.Key, r.Values)
		}
	}
}

func TestNoLeaves(t *testing.T) {
	a := New(nil)
	if _, err := a.Query(countQuery()); !errors.Is(err, ErrNoLeaves) {
		t.Errorf("err = %v", err)
	}
}

func TestInvalidQueryRejectedBeforeFanOut(t *testing.T) {
	a := New([]LeafTarget{newLeaf(t, 0)})
	bad := &query.Query{Table: "", From: 0, To: 1}
	if _, err := a.Query(bad); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestHierarchicalAggregation(t *testing.T) {
	// Scuba runs trees of aggregators; coverage must propagate through the
	// levels instead of counting a downstream aggregator as one leaf.
	l0, l1, l2 := newLeaf(t, 0), newLeaf(t, 1), newLeaf(t, 2)
	ingest(t, l0, 100, 0)
	ingest(t, l1, 200, 1000)
	ingest(t, l2, 300, 2000)
	if _, err := l2.Shutdown(); err != nil { // one leaf down
		t.Fatal(err)
	}
	lower1 := New([]LeafTarget{l0, l1})
	lower2 := New([]LeafTarget{l2})
	root := New([]LeafTarget{aggTarget{lower1}, aggTarget{lower2}})

	q := countQuery()
	res, err := root.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesTotal != 3 || res.LeavesAnswered != 2 {
		t.Errorf("coverage = %d/%d, want 2/3", res.LeavesAnswered, res.LeavesTotal)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 300 {
		t.Errorf("count = %v, want 300 (l2 down)", rows[0].Values[0])
	}
}

// aggTarget adapts an aggregator as a query target of a higher level.
type aggTarget struct{ a *Aggregator }

func (t aggTarget) Query(q *query.Query) (*query.Result, error) { return t.a.Query(q) }

func TestBoundedParallelism(t *testing.T) {
	leaves := make([]LeafTarget, 16)
	for i := range leaves {
		l := newLeaf(t, i)
		ingest(t, l, 10, 0)
		leaves[i] = l
	}
	a := New(leaves)
	a.Parallelism = 2
	q := countQuery()
	res, err := a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(q); rows[0].Values[0] != 160 {
		t.Errorf("count = %v", rows[0].Values[0])
	}
	if a.NumLeaves() != 16 {
		t.Errorf("NumLeaves = %d", a.NumLeaves())
	}
}

func TestQueryMetrics(t *testing.T) {
	leaves := make([]LeafTarget, 3)
	for i := range leaves {
		l := newLeaf(t, i)
		ingest(t, l, 50, int64(i*1000))
		leaves[i] = l
	}
	a := New(leaves)
	a.Metrics = metrics.NewRegistry()
	for i := 0; i < 4; i++ {
		if _, err := a.Query(countQuery()); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Metrics
	if got := r.Counter("query.count").Value(); got != 4 {
		t.Errorf("query.count = %d", got)
	}
	if got := r.Counter("query.leaves_answered").Value(); got != 12 {
		t.Errorf("query.leaves_answered = %d", got)
	}
	if st := r.Timer("query.latency").Stats(); st.Count != 4 {
		t.Errorf("latency timer count = %d", st.Count)
	}
	if st := r.Histogram("query.latency_hist").Stats(); st.Count != 4 || !st.IsDuration {
		t.Errorf("latency histogram = %+v", st)
	}
	if st := r.Histogram("query.fanout").Stats(); st.Count != 4 || st.Max != 3 {
		t.Errorf("fanout histogram = %+v", st)
	}
	// Validation failures count as errors, not latency samples.
	if _, err := a.Query(&query.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if got := r.Counter("query.errors").Value(); got != 1 {
		t.Errorf("query.errors = %d", got)
	}
}
