// Package aggregator implements Scuba's aggregator servers (§2, Figure 1).
// An aggregator distributes a query to all leaf servers and aggregates the
// results as they arrive. Scuba returns partial query results when not all
// servers are available (§1); the aggregator therefore never fails a query
// because some leaves are restarting — it reports coverage instead.
package aggregator

import (
	"errors"
	"fmt"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
)

// leafAnswer is one leaf's reply during fan-out (res nil on error).
type leafAnswer struct {
	i    int
	res  *query.Result
	exec *obs.ExecStats
	err  error
	rtt  time.Duration
}

// LeafTarget is a leaf as seen by the aggregator. In-process clusters adapt
// *leaf.Leaf; distributed deployments adapt a wire client.
type LeafTarget interface {
	Query(q *query.Query) (*query.Result, error)
}

// TracedTarget is a LeafTarget that accepts trace context and reports
// structured execution stats. *leaf.Leaf and *wire.Client both implement it;
// targets that don't are queried untraced and appear in the trace as a span
// without an exec report.
type TracedTarget interface {
	QueryTraced(q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error)
}

// Aggregator fans queries out to a fixed set of leaves.
type Aggregator struct {
	leaves []LeafTarget
	// Parallelism bounds concurrent per-leaf queries (0 = all at once).
	Parallelism int
	// LeafTimeout bounds how long a query waits for any single leaf
	// (0 = wait forever). At the deadline the merge proceeds with whatever
	// has arrived; stragglers are abandoned and show up as unanswered in
	// LeavesTotal/LeavesAnswered coverage — the paper's partial-results
	// contract (§1) instead of one hung leaf wedging every query.
	LeafTimeout time.Duration
	// Metrics, when non-nil, receives per-query instrumentation: the
	// query.latency timer and query.latency_hist histogram (end-to-end
	// fan-out + merge), query.count / query.errors counters, the
	// query.leaves_total / query.leaves_answered coverage counters, a
	// query.leaves_abandoned counter of stragglers dropped at LeafTimeout,
	// and a query.fanout histogram of leaves answered per query. With a
	// Tracer set, a query.slow counter tracks slow-log admissions.
	Metrics *metrics.Registry
	// Tracer, when non-nil, turns on per-query tracing: every query is
	// stamped with a trace ID and per-leaf span IDs, targets that implement
	// TracedTarget return ExecStats, and the assembled cross-leaf trace
	// lands in the tracer's rings (/debug/traces, /debug/slow).
	Tracer *obs.Tracer
	// Labels names each leaf in traces (index-parallel to the targets);
	// missing entries render as "leaf<i>". Daemons set the leaf addresses.
	Labels []string
}

// New creates an aggregator over the given leaves.
func New(leaves []LeafTarget) *Aggregator {
	return &Aggregator{leaves: leaves}
}

// ErrNoLeaves is returned when the aggregator has no leaves at all.
var ErrNoLeaves = errors.New("aggregator: no leaves configured")

// Query runs q on every leaf and merges the partial results. Leaves that
// error (restarting, unreachable) are skipped; the merged result's
// LeavesTotal/LeavesAnswered report the coverage users see on dashboards.
func (a *Aggregator) Query(q *query.Query) (*query.Result, error) {
	return a.QueryTraced(q, obs.TraceContext{})
}

// QueryTraced runs a query with trace context. A nonzero parent trace ID is
// adopted (aggregator trees keep one trace ID end to end); otherwise the
// aggregator's tracer mints one, and with no tracer the query runs untraced
// exactly as before the trace protocol existed.
func (a *Aggregator) QueryTraced(q *query.Query, parent obs.TraceContext) (*query.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, err
	}
	if len(a.leaves) == 0 {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, ErrNoLeaves
	}
	traceID := parent.TraceID
	if traceID == 0 {
		traceID = a.Tracer.NewTraceID()
	}
	// Span contexts are stamped before fan-out so each goroutine only reads
	// its own slot: one span ID per target, reused across wire-client
	// retries, so the assembled trace has exactly one span per leaf.
	ctxs := make([]obs.TraceContext, len(a.leaves))
	if traceID != 0 {
		for i := range ctxs {
			ctxs[i] = obs.TraceContext{TraceID: traceID, SpanID: obs.RandomID()}
		}
	}
	sem := make(chan struct{}, a.parallelism())
	// The channel is buffered for the full fan-out, so a leaf answering
	// after its deadline completes its send and exits instead of leaking.
	answers := make(chan leafAnswer, len(a.leaves))
	for i, l := range a.leaves {
		go func(i int, l LeafTarget) {
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			res, exec, err := queryTarget(l, q, ctxs[i])
			if err != nil {
				res, exec = nil, nil
			}
			answers <- leafAnswer{i: i, res: res, exec: exec, err: err, rtt: time.Since(t0)}
		}(i, l)
	}

	var deadline <-chan time.Time
	if a.LeafTimeout > 0 {
		tm := time.NewTimer(a.LeafTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	// Only the collector writes results and spans, so an abandoned straggler
	// can never race the merge below.
	results := make([]*query.Result, len(a.leaves))
	spans := make([]obs.LeafSpan, len(a.leaves))
	for i := range spans {
		spans[i] = obs.LeafSpan{SpanID: ctxs[i].SpanID, Leaf: a.leafLabel(i)}
	}
	abandoned := 0
collect:
	for received := 0; received < len(a.leaves); received++ {
		select {
		case ans := <-answers:
			results[ans.i] = ans.res
			sp := &spans[ans.i]
			sp.RTTNanos = ans.rtt.Nanoseconds()
			if ans.err != nil {
				sp.Err = ans.err.Error()
			} else {
				sp.Answered = true
				sp.Exec = ans.exec
			}
		case <-deadline:
			abandoned = len(a.leaves) - received
			break collect
		}
	}

	merged := query.NewResult()
	for _, res := range results {
		if res == nil {
			// Unreachable target: one leaf's worth of data missing (or an
			// unreachable downstream aggregator, counted as one).
			merged.LeavesTotal++
			continue
		}
		if res.LeavesTotal > 0 {
			// The target is itself an aggregator (Scuba runs trees of
			// them): adopt its coverage instead of counting it as one leaf.
			merged.LeavesTotal += res.LeavesTotal
			merged.LeavesAnswered += res.LeavesAnswered
			res.LeavesTotal, res.LeavesAnswered = 0, 0
		} else {
			merged.LeavesTotal++
			merged.LeavesAnswered++
		}
		merged.Merge(res)
	}
	if r := a.Metrics; r != nil {
		d := time.Since(start)
		r.Counter("query.count").Add(1)
		r.Timer("query.latency").Observe(d)
		r.Histogram("query.latency_hist").ObserveDuration(d)
		r.Counter("query.leaves_total").Add(int64(merged.LeavesTotal))
		r.Counter("query.leaves_answered").Add(int64(merged.LeavesAnswered))
		r.Counter("query.leaves_abandoned").Add(int64(abandoned))
		r.Histogram("query.fanout").Observe(int64(merged.LeavesAnswered))
	}
	if a.Tracer != nil && traceID != 0 {
		d := time.Since(start)
		for i := range spans {
			// Stragglers abandoned at the deadline never reached the
			// collector: record the elapsed time at abandonment.
			if sp := &spans[i]; !sp.Answered && sp.Err == "" && sp.RTTNanos == 0 {
				sp.RTTNanos = d.Nanoseconds()
				sp.Err = "abandoned at leaf deadline"
			}
		}
		slow := a.Tracer.Record(obs.Trace{
			TraceID:        traceID,
			Query:          q.String(),
			Start:          start,
			DurationNanos:  d.Nanoseconds(),
			LeavesTotal:    merged.LeavesTotal,
			LeavesAnswered: merged.LeavesAnswered,
			Spans:          spans,
		})
		if slow && a.Metrics != nil {
			a.Metrics.Counter("query.slow").Add(1)
		}
	}
	return merged, nil
}

// queryTarget invokes one target, through the traced interface when the
// query is traced and the target supports it.
func queryTarget(l LeafTarget, q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	if tt, ok := l.(TracedTarget); ok && tc.TraceID != 0 {
		return tt.QueryTraced(q, tc)
	}
	res, err := l.Query(q)
	return res, nil, err
}

func (a *Aggregator) leafLabel(i int) string {
	if i < len(a.Labels) && a.Labels[i] != "" {
		return a.Labels[i]
	}
	return fmt.Sprintf("leaf%d", i)
}

func (a *Aggregator) parallelism() int {
	if a.Parallelism > 0 {
		return a.Parallelism
	}
	return len(a.leaves)
}

// NumLeaves returns the fan-out width.
func (a *Aggregator) NumLeaves() int { return len(a.leaves) }
