// Package aggregator implements Scuba's aggregator servers (§2, Figure 1).
// An aggregator distributes a query to all leaf servers and aggregates the
// results as they arrive. Scuba returns partial query results when not all
// servers are available (§1); the aggregator therefore never fails a query
// because some leaves are restarting — it reports coverage instead.
package aggregator

import (
	"errors"
	"sync"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/query"
)

// LeafTarget is a leaf as seen by the aggregator. In-process clusters adapt
// *leaf.Leaf; distributed deployments adapt a wire client.
type LeafTarget interface {
	Query(q *query.Query) (*query.Result, error)
}

// Aggregator fans queries out to a fixed set of leaves.
type Aggregator struct {
	leaves []LeafTarget
	// Parallelism bounds concurrent per-leaf queries (0 = all at once).
	Parallelism int
	// Metrics, when non-nil, receives per-query instrumentation: the
	// query.latency timer and query.latency_hist histogram (end-to-end
	// fan-out + merge), query.count / query.errors counters, the
	// query.leaves_total / query.leaves_answered coverage counters, and a
	// query.fanout histogram of leaves answered per query.
	Metrics *metrics.Registry
}

// New creates an aggregator over the given leaves.
func New(leaves []LeafTarget) *Aggregator {
	return &Aggregator{leaves: leaves}
}

// ErrNoLeaves is returned when the aggregator has no leaves at all.
var ErrNoLeaves = errors.New("aggregator: no leaves configured")

// Query runs q on every leaf and merges the partial results. Leaves that
// error (restarting, unreachable) are skipped; the merged result's
// LeavesTotal/LeavesAnswered report the coverage users see on dashboards.
func (a *Aggregator) Query(q *query.Query) (*query.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, err
	}
	if len(a.leaves) == 0 {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, ErrNoLeaves
	}
	sem := make(chan struct{}, a.parallelism())
	results := make([]*query.Result, len(a.leaves))
	var wg sync.WaitGroup
	for i, l := range a.leaves {
		wg.Add(1)
		go func(i int, l LeafTarget) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := l.Query(q)
			if err == nil {
				results[i] = res
			}
		}(i, l)
	}
	wg.Wait()

	merged := query.NewResult()
	for _, res := range results {
		if res == nil {
			// Unreachable target: one leaf's worth of data missing (or an
			// unreachable downstream aggregator, counted as one).
			merged.LeavesTotal++
			continue
		}
		if res.LeavesTotal > 0 {
			// The target is itself an aggregator (Scuba runs trees of
			// them): adopt its coverage instead of counting it as one leaf.
			merged.LeavesTotal += res.LeavesTotal
			merged.LeavesAnswered += res.LeavesAnswered
			res.LeavesTotal, res.LeavesAnswered = 0, 0
		} else {
			merged.LeavesTotal++
			merged.LeavesAnswered++
		}
		merged.Merge(res)
	}
	if r := a.Metrics; r != nil {
		d := time.Since(start)
		r.Counter("query.count").Add(1)
		r.Timer("query.latency").Observe(d)
		r.Histogram("query.latency_hist").ObserveDuration(d)
		r.Counter("query.leaves_total").Add(int64(merged.LeavesTotal))
		r.Counter("query.leaves_answered").Add(int64(merged.LeavesAnswered))
		r.Histogram("query.fanout").Observe(int64(merged.LeavesAnswered))
	}
	return merged, nil
}

func (a *Aggregator) parallelism() int {
	if a.Parallelism > 0 {
		return a.Parallelism
	}
	return len(a.leaves)
}

// NumLeaves returns the fan-out width.
func (a *Aggregator) NumLeaves() int { return len(a.leaves) }
