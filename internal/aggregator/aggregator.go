// Package aggregator implements Scuba's aggregator servers (§2, Figure 1).
// An aggregator distributes a query to leaf servers and aggregates the
// results as they arrive. Scuba returns partial query results when not all
// servers are available (§1); the aggregator therefore never fails a query
// because some leaves are restarting — it reports coverage instead.
//
// Without a shard map the aggregator fans every query out to every leaf
// (the paper's §2 topology). With a shard.Router set, it routes each query
// only to the leaves owning the table's shards, failing over to a replica
// when a primary is draining or down — so a rolling restart (§5) keeps
// every shard queryable from a peer instead of dropping coverage.
package aggregator

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
	"scuba/internal/shard"
)

// leafAnswer is one target's reply during fan-out.
type leafAnswer struct {
	i    int // index into the fan-out plan
	res  *query.Result
	exec *obs.ExecStats
	err  error
	rtt  time.Duration
	// shardsOK is how many of the slot's shards were answered — by the
	// target itself, or by replicas after a failover retry (sharded plans).
	shardsOK int
	// failedOver marks a slot whose target errored but whose shards were
	// re-fetched from replicas: res holds the replicas' merged partials
	// while the leaf itself still counts as unanswered.
	failedOver bool
}

// LeafTarget is a leaf as seen by the aggregator. In-process clusters adapt
// *leaf.Leaf; distributed deployments adapt a wire client.
type LeafTarget interface {
	Query(q *query.Query) (*query.Result, error)
}

// TracedTarget is a LeafTarget that accepts trace context and reports
// structured execution stats. *leaf.Leaf and *wire.Client both implement it;
// targets that don't are queried untraced and appear in the trace as a span
// without an exec report.
type TracedTarget interface {
	QueryTraced(q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error)
}

// ShardTarget is a LeafTarget that can serve a shard-scoped query: only the
// named shards of the logical table, stored leaf-side as physical tables
// (shard.PhysicalTable). *leaf.Leaf, cluster nodes, and wire clients all
// implement it; shard routing requires it.
type ShardTarget interface {
	QueryShards(q *query.Query, shards []int, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error)
}

// Aggregator fans queries out to a fixed set of leaves.
type Aggregator struct {
	leaves []LeafTarget
	// Parallelism bounds concurrent per-leaf queries (0 = all at once).
	Parallelism int
	// LeafTimeout bounds how long a query waits for any single leaf
	// (0 = wait forever). At the deadline the merge proceeds with whatever
	// has arrived; stragglers are abandoned and show up as unanswered in
	// LeavesTotal/LeavesAnswered coverage — the paper's partial-results
	// contract (§1) instead of one hung leaf wedging every query.
	LeafTimeout time.Duration
	// Router, when non-nil, turns on shard routing: each query fans out
	// only to the leaves the router assigns for its table (replicas
	// covering drained primaries), every target must implement
	// ShardTarget, and results carry per-shard coverage. The router's map
	// must list leaves in the same order as the aggregator's targets.
	Router *shard.Router
	// Metrics, when non-nil, receives per-query instrumentation: the
	// query.latency timer and query.latency_hist histogram (end-to-end
	// fan-out + merge), query.count / query.errors counters, the
	// query.leaves_total / query.leaves_answered coverage counters, a
	// query.leaves_abandoned counter of stragglers dropped at LeafTimeout,
	// and a query.fanout histogram of leaves answered per query. With a
	// Router set, query.shards_total / query.shards_answered /
	// query.shards_unserved count per-shard coverage. With a Tracer set, a
	// query.slow counter tracks slow-log admissions.
	Metrics *metrics.Registry
	// Tracer, when non-nil, turns on per-query tracing: every query is
	// stamped with a trace ID and per-leaf span IDs, targets that implement
	// TracedTarget return ExecStats, and the assembled cross-leaf trace
	// lands in the tracer's rings (/debug/traces, /debug/slow).
	Tracer *obs.Tracer
	// Labels names each leaf in traces (index-parallel to the targets);
	// missing entries render as "leaf<i>". Daemons set the leaf addresses.
	Labels []string
}

// New creates an aggregator over the given leaves.
func New(leaves []LeafTarget) *Aggregator {
	return &Aggregator{leaves: leaves}
}

// ErrNoLeaves is returned when the aggregator has no leaves at all.
var ErrNoLeaves = errors.New("aggregator: no leaves configured")

// errNotShardCapable marks a target that cannot serve shard-scoped queries
// while the aggregator routes by shard.
var errNotShardCapable = errors.New("aggregator: target does not support shard-scoped queries")

// fanTarget is one slot of a query's fan-out plan: a target plus the shards
// it serves for this query (nil = the whole table, the unsharded topology).
type fanTarget struct {
	idx    int
	shards []int
}

// fanPlan is the routing decision for one query, computed once before
// fan-out so a concurrent shard-map flip never splits a query between two
// views of the cluster.
type fanPlan struct {
	targets []fanTarget
	sharded bool
	// shardsTotal/shardsUnserved only when sharded.
	shardsTotal    int
	shardsUnserved int
}

// plan routes one query. Unsharded: every leaf, whole table. Sharded: the
// router's assignment, one slot per serving leaf, sorted by leaf index so
// span order is stable.
func (a *Aggregator) plan(table string) fanPlan {
	if a.Router == nil || obs.IsSystemTable(table) {
		// Self-telemetry (__system.*) tables are leaf-local plain tables:
		// each daemon's sink writes to whichever leaf holds its rows, so a
		// query must fan out to every leaf and merge, never shard-route
		// (under routing the leaves would rewrite to physical "T@s" names
		// that no sink ever wrote). Leaves without the table answer empty
		// partials, which merge away.
		p := fanPlan{targets: make([]fanTarget, len(a.leaves))}
		for i := range a.leaves {
			p.targets[i] = fanTarget{idx: i}
		}
		return p
	}
	asn := a.Router.Assign(table)
	p := fanPlan{sharded: true, shardsTotal: asn.Total, shardsUnserved: len(asn.Unserved)}
	idxs := make([]int, 0, len(asn.PerLeaf))
	for idx := range asn.PerLeaf {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		if idx < len(a.leaves) {
			p.targets = append(p.targets, fanTarget{idx: idx, shards: asn.PerLeaf[idx]})
		}
	}
	return p
}

// Query runs q on every leaf (or, with a shard router, every leaf serving
// one of the table's shards) and merges the partial results. Leaves that
// error (restarting, unreachable) are skipped; the merged result's
// LeavesTotal/LeavesAnswered — and ShardsTotal/ShardsAnswered under shard
// routing — report the coverage users see on dashboards.
func (a *Aggregator) Query(q *query.Query) (*query.Result, error) {
	return a.QueryTraced(q, obs.TraceContext{})
}

// QueryTraced runs a query with trace context. A nonzero parent trace ID is
// adopted (aggregator trees keep one trace ID end to end); otherwise the
// aggregator's tracer mints one, and with no tracer the query runs untraced
// exactly as before the trace protocol existed.
func (a *Aggregator) QueryTraced(q *query.Query, parent obs.TraceContext) (*query.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, err
	}
	if len(a.leaves) == 0 {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, ErrNoLeaves
	}
	plan := a.plan(q.Table)
	traceID := parent.TraceID
	if traceID == 0 {
		traceID = a.Tracer.NewTraceID()
	}
	// Span contexts are stamped before fan-out so each goroutine only reads
	// its own slot: one span ID per planned target, reused across
	// wire-client retries, so the assembled trace has exactly one span per
	// leaf.
	ctxs := make([]obs.TraceContext, len(plan.targets))
	if traceID != 0 {
		for i := range ctxs {
			ctxs[i] = obs.TraceContext{TraceID: traceID, SpanID: obs.RandomID()}
		}
	}
	sem := make(chan struct{}, a.parallelism(len(plan.targets)))
	// The channel is buffered for the full fan-out, so a leaf answering
	// after its deadline completes its send and exits instead of leaking.
	answers := make(chan leafAnswer, len(plan.targets))
	for i, ft := range plan.targets {
		go func(i int, ft fanTarget) {
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			res, exec, err := a.queryTarget(ft, q, ctxs[i])
			ans := leafAnswer{i: i, res: res, exec: exec, err: err, rtt: time.Since(t0)}
			if err == nil {
				ans.shardsOK = len(ft.shards)
			} else {
				ans.res, ans.exec = nil, nil
				if len(ft.shards) > 0 {
					// The planned owner died mid-query (a restart racing the
					// routing snapshot): re-fetch its shards from the next
					// live replica so shard coverage holds through the race.
					if fres, n := a.failover(q, ft); n > 0 {
						ans.res, ans.shardsOK, ans.failedOver = fres, n, true
					}
				}
			}
			answers <- ans
		}(i, ft)
	}

	var deadline <-chan time.Time
	if a.LeafTimeout > 0 {
		tm := time.NewTimer(a.LeafTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	// Only the collector writes answers and spans, so an abandoned straggler
	// can never race the merge below.
	got := make([]*leafAnswer, len(plan.targets))
	spans := make([]obs.LeafSpan, len(plan.targets))
	for i, ft := range plan.targets {
		spans[i] = obs.LeafSpan{SpanID: ctxs[i].SpanID, Leaf: a.leafLabel(ft.idx), Shards: ft.shards}
	}
	elapsedAtDeadline := int64(0)
collect:
	for received := 0; received < len(plan.targets); received++ {
		select {
		case ans := <-answers:
			got[ans.i] = &ans
			sp := &spans[ans.i]
			sp.RTTNanos = ans.rtt.Nanoseconds()
			if ans.err != nil {
				sp.Err = ans.err.Error()
				if ans.failedOver {
					sp.Err += fmt.Sprintf(" (%d/%d shards failed over to replicas)", ans.shardsOK, len(plan.targets[ans.i].shards))
				}
			} else {
				sp.Answered = true
				sp.Exec = ans.exec
			}
		case <-deadline:
			elapsedAtDeadline = time.Since(start).Nanoseconds()
			break collect
		}
	}
	// Stragglers abandoned at the deadline never reached the collector:
	// their spans record the elapsed time at abandonment. This is the one
	// place abandonment is decided — the merged result, the trace, and the
	// metrics counters below all read the same span state, so coverage can
	// never disagree between /debug/traces and the dashboards.
	abandoned := 0
	for i := range spans {
		if sp := &spans[i]; !sp.Answered && sp.Err == "" {
			abandoned++
			sp.RTTNanos = elapsedAtDeadline
			sp.Err = "abandoned at leaf deadline"
		}
	}

	merged := query.NewResult()
	for _, ans := range got {
		if ans == nil || ans.res == nil {
			// Unreachable or abandoned target with no failover: one leaf's
			// worth of data missing (or an unreachable downstream
			// aggregator, counted as one — its subtree size is unknowable
			// here). Its shards, if any, go unanswered.
			merged.LeavesTotal++
			continue
		}
		res := ans.res
		if ans.failedOver {
			// The leaf itself is unanswered, but its shards were re-fetched
			// from replicas: leaf coverage dips, shard coverage holds.
			merged.LeavesTotal++
			res.ShardsTotal, res.ShardsAnswered = 0, 0
			res.LeavesTotal, res.LeavesAnswered = 0, 0
			merged.ShardsAnswered += ans.shardsOK
			merged.Merge(res)
			continue
		}
		if res.LeavesTotal > 0 {
			// The target is itself an aggregator (Scuba runs trees of
			// them): adopt its coverage instead of counting it as one leaf.
			merged.LeavesTotal += res.LeavesTotal
			merged.LeavesAnswered += res.LeavesAnswered
			res.LeavesTotal, res.LeavesAnswered = 0, 0
		} else {
			merged.LeavesTotal++
			merged.LeavesAnswered++
		}
		if plan.sharded {
			// Shard coverage is computed here, from the plan — a leaf's own
			// shard fields (always zero today) must not double-count.
			res.ShardsTotal, res.ShardsAnswered = 0, 0
			merged.ShardsAnswered += ans.shardsOK
		}
		merged.Merge(res)
	}
	if plan.sharded {
		merged.ShardsTotal = plan.shardsTotal
	}
	if r := a.Metrics; r != nil {
		d := time.Since(start)
		r.Counter("query.count").Add(1)
		r.Timer("query.latency").Observe(d)
		// Exemplar the latency bucket with this query's trace so a scrape
		// of a slow bucket links straight to its waterfall (zero trace ID
		// records the plain sample).
		r.Histogram("query.latency_hist").ObserveDurationExemplar(d, traceID)
		r.Counter("query.leaves_total").Add(int64(merged.LeavesTotal))
		r.Counter("query.leaves_answered").Add(int64(merged.LeavesAnswered))
		r.Counter("query.leaves_abandoned").Add(int64(abandoned))
		r.Histogram("query.fanout").Observe(int64(merged.LeavesAnswered))
		if plan.sharded {
			r.Counter("query.shards_total").Add(int64(merged.ShardsTotal))
			r.Counter("query.shards_answered").Add(int64(merged.ShardsAnswered))
			r.Counter("query.shards_unserved").Add(int64(plan.shardsUnserved))
		}
	}
	if a.Tracer != nil && traceID != 0 {
		d := time.Since(start)
		slow := a.Tracer.Record(obs.Trace{
			TraceID:        traceID,
			Query:          q.String(),
			Table:          q.Table,
			Start:          start,
			DurationNanos:  d.Nanoseconds(),
			LeavesTotal:    merged.LeavesTotal,
			LeavesAnswered: merged.LeavesAnswered,
			ShardsTotal:    merged.ShardsTotal,
			ShardsAnswered: merged.ShardsAnswered,
			Spans:          spans,
		})
		if slow && a.Metrics != nil {
			a.Metrics.Counter("query.slow").Add(1)
		}
	}
	return merged, nil
}

// queryTarget invokes one planned target: shard-scoped when the plan says
// so, through the traced interface when the query is traced and the target
// supports it.
func (a *Aggregator) queryTarget(ft fanTarget, q *query.Query, tc obs.TraceContext) (*query.Result, *obs.ExecStats, error) {
	l := a.leaves[ft.idx]
	if len(ft.shards) > 0 {
		st, ok := l.(ShardTarget)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s", errNotShardCapable, a.leafLabel(ft.idx))
		}
		return st.QueryShards(q, ft.shards, tc)
	}
	if tt, ok := l.(TracedTarget); ok && tc.TraceID != 0 {
		return tt.QueryTraced(q, tc)
	}
	res, err := l.Query(q)
	return res, nil, err
}

// failoverPasses bounds how many times failover re-plans still-uncovered
// shards against a fresh shard-map status. One pass handles the common case
// (a draining owner's replica answers); the later passes handle a slow query
// that straddles multiple rollover batches — by the time the replica's
// attempt fails too, the originally-failed leaf is often back ACTIVE, and a
// re-plan against current status recovers the shard instead of dropping it.
const failoverPasses = 3

// failover re-fetches a failed slot's shards from each shard's ACTIVE
// owners, merging whatever the replicas answer. The first pass excludes the
// failed leaf; each later pass re-reads the shard map's status, so an owner
// that came back mid-query is eligible again. It returns the merged partial
// and how many shards it covered. The retry is untraced — the trace shows
// the original span's error, annotated with the failover outcome.
func (a *Aggregator) failover(q *query.Query, ft fanTarget) (*query.Result, int) {
	r := a.Router
	if r == nil {
		return nil, 0
	}
	merged := query.NewResult()
	n := 0
	pending := ft.shards
	exclude := ft.idx
	for pass := 0; pass < failoverPasses && len(pending) > 0; pass++ {
		m, status := r.Map(), r.Status()
		perLeaf := make(map[int][]int)
		unplanned := 0
		for _, s := range pending {
			planned := false
			for _, o := range m.Owners(q.Table, s) {
				if o != exclude && o < len(status) && status[o] == shard.StatusActive {
					perLeaf[o] = append(perLeaf[o], s)
					planned = true
					break
				}
			}
			if !planned {
				unplanned++
			}
		}
		if len(perLeaf) == 0 {
			// No ACTIVE alternative owner right now (mid-batch): the next
			// pass re-reads status, where a restarted owner may be back.
			exclude = -1
			continue
		}
		idxs := make([]int, 0, len(perLeaf))
		for o := range perLeaf {
			idxs = append(idxs, o)
		}
		sort.Ints(idxs)
		failed := make([]int, 0, unplanned)
		for _, o := range idxs {
			if o >= len(a.leaves) {
				failed = append(failed, perLeaf[o]...)
				continue
			}
			st, ok := a.leaves[o].(ShardTarget)
			if !ok {
				failed = append(failed, perLeaf[o]...)
				continue
			}
			res, _, err := st.QueryShards(q, perLeaf[o], obs.TraceContext{})
			if err != nil {
				failed = append(failed, perLeaf[o]...)
				continue
			}
			merged.Merge(res)
			n += len(perLeaf[o])
		}
		for _, s := range pending {
			if !planned(perLeaf, s) {
				failed = append(failed, s)
			}
		}
		pending = failed
		// After the first pass every currently-ACTIVE owner is fair game:
		// the excluded leaf being ACTIVE again means it restarted and serves
		// the restored data.
		exclude = -1
	}
	if n == 0 {
		return nil, 0
	}
	return merged, n
}

// planned reports whether shard s was assigned to any leaf in the plan.
func planned(perLeaf map[int][]int, s int) bool {
	for _, shards := range perLeaf {
		for _, v := range shards {
			if v == s {
				return true
			}
		}
	}
	return false
}

func (a *Aggregator) leafLabel(i int) string {
	if i < len(a.Labels) && a.Labels[i] != "" {
		return a.Labels[i]
	}
	return fmt.Sprintf("leaf%d", i)
}

func (a *Aggregator) parallelism(n int) int {
	if a.Parallelism > 0 {
		return a.Parallelism
	}
	if n < 1 {
		return 1
	}
	return n
}

// NumLeaves returns the configured target count (the fan-out width of an
// unsharded query).
func (a *Aggregator) NumLeaves() int { return len(a.leaves) }
