// Package aggregator implements Scuba's aggregator servers (§2, Figure 1).
// An aggregator distributes a query to all leaf servers and aggregates the
// results as they arrive. Scuba returns partial query results when not all
// servers are available (§1); the aggregator therefore never fails a query
// because some leaves are restarting — it reports coverage instead.
package aggregator

import (
	"errors"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/query"
)

// leafAnswer is one leaf's reply during fan-out (res nil on error).
type leafAnswer struct {
	i   int
	res *query.Result
}

// LeafTarget is a leaf as seen by the aggregator. In-process clusters adapt
// *leaf.Leaf; distributed deployments adapt a wire client.
type LeafTarget interface {
	Query(q *query.Query) (*query.Result, error)
}

// Aggregator fans queries out to a fixed set of leaves.
type Aggregator struct {
	leaves []LeafTarget
	// Parallelism bounds concurrent per-leaf queries (0 = all at once).
	Parallelism int
	// LeafTimeout bounds how long a query waits for any single leaf
	// (0 = wait forever). At the deadline the merge proceeds with whatever
	// has arrived; stragglers are abandoned and show up as unanswered in
	// LeavesTotal/LeavesAnswered coverage — the paper's partial-results
	// contract (§1) instead of one hung leaf wedging every query.
	LeafTimeout time.Duration
	// Metrics, when non-nil, receives per-query instrumentation: the
	// query.latency timer and query.latency_hist histogram (end-to-end
	// fan-out + merge), query.count / query.errors counters, the
	// query.leaves_total / query.leaves_answered coverage counters, a
	// query.leaves_abandoned counter of stragglers dropped at LeafTimeout,
	// and a query.fanout histogram of leaves answered per query.
	Metrics *metrics.Registry
}

// New creates an aggregator over the given leaves.
func New(leaves []LeafTarget) *Aggregator {
	return &Aggregator{leaves: leaves}
}

// ErrNoLeaves is returned when the aggregator has no leaves at all.
var ErrNoLeaves = errors.New("aggregator: no leaves configured")

// Query runs q on every leaf and merges the partial results. Leaves that
// error (restarting, unreachable) are skipped; the merged result's
// LeavesTotal/LeavesAnswered report the coverage users see on dashboards.
func (a *Aggregator) Query(q *query.Query) (*query.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, err
	}
	if len(a.leaves) == 0 {
		if a.Metrics != nil {
			a.Metrics.Counter("query.errors").Add(1)
		}
		return nil, ErrNoLeaves
	}
	sem := make(chan struct{}, a.parallelism())
	// The channel is buffered for the full fan-out, so a leaf answering
	// after its deadline completes its send and exits instead of leaking.
	answers := make(chan leafAnswer, len(a.leaves))
	for i, l := range a.leaves {
		go func(i int, l LeafTarget) {
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := l.Query(q)
			if err != nil {
				res = nil
			}
			answers <- leafAnswer{i: i, res: res}
		}(i, l)
	}

	var deadline <-chan time.Time
	if a.LeafTimeout > 0 {
		tm := time.NewTimer(a.LeafTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	// Only the collector writes results, so an abandoned straggler can
	// never race the merge below.
	results := make([]*query.Result, len(a.leaves))
	abandoned := 0
collect:
	for received := 0; received < len(a.leaves); received++ {
		select {
		case ans := <-answers:
			results[ans.i] = ans.res
		case <-deadline:
			abandoned = len(a.leaves) - received
			break collect
		}
	}

	merged := query.NewResult()
	for _, res := range results {
		if res == nil {
			// Unreachable target: one leaf's worth of data missing (or an
			// unreachable downstream aggregator, counted as one).
			merged.LeavesTotal++
			continue
		}
		if res.LeavesTotal > 0 {
			// The target is itself an aggregator (Scuba runs trees of
			// them): adopt its coverage instead of counting it as one leaf.
			merged.LeavesTotal += res.LeavesTotal
			merged.LeavesAnswered += res.LeavesAnswered
			res.LeavesTotal, res.LeavesAnswered = 0, 0
		} else {
			merged.LeavesTotal++
			merged.LeavesAnswered++
		}
		merged.Merge(res)
	}
	if r := a.Metrics; r != nil {
		d := time.Since(start)
		r.Counter("query.count").Add(1)
		r.Timer("query.latency").Observe(d)
		r.Histogram("query.latency_hist").ObserveDuration(d)
		r.Counter("query.leaves_total").Add(int64(merged.LeavesTotal))
		r.Counter("query.leaves_answered").Add(int64(merged.LeavesAnswered))
		r.Counter("query.leaves_abandoned").Add(int64(abandoned))
		r.Histogram("query.fanout").Observe(int64(merged.LeavesAnswered))
	}
	return merged, nil
}

func (a *Aggregator) parallelism() int {
	if a.Parallelism > 0 {
		return a.Parallelism
	}
	return len(a.leaves)
}

// NumLeaves returns the fan-out width.
func (a *Aggregator) NumLeaves() int { return len(a.leaves) }
