package aggregator

import (
	"errors"
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/query"
)

// TestTraceAssembly runs a traced query over in-process leaves and checks
// the assembled trace top to bottom.
func TestTraceAssembly(t *testing.T) {
	leaves := make([]LeafTarget, 3)
	for i := range leaves {
		l := newLeaf(t, i)
		ingest(t, l, 100, int64(i*1000))
		leaves[i] = l
	}
	reg := metrics.NewRegistry()
	a := New(leaves)
	a.Metrics = reg
	a.Tracer = obs.NewTracer(obs.TracerOptions{})
	a.Labels = []string{"alpha", "", "gamma"} // middle one falls back

	res, err := a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 300 {
		t.Fatalf("rows = %d, want 300", res.RowsScanned)
	}

	traces := a.Tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID == 0 || tr.Query == "" || tr.DurationNanos <= 0 {
		t.Fatalf("trace header incomplete: %+v", tr)
	}
	if tr.LeavesTotal != 3 || tr.LeavesAnswered != 3 {
		t.Fatalf("coverage = %d/%d, want 3/3", tr.LeavesAnswered, tr.LeavesTotal)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	if tr.Spans[0].Leaf != "alpha" || tr.Spans[1].Leaf != "leaf1" || tr.Spans[2].Leaf != "gamma" {
		t.Fatalf("labels = %q/%q/%q", tr.Spans[0].Leaf, tr.Spans[1].Leaf, tr.Spans[2].Leaf)
	}
	seen := map[uint64]bool{}
	var rows int64
	for _, sp := range tr.Spans {
		if sp.SpanID == 0 || seen[sp.SpanID] {
			t.Fatalf("span IDs not unique nonzero: %+v", tr.Spans)
		}
		seen[sp.SpanID] = true
		if !sp.Answered || sp.Exec == nil {
			t.Fatalf("span unanswered: %+v", sp)
		}
		if sp.Exec.SpanID != sp.SpanID || sp.Exec.Table != "events" || sp.Exec.Recovery == "" {
			t.Fatalf("exec stats wrong: %+v", sp.Exec)
		}
		rows += sp.Exec.RowsScanned
	}
	if rows != 300 {
		t.Fatalf("per-span rows sum = %d, want 300", rows)
	}
}

// TestUntracedWithoutTracer pins that a tracerless aggregator behaves
// exactly as before: no trace, no slow counter, leaves queried untraced.
func TestUntracedWithoutTracer(t *testing.T) {
	l := newLeaf(t, 7)
	ingest(t, l, 50, 0)
	a := New([]LeafTarget{l})
	if _, err := a.Query(countQuery()); err != nil {
		t.Fatal(err)
	}
	if got := a.Tracer.Recent(); got != nil {
		t.Fatalf("nil tracer retained traces: %+v", got)
	}
}

// TestParentTraceIDAdopted checks the aggregator-tree contract: a nonzero
// parent trace ID flows through instead of a fresh one.
func TestParentTraceIDAdopted(t *testing.T) {
	l := newLeaf(t, 8)
	ingest(t, l, 10, 0)
	a := New([]LeafTarget{l})
	a.Tracer = obs.NewTracer(obs.TracerOptions{})

	parent := obs.TraceContext{TraceID: 12345, SpanID: 999}
	if _, err := a.QueryTraced(countQuery(), parent); err != nil {
		t.Fatal(err)
	}
	tr := a.Tracer.Get(12345)
	if tr == nil {
		t.Fatalf("parent trace ID not adopted; recent = %+v", a.Tracer.Recent())
	}
	if len(tr.Spans) != 1 || tr.Spans[0].SpanID == 999 {
		t.Fatalf("child must stamp its own span IDs: %+v", tr.Spans)
	}
}

// TestErrorSpanRecorded checks that a failing leaf shows up as an
// unanswered span carrying the error while healthy leaves still answer.
func TestErrorSpanRecorded(t *testing.T) {
	good := newLeaf(t, 9)
	ingest(t, good, 20, 0)
	bad := erroring{}
	a := New([]LeafTarget{good, bad})
	a.Tracer = obs.NewTracer(obs.TracerOptions{})

	res, err := a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 1 || res.LeavesTotal != 2 {
		t.Fatalf("coverage = %d/%d, want 1/2", res.LeavesAnswered, res.LeavesTotal)
	}
	tr := a.Tracer.Recent()[0]
	if tr.LeavesAnswered != 1 || tr.LeavesTotal != 2 {
		t.Fatalf("trace coverage = %d/%d, want 1/2", tr.LeavesAnswered, tr.LeavesTotal)
	}
	sp := tr.Spans[1]
	if sp.Answered || sp.Err == "" || sp.Exec != nil {
		t.Fatalf("error span wrong: %+v", sp)
	}
}

type erroring struct{}

func (erroring) Query(*query.Query) (*query.Result, error) {
	return nil, errors.New("leaf restarting")
}

// TestAbandonedSpanMarked checks that a leaf dropped at the fan-out
// deadline appears in the trace as unanswered with the abandonment reason —
// the trace explains exactly whose data a partial result is missing.
func TestAbandonedSpanMarked(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	fast := newLeaf(t, 10)
	ingest(t, fast, 20, 0)
	slow := newLeaf(t, 11)
	ingest(t, slow, 20, 0)
	// Delay only the second leaf far past the fan-out deadline.
	fault.Arm(fault.Point{Site: fault.PerLeaf(fault.SiteLeafQuery, 11), Action: fault.ActDelay, Delay: 2 * time.Second})

	reg := metrics.NewRegistry()
	a := New([]LeafTarget{fast, slow})
	a.Metrics = reg
	a.LeafTimeout = 100 * time.Millisecond
	a.Tracer = obs.NewTracer(obs.TracerOptions{SlowThreshold: time.Millisecond})

	res, err := a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 1 {
		t.Fatalf("answered = %d, want 1", res.LeavesAnswered)
	}
	tr := a.Tracer.Recent()[0]
	var abandonedSpan *obs.LeafSpan
	for i := range tr.Spans {
		if !tr.Spans[i].Answered {
			abandonedSpan = &tr.Spans[i]
		}
	}
	if abandonedSpan == nil {
		t.Fatalf("no abandoned span in %+v", tr.Spans)
	}
	if abandonedSpan.Err == "" || abandonedSpan.RTTNanos <= 0 {
		t.Fatalf("abandoned span not annotated: %+v", abandonedSpan)
	}
	// The 100ms deadline also makes this query slow under the 1ms
	// threshold, which must tick the query.slow counter.
	if !tr.Slow {
		t.Fatal("deadline-bound query not marked slow")
	}
	if got := reg.Snapshot().Counters["query.slow"]; got != 1 {
		t.Fatalf("query.slow = %d, want 1", got)
	}
}
