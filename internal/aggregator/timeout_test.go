package aggregator

import (
	"testing"
	"time"

	"scuba/internal/fault"
	"scuba/internal/metrics"
	"scuba/internal/query"
)

// slowTarget answers after a delay — a SIGSTOP'd or browned-out leaf.
type slowTarget struct {
	inner LeafTarget
	delay time.Duration
}

func (s slowTarget) Query(q *query.Query) (*query.Result, error) {
	time.Sleep(s.delay)
	return s.inner.Query(q)
}

func TestLeafTimeoutAbandonsStragglers(t *testing.T) {
	fast0, fast1 := newLeaf(t, 0), newLeaf(t, 1)
	ingest(t, fast0, 100, 0)
	ingest(t, fast1, 100, 5000)
	hung := newLeaf(t, 2)
	ingest(t, hung, 100, 10000)

	reg := metrics.NewRegistry()
	a := New([]LeafTarget{fast0, fast1, slowTarget{inner: hung, delay: 2 * time.Second}})
	a.LeafTimeout = 150 * time.Millisecond
	a.Metrics = reg

	q := countQuery()
	start := time.Now()
	res, err := a.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > time.Second {
		t.Fatalf("query took %v; LeafTimeout did not bound the straggler", elapsed)
	}
	rows := res.Rows(q)
	if rows[0].Values[0] != 200 {
		t.Errorf("count = %v, want the two fast leaves' rows", rows[0].Values[0])
	}
	if res.LeavesAnswered != 2 || res.LeavesTotal != 3 {
		t.Errorf("coverage = %d/%d, want 2/3", res.LeavesAnswered, res.LeavesTotal)
	}
	if got := reg.Counter("query.leaves_abandoned").Value(); got != 1 {
		t.Errorf("leaves_abandoned = %d, want 1", got)
	}

	// The straggler's late answer from the first query must not corrupt a
	// subsequent one: with the timeout off, full coverage comes back.
	a.LeafTimeout = 0
	res, err = a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 3 || res.Rows(q)[0].Values[0] != 300 {
		t.Errorf("recovered query = %d answered, count %v", res.LeavesAnswered, res.Rows(q)[0].Values[0])
	}
}

func TestZeroLeafTimeoutWaitsForever(t *testing.T) {
	l := newLeaf(t, 0)
	ingest(t, l, 50, 0)
	a := New([]LeafTarget{slowTarget{inner: l, delay: 100 * time.Millisecond}})
	res, err := a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 1 {
		t.Errorf("answered = %d", res.LeavesAnswered)
	}
}

// TestBrownoutViaFaultRegistry drives the same scenario through the fault
// harness instead of a wrapper type: one leaf of three hangs on an armed
// per-leaf delay, and coverage reports 2/3 inside the deadline.
func TestBrownoutViaFaultRegistry(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	leaves := make([]LeafTarget, 3)
	for i := range leaves {
		l := newLeaf(t, i)
		ingest(t, l, 100, int64(i*1000))
		leaves[i] = l
	}
	fault.Arm(fault.Point{Site: fault.PerLeaf(fault.SiteLeafQuery, 1), Action: fault.ActDelay, Delay: time.Second})

	a := New(leaves)
	a.LeafTimeout = 100 * time.Millisecond
	res, err := a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 2 || res.LeavesTotal != 3 {
		t.Errorf("coverage = %d/%d, want 2/3", res.LeavesAnswered, res.LeavesTotal)
	}
	fault.Reset()
	// Wait out the straggler so its late answer is consumed before the
	// next run reuses leaf state.
	time.Sleep(1100 * time.Millisecond)
	res, err = a.Query(countQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesAnswered != 3 {
		t.Errorf("post-brownout coverage = %d/3", res.LeavesAnswered)
	}
}
