// Package table implements Scuba tables: an ordered vector of row blocks
// plus a header (Figure 2), with ingestion, age/size-based expiration, and
// the per-table shutdown/restore state machine (Figure 5c, 5d).
//
// Each leaf server holds a fraction of most tables (§2.1). A table accepts
// new rows into an in-progress row block builder, seals the builder when it
// reaches 65,536 rows (or the byte cap), and serves queries over its sealed
// blocks. Deletion of expired data runs during normal operation and is
// stopped as soon as shutdown starts.
package table

import (
	"errors"
	"fmt"
	"sync"

	"scuba/internal/rowblock"
)

// Options configure a table.
type Options struct {
	// MaxAgeSeconds expires row blocks whose newest row is older than this.
	// Zero means no age limit.
	MaxAgeSeconds int64
	// MaxBytes trims oldest blocks when total compressed bytes exceed it.
	// Zero means no size limit.
	MaxBytes int64
}

// Errors returned by table operations.
var (
	ErrNotAccepting  = errors.New("table: not accepting requests in current state")
	ErrDeletesKilled = errors.New("table: delete killed by shutdown")
)

// Table holds one table's data on one leaf.
type Table struct {
	name string
	opts Options

	mu          sync.Mutex
	cond        *sync.Cond
	state       State
	inflightAdd int
	inflightQry int
	inflightDel int
	killDeletes bool

	blocks []*rowblock.RowBlock
	active *rowblock.Builder
	// synced is the number of leading blocks already persisted to disk;
	// only data changed since the last synchronization point is written
	// again (§4.1). Expiration rebases it.
	synced int
	// starts[i] is the global row index of blocks[i]'s first row, and
	// sealedEnd the index one past the last sealed row. Global indexes are
	// cumulative over the table's whole life — expiration drops entries but
	// never renumbers — so they key WAL records and snapshot images stably
	// across restarts.
	starts    []int64
	sealedEnd int64
	// snapped is the global row index below which sealed rows are covered by
	// snapshot images (or expired by retention). Tracked as an index, not a
	// block count, so concurrent expiry of leading blocks can never shift
	// coverage onto a block that was never imaged.
	snapped int64

	rowsTotal  int64
	bytesTotal int64

	// evictHook, when set, observes blocks leaving the block vector
	// (expiration, shutdown copy-out) so the owner can drop derived state —
	// the leaf's decoded-column cache. Called without the table lock held;
	// the hook must tolerate concurrent calls.
	evictHook func([]*rowblock.RowBlock)
}

// New creates an empty table in the ALIVE state (a table created by its
// first incoming batch transitions INIT -> ALIVE with nothing to recover).
func New(name string, opts Options) *Table {
	t := &Table{name: name, opts: opts, state: StateAlive}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// NewRecovering creates a table in INIT for the restore paths.
func NewRecovering(name string, opts Options) *Table {
	t := &Table{name: name, opts: opts, state: StateInit}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// State returns the current state.
func (t *Table) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Transition moves the state machine along a legal edge.
func (t *Table) Transition(to State) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.transitionLocked(to)
}

func (t *Table) transitionLocked(to State) error {
	if !CanTransition(t.state, to) {
		return &ErrBadTransition{From: t.state, To: to}
	}
	t.state = to
	t.cond.Broadcast()
	return nil
}

// acceptingAdds reports whether adds are allowed: tables take new data while
// alive and during disk recovery (§4.1 step 2: "the server also accepts new
// data as soon as it starts recovery"). Memory recovery is seconds long and
// accepts nothing (§4.3).
func (t *Table) acceptingAdds() bool {
	return t.state == StateAlive || t.state == StateDiskRecovery
}

func (t *Table) acceptingQueries() bool {
	return t.state == StateAlive || t.state == StateDiskRecovery
}

// AddRows ingests a batch of rows, sealing row blocks as they fill.
func (t *Table) AddRows(rows []rowblock.Row, now int64) error {
	t.mu.Lock()
	if !t.acceptingAdds() {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNotAccepting, st)
	}
	t.inflightAdd++
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.inflightAdd--
		t.cond.Broadcast()
		t.mu.Unlock()
	}()

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if t.active == nil {
			t.active = rowblock.NewBuilder(now)
		}
		if err := t.active.AddRow(r); err != nil {
			if errors.Is(err, rowblock.ErrFull) {
				if err := t.sealActiveLocked(); err != nil {
					return err
				}
				t.active = rowblock.NewBuilder(now)
				if err := t.active.AddRow(r); err != nil {
					return err
				}
				continue
			}
			return err
		}
		if t.active.Full() {
			if err := t.sealActiveLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealActiveLocked seals the in-progress builder into the block vector.
func (t *Table) sealActiveLocked() error {
	if t.active == nil || t.active.Rows() == 0 {
		t.active = nil
		return nil
	}
	rb, err := t.active.Seal()
	if err != nil {
		return err
	}
	t.active = nil
	t.blocks = append(t.blocks, rb)
	t.starts = append(t.starts, t.sealedEnd)
	t.sealedEnd += int64(rb.Rows())
	t.rowsTotal += int64(rb.Rows())
	t.bytesTotal += rb.Header().Size
	return nil
}

// SealActive force-seals any in-progress rows (used before disk sync and
// before copying to shared memory).
func (t *Table) SealActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealActiveLocked()
}

// Blocks returns a snapshot of the sealed blocks.
func (t *Table) Blocks() []*rowblock.RowBlock {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*rowblock.RowBlock, len(t.blocks))
	copy(out, t.blocks)
	return out
}

// SetEvictHook registers fn to observe blocks leaving the block vector
// (expiration, shutdown copy-out). At most one hook; nil clears it.
func (t *Table) SetEvictHook(fn func([]*rowblock.RowBlock)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictHook = fn
}

func (t *Table) notifyEvict(blocks []*rowblock.RowBlock) {
	if len(blocks) == 0 {
		return
	}
	t.mu.Lock()
	hook := t.evictHook
	t.mu.Unlock()
	if hook != nil {
		hook(blocks)
	}
}

// Scan calls fn for every sealed block overlapping [from, to], under query
// gating. Blocks are pruned by their min/max time header fields (§2.1).
func (t *Table) Scan(from, to int64, fn func(*rowblock.RowBlock) error) error {
	return t.ScanBlocks(from, to, func(blocks []*rowblock.RowBlock) error {
		for _, rb := range blocks {
			if err := fn(rb); err != nil {
				return err
			}
		}
		return nil
	})
}

// ScanBlocks calls fn once with the full snapshot of sealed blocks
// overlapping [from, to] (time-header prune, §2.1), under query gating: the
// in-flight query count is held for fn's whole duration, so shutdown —
// which waits for queries before releasing block columns — cannot begin
// while fn still reads the blocks. The parallel executor fans the snapshot
// across its worker pool inside fn.
func (t *Table) ScanBlocks(from, to int64, fn func([]*rowblock.RowBlock) error) error {
	t.mu.Lock()
	if !t.acceptingQueries() {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNotAccepting, st)
	}
	t.inflightQry++
	snapshot := make([]*rowblock.RowBlock, 0, len(t.blocks))
	// pinned collects the foreign-memory sources (mmap'd shm views) of
	// snapshotted blocks, each retained here UNDER the table lock. A remover
	// (expiry, promotion, shutdown) can only release a block's residency
	// reference after popping it from t.blocks under this same lock, so any
	// block the snapshot sees still holds its reference and the Retain cannot
	// fail; the pin then keeps the mapping alive until fn drains.
	var pinned []rowblock.Source
	for _, rb := range t.blocks {
		if !rb.Overlaps(from, to) {
			continue
		}
		if src := rb.Source(); src != nil {
			if !src.Retain() {
				// Unreachable while the residency invariant holds; skipping
				// the block (rather than reading unmapped memory) is the
				// safe degradation if it ever breaks.
				continue
			}
			pinned = append(pinned, src)
		}
		snapshot = append(snapshot, rb)
	}
	t.mu.Unlock()
	defer func() {
		for _, src := range pinned {
			src.Release()
		}
		t.mu.Lock()
		t.inflightQry--
		t.cond.Broadcast()
		t.mu.Unlock()
	}()

	return fn(snapshot)
}

// SwapBlock replaces old with new in the block vector — the background
// promotion path swapping a shm-resident block for its heap clone. The swap
// preserves the block's position and global row index; header-derived
// accounting is unchanged because the clone shares the header. Returns false
// when old is no longer present (expired or copied out) or the table has
// left ALIVE (shutdown owns the blocks now); the caller keeps the old block
// in that case. On success the old block is reported to the evict hook so
// derived state (the decode cache) drops entries keyed by its identity; the
// caller releases the old block's residency reference.
func (t *Table) SwapBlock(old, new *rowblock.RowBlock) bool {
	t.mu.Lock()
	if t.state != StateAlive {
		t.mu.Unlock()
		return false
	}
	for i, rb := range t.blocks {
		if rb == old {
			t.blocks[i] = new
			t.mu.Unlock()
			t.notifyEvict([]*rowblock.RowBlock{old})
			return true
		}
	}
	t.mu.Unlock()
	return false
}

// ActiveSnapshot returns a queryable view of the unsealed in-progress rows
// (nil when there are none), gated like Scan. Queries see data the moment it
// arrives, before its block seals.
func (t *Table) ActiveSnapshot() (*rowblock.UnsealedView, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.acceptingQueries() {
		return nil, fmt.Errorf("%w: %v", ErrNotAccepting, t.state)
	}
	if t.active == nil {
		return nil, nil
	}
	return t.active.Snapshot(), nil
}

// ForeignBlocks counts sealed blocks whose columns still alias foreign
// memory (shm views awaiting promotion). Zero once promotion has drained.
func (t *Table) ForeignBlocks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, rb := range t.blocks {
		if rb.Source() != nil {
			n++
		}
	}
	return n
}

// Expire drops expired or over-budget blocks (oldest first). It aborts with
// ErrDeletesKilled if shutdown starts mid-way (Figure 5c kills DELETEs).
// Returns the number of blocks dropped.
func (t *Table) Expire(now int64) (int, error) {
	t.mu.Lock()
	if t.state != StateAlive {
		st := t.state
		t.mu.Unlock()
		return 0, fmt.Errorf("%w: %v", ErrNotAccepting, st)
	}
	t.inflightDel++
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.inflightDel--
		t.cond.Broadcast()
		t.mu.Unlock()
	}()

	var droppedBlocks []*rowblock.RowBlock
	// Expiry removed the blocks from circulation, so it owns releasing their
	// foreign-memory references — after the evict hook, which may still look
	// at block identity (never contents).
	defer func() {
		t.notifyEvict(droppedBlocks)
		rowblock.ReleaseSources(droppedBlocks)
	}()
	for {
		t.mu.Lock()
		if t.killDeletes {
			t.mu.Unlock()
			return len(droppedBlocks), ErrDeletesKilled
		}
		if len(t.blocks) == 0 {
			t.mu.Unlock()
			return len(droppedBlocks), nil
		}
		oldest := t.blocks[0]
		expired := t.opts.MaxAgeSeconds > 0 && oldest.Header().MaxTime < now-t.opts.MaxAgeSeconds
		overBudget := t.opts.MaxBytes > 0 && t.bytesTotal > t.opts.MaxBytes
		if !expired && !overBudget {
			t.mu.Unlock()
			return len(droppedBlocks), nil
		}
		t.blocks = t.blocks[1:]
		t.starts = t.starts[1:]
		t.rowsTotal -= int64(oldest.Rows())
		t.bytesTotal -= oldest.Header().Size
		if t.synced > 0 {
			t.synced--
		}
		droppedBlocks = append(droppedBlocks, oldest)
		t.mu.Unlock()
	}
}

// Prepare runs the PREPARE phase of Figure 5(c): transition to PREPARE
// (rejecting new requests), signal in-flight deletes to die, wait for adds
// and queries in flight to complete, and seal pending rows so the flush to
// disk sees everything. The caller then flushes to disk and transitions to
// COPY_TO_SHM.
func (t *Table) Prepare() error {
	t.mu.Lock()
	if err := t.transitionLocked(StatePrepare); err != nil {
		t.mu.Unlock()
		return err
	}
	t.killDeletes = true
	t.cond.Broadcast()
	for t.inflightAdd > 0 || t.inflightQry > 0 || t.inflightDel > 0 {
		t.cond.Wait()
	}
	err := t.sealActiveLocked()
	t.mu.Unlock()
	return err
}

// UnsyncedBlocks returns sealed blocks not yet persisted, for incremental
// disk sync: "only the sections of data that have changed since the last
// synchronization point need to be updated" (§4.1).
func (t *Table) UnsyncedBlocks() []*rowblock.RowBlock {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*rowblock.RowBlock, len(t.blocks)-t.synced)
	copy(out, t.blocks[t.synced:])
	return out
}

// MarkSynced advances the disk-sync watermark by n blocks.
func (t *Table) MarkSynced(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.synced += n
	if t.synced > len(t.blocks) {
		t.synced = len(t.blocks)
	}
}

// UnsnappedBlocks returns sealed blocks not yet written as snapshot images,
// with their global row indexes — the incremental-snapshot analogue of
// UnsyncedBlocks. A block counts as snapshotted when its whole row range is
// below the index-based cursor, so a leading block expired mid-pass never
// makes a later block look covered.
func (t *Table) UnsnappedBlocks() ([]*rowblock.RowBlock, []int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := 0
	for i < len(t.blocks) && t.starts[i]+int64(t.blocks[i].Rows()) <= t.snapped {
		i++
	}
	blocks := make([]*rowblock.RowBlock, len(t.blocks)-i)
	starts := make([]int64, len(blocks))
	copy(blocks, t.blocks[i:])
	copy(starts, t.starts[i:])
	return blocks, starts
}

// MarkSnapshottedThrough records that every sealed row below end is covered
// by a snapshot image. Monotone, like the persisted watermark: an older
// in-flight pass can never roll coverage back.
func (t *Table) MarkSnapshottedThrough(end int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if end > t.snapped {
		t.snapped = end
	}
}

// SealedEnd returns the global row index one past the last sealed row —
// equivalently, the number of rows ever sealed (expired rows included).
// With an empty active builder this equals the table's WAL cursor.
func (t *Table) SealedEnd() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealedEnd
}

// RestoreBlock appends a recovered block during MEMORY_RECOVERY or
// DISK_RECOVERY. Restored blocks count as already synced to disk: the
// shutdown path flushed them before copying to shared memory, and the disk
// path read them from disk in the first place. Calls are serialized by the
// table mutex, so concurrent restore workers (one table each, but also
// multiple callers on one table) only race over insertion order.
func (t *Table) RestoreBlock(rb *rowblock.RowBlock) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateMemoryRecovery && t.state != StateDiskRecovery && t.state != StateInit {
		return fmt.Errorf("%w: RestoreBlock in %v", ErrNotAccepting, t.state)
	}
	t.blocks = append(t.blocks, rb)
	t.starts = append(t.starts, t.sealedEnd)
	t.sealedEnd += int64(rb.Rows())
	t.rowsTotal += int64(rb.Rows())
	t.bytesTotal += rb.Header().Size
	t.synced = len(t.blocks)
	return nil
}

// RestoreBlockAt appends a block recovered from a snapshot image at a known
// global row index (an expired prefix may leave start past sealedEnd, never
// before it). Unlike RestoreBlock, the block does NOT count as synced: after
// a crash the disk backup may be missing recently sealed blocks, so the leaf
// wipes it and lets the next sync pass rewrite everything from here. The
// caller advances the snapshot cursor with MarkSnapshottedThrough once the
// table's images are all loaded.
func (t *Table) RestoreBlockAt(rb *rowblock.RowBlock, start int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateMemoryRecovery && t.state != StateDiskRecovery && t.state != StateInit {
		return fmt.Errorf("%w: RestoreBlockAt in %v", ErrNotAccepting, t.state)
	}
	if start < t.sealedEnd {
		return fmt.Errorf("table %s: snapshot block at row %d overlaps sealed rows (end %d)", t.name, start, t.sealedEnd)
	}
	t.blocks = append(t.blocks, rb)
	t.starts = append(t.starts, start)
	t.sealedEnd = start + int64(rb.Rows())
	t.rowsTotal += int64(rb.Rows())
	t.bytesTotal += rb.Header().Size
	return nil
}

// AlignSealedEnd advances an empty recovering table's global row base to
// start. When retention expired every snapshot image below the watermark,
// WAL replay begins at the watermark with no block to carry the index —
// without this, replayed rows would seal starting at 0 and the table's row
// numbering would disagree with its log and watermark forever. No-op once
// any block is restored (the block carries the index) or if start is not
// ahead of the current end.
func (t *Table) AlignSealedEnd(start int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.blocks) == 0 && start > t.sealedEnd {
		t.sealedEnd = start
	}
}

// Stats describes a table's current contents.
type Stats struct {
	Name      string
	State     State
	NumBlocks int
	Rows      int64
	Bytes     int64
	// Unsealed counts rows still in the active builder; UnsealedBytes is
	// their pre-compression size. Placement decisions must see unsealed
	// data too, or a leaf absorbing a burst looks deceptively empty.
	Unsealed      int
	UnsealedBytes int64
}

// Stats returns a consistent snapshot of table statistics.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	unsealed, unsealedBytes := 0, int64(0)
	if t.active != nil {
		unsealed = t.active.Rows()
		unsealedBytes = t.active.RawBytes()
	}
	return Stats{
		Name:          t.name,
		State:         t.state,
		NumBlocks:     len(t.blocks),
		Rows:          t.rowsTotal,
		Bytes:         t.bytesTotal,
		Unsealed:      unsealed,
		UnsealedBytes: unsealedBytes,
	}
}

// Bytes returns the total compressed bytes across sealed blocks.
func (t *Table) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesTotal
}

// Rows returns the total sealed row count.
func (t *Table) Rows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rowsTotal
}

// DropBlocksForShutdown pops up to n leading blocks so the shutdown path can
// release them after copying to shared memory (Figure 6 deletes each row
// block from the heap as it is copied). Only legal in COPY_TO_SHM. Safe
// under concurrent callers (the parallel shutdown runs one worker per table,
// but nothing here assumes that): each call atomically claims a disjoint
// prefix. The disk-sync watermark is rebased as blocks leave the vector so a
// best-effort SyncTable after a failed shutdown sees a consistent view
// instead of a watermark past the end of the vector.
func (t *Table) DropBlocksForShutdown(n int) ([]*rowblock.RowBlock, error) {
	t.mu.Lock()
	if t.state != StateCopyToShm {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: DropBlocksForShutdown in %v", ErrNotAccepting, t.state)
	}
	if n > len(t.blocks) {
		n = len(t.blocks)
	}
	out := t.blocks[:n]
	t.blocks = t.blocks[n:]
	t.starts = t.starts[n:]
	t.synced -= n
	if t.synced < 0 {
		t.synced = 0
	}
	t.mu.Unlock()
	t.notifyEvict(out)
	return out, nil
}
