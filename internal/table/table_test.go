package table

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"scuba/internal/rowblock"
)

func mkRows(n int, startTime int64) []rowblock.Row {
	rows := make([]rowblock.Row, n)
	for i := range rows {
		rows[i] = rowblock.Row{
			Time: startTime + int64(i),
			Cols: map[string]rowblock.Value{
				"service": rowblock.StringValue(fmt.Sprintf("svc-%d", i%3)),
				"count":   rowblock.Int64Value(int64(i)),
			},
		}
	}
	return rows
}

func TestAddAndSeal(t *testing.T) {
	tbl := New("events", Options{})
	if err := tbl.AddRows(mkRows(100, 1000), 999); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.Unsealed != 100 || st.NumBlocks != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	st = tbl.Stats()
	if st.NumBlocks != 1 || st.Rows != 100 || st.Unsealed != 0 {
		t.Errorf("stats after seal = %+v", st)
	}
	if st.Bytes != tbl.Bytes() || tbl.Rows() != 100 {
		t.Errorf("accessor mismatch: %+v", st)
	}
}

func TestAutoSealAtCapacity(t *testing.T) {
	tbl := New("events", Options{})
	if err := tbl.AddRows(mkRows(rowblock.MaxRows+10, 0), 1); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.NumBlocks != 1 {
		t.Errorf("NumBlocks = %d, want 1 sealed at 65536", st.NumBlocks)
	}
	if st.Unsealed != 10 {
		t.Errorf("Unsealed = %d, want 10", st.Unsealed)
	}
	if st.Rows != rowblock.MaxRows {
		t.Errorf("sealed rows = %d", st.Rows)
	}
}

func TestScanPrunesByTime(t *testing.T) {
	tbl := New("events", Options{})
	// Three blocks covering [0,99], [100,199], [200,299].
	for b := 0; b < 3; b++ {
		if err := tbl.AddRows(mkRows(100, int64(b*100)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	err := tbl.Scan(100, 199, func(rb *rowblock.RowBlock) error {
		visited++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 1 {
		t.Errorf("visited %d blocks, want 1", visited)
	}
	visited = 0
	if err := tbl.Scan(0, 300, func(*rowblock.RowBlock) error { visited++; return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 3 {
		t.Errorf("visited %d blocks, want 3", visited)
	}
}

func TestScanPropagatesError(t *testing.T) {
	tbl := New("events", Options{})
	if err := tbl.AddRows(mkRows(10, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if err := tbl.Scan(0, 100, func(*rowblock.RowBlock) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestExpireByAge(t *testing.T) {
	tbl := New("events", Options{MaxAgeSeconds: 50})
	for b := 0; b < 3; b++ {
		if err := tbl.AddRows(mkRows(10, int64(b*100)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	// now=300: block 0 has MaxTime 9 (<250), block 1 MaxTime 109 (<250),
	// block 2 MaxTime 209 (<250) — all expired.
	dropped, err := tbl.Expire(300)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dropped = %d", dropped)
	}
	// now=160: nothing left to drop.
	dropped, err = tbl.Expire(160)
	if err != nil || dropped != 0 {
		t.Errorf("second expire: %d, %v", dropped, err)
	}
}

func TestExpireByBytes(t *testing.T) {
	tbl := New("events", Options{MaxBytes: 1}) // everything over budget
	for b := 0; b < 2; b++ {
		if err := tbl.AddRows(mkRows(10, int64(b*100)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := tbl.Expire(0)
	if err != nil {
		t.Fatal(err)
	}
	// Trims oldest-first until at or under budget; with MaxBytes=1 both of
	// the two blocks cannot fit, but trimming stops when bytesTotal <= 1,
	// which requires dropping both.
	if dropped != 2 {
		t.Errorf("dropped = %d", dropped)
	}
	if tbl.Bytes() != 0 {
		t.Errorf("bytes = %d", tbl.Bytes())
	}
}

func TestExpireUpdatesSyncWatermark(t *testing.T) {
	tbl := New("events", Options{MaxAgeSeconds: 10})
	for b := 0; b < 2; b++ {
		if err := tbl.AddRows(mkRows(10, int64(b*1000)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tbl.UnsyncedBlocks()); got != 2 {
		t.Fatalf("unsynced = %d", got)
	}
	tbl.MarkSynced(2)
	if got := len(tbl.UnsyncedBlocks()); got != 0 {
		t.Fatalf("unsynced after mark = %d", got)
	}
	// Expire the first block; watermark must shift so the remaining block
	// still counts as synced.
	if _, err := tbl.Expire(2000); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.UnsyncedBlocks()); got != 0 {
		t.Errorf("unsynced after expire = %d", got)
	}
}

func TestPrepareGatesRequests(t *testing.T) {
	tbl := New("events", Options{})
	if err := tbl.AddRows(mkRows(10, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tbl.State() != StatePrepare {
		t.Fatalf("state = %v", tbl.State())
	}
	// Pending rows were sealed by Prepare (flush sees everything).
	if st := tbl.Stats(); st.Unsealed != 0 || st.NumBlocks != 1 {
		t.Errorf("stats after prepare = %+v", st)
	}
	// New requests are rejected.
	if err := tbl.AddRows(mkRows(1, 0), 1); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("add err = %v", err)
	}
	if err := tbl.Scan(0, 10, func(*rowblock.RowBlock) error { return nil }); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("scan err = %v", err)
	}
	if _, err := tbl.Expire(100); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("expire err = %v", err)
	}
}

func TestPrepareWaitsForInflightQueries(t *testing.T) {
	tbl := New("events", Options{})
	if err := tbl.AddRows(mkRows(10, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}

	queryEntered := make(chan struct{})
	releaseQuery := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl.Scan(0, 100, func(*rowblock.RowBlock) error { //nolint:errcheck
			close(queryEntered)
			<-releaseQuery
			return nil
		})
	}()
	<-queryEntered

	prepared := make(chan struct{})
	go func() {
		tbl.Prepare() //nolint:errcheck
		close(prepared)
	}()
	select {
	case <-prepared:
		t.Fatal("Prepare returned while a query was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(releaseQuery)
	wg.Wait()
	select {
	case <-prepared:
	case <-time.After(2 * time.Second):
		t.Fatal("Prepare did not complete after query finished")
	}
}

func TestShutdownKillsDeletes(t *testing.T) {
	// A long-running expire must observe the kill flag and abort.
	tbl := New("events", Options{MaxAgeSeconds: 1})
	for b := 0; b < 50; b++ {
		if err := tbl.AddRows(mkRows(2, int64(b)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	// Start expire and prepare concurrently; expire either finishes first
	// or gets killed — both are legal, but after Prepare returns no delete
	// may still be running, and state must be PREPARE.
	var expErr error
	done := make(chan struct{})
	go func() {
		_, expErr = tbl.Expire(1 << 40)
		close(done)
	}()
	if err := tbl.Prepare(); err != nil {
		t.Fatal(err)
	}
	<-done
	if expErr != nil && !errors.Is(expErr, ErrDeletesKilled) && !errors.Is(expErr, ErrNotAccepting) {
		t.Errorf("expire err = %v", expErr)
	}
	if tbl.State() != StatePrepare {
		t.Errorf("state = %v", tbl.State())
	}
}

func TestRestoreBlockStates(t *testing.T) {
	tbl := NewRecovering("events", Options{})
	if err := tbl.Transition(StateMemoryRecovery); err != nil {
		t.Fatal(err)
	}
	src := New("tmp", Options{})
	if err := src.AddRows(mkRows(10, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := src.SealActive(); err != nil {
		t.Fatal(err)
	}
	rb := src.Blocks()[0]
	if err := tbl.RestoreBlock(rb); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Transition(StateAlive); err != nil {
		t.Fatal(err)
	}
	// Restored blocks are considered synced.
	if got := len(tbl.UnsyncedBlocks()); got != 0 {
		t.Errorf("unsynced = %d", got)
	}
	// RestoreBlock after ALIVE is illegal.
	if err := tbl.RestoreBlock(rb); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("err = %v", err)
	}
}

func TestDropBlocksForShutdown(t *testing.T) {
	tbl := New("events", Options{})
	for b := 0; b < 3; b++ {
		if err := tbl.AddRows(mkRows(5, int64(b*10)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.DropBlocksForShutdown(1); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("drop in ALIVE: %v", err)
	}
	if err := tbl.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Transition(StateCopyToShm); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.DropBlocksForShutdown(2)
	if err != nil || len(got) != 2 {
		t.Fatalf("drop: %d, %v", len(got), err)
	}
	got, err = tbl.DropBlocksForShutdown(5)
	if err != nil || len(got) != 1 {
		t.Fatalf("drain: %d, %v", len(got), err)
	}
}

func TestAddDuringDiskRecovery(t *testing.T) {
	// §4.1: the server accepts new data as soon as disk recovery starts.
	tbl := NewRecovering("events", Options{})
	if err := tbl.Transition(StateDiskRecovery); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRows(mkRows(5, 0), 1); err != nil {
		t.Errorf("add during disk recovery: %v", err)
	}
	if err := tbl.Scan(0, 10, func(*rowblock.RowBlock) error { return nil }); err != nil {
		t.Errorf("scan during disk recovery: %v", err)
	}
}

func TestAddDuringMemoryRecoveryRejected(t *testing.T) {
	// §4.3: during memory recovery no add or query requests are accepted.
	tbl := NewRecovering("events", Options{})
	if err := tbl.Transition(StateMemoryRecovery); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRows(mkRows(1, 0), 1); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("add err = %v", err)
	}
	if err := tbl.Scan(0, 10, func(*rowblock.RowBlock) error { return nil }); !errors.Is(err, ErrNotAccepting) {
		t.Errorf("scan err = %v", err)
	}
}

func TestConcurrentAddsAndScans(t *testing.T) {
	tbl := New("events", Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tbl.AddRows(mkRows(20, int64(w*1000+i)), 1); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tbl.Scan(0, 1<<40, func(*rowblock.RowBlock) error { return nil }) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rows(); got != 8*50*20 {
		t.Errorf("rows = %d, want %d", got, 8*50*20)
	}
}

func TestDropBlocksForShutdownRebasesSyncWatermark(t *testing.T) {
	// A failed shutdown flushes whatever is left to disk best-effort; the
	// sync watermark must follow the shrinking block vector or UnsyncedBlocks
	// would compute a negative-length slice after a partial drain.
	tbl := New("events", Options{})
	for b := 0; b < 4; b++ {
		if err := tbl.AddRows(mkRows(50, int64(b*100)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	tbl.MarkSynced(4) // all synced, as after the pre-copy flush
	if err := tbl.Transition(StatePrepare); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Transition(StateCopyToShm); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DropBlocksForShutdown(3); err != nil {
		t.Fatal(err)
	}
	got := tbl.UnsyncedBlocks() // must not panic, and nothing is newly dirty
	if len(got) != 0 {
		t.Errorf("unsynced after drain = %d blocks", len(got))
	}
}

func TestConcurrentDropBlocksForShutdown(t *testing.T) {
	// Concurrent callers on one table must partition the block vector: every
	// block claimed exactly once, no duplicates, no losses.
	tbl := New("events", Options{})
	const nBlocks = 40
	for b := 0; b < nBlocks; b++ {
		if err := tbl.AddRows(mkRows(10, int64(b*1000)), 1); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SealActive(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Transition(StatePrepare); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Transition(StateCopyToShm); err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		claimed []*rowblock.RowBlock
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				blocks, err := tbl.DropBlocksForShutdown(1)
				if err != nil {
					t.Errorf("drop: %v", err)
					return
				}
				if len(blocks) == 0 {
					return
				}
				mu.Lock()
				claimed = append(claimed, blocks[0])
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claimed) != nBlocks {
		t.Fatalf("claimed %d blocks, want %d", len(claimed), nBlocks)
	}
	seen := make(map[*rowblock.RowBlock]bool, nBlocks)
	for _, rb := range claimed {
		if seen[rb] {
			t.Fatal("block claimed twice")
		}
		seen[rb] = true
	}
	if tbl.Stats().NumBlocks != 0 {
		t.Errorf("blocks left = %d", tbl.Stats().NumBlocks)
	}
}

func TestConcurrentRestoreBlockAcrossTables(t *testing.T) {
	// The parallel restore runs one worker per table; RestoreBlock on
	// distinct tables (and even interleaved on one) must stay consistent.
	const nTables = 8
	const nBlocks = 12
	tables := make([]*Table, nTables)
	for i := range tables {
		tables[i] = NewRecovering(fmt.Sprintf("t%d", i), Options{})
		if err := tables[i].Transition(StateMemoryRecovery); err != nil {
			t.Fatal(err)
		}
	}
	src := New("src", Options{})
	if err := src.AddRows(mkRows(100, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := src.SealActive(); err != nil {
		t.Fatal(err)
	}
	block := src.Blocks()[0]

	var wg sync.WaitGroup
	for _, tbl := range tables {
		wg.Add(1)
		go func(tbl *Table) {
			defer wg.Done()
			for b := 0; b < nBlocks; b++ {
				if err := tbl.RestoreBlock(block); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
			}
		}(tbl)
	}
	wg.Wait()
	for _, tbl := range tables {
		st := tbl.Stats()
		if st.NumBlocks != nBlocks || st.Rows != int64(nBlocks*100) {
			t.Errorf("%s: %+v", tbl.Name(), st)
		}
	}
}

func TestSnapshotCursorSurvivesExpiry(t *testing.T) {
	tbl := New("events", Options{MaxAgeSeconds: 500})
	// Two sealed blocks: [0,100) at times ~100..199, [100,200) at ~1000..1099.
	if err := tbl.AddRows(mkRows(100, 100), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRows(mkRows(100, 1000), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SealActive(); err != nil {
		t.Fatal(err)
	}
	blocks, starts := tbl.UnsnappedBlocks()
	if len(blocks) != 2 {
		t.Fatalf("unsnapped = %d blocks, want 2", len(blocks))
	}
	// Retention drops the first block between the snapshot pass listing it
	// and marking it imaged (cutoff 1400-500=900 catches only block 0).
	if dropped, err := tbl.Expire(1400); err != nil || dropped != 1 {
		t.Fatalf("expire dropped %d (%v), want 1", dropped, err)
	}
	tbl.MarkSnapshottedThrough(starts[0] + int64(blocks[0].Rows()))
	// Coverage is tracked by global row index, so the expiry cannot shift it
	// onto the never-imaged second block.
	after, afterStarts := tbl.UnsnappedBlocks()
	if len(after) != 1 || afterStarts[0] != starts[1] {
		t.Fatalf("unsnapped after expiry = %d blocks at %v, want the never-imaged block at %d",
			len(after), afterStarts, starts[1])
	}
}
