package table

import "fmt"

// State is the per-table state machine from Figure 5(c) and 5(d).
//
// Backup (shutdown) path:   ALIVE -> PREPARE -> COPY_TO_SHM -> DONE
// Restore (startup) path:   INIT -> MEMORY_RECOVERY | DISK_RECOVERY -> ALIVE
//
// PREPARE (Figure 5c) rejects new requests, kills DELETE requests in
// progress, waits for ADD/QUERY requests in flight to complete, and flushes
// data to disk. Scuba stops deleting expired data once shutdown starts; any
// needed deletions are made after recovery.
type State uint8

// Table states.
const (
	StateInit State = iota
	StateMemoryRecovery
	StateDiskRecovery
	StateAlive
	StatePrepare
	StateCopyToShm
	StateDone
)

func (s State) String() string {
	switch s {
	case StateInit:
		return "INIT"
	case StateMemoryRecovery:
		return "MEMORY_RECOVERY"
	case StateDiskRecovery:
		return "DISK_RECOVERY"
	case StateAlive:
		return "ALIVE"
	case StatePrepare:
		return "PREPARE"
	case StateCopyToShm:
		return "COPY_TO_SHM"
	case StateDone:
		return "DONE"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// legalTransitions encodes Figure 5(c) and 5(d) exactly. A new table starts
// in INIT and reaches ALIVE through one of the recovery states (or directly,
// for a table created empty by the first incoming batch).
var legalTransitions = map[State][]State{
	StateInit:           {StateMemoryRecovery, StateDiskRecovery, StateAlive},
	StateMemoryRecovery: {StateAlive, StateDiskRecovery}, // exception -> disk
	StateDiskRecovery:   {StateAlive},
	StateAlive:          {StatePrepare},
	StatePrepare:        {StateCopyToShm},
	StateCopyToShm:      {StateDone},
	StateDone:           nil,
}

// CanTransition reports whether from -> to is a legal edge.
func CanTransition(from, to State) bool {
	for _, s := range legalTransitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// ErrBadTransition wraps illegal state-machine transitions.
type ErrBadTransition struct {
	From, To State
}

func (e *ErrBadTransition) Error() string {
	return fmt.Sprintf("table: illegal transition %v -> %v", e.From, e.To)
}
