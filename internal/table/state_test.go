package table

import "testing"

func TestStateStrings(t *testing.T) {
	for s := StateInit; s <= StateDone; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
	if State(99).String() != "state(99)" {
		t.Errorf("unknown state = %q", State(99).String())
	}
}

// TestTransitionsMatchFigure5 exhaustively checks every (from, to) pair
// against the edges drawn in Figure 5(c) and 5(d).
func TestTransitionsMatchFigure5(t *testing.T) {
	type edge struct{ from, to State }
	legal := map[edge]bool{
		// Figure 5(d): restore.
		{StateInit, StateMemoryRecovery}:         true,
		{StateInit, StateDiskRecovery}:           true, // memory recovery disabled
		{StateInit, StateAlive}:                  true, // brand-new empty table
		{StateMemoryRecovery, StateAlive}:        true,
		{StateMemoryRecovery, StateDiskRecovery}: true, // exception
		{StateDiskRecovery, StateAlive}:          true,
		// Figure 5(c): backup.
		{StateAlive, StatePrepare}:     true,
		{StatePrepare, StateCopyToShm}: true,
		{StateCopyToShm, StateDone}:    true,
	}
	all := []State{StateInit, StateMemoryRecovery, StateDiskRecovery, StateAlive, StatePrepare, StateCopyToShm, StateDone}
	for _, from := range all {
		for _, to := range all {
			want := legal[edge{from, to}]
			if got := CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%v, %v) = %v, want %v", from, to, got, want)
			}
		}
	}
}

func TestBadTransitionError(t *testing.T) {
	tbl := New("t", Options{})
	err := tbl.Transition(StateDone)
	if err == nil {
		t.Fatal("ALIVE -> DONE allowed")
	}
	var bad *ErrBadTransition
	if !asErr(err, &bad) {
		t.Fatalf("error type %T", err)
	}
	if bad.From != StateAlive || bad.To != StateDone {
		t.Errorf("edge = %v -> %v", bad.From, bad.To)
	}
	if bad.Error() == "" {
		t.Error("empty error message")
	}
}

// asErr is a tiny errors.As wrapper to keep the test body readable.
func asErr(err error, target *(*ErrBadTransition)) bool {
	if e, ok := err.(*ErrBadTransition); ok {
		*target = e
		return true
	}
	return false
}
