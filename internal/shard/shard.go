// Package shard implements the cluster's shard map: the assignment of every
// table's shards to an ordered set of leaf servers — a primary plus R-1
// replicas — owned by the aggregator that routes queries (ISSUE 6; PAPERS.md
// "ReStore: In-Memory REplicated STORagE for Rapid Recovery").
//
// The paper's aggregators fan every query out to every leaf (§2); with a
// shard map the fan-out narrows to the leaves that own the table's shards,
// and — the point of replication — a query keeps full coverage while a leaf
// restarts, because each of the restarting leaf's shards fails over to the
// next live replica in its owner list. That is what turns the §5 rolling
// restart ("98% of data queryable") into 100% of data queryable for R >= 2,
// with the 1 - BatchFraction bound as the replica-less floor.
//
// Assignment is rendezvous (highest-random-weight) hashing of
// (table, shard, leaf): deterministic from the leaf list alone, no central
// allocation state, and stable under membership change — adding or removing
// one leaf only moves the shards that leaf owned (or now wins), never
// reshuffles the rest. Replicas prefer distinct machines so one machine's
// batch of restarts never takes both copies of a shard down.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Status is a leaf's routability as seen by the shard map owner.
type Status uint8

// Leaf statuses.
const (
	// StatusActive leaves serve queries and receive writes.
	StatusActive Status = iota
	// StatusDraining leaves are about to restart (the rollover orchestrator
	// marks a leaf draining before its shutdown RPC): no query is routed to
	// them, their shards serve from replicas, but writes still land (the
	// drain copies them to shared memory).
	StatusDraining
	// StatusDown leaves are gone (crashed, quarantined): no queries, no
	// writes.
	StatusDown
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "ACTIVE"
	case StatusDraining:
		return "DRAINING"
	case StatusDown:
		return "DOWN"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Leaf is one leaf slot in the map. Name is the routing identity (the leaf's
// address in a distributed deployment, a label in-process); Machine groups
// leaves for replica placement — replicas of one shard prefer distinct
// machines.
type Leaf struct {
	Name    string
	Machine int
}

// Map is the shard map: a leaf list plus the parameters that make shard
// ownership a pure function of it. It is immutable once built — status
// changes live in Router, not here — so it can be encoded, shipped, and
// compared freely.
type Map struct {
	// Leaves is the ordered leaf list; indices are the routing currency.
	Leaves []Leaf
	// Replication is the owner-list length R (primary + R-1 replicas),
	// capped at the leaf count.
	Replication int
	// NumShards is the number of shards each table is split into.
	NumShards int
}

// NewMap builds a map over the given leaves. replication <= 0 defaults to 1
// (no replicas); numShards <= 0 defaults to 2x the leaf count, so shards
// stay fine-grained enough that one leaf's loss spreads over many replicas.
func NewMap(leaves []Leaf, replication, numShards int) *Map {
	if replication <= 0 {
		replication = 1
	}
	if replication > len(leaves) && len(leaves) > 0 {
		replication = len(leaves)
	}
	if numShards <= 0 {
		numShards = 2 * len(leaves)
		if numShards == 0 {
			numShards = 1
		}
	}
	return &Map{
		Leaves:      append([]Leaf(nil), leaves...),
		Replication: replication,
		NumShards:   numShards,
	}
}

// PhysicalTable names the leaf-side table holding one shard of a logical
// table. Leaves store each shard separately so a leaf owning shard 3 as a
// primary and shard 7 as a replica can serve exactly the shards a query
// routes to it, never double-counting.
func PhysicalTable(table string, s int) string {
	return table + "@" + strconv.Itoa(s)
}

// ParsePhysicalTable splits a physical table name back into (table, shard).
// ok is false for names that are not shard-qualified.
func ParsePhysicalTable(name string) (table string, s int, ok bool) {
	i := strings.LastIndexByte(name, '@')
	if i < 0 {
		return name, 0, false
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 0 {
		return name, 0, false
	}
	return name[:i], n, true
}

// hrw scores one (table, shard, leaf) triple. FNV-64a over the full key:
// cheap, deterministic across processes, and well-mixed enough that owner
// lists are balanced (the balance test pins the spread).
func hrw(table string, s int, leaf string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))           //nolint:errcheck
	h.Write([]byte{'/'})             //nolint:errcheck
	h.Write([]byte(strconv.Itoa(s))) //nolint:errcheck
	h.Write([]byte{'/'})             //nolint:errcheck
	h.Write([]byte(leaf))            //nolint:errcheck
	return h.Sum64()
}

// Owners returns the ordered owner list (primary first) for one shard of a
// table: the R leaves with the highest rendezvous scores, greedily skipping
// a leaf whose machine already holds a copy while machine-diverse choices
// remain. The result is a pure function of the map — two processes with the
// same map route identically without talking to each other.
func (m *Map) Owners(table string, s int) []int {
	if len(m.Leaves) == 0 {
		return nil
	}
	type scored struct {
		idx   int
		score uint64
	}
	ranked := make([]scored, len(m.Leaves))
	for i, l := range m.Leaves {
		ranked[i] = scored{idx: i, score: hrw(table, s, l.Name)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].idx < ranked[j].idx // total order even on hash ties
	})
	owners := make([]int, 0, m.Replication)
	usedMachines := make(map[int]bool)
	// First pass: machine-diverse picks in rank order.
	for _, r := range ranked {
		if len(owners) == m.Replication {
			break
		}
		if usedMachines[m.Leaves[r.idx].Machine] {
			continue
		}
		owners = append(owners, r.idx)
		usedMachines[m.Leaves[r.idx].Machine] = true
	}
	// Second pass: fewer machines than replicas — fill from the remaining
	// rank order, allowing machine reuse.
	if len(owners) < m.Replication {
		taken := make(map[int]bool, len(owners))
		for _, o := range owners {
			taken[o] = true
		}
		for _, r := range ranked {
			if len(owners) == m.Replication {
				break
			}
			if !taken[r.idx] {
				owners = append(owners, r.idx)
			}
		}
	}
	return owners
}

// Route is one shard's routing decision for a query.
type Route struct {
	// Shard is the shard index within the table.
	Shard int
	// Leaf is the leaf index chosen to serve it (-1 when no owner is
	// routable — the shard is offline and coverage drops).
	Leaf int
	// Primary is the shard's primary owner; Leaf != Primary means the query
	// is being served by a replica (the primary is draining or down).
	Primary int
}

// RouteTable routes every shard of a table given per-leaf statuses (nil or
// short status slices read as ACTIVE): the first non-draining, non-down
// owner in rendezvous order serves the shard.
func (m *Map) RouteTable(table string, status []Status) []Route {
	routes := make([]Route, m.NumShards)
	for s := 0; s < m.NumShards; s++ {
		owners := m.Owners(table, s)
		r := Route{Shard: s, Leaf: -1, Primary: -1}
		if len(owners) > 0 {
			r.Primary = owners[0]
		}
		for _, o := range owners {
			if statusAt(status, o) == StatusActive {
				r.Leaf = o
				break
			}
		}
		routes[s] = r
	}
	return routes
}

// Assignment groups a routed table by serving leaf.
type Assignment struct {
	// PerLeaf maps leaf index -> the shards it serves for this query.
	PerLeaf map[int][]int
	// Unserved lists shards with no routable owner.
	Unserved []int
	// Total is the table's shard count.
	Total int
}

// Assign routes a table and groups the result per leaf — the shape the
// aggregator fans out: one RPC per serving leaf, carrying its shard list.
func (m *Map) Assign(table string, status []Status) Assignment {
	a := Assignment{PerLeaf: make(map[int][]int), Total: m.NumShards}
	for _, r := range m.RouteTable(table, status) {
		if r.Leaf < 0 {
			a.Unserved = append(a.Unserved, r.Shard)
			continue
		}
		a.PerLeaf[r.Leaf] = append(a.PerLeaf[r.Leaf], r.Shard)
	}
	return a
}

// WriteTargets returns the leaves a batch for one shard must be written to:
// every owner not marked down. Draining leaves still take writes — their
// drain copies the rows to shared memory, so nothing is lost across the
// restart — and a write that fails on one owner is covered by the others.
func (m *Map) WriteTargets(table string, s int, status []Status) []int {
	owners := m.Owners(table, s)
	out := owners[:0]
	for _, o := range owners {
		if statusAt(status, o) != StatusDown {
			out = append(out, o)
		}
	}
	return out
}

func statusAt(status []Status, i int) Status {
	if i < len(status) {
		return status[i]
	}
	return StatusActive
}

// LeafIndex finds a leaf by name (-1 when absent).
func (m *Map) LeafIndex(name string) int {
	for i, l := range m.Leaves {
		if l.Name == name {
			return i
		}
	}
	return -1
}

func (m *Map) String() string {
	return fmt.Sprintf("shardmap{%d leaves, R=%d, %d shards}", len(m.Leaves), m.Replication, m.NumShards)
}
