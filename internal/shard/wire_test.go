package shard

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var regenGolden = flag.Bool("regen-golden", false, "rewrite golden fixtures")

func goldenMap() *Map {
	return NewMap([]Leaf{
		{Name: "127.0.0.1:8001", Machine: 0},
		{Name: "127.0.0.1:8002", Machine: 0},
		{Name: "127.0.0.1:8003", Machine: 1},
		{Name: "127.0.0.1:8004", Machine: 1},
	}, 2, 8)
}

func TestMapEncodeRoundTrip(t *testing.T) {
	m := goldenMap()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
}

// TestMapGoldenDecode pins the v1 wire encoding: a fixture written by the
// build that introduced shard maps must decode forever — and route
// identically, since routing is a pure function of the map.
func TestMapGoldenDecode(t *testing.T) {
	path := filepath.Join("testdata", "shardmap-v1.golden")
	if *regenGolden {
		b, err := goldenMap().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (regen with -regen-golden): %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenMap()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden decode = %+v, want %+v", got, want)
	}
	// Current encoders still produce a byte-identical frame (gob of the
	// same struct is deterministic); if this ever diverges intentionally,
	// regen the fixture and note the version bump.
	cur, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, b) {
		t.Error("current encoding diverged from the v1 fixture")
	}
	for s := 0; s < want.NumShards; s++ {
		if !reflect.DeepEqual(got.Owners("events", s), want.Owners("events", s)) {
			t.Fatalf("shard %d routes differently after decode", s)
		}
	}
}

func TestDecodeRejectsBadMaps(t *testing.T) {
	mustEncode := func(w wireMap) []byte {
		m := &Map{Replication: w.Replication, NumShards: w.NumShards}
		for i := range w.Names {
			mach := 0
			if i < len(w.Machines) {
				mach = w.Machines[i]
			}
			m.Leaves = append(m.Leaves, Leaf{Name: w.Names[i], Machine: mach})
		}
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad version", []byte{99, 1, 2, 3}},
		{"truncated gob", mustEncode(wireMap{Names: []string{"a"}, Machines: []int{0}, Replication: 1, NumShards: 4})[:3]},
		{"zero shards", mustEncode(wireMap{Names: []string{"a"}, Machines: []int{0}, Replication: 1})},
		{"replication over leaves", mustEncode(wireMap{Names: []string{"a"}, Machines: []int{0}, Replication: 2, NumShards: 4})},
		{"duplicate leaf", mustEncode(wireMap{Names: []string{"a", "a"}, Machines: []int{0, 1}, Replication: 1, NumShards: 4})},
		{"empty name", mustEncode(wireMap{Names: []string{""}, Machines: []int{0}, Replication: 1, NumShards: 4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.b); err == nil {
				t.Errorf("decode accepted %q", tc.name)
			}
		})
	}
}
