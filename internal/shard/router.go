package shard

import (
	"fmt"
	"sync"
)

// Router is the live, concurrency-safe view of a shard map: the immutable
// Map plus per-leaf statuses that the rollover orchestrator flips as leaves
// drain and come back. The aggregator holds one Router and consults it per
// query; the orchestrator mutates it (directly in-process, or through the
// aggregator's admin RPC across processes).
type Router struct {
	mu     sync.Mutex
	m      *Map
	status []Status
	// version counts mutations, so dashboards can tell a stale view apart.
	version int64
}

// NewRouter wraps a map with every leaf ACTIVE.
func NewRouter(m *Map) *Router {
	return &Router{m: m, status: make([]Status, len(m.Leaves))}
}

// Map returns the underlying immutable map.
func (r *Router) Map() *Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// SetMap swaps the whole map (membership change), resetting unknown leaves
// to ACTIVE and carrying statuses over by leaf name.
func (r *Router) SetMap(m *Map) {
	r.mu.Lock()
	defer r.mu.Unlock()
	status := make([]Status, len(m.Leaves))
	for i, l := range m.Leaves {
		if old := r.m.LeafIndex(l.Name); old >= 0 && old < len(r.status) {
			status[i] = r.status[old]
		}
	}
	r.m, r.status = m, status
	r.version++
}

// SetStatus flips one leaf's status by index.
func (r *Router) SetStatus(leaf int, s Status) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if leaf < 0 || leaf >= len(r.status) {
		return fmt.Errorf("shard: no leaf %d in map of %d", leaf, len(r.status))
	}
	r.status[leaf] = s
	r.version++
	return nil
}

// SetStatusByName flips one leaf's status by name.
func (r *Router) SetStatusByName(name string, s Status) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.m.LeafIndex(name)
	if i < 0 {
		return fmt.Errorf("shard: no leaf %q in map", name)
	}
	r.status[i] = s
	r.version++
	return nil
}

// Status returns a copy of the per-leaf statuses.
func (r *Router) Status() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Status(nil), r.status...)
}

// Version returns the mutation count.
func (r *Router) Version() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Assign snapshots map+status and routes one table. Queries in flight keep
// the snapshot they routed with; the next query sees the new statuses.
func (r *Router) Assign(table string) Assignment {
	r.mu.Lock()
	m, status := r.m, append([]Status(nil), r.status...)
	r.mu.Unlock()
	return m.Assign(table, status)
}

// WritePlan returns, for each shard of a table, the leaves a batch must be
// dual-written to (every non-down owner).
func (r *Router) WritePlan(table string) [][]int {
	r.mu.Lock()
	m, status := r.m, append([]Status(nil), r.status...)
	r.mu.Unlock()
	plan := make([][]int, m.NumShards)
	for s := 0; s < m.NumShards; s++ {
		plan[s] = append([]int(nil), m.WriteTargets(table, s, status)...)
	}
	return plan
}
