package shard

import (
	"fmt"
	"reflect"
	"testing"
)

// leaves builds n leaves spread over m machines, matching the cluster's
// GlobalID layout (machine-major).
func testLeaves(machines, perMachine int) []Leaf {
	var out []Leaf
	for m := 0; m < machines; m++ {
		for s := 0; s < perMachine; s++ {
			out = append(out, Leaf{Name: fmt.Sprintf("m%d-l%d", m, s), Machine: m})
		}
	}
	return out
}

func TestOwnersDeterministicAndDistinct(t *testing.T) {
	m := NewMap(testLeaves(4, 4), 2, 32)
	for s := 0; s < m.NumShards; s++ {
		a := m.Owners("events", s)
		b := m.Owners("events", s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d: owners not deterministic: %v vs %v", s, a, b)
		}
		if len(a) != 2 {
			t.Fatalf("shard %d: owner count = %d, want 2", s, len(a))
		}
		if a[0] == a[1] {
			t.Fatalf("shard %d: duplicate owner %d", s, a[0])
		}
		if m.Leaves[a[0]].Machine == m.Leaves[a[1]].Machine {
			t.Errorf("shard %d: replicas %v share machine %d", s, a, m.Leaves[a[0]].Machine)
		}
	}
	// Different tables get independent assignments.
	if reflect.DeepEqual(m.Owners("events", 0), m.Owners("errors", 0)) &&
		reflect.DeepEqual(m.Owners("events", 1), m.Owners("errors", 1)) &&
		reflect.DeepEqual(m.Owners("events", 2), m.Owners("errors", 2)) {
		t.Error("three shards assigned identically across tables: hash ignores the table")
	}
}

func TestOwnersMoreReplicasThanMachines(t *testing.T) {
	// 2 machines, R=3: machine diversity is impossible; the third replica
	// must still be a distinct leaf.
	m := NewMap(testLeaves(2, 3), 3, 8)
	for s := 0; s < m.NumShards; s++ {
		owners := m.Owners("t", s)
		if len(owners) != 3 {
			t.Fatalf("shard %d: %d owners, want 3", s, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("shard %d: duplicate owner in %v", s, owners)
			}
			seen[o] = true
		}
	}
}

func TestOwnersBalance(t *testing.T) {
	// With 256 shards over 16 leaves, primary load should be within a small
	// factor of the mean (rendezvous hashing balances well).
	m := NewMap(testLeaves(4, 4), 2, 256)
	load := make([]int, len(m.Leaves))
	for s := 0; s < m.NumShards; s++ {
		load[m.Owners("service_logs", s)[0]]++
	}
	mean := float64(m.NumShards) / float64(len(m.Leaves))
	for i, n := range load {
		if float64(n) > 2.5*mean || float64(n) < mean/4 {
			t.Errorf("leaf %d primary load %d far from mean %.1f: %v", i, n, mean, load)
		}
	}
}

// TestRouteFailover is the table-driven routing contract: active primaries
// serve; a draining or down primary's shards serve from the next replica; a
// shard with no live owner is unserved; and a DRAINING leaf never appears as
// the serving leaf of any shard.
func TestRouteFailover(t *testing.T) {
	m := NewMap(testLeaves(4, 2), 2, 16)
	const table = "events"
	primaryOf := func(s int) int { return m.Owners(table, s)[0] }
	replicaOf := func(s int) int { return m.Owners(table, s)[1] }

	cases := []struct {
		name   string
		status func() []Status
		check  func(t *testing.T, routes []Route, status []Status)
	}{
		{
			name:   "all active: every shard served by its primary",
			status: func() []Status { return make([]Status, len(m.Leaves)) },
			check: func(t *testing.T, routes []Route, _ []Status) {
				for _, r := range routes {
					if r.Leaf != r.Primary || r.Leaf != primaryOf(r.Shard) {
						t.Errorf("shard %d served by %d, want primary %d", r.Shard, r.Leaf, primaryOf(r.Shard))
					}
				}
			},
		},
		{
			name: "draining primary: replica promoted",
			status: func() []Status {
				st := make([]Status, len(m.Leaves))
				st[primaryOf(0)] = StatusDraining
				return st
			},
			check: func(t *testing.T, routes []Route, st []Status) {
				r := routes[0]
				if r.Leaf != replicaOf(0) {
					t.Errorf("shard 0 served by %d, want replica %d", r.Leaf, replicaOf(0))
				}
				if r.Leaf == r.Primary {
					t.Error("draining primary still marked serving")
				}
			},
		},
		{
			name: "down primary: replica promoted",
			status: func() []Status {
				st := make([]Status, len(m.Leaves))
				st[primaryOf(0)] = StatusDown
				return st
			},
			check: func(t *testing.T, routes []Route, _ []Status) {
				if routes[0].Leaf != replicaOf(0) {
					t.Errorf("shard 0 served by %d, want replica %d", routes[0].Leaf, replicaOf(0))
				}
			},
		},
		{
			name: "both owners out: shard unserved",
			status: func() []Status {
				st := make([]Status, len(m.Leaves))
				st[primaryOf(0)] = StatusDraining
				st[replicaOf(0)] = StatusDown
				return st
			},
			check: func(t *testing.T, routes []Route, _ []Status) {
				if routes[0].Leaf != -1 {
					t.Errorf("shard 0 served by %d despite both owners out", routes[0].Leaf)
				}
			},
		},
		{
			name: "no query ever routed to a draining leaf",
			status: func() []Status {
				st := make([]Status, len(m.Leaves))
				st[1], st[4], st[6] = StatusDraining, StatusDraining, StatusDown
				return st
			},
			check: func(t *testing.T, routes []Route, st []Status) {
				for _, r := range routes {
					if r.Leaf >= 0 && st[r.Leaf] != StatusActive {
						t.Errorf("shard %d routed to leaf %d in state %v", r.Shard, r.Leaf, st[r.Leaf])
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.status()
			tc.check(t, m.RouteTable(table, st), st)
		})
	}
}

// TestRebalanceStability pins the rendezvous property: removing one leaf
// only moves the shards that leaf owned; every other (shard, owner)
// relationship is unchanged. Adding a leaf only moves shards the new leaf
// now wins.
func TestRebalanceStability(t *testing.T) {
	base := testLeaves(4, 4)
	m16 := NewMap(base, 2, 128)
	const table = "service_logs"

	t.Run("remove", func(t *testing.T) {
		removed := base[5].Name
		m15 := NewMap(append(append([]Leaf(nil), base[:5]...), base[6:]...), 2, 128)
		moved := 0
		for s := 0; s < 128; s++ {
			before := ownerNames(m16, table, s)
			after := ownerNames(m15, table, s)
			if reflect.DeepEqual(before, after) {
				continue
			}
			moved++
			if !contains(before, removed) {
				t.Errorf("shard %d moved (%v -> %v) though %s owned no copy", s, before, after, removed)
			}
		}
		if moved == 0 {
			t.Error("removing a leaf moved nothing: it owned no shards at all?")
		}
	})

	t.Run("add", func(t *testing.T) {
		grown := append(append([]Leaf(nil), base...), Leaf{Name: "m4-l0", Machine: 4})
		m17 := NewMap(grown, 2, 128)
		for s := 0; s < 128; s++ {
			before := ownerNames(m16, table, s)
			after := ownerNames(m17, table, s)
			if reflect.DeepEqual(before, after) {
				continue
			}
			if !contains(after, "m4-l0") {
				t.Errorf("shard %d reshuffled (%v -> %v) without involving the new leaf", s, before, after)
			}
		}
	})
}

func ownerNames(m *Map, table string, s int) []string {
	var out []string
	for _, o := range m.Owners(table, s) {
		out = append(out, m.Leaves[o].Name)
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestAssignGroupsAndUnserved(t *testing.T) {
	m := NewMap(testLeaves(2, 2), 2, 8)
	st := make([]Status, 4)
	a := m.Assign("t", st)
	served := 0
	for leaf, shards := range a.PerLeaf {
		if st[leaf] != StatusActive {
			t.Errorf("leaf %d assigned while not active", leaf)
		}
		served += len(shards)
	}
	if served != 8 || len(a.Unserved) != 0 || a.Total != 8 {
		t.Fatalf("assignment = %+v, want all 8 served", a)
	}
	// Every leaf down: everything unserved.
	for i := range st {
		st[i] = StatusDown
	}
	a = m.Assign("t", st)
	if len(a.PerLeaf) != 0 || len(a.Unserved) != 8 {
		t.Fatalf("assignment with all down = %+v", a)
	}
}

func TestWriteTargets(t *testing.T) {
	m := NewMap(testLeaves(2, 2), 2, 4)
	st := make([]Status, 4)
	owners := m.Owners("t", 0)
	// Draining owners still take writes; down owners do not.
	st[owners[0]] = StatusDraining
	got := m.WriteTargets("t", 0, st)
	if !reflect.DeepEqual(got, owners) {
		t.Errorf("draining primary dropped from write set: %v vs %v", got, owners)
	}
	st[owners[0]] = StatusDown
	got = m.WriteTargets("t", 0, st)
	if len(got) != 1 || got[0] != owners[1] {
		t.Errorf("write targets with down primary = %v, want [%d]", got, owners[1])
	}
}

func TestPhysicalTableRoundTrip(t *testing.T) {
	name := PhysicalTable("service_logs", 7)
	if name != "service_logs@7" {
		t.Fatalf("physical name = %q", name)
	}
	table, s, ok := ParsePhysicalTable(name)
	if !ok || table != "service_logs" || s != 7 {
		t.Fatalf("parse = (%q, %d, %v)", table, s, ok)
	}
	if _, _, ok := ParsePhysicalTable("plain"); ok {
		t.Error("unsharded name parsed as sharded")
	}
	if _, _, ok := ParsePhysicalTable("t@-1"); ok {
		t.Error("negative shard parsed")
	}
}

func TestRouterStatusFlow(t *testing.T) {
	m := NewMap(testLeaves(2, 2), 2, 8)
	r := NewRouter(m)
	if err := r.SetStatus(1, StatusDraining); err != nil {
		t.Fatal(err)
	}
	if err := r.SetStatusByName("m1-l1", StatusDown); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st[1] != StatusDraining || st[3] != StatusDown {
		t.Fatalf("status = %v", st)
	}
	a := r.Assign("t")
	for leaf := range a.PerLeaf {
		if leaf == 1 || leaf == 3 {
			t.Errorf("leaf %d assigned while draining/down", leaf)
		}
	}
	if err := r.SetStatus(99, StatusActive); err == nil {
		t.Error("out-of-range SetStatus accepted")
	}
	if err := r.SetStatusByName("nope", StatusActive); err == nil {
		t.Error("unknown name accepted")
	}
	if r.Version() == 0 {
		t.Error("mutations did not bump version")
	}
}

func TestRouterSetMapCarriesStatus(t *testing.T) {
	old := NewMap(testLeaves(2, 2), 2, 8)
	r := NewRouter(old)
	if err := r.SetStatusByName("m0-l1", StatusDown); err != nil {
		t.Fatal(err)
	}
	// New map drops m1-l1 and adds m2-l0; m0-l1 must stay down.
	leaves := []Leaf{{Name: "m0-l0", Machine: 0}, {Name: "m0-l1", Machine: 0}, {Name: "m2-l0", Machine: 2}}
	r.SetMap(NewMap(leaves, 2, 8))
	st := r.Status()
	if st[1] != StatusDown {
		t.Errorf("status lost across SetMap: %v", st)
	}
	if st[0] != StatusActive || st[2] != StatusActive {
		t.Errorf("unexpected statuses: %v", st)
	}
}
