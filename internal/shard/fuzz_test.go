package shard

import (
	"reflect"
	"testing"
)

// FuzzMapDecode hammers the shard-map parser with arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must re-encode to a
// decodable, identically-routing map (decode-encode-decode fixpoint).
func FuzzMapDecode(f *testing.F) {
	if b, err := goldenMap().Encode(); err == nil {
		f.Add(b)
	}
	if b, err := NewMap([]Leaf{{Name: "x", Machine: 3}}, 1, 1).Encode(); err == nil {
		f.Add(b)
	}
	f.Add([]byte{WireVersion})
	f.Add([]byte{99, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		if len(m.Leaves) > maxWireLeaves || m.NumShards > maxWireShards {
			t.Fatalf("decoder accepted oversized map: %s", m)
		}
		re, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted map failed to re-encode: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded map failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not a fixpoint: %+v vs %+v", m, m2)
		}
		// Routing must be total and in-bounds for any accepted map.
		for s := 0; s < m.NumShards && s < 8; s++ {
			for _, o := range m.Owners("fuzz", s) {
				if o < 0 || o >= len(m.Leaves) {
					t.Fatalf("owner %d out of range", o)
				}
			}
		}
	})
}
