package shard

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Wire encoding of a shard map: a one-byte format version followed by the
// gob-encoded wireMap. The RPC envelope carries the map as this opaque byte
// slice (a new, additive field), so pre-shard peers decode the envelope
// unchanged and simply ignore the bytes — the protocol stays v2-additive.
// Gob matches fields by name, so future wireMap fields are themselves
// additive within version 1; the version byte exists for a breaking change.

// WireVersion is the shard-map encoding version this build writes.
const WireVersion = 1

// Decode limits: a shard map is cluster metadata, not data. Anything larger
// than this is a corrupt or hostile frame, rejected before allocation.
const (
	maxWireLeaves = 1 << 16
	maxWireShards = 1 << 20
)

// wireMap is the encoded shape. A separate struct (rather than Map itself)
// pins the encoding against refactors of the in-memory type.
type wireMap struct {
	Names       []string
	Machines    []int
	Replication int
	NumShards   int
}

// Encode serializes the map.
func (m *Map) Encode() ([]byte, error) {
	w := wireMap{
		Names:       make([]string, len(m.Leaves)),
		Machines:    make([]int, len(m.Leaves)),
		Replication: m.Replication,
		NumShards:   m.NumShards,
	}
	for i, l := range m.Leaves {
		w.Names[i] = l.Name
		w.Machines[i] = l.Machine
	}
	var buf bytes.Buffer
	buf.WriteByte(WireVersion)
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("shard: encode map: %w", err)
	}
	return buf.Bytes(), nil
}

// ErrBadMap wraps every shard-map decode rejection.
var ErrBadMap = errors.New("shard: bad map encoding")

// Decode parses an encoded shard map, validating every field — the bytes
// may come off the network, so nothing is trusted.
func Decode(b []byte) (*Map, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadMap)
	}
	if b[0] != WireVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadMap, b[0])
	}
	var w wireMap
	if err := gob.NewDecoder(bytes.NewReader(b[1:])).Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	if len(w.Names) != len(w.Machines) {
		return nil, fmt.Errorf("%w: %d names vs %d machines", ErrBadMap, len(w.Names), len(w.Machines))
	}
	if len(w.Names) > maxWireLeaves {
		return nil, fmt.Errorf("%w: %d leaves", ErrBadMap, len(w.Names))
	}
	if w.NumShards <= 0 || w.NumShards > maxWireShards {
		return nil, fmt.Errorf("%w: %d shards", ErrBadMap, w.NumShards)
	}
	if w.Replication <= 0 || (len(w.Names) > 0 && w.Replication > len(w.Names)) {
		return nil, fmt.Errorf("%w: replication %d over %d leaves", ErrBadMap, w.Replication, len(w.Names))
	}
	seen := make(map[string]bool, len(w.Names))
	leaves := make([]Leaf, len(w.Names))
	for i, n := range w.Names {
		if n == "" {
			return nil, fmt.Errorf("%w: empty leaf name at %d", ErrBadMap, i)
		}
		if seen[n] {
			return nil, fmt.Errorf("%w: duplicate leaf %q", ErrBadMap, n)
		}
		seen[n] = true
		if w.Machines[i] < 0 {
			return nil, fmt.Errorf("%w: negative machine at %d", ErrBadMap, i)
		}
		leaves[i] = Leaf{Name: n, Machine: w.Machines[i]}
	}
	return &Map{Leaves: leaves, Replication: w.Replication, NumShards: w.NumShards}, nil
}
