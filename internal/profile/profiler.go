package profile

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"scuba/internal/metrics"
	"scuba/internal/obs"
	"scuba/internal/rowblock"
)

// Defaults for Config zero values.
const (
	DefaultInterval        = 60 * time.Second
	DefaultWindow          = 5 * time.Second
	DefaultAnomalyWindow   = 1 * time.Second
	DefaultTopN            = 20
	DefaultAnomalyCooldown = 15 * time.Second
	DefaultGCPauseBudget   = 50 * time.Millisecond
	DefaultRestartBudget   = 1 * time.Second
)

// Capture triggers, written into the __system.profiles "trigger" column.
const (
	TriggerInterval  = "interval"   // steady-cadence capture
	TriggerSlowQuery = "slow_query" // a slow trace hit the tracer ring
	TriggerRestart   = "restart"    // a restart phase blew its budget
	TriggerGCPause   = "gc_pause"   // runtime.gc_pause_hist p99 over budget
)

// Config configures a Profiler.
type Config struct {
	// Sink receives the folded profile rows (table __system.profiles).
	// Required.
	Sink *obs.Sink
	// Source labels every row (the daemon's identity, same convention as
	// the sink's own Source).
	Source string
	// Registry, when non-nil, receives the profiler's self-counters and is
	// watched for GC-pause p99 spikes.
	Registry *metrics.Registry
	// Interval is the steady capture cadence (default 60s; negative
	// disables steady captures — anomaly triggers still work).
	Interval time.Duration
	// Window is the CPU-profile window of a steady capture (default 5s,
	// clamped to Interval/2 so back-to-back captures cannot overlap).
	Window time.Duration
	// AnomalyWindow is the shorter CPU window of an anomaly capture
	// (default 1s) — the goal is attribution, not precision, and the
	// trigger wants to land while the cause is still hot.
	AnomalyWindow time.Duration
	// TopN bounds the per-capture row count: the top N functions by CPU
	// flat time, unioned with the top N by allocation delta (default 20).
	TopN int
	// AnomalyCooldown is the minimum gap between anomaly-triggered
	// captures (default 15s). The first anomaly is always captured.
	AnomalyCooldown time.Duration
	// GCPauseBudget: a runtime.gc_pause_hist p99 above this (with new GCs
	// since the last check) triggers a gc_pause capture (default 50ms).
	GCPauseBudget time.Duration
	// RestartBudget is the per-phase budget for ObserveRestartPhase
	// callers that pass no budget of their own (default 1s).
	RestartBudget time.Duration
	// Clock overrides time.Now for tests. Only stamps rows and cooldowns;
	// capture windows always run on real timers.
	Clock func() time.Time
}

// capReq is one queued capture request.
type capReq struct {
	reason  string
	detail  string
	traceID uint64
	done    chan struct{} // non-nil for synchronous CaptureNow
}

// Profiler owns one capture goroutine per daemon. All captures — steady and
// anomaly — run on that single goroutine because runtime/pprof allows only
// one CPU profile at a time process-wide.
type Profiler struct {
	cfg  Config
	reqs chan capReq
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	captures  *metrics.Counter
	anomalies *metrics.Counter
	dropped   *metrics.Counter
	errors    *metrics.Counter

	mu          sync.Mutex
	lastAnomaly time.Time
	prevAlloc   map[string]int64 // alloc_space flat at the previous capture
	lastGCCount int64
}

// New creates and starts a profiler. Panics if cfg.Sink is nil.
func New(cfg Config) *Profiler {
	if cfg.Sink == nil {
		panic("profile: Config.Sink is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Interval > 0 && cfg.Window > cfg.Interval/2 {
		cfg.Window = cfg.Interval / 2
	}
	if cfg.Window < 10*time.Millisecond {
		cfg.Window = 10 * time.Millisecond
	}
	if cfg.AnomalyWindow <= 0 {
		cfg.AnomalyWindow = DefaultAnomalyWindow
	}
	if cfg.Interval > 0 && cfg.AnomalyWindow > cfg.Interval/2 {
		cfg.AnomalyWindow = cfg.Interval / 2
	}
	if cfg.AnomalyWindow < 10*time.Millisecond {
		cfg.AnomalyWindow = 10 * time.Millisecond
	}
	if cfg.TopN <= 0 {
		cfg.TopN = DefaultTopN
	}
	if cfg.AnomalyCooldown <= 0 {
		cfg.AnomalyCooldown = DefaultAnomalyCooldown
	}
	if cfg.GCPauseBudget <= 0 {
		cfg.GCPauseBudget = DefaultGCPauseBudget
	}
	if cfg.RestartBudget <= 0 {
		cfg.RestartBudget = DefaultRestartBudget
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Profiler{
		cfg:       cfg,
		reqs:      make(chan capReq, 8),
		done:      make(chan struct{}),
		prevAlloc: make(map[string]int64),
	}
	if reg := cfg.Registry; reg != nil {
		p.captures = reg.Counter("profile.captures")
		p.anomalies = reg.Counter("profile.anomalies")
		p.dropped = reg.Counter("profile.dropped")
		p.errors = reg.Counter("profile.errors")
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// Close stops the capture goroutine. A window in flight is cut short, its
// rows still emitted. Idempotent.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

// OnTrace is the tracer OnRecord hook: a slow trace triggers an anomaly
// capture tagged with its trace ID. Traces of __system queries are ignored —
// profiling the profile queries would feed back into itself. Safe on nil.
func (p *Profiler) OnTrace(tr obs.Trace) {
	if p == nil || !tr.Slow || obs.IsSystemTable(tr.Table) {
		return
	}
	q := tr.Query
	if len(q) > 256 {
		q = q[:256]
	}
	p.TriggerCapture(TriggerSlowQuery, q, tr.TraceID)
}

// ObserveRestartPhase is the leaf restart hook: a phase (copy_in,
// wal_replay, promotion, ...) that ran longer than budget triggers a capture
// tagged with the phase and the recovery path that produced it. budget <= 0
// uses Config.RestartBudget. Safe on nil.
func (p *Profiler) ObserveRestartPhase(phase, path string, d, budget time.Duration) {
	if p == nil {
		return
	}
	if budget <= 0 {
		budget = p.cfg.RestartBudget
	}
	if d <= budget {
		return
	}
	detail := "phase=" + phase + " path=" + path + " took=" + d.String() + " budget=" + budget.String()
	p.TriggerCapture(TriggerRestart, detail, 0)
}

// TriggerCapture requests an anomaly capture. It never blocks: within the
// cooldown or with the queue full the request is dropped (and counted).
// Reports whether the request was queued.
func (p *Profiler) TriggerCapture(reason, detail string, traceID uint64) bool {
	if p == nil {
		return false
	}
	now := p.cfg.Clock()
	p.mu.Lock()
	if !p.lastAnomaly.IsZero() && now.Sub(p.lastAnomaly) < p.cfg.AnomalyCooldown {
		p.mu.Unlock()
		p.count(p.dropped)
		return false
	}
	p.lastAnomaly = now
	p.mu.Unlock()
	select {
	case p.reqs <- capReq{reason: reason, detail: detail, traceID: traceID}:
		return true
	default:
		p.count(p.dropped)
		return false
	}
}

// CaptureNow runs one capture synchronously (bypassing the anomaly cooldown)
// and reports whether it completed. It still serializes through the capture
// goroutine — CPU profiling is process-exclusive.
func (p *Profiler) CaptureNow(reason, detail string, traceID uint64) bool {
	if p == nil {
		return false
	}
	req := capReq{reason: reason, detail: detail, traceID: traceID, done: make(chan struct{})}
	select {
	case p.reqs <- req:
	case <-p.done:
		return false
	}
	select {
	case <-req.done:
		return true
	case <-p.done:
		return false
	}
}

func (p *Profiler) count(c *metrics.Counter) {
	if c != nil {
		c.Add(1)
	}
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	var steadyC, gcC <-chan time.Time
	if p.cfg.Interval > 0 {
		steady := time.NewTicker(p.cfg.Interval)
		defer steady.Stop()
		steadyC = steady.C
		if p.cfg.Registry != nil {
			// GC spikes should trigger well inside the steady cadence:
			// check every 5s (or faster when the interval itself is fast).
			every := 5 * time.Second
			if p.cfg.Interval < every {
				every = p.cfg.Interval
			}
			gc := time.NewTicker(every)
			defer gc.Stop()
			gcC = gc.C
		}
	}
	for {
		select {
		case <-p.done:
			return
		case <-gcC:
			p.checkGCPause()
		case <-steadyC:
			p.capture(capReq{reason: TriggerInterval}, p.cfg.Window)
		case req := <-p.reqs:
			p.capture(req, p.cfg.AnomalyWindow)
		}
	}
}

// checkGCPause triggers a capture when the GC-pause p99 exceeds the budget
// and GCs actually happened since the last check (all-time p99 staying high
// must not re-trigger forever — the cooldown and the count gate share that
// job).
func (p *Profiler) checkGCPause() {
	reg := p.cfg.Registry
	if reg == nil {
		return
	}
	// Snapshot refreshes the runtime sampler (that is where gc_pause_hist
	// gets its data between scrapes).
	st, ok := reg.Snapshot().Histograms["runtime.gc_pause_hist"]
	if !ok || st.Count == 0 {
		return
	}
	p.mu.Lock()
	grew := st.Count > p.lastGCCount
	p.lastGCCount = st.Count
	p.mu.Unlock()
	p99 := time.Duration(st.P99) * time.Microsecond
	if !grew || p99 <= p.cfg.GCPauseBudget {
		return
	}
	detail := "gc_pause_p99=" + p99.String() + " budget=" + p.cfg.GCPauseBudget.String()
	p.TriggerCapture(TriggerGCPause, detail, 0)
}

// capture runs one CPU window + heap snapshot and emits the folded rows.
func (p *Profiler) capture(req capReq, window time.Duration) {
	if req.done != nil {
		defer close(req.done)
	}
	var cpu *Profile
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another CPU profile is running (e.g. a manual /debug/pprof/profile
		// pull). Skip the CPU half; heap attribution still goes out.
		p.count(p.errors)
	} else {
		t := time.NewTimer(window)
		select {
		case <-t.C:
		case <-p.done:
			t.Stop()
		}
		pprof.StopCPUProfile()
		c, err := Decode(buf.Bytes())
		if err != nil {
			p.count(p.errors)
		} else {
			cpu = c
		}
	}
	var heap *Profile
	if lp := pprof.Lookup("heap"); lp != nil {
		var hb bytes.Buffer
		if err := lp.WriteTo(&hb, 0); err == nil {
			if h, err := Decode(hb.Bytes()); err == nil {
				heap = h
			} else {
				p.count(p.errors)
			}
		}
	}
	rows := p.buildRows(req, window, cpu, heap)
	p.cfg.Sink.RecordRows(obs.SystemProfilesTable, rows)
	p.count(p.captures)
	if req.reason != TriggerInterval {
		p.count(p.anomalies)
	}
}

// funcAgg is the merged per-function view of one capture.
type funcAgg struct {
	flat, cum  int64 // CPU nanos in the window
	allocDelta int64 // sampled alloc_space bytes since the previous capture
	inuse      int64 // sampled inuse_space bytes now
}

// buildRows folds the CPU and heap profiles into the top-N per-function
// rows plus one "(total)" row carrying the capture-wide sums.
func (p *Profiler) buildRows(req capReq, window time.Duration, cpu, heap *Profile) []rowblock.Row {
	agg := make(map[string]*funcAgg)
	get := func(fn string) *funcAgg {
		a := agg[fn]
		if a == nil {
			a = &funcAgg{}
			agg[fn] = a
		}
		return a
	}
	var cpuTotal int64
	if cpu != nil {
		vals, total := cpu.Fold(cpu.ValueIndex("cpu"))
		cpuTotal = total
		for fn, fv := range vals {
			a := get(fn)
			a.flat = fv.Flat
			a.cum = fv.Cum
		}
	}
	// Heap: attribute allocation to the allocating (leaf) frame; values are
	// the runtime's sampled bytes, not unsampled estimates. alloc_space is
	// cumulative since process start, so the row carries the delta against
	// the previous capture — "what allocated during this window".
	var allocTotal, inuseTotal int64
	curAlloc := make(map[string]int64)
	if heap != nil {
		av, _ := heap.Fold(heap.ValueIndex("alloc_space"))
		iv, _ := heap.Fold(heap.ValueIndex("inuse_space"))
		p.mu.Lock()
		for fn, fv := range av {
			curAlloc[fn] = fv.Flat
			d := fv.Flat - p.prevAlloc[fn]
			if d < 0 {
				d = 0
			}
			if d > 0 {
				get(fn).allocDelta = d
				allocTotal += d
			}
		}
		p.prevAlloc = curAlloc
		p.mu.Unlock()
		for fn, fv := range iv {
			if fv.Flat > 0 {
				get(fn).inuse = fv.Flat
				inuseTotal += fv.Flat
			}
		}
	}

	names := make([]string, 0, len(agg))
	for fn := range agg {
		names = append(names, fn)
	}
	keep := make(map[string]bool)
	sort.Slice(names, func(i, j int) bool { return agg[names[i]].flat > agg[names[j]].flat })
	for i := 0; i < len(names) && i < p.cfg.TopN; i++ {
		if agg[names[i]].flat > 0 {
			keep[names[i]] = true
		}
	}
	sort.Slice(names, func(i, j int) bool { return agg[names[i]].allocDelta > agg[names[j]].allocDelta })
	for i := 0; i < len(names) && i < p.cfg.TopN; i++ {
		if agg[names[i]].allocDelta > 0 {
			keep[names[i]] = true
		}
	}

	end := p.cfg.Clock()
	captureID := strconv.FormatInt(end.UnixMicro(), 10)
	goroutines := int64(runtime.NumGoroutine())
	row := func(fn string, a funcAgg) rowblock.Row {
		return rowblock.Row{
			Time: end.Unix(),
			Cols: map[string]rowblock.Value{
				"source":      rowblock.StringValue(p.cfg.Source),
				"capture":     rowblock.StringValue(captureID),
				"t_us":        rowblock.Int64Value(end.UnixMicro()),
				"trigger":     rowblock.StringValue(req.reason),
				"trace_id":    rowblock.Int64Value(int64(req.traceID)),
				"detail":      rowblock.StringValue(req.detail),
				"function":    rowblock.StringValue(fn),
				"flat_ns":     rowblock.Int64Value(a.flat),
				"cum_ns":      rowblock.Int64Value(a.cum),
				"alloc_bytes": rowblock.Int64Value(a.allocDelta),
				"inuse_bytes": rowblock.Int64Value(a.inuse),
				"goroutines":  rowblock.Int64Value(goroutines),
				"window_ms":   rowblock.Int64Value(window.Milliseconds()),
			},
		}
	}
	// The total row goes first and always exists — an idle window with no
	// CPU samples still marks "a capture happened here", which the CI smoke
	// and the CLI's percent column both depend on.
	rows := []rowblock.Row{row(TotalFunction, funcAgg{
		flat: cpuTotal, cum: cpuTotal, allocDelta: allocTotal, inuse: inuseTotal,
	})}
	sorted := make([]string, 0, len(keep))
	for fn := range keep {
		sorted = append(sorted, fn)
	}
	sort.Slice(sorted, func(i, j int) bool { return agg[sorted[i]].flat > agg[sorted[j]].flat })
	for _, fn := range sorted {
		rows = append(rows, row(fn, *agg[fn]))
	}
	return rows
}

// TotalFunction is the synthetic function name of the capture-wide totals
// row present in every capture.
const TotalFunction = "(total)"
