// Package profile is the continuous profiler behind __system.profiles:
// every daemon captures short CPU-profile windows and heap snapshots on a
// steady cadence (plus anomaly-triggered captures), folds the samples into
// top-N per-function rows, and emits them through the self-telemetry sink so
// profiles are queryable through the same engine as everything else — and,
// because __system tables are plain leaf tables, survive restarts over the
// shared-memory path.
//
// This file is the pprof decoder. runtime/pprof writes gzipped protobuf
// (the pprof Profile message); the repo takes no dependencies, so the
// decoder below parses exactly the subset the folder needs — sample types,
// samples, the location→function graph, and the string table — with a
// hand-rolled varint walker. Unknown fields are skipped by wire type, so
// future runtime versions that add fields still decode.
package profile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ValueType is one column of a profile's per-sample value vector ("cpu" in
// "nanoseconds", "alloc_space" in "bytes", ...).
type ValueType struct {
	Type string
	Unit string
}

// sample is one stack sample: location IDs leaf-first, one value per
// SampleType column.
type sample struct {
	locs []uint64
	vals []int64
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	// SampleTypes names the columns of every sample's value vector.
	SampleTypes []ValueType
	// DurationNanos is the profile's wall-clock window (CPU profiles).
	DurationNanos int64
	// Period is the sampling period in PeriodType units.
	Period     int64
	PeriodType ValueType

	samples []sample
	// locFuncs maps a location ID to its function names, innermost
	// (inlined leaf) first.
	locFuncs map[uint64][]string
}

// NumSamples reports how many stack samples the profile holds.
func (p *Profile) NumSamples() int { return len(p.samples) }

// ValueIndex returns the value-vector column whose type matches typ, or -1.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// FuncValue is one function's share of a profile column.
type FuncValue struct {
	// Flat is the value attributed to samples where the function is the
	// leaf frame (it was on CPU / did the allocation itself).
	Flat int64
	// Cum counts samples where the function appears anywhere on the stack.
	Cum int64
}

// Fold attributes column valueIdx of every sample to functions: flat to the
// leaf frame, cumulative to every distinct function on the stack. It returns
// the per-function map and the column total.
func (p *Profile) Fold(valueIdx int) (map[string]FuncValue, int64) {
	out := make(map[string]FuncValue)
	var total int64
	if valueIdx < 0 {
		return out, 0
	}
	seen := make(map[string]bool)
	for _, s := range p.samples {
		if valueIdx >= len(s.vals) {
			continue
		}
		v := s.vals[valueIdx]
		if v == 0 {
			continue
		}
		total += v
		clear(seen)
		leafDone := false
		for _, loc := range s.locs {
			for _, fn := range p.locFuncs[loc] {
				if !leafDone {
					fv := out[fn]
					fv.Flat += v
					out[fn] = fv
					leafDone = true
				}
				if !seen[fn] {
					fv := out[fn]
					fv.Cum += v
					out[fn] = fv
					seen[fn] = true
				}
			}
		}
	}
	return out, total
}

// Decode parses a pprof profile as written by runtime/pprof (gzipped
// protobuf; raw protobuf is accepted too, for fuzzing and tests).
func Decode(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, 64<<20))
		zr.Close() //nolint:errcheck // fully read already
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data = raw
	}
	return decodeProfile(data)
}

// ---- protobuf wire walking ----

var errTruncated = errors.New("profile: truncated protobuf")

// uvarint decodes one base-128 varint at b[i:].
func uvarint(b []byte, i int) (uint64, int, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if i >= len(b) {
			return 0, 0, errTruncated
		}
		c := b[i]
		i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i, nil
		}
	}
	return 0, 0, errors.New("profile: varint overflow")
}

// walkFields calls fn for every field in a protobuf message. Varint fields
// arrive in v, length-delimited fields in data; fixed32/fixed64 are skipped
// (the pprof schema does not use them for anything we read).
func walkFields(b []byte, fn func(num int, v uint64, data []byte) error) error {
	i := 0
	for i < len(b) {
		key, ni, err := uvarint(b, i)
		if err != nil {
			return err
		}
		i = ni
		num, wt := int(key>>3), int(key&7)
		if num == 0 {
			return errors.New("profile: field number 0")
		}
		switch wt {
		case 0: // varint
			v, ni, err := uvarint(b, i)
			if err != nil {
				return err
			}
			i = ni
			if err := fn(num, v, nil); err != nil {
				return err
			}
		case 1: // fixed64: skip
			if i+8 > len(b) {
				return errTruncated
			}
			i += 8
		case 2: // length-delimited
			n, ni, err := uvarint(b, i)
			if err != nil {
				return err
			}
			i = ni
			if n > uint64(len(b)-i) {
				return errTruncated
			}
			if err := fn(num, 0, b[i:i+int(n)]); err != nil {
				return err
			}
			i += int(n)
		case 5: // fixed32: skip
			if i+4 > len(b) {
				return errTruncated
			}
			i += 4
		default:
			return fmt.Errorf("profile: unsupported wire type %d", wt)
		}
	}
	return nil
}

// packedUints appends the varints of a packed repeated field (or the single
// varint v when the field arrived unpacked).
func packedUints(dst []uint64, v uint64, data []byte) ([]uint64, error) {
	if data == nil {
		return append(dst, v), nil
	}
	i := 0
	for i < len(data) {
		u, ni, err := uvarint(data, i)
		if err != nil {
			return nil, err
		}
		dst = append(dst, u)
		i = ni
	}
	return dst, nil
}

// decodeProfile parses the top-level Profile message.
func decodeProfile(b []byte) (*Profile, error) {
	p := &Profile{locFuncs: make(map[uint64][]string)}
	var strtab []string
	// First pass gathers the string table and raw indices; names resolve
	// after, since the string table may follow the messages that use it.
	type rawVT struct{ typ, unit uint64 }
	var sampleTypes []rawVT
	var periodType rawVT
	type rawFunc struct{ id, name uint64 }
	var funcs []rawFunc
	type rawLoc struct {
		id      uint64
		funcIDs []uint64 // innermost first
	}
	var locs []rawLoc

	decodeVT := func(data []byte) (rawVT, error) {
		var vt rawVT
		err := walkFields(data, func(num int, v uint64, _ []byte) error {
			switch num {
			case 1:
				vt.typ = v
			case 2:
				vt.unit = v
			}
			return nil
		})
		return vt, err
	}

	err := walkFields(b, func(num int, v uint64, data []byte) error {
		switch num {
		case 1: // sample_type
			vt, err := decodeVT(data)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			var s sample
			err := walkFields(data, func(fnum int, fv uint64, fdata []byte) error {
				switch fnum {
				case 1: // location_id
					var err error
					s.locs, err = packedUints(s.locs, fv, fdata)
					return err
				case 2: // value (int64, but non-negative in practice)
					raw, err := packedUints(nil, fv, fdata)
					if err != nil {
						return err
					}
					for _, u := range raw {
						s.vals = append(s.vals, int64(u))
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			var l rawLoc
			err := walkFields(data, func(fnum int, fv uint64, fdata []byte) error {
				switch fnum {
				case 1:
					l.id = fv
				case 4: // line
					return walkFields(fdata, func(lnum int, lv uint64, _ []byte) error {
						if lnum == 1 {
							l.funcIDs = append(l.funcIDs, lv)
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locs = append(locs, l)
		case 5: // function
			var f rawFunc
			err := walkFields(data, func(fnum int, fv uint64, _ []byte) error {
				switch fnum {
				case 1:
					f.id = fv
				case 2:
					f.name = fv
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcs = append(funcs, f)
		case 6: // string_table
			strtab = append(strtab, string(data))
		case 10: // duration_nanos
			p.DurationNanos = int64(v)
		case 11: // period_type
			vt, err := decodeVT(data)
			if err != nil {
				return err
			}
			periodType = vt
		case 12: // period
			p.Period = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	funcName := make(map[uint64]string, len(funcs))
	for _, f := range funcs {
		funcName[f.id] = str(f.name)
	}
	for _, l := range locs {
		names := make([]string, 0, len(l.funcIDs))
		for _, id := range l.funcIDs {
			if n := funcName[id]; n != "" {
				names = append(names, n)
			}
		}
		p.locFuncs[l.id] = names
	}
	return p, nil
}
