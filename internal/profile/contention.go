package profile

import (
	"runtime"
	"time"
)

// Contention sampling rates behind -profile-contention. Mutex events are
// sampled 1-in-5; block events below ~10µs are dropped by the runtime's
// rate-based sampling. Both are cheap enough to leave on for a debugging
// session but are off by default — the flag exists so /debug/pprof/mutex
// and /debug/pprof/block return real data instead of empty profiles.
const (
	mutexProfileFraction = 5
	blockProfileRateNs   = int(10 * time.Microsecond / time.Nanosecond)
)

// EnableContention turns on mutex and block profiling for the process.
func EnableContention() {
	runtime.SetMutexProfileFraction(mutexProfileFraction)
	runtime.SetBlockProfileRate(blockProfileRateNs)
}

// DisableContention turns both off again (tests).
func DisableContention() {
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
}
