package profile

import (
	"bytes"
	"compress/gzip"
	"runtime/pprof"
	"testing"
	"time"
)

// ---- minimal protobuf writer for synthetic profiles ----

type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(num, wt int) { p.varint(uint64(num<<3 | wt)) }

func (p *pbuf) uint(num int, v uint64) {
	p.tag(num, 0)
	p.varint(v)
}

func (p *pbuf) bytes(num int, data []byte) {
	p.tag(num, 2)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) msg(num int, fn func(*pbuf)) {
	var inner pbuf
	fn(&inner)
	p.bytes(num, inner.b)
}

func (p *pbuf) packed(num int, vals ...uint64) {
	var inner pbuf
	for _, v := range vals {
		inner.varint(v)
	}
	p.bytes(num, inner.b)
}

// syntheticProfile builds a two-sample CPU profile:
//
//	main -> work -> hot   (3 samples, 30ms)
//	main -> work          (1 sample, 10ms)
//
// with location 3 carrying an inlined frame (hot inlined into work) to
// exercise multi-line locations. strings: 0:"", 1:cpu, 2:nanoseconds,
// 3:main, 4:work, 5:hot, 6:samples, 7:count.
func syntheticProfile() []byte {
	var p pbuf
	p.msg(1, func(m *pbuf) { m.uint(1, 6); m.uint(2, 7) }) // samples/count
	p.msg(1, func(m *pbuf) { m.uint(1, 1); m.uint(2, 2) }) // cpu/nanoseconds
	// sample 1: stack hot,work,main (leaf first), values [3, 30e6]
	p.msg(2, func(m *pbuf) {
		m.packed(1, 3, 2, 1)
		m.packed(2, 3, 30_000_000)
	})
	// sample 2: stack work,main — unpacked repeated encoding on purpose
	p.msg(2, func(m *pbuf) {
		m.uint(1, 2)
		m.uint(1, 1)
		m.uint(2, 1)
		m.uint(2, 10_000_000)
	})
	p.msg(4, func(m *pbuf) { // location 1 = main
		m.uint(1, 1)
		m.msg(4, func(l *pbuf) { l.uint(1, 1); l.uint(2, 12) })
	})
	p.msg(4, func(m *pbuf) { // location 2 = work
		m.uint(1, 2)
		m.msg(4, func(l *pbuf) { l.uint(1, 2); l.uint(2, 34) })
	})
	p.msg(4, func(m *pbuf) { // location 3 = hot inlined into work
		m.uint(1, 3)
		m.msg(4, func(l *pbuf) { l.uint(1, 3); l.uint(2, 56) })
		m.msg(4, func(l *pbuf) { l.uint(1, 2); l.uint(2, 34) })
	})
	p.msg(5, func(m *pbuf) { m.uint(1, 1); m.uint(2, 3) })
	p.msg(5, func(m *pbuf) { m.uint(1, 2); m.uint(2, 4) })
	p.msg(5, func(m *pbuf) { m.uint(1, 3); m.uint(2, 5) })
	for _, s := range []string{"", "cpu", "nanoseconds", "main", "work", "hot", "samples", "count"} {
		p.bytes(6, []byte(s))
	}
	p.uint(10, 40_000_000) // duration_nanos
	p.msg(11, func(m *pbuf) { m.uint(1, 1); m.uint(2, 2) })
	p.uint(12, 10_000_000) // period
	return p.b
}

func TestDecodeSynthetic(t *testing.T) {
	prof, err := Decode(syntheticProfile())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := len(prof.SampleTypes); got != 2 {
		t.Fatalf("SampleTypes = %d, want 2", got)
	}
	if prof.SampleTypes[1] != (ValueType{Type: "cpu", Unit: "nanoseconds"}) {
		t.Fatalf("SampleTypes[1] = %+v", prof.SampleTypes[1])
	}
	if prof.DurationNanos != 40_000_000 || prof.Period != 10_000_000 {
		t.Fatalf("duration=%d period=%d", prof.DurationNanos, prof.Period)
	}
	idx := prof.ValueIndex("cpu")
	if idx != 1 {
		t.Fatalf("ValueIndex(cpu) = %d", idx)
	}
	vals, total := prof.Fold(idx)
	if total != 40_000_000 {
		t.Fatalf("total = %d", total)
	}
	// hot is the inlined leaf of sample 1: flat 30ms. work: flat only from
	// sample 2 (10ms), cum from both (40ms). main: no flat, cum 40ms.
	want := map[string]FuncValue{
		"hot":  {Flat: 30_000_000, Cum: 30_000_000},
		"work": {Flat: 10_000_000, Cum: 40_000_000},
		"main": {Flat: 0, Cum: 40_000_000},
	}
	for fn, w := range want {
		if vals[fn] != w {
			t.Errorf("%s = %+v, want %+v", fn, vals[fn], w)
		}
	}
}

func TestDecodeGzipped(t *testing.T) {
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(syntheticProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	prof, err := Decode(zbuf.Bytes())
	if err != nil {
		t.Fatalf("Decode(gzipped): %v", err)
	}
	if prof.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", prof.NumSamples())
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw := syntheticProfile()
	// Every strict prefix must error or decode — never panic.
	for i := 0; i < len(raw); i++ {
		Decode(raw[:i]) //nolint:errcheck // looking for panics only
	}
	if _, err := Decode([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestDecodeRealProfiles round-trips the decoder against what runtime/pprof
// actually writes: a live CPU window and the heap profile.
func TestDecodeRealProfiles(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// Burn a little CPU so the profile is non-degenerate when the machine
	// is fast; zero samples is still a valid decode.
	deadline := time.Now().Add(50 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x += len(make([]byte, 64))
	}
	_ = x
	pprof.StopCPUProfile()
	prof, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode real CPU profile: %v", err)
	}
	if prof.ValueIndex("cpu") < 0 {
		t.Fatalf("real CPU profile has no cpu column: %+v", prof.SampleTypes)
	}

	var hb bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&hb, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	hp, err := Decode(hb.Bytes())
	if err != nil {
		t.Fatalf("decode real heap profile: %v", err)
	}
	if hp.ValueIndex("alloc_space") < 0 || hp.ValueIndex("inuse_space") < 0 {
		t.Fatalf("heap profile columns = %+v", hp.SampleTypes)
	}
	if hp.NumSamples() == 0 {
		t.Fatal("heap profile has no samples in a running test binary")
	}
	vals, total := hp.Fold(hp.ValueIndex("alloc_space"))
	if total <= 0 || len(vals) == 0 {
		t.Fatalf("alloc_space fold: total=%d funcs=%d", total, len(vals))
	}
}

func FuzzProfileDecode(f *testing.F) {
	f.Add(syntheticProfile())
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(syntheticProfile()) //nolint:errcheck
	zw.Close()                   //nolint:errcheck
	f.Add(zbuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	f.Fuzz(func(t *testing.T, data []byte) {
		prof, err := Decode(data)
		if err != nil || prof == nil {
			return
		}
		for i := range prof.SampleTypes {
			prof.Fold(i)
		}
		prof.Fold(prof.ValueIndex("cpu"))
	})
}
